package upcxx_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (laptop-scale parameters; the full paper-scale sweeps live in
// cmd/upcxx-bench), plus ablation benches for the design choices
// DESIGN.md §5 calls out. Reported custom metrics carry the paper's
// units for each experiment.

import (
	"testing"

	"upcxx"
	"upcxx/internal/bench/gups"
	"upcxx/internal/bench/harness"
	"upcxx/internal/bench/lulesh"
	"upcxx/internal/bench/raytrace"
	"upcxx/internal/bench/samplesort"
	"upcxx/internal/bench/stencil"
	"upcxx/internal/core"
	"upcxx/internal/mpi"
	"upcxx/internal/sim"
)

// BenchmarkFig4TableIVRandomAccess: Random Access (GUPS), UPC vs UPC++.
func BenchmarkFig4TableIVRandomAccess(b *testing.B) {
	for _, flavor := range []string{"upc", "upcxx"} {
		b.Run(flavor, func(b *testing.B) {
			var last gups.Result
			for i := 0; i < b.N; i++ {
				last = gups.Run(gups.Params{
					Ranks: 16, LogTableSize: 14, UpdatesPerRank: 500,
					Flavor: flavor, Machine: sim.Vesta, Virtual: true,
				})
			}
			b.ReportMetric(last.GUPS, "GUPS")
			b.ReportMetric(last.UsecPerUpdate, "usec/update")
		})
	}
}

// BenchmarkFig5Stencil: 3-D 7-point stencil, Titanium vs UPC++.
func BenchmarkFig5Stencil(b *testing.B) {
	for _, flavor := range []string{"titanium", "upcxx"} {
		b.Run(flavor, func(b *testing.B) {
			var last stencil.Result
			for i := 0; i < b.N; i++ {
				last = stencil.Run(stencil.Params{
					Ranks: 8, Box: 16, Iters: 3,
					Flavor: flavor, Machine: sim.Edison, Virtual: true,
				})
			}
			b.ReportMetric(last.GFLOPS, "GFLOPS")
		})
	}
}

// BenchmarkFig6SampleSort: distributed sample sort, UPC vs UPC++.
func BenchmarkFig6SampleSort(b *testing.B) {
	for _, flavor := range []string{"upc", "upcxx"} {
		b.Run(flavor, func(b *testing.B) {
			var last samplesort.Result
			for i := 0; i < b.N; i++ {
				last = samplesort.Run(samplesort.Params{
					Ranks: 8, KeysPerRank: 16384,
					Flavor: flavor, Machine: sim.Edison, Virtual: true,
				})
			}
			if !last.Sorted {
				b.Fatal("sort verification failed")
			}
			b.ReportMetric(last.TBPerMin*1e3, "GB/min")
		})
	}
}

// BenchmarkFig7RayTrace: Monte-Carlo renderer strong scaling point.
func BenchmarkFig7RayTrace(b *testing.B) {
	for _, mode := range []string{"static", "steal"} {
		b.Run(mode, func(b *testing.B) {
			var last raytrace.Result
			for i := 0; i < b.N; i++ {
				last = raytrace.Run(raytrace.Params{
					Ranks: 4, Width: 96, Height: 64, SPP: 2, Tile: 16,
					Machine: sim.Edison, Virtual: true, Steal: mode == "steal",
				})
			}
			b.ReportMetric(last.Seconds*1e3, "model-ms/frame")
		})
	}
}

// BenchmarkFig8LULESH: shock-hydro proxy, MPI vs UPC++.
func BenchmarkFig8LULESH(b *testing.B) {
	for _, flavor := range []string{"mpi", "upcxx"} {
		b.Run(flavor, func(b *testing.B) {
			var last lulesh.Result
			for i := 0; i < b.N; i++ {
				last = lulesh.Run(lulesh.Params{
					Side: 2, E: 6, Iters: 4,
					Flavor: flavor, Machine: sim.Edison, Virtual: true, ComputeScale: 16,
				})
			}
			b.ReportMetric(last.FOM/1e6, "Mzones/s")
		})
	}
}

// BenchmarkHarnessTableIV drives the experiment registry end to end on
// its smallest sweep and reports metrics straight from the typed Result
// the JSON artifact carries — the same path `upcxx-bench -json` takes.
func BenchmarkHarnessTableIV(b *testing.B) {
	e, ok := harness.Lookup("tableiv")
	if !ok {
		b.Fatal("tableiv not registered")
	}
	var last harness.Result
	for i := 0; i < b.N; i++ {
		last = e.Run(harness.Options{Quick: true})
	}
	for _, s := range last.Series {
		p := s.Points[len(s.Points)-1]
		b.ReportMetric(p.Value, s.System+"-"+last.Unit)
		if p.Counters["updates_per_sec"] <= 0 {
			b.Fatalf("series %q missing updates_per_sec counter", s.Name)
		}
	}
}

// BenchmarkAblationAMvsDirect compares the two one-sided access paths
// (DESIGN.md §5): Direct (RDMA analog) vs AMMediated (software handler).
func BenchmarkAblationAMvsDirect(b *testing.B) {
	for _, access := range []struct {
		name string
		mode core.AccessPath
	}{{"direct", core.Direct}, {"am-mediated", core.AMMediated}} {
		b.Run(access.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				upcxx.Run(upcxx.Config{Ranks: 4, Access: access.mode, Virtual: true},
					func(me *upcxx.Rank) {
						sa := upcxx.NewSharedArray[uint64](me, 1024, 1)
						for k := me.ID(); k < 1024; k += me.Ranks() {
							sa.Set(me, (k+5)%1024, uint64(k))
						}
						me.Barrier()
					})
			}
		})
	}
}

// BenchmarkAblationThreadModes compares Serialized vs Concurrent runtime
// locking (paper §IV).
func BenchmarkAblationThreadModes(b *testing.B) {
	for _, mode := range []struct {
		name string
		tm   core.ThreadMode
	}{{"serialized", core.Serialized}, {"concurrent", core.Concurrent}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				upcxx.Run(upcxx.Config{Ranks: 2, Threads: mode.tm, Virtual: true},
					func(me *upcxx.Rank) {
						p := upcxx.Allocate[int64](me, me.ID(), 64)
						for k := 0; k < 2000; k++ {
							upcxx.Write(me, p.Add(k%64), int64(k))
						}
						me.Barrier()
					})
			}
		})
	}
}

// BenchmarkAblationUnstrided compares the unstrided fast indexing path
// against point-indexed access (paper §III-E's template specialization).
func BenchmarkAblationUnstrided(b *testing.B) {
	run := func(b *testing.B, rowPath bool) {
		upcxx.Run(upcxx.Config{Ranks: 1, Virtual: true}, func(me *upcxx.Rank) {
			dom := upcxx.RD3(0, 0, 0, 32, 32, 32)
			a := upcxx.NewNDArray[float64](me, dom)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sum := 0.0
				if rowPath {
					for x := 0; x < 32; x++ {
						for y := 0; y < 32; y++ {
							for _, v := range a.Row3(me, x, y) {
								sum += v
							}
						}
					}
				} else {
					dom.ForEach(func(p upcxx.Point) { sum += a.Get(me, p) })
				}
				_ = sum
			}
		})
	}
	b.Run("unstrided-rows", func(b *testing.B) { run(b, true) })
	b.Run("point-indexed", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationFenceVsEvents compares handle-less async_copy_fence
// synchronization with per-event synchronization for a LULESH-style
// multi-put exchange (paper §V-E).
func BenchmarkAblationFenceVsEvents(b *testing.B) {
	run := func(b *testing.B, useEvents bool) {
		for i := 0; i < b.N; i++ {
			upcxx.Run(upcxx.Config{Ranks: 8, Virtual: true}, func(me *upcxx.Rank) {
				buf := upcxx.Allocate[float64](me, me.ID(), 64*8)
				all := upcxx.AllGather(me, buf)
				me.Barrier()
				src := make([]float64, 64)
				if useEvents {
					evs := make([]*upcxx.Event, me.Ranks())
					for r := range evs {
						evs[r] = upcxx.NewEvent()
						upcxx.WriteSliceAsync(me, all[r].Add(64*me.ID()), src, evs[r])
					}
					for _, ev := range evs {
						ev.Wait(me)
					}
				} else {
					for r := 0; r < me.Ranks(); r++ {
						upcxx.WriteSliceAsync(me, all[r].Add(64*me.ID()), src, nil)
					}
					upcxx.AsyncCopyFence(me)
				}
				me.Barrier()
			})
		}
	}
	b.Run("fence", func(b *testing.B) { run(b, false) })
	b.Run("events", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationEagerRendezvous measures the MPI baseline's protocol
// switch around the eager threshold.
func BenchmarkAblationEagerRendezvous(b *testing.B) {
	for _, sz := range []struct {
		name string
		n    int
	}{{"eager", sim.Local.EagerBytes - 256}, {"rendezvous", sim.Local.EagerBytes + 256}} {
		b.Run(sz.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Run(core.Config{Ranks: 2, SW: sim.SWMPI, Virtual: true},
					func(me *core.Rank) {
						c := mpi.New(me)
						if me.ID() == 0 {
							c.Wait(c.Isend(1, 0, make([]byte, sz.n)))
						} else {
							c.Wait(c.Irecv(0, 0, make([]byte, sz.n)))
						}
					})
			}
		})
	}
}
