// Heat3d is the paper's stencil workload as a standalone application: a
// 3-D 7-point Jacobi iteration for the heat equation over a grid
// distributed across all ranks, with ghost zones exchanged by the
// multidimensional array library's one-statement copy
// (A.Constrict(ghost).CopyFromAsync(B), paper §III-E) — in the
// futures-first style: all face pulls complete into one Promise, the
// deep interior (which needs no ghosts) is updated while they travel,
// and the boundary shell is finished after the promise's future
// resolves. This is the communication/computation overlap the
// completion model exists for.
//
//	go run ./examples/heat3d -ranks 8 -box 16 -iters 10
package main

import (
	"flag"
	"fmt"

	"upcxx"
	"upcxx/internal/bench/stencil"
)

func main() {
	ranks := flag.Int("ranks", 8, "SPMD ranks (grid is factored over them)")
	box := flag.Int("box", 16, "per-rank cube edge")
	iters := flag.Int("iters", 10, "Jacobi iterations")
	flag.Parse()

	px, py, pz := stencil.Factor3(*ranks)
	fmt.Printf("heat3d: %d ranks as %dx%dx%d, %d^3 points each, %d iterations\n",
		*ranks, px, py, pz, *box, *iters)

	n := *box
	upcxx.Run(upcxx.Config{Ranks: *ranks, SegmentBytes: 2*(n+2)*(n+2)*(n+2)*8 + (1 << 17)},
		func(me *upcxx.Rank) {
			id := me.ID()
			cx, cy, cz := id/(py*pz), (id/pz)%py, id%pz
			interior := upcxx.RD3(cx*n, cy*n, cz*n, (cx+1)*n, (cy+1)*n, (cz+1)*n)
			A := upcxx.NewNDArray[float64](me, interior.Grow(1))
			B := upcxx.NewNDArray[float64](me, interior.Grow(1))

			// Hot spot in the global center.
			mid := upcxx.P(px*n/2, py*n/2, pz*n/2)
			if interior.Contains(mid) {
				A.Set(me, mid, 1000)
			}
			me.Barrier()

			refsA := upcxx.TeamAllGather(me.World(), A.Ref())
			refsB := upcxx.TeamAllGather(me.World(), B.Ref())
			me.Barrier()

			// Face-neighbor ranks (the only owners of our ghost planes;
			// diagonal ranks hold those coordinates only in their own
			// stale ghost frames).
			rankAt := func(x, y, z int) int { return (x*py+y)*pz + z }
			type nbr struct{ rank, dim, side int }
			var nbrs []nbr
			if cx > 0 {
				nbrs = append(nbrs, nbr{rankAt(cx-1, cy, cz), 0, -1})
			}
			if cx < px-1 {
				nbrs = append(nbrs, nbr{rankAt(cx+1, cy, cz), 0, +1})
			}
			if cy > 0 {
				nbrs = append(nbrs, nbr{rankAt(cx, cy-1, cz), 1, -1})
			}
			if cy < py-1 {
				nbrs = append(nbrs, nbr{rankAt(cx, cy+1, cz), 1, +1})
			}
			if cz > 0 {
				nbrs = append(nbrs, nbr{rankAt(cx, cy, cz-1), 2, -1})
			}
			if cz < pz-1 {
				nbrs = append(nbrs, nbr{rankAt(cx, cy, cz+1), 2, +1})
			}

			update := func(src, dst *upcxx.NDArray[float64], p upcxx.Point) {
				c := src.Get(me, p)
				sum := src.Get(me, p.Add(upcxx.P(1, 0, 0))) + src.Get(me, p.Add(upcxx.P(-1, 0, 0))) +
					src.Get(me, p.Add(upcxx.P(0, 1, 0))) + src.Get(me, p.Add(upcxx.P(0, -1, 0))) +
					src.Get(me, p.Add(upcxx.P(0, 0, 1))) + src.Get(me, p.Add(upcxx.P(0, 0, -1)))
				dst.Set(me, p, c+0.1*(sum-6*c))
			}
			// Cells strictly inside the rank's block read no ghosts, so
			// they can be updated while the face pulls are in flight.
			deep := interior.Shrink(1)

			src, dst := A, B
			srcRefs, dstRefs := refsA, refsB
			for it := 0; it < *iters; it++ {
				// Start every ghost-face pull, all completing into one
				// promise; the domain intersection does the addressing
				// (one statement per face, paper §III-E).
				ghosts := upcxx.NewPromise(me)
				for _, nb := range nbrs {
					ghost := src.Domain().Face(nb.dim, nb.side, 1)
					src.Constrict(ghost).CopyFromAsync(me, upcxx.NDFromRef(srcRefs[nb.rank]), ghosts)
				}
				arrived := ghosts.Finalize()

				// Overlap: the deep interior needs no ghost data.
				deep.ForEach(func(p upcxx.Point) { update(src, dst, p) })

				// The boundary shell waits for the ghosts.
				arrived.Wait()
				interior.ForEach(func(p upcxx.Point) {
					if !deep.Contains(p) {
						update(src, dst, p)
					}
				})

				// One barrier per step: neighbors must not start pulling
				// the next iteration's faces (the dst we just wrote)
				// before everyone finished reading this iteration's src.
				me.Barrier()
				src, dst = dst, src
				srcRefs, dstRefs = dstRefs, srcRefs
			}

			// Global heat must be conserved (interior sums reduced).
			local := 0.0
			interior.ForEach(func(p upcxx.Point) { local += src.Get(me, p) })
			total := upcxx.TeamReduce(me.World(), local, func(a, b float64) float64 { return a + b })
			if me.ID() == 0 {
				fmt.Printf("total heat after %d iterations: %.6f (deposited 1000)\n", *iters, total)
			}
		})
}
