// Distarray demonstrates the repository's implementation of the paper's
// stated future work (§III-E): a true distributed multidimensional array
// built on the directory idiom, with ghost exchange — including edge and
// corner ghosts — computed from general-domain algebra (footprint minus
// interior) rather than hand-written face lists.
//
// A 9-point (2-D Moore neighborhood) smoothing iteration needs corner
// ghosts, which a face-only exchange would miss.
//
//	go run ./examples/distarray -iters 5
package main

import (
	"flag"
	"fmt"

	"upcxx"
	"upcxx/internal/ndarray"
)

func main() {
	iters := flag.Int("iters", 5, "smoothing iterations")
	flag.Parse()

	const n = 16 // global edge
	upcxx.Run(upcxx.Config{Ranks: 4}, func(me *upcxx.Rank) {
		da := ndarray.NewDist[float64](me, upcxx.RD(upcxx.P(0, 0), upcxx.P(n, n)), []int{2, 2}, 1)
		db := ndarray.NewDist[float64](me, upcxx.RD(upcxx.P(0, 0), upcxx.P(n, n)), []int{2, 2}, 1)

		// A single spike in the global center (on whichever rank owns it).
		mid := upcxx.P(n/2, n/2)
		if da.Interior().Contains(mid) {
			da.Tile().Set(me, mid, 256)
		}
		me.Barrier()

		src, dst := da, db
		for it := 0; it < *iters; it++ {
			src.ExchangeGhosts(me)
			me.Barrier()
			// 9-point box smoothing: needs corner ghosts.
			tile := src.Tile()
			out := dst.Tile()
			src.Interior().ForEach(func(p upcxx.Point) {
				sum := 0.0
				for dx := -1; dx <= 1; dx++ {
					for dy := -1; dy <= 1; dy++ {
						q := p.Add(upcxx.P(dx, dy))
						if tile.Domain().Contains(q) {
							sum += tile.Get(me, q)
						}
					}
				}
				out.Set(me, p, sum/9)
			})
			me.Barrier()
			src, dst = dst, src
		}

		// Mass decays only through the global boundary; print the total.
		local := 0.0
		tile := src.Tile()
		src.Interior().ForEach(func(p upcxx.Point) { local += tile.Get(me, p) })
		total := upcxx.TeamReduce(me.World(), local, func(a, b float64) float64 { return a + b })
		if me.ID() == 0 {
			fmt.Printf("after %d smoothing steps: total mass %.3f (spiked 256)\n", *iters, total)
			// Print the center row as a crude profile.
			fmt.Print("center row: ")
			for x := 0; x < n; x++ {
				fmt.Printf("%5.1f ", da.Get(me, upcxx.P(x, n/2)))
			}
			fmt.Println()
		}
		me.Barrier()
	})
}
