// Quickstart: the paper's core constructs in one small SPMD program —
// shared arrays with direct indexing, global pointers, remote allocation,
// async remote function invocation with finish, and collectives.
//
//	go run ./examples/quickstart -ranks 8
//
// This runs on the in-process conduit backend (ranks are goroutines).
// To see the same programming model execute as separate OS processes
// over the TCP wire conduit, use the launcher's ring walkthrough:
//
//	go run ./cmd/upcxx-run -n 4 -backend tcp ring
package main

import (
	"flag"
	"fmt"

	"upcxx"
)

func main() {
	ranks := flag.Int("ranks", 8, "SPMD ranks")
	flag.Parse()

	upcxx.Run(upcxx.Config{Ranks: *ranks}, func(me *upcxx.Rank) {
		// shared_array<uint64> hist(ranks): each rank tallies into its
		// own slot, then everyone reads everything.
		hist := upcxx.NewSharedArray[uint64](me, me.Ranks(), 1)
		hist.Set(me, me.ID(), uint64(me.ID()*me.ID()))
		me.Barrier()

		if me.ID() == 0 {
			fmt.Print("squares via shared array: ")
			for i := 0; i < hist.Len(); i++ {
				fmt.Printf("%d ", hist.Get(me, i))
			}
			fmt.Println()
		}
		me.Barrier()

		// Remote allocation (paper §III-C): rank 0 allocates 64 ints on
		// the last rank and fills them with one-sided writes.
		if me.ID() == 0 {
			sp := upcxx.Allocate[int32](me, me.Ranks()-1, 64)
			for i := 0; i < 64; i++ {
				upcxx.Write(me, sp.Add(i), int32(100+i))
			}
			sum := upcxx.AsyncFuture(me, me.Ranks()-1, func(r *upcxx.Rank) int32 {
				var s int32
				for i := 0; i < 64; i++ {
					s += upcxx.Read(r, sp.Add(i))
				}
				return s
			}).Get()
			fmt.Printf("sum of remote allocation (computed remotely): %d\n", sum)
		}
		me.Barrier()

		// async + finish (paper §III-G): fan work out to every rank and
		// wait for all of it.
		if me.ID() == 0 {
			upcxx.Finish(me, func() {
				upcxx.Async(me, upcxx.Everywhere(me), func(tgt *upcxx.Rank) {
					if tgt.ID()%4 == 0 {
						fmt.Printf("  hello from async on rank %d\n", tgt.ID())
					}
				})
			})
			fmt.Println("finish: all asyncs done")
		}
		me.Barrier()

		// A collective to finish: the sum of all rank ids.
		total := upcxx.Reduce(me, me.ID(), func(a, b int) int { return a + b })
		if me.ID() == 0 {
			fmt.Printf("reduce(sum of ranks) = %d\n", total)
		}
	})
}
