// Quickstart: the paper's core constructs in one small SPMD program,
// written in the futures-first style — shared arrays with direct
// indexing, global pointers, remote allocation, non-blocking one-sided
// access chained through futures (ReadAsync/Then/WhenAll), async
// remote function invocation with finish, and collectives.
//
//	go run ./examples/quickstart -ranks 8
//
// This runs on the in-process conduit backend (ranks are goroutines).
// To see the same programming model execute as separate OS processes
// over the TCP wire conduit, use the launcher's futures walkthrough:
//
//	go run ./cmd/upcxx-run -n 4 -backend tcp pipeline
package main

import (
	"flag"
	"fmt"

	"upcxx"
)

func main() {
	ranks := flag.Int("ranks", 8, "SPMD ranks")
	flag.Parse()

	upcxx.Run(upcxx.Config{Ranks: *ranks}, func(me *upcxx.Rank) {
		// shared_array<uint64> hist(ranks): each rank tallies into its
		// own slot, then rank 0 reads every slot asynchronously — the
		// reads overlap, and WhenAll joins them.
		hist := upcxx.NewSharedArray[uint64](me, me.Ranks(), 1)
		hist.Set(me, me.ID(), uint64(me.ID()*me.ID()))
		me.Barrier()

		if me.ID() == 0 {
			reads := make([]*upcxx.Future[uint64], hist.Len())
			for i := range reads {
				reads[i] = upcxx.ReadAsync(me, hist.Ptr(i))
			}
			fmt.Print("squares via shared array: ")
			for _, v := range upcxx.WhenAll(reads...).Get() {
				fmt.Printf("%d ", v)
			}
			fmt.Println()
		}
		me.Barrier()

		// Remote allocation (paper §III-C): rank 0 allocates 64 ints on
		// the last rank, fills them with non-blocking writes completing
		// into one promise, then chains the remotely computed sum
		// through a continuation.
		if me.ID() == 0 {
			last := me.Ranks() - 1
			sp := upcxx.Allocate[int32](me, last, 64)
			writes := upcxx.NewPromise(me)
			vals := make([]int32, 64)
			for i := range vals {
				vals[i] = int32(100 + i)
			}
			upcxx.WriteSliceAsync(me, sp, vals, writes)
			writes.Finalize().Wait()

			sum := upcxx.AsyncFuture(me, last, func(r *upcxx.Rank) int32 {
				var s int32
				for i := 0; i < 64; i++ {
					s += upcxx.Read(r, sp.Add(i))
				}
				return s
			})
			report := upcxx.Then(sum, func(s int32) string {
				return fmt.Sprintf("sum of remote allocation (computed remotely): %d", s)
			})
			fmt.Println(report.Get())
		}
		me.Barrier()

		// async + finish (paper §III-G): fan work out to every rank and
		// wait for all of it.
		if me.ID() == 0 {
			upcxx.Finish(me, func() {
				upcxx.Async(me, upcxx.Everywhere(me), func(tgt *upcxx.Rank) {
					if tgt.ID()%4 == 0 {
						fmt.Printf("  hello from async on rank %d\n", tgt.ID())
					}
				})
			})
			fmt.Println("finish: all asyncs done")
		}
		me.Barrier()

		// A collective to finish: the sum of all rank ids.
		total := upcxx.TeamReduce(me.World(), me.ID(), func(a, b int) int { return a + b })
		if me.ID() == 0 {
			fmt.Printf("reduce(sum of ranks) = %d\n", total)
		}
	})
}
