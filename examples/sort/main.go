// Sort is the paper's Sample Sort study (§V-C) as a standalone
// application: it sorts a distributed array of Mersenne-Twister keys with
// splitter sampling over fine-grained global reads, a one-sided
// redistribution synchronized by a single async_copy_fence, and a local
// quicksort — then verifies the global order.
//
//	go run ./examples/sort -ranks 8 -keys 100000
package main

import (
	"flag"
	"fmt"
	"log"

	"upcxx"
	"upcxx/internal/bench/samplesort"
)

func main() {
	ranks := flag.Int("ranks", 8, "SPMD ranks")
	keys := flag.Int("keys", 100000, "keys per rank")
	flag.Parse()

	r := samplesort.Run(samplesort.Params{
		Ranks: *ranks, KeysPerRank: *keys, Machine: upcxx.LocalMachine,
	})
	if !r.Sorted {
		log.Fatal("verification failed: output is not globally sorted")
	}
	fmt.Printf("sorted %d keys across %d ranks in %.1f ms wall\n",
		r.Keys, r.Ranks, r.Seconds*1e3)
	fmt.Printf("load balance: heaviest rank at %.2fx the mean\n", r.Balance)
}
