// Render is the paper's Embree study (§V-D) as a standalone application:
// a distributed Monte-Carlo path tracer with a static cyclic tile
// distribution (or distributed work stealing with -steal), whose partial
// images are sum-reduced onto rank 0 and written as a PPM file.
//
//	go run ./examples/render -ranks 8 -width 320 -height 240 -spp 8 -out image.ppm
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"upcxx"
	"upcxx/internal/bench/raytrace"
)

func main() {
	ranks := flag.Int("ranks", 8, "SPMD ranks")
	width := flag.Int("width", 320, "image width")
	height := flag.Int("height", 240, "image height")
	spp := flag.Int("spp", 8, "samples per pixel")
	steal := flag.Bool("steal", false, "distributed work stealing instead of static tiles")
	out := flag.String("out", "image.ppm", "output PPM file")
	flag.Parse()

	r := raytrace.Run(raytrace.Params{
		Ranks: *ranks, Width: *width, Height: *height, SPP: *spp,
		Tile: 32, Machine: upcxx.LocalMachine, Steal: *steal,
	})
	fmt.Printf("rendered %dx%d at %d spp on %d ranks (steal=%v, %d steals)\n",
		*width, *height, *spp, *ranks, *steal, r.Steals)

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	defer w.Flush()
	fmt.Fprintf(w, "P3\n%d %d\n255\n", *width, *height)
	clamp := func(v float64) int {
		c := int(v * 255.999)
		if c < 0 {
			return 0
		}
		if c > 255 {
			return 255
		}
		return c
	}
	// PPM scans top-to-bottom; the image buffer is bottom-up.
	for py := *height - 1; py >= 0; py-- {
		for px := 0; px < *width; px++ {
			o := (py**width + px) * 3
			fmt.Fprintf(w, "%d %d %d\n", clamp(r.Image[o]), clamp(r.Image[o+1]), clamp(r.Image[o+2]))
		}
	}
	fmt.Printf("wrote %s\n", *out)
}
