// Taskgraph reproduces Listing 1 / Figure 1 of the paper: an event-driven
// task dependency graph built with async, async_after and events.
//
//	   t1   t2
//	    \   /
//	     e1
//	      |
//	     t3    t4
//	      \    /
//	       e2
//	      /  \
//	    t5    t6
//	      \   /
//	       e3   <- wait
//
//	go run ./examples/taskgraph
//
// This example uses closure tasks, which are in-process-only. The
// same DAG runs over real OS processes as the `taskgraph` program of
// the spmd registry (go run ./cmd/upcxx-run -backend tcp taskgraph),
// rebuilt on registered-function tasks — see internal/spmd/taskgraph.go.
package main

import (
	"fmt"
	"sync/atomic"

	"upcxx"
)

func main() {
	upcxx.Run(upcxx.Config{Ranks: 7}, func(me *upcxx.Rank) {
		if me.ID() != 0 {
			me.Barrier()
			return
		}
		var stamp atomic.Int64
		task := func(name string) upcxx.TaskFn {
			return func(tgt *upcxx.Rank) {
				fmt.Printf("%s ran on rank %d (step %d)\n", name, tgt.ID(), stamp.Add(1))
			}
		}

		// Listing 1, line for line.
		e1, e2, e3 := upcxx.NewEvent(), upcxx.NewEvent(), upcxx.NewEvent()
		upcxx.Async(me, upcxx.On(1), task("t1"), upcxx.Signal(e1))
		upcxx.Async(me, upcxx.On(2), task("t2"), upcxx.Signal(e1))
		upcxx.AsyncAfter(me, upcxx.On(3), e1, e2, task("t3"))
		upcxx.Async(me, upcxx.On(4), task("t4"), upcxx.Signal(e2))
		upcxx.AsyncAfter(me, upcxx.On(5), e2, e3, task("t5"))
		upcxx.AsyncAfter(me, upcxx.On(6), e2, e3, task("t6"))
		e3.Wait(me)
		fmt.Println("e3 fired: graph complete")
		me.Barrier()
	})
}
