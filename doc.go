// Package upcxx is a Go reproduction of "UPC++: A PGAS Extension for
// C++" (Zheng, Kamil, Driscoll, Shan, Yelick — IPDPS 2014): a
// library-based Partitioned Global Address Space programming system with
// shared scalars and block-cyclic shared arrays, global pointers with
// phase-free arithmetic, dynamic global memory management, one-sided bulk
// transfers with events, asynchronous remote function invocation with
// futures and X10-style finish, global locks, collectives, and a
// Titanium-style multidimensional domain/array library (subpackage
// re-exports below).
//
// Where C++ UPC++ maps one rank to one OS process over GASNet, this
// library maps one rank to one goroutine over an in-process active
// message engine, and replaces the paper's supercomputers with a LogGP
// virtual-time model so the evaluation's 32K-rank experiments run on one
// machine (see DESIGN.md). The programming model is the paper's:
//
//	upcxx.Run(upcxx.Config{Ranks: 4}, func(me *upcxx.Rank) {
//		sa := upcxx.NewSharedArray[int64](me, 100, 1)
//		sa.Set(me, me.ID(), int64(me.ID()))
//		me.Barrier()
//
//		upcxx.Finish(me, func() {
//			upcxx.Async(me, upcxx.On(2), func(tgt *upcxx.Rank) {
//				// runs on rank 2
//			})
//		})
//	})
//
// Completion is futures-first, the direction the UPC++ lineage took
// after the paper: every asynchronous operation can resolve a
// chainable Future[T] (ReadAsync, WriteAsync, CopyAsync,
// ReadSliceAsync, AsyncFuture, AsyncTaskFuture), continuations attach
// with Then/ThenAsync and compose with WhenAll/WhenAny, and a
// surrounding Finish waits for whole continuation chains. Operations
// complete into any completion object through one seam (Completer):
// a *Promise (NewPromise/Finalize), a legacy *Event, an Onto(...)
// combination, or the enclosing Finish via ToFinish(). See DESIGN.md
// §3 "Completion model" for execution-context and quiescence rules.
//
// The API is a facade over internal/core (the paper's programming
// constructs) and internal/ndarray (the multidimensional array library);
// both are fully documented at their definitions.
package upcxx
