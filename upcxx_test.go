package upcxx_test

import (
	"testing"

	"upcxx"
)

// TestPublicAPIEndToEnd drives every major public construct through one
// SPMD program — the facade-level integration test.
func TestPublicAPIEndToEnd(t *testing.T) {
	st := upcxx.Run(upcxx.Config{Ranks: 4, Virtual: true}, func(me *upcxx.Rank) {
		// Shared objects.
		sv := upcxx.NewSharedVar[int64](me)
		sa := upcxx.NewSharedArray[int64](me, 32, 2)
		if me.ID() == 0 {
			sv.Set(me, 99)
		}
		for i := 0; i < sa.Len(); i++ {
			if sa.OwnerOf(i) == me.ID() {
				sa.Set(me, i, int64(i))
			}
		}
		me.Barrier()
		if sv.Get(me) != 99 {
			t.Error("shared var")
		}
		for i := 0; i < sa.Len(); i++ {
			if sa.Get(me, i) != int64(i) {
				t.Errorf("sa[%d]", i)
			}
		}

		// Global memory + one-sided ops.
		buf := upcxx.Allocate[float64](me, me.ID(), 8)
		ptrs := upcxx.AllGather(me, buf)
		me.Barrier()
		next := ptrs[(me.ID()+1)%me.Ranks()]
		upcxx.Write(me, next, float64(me.ID()))
		me.Barrier()
		prev := (me.ID() + me.Ranks() - 1) % me.Ranks()
		if got := upcxx.Read(me, buf); got != float64(prev) {
			t.Errorf("ring write: got %v want %v", got, prev)
		}
		// Barrier before the next phase mutates buffers others may still
		// be reading (the memory model makes this the program's job).
		me.Barrier()

		// Bulk + events.
		ev := upcxx.NewEvent()
		upcxx.AsyncCopy(me, buf, next, 1, ev)
		ev.Wait(me)
		upcxx.AsyncCopyFence(me)
		me.Barrier()

		// Asyncs, futures, finish.
		if me.ID() == 0 {
			f := upcxx.AsyncFuture(me, 3, func(r *upcxx.Rank) int { return r.ID() * 2 })
			if f.Get() != 6 {
				t.Error("future")
			}
			done := 0
			upcxx.Finish(me, func() {
				upcxx.Async(me, upcxx.OnRanks(1, 2), func(*upcxx.Rank) {}, upcxx.Payload(16))
				done++
			})
			if done != 1 {
				t.Error("finish body ran wrong")
			}
		}
		me.Barrier()

		// Futures-first completion: chains, joins, promises, Onto.
		if me.ID() == 0 {
			chained := 0.0
			upcxx.Finish(me, func() {
				f := upcxx.ReadAsync(me, next)
				upcxx.Then(f, func(v float64) struct{} { chained = v + 1; return struct{}{} })
			})
			if chained == 0 {
				t.Error("Then continuation did not run under Finish")
			}

			reads := []*upcxx.Future[float64]{
				upcxx.ReadAsync(me, buf),
				upcxx.ReadAsync(me, next),
			}
			if vals := upcxx.WhenAll(reads...).Get(); len(vals) != 2 {
				t.Error("WhenAll")
			}

			pr := upcxx.NewPromise(me)
			ev2 := upcxx.NewEvent()
			upcxx.WriteAsync(me, next, 7.5).Wait()
			upcxx.AsyncCopy(me, next, buf, 1, upcxx.Onto(pr, ev2))
			pr.Finalize().Wait()
			if !ev2.Test(me) {
				t.Error("Onto event leg")
			}
			if upcxx.ReadAsync(me, buf).Get() != 7.5 {
				t.Error("WriteAsync/CopyAsync pipeline")
			}
			upcxx.CopyAsync(me, buf, next, 1).Wait()
		}
		me.Barrier()

		// Locks.
		l := upcxx.Broadcast(me, upcxx.NewLock(me), 0)
		l.Acquire(me)
		l.Release(me)
		me.Barrier()

		// Collectives.
		if upcxx.Reduce(me, 1, func(a, b int) int { return a + b }) != me.Ranks() {
			t.Error("reduce")
		}

		// Multidimensional arrays.
		grid := upcxx.NewNDArray[int32](me, upcxx.RD3(0, 0, 0, 4, 4, 4).Translate(upcxx.P(me.ID()*4, 0, 0)))
		grid.Fill(me, int32(me.ID()))
		refs := upcxx.AllGather(me, grid.Ref())
		me.Barrier()
		if me.ID() == 0 {
			other := upcxx.NDFromRef(refs[1])
			if other.Get(me, upcxx.P(4, 0, 0)) != 1 {
				t.Error("remote ndarray read")
			}
		}
		me.Barrier()
	})
	if st.Ranks != 4 || st.VirtualNs <= 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestMachineProfilesExported(t *testing.T) {
	if upcxx.Edison.Name != "edison" || upcxx.Vesta.Name != "vesta" || upcxx.LocalMachine.Name != "local" {
		t.Error("machine profiles")
	}
}
