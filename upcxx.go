package upcxx

import (
	"upcxx/internal/core"
	"upcxx/internal/ndarray"
	"upcxx/internal/rpc"
	"upcxx/internal/sim"
)

// Execution model (paper §II, §IV): SPMD ranks, one goroutine each.
type (
	// Config describes a job: rank count, segment size, machine and
	// software profiles, thread-support mode.
	Config = core.Config
	// Rank is one SPMD execution unit's handle (MYTHREAD/THREADS live
	// here as ID()/Ranks()).
	Rank = core.Rank
	// Stats reports a finished job's wall/virtual time and counters.
	Stats = core.Stats
	// ThreadMode selects Serialized or Concurrent runtime locking.
	ThreadMode = core.ThreadMode
	// AccessPath selects Direct (RDMA analog) or AMMediated transfers.
	AccessPath = core.AccessPath
)

// Thread-support modes and access paths (paper §IV).
const (
	Serialized = core.Serialized
	Concurrent = core.Concurrent
	Direct     = core.Direct
	AMMediated = core.AMMediated
)

// Run executes main as an SPMD job (the analog of launching a UPC++
// program over N processes).
func Run(cfg Config, main func(me *Rank)) Stats { return core.Run(cfg, main) }

// Shared objects (paper §III-A) and global pointers (§III-B).
type (
	// GlobalPtr is global_ptr<T>: {rank, address}, phase-free arithmetic.
	GlobalPtr[T any] = core.GlobalPtr[T]
	// SharedVar is shared_var<T>: a scalar on rank 0.
	SharedVar[T any] = core.SharedVar[T]
	// SharedArray is shared_array<T, BS>: block-cyclic distribution.
	SharedArray[T any] = core.SharedArray[T]
)

// Null returns the null global pointer.
func Null[T any]() GlobalPtr[T] { return core.Null[T]() }

// NewSharedVar collectively creates a shared scalar.
func NewSharedVar[T any](me *Rank) SharedVar[T] { return core.NewSharedVar[T](me) }

// NewSharedArray collectively creates a block-cyclic shared array
// (shared_array<T, BS> A(size); use blockSize 1 for UPC's cyclic default).
func NewSharedArray[T any](me *Rank, size, blockSize int) *SharedArray[T] {
	return core.NewSharedArray[T](me, size, blockSize)
}

// Dynamic global memory management (paper §III-C).

// Allocate reserves count elements of T on the given rank — local or
// remote, the capability UPC and MPI lack; panics on exhaustion.
func Allocate[T any](me *Rank, rank, count int) GlobalPtr[T] {
	return core.Allocate[T](me, rank, count)
}

// TryAllocate is Allocate returning an error instead of panicking.
func TryAllocate[T any](me *Rank, rank, count int) (GlobalPtr[T], error) {
	return core.TryAllocate[T](me, rank, count)
}

// Deallocate frees an allocation from any rank.
func Deallocate[T any](me *Rank, p GlobalPtr[T]) error { return core.Deallocate(me, p) }

// Local casts a global pointer with local affinity to a raw pointer.
func Local[T any](me *Rank, p GlobalPtr[T]) *T { return core.Local(me, p) }

// LocalSlice views count local elements as a slice.
func LocalSlice[T any](me *Rank, p GlobalPtr[T], count int) []T {
	return core.LocalSlice(me, p, count)
}

// One-sided access and bulk transfer (paper §III-D).

// Read performs a blocking one-sided read (rvalue use of a shared object).
func Read[T any](me *Rank, p GlobalPtr[T]) T { return core.Read(me, p) }

// Write performs a blocking one-sided write (lvalue use).
func Write[T any](me *Rank, p GlobalPtr[T], v T) { core.Write(me, p, v) }

// RMW applies f atomically under the owner's segment lock. It ships a
// Go closure, so it is in-process-only for remote targets; on wire jobs
// use AtomicXor.
func RMW[T any](me *Rank, p GlobalPtr[T], f func(T) T) T { return core.RMW(me, p, f) }

// AtomicXor atomically xors val into the referenced word and returns the
// new value — the wire-capable fixed-function network atomic (the HPCC
// Random Access update).
func AtomicXor(me *Rank, p GlobalPtr[uint64], val uint64) uint64 {
	return core.AtomicXor(me, p, val)
}

// Copy is the blocking bulk transfer copy(src, dst, count).
func Copy[T any](me *Rank, src, dst GlobalPtr[T], count int) { core.Copy(me, src, dst, count) }

// AsyncCopy is the non-blocking bulk transfer async_copy, completing into
// done — an *Event, a *Promise, or an Onto(...) combination — or the
// implicit handle set when done is nil.
func AsyncCopy[T any](me *Rank, src, dst GlobalPtr[T], count int, done Completer) {
	core.AsyncCopy(me, src, dst, count, done)
}

// ReadSlice stages shared memory into a private slice.
func ReadSlice[T any](me *Rank, src GlobalPtr[T], dst []T) { core.ReadSlice(me, src, dst) }

// WriteSlice stages a private slice into shared memory.
func WriteSlice[T any](me *Rank, dst GlobalPtr[T], src []T) { core.WriteSlice(me, dst, src) }

// WriteSliceAsync is the non-blocking WriteSlice, completing into done
// (or the implicit handle set when done is nil).
func WriteSliceAsync[T any](me *Rank, dst GlobalPtr[T], src []T, done Completer) {
	core.WriteSliceAsync(me, dst, src, done)
}

// Futures-first one-sided operations: non-blocking reads, writes and
// copies returning a chainable *Future. On the wire conduit the
// request leaves immediately and the future resolves from progress
// dispatch when the reply lands — real overlap; in-process the data
// stages eagerly and the future carries the modeled completion time.

// ReadAsync starts a non-blocking one-sided read and returns its
// future; chain with Then to consume the value on arrival.
func ReadAsync[T any](me *Rank, p GlobalPtr[T]) *Future[T] { return core.ReadAsync(me, p) }

// WriteAsync starts a non-blocking one-sided write and returns its
// completion future.
func WriteAsync[T any](me *Rank, p GlobalPtr[T], v T) *Future[struct{}] {
	return core.WriteAsync(me, p, v)
}

// CopyAsync starts a non-blocking bulk transfer and returns its
// completion future (the future-returning async_copy).
func CopyAsync[T any](me *Rank, src, dst GlobalPtr[T], count int) *Future[struct{}] {
	return core.CopyAsync(me, src, dst, count)
}

// ReadSliceAsync starts staging shared memory into dst; the future
// resolves with dst once every element has landed.
func ReadSliceAsync[T any](me *Rank, src GlobalPtr[T], dst []T) *Future[[]T] {
	return core.ReadSliceAsync(me, src, dst)
}

// WriteSliceFuture starts the non-blocking WriteSlice and returns its
// completion future.
func WriteSliceFuture[T any](me *Rank, dst GlobalPtr[T], src []T) *Future[struct{}] {
	return core.WriteSliceFuture(me, dst, src)
}

// AsyncCopyFence completes all implicit-handle async copies (the
// "handle-less" synchronization of paper §V-E).
func AsyncCopyFence(me *Rank) { core.AsyncCopyFence(me) }

// Fence orders outstanding shared-memory operations (upc_fence).
func Fence(me *Rank) { core.Fence(me) }

// Synchronization (paper §III-F) and remote function invocation (§III-G).
type (
	// Event synchronizes non-blocking operations and async tasks.
	Event = core.Event
	// Future is the chainable completion object every asynchronous
	// operation can resolve: compose with Then/ThenAsync/WhenAll/
	// WhenAny, consume with Get/Wait/Ready on the owning rank.
	Future[T any] = core.Future[T]
	// Promise is the producer half of a future: operations complete
	// into it (Onto or anywhere an *Event is accepted), Finalize
	// returns the future of the set.
	Promise = core.Promise
	// Completer is the unified completion-target seam: *Event,
	// *Promise, Onto(...) sets and ToFinish() all satisfy it.
	Completer = core.Completer
	// Completion is an Onto(...) combination of completion targets;
	// it is a Completer and also an Async/AsyncTask option.
	Completion = core.Completion
	// Place designates async targets (a rank or group).
	Place = core.Place
	// TaskFn is an async task body.
	TaskFn = core.TaskFn
	// AsyncOpt configures Async (Payload, After, Signal, TaskFlops,
	// and Onto completion objects).
	AsyncOpt = core.AsyncOpt
	// Lock is a global mutual-exclusion lock (upc_lock).
	Lock = core.Lock
)

// NewEvent returns a fresh event.
func NewEvent() *Event { return core.NewEvent() }

// NewPromise creates a promise owned by the calling rank; complete
// operations into it and Finalize for the future of the whole set.
func NewPromise(me *Rank) *Promise { return core.NewPromise(me) }

// Onto combines completion targets (events, promises, ToFinish()) into
// one completion object, accepted by every *Event-taking operation and
// as an AsyncTask/Async option.
func Onto(targets ...Completer) *Completion { return core.Onto(targets...) }

// ToFinish returns a completion target attaching one operation to the
// enclosing Finish.
func ToFinish() Completer { return core.ToFinish() }

// Then attaches a synchronous continuation to a future; the returned
// future resolves with fn's result. Continuations run on the owning
// rank from progress dispatch and must not block (they may issue
// further asynchronous operations — the multi-hop chain idiom).
func Then[T, U any](f *Future[T], fn func(v T) U) *Future[U] { return core.Then(f, fn) }

// ThenAsync is Then with the continuation running as a task, with the
// owning rank's handle and task-dispatch cost.
func ThenAsync[T, U any](f *Future[T], fn func(me *Rank, v T) U) *Future[U] {
	return core.ThenAsync(f, fn)
}

// WhenAll joins futures: the result resolves with every value, in
// order, when the last input resolves.
func WhenAll[T any](fs ...*Future[T]) *Future[[]T] { return core.WhenAll(fs...) }

// WhenAny races futures: the result resolves with the first value.
func WhenAny[T any](fs ...*Future[T]) *Future[T] { return core.WhenAny(fs...) }

// Resolved returns an already-fulfilled future, for seeding chains.
func Resolved[T any](me *Rank, v T) *Future[T] { return core.Resolved(me, v) }

// On places an async on a single rank; OnRanks on a group; Everywhere on
// all ranks.
func On(rank int) Place          { return core.On(rank) }
func OnRanks(ranks ...int) Place { return core.OnRanks(ranks...) }
func Everywhere(me *Rank) Place  { return core.Everywhere(me) }

// Async launches fn on every rank of place: async(place)(function, args).
func Async(me *Rank, place Place, fn TaskFn, opts ...AsyncOpt) { core.Async(me, place, fn, opts...) }

// AsyncFuture launches fn and returns a future for its result.
func AsyncFuture[T any](me *Rank, target int, fn func(me *Rank) T, opts ...AsyncOpt) *Future[T] {
	return core.AsyncFuture(me, target, fn, opts...)
}

// AsyncAfter launches fn when `after` fires, optionally signaling
// `signal` on completion: async_after(place, after, signal)(task).
func AsyncAfter(me *Rank, place Place, after, signal *Event, fn TaskFn, opts ...AsyncOpt) {
	core.AsyncAfter(me, place, after, signal, fn, opts...)
}

// Async options.
func Payload(bytes int) AsyncOpt   { return core.Payload(bytes) }
func After(ev *Event) AsyncOpt     { return core.After(ev) }
func Signal(ev *Event) AsyncOpt    { return core.Signal(ev) }
func TaskFlops(f float64) AsyncOpt { return core.TaskFlops(f) }

// Finish waits for every async launched in body's dynamic scope (the
// paper's finish construct; a higher-order function replaces C++ RAII).
// Registered tasks (AsyncTask) are waited on transitively, across
// address spaces: the scope drains only when every remote descendant —
// including RPCs spawned by RPCs — has quiesced.
func Finish(me *Rank, body func()) { core.Finish(me, body) }

// Registered-function remote invocation (paper §III-G, wire-capable):
// Go closures cannot cross address spaces, so multi-process jobs ship
// a registered function's index plus POD-encoded arguments instead —
// the same compiler-free recipe real UPC++ uses (a function pointer
// and a trivially-copyable argument tuple). Register once per process,
// before the job starts, in the same order everywhere; then AsyncTask
// and AsyncTaskFuture run on both conduit backends, with requests,
// replies and finish acks coalescing on the wire's aggregation plane.

// Task is the portable handle of a registered function.
type Task = core.Task

// TaskBody is a registered task's implementation: it runs on the
// target rank with the calling rank and POD-encoded args, returning
// the reply bytes (nil when the caller asked for none). Bodies run
// inside progress dispatch and must not block.
type TaskBody = core.TaskBody

// RegisterTask registers fn under a unique name (panicking on
// duplicates) and returns the handle AsyncTask launches it by.
func RegisterTask(name string, fn TaskBody) Task { return core.RegisterTask(name, fn) }

// AsyncTask launches a registered task on every rank of place with
// POD-encoded arguments — the wire-capable async(place)(function,
// args...). Completion is observed through a surrounding Finish (which
// waits for the task's whole subtree), a Signal event (which fires
// when the body ran), or AsyncTaskFuture. After and TaskFlops work as
// with Async.
func AsyncTask(me *Rank, place Place, t Task, args []byte, opts ...AsyncOpt) {
	core.AsyncTask(me, place, t, args, opts...)
}

// AsyncTaskFuture launches a registered task on the target rank and
// returns a future resolving with the body's reply bytes.
func AsyncTaskFuture(me *Rank, target int, t Task, args []byte, opts ...AsyncOpt) *Future[[]byte] {
	return core.AsyncTaskFuture(me, target, t, args, opts...)
}

// PtrAt reconstructs a global pointer from its (rank, offset) pair —
// the deserialization half of passing global pointers through task
// arguments (encode with Where() and Offset()).
func PtrAt[T any](rank int, off uint64) GlobalPtr[T] { return core.PtrAt[T](rank, off) }

// TaskArgs packs u64 words — offsets, ranks, seeds, global-pointer
// halves — as a task-argument buffer, and TaskArgU64 consumes one word
// from the front (panicking on underflow: argument layout is part of a
// task's contract). Arbitrary POD layouts may of course be built with
// encoding/binary directly.
func TaskArgs(vs ...uint64) []byte { return rpc.U64s(vs...) }

// TaskArgU64 consumes one u64 from the front of an argument buffer.
func TaskArgU64(b []byte) (uint64, []byte) { return rpc.U64(b) }

// Message aggregation (beyond the paper; internal/agg): the Agg*
// operations buffer small remote ops into per-destination batches and
// ship each batch as one active message on wire-backed jobs —
// in-process they execute immediately. Completion attaches to an
// optional Event or the surrounding Finish; barriers drain the layer.

// AMHandler is an aggregated active-message body (see
// RegisterAMHandler).
type AMHandler = core.AMHandler

// RegisterAMHandler installs a handler for aggregated active messages;
// every rank must register the same ids before use.
func RegisterAMHandler(me *Rank, id uint16, fn AMHandler) { core.RegisterAMHandler(me, id, fn) }

// AggPut writes v through the aggregation layer, completing into done
// (any completion object, nil for barrier visibility).
func AggPut[T any](me *Rank, p GlobalPtr[T], v T, done Completer) { core.AggPut(me, p, v, done) }

// AggXor64 xors val into a shared word through the aggregation layer
// (fire-and-forget: no value travels back).
func AggXor64(me *Rank, p GlobalPtr[uint64], val uint64, done Completer) {
	core.AggXor64(me, p, val, done)
}

// AggSend delivers payload to the target rank's registered handler
// through the aggregation layer.
func AggSend(me *Rank, target int, id uint16, payload []byte, done Completer) {
	core.AggSend(me, target, id, payload, done)
}

// AggFlush ships every buffered aggregation batch without waiting.
func AggFlush(me *Rank) { core.AggFlush(me) }

// AggDrain flushes and waits until every aggregated op is applied.
func AggDrain(me *Rank) { core.AggDrain(me) }

// NewLock creates a global lock homed on the calling rank.
func NewLock(me *Rank) Lock { return core.NewLock(me) }

// Teams and collectives. The primary surface is teams-first: every
// collective is scoped to a Team — an ordered subset of ranks obtained
// from me.World() (everyone), me.Local() (the ranks sharing this
// rank's host, GASNet's PSHM domain) or SplitTeam (MPI_Comm_split
// semantics: same color ⇒ same team, ordered by key then world rank).
// Roots are team ranks, results are indexed in team-rank order, and
// on the hierarchical backend team collectives run in two phases —
// shared memory within a host, the wire between host leaders.
//
// The flat free functions below are deprecated world-team wrappers:
// Broadcast(me, v, root) is TeamBroadcast(me.World(), v, root).

// Team is an ordered subset of ranks that collectives are scoped to.
// Obtain one with me.World(), me.Local(), me.SplitTeam(color, key) or
// t.Split; teams are cheap, deterministic values — the same split on
// every member yields the same team id and ordering.
type Team = core.Team

// TeamBroadcast distributes the value of the team's `root` slot to
// every member.
func TeamBroadcast[T any](t *Team, v T, root int) T { return core.TeamBroadcast(t, v, root) }

// TeamAllGather collects one value per member, indexed in team-rank
// order (shared read-only result).
func TeamAllGather[T any](t *Team, v T) []T { return core.TeamAllGather(t, v) }

// TeamReduce combines one value per member on every member, folding in
// team-rank order (deterministic for non-commutative ops).
func TeamReduce[T any](t *Team, v T, op func(a, b T) T) T { return core.TeamReduce(t, v, op) }

// TeamReduceSlices element-wise combines equal-length slices onto the
// team's root slot; other members receive nil.
func TeamReduceSlices[T any](t *Team, contrib []T, op func(a, b T) T, root int) []T {
	return core.TeamReduceSlices(t, contrib, op, root)
}

// TeamExclusiveScan returns the exclusive prefix combination in
// team-rank order (slot 0 receives identity).
func TeamExclusiveScan[T any](t *Team, v T, op func(a, b T) T, identity T) T {
	return core.TeamExclusiveScan(t, v, op, identity)
}

// TeamGather collects one value per member on the root slot (indexed
// in team-rank order); other members receive nil.
func TeamGather[T any](t *Team, v T, root int) []T { return core.TeamGatherAll(t, v, root) }

// Broadcast distributes root's value to every rank.
//
// Deprecated: use TeamBroadcast(me.World(), v, root).
func Broadcast[T any](me *Rank, v T, root int) T { return core.TeamBroadcast(me.World(), v, root) }

// AllGather collects one value per rank (shared read-only result).
//
// Deprecated: use TeamAllGather(me.World(), v).
func AllGather[T any](me *Rank, v T) []T { return core.TeamAllGather(me.World(), v) }

// Reduce combines one value per rank on every rank.
//
// Deprecated: use TeamReduce(me.World(), v, op).
func Reduce[T any](me *Rank, v T, op func(a, b T) T) T { return core.TeamReduce(me.World(), v, op) }

// ReduceSlices element-wise combines slices onto root.
//
// Deprecated: use TeamReduceSlices(me.World(), contrib, op, root).
func ReduceSlices[T any](me *Rank, contrib []T, op func(a, b T) T, root int) []T {
	return core.TeamReduceSlices(me.World(), contrib, op, root)
}

// ExclusiveScan returns the exclusive prefix combination across ranks.
//
// Deprecated: use TeamExclusiveScan(me.World(), v, op, identity).
func ExclusiveScan[T any](me *Rank, v T, op func(a, b T) T, identity T) T {
	return core.TeamExclusiveScan(me.World(), v, op, identity)
}

// Multidimensional domains and arrays (paper §III-E), modeled on
// Titanium's; see internal/ndarray for the full API.
type (
	// Point is a coordinate in N-space.
	Point = ndarray.Point
	// RectDomain is a strided rectangular index box (exclusive upper
	// bound).
	RectDomain = ndarray.RectDomain
	// Domain is a union of disjoint rectangles.
	Domain = ndarray.Domain
	// NDArray is the multidimensional array over a RectDomain.
	NDArray[T any] = ndarray.Array[T]
	// NDRef is a POD handle to an NDArray, storable in shared arrays
	// (the paper's directory idiom).
	NDRef[T any] = ndarray.Ref[T]
)

// P builds a point: P(1,2,3) is the paper's POINT(1,2,3).
func P(coords ...int) Point { return ndarray.P(coords...) }

// RD builds a unit-stride domain [lo, hi).
func RD(lo, hi Point) RectDomain { return ndarray.RD(lo, hi) }

// RDS builds a strided domain: RECTDOMAIN((lo), (hi), (stride)).
func RDS(lo, hi, stride Point) RectDomain { return ndarray.RDS(lo, hi, stride) }

// RD3 is the 3-D unit-stride convenience constructor.
func RD3(lox, loy, loz, hix, hiy, hiz int) RectDomain {
	return ndarray.RD3(lox, loy, loz, hix, hiy, hiz)
}

// NewNDArray allocates an array over dom in the caller's shared segment:
// ARRAY(T, dom).
func NewNDArray[T any](me *Rank, dom RectDomain) *NDArray[T] {
	return ndarray.New[T](me, dom)
}

// NDFromRef reconstructs an array view from its POD handle.
func NDFromRef[T any](ref NDRef[T]) *NDArray[T] { return ndarray.FromRef(ref) }

// Machine and software profiles for the performance model (DESIGN.md §4).
var (
	// Edison models the paper's Cray XC30; Vesta its IBM BG/Q; LocalMachine
	// a laptop-scale profile for tests and wall-clock runs.
	Edison       = sim.Edison
	Vesta        = sim.Vesta
	LocalMachine = sim.Local
)
