package ndarray

import (
	"fmt"

	"upcxx/internal/core"
)

// DistArray is the paper's stated future work (§III-E: "in the future,
// we plan to take further advantage of this capability by building true
// distributed multidimensional arrays on top of the current
// non-distributed library"): a global N-dimensional index space cut into
// per-rank tiles, presented behind one handle. It is built exactly the
// way the paper suggests a user would: a directory of per-rank array
// handles (Ref values) assembled with a collective, with single-element
// access routed to the owning tile and bulk ghost exchange delegated to
// the one-sided CopyFrom machinery.
type DistArray[T any] struct {
	global RectDomain
	tiles  []Ref[T]     // directory, indexed by rank; shared read-only
	doms   []RectDomain // tile interiors, indexed by rank
	ghost  int          // ghost width of each tile allocation
	mine   *Array[T]    // this rank's tile (with ghost frame)
	rank   int
}

// NewDist collectively creates a distributed array over the global
// domain, cut into one tile per rank along the factorization dims (which
// must multiply to the rank count and divide the extents). Each tile is
// allocated with the given ghost width.
func NewDist[T any](me *core.Rank, global RectDomain, dims []int, ghost int) *DistArray[T] {
	if len(dims) != global.Dim() {
		panic("ndarray: NewDist dims must match the domain dimensionality")
	}
	ranks := 1
	for _, d := range dims {
		ranks *= d
	}
	if ranks != me.Ranks() {
		panic(fmt.Sprintf("ndarray: NewDist factorization %v covers %d ranks, job has %d", dims, ranks, me.Ranks()))
	}
	// This rank's coordinates in the rank grid (row-major over dims).
	coords := make([]int, len(dims))
	id := me.ID()
	for k := len(dims) - 1; k >= 0; k-- {
		coords[k] = id % dims[k]
		id /= dims[k]
	}
	// Tile bounds: even splits required.
	lo, hi := global.Lo(), global.Hi()
	tlo, thi := lo, hi
	for k := 0; k < global.Dim(); k++ {
		ext := hi.Get(k) - lo.Get(k)
		if ext%dims[k] != 0 {
			panic(fmt.Sprintf("ndarray: extent %d of dim %d not divisible by %d", ext, k, dims[k]))
		}
		w := ext / dims[k]
		tlo = tlo.With(k, lo.Get(k)+coords[k]*w)
		thi = thi.With(k, lo.Get(k)+(coords[k]+1)*w)
	}
	interior := RectDomain{lo: tlo, hi: thi, stride: Ones(global.Dim())}
	tile := New[T](me, interior.Grow(ghost))

	da := &DistArray[T]{
		global: global,
		ghost:  ghost,
		mine:   tile,
		rank:   me.ID(),
	}
	da.tiles = core.TeamAllGather(me.World(), tile.Ref())
	da.doms = core.TeamAllGather(me.World(), interior)
	me.Barrier()
	return da
}

// Global returns the global index domain.
func (da *DistArray[T]) Global() RectDomain { return da.global }

// Interior returns this rank's tile interior (in global coordinates).
func (da *DistArray[T]) Interior() RectDomain { return da.doms[da.rank] }

// Tile returns this rank's tile array (interior grown by the ghost
// width), for local compute.
func (da *DistArray[T]) Tile() *Array[T] { return da.mine }

// OwnerOf returns the rank whose interior contains p, or -1.
func (da *DistArray[T]) OwnerOf(p Point) int {
	for r, d := range da.doms {
		if d.Contains(p) {
			return r
		}
	}
	return -1
}

// Get reads the element at global point p from wherever it lives.
func (da *DistArray[T]) Get(me *core.Rank, p Point) T {
	r := da.OwnerOf(p)
	if r < 0 {
		panic(fmt.Sprintf("ndarray: %v outside the distributed domain %v", p, da.global))
	}
	if r == da.rank {
		return da.mine.Get(me, p)
	}
	return FromRef(da.tiles[r]).Get(me, p)
}

// Set writes the element at global point p.
func (da *DistArray[T]) Set(me *core.Rank, p Point, v T) {
	r := da.OwnerOf(p)
	if r < 0 {
		panic(fmt.Sprintf("ndarray: %v outside the distributed domain %v", p, da.global))
	}
	if r == da.rank {
		da.mine.Set(me, p, v)
		return
	}
	FromRef(da.tiles[r]).Set(me, p, v)
}

// ExchangeGhosts pulls every ghost cell of this rank's tile from the
// interiors that own it, overlapping all transfers through one event.
// Collective in effect (all ranks should call it between compute phases);
// the caller provides the barrier that separates phases, as usual in the
// paper's memory model.
func (da *DistArray[T]) ExchangeGhosts(me *core.Rank) {
	if da.ghost == 0 {
		return
	}
	ev := core.NewEvent()
	footprint := da.mine.Domain()
	shell := NewDomain(footprint).Subtract(da.doms[da.rank])
	for _, rect := range shell.Rects() {
		for r, dom := range da.doms {
			if r == da.rank {
				continue
			}
			need := rect.Intersect(dom)
			if need.IsEmpty() {
				continue
			}
			da.mine.Constrict(need).CopyFromAsync(me, FromRef(da.tiles[r]).Constrict(need), ev)
		}
	}
	ev.Wait(me)
}
