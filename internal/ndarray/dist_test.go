package ndarray

import (
	"testing"

	"upcxx/internal/core"
)

func TestDistArrayGetSetAcrossTiles(t *testing.T) {
	core.Run(testCfg(4), func(me *core.Rank) {
		da := NewDist[int64](me, RD2(0, 0, 8, 8), []int{2, 2}, 0)
		// Every rank writes a diagonal stripe, regardless of ownership.
		for i := me.ID(); i < 8; i += me.Ranks() {
			da.Set(me, P2(i, i), int64(100+i))
		}
		me.Barrier()
		for i := 0; i < 8; i++ {
			if got := da.Get(me, P2(i, i)); got != int64(100+i) {
				t.Errorf("da[%d,%d] = %d", i, i, got)
			}
		}
		me.Barrier()
	})
}

func TestDistArrayOwnership(t *testing.T) {
	core.Run(testCfg(4), func(me *core.Rank) {
		da := NewDist[int32](me, RD2(0, 0, 8, 8), []int{2, 2}, 0)
		if me.ID() == 0 {
			// Row-major rank grid: rank 0 owns [0,4)x[0,4), rank 1 owns
			// [0,4)x[4,8), rank 2 [4,8)x[0,4), rank 3 [4,8)x[4,8).
			cases := map[int]Point{0: P2(0, 0), 1: P2(0, 7), 2: P2(7, 0), 3: P2(7, 7)}
			for want, p := range cases {
				if got := da.OwnerOf(p); got != want {
					t.Errorf("OwnerOf(%v) = %d, want %d", p, got, want)
				}
			}
			if da.OwnerOf(P2(8, 8)) != -1 {
				t.Error("outside point should have no owner")
			}
		}
		me.Barrier()
	})
}

func TestDistArrayGhostExchange(t *testing.T) {
	// Each rank fills its interior with its id; after the exchange every
	// ghost cell holds the owning neighbor's id.
	core.Run(testCfg(4), func(me *core.Rank) {
		da := NewDist[int32](me, RD2(0, 0, 8, 8), []int{2, 2}, 1)
		tile := da.Tile()
		da.Interior().ForEach(func(p Point) { tile.Set(me, p, int32(me.ID()+1)) })
		me.Barrier()
		da.ExchangeGhosts(me)
		me.Barrier()

		footprint := tile.Domain()
		shell := NewDomain(footprint).Subtract(da.Interior())
		checked := 0
		shell.ForEach(func(p Point) {
			owner := da.OwnerOf(p)
			if owner < 0 {
				return // global boundary ghost; stays zero
			}
			if got := tile.Get(me, p); got != int32(owner+1) {
				t.Errorf("rank %d ghost %v = %d, want %d", me.ID(), p, got, owner+1)
			}
			checked++
		})
		if checked == 0 {
			t.Error("no interior-adjacent ghosts checked")
		}
		me.Barrier()
	})
}

func TestDistArrayCornersExchangeToo(t *testing.T) {
	// Unlike a face-only exchange, the shell subtraction covers edge and
	// corner ghosts (needed by 27-point stencils).
	core.Run(testCfg(4), func(me *core.Rank) {
		da := NewDist[int32](me, RD2(0, 0, 4, 4), []int{2, 2}, 1)
		tile := da.Tile()
		da.Interior().ForEach(func(p Point) { tile.Set(me, p, int32(10*(me.ID()+1))) })
		me.Barrier()
		da.ExchangeGhosts(me)
		me.Barrier()
		if me.ID() == 0 {
			// Rank 0's corner ghost (2,2) is rank 3's interior corner.
			if got := tile.Get(me, P2(2, 2)); got != 40 {
				t.Errorf("corner ghost = %d, want 40", got)
			}
		}
		me.Barrier()
	})
}

func TestDistArrayBadFactorizationPanics(t *testing.T) {
	core.Run(testCfg(3), func(me *core.Rank) {
		defer func() {
			if recover() == nil {
				t.Error("factorization not matching rank count should panic")
			}
		}()
		NewDist[int32](me, RD2(0, 0, 6, 6), []int{2, 2}, 0)
	})
}
