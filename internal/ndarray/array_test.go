package ndarray

import (
	"testing"

	"upcxx/internal/core"
	"upcxx/internal/sim"
)

func testCfg(ranks int) core.Config {
	return core.Config{Ranks: ranks, Machine: sim.Local, Virtual: true}
}

func TestArrayLocalGetSet(t *testing.T) {
	core.Run(testCfg(1), func(me *core.Rank) {
		a := New[float64](me, RD3(1, 2, 3, 5, 6, 7))
		a.Domain().ForEach(func(p Point) {
			a.Set(me, p, float64(p.Get(0)*100+p.Get(1)*10+p.Get(2)))
		})
		a.Domain().ForEach(func(p Point) {
			want := float64(p.Get(0)*100 + p.Get(1)*10 + p.Get(2))
			if got := a.Get(me, p); got != want {
				t.Errorf("a[%v] = %v, want %v", p, got, want)
			}
		})
		if !a.Unstrided() {
			t.Error("fresh array over unit-stride domain should be unstrided")
		}
	})
}

func TestArrayIndexOutsideDomainPanics(t *testing.T) {
	core.Run(testCfg(1), func(me *core.Rank) {
		a := New[int32](me, RD2(0, 0, 4, 4))
		defer func() {
			if recover() == nil {
				t.Error("out-of-domain access should panic")
			}
		}()
		a.Get(me, P2(4, 0))
	})
}

func TestArrayConstrictSharesBacking(t *testing.T) {
	core.Run(testCfg(1), func(me *core.Rank) {
		a := New[int64](me, RD2(0, 0, 8, 8))
		v := a.Constrict(RD2(2, 2, 4, 4))
		v.Set(me, P2(3, 3), 99)
		if a.Get(me, P2(3, 3)) != 99 {
			t.Error("view write not visible through parent")
		}
		if v.Domain().Size() != 4 {
			t.Errorf("constrict size = %d, want 4", v.Domain().Size())
		}
		// Constricting beyond the domain clips.
		w := a.Constrict(RD2(6, 6, 20, 20))
		if w.Domain().Size() != 4 {
			t.Errorf("clipped constrict = %v", w.Domain())
		}
	})
}

func TestArrayTranslate(t *testing.T) {
	core.Run(testCfg(1), func(me *core.Rank) {
		a := New[int32](me, RD2(0, 0, 4, 4))
		a.Set(me, P2(1, 1), 42)
		b := a.Translate(P2(10, 10))
		if b.Get(me, P2(11, 11)) != 42 {
			t.Error("translated view should address old (1,1) as (11,11)")
		}
		b.Set(me, P2(10, 10), 7)
		if a.Get(me, P2(0, 0)) != 7 {
			t.Error("translated write not visible in parent")
		}
	})
}

func TestArraySlice(t *testing.T) {
	core.Run(testCfg(1), func(me *core.Rank) {
		a := New[int32](me, RD3(0, 0, 0, 4, 4, 4))
		a.Domain().ForEach(func(p Point) {
			a.Set(me, p, int32(p.Get(0)*16+p.Get(1)*4+p.Get(2)))
		})
		// Fix j = 2: a 2-D plane indexed by (i, k).
		s := a.Slice(1, 2)
		if s.Domain().Dim() != 2 {
			t.Fatalf("slice dim = %d", s.Domain().Dim())
		}
		s.Domain().ForEach(func(p Point) {
			want := int32(p.Get(0)*16 + 2*4 + p.Get(1))
			if got := s.Get(me, p); got != want {
				t.Errorf("slice[%v] = %d, want %d", p, got, want)
			}
		})
		// Writes through the slice hit the parent.
		s.Set(me, P2(0, 0), -1)
		if a.Get(me, P3(0, 2, 0)) != -1 {
			t.Error("slice write not visible in parent")
		}
	})
}

func TestArrayPermute(t *testing.T) {
	core.Run(testCfg(1), func(me *core.Rank) {
		a := New[int32](me, RD2(0, 0, 3, 5))
		a.Set(me, P2(1, 4), 13)
		tr := a.Permute([]int{1, 0}) // transpose
		if !tr.Domain().Equal(RD2(0, 0, 5, 3)) {
			t.Errorf("transposed domain = %v", tr.Domain())
		}
		if tr.Get(me, P2(4, 1)) != 13 {
			t.Error("transpose should swap indices")
		}
	})
}

func TestRow3FastPath(t *testing.T) {
	core.Run(testCfg(1), func(me *core.Rank) {
		a := New[float64](me, RD3(0, 0, 0, 3, 3, 8))
		a.Set(me, P3(1, 2, 5), 3.5)
		row := a.Row3(me, 1, 2)
		if len(row) != 8 {
			t.Fatalf("row length = %d", len(row))
		}
		if row[5] != 3.5 {
			t.Error("Row3 misaligned")
		}
		row[0] = 1.5
		if a.Get(me, P3(1, 2, 0)) != 1.5 {
			t.Error("Row3 write not visible")
		}
	})
}

func TestRemoteGetSet(t *testing.T) {
	core.Run(testCfg(2), func(me *core.Rank) {
		var ref Ref[int64]
		if me.ID() == 1 {
			a := New[int64](me, RD2(0, 0, 4, 4))
			a.Set(me, P2(2, 2), 1234)
			ref = a.Ref()
		}
		ref = core.Broadcast(me, ref, 1)
		me.Barrier()
		if me.ID() == 0 {
			remote := FromRef(ref)
			if got := remote.Get(me, P2(2, 2)); got != 1234 {
				t.Errorf("remote get = %d, want 1234", got)
			}
			remote.Set(me, P2(0, 3), 77)
		}
		me.Barrier()
		if me.ID() == 1 {
			a := FromRef(ref)
			if a.Get(me, P2(0, 3)) != 77 {
				t.Error("remote set not visible at owner")
			}
		}
		me.Barrier()
	})
}

func TestCopyFromLocalIntersection(t *testing.T) {
	core.Run(testCfg(1), func(me *core.Rank) {
		a := New[int32](me, RD2(0, 0, 6, 6))
		b := New[int32](me, RD2(3, 3, 9, 9))
		b.Domain().ForEach(func(p Point) { b.Set(me, p, int32(p.Get(0)+10*p.Get(1))) })
		a.CopyFrom(me, b)
		// Only the overlap [3,6)x[3,6) was copied.
		a.Domain().ForEach(func(p Point) {
			want := int32(0)
			if p.Get(0) >= 3 && p.Get(1) >= 3 {
				want = int32(p.Get(0) + 10*p.Get(1))
			}
			if got := a.Get(me, p); got != want {
				t.Errorf("a[%v] = %d, want %d", p, got, want)
			}
		})
	})
}

func TestGhostExchangeTwoRanks(t *testing.T) {
	// The paper's headline array operation: each rank owns an interior
	// in global coordinates, grown by one ghost layer; one statement
	// pulls the neighbor's boundary plane.
	const n = 4
	core.Run(testCfg(2), func(me *core.Rank) {
		lo := me.ID() * n
		interior := RD3(lo, 0, 0, lo+n, n, n)
		grid := New[float64](me, interior.Grow(1))
		// Fill the interior with a rank-identifying pattern.
		interior.ForEach(func(p Point) { grid.Set(me, p, float64(me.ID()*1000+p.Get(0))) })

		refs := core.AllGather(me, grid.Ref())
		me.Barrier()

		other := FromRef(refs[1-me.ID()])
		// Ghost face toward the neighbor (low or high x).
		var ghost RectDomain
		if me.ID() == 0 {
			ghost = grid.Domain().Face(0, +1, 1).Intersect(RD3(n, 0, 0, n+1, n, n))
		} else {
			ghost = grid.Domain().Face(0, -1, 1).Intersect(RD3(n-1, 0, 0, n, n, n))
		}
		grid.Constrict(ghost).CopyFrom(me, other)
		me.Barrier()

		ghost.ForEach(func(p Point) {
			want := float64((1-me.ID())*1000 + p.Get(0))
			if got := grid.Get(me, p); got != want {
				t.Errorf("rank %d ghost[%v] = %v, want %v", me.ID(), p, got, want)
			}
		})
	})
}

func TestCopyFromThirdParty(t *testing.T) {
	// Rank 0 orchestrates a copy from rank 1's array to rank 2's array.
	core.Run(testCfg(3), func(me *core.Rank) {
		var r Ref[int32]
		if me.ID() > 0 {
			a := New[int32](me, RD2(0, 0, 4, 4))
			if me.ID() == 1 {
				a.Domain().ForEach(func(p Point) { a.Set(me, p, int32(p.Get(0)*4+p.Get(1))) })
			}
			r = a.Ref()
		}
		refs := core.AllGather(me, r)
		me.Barrier()
		if me.ID() == 0 {
			src := FromRef(refs[1])
			dst := FromRef(refs[2])
			dst.CopyFrom(me, src)
		}
		me.Barrier()
		if me.ID() == 2 {
			a := FromRef(refs[2])
			a.Domain().ForEach(func(p Point) {
				if got := a.Get(me, p); got != int32(p.Get(0)*4+p.Get(1)) {
					t.Errorf("third-party copy: [%v] = %d", p, got)
				}
			})
		}
		me.Barrier()
	})
}

func TestCopyFromAsyncWithEvent(t *testing.T) {
	core.Run(testCfg(2), func(me *core.Rank) {
		interior := RD2(0, 0, 4, 4)
		a := New[int64](me, interior)
		if me.ID() == 1 {
			a.Domain().ForEach(func(p Point) { a.Set(me, p, 5) })
		}
		refs := core.AllGather(me, a.Ref())
		me.Barrier()
		if me.ID() == 0 {
			ev := core.NewEvent()
			a.CopyFromAsync(me, FromRef(refs[1]), ev)
			ev.Wait(me)
			if a.Get(me, P2(3, 3)) != 5 {
				t.Error("async ghost copy did not land")
			}
		}
		me.Barrier()
	})
}

func TestCopyDisjointIsNoop(t *testing.T) {
	core.Run(testCfg(1), func(me *core.Rank) {
		a := New[int32](me, RD2(0, 0, 2, 2))
		b := New[int32](me, RD2(10, 10, 12, 12))
		b.Fill(me, 9)
		a.CopyFrom(me, b)
		a.Domain().ForEach(func(p Point) {
			if a.Get(me, p) != 0 {
				t.Error("disjoint copy wrote data")
			}
		})
	})
}

func TestStridedViewCopy(t *testing.T) {
	// Copy into every other element: constrict with a strided domain.
	core.Run(testCfg(1), func(me *core.Rank) {
		a := New[int32](me, RD1(0, 10))
		b := New[int32](me, RDS(P1(0), P1(10), P1(2)))
		b.Domain().ForEach(func(p Point) { b.Set(me, p, int32(100+p.Get(0))) })
		a.Constrict(RDS(P1(0), P1(10), P1(2))).CopyFrom(me, b)
		for i := 0; i < 10; i++ {
			want := int32(0)
			if i%2 == 0 {
				want = int32(100 + i)
			}
			if got := a.Get(me, P1(i)); got != want {
				t.Errorf("a[%d] = %d, want %d", i, got, want)
			}
		}
	})
}

func TestDirectoryIdiom(t *testing.T) {
	// shared_array< ndarray<int,3> > dir(THREADS) from the paper §III-E.
	core.Run(testCfg(3), func(me *core.Rank) {
		dir := core.NewSharedArray[Ref[int32]](me, me.Ranks(), 1)
		grid := New[int32](me, RD3(0, 0, 0, 2, 2, 2).Translate(P3(me.ID()*2, 0, 0)))
		grid.Fill(me, int32(me.ID()+1))
		dir.Set(me, me.ID(), grid.Ref())
		me.Barrier()
		// Every rank reads every other rank's tile through the directory.
		for r := 0; r < me.Ranks(); r++ {
			tile := FromRef(dir.Get(me, r))
			p := tile.Domain().Lo()
			if got := tile.Get(me, p); got != int32(r+1) {
				t.Errorf("dir tile %d value %d, want %d", r, got, r+1)
			}
		}
		me.Barrier()
	})
}

func TestUnstridedFlagAfterViews(t *testing.T) {
	core.Run(testCfg(1), func(me *core.Rank) {
		a := New[int32](me, RD3(0, 0, 0, 4, 4, 4))
		if !a.Unstrided() {
			t.Error("fresh array should be unstrided")
		}
		if a.Constrict(RD3(1, 1, 1, 3, 3, 3)).Unstrided() {
			t.Error("proper constrict view is strided")
		}
		if a.Slice(0, 0).Unstrided() {
			t.Error("slice view is strided")
		}
		if a.Constrict(a.Domain()).Unstrided() != true {
			t.Error("identity constrict keeps unstrided")
		}
	})
}
