package ndarray

import (
	"testing"

	"upcxx/internal/core"
)

// TestTableII walks Table II of the paper: every Titanium domain/array
// syntax has a UPC++ equivalent, and here a Go equivalent. Each row is
// exercised with the paper's own literal values.
func TestTableII(t *testing.T) {
	core.Run(testCfg(1), func(me *core.Rank) {
		// Point literals: [1, 2] and [1, 2, 3] -> POINT(1, 2), POINT(1, 2, 3).
		p2 := P(1, 2)
		p3 := P(1, 2, 3)
		if p2.Dim() != 2 || p3.Dim() != 3 {
			t.Error("point literals")
		}

		// Rectangular domains: [[1,2] : [8,8] : [1,3]] (Titanium,
		// inclusive) -> RECTDOMAIN((1,2), (9,9), (1,3)) (UPC++,
		// exclusive upper bound, one greater per dimension).
		rd := RDS(P(1, 2), P(9, 9), P(1, 3))
		if rd.Size() != 8*3 { // x: 1..8 step 1 (8), y: 2,5,8 (3)
			t.Errorf("rectdomain size = %d, want 24", rd.Size())
		}

		// Domain arithmetic: rd1 + rd2 (union/bounding), rd1 * rd2
		// (intersection).
		rd1 := RD2(0, 0, 4, 4)
		rd2 := RD2(2, 2, 6, 6)
		if rd1.Intersect(rd2).Size() != 4 {
			t.Error("rd1 * rd2")
		}
		if NewDomain(rd1, rd2).Size() != 16+16-4 {
			t.Error("rd1 + rd2")
		}

		// Array literals: new int[[1,2]:[8,8]:[1,3]] ->
		// ARRAY(int, ((1,2), (9,9), (1,3))).
		arr := New[int32](me, rd)
		if arr.Domain().Size() != 24 {
			t.Error("array literal over strided domain")
		}

		// Array indexing: array[pt] both ways.
		arr.Set(me, P(3, 5), 11)
		if arr.Get(me, P(3, 5)) != 11 {
			t.Error("array[pt]")
		}

		// Iteration: foreach (p in dom) -> ForEach / range All().
		n := 0
		rd.ForEach(func(Point) { n++ })
		for range rd.All() {
			n++
		}
		if n != 48 {
			t.Errorf("foreach visited %d, want 48", n)
		}
	})
}
