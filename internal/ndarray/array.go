package ndarray

import (
	"fmt"

	"upcxx/internal/core"
)

// Array is an N-dimensional array over a RectDomain, stored contiguously
// (row-major over the domain lattice) in the shared segment of a single
// rank (paper §III-E: "the elements of an array must be located on a
// single thread, which may be in a remote memory location"). Views created
// by Constrict, Slice, Translate and Permute share the backing store.
//
// Indexing from the owning rank is a direct memory access; from any other
// rank the overloaded accessors fetch or store remotely, and CopyFrom
// performs the one-sided intersect/pack/transfer/unpack protocol that
// makes ghost exchanges a single statement.
type Array[T any] struct {
	dom RectDomain // the view's index domain (a sublattice of the allocation's)

	// Addressing is anchored to the allocation, not the view, so that all
	// views of one array agree on where each index point lives:
	// offsetOf(p) = offset + sum_k ((p_k - origin_k) / lat_k) * strides_k.
	origin  Point        // allocation's index-space origin
	lat     Point        // allocation's lattice stride
	strides [MaxDims]int // physical stride (in elements) per dimension
	offset  int          // element offset of origin within the allocation

	owner    int
	gp       core.GlobalPtr[T]
	data     []T  // whole allocation; non-nil only on the owning rank
	alloclen int  // allocation length in elements
	unstrid  bool // logical row-major == physical layout (paper's "unstrided")
}

// New allocates an array over dom in the calling rank's shared segment.
// Elements are zero-valued. The layout is packed row-major over the
// domain's points, so a unit-stride domain yields an unstrided array (the
// paper's template specialization that skips stride arithmetic).
func New[T any](me *core.Rank, dom RectDomain) *Array[T] {
	n := dom.Size()
	gp := core.Allocate[T](me, me.ID(), n)
	a := &Array[T]{
		dom:      dom,
		origin:   dom.Lo(),
		lat:      dom.Stride(),
		owner:    me.ID(),
		gp:       gp,
		alloclen: n,
	}
	if n > 0 {
		a.data = core.LocalSlice(me, gp, n)
	}
	// Packed row-major strides over the lattice extents.
	stride := 1
	for k := dom.Dim() - 1; k >= 0; k-- {
		a.strides[k] = stride
		stride *= dom.Extent(k)
	}
	a.unstrid = true
	return a
}

// Domain returns the array's (view's) index domain.
func (a *Array[T]) Domain() RectDomain { return a.dom }

// Owner returns the rank holding the elements.
func (a *Array[T]) Owner() int { return a.owner }

// Unstrided reports whether the view's logical layout matches physical
// memory (enabling the fast indexing specialization of the paper §III-E).
func (a *Array[T]) Unstrided() bool { return a.unstrid }

// index maps a view-domain point to an element offset in the allocation.
func (a *Array[T]) index(p Point) int {
	if !a.dom.Contains(p) {
		panic(fmt.Sprintf("ndarray: index %v outside domain %v", p, a.dom))
	}
	off := a.offset
	for k := 0; k < a.dom.Dim(); k++ {
		off += ((p.Get(k) - a.origin.Get(k)) / a.lat.Get(k)) * a.strides[k]
	}
	return off
}

// Get reads the element at p, remotely if the array lives elsewhere (the
// overloaded index operator of the paper).
func (a *Array[T]) Get(me *core.Rank, p Point) T {
	i := a.index(p)
	if a.owner == me.ID() {
		me.Lapse(2) // modeled L1 access
		return a.storage(me)[i]
	}
	return core.Read(me, a.gp.Add(i))
}

// Set writes the element at p, remotely if needed.
func (a *Array[T]) Set(me *core.Rank, p Point, v T) {
	i := a.index(p)
	if a.owner == me.ID() {
		me.Lapse(2)
		a.storage(me)[i] = v
		return
	}
	core.Write(me, a.gp.Add(i), v)
}

// Local returns the element storage for local compute loops; it panics if
// the array is remote. Index through Idx/Row3 helpers.
func (a *Array[T]) Local(me *core.Rank) []T {
	if a.owner != me.ID() {
		panic(fmt.Sprintf("ndarray: Local access to array owned by rank %d from rank %d", a.owner, me.ID()))
	}
	return a.storage(me)
}

// Idx returns the storage offset of point p (for use with Local).
func (a *Array[T]) Idx(p Point) int { return a.index(p) }

// Idx3 returns the storage offset of (i,j,k) in a 3-D view without
// constructing a Point — the hot-loop form.
func (a *Array[T]) Idx3(i, j, k int) int {
	return a.offset +
		((i-a.origin.Get(0))/a.lat.Get(0))*a.strides[0] +
		((j-a.origin.Get(1))/a.lat.Get(1))*a.strides[1] +
		((k-a.origin.Get(2))/a.lat.Get(2))*a.strides[2]
}

// Row3 returns the contiguous run of elements [ (i,j,klo) .. (i,j,khi) )
// of an unstrided 3-D array — the paper's one-dimension-at-a-time indexing
// that lets the compiler lift index arithmetic out of the inner loop.
func (a *Array[T]) Row3(me *core.Rank, i, j int) []T {
	if !a.unstrid || a.dom.Dim() != 3 {
		panic("ndarray: Row3 requires an unstrided 3-D array")
	}
	base := a.Idx3(i, j, a.dom.lo.Get(2))
	return a.Local(me)[base : base+a.dom.Extent(2)]
}

// view clones the descriptor with a new domain, keeping the backing.
func (a *Array[T]) view(dom RectDomain) *Array[T] {
	v := *a
	v.dom = dom
	return &v
}

// Constrict restricts the view to a subdomain (the paper's
// A.constrict(d); Titanium's restrict). d must use the same lattice.
func (a *Array[T]) Constrict(d RectDomain) *Array[T] {
	inter := a.dom.Intersect(d)
	v := a.view(inter)
	v.unstrid = a.unstrid && inter.Equal(a.dom)
	return v
}

// Translate shifts the index space by off: element formerly at p is now
// addressed as p+off. The backing store is untouched.
func (a *Array[T]) Translate(off Point) *Array[T] {
	v := a.view(a.dom.Translate(off))
	v.origin = a.origin.Add(off)
	return v
}

// Slice fixes dimension dim at coordinate idx, yielding an
// (N-1)-dimensional view (the paper's slicing of a 3-D grid into a 2-D
// ghost plane).
func (a *Array[T]) Slice(dim, idx int) *Array[T] {
	d := idx - a.dom.lo.Get(dim)
	s := a.dom.stride.Get(dim)
	if d < 0 || idx >= a.dom.hi.Get(dim) || d%s != 0 {
		panic(fmt.Sprintf("ndarray: Slice index %d outside dimension %d of %v", idx, dim, a.dom))
	}
	v := *a
	v.offset = a.offset + ((idx-a.origin.Get(dim))/a.lat.Get(dim))*a.strides[dim]
	v.dom = a.dom.Slice(dim)
	v.origin = a.origin.Drop(dim)
	v.lat = a.lat.Drop(dim)
	k := 0
	for i := 0; i < a.dom.Dim(); i++ {
		if i == dim {
			continue
		}
		v.strides[k] = a.strides[i]
		k++
	}
	for ; k < MaxDims; k++ {
		v.strides[k] = 0
	}
	v.unstrid = false
	return &v
}

// Permute reorders the view's dimensions by perm (new dimension i is old
// dimension perm[i]) — a transpose without data movement.
func (a *Array[T]) Permute(perm []int) *Array[T] {
	v := *a
	v.dom = a.dom.Permute(perm)
	v.origin = a.origin.Permute(perm)
	v.lat = a.lat.Permute(perm)
	for i, src := range perm {
		v.strides[i] = a.strides[src]
	}
	v.unstrid = false
	return &v
}

// Fill sets every element of the (local) view to v.
func (a *Array[T]) Fill(me *core.Rank, v T) {
	data := a.Local(me)
	a.dom.ForEach(func(p Point) { data[a.index(p)] = v })
	me.MemWork(float64(a.dom.Size() * 8))
}

// elemBytes returns the modeled element size.
func (a *Array[T]) elemBytes() int {
	var t T
	return int(sizeofT(t))
}
