package ndarray

import (
	"fmt"
	"iter"
)

// RectDomain is a strided rectangular index box: the points
// lo + k*stride for every combination of k >= 0 staying below hi
// (exclusive upper bound, the convention UPC++ chose over Titanium's
// inclusive one — paper footnote 1).
type RectDomain struct {
	lo, hi, stride Point
}

// RD builds a unit-stride rectangular domain [lo, hi).
func RD(lo, hi Point) RectDomain {
	lo.check(hi, "RD")
	return RectDomain{lo: lo, hi: hi, stride: Ones(lo.Dim())}
}

// RDS builds a strided rectangular domain: the paper's
// RECTDOMAIN((1,2,3), (5,6,7), (1,1,2)). Every stride must be >= 1.
func RDS(lo, hi, stride Point) RectDomain {
	lo.check(hi, "RDS")
	lo.check(stride, "RDS")
	for d := 0; d < lo.Dim(); d++ {
		if stride.Get(d) < 1 {
			panic(fmt.Sprintf("ndarray: stride %v must be >= 1 in every dimension", stride))
		}
	}
	return RectDomain{lo: lo, hi: hi, stride: stride}
}

// RD1, RD2 and RD3 are unit-stride convenience constructors.
func RD1(lo, hi int) RectDomain             { return RD(P1(lo), P1(hi)) }
func RD2(lox, loy, hix, hiy int) RectDomain { return RD(P2(lox, loy), P2(hix, hiy)) }
func RD3(lox, loy, loz, hix, hiy, hiz int) RectDomain {
	return RD(P3(lox, loy, loz), P3(hix, hiy, hiz))
}

// Dim returns the dimensionality.
func (d RectDomain) Dim() int { return d.lo.Dim() }

// Lo returns the inclusive lower bound.
func (d RectDomain) Lo() Point { return d.lo }

// Hi returns the exclusive upper bound.
func (d RectDomain) Hi() Point { return d.hi }

// Stride returns the per-dimension stride.
func (d RectDomain) Stride() Point { return d.stride }

// Extent returns the number of points along dimension k.
func (d RectDomain) Extent(k int) int {
	w := d.hi.Get(k) - d.lo.Get(k)
	if w <= 0 {
		return 0
	}
	s := d.stride.Get(k)
	return (w + s - 1) / s
}

// Size returns the number of points in the domain.
func (d RectDomain) Size() int {
	n := 1
	for k := 0; k < d.Dim(); k++ {
		n *= d.Extent(k)
	}
	return n
}

// IsEmpty reports whether the domain contains no points.
func (d RectDomain) IsEmpty() bool { return d.Size() == 0 }

// Contains reports whether p is a point of the domain (inside the box and
// on the stride lattice).
func (d RectDomain) Contains(p Point) bool {
	if p.Dim() != d.Dim() {
		return false
	}
	for k := 0; k < d.Dim(); k++ {
		v := p.Get(k)
		if v < d.lo.Get(k) || v >= d.hi.Get(k) {
			return false
		}
		if (v-d.lo.Get(k))%d.stride.Get(k) != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether two domains contain the same points. Empty
// domains are all equal.
func (d RectDomain) Equal(o RectDomain) bool {
	if d.IsEmpty() && o.IsEmpty() {
		return d.Dim() == o.Dim()
	}
	return d.lo == o.lo && d.hi == o.hi && d.stride == o.stride
}

// Translate returns the domain shifted by p (domain arithmetic rd + pt).
func (d RectDomain) Translate(p Point) RectDomain {
	return RectDomain{lo: d.lo.Add(p), hi: d.hi.Add(p), stride: d.stride}
}

// Intersect returns the intersection (Titanium's rd1 * rd2). Strides must
// agree where both domains are strided; arbitrary lattice intersection
// (different strides) is not supported, matching the library's use cases.
func (d RectDomain) Intersect(o RectDomain) RectDomain {
	d.lo.check(o.lo, "Intersect")
	if d.stride != o.stride {
		// Allow intersecting with a unit-stride box from either side.
		if o.stride == Ones(o.Dim()) {
			return d.clipBox(o.lo, o.hi)
		}
		if d.stride == Ones(d.Dim()) {
			return o.clipBox(d.lo, d.hi)
		}
		panic(fmt.Sprintf("ndarray: Intersect of incompatible strides %v and %v", d.stride, o.stride))
	}
	if d.stride != Ones(d.Dim()) {
		// Equal strides: lattices must be congruent.
		for k := 0; k < d.Dim(); k++ {
			s := d.stride.Get(k)
			if (d.lo.Get(k)-o.lo.Get(k))%s != 0 {
				return RectDomain{lo: d.lo, hi: d.lo, stride: d.stride} // disjoint lattices
			}
		}
	}
	return d.clipBox(o.lo, o.hi)
}

// clipBox clips d to the box [blo, bhi), keeping d's lattice.
func (d RectDomain) clipBox(blo, bhi Point) RectDomain {
	lo, hi := d.lo, d.hi
	for k := 0; k < d.Dim(); k++ {
		s := d.stride.Get(k)
		l := lo.Get(k)
		if b := blo.Get(k); b > l {
			// Round up to the next lattice point.
			l += ((b - l + s - 1) / s) * s
		}
		h := hi.Get(k)
		if b := bhi.Get(k); b < h {
			h = b
		}
		lo = lo.With(k, l)
		hi = hi.With(k, h)
	}
	return RectDomain{lo: lo, hi: hi, stride: d.stride}
}

// BoundingBox returns the smallest unit-stride domain containing both
// operands.
func (d RectDomain) BoundingBox(o RectDomain) RectDomain {
	if d.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return d
	}
	return RD(d.lo.Min(o.lo), d.hi.Max(o.hi))
}

// Shrink returns the domain with k points trimmed from every side in
// every dimension (the interior view of a grid with ghost cells).
func (d RectDomain) Shrink(k int) RectDomain {
	g := Ones(d.Dim()).Scale(k)
	return RectDomain{lo: d.lo.Add(g), hi: d.hi.Sub(g), stride: d.stride}
}

// Grow returns the domain with k points added on every side in every
// dimension (accrete; builds the ghosted footprint of an interior).
func (d RectDomain) Grow(k int) RectDomain {
	g := Ones(d.Dim()).Scale(k)
	return RectDomain{lo: d.lo.Sub(g), hi: d.hi.Add(g), stride: d.stride}
}

// Face returns the thickness-thick face of the domain on the given side
// of dimension dim: side < 0 takes the low face, side > 0 the high face.
// Ghost-zone domains fall out of Face applied to a grown interior.
func (d RectDomain) Face(dim, side, thickness int) RectDomain {
	lo, hi := d.lo, d.hi
	if side < 0 {
		hi = hi.With(dim, lo.Get(dim)+thickness*d.stride.Get(dim))
	} else {
		lo = lo.With(dim, hi.Get(dim)-thickness*d.stride.Get(dim))
	}
	return RectDomain{lo: lo, hi: hi, stride: d.stride}
}

// Slice returns the (N-1)-dimensional domain obtained by dropping
// dimension dim.
func (d RectDomain) Slice(dim int) RectDomain {
	return RectDomain{lo: d.lo.Drop(dim), hi: d.hi.Drop(dim), stride: d.stride.Drop(dim)}
}

// Permute returns the domain with dimensions reordered by perm (as
// Point.Permute).
func (d RectDomain) Permute(perm []int) RectDomain {
	return RectDomain{lo: d.lo.Permute(perm), hi: d.hi.Permute(perm), stride: d.stride.Permute(perm)}
}

// ForEach calls f for every point of the domain in row-major order (the
// paper's foreach (p, dom) macro; iterations are sequential on the
// calling thread, unlike upc_forall).
func (d RectDomain) ForEach(f func(Point)) {
	if d.IsEmpty() {
		return
	}
	p := d.lo
	n := d.Dim()
	for {
		f(p)
		// Odometer increment over the strided lattice.
		k := n - 1
		for ; k >= 0; k-- {
			v := p.Get(k) + d.stride.Get(k)
			if v < d.hi.Get(k) {
				p = p.With(k, v)
				break
			}
			p = p.With(k, d.lo.Get(k))
		}
		if k < 0 {
			return
		}
	}
}

// All returns a range-over-func iterator over the domain's points in
// row-major order: for p := range dom.All() { ... }.
func (d RectDomain) All() iter.Seq[Point] {
	return func(yield func(Point) bool) {
		if d.IsEmpty() {
			return
		}
		p := d.lo
		n := d.Dim()
		for {
			if !yield(p) {
				return
			}
			k := n - 1
			for ; k >= 0; k-- {
				v := p.Get(k) + d.stride.Get(k)
				if v < d.hi.Get(k) {
					p = p.With(k, v)
					break
				}
				p = p.With(k, d.lo.Get(k))
			}
			if k < 0 {
				return
			}
		}
	}
}

// ForEach3 iterates a 3-D unit-stride domain with scalar indices — the
// fast inner-loop form the paper's stencil uses (foreach3 (i, j, k, dom)).
func (d RectDomain) ForEach3(f func(i, j, k int)) {
	if d.Dim() != 3 {
		panic("ndarray: ForEach3 on non-3D domain")
	}
	si, sj, sk := d.stride.Get(0), d.stride.Get(1), d.stride.Get(2)
	for i := d.lo.Get(0); i < d.hi.Get(0); i += si {
		for j := d.lo.Get(1); j < d.hi.Get(1); j += sj {
			for k := d.lo.Get(2); k < d.hi.Get(2); k += sk {
				f(i, j, k)
			}
		}
	}
}

func (d RectDomain) String() string {
	return fmt.Sprintf("[%v : %v : %v)", d.lo, d.hi, d.stride)
}

// Domain is a union of disjoint rectangular domains, Titanium's general
// domain type. It supports the set algebra needed to compute irregular
// regions such as ghost shells (outer minus interior).
type Domain struct {
	rects []RectDomain
}

// NewDomain builds a domain as the union of the given rectangles.
func NewDomain(rs ...RectDomain) Domain {
	var d Domain
	for _, r := range rs {
		d = d.Union(r)
	}
	return d
}

// Rects returns the disjoint rectangles making up the domain.
func (d Domain) Rects() []RectDomain { return d.rects }

// Size returns the number of points.
func (d Domain) Size() int {
	n := 0
	for _, r := range d.rects {
		n += r.Size()
	}
	return n
}

// IsEmpty reports whether the domain has no points.
func (d Domain) IsEmpty() bool { return d.Size() == 0 }

// Contains reports whether p lies in the domain.
func (d Domain) Contains(p Point) bool {
	for _, r := range d.rects {
		if r.Contains(p) {
			return true
		}
	}
	return false
}

// Union returns d with the (unit-stride) rectangle r added; overlapping
// parts are not duplicated.
func (d Domain) Union(r RectDomain) Domain {
	if r.IsEmpty() {
		return d
	}
	// Keep only the parts of r not already covered, then append them.
	pieces := []RectDomain{r}
	for _, have := range d.rects {
		var next []RectDomain
		for _, p := range pieces {
			next = append(next, subtractRect(p, have)...)
		}
		pieces = next
	}
	out := Domain{rects: append(append([]RectDomain{}, d.rects...), pieces...)}
	return out
}

// Subtract returns d minus the rectangle r.
func (d Domain) Subtract(r RectDomain) Domain {
	var out Domain
	for _, have := range d.rects {
		out.rects = append(out.rects, subtractRect(have, r)...)
	}
	return out
}

// ForEach visits every point of the domain (rectangle by rectangle).
func (d Domain) ForEach(f func(Point)) {
	for _, r := range d.rects {
		r.ForEach(f)
	}
}

// subtractRect returns a \ b as disjoint rectangles, by splitting a along
// each dimension around b. Unit strides only (the general-domain algebra
// is defined for unstrided domains, as in Titanium).
func subtractRect(a, b RectDomain) []RectDomain {
	inter := a.Intersect(b)
	if inter.IsEmpty() {
		if a.IsEmpty() {
			return nil
		}
		return []RectDomain{a}
	}
	var out []RectDomain
	rem := a
	for k := 0; k < a.Dim(); k++ {
		// Piece below b in dimension k.
		if rem.lo.Get(k) < inter.lo.Get(k) {
			r := rem
			r.hi = r.hi.With(k, inter.lo.Get(k))
			out = append(out, r)
			rem.lo = rem.lo.With(k, inter.lo.Get(k))
		}
		// Piece above b in dimension k.
		if rem.hi.Get(k) > inter.hi.Get(k) {
			r := rem
			r.lo = r.lo.With(k, inter.hi.Get(k))
			out = append(out, r)
			rem.hi = rem.hi.With(k, inter.hi.Get(k))
		}
	}
	// rem is now exactly the intersection: dropped.
	return out
}
