package ndarray

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectDomainBasics(t *testing.T) {
	// The paper's example: RECTDOMAIN((1,2,3), (5,6,7), (1,1,2)).
	d := RDS(P3(1, 2, 3), P3(5, 6, 7), P3(1, 1, 2))
	if d.Dim() != 3 {
		t.Error("Dim")
	}
	if d.Extent(0) != 4 || d.Extent(1) != 4 || d.Extent(2) != 2 {
		t.Errorf("extents: %d %d %d", d.Extent(0), d.Extent(1), d.Extent(2))
	}
	if d.Size() != 32 {
		t.Errorf("Size = %d, want 32", d.Size())
	}
	if !d.Contains(P3(1, 2, 3)) || !d.Contains(P3(4, 5, 5)) {
		t.Error("Contains should include lattice points")
	}
	if d.Contains(P3(1, 2, 4)) {
		t.Error("off-lattice point (z=4 not on stride 2 from 3) should be excluded")
	}
	if d.Contains(P3(5, 2, 3)) {
		t.Error("upper bound is exclusive")
	}
}

func TestDomainSizeMatchesIteration(t *testing.T) {
	doms := []RectDomain{
		RD3(0, 0, 0, 4, 5, 6),
		RDS(P3(1, 2, 3), P3(9, 9, 9), P3(2, 3, 1)),
		RD2(-3, -3, 3, 3),
		RD1(5, 5), // empty
		RDS(P2(0, 0), P2(7, 7), P2(3, 3)),
	}
	for _, d := range doms {
		n := 0
		d.ForEach(func(p Point) {
			if !d.Contains(p) {
				t.Errorf("%v yielded point %v outside itself", d, p)
			}
			n++
		})
		if n != d.Size() {
			t.Errorf("%v: iterated %d points, Size() says %d", d, n, d.Size())
		}
	}
}

func TestRangeOverFunc(t *testing.T) {
	d := RD2(0, 0, 3, 3)
	n := 0
	for p := range d.All() {
		if !d.Contains(p) {
			t.Errorf("All() yielded %v outside domain", p)
		}
		n++
		if n == 5 {
			break // early break must not panic
		}
	}
	if n != 5 {
		t.Errorf("early break consumed %d points", n)
	}
}

func TestForEachRowMajorOrder(t *testing.T) {
	d := RD2(0, 0, 2, 3)
	var got []Point
	d.ForEach(func(p Point) { got = append(got, p) })
	want := []Point{P2(0, 0), P2(0, 1), P2(0, 2), P2(1, 0), P2(1, 1), P2(1, 2)}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestIntersect(t *testing.T) {
	a := RD2(0, 0, 10, 10)
	b := RD2(5, -5, 15, 5)
	i := a.Intersect(b)
	if !i.Equal(RD2(5, 0, 10, 5)) {
		t.Errorf("Intersect = %v", i)
	}
	// Disjoint.
	if !a.Intersect(RD2(20, 20, 30, 30)).IsEmpty() {
		t.Error("disjoint intersect should be empty")
	}
	// Strided with congruent lattice.
	s1 := RDS(P1(0), P1(20), P1(2))
	s2 := RDS(P1(6), P1(30), P1(2))
	si := s1.Intersect(s2)
	if !si.Equal(RDS(P1(6), P1(20), P1(2))) {
		t.Errorf("strided intersect = %v", si)
	}
	// Incongruent lattices: even vs odd.
	odd := RDS(P1(1), P1(21), P1(2))
	if !s1.Intersect(odd).IsEmpty() {
		t.Error("even and odd lattices should not intersect")
	}
	// Strided vs unit-stride box.
	box := RD1(5, 15)
	sb := s1.Intersect(box)
	if !sb.Equal(RDS(P1(6), P1(15), P1(2))) {
		t.Errorf("strided-clip = %v", sb)
	}
}

func TestIntersectPropertyMembership(t *testing.T) {
	// A point is in the intersection iff it is in both domains.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rd := func() RectDomain {
			lo := P2(rng.Intn(10)-5, rng.Intn(10)-5)
			return RD(lo, lo.Add(P2(rng.Intn(8), rng.Intn(8))))
		}
		a, b := rd(), rd()
		inter := a.Intersect(b)
		for x := -6; x < 14; x++ {
			for y := -6; y < 14; y++ {
				p := P2(x, y)
				if inter.Contains(p) != (a.Contains(p) && b.Contains(p)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTranslate(t *testing.T) {
	d := RD2(0, 0, 4, 4).Translate(P2(10, -10))
	if !d.Equal(RD2(10, -10, 14, -6)) {
		t.Errorf("Translate = %v", d)
	}
	if d.Size() != 16 {
		t.Error("Translate changed size")
	}
}

func TestShrinkGrowInverse(t *testing.T) {
	d := RD3(0, 0, 0, 10, 10, 10)
	if !d.Shrink(2).Grow(2).Equal(d) {
		t.Error("Grow should invert Shrink")
	}
	if d.Shrink(1).Size() != 512 {
		t.Errorf("Shrink(1).Size = %d, want 512", d.Shrink(1).Size())
	}
	if d.Grow(1).Size() != 12*12*12 {
		t.Errorf("Grow(1).Size = %d", d.Grow(1).Size())
	}
}

func TestFace(t *testing.T) {
	d := RD3(0, 0, 0, 8, 8, 8)
	lo := d.Face(0, -1, 1)
	if !lo.Equal(RD3(0, 0, 0, 1, 8, 8)) {
		t.Errorf("low face = %v", lo)
	}
	hi := d.Face(2, +1, 2)
	if !hi.Equal(RD3(0, 0, 6, 8, 8, 8)) {
		t.Errorf("high face = %v", hi)
	}
	// A ghost face of a grown domain lies outside the original.
	ghost := d.Grow(1).Face(1, -1, 1)
	if !ghost.Intersect(d).IsEmpty() {
		t.Error("ghost face should not intersect the interior")
	}
	if ghost.Size() != 10*10 {
		t.Errorf("ghost face size = %d, want 100", ghost.Size())
	}
}

func TestSlicePermute(t *testing.T) {
	d := RD3(1, 2, 3, 5, 6, 7)
	s := d.Slice(1)
	if !s.Equal(RD2(1, 3, 5, 7)) {
		t.Errorf("Slice = %v", s)
	}
	p := d.Permute([]int{2, 1, 0})
	if !p.Equal(RD3(3, 2, 1, 7, 6, 5)) {
		t.Errorf("Permute = %v", p)
	}
}

func TestBoundingBox(t *testing.T) {
	a, b := RD2(0, 0, 2, 2), RD2(5, 5, 7, 9)
	bb := a.BoundingBox(b)
	if !bb.Equal(RD2(0, 0, 7, 9)) {
		t.Errorf("BoundingBox = %v", bb)
	}
	if !a.BoundingBox(RD2(3, 3, 3, 3)).Equal(a) {
		t.Error("bounding box with empty should be identity")
	}
}

func TestGeneralDomainUnionSubtract(t *testing.T) {
	// The ghost shell: a grown box minus its interior.
	outer := RD2(0, 0, 6, 6)
	inner := outer.Shrink(1)
	shell := NewDomain(outer).Subtract(inner)
	if shell.Size() != 36-16 {
		t.Errorf("shell size = %d, want 20", shell.Size())
	}
	outer.ForEach(func(p Point) {
		want := !inner.Contains(p)
		if shell.Contains(p) != want {
			t.Errorf("shell membership of %v = %v, want %v", p, shell.Contains(p), want)
		}
	})
	// Union must not double count.
	u := NewDomain(RD2(0, 0, 4, 4), RD2(2, 2, 6, 6))
	if u.Size() != 16+16-4 {
		t.Errorf("union size = %d, want 28", u.Size())
	}
}

func TestDomainSubtractPropertyDisjointCover(t *testing.T) {
	// a \ b pieces are disjoint and cover exactly a minus b.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rd := func() RectDomain {
			lo := P2(rng.Intn(8), rng.Intn(8))
			return RD(lo, lo.Add(P2(1+rng.Intn(6), 1+rng.Intn(6))))
		}
		a, b := rd(), rd()
		pieces := subtractRect(a, b)
		seen := map[Point]int{}
		for _, r := range pieces {
			r.ForEach(func(p Point) { seen[p]++ })
		}
		for p, n := range seen {
			if n != 1 {
				return false // overlap between pieces
			}
			if !a.Contains(p) || b.Contains(p) {
				return false // outside a \ b
			}
		}
		count := 0
		a.ForEach(func(p Point) {
			if !b.Contains(p) {
				count++
			}
		})
		return count == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestForEach3MatchesForEach(t *testing.T) {
	d := RDS(P3(0, 1, 2), P3(6, 7, 8), P3(2, 3, 1))
	var a, b []Point
	d.ForEach(func(p Point) { a = append(a, p) })
	d.ForEach3(func(i, j, k int) { b = append(b, P3(i, j, k)) })
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEmptyDomainEdgeCases(t *testing.T) {
	e := RD2(3, 3, 3, 3)
	if !e.IsEmpty() || e.Size() != 0 {
		t.Error("degenerate domain should be empty")
	}
	e.ForEach(func(Point) { t.Error("empty domain iterated") })
	if e.Contains(P2(3, 3)) {
		t.Error("empty domain contains nothing")
	}
	inv := RD2(5, 5, 2, 2) // hi < lo
	if !inv.IsEmpty() {
		t.Error("inverted bounds should be empty")
	}
}
