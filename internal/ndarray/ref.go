package ndarray

import "upcxx/internal/core"

// Ref is a POD handle to an Array that can be stored in shared memory —
// in particular in a core.SharedArray — enabling the paper's directory
// idiom for distributing multidimensional data:
//
//	shared_array< ndarray<int, 3> > dir(THREADS);
//	dir[MYTHREAD] = ARRAY(int, ...);
//
// becomes
//
//	dir := core.NewSharedArray[ndarray.Ref[int32]](me, me.Ranks(), 1)
//	dir.Set(me, me.ID(), grid.Ref())
//
// Any rank can reconstruct a usable (remote) view with FromRef and then
// Get/Set/CopyFrom against it.
type Ref[T any] struct {
	Dom      RectDomain
	Origin   Point
	Lat      Point
	Strides  [MaxDims]int64
	Offset   int64
	Owner    int32
	GP       core.GlobalPtr[T]
	AllocLen int64
	Unstrid  bool
}

// Ref returns the POD handle of the array view.
func (a *Array[T]) Ref() Ref[T] {
	r := Ref[T]{
		Dom:      a.dom,
		Origin:   a.origin,
		Lat:      a.lat,
		Offset:   int64(a.offset),
		Owner:    int32(a.owner),
		GP:       a.gp,
		AllocLen: int64(a.alloclen),
		Unstrid:  a.unstrid,
	}
	for i, s := range a.strides {
		r.Strides[i] = int64(s)
	}
	return r
}

// FromRef reconstructs an array view from a POD handle. On the owning
// rank the view is directly addressable; elsewhere accesses go through
// the one-sided machinery.
func FromRef[T any](ref Ref[T]) *Array[T] {
	a := &Array[T]{
		dom:      ref.Dom,
		origin:   ref.Origin,
		lat:      ref.Lat,
		offset:   int(ref.Offset),
		owner:    int(ref.Owner),
		gp:       ref.GP,
		alloclen: int(ref.AllocLen),
		unstrid:  ref.Unstrid,
	}
	for i, s := range ref.Strides {
		a.strides[i] = int(s)
	}
	return a
}
