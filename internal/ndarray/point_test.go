package ndarray

import (
	"testing"
	"testing/quick"
)

func TestPointConstructors(t *testing.T) {
	if P(1, 2, 3) != P3(1, 2, 3) {
		t.Error("P and P3 disagree")
	}
	if P(5) != P1(5) || P(4, 7) != P2(4, 7) {
		t.Error("P and P1/P2 disagree")
	}
	p := P(1, 2, 3)
	if p.Dim() != 3 || p.Get(0) != 1 || p.Get(2) != 3 {
		t.Errorf("accessors broken: %v", p)
	}
}

func TestPointBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("P() with no coords should panic")
		}
	}()
	P()
}

func TestPointMismatchedDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add of mismatched dims should panic")
		}
	}()
	P2(1, 2).Add(P3(1, 2, 3))
}

func TestPointArithmetic(t *testing.T) {
	a, b := P3(1, 2, 3), P3(10, 20, 30)
	if a.Add(b) != P3(11, 22, 33) {
		t.Error("Add")
	}
	if b.Sub(a) != P3(9, 18, 27) {
		t.Error("Sub")
	}
	if a.Neg() != P3(-1, -2, -3) {
		t.Error("Neg")
	}
	if a.Scale(4) != P3(4, 8, 12) {
		t.Error("Scale")
	}
	if a.Mul(b) != P3(10, 40, 90) {
		t.Error("Mul")
	}
	if a.Min(P3(0, 5, 2)) != P3(0, 2, 2) {
		t.Error("Min")
	}
	if a.Max(P3(0, 5, 2)) != P3(1, 5, 3) {
		t.Error("Max")
	}
	if a.Product() != 6 {
		t.Error("Product")
	}
	if !a.AllLess(b) || b.AllLess(a) {
		t.Error("AllLess")
	}
	if !a.AllLeq(a) {
		t.Error("AllLeq should be reflexive")
	}
}

func TestPointDropInsert(t *testing.T) {
	p := P3(7, 8, 9)
	if p.Drop(1) != P2(7, 9) {
		t.Errorf("Drop(1) = %v", p.Drop(1))
	}
	if p.Drop(1).Insert(1, 8) != p {
		t.Error("Insert should invert Drop")
	}
	if p.Drop(0) != P2(8, 9) || p.Drop(2) != P2(7, 8) {
		t.Error("Drop at ends")
	}
}

func TestPointPermute(t *testing.T) {
	p := P3(1, 2, 3)
	if p.Permute([]int{2, 0, 1}) != P3(3, 1, 2) {
		t.Errorf("Permute = %v", p.Permute([]int{2, 0, 1}))
	}
	if p.Permute([]int{0, 1, 2}) != p {
		t.Error("identity permutation changed point")
	}
}

func TestPointPropertyAddSubInverse(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz int16) bool {
		a := P3(int(ax), int(ay), int(az))
		b := P3(int(bx), int(by), int(bz))
		return a.Add(b).Sub(b) == a && a.Add(b) == b.Add(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointPropertyMinMaxLattice(t *testing.T) {
	// Min and Max form a lattice: Min(a,b) <= both <= Max(a,b).
	f := func(ax, ay, bx, by int16) bool {
		a := P2(int(ax), int(ay))
		b := P2(int(bx), int(by))
		lo, hi := a.Min(b), a.Max(b)
		return lo.AllLeq(a) && lo.AllLeq(b) && a.AllLeq(hi) && b.AllLeq(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointString(t *testing.T) {
	if P3(1, 2, 3).String() != "[1, 2, 3]" {
		t.Errorf("String = %q", P3(1, 2, 3).String())
	}
}

func TestOnesZero(t *testing.T) {
	if Ones(3) != P3(1, 1, 1) || Zero(2) != P2(0, 0) {
		t.Error("Ones/Zero")
	}
}
