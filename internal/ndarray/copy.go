package ndarray

import (
	"unsafe"

	"upcxx/internal/core"
)

func sizeofT[T any](t T) uintptr { return unsafe.Sizeof(t) }

// storage returns the array's element storage on the rank r, which must
// be the owner. Views received from other ranks (via Ref) reconstruct the
// slice from the global pointer.
func (a *Array[T]) storage(r *core.Rank) []T {
	if a.owner != r.ID() {
		panic("ndarray: storage on non-owner rank")
	}
	if a.data == nil && a.alloclen > 0 {
		a.data = core.LocalSlice(r, a.gp, a.alloclen)
	}
	return a.data
}

// pack gathers the elements of view a over domain d into a fresh buffer,
// in row-major order of d; runs on the owner's goroutine.
func (a *Array[T]) pack(r *core.Rank, d RectDomain) []T {
	data := a.storage(r)
	buf := make([]T, 0, d.Size())
	d.ForEach(func(p Point) { buf = append(buf, data[a.index(p)]) })
	r.MemWork(float64(len(buf) * a.elemBytes()))
	return buf
}

// unpack scatters buf (row-major over d) into view a; runs on the owner's
// goroutine.
func (a *Array[T]) unpack(r *core.Rank, d RectDomain, buf []T) {
	data := a.storage(r)
	i := 0
	d.ForEach(func(p Point) { data[a.index(p)] = buf[i]; i++ })
	r.MemWork(float64(len(buf) * a.elemBytes()))
}

// CopyFrom copies from array b into array a over the intersection of
// their domains — the paper's A.copy(B). The library computes the
// intersection, packs on the source side, ships one message, and unpacks
// on the destination side; the entire operation is one-sided with respect
// to the two owners (active messages do the remote work; neither owner's
// application code participates). The call blocks the initiating rank
// until the destination holds the data.
//
// Ghost-zone exchange is therefore one statement:
//
//	A.Constrict(ghost).CopyFrom(B)
func (a *Array[T]) CopyFrom(me *core.Rank, b *Array[T]) {
	inter := a.dom.Intersect(b.dom)
	if inter.IsEmpty() {
		return
	}
	bytes := inter.Size() * a.elemBytes()
	mo := me.Model()

	switch {
	case a.owner == me.ID() && b.owner == me.ID():
		// Purely local: element loop, no communication.
		ad, bd := a.storage(me), b.storage(me)
		inter.ForEach(func(p Point) { ad[a.index(p)] = bd[b.index(p)] })
		me.MemWork(float64(2 * bytes))

	case a.owner == me.ID():
		// Pull: pack at the remote source, one transfer, unpack here.
		done := false
		me.AM(b.owner, 64, func(src *core.Rank) {
			buf := b.pack(src, inter)
			arrival := src.Now() + mo.Lat(src.ID(), me.ID()) + mo.WireNs(bytes)
			src.AMAt(me.ID(), arrival, bytes, func(dst *core.Rank) {
				a.unpack(dst, inter, buf)
				done = true
			})
		})
		me.WaitUntil(func() bool { return done })

	case b.owner == me.ID():
		// Push: pack here, one transfer, unpack at the remote
		// destination, acknowledge back.
		buf := b.pack(me, inter)
		done := false
		arrival := me.Now() + mo.Lat(me.ID(), a.owner) + mo.WireNs(bytes)
		me.AMAt(a.owner, arrival, bytes, func(dst *core.Rank) {
			a.unpack(dst, inter, buf)
			dst.AMAt(me.ID(), dst.Now()+mo.Lat(dst.ID(), me.ID()), 0,
				func(*core.Rank) { done = true })
		})
		me.WaitUntil(func() bool { return done })

	default:
		// Third party: source packs and forwards straight to the
		// destination (data never visits the initiator), destination
		// acknowledges to the initiator.
		done := false
		me.AM(b.owner, 64, func(src *core.Rank) {
			buf := b.pack(src, inter)
			arrival := src.Now() + mo.Lat(src.ID(), a.owner) + mo.WireNs(bytes)
			src.AMAt(a.owner, arrival, bytes, func(dst *core.Rank) {
				a.unpack(dst, inter, buf)
				dst.AMAt(me.ID(), dst.Now()+mo.Lat(dst.ID(), me.ID()), 0,
					func(*core.Rank) { done = true })
			})
		})
		me.WaitUntil(func() bool { return done })
	}
}

// CopyFromAsync is CopyFrom completing into a completion object instead
// of blocking: the initiator returns as soon as the protocol is
// launched, and done completes (an *Event fires, a *Promise counts
// down) when the destination has unpacked. Overlapping several ghost
// exchanges is the paper's motivating use of events; pass one *Promise
// to a batch of face copies and chain on its future for the
// futures-first spelling (see examples/heat3d).
func (a *Array[T]) CopyFromAsync(me *core.Rank, b *Array[T], done core.Completer) {
	inter := a.dom.Intersect(b.dom)
	if inter.IsEmpty() {
		core.CompleteNow(done, me)
		return
	}
	bytes := inter.Size() * a.elemBytes()
	mo := me.Model()
	core.RegisterWith(done, me, 1)

	switch {
	case a.owner == me.ID() && b.owner == me.ID():
		ad, bd := a.storage(me), b.storage(me)
		inter.ForEach(func(p Point) { ad[a.index(p)] = bd[b.index(p)] })
		me.MemWork(float64(2 * bytes))
		core.CompleteAt(done, me.Now(), me)

	case b.owner == me.ID():
		buf := b.pack(me, inter)
		arrival := me.Now() + mo.Lat(me.ID(), a.owner) + mo.WireNs(bytes)
		me.AMAt(a.owner, arrival, bytes, func(dst *core.Rank) {
			a.unpack(dst, inter, buf)
			core.CompleteAt(done, dst.Now(), dst)
		})

	default:
		me.AM(b.owner, 64, func(src *core.Rank) {
			buf := b.pack(src, inter)
			arrival := src.Now() + mo.Lat(src.ID(), a.owner) + mo.WireNs(bytes)
			src.AMAt(a.owner, arrival, bytes, func(dst *core.Rank) {
				a.unpack(dst, inter, buf)
				core.CompleteAt(done, dst.Now(), dst)
			})
		})
	}
}
