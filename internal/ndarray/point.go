// Package ndarray is the multidimensional domain and array library of
// UPC++ (paper §III-E), modeled on Titanium's domains and arrays (which
// descend from ZPL): points are coordinates in N-dimensional space,
// rectangular domains are strided index boxes (lower bound inclusive,
// upper bound exclusive, as UPC++ chose), and arrays are mappings from a
// rectangular domain to elements living on a single — possibly remote —
// rank.
//
// Arrays support zero-copy views: Constrict (restrict to a subdomain),
// Slice (drop a dimension), Translate (shift the index space), Permute
// (reorder dimensions), and one-sided CopyFrom with automatic domain
// intersection, packing and unpacking — the operation that turns a ghost
// exchange into the paper's single statement
// A.constrict(ghost).copy(B).
//
// Where C++ UPC++ uses macros (POINT, RECTDOMAIN, ARRAY, foreach), Go uses
// ordinary constructors (P, RD, New) and iteration helpers (ForEach,
// RectDomain.All with range-over-func).
package ndarray

import (
	"fmt"
	"strings"
)

// MaxDims is the largest supported dimensionality; the paper's
// applications use up to 3.
const MaxDims = 4

// Point is a coordinate in n-dimensional space (Titanium's point<N>).
// Point is a comparable POD value: it may be stored in shared memory and
// used as a map key.
type Point struct {
	n int32
	c [MaxDims]int32
}

// P builds a point from coordinates: P(1,2,3) is the paper's POINT(1,2,3).
func P(coords ...int) Point {
	if len(coords) == 0 || len(coords) > MaxDims {
		panic(fmt.Sprintf("ndarray: point dimensionality %d out of range 1..%d", len(coords), MaxDims))
	}
	var p Point
	p.n = int32(len(coords))
	for i, c := range coords {
		p.c[i] = int32(c)
	}
	return p
}

// P1, P2 and P3 are allocation-free constructors for the common ranks.
func P1(x int) Point       { return Point{n: 1, c: [MaxDims]int32{int32(x)}} }
func P2(x, y int) Point    { return Point{n: 2, c: [MaxDims]int32{int32(x), int32(y)}} }
func P3(x, y, z int) Point { return Point{n: 3, c: [MaxDims]int32{int32(x), int32(y), int32(z)}} }

// Ones returns the n-dimensional point with every coordinate 1 (the
// default stride).
func Ones(n int) Point {
	var p Point
	p.n = int32(n)
	for i := 0; i < n; i++ {
		p.c[i] = 1
	}
	return p
}

// Zero returns the n-dimensional origin.
func Zero(n int) Point { return Point{n: int32(n)} }

// Dim returns the dimensionality.
func (p Point) Dim() int { return int(p.n) }

// Get returns coordinate d (0-based; Titanium's pt[d+1]).
func (p Point) Get(d int) int { return int(p.c[d]) }

// With returns a copy of p with coordinate d replaced by v.
func (p Point) With(d, v int) Point {
	p.c[d] = int32(v)
	return p
}

func (p Point) check(q Point, op string) {
	if p.n != q.n {
		panic(fmt.Sprintf("ndarray: %s of %dD and %dD points", op, p.n, q.n))
	}
}

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point {
	p.check(q, "Add")
	for i := int32(0); i < p.n; i++ {
		p.c[i] += q.c[i]
	}
	return p
}

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point {
	p.check(q, "Sub")
	for i := int32(0); i < p.n; i++ {
		p.c[i] -= q.c[i]
	}
	return p
}

// Neg returns -p.
func (p Point) Neg() Point {
	for i := int32(0); i < p.n; i++ {
		p.c[i] = -p.c[i]
	}
	return p
}

// Scale returns p with every coordinate multiplied by k.
func (p Point) Scale(k int) Point {
	for i := int32(0); i < p.n; i++ {
		p.c[i] *= int32(k)
	}
	return p
}

// Mul returns the componentwise product p * q.
func (p Point) Mul(q Point) Point {
	p.check(q, "Mul")
	for i := int32(0); i < p.n; i++ {
		p.c[i] *= q.c[i]
	}
	return p
}

// Min returns the componentwise minimum.
func (p Point) Min(q Point) Point {
	p.check(q, "Min")
	for i := int32(0); i < p.n; i++ {
		if q.c[i] < p.c[i] {
			p.c[i] = q.c[i]
		}
	}
	return p
}

// Max returns the componentwise maximum.
func (p Point) Max(q Point) Point {
	p.check(q, "Max")
	for i := int32(0); i < p.n; i++ {
		if q.c[i] > p.c[i] {
			p.c[i] = q.c[i]
		}
	}
	return p
}

// AllLess reports whether p < q in every coordinate.
func (p Point) AllLess(q Point) bool {
	p.check(q, "AllLess")
	for i := int32(0); i < p.n; i++ {
		if p.c[i] >= q.c[i] {
			return false
		}
	}
	return true
}

// AllLeq reports whether p <= q in every coordinate.
func (p Point) AllLeq(q Point) bool {
	p.check(q, "AllLeq")
	for i := int32(0); i < p.n; i++ {
		if p.c[i] > q.c[i] {
			return false
		}
	}
	return true
}

// Product returns the product of the coordinates.
func (p Point) Product() int {
	v := 1
	for i := int32(0); i < p.n; i++ {
		v *= int(p.c[i])
	}
	return v
}

// Drop returns the (n-1)-dimensional point with coordinate d removed.
func (p Point) Drop(d int) Point {
	var q Point
	q.n = p.n - 1
	k := 0
	for i := 0; i < int(p.n); i++ {
		if i == d {
			continue
		}
		q.c[k] = p.c[i]
		k++
	}
	return q
}

// Insert returns the (n+1)-dimensional point with v inserted as
// coordinate d.
func (p Point) Insert(d, v int) Point {
	var q Point
	q.n = p.n + 1
	k := 0
	for i := 0; i < int(q.n); i++ {
		if i == d {
			q.c[i] = int32(v)
			continue
		}
		q.c[i] = p.c[k]
		k++
	}
	return q
}

// Permute returns p with coordinates reordered so that result[i] =
// p[perm[i]]; perm must be a permutation of 0..n-1.
func (p Point) Permute(perm []int) Point {
	if len(perm) != int(p.n) {
		panic("ndarray: Permute length mismatch")
	}
	var q Point
	q.n = p.n
	for i, src := range perm {
		q.c[i] = p.c[src]
	}
	return q
}

func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i := 0; i < int(p.n); i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", p.c[i])
	}
	b.WriteByte(']')
	return b.String()
}
