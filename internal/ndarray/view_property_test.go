package ndarray

import (
	"math/rand"
	"testing"
	"testing/quick"

	"upcxx/internal/core"
)

// TestViewChainProperty drives random chains of view operations
// (Constrict, Translate, Slice, Permute) over a 3-D array and checks the
// fundamental view invariant: a view addresses exactly the parent's
// elements under the composed coordinate transform — writes through any
// view are visible at the corresponding parent point.
func TestViewChainProperty(t *testing.T) {
	f := func(seed int64) bool {
		ok := true
		core.Run(testCfg(1), func(me *core.Rank) {
			rng := rand.New(rand.NewSource(seed))
			base := New[int64](me, RD3(0, 0, 0, 6, 6, 6))
			// Fill base with its own linear index.
			i := 0
			base.Domain().ForEach(func(p Point) { base.Set(me, p, int64(i)); i++ })

			// invert maps a view point back to base coordinates.
			type xform func(Point) Point
			view := base
			invert := func(p Point) Point { return p }
			for step := 0; step < 6 && view.Domain().Size() > 0; step++ {
				prevInvert := invert
				switch rng.Intn(3) {
				case 0: // Constrict to a random subbox.
					d := view.Domain()
					if d.Dim() == 0 {
						continue
					}
					lo, hi := d.Lo(), d.Hi()
					nlo, nhi := lo, hi
					for k := 0; k < d.Dim(); k++ {
						w := hi.Get(k) - lo.Get(k)
						if w <= 1 {
							continue
						}
						a := lo.Get(k) + rng.Intn(w/2+1)
						b := a + 1 + rng.Intn(hi.Get(k)-a)
						nlo = nlo.With(k, a)
						nhi = nhi.With(k, b)
					}
					view = view.Constrict(RectDomain{lo: nlo, hi: nhi, stride: d.Stride()})
					// Constrict does not change coordinates.
				case 1: // Translate by a random offset.
					d := view.Domain()
					off := Zero(d.Dim())
					for k := 0; k < d.Dim(); k++ {
						off = off.With(k, rng.Intn(7)-3)
					}
					view = view.Translate(off)
					invert = func(p Point) Point { return prevInvert(p.Sub(off)) }
				case 2: // Permute (dims >= 2 only).
					d := view.Domain()
					if d.Dim() < 2 {
						continue
					}
					perm := rng.Perm(d.Dim())
					view = view.Permute(perm)
					// inverse permutation
					inv := make([]int, len(perm))
					for i, s := range perm {
						inv[s] = i
					}
					invert = func(p Point) Point { return prevInvert(p.Permute(inv)) }
				}
			}
			if view.Domain().IsEmpty() {
				return
			}
			// Read check: every view point equals base at the inverted point.
			view.Domain().ForEach(func(p Point) {
				if view.Get(me, p) != base.Get(me, invert(p)) {
					ok = false
				}
			})
			// Write check through one random point.
			d := view.Domain()
			probe := d.Lo()
			view.Set(me, probe, -777)
			if base.Get(me, invert(probe)) != -777 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSliceComposition checks that slicing all dims one at a time reaches
// the same element as direct indexing.
func TestSliceComposition(t *testing.T) {
	core.Run(testCfg(1), func(me *core.Rank) {
		a := New[int32](me, RD3(1, 2, 3, 5, 6, 7))
		a.Set(me, P3(3, 4, 5), 42)
		s := a.Slice(0, 3).Slice(0, 4) // fix x=3, then y=4: 1-D over z
		if s.Domain().Dim() != 1 {
			t.Fatalf("dim = %d", s.Domain().Dim())
		}
		if got := s.Get(me, P1(5)); got != 42 {
			t.Errorf("composed slice read %d, want 42", got)
		}
		s.Set(me, P1(6), 9)
		if a.Get(me, P3(3, 4, 6)) != 9 {
			t.Error("composed slice write lost")
		}
	})
}

// TestPermuteRoundTrip: permuting by a permutation and its inverse is the
// identity view.
func TestPermuteRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		ok := true
		core.Run(testCfg(1), func(me *core.Rank) {
			rng := rand.New(rand.NewSource(seed))
			a := New[int32](me, RD3(0, 0, 0, 3, 4, 5))
			i := int32(0)
			a.Domain().ForEach(func(p Point) { a.Set(me, p, i); i++ })
			perm := rng.Perm(3)
			inv := make([]int, 3)
			for i, s := range perm {
				inv[s] = i
			}
			b := a.Permute(perm).Permute(inv)
			if !b.Domain().Equal(a.Domain()) {
				ok = false
				return
			}
			a.Domain().ForEach(func(p Point) {
				if a.Get(me, p) != b.Get(me, p) {
					ok = false
				}
			})
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
