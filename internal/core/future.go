package core

import (
	"fmt"
	"runtime"
	"sync"

	"upcxx/internal/gasnet"
	"upcxx/internal/obs"
)

// The futures-first completion model. The paper exposes three disjoint
// completion mechanisms — blocking calls, Event handles (§III-D), and
// leaf future<T> values (§III-G) — and the original API here inherited
// that split. This file re-founds completion on one composable object,
// the direction the UPC++ lineage itself took after the paper:
//
//   - Future[T] is a chainable completion object. Then / ThenAsync
//     attach continuations that run when the value arrives; WhenAll /
//     WhenAny join and race futures. Continuations execute on the
//     future's owning rank, from that rank's progress dispatch (Poll,
//     Get, Event.Wait, Finish, Barrier — anything that services
//     progress), and must not block.
//   - Promise is the producer half: operations complete *into* a
//     promise (via Onto or by passing it where an *Event was accepted),
//     and Finalize hands back the future of the whole set.
//   - Completer is the unified completion-target seam. *Event,
//     *Promise, Onto(...) sets, and ToFinish() all satisfy it, so every
//     operation that used to take an *Event (AsyncCopy,
//     WriteSliceAsync, AggPut/AggXor64/AggSend, Signal) now accepts any
//     completion object — legacy Event call sites compile and behave
//     unchanged, as the Event shim routes through the same seam.
//
// Finish integration: a continuation attaches to the finish scope that
// is current when Then is called — or, when it is called from inside
// another continuation (progress dispatch, where no Finish body is on
// the stack), to the scope its source future was created under. While
// a continuation runs, that scope is re-pushed, so operations the
// continuation issues (ReadAsync, AggPut, AsyncTask, further Thens)
// register with the same Finish. A Finish surrounding a future chain
// therefore waits for every continuation transitively, including ones
// attached after the source operation already completed: each link
// registers before its predecessor's completion is credited, so the
// scope's count never transiently drains mid-chain.
type Future[T any] struct {
	owner *Rank
	// fs is the finish scope the future was created under; derived
	// futures inherit it so continuations attached from progress
	// dispatch still find their Finish (see thenImpl).
	fs *finishScope

	mu    sync.Mutex
	done  bool
	t     float64 // modeled completion time
	val   T
	err   error // non-nil iff the future settled by failing
	conts []func(v T, err error, t float64, sig *Rank)
}

// newFuture builds an unresolved future owned by me, remembering the
// enclosing finish scope for continuation inheritance.
func newFuture[T any](me *Rank) *Future[T] {
	return &Future[T]{owner: me, fs: me.currentFinish()}
}

// Resolved returns an already-fulfilled future, for seeding chains and
// for producer code whose value is available immediately.
func Resolved[T any](me *Rank, v T) *Future[T] {
	f := newFuture[T](me)
	f.done = true
	f.t = me.Clock()
	f.val = v
	return f
}

// resolve fulfills the future at modeled time t and fires every
// attached continuation. sig is the rank whose goroutine delivers the
// resolution; when that is not the owning rank (an in-process task
// body completing a promise on the target's goroutine, say), the
// resolution is re-shipped as a message so continuations always
// execute on the owner's goroutine and a blocked Get always wakes
// (engine invariant 2). Resolving twice is a runtime bug and panics.
func (f *Future[T]) resolve(v T, t float64, sig *Rank) {
	if sig != nil && sig != f.owner {
		owner := f.owner
		arrival := t + sig.job.model.Lat(sig.id, owner.id)
		sig.ep.SendAt(owner.id, arrival, 0, func(*gasnet.Endpoint) {
			f.resolve(v, arrival, owner)
		})
		return
	}
	f.mu.Lock()
	if f.done {
		if f.err != nil {
			// A success racing a failure (a straggler reply landing after
			// the target was declared dead, say): the failure already
			// settled the future and ran its continuations; drop the
			// value. Two *successful* resolutions are still a bug.
			f.mu.Unlock()
			return
		}
		f.mu.Unlock()
		panic("upcxx: future resolved twice")
	}
	f.val = v
	f.t = t
	f.done = true
	conts := f.conts
	f.conts = nil
	f.mu.Unlock()
	f.owner.ring.Instant(obs.KFutResolve, -1, 0, uint64(len(conts)))
	for _, c := range conts {
		c(v, nil, t, sig)
	}
}

// fail settles the future with err at modeled time t: Get panics with
// the typed cause, Then-derived futures fail without running their
// continuation, and WhenAll fails out. First settle wins — a failure
// arriving after a success (or a second failure) is a silent no-op, so
// a retry layer may race a late reply against its own timeout safely.
func (f *Future[T]) fail(err error, t float64, sig *Rank) {
	if sig != nil && sig != f.owner {
		owner := f.owner
		arrival := t + sig.job.model.Lat(sig.id, owner.id)
		sig.ep.SendAt(owner.id, arrival, 0, func(*gasnet.Endpoint) {
			f.fail(err, arrival, owner)
		})
		return
	}
	f.mu.Lock()
	if f.done {
		f.mu.Unlock()
		return
	}
	f.err = err
	f.t = t
	f.done = true
	conts := f.conts
	f.conts = nil
	f.mu.Unlock()
	var zero T
	for _, c := range conts {
		c(zero, err, t, sig)
	}
}

// attach runs c when the future resolves — immediately, on the calling
// goroutine, if it already has.
func (f *Future[T]) attach(c func(v T, err error, t float64, sig *Rank)) {
	f.mu.Lock()
	if f.done {
		v, err, t := f.val, f.err, f.t
		f.mu.Unlock()
		c(v, err, t, f.owner)
		return
	}
	f.conts = append(f.conts, c)
	f.mu.Unlock()
}

// Ready reports whether the value has arrived, servicing progress once.
func (f *Future[T]) Ready() bool {
	f.checkOwner("Ready")
	f.owner.Advance()
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.done
}

// Get blocks until the value arrives — servicing async tasks and, on a
// wire job, conduit traffic and aggregation flushes meanwhile — and
// returns it, the paper's future.get(). The caller's clock advances to
// the modeled completion time, so overlap between issue and Get is
// what the cost model rewards.
func (f *Future[T]) Get() T {
	f.checkOwner("Get")
	f.owner.waitProgress(func() bool {
		f.mu.Lock()
		defer f.mu.Unlock()
		return f.done
	})
	f.owner.ep.Clock.AdvanceTo(f.t)
	if f.err != nil {
		panic(fmt.Errorf("upcxx: future failed: %w", f.err))
	}
	return f.val
}

// Wait is Get discarding the value, reading better for Future[struct{}]
// completion futures.
func (f *Future[T]) Wait() { f.Get() }

// Err blocks until the future settles and returns its failure, nil on
// success — the non-panicking observation of a failed future (Get
// panics with the same cause wrapped). Use it when a failure is an
// expected outcome the caller handles, e.g. an operation under a
// RetryPolicy whose target may legitimately die.
func (f *Future[T]) Err() error {
	f.checkOwner("Err")
	f.owner.waitProgress(func() bool {
		f.mu.Lock()
		defer f.mu.Unlock()
		return f.done
	})
	f.owner.ep.Clock.AdvanceTo(f.t)
	return f.err
}

// checkOwner panics when a future is consumed from a goroutine other
// than its owning rank's. Futures are bound to their owner's progress
// engine: Get/Ready/Then from another rank's goroutine would drive the
// wrong engine — historically this was silently accepted and hung or
// corrupted virtual time. Skipped in Concurrent mode, where the
// application may legally move rank handles across goroutines.
func (f *Future[T]) checkOwner(op string) {
	r := f.owner
	if r.job.cfg.Threads == Concurrent || r.gid == 0 {
		return
	}
	g := goid()
	if g == r.gid {
		return
	}
	caller := "a different goroutine"
	for _, o := range r.job.ranks {
		if o != nil && o.gid == g {
			caller = fmt.Sprintf("rank %d's goroutine", o.id)
			break
		}
	}
	panic(fmt.Sprintf("upcxx: Future.%s on a future owned by rank %d called from %s: "+
		"futures must be consumed on their owning rank (the call would drive the wrong "+
		"rank's progress engine); ship the value explicitly instead", op, r.id, caller))
}

// goid parses the running goroutine's id from its stack header, the
// only portable way to identify a goroutine. It costs a few
// microseconds (runtime.Stack unwinds a frame), which is why only the
// once-per-future consumption points pay for it, not Then.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	const prefix = "goroutine "
	if len(s) < len(prefix) {
		return 0
	}
	s = s[len(prefix):]
	var id uint64
	for i := 0; i < len(s) && s[i] >= '0' && s[i] <= '9'; i++ {
		id = id*10 + uint64(s[i]-'0')
	}
	return id
}

// Then attaches a synchronous continuation: when f resolves with v,
// fn(v) runs on the owning rank and the returned future resolves with
// its result. The continuation executes from progress dispatch (or
// inline, if f already resolved) under the finish scope described in
// the package notes; it must not block, but may issue further
// asynchronous operations — chaining ReadAsync inside a Then is the
// intended multi-hop idiom.
//
// Go methods cannot introduce type parameters, so Then is a free
// function: g := core.Then(f, func(v T) U {...}).
func Then[T, U any](f *Future[T], fn func(v T) U) *Future[U] {
	return thenImpl(f, func(_ *Rank, v T) U { return fn(v) }, false)
}

// ThenAsync is Then with the continuation running as a task: it
// receives the owning rank's handle, is charged task-dispatch cost,
// and counts in the task statistics — the future-flavored analog of
// async_after(place, after)(task) for a value dependency.
func ThenAsync[T, U any](f *Future[T], fn func(me *Rank, v T) U) *Future[U] {
	return thenImpl(f, fn, true)
}

// thenImpl carries no goroutine-owner check: Then sits on the hot path
// of chain-per-element loops, and goid() costs microseconds. Misuse
// from another rank's goroutine is caught at the consumption points
// (Get/Ready) and by the race detector.
func thenImpl[T, U any](f *Future[T], fn func(me *Rank, v T) U, task bool) *Future[U] {
	me := f.owner
	out := &Future[U]{owner: me}
	// The continuation belongs to the finish scope current at attach
	// time; from inside another continuation (no Finish body on the
	// stack) it inherits the source future's scope.
	fs := me.currentFinish()
	if fs == nil {
		fs = f.fs
	}
	out.fs = fs
	if fs != nil {
		fs.add(1)
	}
	f.attach(func(v T, err error, t float64, _ *Rank) {
		if err != nil {
			// Failure propagates down the chain without running the
			// continuation; the scope is still credited so a Finish over
			// the chain drains instead of hanging on the dead link.
			done := t
			if now := me.Clock(); now > done {
				done = now
			}
			out.fail(err, done, me)
			if fs != nil {
				fs.childDone(done, me)
			}
			return
		}
		if task {
			me.ep.Stats.Tasks.Add(1)
			me.ep.Clock.Advance(me.job.model.TaskDispatchCost())
		}
		me.ring.Begin(obs.KFutThen, -1, 0)
		u := runUnder(me, fs, func() U { return fn(me, v) })
		me.ring.End(obs.KFutThen)
		done := t
		if now := me.Clock(); now > done {
			done = now
		}
		out.resolve(u, done, me)
		if fs != nil {
			fs.childDone(done, me)
		}
	})
	return out
}

// runUnder executes body with fs re-pushed as the current finish scope,
// so operations the continuation issues attach to the Finish its chain
// started under (transitive quiescence).
func runUnder[U any](me *Rank, fs *finishScope, body func() U) U {
	if fs == nil {
		return body()
	}
	me.enter()
	me.finish = append(me.finish, fs)
	me.exit()
	defer func() {
		me.enter()
		me.finish = me.finish[:len(me.finish)-1]
		me.exit()
	}()
	return body()
}

// WhenAll returns a future resolving with every input's value, in
// argument order, once the last input resolves (at the latest modeled
// completion time). All inputs must share one owning rank.
func WhenAll[T any](fs ...*Future[T]) *Future[[]T] {
	if len(fs) == 0 {
		panic("upcxx: WhenAll of no futures (owner would be undefined)")
	}
	me := futOwner("WhenAll", fs)
	out := newFuture[[]T](me)
	// The join state needs its own lock: in Concurrent mode one input
	// may resolve inline on the caller while another resolves from a
	// different goroutine driving progress.
	var mu sync.Mutex
	vals := make([]T, len(fs))
	pending := len(fs)
	failed := false
	var maxT float64
	for i, f := range fs {
		i, f := i, f
		f.attach(func(v T, err error, t float64, sig *Rank) {
			if err != nil {
				// First failure fails the join; stragglers (successes or
				// further failures) are dropped silently.
				mu.Lock()
				already := failed
				failed = true
				mu.Unlock()
				if !already {
					out.fail(err, t, sig)
				}
				return
			}
			mu.Lock()
			if failed {
				mu.Unlock()
				return
			}
			vals[i] = v
			if t > maxT {
				maxT = t
			}
			pending--
			drained := pending == 0
			doneT := maxT
			mu.Unlock()
			if drained {
				out.resolve(vals, doneT, sig)
			}
		})
	}
	return out
}

// WhenAny returns a future resolving with the first input to resolve
// (the race combinator). All inputs must share one owning rank; the
// losers still complete normally and still satisfy their Finish.
func WhenAny[T any](fs ...*Future[T]) *Future[T] {
	if len(fs) == 0 {
		panic("upcxx: WhenAny of no futures (owner would be undefined)")
	}
	me := futOwner("WhenAny", fs)
	out := newFuture[T](me)
	var mu sync.Mutex
	won := false
	for _, f := range fs {
		f.attach(func(v T, err error, t float64, sig *Rank) {
			mu.Lock()
			lost := won
			won = true
			mu.Unlock()
			if lost {
				return
			}
			// The first settle wins, failure included: racing a read
			// against a replica that may die must not hang on the corpse.
			if err != nil {
				out.fail(err, t, sig)
				return
			}
			out.resolve(v, t, sig)
		})
	}
	return out
}

// futOwner asserts the inputs share one owner and returns it. The
// goroutine check (a microseconds-scale stack unwind) runs once; the
// per-future pass is a pointer comparison.
func futOwner[T any](op string, fs []*Future[T]) *Rank {
	me := fs[0].owner
	fs[0].checkOwner(op)
	for _, f := range fs {
		if f.owner != me {
			panic(fmt.Sprintf("upcxx: %s over futures owned by rank %d and rank %d: "+
				"combinators join futures of one rank", op, me.id, f.owner.id))
		}
	}
	return me
}

// ---- The unified completion seam ----

// Completer is the completion-target seam every non-blocking operation
// accepts: *Event (the legacy handle, unchanged semantics), *Promise
// (futures-first), an Onto(...) combination, or ToFinish(). A nil
// Completer means "no explicit completion object" and keeps each
// operation's historical default (the implicit handle set for copies,
// barrier visibility for aggregated ops, the enclosing Finish for
// tasks).
type Completer interface {
	// compRegister records n more operations that must complete; me is
	// the issuing rank (finish-attaching completers capture the scope
	// here).
	compRegister(me *Rank, n int)
	// compComplete credits one completion at modeled time t; sig is the
	// rank whose goroutine delivers it.
	compComplete(t float64, sig *Rank)
}

// *Event satisfies Completer, which is what keeps every pre-futures
// call site compiling: AsyncCopy(me, src, dst, n, ev) now routes the
// event through the same seam a promise or Onto set uses.
func (ev *Event) compRegister(_ *Rank, n int) { ev.register(n) }
func (ev *Event) compComplete(t float64, sig *Rank) {
	ev.signal(t, sig)
}

// Promise is the producer half of a future: operations complete into
// it, and Finalize returns the future of the whole set — the paper
// lineage's promise/require pattern. A fresh promise holds one
// anticipated completion for its creator, so operations may be added
// one by one (each registering and completing in any order) without
// the future resolving early; Finalize drops the creator's slot and
// arms resolution.
type Promise struct {
	me   *Rank
	fut  *Future[struct{}]
	mu   sync.Mutex
	pend int
	maxT float64
}

// NewPromise creates a promise owned by the calling rank.
func NewPromise(me *Rank) *Promise {
	return &Promise{me: me, fut: newFuture[struct{}](me), pend: 1}
}

// Future returns the promise's future (unresolved until Finalize has
// been called and every registered operation has completed). Chains may
// be attached before Finalize.
func (p *Promise) Future() *Future[struct{}] { return p.fut }

// Finalize drops the creator's anticipated completion and returns the
// future; once every operation registered with the promise completes,
// the future resolves. Call exactly once, after the last operation has
// been issued.
func (p *Promise) Finalize() *Future[struct{}] {
	p.compComplete(p.me.Clock(), p.me)
	return p.fut
}

func (p *Promise) compRegister(_ *Rank, n int) {
	p.mu.Lock()
	if p.pend <= 0 {
		p.mu.Unlock()
		panic("upcxx: operation completing into an already-finalized, drained Promise")
	}
	p.pend += n
	p.mu.Unlock()
}

func (p *Promise) compComplete(t float64, sig *Rank) {
	p.mu.Lock()
	if p.pend <= 0 {
		p.mu.Unlock()
		panic("upcxx: completion of an already-drained Promise (Finalize called twice, " +
			"or more completions than registrations)")
	}
	p.pend--
	if t > p.maxT {
		p.maxT = t
	}
	drained := p.pend == 0
	maxT := p.maxT
	p.mu.Unlock()
	if drained {
		p.fut.resolve(struct{}{}, maxT, sig)
	}
}

// Completion fans registration and completion out to several
// targets; built by Onto.
type Completion struct {
	targets []Completer
}

func (s *Completion) compRegister(me *Rank, n int) {
	for _, c := range s.targets {
		c.compRegister(me, n)
	}
}

func (s *Completion) compComplete(t float64, sig *Rank) {
	for _, c := range s.targets {
		c.compComplete(t, sig)
	}
}

// applyAsync makes an Onto(...) value usable directly as an AsyncTask /
// Async option: AsyncTask(me, place, task, args, Onto(p)) completes the
// task into p exactly as Signal(ev) completes it into an event.
func (s *Completion) applyAsync(c *asyncCfg) { c.done = chainCompleter(c.done, s) }

// Onto combines completion targets into one completion object: any mix
// of events, promises and ToFinish(). Nil targets are dropped; Onto()
// with nothing left returns nil (no completion object). The returned
// value is accepted everywhere a Completer is, and additionally as an
// Async/AsyncTask option.
func Onto(targets ...Completer) *Completion {
	s := &Completion{}
	for _, t := range targets {
		if t := normCompleter(t); t != nil {
			s.targets = append(s.targets, t)
		}
	}
	if len(s.targets) == 0 {
		return nil
	}
	return s
}

// finishArm attaches completions to the finish scope current at issue
// time. Single-use: one ToFinish() value serves one operation (or one
// batch issued under the same scope).
type finishArm struct {
	fs *finishScope
}

// ToFinish returns a completion target attaching the operation to the
// enclosing Finish, for operations (AsyncCopy, WriteSliceAsync) whose
// historical default is the implicit handle set rather than the scope.
func ToFinish() Completer { return &finishArm{} }

func (a *finishArm) compRegister(me *Rank, n int) {
	if a.fs == nil {
		a.fs = me.currentFinish()
	}
	if a.fs != nil {
		a.fs.add(n)
	}
}

func (a *finishArm) compComplete(t float64, sig *Rank) {
	if a.fs != nil {
		a.fs.childDone(t, sig)
	}
}

// normCompleter collapses typed-nil completers (a nil *Event variable
// passed through the interface parameter) to plain nil, preserving the
// pre-futures nil-event calling convention.
func normCompleter(c Completer) Completer {
	switch v := c.(type) {
	case *Event:
		if v == nil {
			return nil
		}
	case *Promise:
		if v == nil {
			return nil
		}
	case *Completion:
		if v == nil {
			return nil
		}
	case *finishArm:
		if v == nil {
			return nil
		}
	}
	return c
}

// chainCompleter joins two completers (either may be nil).
func chainCompleter(a, b Completer) Completer {
	a, b = normCompleter(a), normCompleter(b)
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	return &Completion{targets: []Completer{a, b}}
}

// completeNow registers and immediately completes one operation — the
// degenerate "operation was a no-op" case (Completer analog of
// SignalNow).
func completeNow(c Completer, me *Rank) {
	if c = normCompleter(c); c == nil {
		return
	}
	c.compRegister(me, 1)
	c.compComplete(me.Now(), me)
}
