// Package core implements the UPC++ programming model of the paper
// "UPC++: A PGAS Extension for C++" (Zheng et al., IPDPS 2014): SPMD
// execution over a partitioned global address space, shared scalars and
// block-cyclic shared arrays, global pointers with phase-free arithmetic,
// dynamic global memory management, one-sided bulk transfers with events,
// asynchronous remote function invocation with futures, X10-style finish,
// event-driven task dependencies, global locks and collectives.
//
// A job is started with Run, which spawns one goroutine per rank (the
// analog of UPC++'s one OS process per rank) and hands each a *Rank
// handle. Go has no per-thread globals, so the handle plays the role of
// MYTHREAD/THREADS and is threaded through all operations; everything else
// follows the paper's API surface closely (see Table I mapping in
// tablei_test.go).
//
// C++ UPC++ expresses typed operations through templates and operator
// overloading; here Go generics carry the types: upcxx.Read[T],
// upcxx.Write[T], upcxx.Allocate[T], SharedArray[T], Future[T].
package core

import (
	"fmt"
	"sync"
	"time"

	"upcxx/internal/agg"
	"upcxx/internal/fault"
	"upcxx/internal/gasnet"
	"upcxx/internal/obs"
	"upcxx/internal/segment"
	"upcxx/internal/sim"
)

// ThreadMode selects the runtime's thread-support level, mirroring the
// paper §IV: Serialized (the application promises that each rank's UPC++
// calls are serialized; the runtime skips internal locking) or Concurrent
// (multiple goroutines may call into the same rank handle; the runtime
// serializes internally, like MPI_THREAD_MULTIPLE).
type ThreadMode int

const (
	Serialized ThreadMode = iota
	Concurrent
)

// AccessPath selects how one-sided remote accesses are performed: Direct
// models RDMA (load/store into the peer segment, charged with LogGP put /
// get costs), AMMediated routes every access through an active message
// executed by the target's progress engine (the path networks without
// RDMA, or the paper's BG/Q fine-grained accesses, take). The ablation
// bench compares the two.
type AccessPath int

const (
	Direct AccessPath = iota
	AMMediated
)

// Config describes a job.
type Config struct {
	// Ranks is the number of SPMD ranks (THREADS). Required, >= 1.
	Ranks int
	// SegmentBytes is the per-rank shared segment size. Default 8 MiB.
	SegmentBytes int
	// Machine is the hardware profile for the cost model. Default sim.Local.
	Machine sim.Machine
	// SW is the software-overhead profile. Default sim.SWUPCXX.
	SW sim.SW
	// Virtual enables virtual-time reporting in Stats (the cost model is
	// always charged; this flag records which time base is authoritative).
	Virtual bool
	// Threads selects Serialized (default) or Concurrent mode.
	Threads ThreadMode
	// Access selects Direct (default) or AMMediated one-sided transfers.
	Access AccessPath
	// Agg sets the message-aggregation flush thresholds for wire-backed
	// jobs (zero fields take internal/agg's defaults; MaxOps = 1 is the
	// "aggregation off" baseline). Ignored on the in-process backend,
	// where the Agg* operations execute immediately.
	Agg agg.Config

	// Nodes is the host topology: Nodes[r] is the host index of rank r,
	// and ranks with equal entries are co-located (they form one local
	// team). Launchers derive it from -procs-per-node and pass the SAME
	// topology on every backend, so LocalTeam membership is
	// backend-independent. When nil, the conduit's own locality
	// knowledge applies (gasnet.LocalityConduit); absent that, the
	// in-process backend places all ranks on one host (they genuinely
	// share an address space) and a wire backend places each rank on
	// its own.
	Nodes []int

	// Resilient opts a wire-backed job into survivable mode: the
	// conduit's heartbeat failure detector runs, a peer's death fails
	// operations addressed to it with typed ErrRankDead (instead of
	// tearing the job down or hanging), and RetryPolicy-equipped
	// operations gain per-attempt reply deadlines. Default off — the
	// paper's failed-process-aborts-the-job model. Ignored in-process
	// except as enabling the chaos death simulation.
	Resilient bool
	// HeartbeatInterval / HeartbeatTimeout tune the failure detector
	// (defaults in gasnet.ResilienceConfig: 50ms / 250ms).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// Fault is an injected fault plan for chaos runs (see internal/
	// fault and upcxx-run's -chaos flag); nil for normal operation.
	Fault *fault.Plan
	// ChaosProcessExit lets a kill rule actually exit this process
	// (wire ranks launched by upcxx-run). Off in tests, where an
	// in-process simulated death is wanted instead.
	ChaosProcessExit bool
}

func (c Config) withDefaults() Config {
	if c.Ranks <= 0 {
		c.Ranks = 1
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 8 << 20
	}
	if c.Machine.Name == "" {
		c.Machine = sim.Local
	}
	if c.SW.Name == "" {
		c.SW = sim.SWUPCXX
	}
	return c
}

// Stats reports a finished job's measurements: wall-clock duration, the
// modeled virtual makespan, and aggregate communication counters.
type Stats struct {
	Ranks     int
	Wall      time.Duration
	VirtualNs float64 // max over ranks of final virtual clock
	AMs       int64
	Tasks     int64
	Puts      int64
	Gets      int64
	PutBytes  int64
	GetBytes  int64
	SegPeak   uint64 // max per-rank shared-heap high-water mark

	// Counters carries backend-specific named metrics: the wire
	// conduit's per-handler frame/byte counts and the aggregation
	// layer's batch statistics (nil for in-process jobs). The bench
	// harness folds them into its JSON artifact.
	Counters map[string]float64
}

// Seconds returns the authoritative elapsed time of the run: virtual time
// when the job was configured with Virtual, wall-clock time otherwise.
func (s Stats) Seconds(virtual bool) float64 {
	if virtual {
		return s.VirtualNs * 1e-9
	}
	return s.Wall.Seconds()
}

// Job is the shared state of one SPMD run. On a wire-backed job (one
// rank per OS process, see RunWire) only this process's slots of segs
// and ranks are populated; everything cross-rank goes through the
// conduit.
type Job struct {
	cfg   Config
	model *sim.Model
	eng   *gasnet.Engine
	segs  []*segment.Segment
	ranks []*Rank

	// chaos is the in-process backend's shared chaos clock when the
	// job carries a fault plan (see chaos.go); nil otherwise and on
	// wire jobs, where the plan acts in the transport seam instead.
	chaos *procChaos
}

// Rank is one SPMD execution unit's handle; all UPC++ operations take it.
// A Rank handle must only be used by the goroutine Run created for it (or,
// in Concurrent mode, by any goroutine, serialized internally).
type Rank struct {
	id  int
	job *Job
	ep  *gasnet.Endpoint
	seg *segment.Segment

	// cd is the communication backend every cross-rank operation of the
	// serializable vocabulary (Read/Write/Copy, AtomicXor, allocation,
	// barriers, collectives, locks) dispatches through: a ProcConduit
	// for in-process jobs, a WireConduit or HierConduit for
	// multi-process ones. caps is its optional-extension surface,
	// probed once at job start (the Capabilities seam).
	cd   gasnet.Conduit
	caps gasnet.Caps

	// nodes is the host topology (nodes[r] = host of rank r; see
	// Config.Nodes); world/localTeam cache the two built-in teams.
	nodes     []int
	world     *Team
	localTeam *Team

	// agg coalesces small remote ops into per-destination batches on
	// batch-capable conduits (see agg.go); nil in-process, where the
	// Agg* operations take their immediate fast path. aggBC is the
	// conduit's batch extension, set iff agg is.
	agg   *agg.Aggregator
	aggBC gasnet.BatchConduit

	// amHandlers dispatches aggregated active messages (AggSend) by
	// registered handler id, like a GASNet handler table.
	amHandlers map[uint16]AMHandler

	// aggEv tracks in-flight AggSends on the in-process backend (where
	// they ride engine AMs with no acknowledgement protocol): each send
	// registers, each delivery signals, and the barrier drain waits for
	// it — preserving the wire backend's "visible by the next barrier"
	// guarantee. The zero Event is ready.
	aggEv Event

	mu sync.Mutex // Concurrent-mode serialization

	// gid is the id of the goroutine this rank's SPMD main runs on
	// (captured by Run/RunWire). Future consumption checks it in
	// Serialized mode: Get/Ready/Then from another rank's goroutine
	// would drive the wrong progress engine. 0 = not yet bound.
	gid uint64

	finish []*finishScope

	// Registered-task RPC state (rpc.go), wire jobs only: calls awaits
	// executors' replies (futures, signal events) by call id; doneTab
	// holds finish scopes awaiting remote done-acks by scope id.
	calls    map[uint64]*pendingCall
	nextCall uint64
	doneTab  map[uint64]*finishScope
	nextDone uint64

	// Failure-handling state (health.go / retry.go), populated on
	// resilient or chaos-enabled jobs. rcd is the conduit's resilience
	// extension (nil otherwise); deadRanks is this rank's local view of
	// declared deaths; deathCbs are OnRankDeath registrations.
	// remoteSlots[target][fs] counts done-acks target owes fs, the
	// credits markRankDead restores when target dies; voidCalls holds
	// retired call ids whose late/duplicate replies must be dropped
	// rather than treated as protocol corruption.
	rcd         gasnet.ResilientConduit
	resilient   bool
	deadRanks   []bool
	deathCbs    []func(rank int)
	remoteSlots map[int]map[*finishScope]int
	voidCalls   map[uint64]struct{}

	// Implicit-handle non-blocking operation state (async_copy without an
	// event; completed by Fence / AsyncCopyFence).
	implicitMax float64
	implicitN   int

	// Observability (internal/obs). ring is this rank's span ring —
	// nil while tracing is disabled, making every span call site a
	// nil-check no-op. rpcRTT / barrierNs are wall-clock latency
	// histograms in the obs registry; they observe only while tracing
	// is on (the clock reads ride the same gate). obsStop removes this
	// rank's registry sources at job end.
	ring      *obs.Ring
	rpcRTT    *obs.Histogram
	barrierNs *obs.Histogram
	obsStop   func()
}

// onWire reports whether this rank belongs to a wire-backed job, where
// peers live in other address spaces and closures cannot travel.
func (r *Rank) onWire() bool { return r.cd.WireCapable() }

// noWire panics if op — an operation that ships Go closures — targets a
// remote rank of a wire-backed job. The portable alternative is a
// registered function: RegisterTask once per process, then AsyncTask /
// AsyncTaskFuture ship its index and POD-encoded arguments instead of
// a closure (see rpc.go).
func (r *Rank) noWire(op string, target int) {
	if target != r.id && r.onWire() {
		panic(fmt.Errorf("upcxx: %s targeting rank %d from rank %d ships a Go closure "+
			"(use RegisterTask + AsyncTask for remote invocation over the wire): %w",
			op, target, r.id, gasnet.ErrNotWireCapable))
	}
}

func newJob(cfg Config) *Job {
	cfg = cfg.withDefaults()
	j := &Job{
		cfg:   cfg,
		model: sim.NewModel(cfg.Virtual, cfg.Machine, cfg.SW, cfg.Ranks),
	}
	j.eng = gasnet.New(j.model, cfg.Ranks)
	j.segs = make([]*segment.Segment, cfg.Ranks)
	j.ranks = make([]*Rank, cfg.Ranks)
	mems := make([]gasnet.Memory, cfg.Ranks)
	for i := 0; i < cfg.Ranks; i++ {
		j.segs[i] = segment.New(cfg.SegmentBytes)
		mems[i] = j.segs[i]
	}
	conduits := gasnet.NewProcGroup(j.eng, mems)
	for i := 0; i < cfg.Ranks; i++ {
		j.ranks[i] = &Rank{
			id:    i,
			job:   j,
			ep:    j.eng.Endpoint(i),
			seg:   j.segs[i],
			cd:    conduits[i],
			caps:  conduits[i].Capabilities(),
			nodes: jobNodes(cfg, conduits[i]),
		}
	}
	if cfg.Fault != nil {
		j.chaos = &procChaos{plan: cfg.Fault}
	}
	return j
}

// initObs attaches this rank to the observability plane: its span ring
// (nil while tracing is disabled), its latency histograms, and a
// registry source folding the conduit/aggregation counters into the
// live metrics surface. Call after the conduit and aggregator exist.
func (r *Rank) initObs() {
	r.ring = obs.RingFor(r.id)
	if r.ring != nil {
		host := 0
		if r.nodes != nil && r.id < len(r.nodes) {
			host = r.nodes[r.id]
		}
		r.ring.SetPid(host)
	}
	r.rpcRTT = obs.Reg().NewHistogram("upcxx_rpc_rtt_ns", r.id)
	r.barrierNs = obs.Reg().NewHistogram("upcxx_barrier_ns", r.id)
	if r.agg != nil {
		r.agg.SetObs(r.ring, r.id)
	}
	if so, ok := r.cd.(interface{ SetObs(*obs.Ring) }); ok {
		so.SetObs(r.ring)
	}
	var removes []func()
	if cs := r.caps.Counters; cs != nil {
		removes = append(removes, obs.Reg().AddSource(r.id, func() map[string]int64 {
			out := map[string]int64{}
			for k, v := range cs.Counters() {
				out[k] = int64(v)
			}
			return out
		}))
	}
	if a := r.agg; a != nil {
		removes = append(removes, obs.Reg().AddSource(r.id, func() map[string]int64 {
			out := map[string]int64{}
			for k, v := range a.Counters() {
				out[k] = int64(v)
			}
			return out
		}))
	}
	r.obsStop = func() {
		for _, f := range removes {
			f()
		}
	}
}

// Run executes main as an SPMD program over cfg.Ranks ranks and returns
// the job's statistics. It does not return until every rank's main has
// returned and the runtime has quiesced. A panic on any rank crashes the
// whole job (matching the paper's process model, where a failed process
// aborts the SPMD job).
func Run(cfg Config, main func(me *Rank)) Stats {
	j := newJob(cfg)
	start := time.Now()
	var wg sync.WaitGroup
	for _, r := range j.ranks {
		wg.Add(1)
		go func(r *Rank) {
			defer wg.Done()
			r.gid = goid()
			r.initObs()
			main(r)
			r.quiesce()
			r.obsStop()
		}(r)
	}
	wg.Wait()
	wall := time.Since(start)

	st := Stats{Ranks: cfg.Ranks, Wall: wall, VirtualNs: j.eng.MaxClock()}
	st.AMs, st.Tasks, st.Puts, st.Gets, st.PutBytes, st.GetBytes = j.eng.TotalStats()
	for _, s := range j.segs {
		if p := s.Peak(); p > st.SegPeak {
			st.SegPeak = p
		}
	}
	return st
}

// RunWire executes main as THIS process's single rank of an n-rank
// multi-process job communicating through cd (normally a
// gasnet.WireConduit over TCP; see cmd/upcxx-run for the launcher).
// seg must be the same segment cd serves remote requests against.
// The rank count comes from the conduit; cfg.Ranks is ignored.
//
// All operations of the serializable vocabulary work exactly as
// in-process: one-sided Read/Write/Copy/AsyncCopy, AtomicXor, remote
// Allocate/Deallocate, Barrier, the typed collectives, shared
// variables/arrays, and locks — and so does remote function invocation
// in its registered form (RegisterTask + AsyncTask / AsyncTaskFuture,
// with distributed Finish completion; see rpc.go). Raw closure-carrying
// operations (Async, AsyncFuture, RMW, raw AMs) work only when
// targeting this rank itself and panic with gasnet.ErrNotWireCapable
// otherwise. Reported time is wall-clock; the virtual-time model does
// not span address spaces.
func RunWire(cfg Config, cd gasnet.Conduit, seg *segment.Segment, main func(me *Rank)) Stats {
	cfg.Ranks = cd.Ranks()
	cfg = cfg.withDefaults()
	id := cd.Rank()
	j := &Job{
		cfg:   cfg,
		model: sim.NewModel(cfg.Virtual, cfg.Machine, cfg.SW, cfg.Ranks),
	}
	// The local engine provides this rank's clock, counters and
	// loopback task queue (self-targeted asyncs, events); cross-rank
	// traffic never touches it.
	j.eng = gasnet.New(j.model, cfg.Ranks)
	j.segs = make([]*segment.Segment, cfg.Ranks)
	j.segs[id] = seg
	j.ranks = make([]*Rank, cfg.Ranks)
	r := &Rank{id: id, job: j, ep: j.eng.Endpoint(id), seg: seg, cd: cd,
		caps: cd.Capabilities(), nodes: jobNodes(cfg, cd)}
	j.ranks[id] = r
	if bc := r.caps.Batch; bc != nil {
		r.initAgg(bc, cfg.Agg)
	}
	r.initObs()
	r.installRPC()
	if cfg.Resilient || cfg.Fault != nil {
		if rc := r.caps.Resilient; rc != nil {
			r.rcd = rc
			r.resilient = true
			r.deadRanks = make([]bool, cfg.Ranks)
			rc.EnableResilience(gasnet.ResilienceConfig{
				HeartbeatInterval: cfg.HeartbeatInterval,
				HeartbeatTimeout:  cfg.HeartbeatTimeout,
			}, r.markRankDead)
		}
	}

	start := time.Now()
	r.gid = goid()
	main(r)
	r.quiesce()
	wall := time.Since(start)

	st := Stats{Ranks: cfg.Ranks, Wall: wall, VirtualNs: r.ep.Clock.Now()}
	st.AMs = r.ep.Stats.AMs.Load()
	st.Tasks = r.ep.Stats.Tasks.Load()
	st.Puts = r.ep.Stats.Puts.Load()
	st.Gets = r.ep.Stats.Gets.Load()
	st.PutBytes = r.ep.Stats.PutBytes.Load()
	st.GetBytes = r.ep.Stats.GetBytes.Load()
	st.SegPeak = seg.Peak()
	st.Counters = map[string]float64{}
	if cs := r.caps.Counters; cs != nil {
		for k, v := range cs.Counters() {
			st.Counters[k] = v
		}
	}
	if r.agg != nil {
		for k, v := range r.agg.Counters() {
			st.Counters[k] = v
		}
	}
	// Typed obs metrics (latency histograms and friends) fold into the
	// same counter map the bench harness emits; sources are excluded —
	// the conduit and aggregation counters are already merged above
	// under their unlabeled names.
	for k, v := range obs.Reg().SnapshotOwn() {
		st.Counters[k] = float64(v)
	}
	r.obsStop()
	return st
}

// quiesce drains in-flight messages after main returns: two barrier rounds
// guarantee that any task injected before the first barrier has executed
// before any rank tears down.
func (r *Rank) quiesce() {
	r.aggDrain()
	r.mustCd(r.cd.Barrier())
	r.ep.Poll()
	if r.onWire() {
		r.cd.Poll()
	}
	r.aggDrain()
	r.mustCd(r.cd.Barrier())
}

// mustCd converts a conduit failure into a job abort, following the
// paper's process model (a failed process aborts the SPMD job).
func (r *Rank) mustCd(err error) {
	if err != nil {
		panic(fmt.Errorf("upcxx: rank %d conduit failure: %w", r.id, err))
	}
}

// ID returns this rank's index (MYTHREAD in UPC terms, myrank() in UPC++).
func (r *Rank) ID() int { return r.id }

// Ranks returns the job size (THREADS in UPC terms, ranks() in UPC++).
func (r *Rank) Ranks() int { return r.job.cfg.Ranks }

// Model exposes the cost model (used by benchmark harnesses).
func (r *Rank) Model() *sim.Model { return r.job.model }

// Clock returns this rank's current virtual time in nanoseconds.
func (r *Rank) Clock() float64 { return r.ep.Clock.Now() }

// Barrier blocks until all ranks arrive (upc_barrier / upcxx barrier()).
// Queued async tasks are serviced while waiting, per the paper's progress
// rules. On a wire job the aggregation layer is drained first, so every
// aggregated op issued before the barrier is globally visible after it.
// Equivalent to me.World().Barrier().
func (r *Rank) Barrier() {
	r.World().Barrier()
}

// Advance services queued async tasks and returns how many ran. It is the
// paper's advance() progress call. On a wire-backed job it also services
// the conduit's incoming requests and ships aggregation batches that
// have aged past their flush deadline.
func (r *Rank) Advance() int {
	r.enter()
	defer r.exit()
	r.chaosSync()
	n := r.ep.Poll()
	// Age out overdue batches before servicing the conduit: dispatching
	// an acknowledgement runs the ack cut-through flush, which would
	// otherwise sweep an already-aged batch out as an explicit flush —
	// shipping it no sooner but robbing the age signal the adaptive
	// controller tunes on.
	if r.agg != nil {
		n += r.agg.Tick()
	}
	if r.onWire() {
		n += r.cd.Poll()
	}
	return n
}

// Work charges n floating-point operations of modeled compute time to this
// rank's virtual clock. Benchmarks perform their real arithmetic and then
// charge what they executed; see DESIGN.md §4.
func (r *Rank) Work(flops float64) { r.ep.Clock.Advance(r.job.model.FlopsCost(flops)) }

// WorkParallel charges n flops executed across `ways` node-local workers
// (the OpenMP-within-rank idiom of the paper's Embree study).
func (r *Rank) WorkParallel(flops float64, ways int) {
	if ways < 1 {
		ways = 1
	}
	r.ep.Clock.Advance(r.job.model.FlopsCost(flops) / float64(ways))
}

// MemWork charges the movement of n bytes through this core's memory
// system (for memory-bound kernels such as stencils).
func (r *Rank) MemWork(bytes float64) { r.ep.Clock.Advance(r.job.model.MemCost(bytes)) }

// Lapse charges an arbitrary modeled duration in nanoseconds.
func (r *Rank) Lapse(ns float64) { r.ep.Clock.Advance(ns) }

// enter/exit implement Concurrent-mode serialization; in Serialized mode
// they are free.
func (r *Rank) enter() {
	if r.job.cfg.Threads == Concurrent {
		r.mu.Lock()
	}
}

func (r *Rank) exit() {
	if r.job.cfg.Threads == Concurrent {
		r.mu.Unlock()
	}
}

func (r *Rank) String() string {
	return fmt.Sprintf("rank %d/%d", r.id, r.job.cfg.Ranks)
}
