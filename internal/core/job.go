// Package core implements the UPC++ programming model of the paper
// "UPC++: A PGAS Extension for C++" (Zheng et al., IPDPS 2014): SPMD
// execution over a partitioned global address space, shared scalars and
// block-cyclic shared arrays, global pointers with phase-free arithmetic,
// dynamic global memory management, one-sided bulk transfers with events,
// asynchronous remote function invocation with futures, X10-style finish,
// event-driven task dependencies, global locks and collectives.
//
// A job is started with Run, which spawns one goroutine per rank (the
// analog of UPC++'s one OS process per rank) and hands each a *Rank
// handle. Go has no per-thread globals, so the handle plays the role of
// MYTHREAD/THREADS and is threaded through all operations; everything else
// follows the paper's API surface closely (see Table I mapping in
// tablei_test.go).
//
// C++ UPC++ expresses typed operations through templates and operator
// overloading; here Go generics carry the types: upcxx.Read[T],
// upcxx.Write[T], upcxx.Allocate[T], SharedArray[T], Future[T].
package core

import (
	"fmt"
	"sync"
	"time"

	"upcxx/internal/gasnet"
	"upcxx/internal/segment"
	"upcxx/internal/sim"
)

// ThreadMode selects the runtime's thread-support level, mirroring the
// paper §IV: Serialized (the application promises that each rank's UPC++
// calls are serialized; the runtime skips internal locking) or Concurrent
// (multiple goroutines may call into the same rank handle; the runtime
// serializes internally, like MPI_THREAD_MULTIPLE).
type ThreadMode int

const (
	Serialized ThreadMode = iota
	Concurrent
)

// AccessPath selects how one-sided remote accesses are performed: Direct
// models RDMA (load/store into the peer segment, charged with LogGP put /
// get costs), AMMediated routes every access through an active message
// executed by the target's progress engine (the path networks without
// RDMA, or the paper's BG/Q fine-grained accesses, take). The ablation
// bench compares the two.
type AccessPath int

const (
	Direct AccessPath = iota
	AMMediated
)

// Config describes a job.
type Config struct {
	// Ranks is the number of SPMD ranks (THREADS). Required, >= 1.
	Ranks int
	// SegmentBytes is the per-rank shared segment size. Default 8 MiB.
	SegmentBytes int
	// Machine is the hardware profile for the cost model. Default sim.Local.
	Machine sim.Machine
	// SW is the software-overhead profile. Default sim.SWUPCXX.
	SW sim.SW
	// Virtual enables virtual-time reporting in Stats (the cost model is
	// always charged; this flag records which time base is authoritative).
	Virtual bool
	// Threads selects Serialized (default) or Concurrent mode.
	Threads ThreadMode
	// Access selects Direct (default) or AMMediated one-sided transfers.
	Access AccessPath
}

func (c Config) withDefaults() Config {
	if c.Ranks <= 0 {
		c.Ranks = 1
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 8 << 20
	}
	if c.Machine.Name == "" {
		c.Machine = sim.Local
	}
	if c.SW.Name == "" {
		c.SW = sim.SWUPCXX
	}
	return c
}

// Stats reports a finished job's measurements: wall-clock duration, the
// modeled virtual makespan, and aggregate communication counters.
type Stats struct {
	Ranks     int
	Wall      time.Duration
	VirtualNs float64 // max over ranks of final virtual clock
	AMs       int64
	Tasks     int64
	Puts      int64
	Gets      int64
	PutBytes  int64
	GetBytes  int64
	SegPeak   uint64 // max per-rank shared-heap high-water mark
}

// Seconds returns the authoritative elapsed time of the run: virtual time
// when the job was configured with Virtual, wall-clock time otherwise.
func (s Stats) Seconds(virtual bool) float64 {
	if virtual {
		return s.VirtualNs * 1e-9
	}
	return s.Wall.Seconds()
}

// Job is the shared state of one SPMD run.
type Job struct {
	cfg   Config
	model *sim.Model
	eng   *gasnet.Engine
	segs  []*segment.Segment
	ranks []*Rank
}

// Rank is one SPMD execution unit's handle; all UPC++ operations take it.
// A Rank handle must only be used by the goroutine Run created for it (or,
// in Concurrent mode, by any goroutine, serialized internally).
type Rank struct {
	id  int
	job *Job
	ep  *gasnet.Endpoint
	seg *segment.Segment

	mu sync.Mutex // Concurrent-mode serialization

	finish []*finishScope

	// Implicit-handle non-blocking operation state (async_copy without an
	// event; completed by Fence / AsyncCopyFence).
	implicitMax float64
	implicitN   int

	// Lock manager state, touched only by this rank's goroutine (AM
	// handlers run there), so no mutex is needed.
	locks      map[uint64]*lockState
	nextLockID uint64
}

func newJob(cfg Config) *Job {
	cfg = cfg.withDefaults()
	j := &Job{
		cfg:   cfg,
		model: sim.NewModel(cfg.Virtual, cfg.Machine, cfg.SW, cfg.Ranks),
	}
	j.eng = gasnet.New(j.model, cfg.Ranks)
	j.segs = make([]*segment.Segment, cfg.Ranks)
	j.ranks = make([]*Rank, cfg.Ranks)
	for i := 0; i < cfg.Ranks; i++ {
		j.segs[i] = segment.New(cfg.SegmentBytes)
		j.ranks[i] = &Rank{
			id:    i,
			job:   j,
			ep:    j.eng.Endpoint(i),
			seg:   j.segs[i],
			locks: make(map[uint64]*lockState),
		}
	}
	return j
}

// Run executes main as an SPMD program over cfg.Ranks ranks and returns
// the job's statistics. It does not return until every rank's main has
// returned and the runtime has quiesced. A panic on any rank crashes the
// whole job (matching the paper's process model, where a failed process
// aborts the SPMD job).
func Run(cfg Config, main func(me *Rank)) Stats {
	j := newJob(cfg)
	start := time.Now()
	var wg sync.WaitGroup
	for _, r := range j.ranks {
		wg.Add(1)
		go func(r *Rank) {
			defer wg.Done()
			main(r)
			r.quiesce()
		}(r)
	}
	wg.Wait()
	wall := time.Since(start)

	st := Stats{Ranks: cfg.Ranks, Wall: wall, VirtualNs: j.eng.MaxClock()}
	st.AMs, st.Tasks, st.Puts, st.Gets, st.PutBytes, st.GetBytes = j.eng.TotalStats()
	for _, s := range j.segs {
		if p := s.Peak(); p > st.SegPeak {
			st.SegPeak = p
		}
	}
	return st
}

// quiesce drains in-flight messages after main returns: two barrier rounds
// guarantee that any task injected before the first barrier has executed
// before any rank tears down.
func (r *Rank) quiesce() {
	r.ep.Barrier()
	r.ep.Poll()
	r.ep.Barrier()
}

// ID returns this rank's index (MYTHREAD in UPC terms, myrank() in UPC++).
func (r *Rank) ID() int { return r.id }

// Ranks returns the job size (THREADS in UPC terms, ranks() in UPC++).
func (r *Rank) Ranks() int { return r.job.cfg.Ranks }

// Model exposes the cost model (used by benchmark harnesses).
func (r *Rank) Model() *sim.Model { return r.job.model }

// Clock returns this rank's current virtual time in nanoseconds.
func (r *Rank) Clock() float64 { return r.ep.Clock.Now() }

// Barrier blocks until all ranks arrive (upc_barrier / upcxx barrier()).
// Queued async tasks are serviced while waiting, per the paper's progress
// rules.
func (r *Rank) Barrier() {
	r.enter()
	defer r.exit()
	r.ep.Barrier()
}

// Advance services queued async tasks and returns how many ran. It is the
// paper's advance() progress call.
func (r *Rank) Advance() int {
	r.enter()
	defer r.exit()
	return r.ep.Poll()
}

// Work charges n floating-point operations of modeled compute time to this
// rank's virtual clock. Benchmarks perform their real arithmetic and then
// charge what they executed; see DESIGN.md §4.
func (r *Rank) Work(flops float64) { r.ep.Clock.Advance(r.job.model.FlopsCost(flops)) }

// WorkParallel charges n flops executed across `ways` node-local workers
// (the OpenMP-within-rank idiom of the paper's Embree study).
func (r *Rank) WorkParallel(flops float64, ways int) {
	if ways < 1 {
		ways = 1
	}
	r.ep.Clock.Advance(r.job.model.FlopsCost(flops) / float64(ways))
}

// MemWork charges the movement of n bytes through this core's memory
// system (for memory-bound kernels such as stencils).
func (r *Rank) MemWork(bytes float64) { r.ep.Clock.Advance(r.job.model.MemCost(bytes)) }

// Lapse charges an arbitrary modeled duration in nanoseconds.
func (r *Rank) Lapse(ns float64) { r.ep.Clock.Advance(ns) }

// enter/exit implement Concurrent-mode serialization; in Serialized mode
// they are free.
func (r *Rank) enter() {
	if r.job.cfg.Threads == Concurrent {
		r.mu.Lock()
	}
}

func (r *Rank) exit() {
	if r.job.cfg.Threads == Concurrent {
		r.mu.Unlock()
	}
}

// call executes fn on the target rank's goroutine and blocks until fn's
// reply value arrives back, charging AM costs both ways. It is the
// building block for remote allocation, lock traffic and other control
// RPCs. fn must not block.
func (r *Rank) call(target int, reqBytes, repBytes int, fn func(tgt *Rank) uint64) uint64 {
	var (
		reply uint64
		done  bool
	)
	r.ep.Send(target, reqBytes, func(tep *gasnet.Endpoint) {
		tgt := r.job.ranks[tep.Rank]
		v := fn(tgt)
		tep.Send(r.id, repBytes, func(*gasnet.Endpoint) {
			reply = v
			done = true
		})
	})
	r.ep.WaitFor(func() bool { return done })
	return reply
}

func (r *Rank) String() string {
	return fmt.Sprintf("rank %d/%d", r.id, r.job.cfg.Ranks)
}
