package core

import (
	"sync"

	"upcxx/internal/gasnet"
	"upcxx/internal/obs"
)

// Place designates the target(s) of an async: a single rank or a group
// (paper §III-G: "place can be a single thread ID or a group of threads").
type Place struct {
	ranks []int
}

// On returns the place consisting of a single rank.
func On(rank int) Place { return Place{ranks: []int{rank}} }

// OnRanks returns the place consisting of the given ranks.
func OnRanks(ranks ...int) Place {
	rs := make([]int, len(ranks))
	copy(rs, ranks)
	return Place{ranks: rs}
}

// Everywhere returns the place consisting of all ranks of me's job.
func Everywhere(me *Rank) Place {
	rs := make([]int, me.Ranks())
	for i := range rs {
		rs[i] = i
	}
	return Place{ranks: rs}
}

// TaskFn is the body of an async task; it runs on the target rank's
// goroutine with the target's handle. UPC++ ships a function pointer and
// its arguments (no closure capture, §III-G); here the closure travels
// in-process and the declared Payload size is charged to the cost model.
// Closures do not serialize, so this form is in-process-only for remote
// targets; the wire-capable equivalent is a registered task (see
// RegisterTask / AsyncTask in rpc.go).
type TaskFn func(me *Rank)

type asyncCfg struct {
	payload int
	after   *Event
	// done is the launch's completion object: an *Event (via Signal),
	// a *Promise or Onto(...) set, or a chain of them. It completes
	// when the task body has run.
	done  Completer
	flops float64
	// retry is the operation's retry policy (WithRetry); nil = single
	// attempt. Honored by AsyncTaskFuture and the futures-first
	// one-sided ops on resilient wire jobs; ignored elsewhere.
	retry *RetryPolicy
}

// AsyncOpt configures an Async / AsyncTask launch. It is an interface
// (rather than a bare func type) so completion objects built with Onto
// can be passed directly as options alongside Payload/After/TaskFlops.
type AsyncOpt interface {
	applyAsync(*asyncCfg)
}

// asyncOptFn adapts a plain option function to AsyncOpt.
type asyncOptFn func(*asyncCfg)

func (f asyncOptFn) applyAsync(c *asyncCfg) { f(c) }

// Payload declares the modeled size in bytes of the task's serialized
// arguments (default 64).
func Payload(bytes int) AsyncOpt { return asyncOptFn(func(c *asyncCfg) { c.payload = bytes }) }

// After defers the launch until ev fires — the paper's
// async_after(place, after, ...) dependency construct.
func After(ev *Event) AsyncOpt { return asyncOptFn(func(c *asyncCfg) { c.after = ev }) }

// Signal registers the task(s) with ev; ev fires when they (and every
// other registered operation) complete — the paper's
// async(place, event* ack) form. It is the event-flavored spelling of
// the unified completion option: Signal(ev) and Onto(ev) are the same
// thing, and Onto additionally accepts promises and ToFinish().
func Signal(ev *Event) AsyncOpt {
	return asyncOptFn(func(c *asyncCfg) { c.done = chainCompleter(c.done, ev) })
}

// TaskFlops charges the given modeled compute to the target when the task
// runs (in addition to any charges the body itself makes).
func TaskFlops(f float64) AsyncOpt { return asyncOptFn(func(c *asyncCfg) { c.flops = f }) }

// Async launches fn asynchronously on every rank of place, the paper's
// async(place)(function, args...). The launch is non-blocking; completion
// is observed through a surrounding Finish, a Signal event, or a returned
// future (AsyncFuture).
func Async(me *Rank, place Place, fn TaskFn, opts ...AsyncOpt) {
	cfg := asyncCfg{payload: 64}
	for _, o := range opts {
		o.applyAsync(&cfg)
	}
	// Asyncs ship Go closures, which do not serialize: on a wire-backed
	// job only self-targeted tasks are allowed.
	for _, t := range place.ranks {
		me.noWire("Async", t)
	}
	me.enter()
	fs := me.currentFinish()
	if fs != nil {
		fs.add(len(place.ranks))
	}
	if cfg.done != nil {
		cfg.done.compRegister(me, len(place.ranks))
	}
	me.exit()

	job := me.job
	me.fanOut(place, cfg, func(from *Rank, target int, arrival float64) {
		from.ring.Instant(obs.KTaskDispatch, int32(target), uint32(cfg.payload), 0)
		from.ep.SendAt(target, arrival, cfg.payload, func(tep *gasnet.Endpoint) {
			tgt := job.ranks[tep.Rank]
			tep.Clock.Advance(job.model.TaskDispatchCost())
			if cfg.flops > 0 {
				tgt.Work(cfg.flops)
			}
			tgt.ring.Begin(obs.KTaskExec, int32(from.id), uint32(cfg.payload))
			fn(tgt)
			tgt.ring.End(obs.KTaskExec)
			done := tgt.Clock()
			if cfg.done != nil {
				cfg.done.compComplete(done, tgt)
			}
			if fs != nil {
				fs.childDone(done, tgt)
			}
		})
	})
}

// AsyncAfter is shorthand for Async with an After dependency and an
// optional Signal event, matching the paper's
// async_after(place, after, signal)(task) form.
func AsyncAfter(me *Rank, place Place, after *Event, signal *Event, fn TaskFn, opts ...AsyncOpt) {
	opts = append(opts, After(after))
	if signal != nil {
		opts = append(opts, Signal(signal))
	}
	Async(me, place, fn, opts...)
}

// AsyncFuture launches fn on the target rank and returns a future for its
// result: future<T> f = async(place)(function, args...). The reply travels
// back as a message and its latency is charged when the value is consumed.
// The returned future is chainable — see Then/ThenAsync in future.go.
func AsyncFuture[T any](me *Rank, target int, fn func(me *Rank) T, opts ...AsyncOpt) *Future[T] {
	cfg := asyncCfg{payload: 64}
	for _, o := range opts {
		o.applyAsync(&cfg)
	}
	me.noWire("AsyncFuture", target)
	f := newFuture[T](me)
	me.enter()
	fs := me.currentFinish()
	if fs != nil {
		fs.add(1)
	}
	if cfg.done != nil {
		cfg.done.compRegister(me, 1)
	}
	me.exit()
	job := me.job
	repBytes := int(sizeOf[T]())

	t0 := me.Clock()
	me.ep.Clock.Advance(job.model.AMSendCost(cfg.payload))
	arrival := job.model.AMArrival(t0, me.id, target, cfg.payload)
	me.ep.SendAt(target, arrival, cfg.payload, func(tep *gasnet.Endpoint) {
		tgt := job.ranks[tep.Rank]
		tep.Clock.Advance(job.model.TaskDispatchCost())
		if cfg.flops > 0 {
			tgt.Work(cfg.flops)
		}
		v := fn(tgt)
		done := tgt.Clock()
		repArrival := done + job.model.Lat(tgt.id, me.id) + job.model.WireNs(repBytes)
		tep.SendAt(me.id, repArrival, repBytes, func(rep *gasnet.Endpoint) {
			// The reply executes on the owner's goroutine; resolution
			// fires any attached continuations there.
			f.resolve(v, rep.Clock.Now(), me)
		})
		if cfg.done != nil {
			cfg.done.compComplete(done, tgt)
		}
		if fs != nil {
			fs.childDone(done, tgt)
		}
	})
	return f
}

// finishScope tracks operations launched in the dynamic extent of one
// Finish block (or one remote task body — see execTask in rpc.go): the
// spawn/done accounting behind the paper's X10-style finish. Closure
// asyncs count only tasks spawned directly in the block's dynamic
// scope on the initiating rank (paper §III-G); registered tasks are
// tracked transitively — each remote task runs under an implicit scope
// of its own whose completion cascades up the spawn tree as done-acks,
// so a Finish over AsyncTask launches blocks until every descendant,
// including RPCs spawned by RPCs on other address spaces, and every
// aggregated operation they issued, has quiesced.
type finishScope struct {
	mu          sync.Mutex
	outstanding int
	owner       *Rank

	// onZero, when set, makes this a deferred-completion scope (a
	// remote task's implicit scope): it runs exactly once, when the
	// count drains, instead of waking a blocked Finish. The sig rank is
	// the one whose goroutine delivered the final completion.
	onZero func(t float64, sig *Rank)

	// doneID is this scope's key in the owner rank's done-ack table
	// while remote executors hold references to it (0 otherwise); see
	// doneIDFor in rpc.go.
	doneID uint64
}

func (fs *finishScope) add(n int) {
	fs.mu.Lock()
	fs.outstanding += n
	fs.mu.Unlock()
}

func (fs *finishScope) childDone(doneTime float64, child *Rank) {
	fs.mu.Lock()
	fs.outstanding--
	zero := fs.outstanding == 0
	fz := fs.onZero
	fs.mu.Unlock()
	if !zero {
		return
	}
	if fz != nil {
		fz(doneTime, child)
		return
	}
	arrival := doneTime + child.job.model.Lat(child.id, fs.owner.id)
	child.ep.Wake(fs.owner.id, arrival)
}

func (fs *finishScope) empty() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.outstanding == 0
}

// currentFinish returns the innermost active finish scope, if any.
func (r *Rank) currentFinish() *finishScope {
	if n := len(r.finish); n > 0 {
		return r.finish[n-1]
	}
	return nil
}

// Finish runs body and then blocks until every async launched in body's
// dynamic scope has completed — the paper's finish construct,
// implemented there with RAII and here with a higher-order function,
// the idiomatic Go equivalent. Registered tasks (AsyncTask) are waited
// on transitively, across address spaces: the scope drains only when
// every remote descendant's done-ack has cascaded back (see
// finishScope). Closure asyncs count non-transitively, as before.
func Finish(me *Rank, body func()) {
	me.ring.Begin(obs.KFinish, -1, 0)
	fs := &finishScope{owner: me}
	me.finish = append(me.finish, fs)
	body()
	me.finish = me.finish[:len(me.finish)-1]
	me.ring.Instant(obs.KFinishDrain, -1, 0, 0)
	// Aggregated ops issued in the body registered with fs too; the
	// progress wait flushes them and services their acknowledgements
	// (and, on a wire job, incoming requests and done-acks).
	me.waitProgress(fs.empty)
	me.doneDrop(fs)
	me.ring.End(obs.KFinish)
}
