package core

import (
	"fmt"
	"reflect"
	"unsafe"

	"upcxx/internal/gasnet"
	"upcxx/internal/segment"
)

// GlobalPtr is the Go analog of the paper's global_ptr<T>: a POD value
// encapsulating the owning rank and the address (segment offset) of a
// shared object. Unlike UPC pointers-to-shared, and exactly like UPC++
// global pointers (paper §III-B), it carries no block offset/phase, so
// arithmetic works like ordinary pointer arithmetic.
//
// The zero GlobalPtr is the null pointer. GlobalPtr values may be freely
// stored in shared memory, sent in async arguments, etc.
type GlobalPtr[T any] struct {
	rank int32
	off1 uint64 // segment offset + 1; 0 means null
}

// Null returns the null global pointer.
func Null[T any]() GlobalPtr[T] { return GlobalPtr[T]{} }

// IsNull reports whether p is the null pointer.
func (p GlobalPtr[T]) IsNull() bool { return p.off1 == 0 }

// Where returns the rank that owns the referenced object (the paper's
// where(), i.e. UPC "thread affinity").
func (p GlobalPtr[T]) Where() int { return int(p.rank) }

// Offset returns the byte offset within the owner's segment.
func (p GlobalPtr[T]) Offset() uint64 { return p.off1 - 1 }

// Add returns p advanced by n elements (n may be negative), with ordinary
// C-style pointer arithmetic — no block phase is involved.
func (p GlobalPtr[T]) Add(n int) GlobalPtr[T] {
	if p.IsNull() {
		panic("upcxx: arithmetic on null global pointer")
	}
	d := int64(n) * int64(sizeOf[T]())
	return GlobalPtr[T]{rank: p.rank, off1: uint64(int64(p.off1) + d)}
}

// Diff returns the element distance p - q. Both pointers must reference
// the same rank's segment.
func (p GlobalPtr[T]) Diff(q GlobalPtr[T]) int {
	if p.rank != q.rank {
		panic("upcxx: Diff of global pointers with different affinity")
	}
	return int((int64(p.off1) - int64(q.off1)) / int64(sizeOf[T]()))
}

func (p GlobalPtr[T]) String() string {
	if p.IsNull() {
		return "gptr<null>"
	}
	return fmt.Sprintf("gptr{rank %d, off %d}", p.rank, p.Offset())
}

// gptrAt builds a GlobalPtr from a rank and raw segment offset.
func gptrAt[T any](rank int, off uint64) GlobalPtr[T] {
	return GlobalPtr[T]{rank: int32(rank), off1: off + 1}
}

func sizeOf[T any]() uint64 {
	var t T
	return uint64(unsafe.Sizeof(t))
}

func checkPOD[T any]() {
	var t T
	if err := segment.CheckPOD(reflect.TypeOf(t)); err != nil {
		panic("upcxx: " + err.Error())
	}
}

// TryAllocate reserves space for count elements of T in the given rank's
// shared segment, without running constructors (paper §III-C: allocate
// does not call the object's constructor; use placement initialization
// afterwards). Remote allocation — a capability UPC and MPI lack — is
// performed by an active message to the owner.
func TryAllocate[T any](me *Rank, rank, count int) (GlobalPtr[T], error) {
	checkPOD[T]()
	me.enter()
	defer me.exit()
	if rank < 0 || rank >= me.Ranks() {
		return Null[T](), fmt.Errorf("upcxx: allocate on invalid rank %d of %d", rank, me.Ranks())
	}
	if count < 0 {
		return Null[T](), fmt.Errorf("upcxx: allocate negative count %d", count)
	}
	size := uint64(count) * sizeOf[T]()
	if rank == me.id {
		off, err := me.seg.Alloc(size)
		if err != nil {
			return Null[T](), err
		}
		return gptrAt[T](rank, off), nil
	}
	me.aggPreBlock()
	off, err := me.cd.Alloc(rank, size)
	if err != nil {
		return Null[T](), fmt.Errorf("upcxx: remote allocate of %d bytes on rank %d: %w", size, rank, segment.ErrOutOfMemory)
	}
	return gptrAt[T](rank, off), nil
}

// Allocate is like TryAllocate but panics on failure (the bad_alloc
// analog), for the common benchmark/bootstrap paths.
func Allocate[T any](me *Rank, rank, count int) GlobalPtr[T] {
	p, err := TryAllocate[T](me, rank, count)
	if err != nil {
		panic(err)
	}
	return p
}

// Deallocate frees memory allocated with Allocate; any rank may free any
// pointer (paper §III-C), remotely via an active message if needed.
func Deallocate[T any](me *Rank, p GlobalPtr[T]) error {
	me.enter()
	defer me.exit()
	if p.IsNull() {
		return nil
	}
	if int(p.rank) == me.id {
		return me.seg.Free(p.Offset())
	}
	me.aggPreBlock()
	if err := me.cd.Free(int(p.rank), p.Offset()); err != nil {
		return fmt.Errorf("upcxx: remote free of %v failed", p)
	}
	return nil
}

// Local returns a raw pointer to the referenced object, which must have
// affinity to the calling rank (the paper's cast of a global_ptr to T*).
func Local[T any](me *Rank, p GlobalPtr[T]) *T {
	if p.IsNull() {
		return nil
	}
	if int(p.rank) != me.id {
		panic(fmt.Sprintf("upcxx: Local on %v from rank %d", p, me.id))
	}
	return segment.At[T](me.seg, p.Offset())
}

// LocalSlice returns a []T view of count elements starting at p, which
// must be local to the calling rank.
func LocalSlice[T any](me *Rank, p GlobalPtr[T], count int) []T {
	if int(p.rank) != me.id {
		panic(fmt.Sprintf("upcxx: LocalSlice on %v from rank %d", p, me.id))
	}
	return segment.Slice[T](me.seg, p.Offset(), count)
}

// Escalate builds a GlobalPtr to an object in the caller's own segment
// from a raw segment offset; combined with Allocate on the local rank it
// provides the paper's "escalate a private object into a shared object"
// idiom within the registered segment.
func Escalate[T any](me *Rank, off uint64) GlobalPtr[T] {
	return gptrAt[T](me.id, off)
}

// PtrAt reconstructs a global pointer from its (rank, offset) pair —
// the deserialization half of passing global pointers through
// registered-task arguments, which travel as POD bytes: encode with
// Where() and Offset(), rebuild with PtrAt. The pointer must have been
// produced by an allocation on the named rank.
func PtrAt[T any](rank int, off uint64) GlobalPtr[T] {
	return gptrAt[T](rank, off)
}

// Read performs a blocking one-sided read of the element referenced by p
// (the rvalue use of a shared object). The cost model charges software
// overhead plus a round trip; in Direct mode the data moves via a peer
// segment access (RDMA analog), in AMMediated mode via an active message.
func Read[T any](me *Rank, p GlobalPtr[T]) T {
	me.enter()
	defer me.exit()
	n := int(sizeOf[T]())
	me.ep.Stats.Gets.Add(1)
	me.ep.Stats.GetBytes.Add(int64(n))
	me.ep.Clock.Advance(me.job.model.GetCost(me.id, int(p.rank), n))
	if int(p.rank) == me.id {
		// The segment lock also serializes against remote writers.
		me.seg.Lock()
		v := *segment.At[T](me.seg, p.Offset())
		me.seg.Unlock()
		return v
	}
	if me.job.cfg.Access == AMMediated && !me.onWire() {
		var v T
		var done bool
		me.ep.Send(int(p.rank), 16, func(tep *gasnet.Endpoint) {
			tgt := me.job.ranks[tep.Rank]
			val := *segment.At[T](tgt.seg, p.Offset())
			tep.Send(me.id, n, func(*gasnet.Endpoint) { v = val; done = true })
		})
		me.ep.WaitFor(func() bool { return done })
		return v
	}
	var v T
	me.aggPreBlock()
	me.mustCd(me.cd.Get(int(p.rank), p.Offset(), valueBytes(&v)))
	return v
}

// valueBytes views a POD value's storage as bytes, the form the conduit
// data plane moves. Safe for exactly the types the segment accepts
// (pointer-free), which checkPOD enforces at allocation time.
func valueBytes[T any](v *T) []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(v)), sizeOf[T]())
}

// sliceBytes views a POD slice's backing storage as bytes.
func sliceBytes[T any](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), uint64(len(s))*sizeOf[T]())
}

// Write performs a blocking one-sided write of the element referenced by
// p (the lvalue use of a shared object).
func Write[T any](me *Rank, p GlobalPtr[T], v T) {
	me.enter()
	defer me.exit()
	n := int(sizeOf[T]())
	me.ep.Stats.Puts.Add(1)
	me.ep.Stats.PutBytes.Add(int64(n))
	me.ep.Clock.Advance(me.job.model.PutCost(me.id, int(p.rank), n))
	if int(p.rank) == me.id {
		me.seg.Lock()
		*segment.At[T](me.seg, p.Offset()) = v
		me.seg.Unlock()
		return
	}
	if me.job.cfg.Access == AMMediated && !me.onWire() {
		var done bool
		me.ep.Send(int(p.rank), 16+n, func(tep *gasnet.Endpoint) {
			tgt := me.job.ranks[tep.Rank]
			*segment.At[T](tgt.seg, p.Offset()) = v
			tep.Send(me.id, 0, func(*gasnet.Endpoint) { done = true })
		})
		me.ep.WaitFor(func() bool { return done })
		return
	}
	me.aggPreBlock()
	me.mustCd(me.cd.Put(int(p.rank), p.Offset(), valueBytes(&v)))
}

// RMW atomically applies f to the referenced element under the owner's
// segment lock and returns the new value — the network-atomic analog used
// by verification paths (e.g. conflict-free GUPS checking). It is charged
// as one round trip.
//
// RMW carries a Go closure, so on a wire-backed job it works only on
// elements local to the calling rank; remote wire RMW panics with
// gasnet.ErrNotWireCapable. The wire-capable fixed-function atomic is
// AtomicXor.
func RMW[T any](me *Rank, p GlobalPtr[T], f func(T) T) T {
	me.enter()
	defer me.exit()
	me.noWire("RMW", int(p.rank))
	n := int(sizeOf[T]())
	me.ep.Stats.Puts.Add(1)
	me.ep.Stats.PutBytes.Add(int64(n))
	me.ep.Clock.Advance(me.job.model.PutCost(me.id, int(p.rank), n))
	tseg := me.job.segs[p.rank]
	tseg.Lock()
	ptr := segment.At[T](tseg, p.Offset())
	*ptr = f(*ptr)
	v := *ptr
	tseg.Unlock()
	return v
}

// AtomicXor atomically xors val into the referenced word and returns
// the new value — the HPCC Random Access update as a fixed-function
// network atomic. Unlike RMW it ships no closure, so it is wire-capable
// and runs identically on both conduit backends. Charged as one round
// trip, like RMW.
func AtomicXor(me *Rank, p GlobalPtr[uint64], val uint64) uint64 {
	me.enter()
	defer me.exit()
	me.ep.Stats.Puts.Add(1)
	me.ep.Stats.PutBytes.Add(8)
	me.ep.Clock.Advance(me.job.model.PutCost(me.id, int(p.rank), 8))
	me.aggPreBlock()
	v, err := me.cd.Xor64(int(p.rank), p.Offset(), val)
	me.mustCd(err)
	return v
}
