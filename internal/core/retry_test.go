package core

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestRetryPolicyDefaults(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	if p.MaxAttempts != 3 {
		t.Errorf("default MaxAttempts = %d, want 3", p.MaxAttempts)
	}
	if p.Backoff != time.Millisecond {
		t.Errorf("default Backoff = %v, want 1ms", p.Backoff)
	}
	if p.AttemptTimeout != 0 {
		t.Errorf("default AttemptTimeout = %v, want 0 (death-only)", p.AttemptTimeout)
	}
	// Explicit settings survive.
	q := RetryPolicy{MaxAttempts: 7, Backoff: 5 * time.Millisecond}.withDefaults()
	if q.MaxAttempts != 7 || q.Backoff != 5*time.Millisecond {
		t.Errorf("withDefaults clobbered explicit settings: %+v", q)
	}
}

func TestRetryPolicyRetryablePredicate(t *testing.T) {
	p := RetryPolicy{}
	if !p.retryable(ErrTimeout) {
		t.Error("default predicate refuses to retry a timeout")
	}
	if !p.retryable(fmt.Errorf("wrapped: %w", ErrTimeout)) {
		t.Error("default predicate must unwrap")
	}
	if p.retryable(ErrRankDead) {
		t.Error("default predicate retries against a dead rank")
	}
	custom := RetryPolicy{Retryable: func(error) bool { return false }}
	if custom.retryable(ErrTimeout) {
		t.Error("custom predicate ignored")
	}
}

// TestFutureFailureObservers pins the failure half of the future
// contract: Err blocks and returns the cause without panicking, Get
// panics with a wrapping error, and a late success is silently dropped
// (first settle wins) while the failure sticks.
func TestFutureFailureObservers(t *testing.T) {
	boom := errors.New("boom")
	Run(testCfg(1), func(me *Rank) {
		f := newFuture[int](me)
		f.fail(boom, me.Clock(), me)
		if err := f.Err(); !errors.Is(err, boom) {
			t.Errorf("Err() = %v, want boom", err)
		}
		func() {
			defer func() {
				r := recover()
				err, ok := r.(error)
				if !ok || !errors.Is(err, boom) {
					t.Errorf("Get panicked with %v, want wrapped boom", r)
				}
			}()
			f.Get()
		}()
		// Success after failure: dropped, not a panic — the race is real
		// on resilient jobs (a reply landing after the death sweep).
		f.resolve(42, me.Clock(), me)
		if err := f.Err(); !errors.Is(err, boom) {
			t.Errorf("failure did not stick after late success: %v", err)
		}
	})
}

// TestFutureFailurePropagation: Then-chains forward failure without
// running their functions; WhenAll fails on the first failed input;
// WhenAny settles with a failure if it arrives first.
func TestFutureFailurePropagation(t *testing.T) {
	boom := errors.New("boom")
	Run(testCfg(1), func(me *Rank) {
		f := newFuture[int](me)
		ran := false
		g := Then(f, func(v int) int { ran = true; return v + 1 })
		h := Then(g, func(v int) int { ran = true; return v * 2 })
		f.fail(boom, me.Clock(), me)
		if err := h.Err(); !errors.Is(err, boom) {
			t.Errorf("chain tail Err() = %v, want boom", err)
		}
		if ran {
			t.Error("continuation body ran on a failed chain")
		}

		a, b := newFuture[int](me), newFuture[int](me)
		all := WhenAll(a, b)
		a.resolve(1, me.Clock(), me)
		b.fail(boom, me.Clock(), me)
		if err := all.Err(); !errors.Is(err, boom) {
			t.Errorf("WhenAll Err() = %v, want boom", err)
		}

		c, d := newFuture[int](me), newFuture[int](me)
		any := WhenAny(c, d)
		c.fail(boom, me.Clock(), me)
		d.resolve(9, me.Clock(), me)
		if err := any.Err(); !errors.Is(err, boom) {
			t.Errorf("WhenAny Err() = %v, want boom (first settle)", err)
		}
	})
}

// TestRankAliveDefaults: on a plain job every rank is alive and no
// typed death error exists to observe.
func TestRankAliveDefaults(t *testing.T) {
	Run(testCfg(2), func(me *Rank) {
		for r := 0; r < me.Ranks(); r++ {
			if !me.RankAlive(r) {
				t.Errorf("rank %d reported dead on a fault-free job", r)
			}
		}
		me.Barrier()
	})
}
