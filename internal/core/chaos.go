package core

import (
	"os"
	"sync"
	"time"

	"upcxx/internal/fault"
)

// Chaos mode: driving a job against an injected fault plan
// (internal/fault, upcxx-run's -chaos flag). The plan's drop / delay /
// sever rules act inside the transport seam and need no help from this
// layer; kill rules need a backend-specific simulation of "the process
// died at t", which is what lives here.
//
//   - Wire backend, launched processes (upcxx-run sets
//     Config.ChaosProcessExit): a doomed rank arms a wall-clock timer
//     at ChaosArm and exits with ChaosExitCode when it fires. Peers
//     notice through the heartbeat plane like any real crash, and the
//     launcher treats the exit code as planned.
//   - In-process backend: ranks are goroutines of one test process, so
//     nobody actually dies. ChaosArm starts a shared wall clock; each
//     rank's failure-detector view (chaosSync, consulted by RankAlive
//     and Advance) marks the doomed ranks dead once their time comes,
//     and the doomed rank itself learns its fate from ChaosKilled and
//     takes the program's ghost path. The surviving ranks' observable
//     behavior — typed failures, re-routing, checksums — matches the
//     wire backend's, which is what the chaos CI asserts.
//
// ChaosArm is collective in spirit: call it on every rank at the same
// program point (right after a barrier) so the plan's clocks align.

// ChaosExitCode is the exit status of a wire rank killed by plan — the
// launcher's signal that the death was scripted, not a crash.
const ChaosExitCode = 3

// procChaos is the in-process backend's shared chaos clock.
type procChaos struct {
	plan  *fault.Plan
	mu    sync.Mutex
	armed time.Time
}

func (c *procChaos) arm() {
	c.mu.Lock()
	if c.armed.IsZero() {
		c.armed = time.Now()
	}
	c.mu.Unlock()
}

func (c *procChaos) armedAt() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.armed
}

// chaosSync folds the shared chaos clock into this rank's failure-
// detector view: kill rules whose time has come mark their ranks dead
// locally (exactly once; markRankDead guards repeats and self).
// In-process backend only; a no-op everywhere else.
func (r *Rank) chaosSync() {
	c := r.job.chaos
	if c == nil {
		return
	}
	at := c.armedAt()
	if at.IsZero() {
		return
	}
	elapsed := time.Since(at)
	for _, rule := range c.plan.Rules {
		if rule.Kind == fault.Kill && elapsed >= rule.At {
			r.markRankDead(rule.Rank)
		}
	}
}

// ChaosArm starts the job's fault plan clock on this rank: time-
// triggered rules (at=) begin counting now, and kill rules arm their
// timers. Without a plan it is a no-op. Call on every rank at the same
// program point, after a barrier.
func ChaosArm(me *Rank) {
	plan := me.job.cfg.Fault
	if plan == nil {
		return
	}
	if c := me.job.chaos; c != nil {
		c.arm()
		return
	}
	inj := plan.ForRank(me.id)
	inj.Arm()
	if d, ok := inj.KillAfter(); ok && me.job.cfg.ChaosProcessExit {
		// The scripted death of a launched wire rank: hard exit, no
		// goodbye — peers must detect it, not be told.
		go func() {
			time.Sleep(d)
			os.Exit(ChaosExitCode)
		}()
	}
}

// ChaosKilled reports whether this rank's scripted death time has
// passed — the in-process backend's substitute for actually dying. A
// doomed rank polls it and, once true, stops doing useful work and
// skips to the program's final barrier (the "ghost path"); its peers
// are simultaneously marking it dead via chaosSync. Always false on
// the wire backend, where a killed process really exits.
func ChaosKilled(me *Rank) bool {
	c := me.job.chaos
	if c == nil {
		return false
	}
	at := c.armedAt()
	if at.IsZero() {
		return false
	}
	d, ok := c.plan.ForRank(me.id).KillAfter()
	return ok && time.Since(at) >= d
}

// ChaosHorizon returns the latest time trigger in the job's fault plan
// (zero without one): after ChaosArm + ChaosHorizon + detection slack,
// every scripted fault has fired.
func ChaosHorizon(me *Rank) time.Duration {
	return me.job.cfg.Fault.Horizon()
}
