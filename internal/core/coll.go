package core

// Typed collectives built on the gasnet rendezvous. UPC++ inherits its
// collectives from GASNet (the paper's benchmarks use barrier, broadcast,
// reductions and gathers); these are the Go equivalents. All are
// collective: every rank must call them in the same order. Costs are
// charged per binomial-tree stage plus wire time for the payload;
// large-payload reductions charge the pipelined (bandwidth-bound) form.
//
// The flat free functions here are the world-team specializations; the
// team-scoped API in team.go is the primary surface (these remain as
// thin wrappers so old call sites keep compiling).

// Broadcast distributes root's value to every rank and returns it.
//
// Deprecated: use TeamBroadcast(me.World(), v, root); this wrapper
// delegates to it.
func Broadcast[T any](me *Rank, v T, root int) T {
	return TeamBroadcast(me.World(), v, root)
}

// AllGather collects one value per rank; the returned slice is indexed by
// rank and shared read-only by all ranks (do not mutate it).
//
// Deprecated: use TeamAllGather(me.World(), v); this wrapper delegates
// to it.
func AllGather[T any](me *Rank, v T) []T {
	return TeamAllGather(me.World(), v)
}

// Reduce combines one value per rank with op (which must be associative)
// and returns the result on every rank (an allreduce).
//
// Deprecated: use TeamReduce(me.World(), v, op); this wrapper delegates
// to it.
func Reduce[T any](me *Rank, v T, op func(a, b T) T) T {
	return TeamReduce(me.World(), v, op)
}

// ReduceSlices element-wise combines equal-length slices from every rank
// into root's dst; non-root ranks receive nil.
//
// Deprecated: use TeamReduceSlices(me.World(), contrib, op, root); this
// wrapper delegates to it.
func ReduceSlices[T any](me *Rank, contrib []T, op func(a, b T) T, root int) []T {
	return TeamReduceSlices(me.World(), contrib, op, root)
}

// ExclusiveScan returns the exclusive prefix "sum" of v across ranks under
// op with the given identity (rank 0 receives identity).
//
// Deprecated: use TeamExclusiveScan(me.World(), v, op, identity); this
// wrapper delegates to it.
func ExclusiveScan[T any](me *Rank, v T, op func(a, b T) T, identity T) T {
	return TeamExclusiveScan(me.World(), v, op, identity)
}

// Gather collects one value per rank on root (indexed by rank); other
// ranks receive nil. The returned slice is root-private.
//
// Deprecated: use TeamGatherAll(me.World(), v, root); this wrapper
// delegates to it.
func Gather[T any](me *Rank, v T, root int) []T {
	return TeamGatherAll(me.World(), v, root)
}

// ---- World-team specializations ----
//
// The world team keeps its pre-team fast paths: in-process it
// rendezvouses through one shared slot (one allocation per collective,
// shared read-only — what keeps 32K-rank metadata exchanges linear in
// memory), and on the wire it rides the conduit's world allgather with
// its resilience semantics (dead ranks' slots come back empty).

func worldBroadcast[T any](me *Rank, v T, root int) T {
	bytes := int(sizeOf[T]())
	if me.onWire() {
		out := wireBroadcast(me, v, root)
		me.ep.Clock.Advance(float64(me.job.model.CollStages()) * me.job.model.CollStageCost(bytes))
		return out
	}
	slot := me.ep.Collective(
		func(int) any { return new(T) },
		func(s any) {
			if me.id == root {
				*(s.(*T)) = v
			}
		},
		nil,
		0,
	)
	mo := me.job.model
	me.ep.Clock.Advance(float64(mo.CollStages()) * mo.CollStageCost(bytes))
	return *(slot.(*T))
}

func worldAllGather[T any](me *Rank, v T) []T {
	bytes := int(sizeOf[T]())
	if me.onWire() {
		out := wireExchange(me, v)
		mo := me.job.model
		me.ep.Clock.Advance(float64(mo.CollStages())*mo.CollStageCost(bytes) +
			float64(me.Ranks()-1)*mo.WireNs(bytes))
		return out
	}
	slot := me.ep.Collective(
		func(n int) any { return make([]T, n) },
		func(s any) { s.([]T)[me.id] = v },
		nil,
		0,
	)
	mo := me.job.model
	cost := float64(mo.CollStages())*mo.CollStageCost(bytes) +
		float64(me.Ranks()-1)*mo.WireNs(bytes)
	me.ep.Clock.Advance(cost)
	return slot.([]T)
}

// worldReduce folds exactly once, in rank order — so non-commutative-
// but-associative folds and floating-point sums are deterministic
// across runs and rank counts.
func worldReduce[T any](me *Rank, v T, op func(a, b T) T) T {
	bytes := int(sizeOf[T]())
	if me.onWire() {
		out := wireReduce(me, v, op)
		me.ep.Clock.Advance(2 * float64(me.job.model.CollStages()) * me.job.model.CollStageCost(bytes))
		return out
	}
	type box struct {
		vals   []T
		result T
	}
	slot := me.ep.Collective(
		func(n int) any { return &box{vals: make([]T, n)} },
		func(s any) { s.(*box).vals[me.id] = v },
		func(s any) {
			b := s.(*box)
			acc := b.vals[0]
			for _, x := range b.vals[1:] {
				acc = op(acc, x)
			}
			b.result = acc
		},
		0,
	).(*box)
	mo := me.job.model
	// Allreduce tree: up and down, one element per stage.
	me.ep.Clock.Advance(2 * float64(mo.CollStages()) * mo.CollStageCost(bytes))
	return slot.result
}

// worldReduceSlices is the sum-of-partial-images idiom of the paper's
// Embree port: the fold runs once in rank order (deterministic); the
// cost model charges the pipelined large-payload reduction — log(P)
// latency stages plus twice the payload's wire time.
func worldReduceSlices[T any](me *Rank, contrib []T, op func(a, b T) T, root int) []T {
	if me.onWire() {
		out := wireReduceSlices(me, contrib, op, root)
		bytes := len(contrib) * int(sizeOf[T]())
		mo := me.job.model
		me.ep.Clock.Advance(float64(mo.CollStages())*mo.CollStageCost(0) + 2*mo.WireNs(bytes))
		me.Work(float64(len(contrib)))
		return out
	}
	type box struct {
		parts [][]T
		out   []T
	}
	slot := me.ep.Collective(
		func(n int) any { return &box{parts: make([][]T, n)} },
		func(s any) { s.(*box).parts[me.id] = contrib },
		func(s any) {
			b := s.(*box)
			b.out = make([]T, len(b.parts[0]))
			copy(b.out, b.parts[0])
			for _, part := range b.parts[1:] {
				for i, x := range part {
					b.out[i] = op(b.out[i], x)
				}
			}
		},
		0,
	).(*box)

	bytes := len(contrib) * int(sizeOf[T]())
	mo := me.job.model
	me.ep.Clock.Advance(float64(mo.CollStages())*mo.CollStageCost(0) + 2*mo.WireNs(bytes))
	me.Work(float64(len(contrib))) // local combine share
	if me.id == root {
		return slot.out
	}
	return nil
}
