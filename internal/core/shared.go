package core

// SharedVar is the paper's shared_var<T>: a single shared scalar, stored
// on rank 0 (as in UPC) and readable/writable by every rank. Construction
// is collective.
type SharedVar[T any] struct {
	ptr GlobalPtr[T]
}

// NewSharedVar collectively creates a shared scalar with affinity to rank
// 0. All ranks must call it, in the same order relative to other
// collectives.
func NewSharedVar[T any](me *Rank) SharedVar[T] {
	checkPOD[T]()
	if me.onWire() {
		var p GlobalPtr[T]
		if me.id == 0 {
			p = Allocate[T](me, 0, 1)
		}
		return SharedVar[T]{ptr: wireExchange(me, p)[0]}
	}
	slot := me.ep.Collective(
		func(int) any { return new(GlobalPtr[T]) },
		func(s any) {
			if me.id == 0 {
				*(s.(*GlobalPtr[T])) = Allocate[T](me, 0, 1)
			}
		},
		nil,
		int(sizeOf[T]()),
	)
	return SharedVar[T]{ptr: *(slot.(*GlobalPtr[T]))}
}

// Get reads the shared scalar (rvalue use: int a = s).
func (v SharedVar[T]) Get(me *Rank) T {
	me.ep.Clock.Advance(me.job.model.SharedAccessCost())
	return Read(me, v.ptr)
}

// Set writes the shared scalar (lvalue use: s = 1).
func (v SharedVar[T]) Set(me *Rank, val T) {
	me.ep.Clock.Advance(me.job.model.SharedAccessCost())
	Write(me, v.ptr, val)
}

// Ptr returns the scalar's global pointer.
func (v SharedVar[T]) Ptr() GlobalPtr[T] { return v.ptr }

// SharedArray is the paper's shared_array<T, BS>: a one-dimensional array
// distributed block-cyclically over all ranks with block size BS (default
// 1, i.e. cyclic, as in UPC). Construction is collective, mirroring
// sa.init(THREADS) dynamic initialization.
//
// Index arithmetic reproduces UPC layout: element i lives in block i/BS;
// blocks are dealt round-robin to ranks; within its rank a block occupies
// the (i/BS/THREADS)-th local block slot.
type SharedArray[T any] struct {
	n     int64
	bs    int64
	ranks int64
	elem  uint64
	// bases[r] is the segment offset of rank r's local portion; the slice
	// is shared read-only across all ranks (one copy per job, so that
	// 32K-rank directories stay linear in memory).
	bases []uint64
}

// NewSharedArray collectively creates a shared array of size elements
// with the given block size (use 1 for UPC's default cyclic layout).
// Every rank allocates its local portion in its own segment; the base
// directory is allgathered.
func NewSharedArray[T any](me *Rank, size, blockSize int) *SharedArray[T] {
	checkPOD[T]()
	if size < 0 || blockSize < 1 {
		panic("upcxx: NewSharedArray requires size >= 0 and blockSize >= 1")
	}
	p := int64(me.Ranks())
	sa := &SharedArray[T]{
		n:     int64(size),
		bs:    int64(blockSize),
		ranks: p,
		elem:  sizeOf[T](),
	}
	local := sa.localElems(int64(me.id))
	var base uint64
	if local > 0 {
		base = Allocate[T](me, me.id, int(local)).Offset()
	}
	if me.onWire() {
		// No shared slot across address spaces: allgather the base
		// directory over the conduit (each process keeps its own copy).
		sa.bases = wireExchange(me, base)
		return sa
	}
	slot := me.ep.Collective(
		func(n int) any { return make([]uint64, n) },
		func(s any) { s.([]uint64)[me.id] = base },
		nil,
		8,
	)
	sa.bases = slot.([]uint64)
	return sa
}

// Len returns the number of elements.
func (a *SharedArray[T]) Len() int { return int(a.n) }

// BlockSize returns the distribution block size.
func (a *SharedArray[T]) BlockSize() int { return int(a.bs) }

// localElems returns how many elements rank r stores: full blocks dealt
// round-robin, allocated in whole blocks.
func (a *SharedArray[T]) localElems(r int64) int64 {
	if a.n == 0 {
		return 0
	}
	blocks := (a.n + a.bs - 1) / a.bs
	mine := blocks / a.ranks
	if blocks%a.ranks > r {
		mine++
	}
	return mine * a.bs
}

// owner returns the rank and local element index of global element i.
func (a *SharedArray[T]) owner(i int64) (rank int64, local int64) {
	blk := i / a.bs
	rank = blk % a.ranks
	local = (blk/a.ranks)*a.bs + i%a.bs
	return
}

// Ptr returns the global pointer to element i; the pointer is phase-free
// (paper §III-B), so Ptr(i).Add(k) walks the owner's local memory, while
// index arithmetic a.Get(i+k) walks the distributed layout.
func (a *SharedArray[T]) Ptr(i int) GlobalPtr[T] {
	if i < 0 || int64(i) >= a.n {
		panic("upcxx: shared array index out of range")
	}
	rank, local := a.owner(int64(i))
	return gptrAt[T](int(rank), a.bases[rank]+uint64(local)*a.elem)
}

// Get reads element i from wherever it lives (sa[i] as rvalue). The
// shared-access translation cost models the proxy-object indirection that
// distinguishes UPC++ from compiled UPC (paper §V-A).
func (a *SharedArray[T]) Get(me *Rank, i int) T {
	me.ep.Clock.Advance(me.job.model.SharedAccessCost())
	return Read(me, a.Ptr(i))
}

// Set writes element i (sa[i] as lvalue).
func (a *SharedArray[T]) Set(me *Rank, i int, v T) {
	me.ep.Clock.Advance(me.job.model.SharedAccessCost())
	Write(me, a.Ptr(i), v)
}

// LocalSlice returns this rank's local portion as a directly addressable
// slice (the affinity-local compute path of upc_forall-style loops).
// Elements appear in local block order.
func (a *SharedArray[T]) LocalSlice(me *Rank) []T {
	n := a.localElems(int64(me.id))
	if n == 0 {
		return nil
	}
	return LocalSlice(me, gptrAt[T](me.id, a.bases[me.id]), int(n))
}

// OwnerOf returns the rank with affinity to element i (upc_threadof).
func (a *SharedArray[T]) OwnerOf(i int) int {
	rank, _ := a.owner(int64(i))
	return int(rank)
}
