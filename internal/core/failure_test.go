package core

import (
	"errors"
	"testing"
	"testing/quick"

	"upcxx/internal/segment"
	"upcxx/internal/sim"
)

// Failure injection: exhaustion, invalid arguments and misuse must fail
// loudly and precisely, not corrupt state.

func TestTryAllocateLocalExhaustion(t *testing.T) {
	Run(Config{Ranks: 1, SegmentBytes: 1 << 12, Virtual: true}, func(me *Rank) {
		_, err := TryAllocate[byte](me, 0, 1<<13)
		if !errors.Is(err, segment.ErrOutOfMemory) {
			t.Errorf("want ErrOutOfMemory, got %v", err)
		}
		// The failure must not have leaked reservation: a fitting
		// allocation still succeeds.
		if _, err := TryAllocate[byte](me, 0, 1<<10); err != nil {
			t.Errorf("small allocation after failed big one: %v", err)
		}
	})
}

func TestTryAllocateRemoteExhaustion(t *testing.T) {
	Run(Config{Ranks: 2, SegmentBytes: 1 << 12, Virtual: true}, func(me *Rank) {
		if me.ID() == 0 {
			if _, err := TryAllocate[byte](me, 1, 1<<13); !errors.Is(err, segment.ErrOutOfMemory) {
				t.Errorf("remote exhaustion: want ErrOutOfMemory, got %v", err)
			}
			// Rank 1's segment remains usable.
			if _, err := TryAllocate[byte](me, 1, 64); err != nil {
				t.Errorf("remote allocation after failure: %v", err)
			}
		}
		me.Barrier()
	})
}

func TestTryAllocateInvalidRank(t *testing.T) {
	Run(testCfg(2), func(me *Rank) {
		if _, err := TryAllocate[int](me, 7, 1); err == nil {
			t.Error("allocate on rank 7 of 2 should error")
		}
		if _, err := TryAllocate[int](me, -1, 1); err == nil {
			t.Error("allocate on rank -1 should error")
		}
		if _, err := TryAllocate[int](me, 0, -3); err == nil {
			t.Error("negative count should error")
		}
	})
}

func TestDeallocateForeignOffsetFails(t *testing.T) {
	Run(testCfg(2), func(me *Rank) {
		if me.ID() == 0 {
			p := Allocate[int64](me, 1, 4)
			if err := Deallocate(me, p); err != nil {
				t.Errorf("first remote free: %v", err)
			}
			if err := Deallocate(me, p); err == nil {
				t.Error("double remote free should error")
			}
			if err := Deallocate(me, Null[int64]()); err != nil {
				t.Error("freeing null should be a no-op")
			}
		}
		me.Barrier()
	})
}

func TestAllocateFreeStress(t *testing.T) {
	// Interleaved cross-rank allocate/free churn must leave every
	// segment empty-equivalent (peak recorded, nothing leaked).
	st := Run(Config{Ranks: 4, SegmentBytes: 1 << 16, Virtual: true}, func(me *Rank) {
		var live []GlobalPtr[int64]
		for round := 0; round < 30; round++ {
			target := (me.ID() + round) % me.Ranks()
			p, err := TryAllocate[int64](me, target, 16)
			if err == nil {
				live = append(live, p)
			}
			if round%3 == 2 && len(live) > 0 {
				if err := Deallocate(me, live[0]); err != nil {
					t.Errorf("free: %v", err)
				}
				live = live[1:]
			}
		}
		for _, p := range live {
			if err := Deallocate(me, p); err != nil {
				t.Errorf("final free: %v", err)
			}
		}
		me.Barrier()
	})
	if st.SegPeak == 0 {
		t.Error("stress should have recorded a nonzero peak")
	}
}

// TestGlobalPtrPropertyArithmetic: Add/Diff form a torsor (Add(n).Diff(p)
// == n, Add is associative in offsets) and never change affinity.
func TestGlobalPtrPropertyArithmetic(t *testing.T) {
	Run(testCfg(2), func(me *Rank) {
		if me.ID() != 0 {
			return
		}
		base := Allocate[int32](me, 1, 1024)
		f := func(a, b int16) bool {
			n, m := int(a%512), int(b%512)
			if n < 0 {
				n = -n
			}
			if m < 0 {
				m = -m
			}
			p := base.Add(n)
			q := p.Add(m)
			return q.Diff(base) == n+m &&
				q.Diff(p) == m &&
				q.Where() == base.Where() &&
				q.Add(-(n+m)) == base
		}
		if err := quick.Check(f, nil); err != nil {
			t.Error(err)
		}
	})
}

// TestSharedArrayPropertyLayout: for random sizes and block sizes, every
// element has exactly one owner, owners match OwnerOf, and local slices
// tile the array.
func TestSharedArrayPropertyLayout(t *testing.T) {
	f := func(sizeRaw, bsRaw uint8) bool {
		size := int(sizeRaw%200) + 1
		bs := int(bsRaw%9) + 1
		ok := true
		Run(Config{Ranks: 3, Machine: sim.Local, Virtual: true}, func(me *Rank) {
			sa := NewSharedArray[int32](me, size, bs)
			if me.ID() == 0 {
				for i := 0; i < size; i++ {
					o := sa.OwnerOf(i)
					if o != (i/bs)%3 {
						ok = false
					}
					if sa.Ptr(i).Where() != o {
						ok = false
					}
				}
			}
			// Mark every element through its owner.
			for i := 0; i < size; i++ {
				if sa.OwnerOf(i) == me.ID() {
					sa.Set(me, i, int32(i)+1)
				}
			}
			me.Barrier()
			if me.ID() == 0 {
				for i := 0; i < size; i++ {
					if sa.Get(me, i) != int32(i)+1 {
						ok = false
					}
				}
			}
			me.Barrier()
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSharedArrayIndexOutOfRange(t *testing.T) {
	Run(testCfg(2), func(me *Rank) {
		sa := NewSharedArray[int64](me, 10, 1)
		defer func() {
			if recover() == nil {
				t.Error("out-of-range index should panic")
			}
		}()
		sa.Get(me, 10)
	})
}

func TestZeroSizedSharedArray(t *testing.T) {
	Run(testCfg(2), func(me *Rank) {
		sa := NewSharedArray[int64](me, 0, 1)
		if sa.Len() != 0 {
			t.Error("len")
		}
		if sa.LocalSlice(me) != nil {
			t.Error("zero-size array should have nil local slices")
		}
		me.Barrier()
	})
}

func TestEmptyCopyAndWait(t *testing.T) {
	Run(testCfg(2), func(me *Rank) {
		p := Allocate[int64](me, me.ID(), 4)
		all := AllGather(me, p)
		Copy(me, p, all[1-me.ID()], 0) // zero-length: no-op
		ev := NewEvent()
		AsyncCopy(me, p, all[1-me.ID()], 0, ev) // still signals
		ev.Wait(me)
		me.Barrier()
	})
}
