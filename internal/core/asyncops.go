package core

import (
	"time"

	"upcxx/internal/gasnet"
)

// Futures-first one-sided operations: the non-blocking counterparts of
// Read/Write/Copy/ReadSlice returning a chainable *Future instead of
// taking an *Event. They charge the same model costs as the Event
// paths (NB initiation now, transfer completion at the modeled finish
// time) and register with the enclosing Finish, so a Finish over a
// chain of ReadAsync→Then links waits for all of it.
//
// Backend behavior:
//
//   - On the wire conduit the request frames leave immediately and the
//     future resolves from progress dispatch when the last reply
//     lands (gasnet.AsyncConduit) — genuine communication/computation
//     overlap in wall-clock time; the futbench experiment measures it.
//   - In-process a remote access is a direct segment move, so the data
//     is staged eagerly and the future resolves immediately carrying
//     the modeled completion time; Get/continuation timestamps keep
//     the virtual-time overlap accounting exact, mirroring AsyncCopy.
//
// Failure behavior (resilient wire jobs, Config.Resilient): an
// operation whose target dies fails its future with a typed
// ErrRankDead instead of hanging — Get panics with the cause, Err
// returns it, Then-chains propagate it. Attach a RetryPolicy
// (WithRetry) to also bound each attempt with a reply deadline and
// re-issue lost transfers; reads and writes are idempotent, so
// retrying them is always safe.

// nbFuture builds the future of one non-blocking op, registered with
// the enclosing Finish; settle resolves it and fail fails it, either
// way crediting the scope exactly once.
func nbFuture[T any](me *Rank) (f *Future[T], settle func(v T, t float64), fail func(err error, t float64)) {
	f = newFuture[T](me)
	fs := f.fs
	if fs != nil {
		fs.add(1)
	}
	settle = func(v T, t float64) {
		// Resolve before crediting the scope: continuations run first
		// and may register follow-up work, so the Finish count cannot
		// transiently drain mid-chain.
		f.resolve(v, t, me)
		if fs != nil {
			fs.childDone(t, me)
		}
	}
	fail = func(err error, t float64) {
		f.fail(err, t, me)
		if fs != nil {
			fs.childDone(t, me)
		}
	}
	return
}

// asyncCd returns the conduit's non-blocking extension when the target
// is remote on a wire job, nil otherwise.
func (r *Rank) asyncCd(target int) gasnet.AsyncConduit {
	if target == r.id {
		return nil
	}
	return r.caps.Async
}

// ReadAsync starts a non-blocking one-sided read of the element at p
// and returns its future — the rvalue use of a shared object without
// the round-trip stall. Chain with Then to consume the value when it
// arrives. Accepts WithRetry.
func ReadAsync[T any](me *Rank, p GlobalPtr[T], opts ...AsyncOpt) *Future[T] {
	var cfg asyncCfg
	for _, o := range opts {
		o.applyAsync(&cfg)
	}
	me.enter()
	defer me.exit()
	n := int(sizeOf[T]())
	me.ep.Stats.Gets.Add(1)
	me.ep.Stats.GetBytes.Add(int64(n))
	mo := me.job.model
	me.ep.Clock.Advance(mo.NBInitCost())
	completion := me.Clock() + mo.NBCompleteCost(me.id, int(p.rank), n)

	f, settle, fail := nbFuture[T](me)
	me.aggPreBlock()
	if ac := me.asyncCd(int(p.rank)); ac != nil {
		buf := make([]byte, n)
		me.startAsync(cfg.retry,
			func(timeout time.Duration, done func(error)) error {
				return ac.GetAsync(int(p.rank), p.Offset(), buf, timeout, done)
			},
			func() {
				var v T
				copy(valueBytes(&v), buf)
				settle(v, maxTime(completion, me.Clock()))
				// Cut-through: continuations the resolution just ran may
				// have buffered aggregated ops; ship them before the wait
				// loop blocks again (see initAgg's ack cut-through).
				me.aggPreBlock()
			},
			func(err error) {
				fail(err, maxTime(completion, me.Clock()))
				me.aggPreBlock() // cut-through for failure continuations too
			})
		return f
	}
	var v T
	me.mustCd(me.cd.Get(int(p.rank), p.Offset(), valueBytes(&v)))
	settle(v, completion)
	return f
}

// WriteAsync starts a non-blocking one-sided write of v to p and
// returns its completion future. Accepts WithRetry.
func WriteAsync[T any](me *Rank, p GlobalPtr[T], v T, opts ...AsyncOpt) *Future[struct{}] {
	var cfg asyncCfg
	for _, o := range opts {
		o.applyAsync(&cfg)
	}
	me.enter()
	defer me.exit()
	n := int(sizeOf[T]())
	me.ep.Stats.Puts.Add(1)
	me.ep.Stats.PutBytes.Add(int64(n))
	mo := me.job.model
	me.ep.Clock.Advance(mo.NBInitCost())
	completion := me.Clock() + mo.NBCompleteCost(me.id, int(p.rank), n)

	f, settle, fail := nbFuture[struct{}](me)
	me.aggPreBlock()
	if ac := me.asyncCd(int(p.rank)); ac != nil {
		buf := append([]byte(nil), valueBytes(&v)...)
		me.startAsync(cfg.retry,
			func(timeout time.Duration, done func(error)) error {
				return ac.PutAsync(int(p.rank), p.Offset(), buf, timeout, done)
			},
			func() {
				settle(struct{}{}, maxTime(completion, me.Clock()))
				me.aggPreBlock() // cut-through, as in ReadAsync
			},
			func(err error) {
				fail(err, maxTime(completion, me.Clock()))
				me.aggPreBlock()
			})
		return f
	}
	me.mustCd(me.cd.Put(int(p.rank), p.Offset(), valueBytes(&v)))
	settle(struct{}{}, completion)
	return f
}

// ReadSliceAsync starts staging len(dst) elements from shared memory
// at src into dst; the future resolves with dst once every element has
// landed. dst must stay untouched until then. Accepts WithRetry.
func ReadSliceAsync[T any](me *Rank, src GlobalPtr[T], dst []T, opts ...AsyncOpt) *Future[[]T] {
	var cfg asyncCfg
	for _, o := range opts {
		o.applyAsync(&cfg)
	}
	me.enter()
	defer me.exit()
	bytes := len(dst) * int(sizeOf[T]())
	f, settle, fail := nbFuture[[]T](me)
	if bytes == 0 {
		settle(dst, me.Clock())
		return f
	}
	me.ep.Stats.Gets.Add(1)
	me.ep.Stats.GetBytes.Add(int64(bytes))
	mo := me.job.model
	me.ep.Clock.Advance(mo.NBInitCost())
	completion := me.Clock() + mo.NBCompleteCost(me.id, int(src.rank), bytes)

	me.aggPreBlock()
	if ac := me.asyncCd(int(src.rank)); ac != nil {
		me.startAsync(cfg.retry,
			func(timeout time.Duration, done func(error)) error {
				return ac.GetAsync(int(src.rank), src.Offset(), sliceBytes(dst), timeout, done)
			},
			func() {
				settle(dst, maxTime(completion, me.Clock()))
				me.aggPreBlock() // cut-through, as in ReadAsync
			},
			func(err error) {
				fail(err, maxTime(completion, me.Clock()))
				me.aggPreBlock()
			})
		return f
	}
	me.mustCd(me.cd.Get(int(src.rank), src.Offset(), sliceBytes(dst)))
	settle(dst, completion)
	return f
}

// WriteSliceFuture starts the non-blocking WriteSlice and returns its
// completion future (the futures-first spelling of WriteSliceAsync).
// Accepts WithRetry.
func WriteSliceFuture[T any](me *Rank, dst GlobalPtr[T], src []T, opts ...AsyncOpt) *Future[struct{}] {
	var cfg asyncCfg
	for _, o := range opts {
		o.applyAsync(&cfg)
	}
	me.enter()
	defer me.exit()
	bytes := len(src) * int(sizeOf[T]())
	f, settle, fail := nbFuture[struct{}](me)
	if bytes == 0 {
		settle(struct{}{}, me.Clock())
		return f
	}
	me.ep.Stats.Puts.Add(1)
	me.ep.Stats.PutBytes.Add(int64(bytes))
	mo := me.job.model
	me.ep.Clock.Advance(mo.NBInitCost())
	completion := me.Clock() + mo.NBCompleteCost(me.id, int(dst.rank), bytes)

	me.aggPreBlock()
	if ac := me.asyncCd(int(dst.rank)); ac != nil {
		me.startAsync(cfg.retry,
			func(timeout time.Duration, done func(error)) error {
				return ac.PutAsync(int(dst.rank), dst.Offset(), sliceBytes(src), timeout, done)
			},
			func() {
				settle(struct{}{}, maxTime(completion, me.Clock()))
				me.aggPreBlock() // cut-through, as in ReadAsync
			},
			func(err error) {
				fail(err, maxTime(completion, me.Clock()))
				me.aggPreBlock()
			})
		return f
	}
	me.mustCd(me.cd.Put(int(dst.rank), dst.Offset(), sliceBytes(src)))
	settle(struct{}{}, completion)
	return f
}

// CopyAsync starts a non-blocking bulk transfer of count elements from
// src to dst and returns its completion future — the future-returning
// async_copy. Fully remote pairs stage through the initiator: on the
// wire the get and the put pipeline through progress dispatch, so the
// initiator never stalls. Accepts WithRetry; the policy applies to
// each leg independently.
func CopyAsync[T any](me *Rank, src, dst GlobalPtr[T], count int, opts ...AsyncOpt) *Future[struct{}] {
	var cfg asyncCfg
	for _, o := range opts {
		o.applyAsync(&cfg)
	}
	me.enter()
	defer me.exit()
	f, settle, fail := nbFuture[struct{}](me)
	if count < 0 {
		panic("upcxx: CopyAsync with negative count")
	}
	if count == 0 {
		settle(struct{}{}, me.Clock())
		return f
	}
	bytes := count * int(sizeOf[T]())
	mo := me.job.model
	peer := int(src.rank)
	if peer == me.id {
		peer = int(dst.rank)
	}
	me.ep.Stats.Puts.Add(1)
	me.ep.Stats.PutBytes.Add(int64(bytes))
	me.ep.Clock.Advance(mo.NBInitCost())
	completion := me.Clock() + mo.NBCompleteCost(me.id, peer, bytes)

	me.aggPreBlock()
	srcAC, dstAC := me.asyncCd(int(src.rank)), me.asyncCd(int(dst.rank))
	if srcAC == nil && dstAC == nil {
		moveBytes(me, src, dst, bytes)
		settle(struct{}{}, completion)
		return f
	}
	// Wire path: stage through a private buffer, chaining the put off
	// the get's completion so neither leg blocks the initiator.
	tmp := make([]byte, bytes)
	onBad := func(err error) {
		fail(err, maxTime(completion, me.Clock()))
		me.aggPreBlock()
	}
	finishPut := func() {
		if dstAC != nil {
			me.startAsync(cfg.retry,
				func(timeout time.Duration, done func(error)) error {
					return dstAC.PutAsync(int(dst.rank), dst.Offset(), tmp, timeout, done)
				},
				func() {
					settle(struct{}{}, maxTime(completion, me.Clock()))
					me.aggPreBlock() // cut-through, as in ReadAsync
				}, onBad)
			return
		}
		me.mustCd(me.cd.Put(int(dst.rank), dst.Offset(), tmp))
		settle(struct{}{}, maxTime(completion, me.Clock()))
	}
	if srcAC != nil {
		me.startAsync(cfg.retry,
			func(timeout time.Duration, done func(error)) error {
				return srcAC.GetAsync(int(src.rank), src.Offset(), tmp, timeout, done)
			},
			finishPut, onBad)
		return f
	}
	me.mustCd(me.cd.Get(int(src.rank), src.Offset(), tmp))
	finishPut()
	return f
}

// maxTime keeps completion timestamps monotone.
func maxTime(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
