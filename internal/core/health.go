package core

import (
	"fmt"

	"upcxx/internal/gasnet"
	"upcxx/internal/obs"
)

// Rank health: the core-level view of the failure detector. On a
// resilient wire job the conduit's heartbeat plane declares peers dead
// (gasnet.ResilientConduit) and the death lands here, on the SPMD
// goroutine, via markRankDead; on the in-process backend a chaos plan
// simulates deaths against the wall clock (chaos.go) and feeds the
// same entry point. Either way the effect is uniform: operations
// addressed to a dead rank fail fast with a typed ErrRankDead instead
// of hanging, pending work the corpse can never acknowledge is
// credited so Finish drains, and registered death callbacks run so
// layers above (the DHT's replica router) can re-route.

// ErrRankDead is the sentinel matched (errors.Is) by every failure an
// operation reports because its target rank was declared dead. It is
// gasnet.ErrRankDead re-exported at the API surface.
var ErrRankDead = gasnet.ErrRankDead

// ErrTimeout is the sentinel matched by per-attempt reply-deadline
// expiries under a RetryPolicy with AttemptTimeout set.
var ErrTimeout = gasnet.ErrTimeout

// RankAlive reports whether rank is still considered alive by this
// rank's failure detector. Always true on a job without resilience or
// a chaos plan. A rank never declares itself dead.
func (r *Rank) RankAlive(rank int) bool {
	r.chaosSync()
	return !r.rankDead(rank)
}

func (r *Rank) rankDead(rank int) bool {
	return r.deadRanks != nil && rank >= 0 && rank < len(r.deadRanks) && r.deadRanks[rank]
}

// deadErrFor builds the typed failure for an operation addressed to a
// dead rank.
func (r *Rank) deadErrFor(rank int) error {
	return &gasnet.RankDeadError{Rank: rank}
}

// OnRankDeath registers fn to run on me's goroutine when a rank is
// declared dead, after the runtime's own sweep (pending calls failed,
// finish credits restored). Registrations are per-rank and fire at
// most once per dead rank.
func OnRankDeath(me *Rank, fn func(rank int)) {
	me.enter()
	defer me.exit()
	me.deathCbs = append(me.deathCbs, fn)
}

// markRankDead is the single entry point a rank death funnels through,
// on this rank's SPMD goroutine: record it, fail every pending RPC
// reply the corpse owed us, restore the finish credits its unsent
// done-acks hold, then run the death callbacks. Exactly once per rank.
func (r *Rank) markRankDead(rank int) {
	if rank == r.id || r.rankDead(rank) {
		return
	}
	if r.deadRanks == nil {
		r.deadRanks = make([]bool, r.Ranks())
	}
	if rank < 0 || rank >= len(r.deadRanks) {
		return
	}
	r.deadRanks[rank] = true
	obs.MarkDead(rank, "declared dead")
	r.ring.Instant(obs.KDeath, int32(rank), 0, 0)
	obs.Logf(1, r.id, "rank %d declared dead", rank)
	t := r.Clock()
	// Pending task replies from the dead rank will never arrive: fail
	// them typed. Collect first — failCall mutates the map.
	var doomed []uint64
	for id, pc := range r.calls {
		if pc.target == rank {
			doomed = append(doomed, id)
		}
	}
	for _, id := range doomed {
		r.failCall(id, r.deadErrFor(rank))
	}
	// Done-acks the dead rank's task subtrees would have sent: credit
	// their scopes so a surrounding Finish drains instead of hanging.
	if m := r.remoteSlots[rank]; m != nil {
		delete(r.remoteSlots, rank)
		for fs, n := range m {
			for i := 0; i < n; i++ {
				fs.childDone(t, r)
			}
		}
	}
	for _, fn := range r.deathCbs {
		fn(rank)
	}
}

// requireAlive panics typed when an operation's target is dead — the
// fail-fast guard for blocking entry points.
func (r *Rank) requireAlive(op string, rank int) {
	if !r.RankAlive(rank) {
		panic(fmt.Errorf("upcxx: %s targeting rank %d from rank %d: %w",
			op, rank, r.id, r.deadErrFor(rank)))
	}
}
