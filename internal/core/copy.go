package core

import (
	"fmt"
	"sync"

	"upcxx/internal/obs"
)

// Event synchronizes individual non-blocking operations and async tasks,
// like the paper's event type (§III-D, §III-G): async_copy and async
// calls may register with an event; the event fires when every registered
// operation has signaled; ranks may Wait on it, and further asyncs may be
// launched when it fires (AsyncAfter).
//
// An Event with no registrations is considered fired, so Wait on a fresh
// or fully-drained event returns immediately — this makes events reusable
// across iterations, the common LULESH-style pattern.
type Event struct {
	mu      sync.Mutex
	pending int
	maxDone float64 // latest completion time among signaled operations
	waiters []eventWaiter
	after   []func(fireTime float64, from *Rank)
}

// eventWaiter is one blocked Wait. woken records that the current
// firing already sent this waiter its wake message; it is reset when
// the event un-fires (a new registration while drained), so a
// re-firing wakes the waiter again without charging duplicate modeled
// wake latency in the common single-fire case.
type eventWaiter struct {
	r     *Rank
	woken bool
}

// NewEvent returns an event ready for registrations.
func NewEvent() *Event { return &Event{} }

// register records one more operation that must signal before the event
// fires. Registering on a drained event un-fires it: any still-blocked
// waiters re-arm so the next firing wakes them again.
func (ev *Event) register(n int) {
	ev.mu.Lock()
	if ev.pending == 0 && n > 0 {
		for i := range ev.waiters {
			ev.waiters[i].woken = false
		}
	}
	ev.pending += n
	ev.mu.Unlock()
}

// signal marks one registered operation complete at virtual time done.
// from is the rank on whose goroutine the signal executes; it is used to
// route wakeups and to inject deferred async_after launches.
//
// Waiters stay registered until their Wait returns, and each firing
// wakes every not-yet-woken waiter: a blocked waiter's progress loop
// may reentrantly execute work that registers new operations with this
// same event (an AM handler issuing aggregated replies, say),
// un-firing it after the wake was already consumed — so the next fire
// must wake the waiter again, or it sleeps forever on an event that is
// done. The woken flag (re-armed by register when the event un-fires)
// keeps the common single-fire case at exactly one modeled wake.
func (ev *Event) signal(done float64, from *Rank) {
	ev.mu.Lock()
	ev.pending--
	if done > ev.maxDone {
		ev.maxDone = done
	}
	fired := ev.pending == 0
	var wake []*Rank
	var after []func(float64, *Rank)
	var fireTime float64
	if fired {
		for i := range ev.waiters {
			if !ev.waiters[i].woken {
				ev.waiters[i].woken = true
				wake = append(wake, ev.waiters[i].r)
			}
		}
		after = ev.after
		ev.after = nil
		fireTime = ev.maxDone
	}
	ev.mu.Unlock()
	if !fired {
		return
	}
	for _, w := range wake {
		from.ep.Wake(w.id, fireTime+from.job.model.Lat(from.id, w.id))
	}
	for _, f := range after {
		f(fireTime, from)
	}
}

// done reports whether the event has fired (no pending registrations).
func (ev *Event) done() (bool, float64) {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	return ev.pending == 0, ev.maxDone
}

// Test returns true if the event has fired, servicing progress once
// (paper: test() polls the runtime).
func (ev *Event) Test(me *Rank) bool {
	me.Advance()
	ok, t := ev.done()
	if ok {
		me.ep.Clock.AdvanceTo(t)
	}
	return ok
}

// Wait blocks the calling rank until the event fires, servicing async
// tasks (and, on a wire job, conduit traffic and aggregation flushes)
// while waiting, and advances the rank's clock to the fire time.
func (ev *Event) Wait(me *Rank) {
	ev.mu.Lock()
	if ev.pending == 0 {
		t := ev.maxDone
		ev.mu.Unlock()
		me.ep.Clock.AdvanceTo(t)
		return
	}
	ev.waiters = append(ev.waiters, eventWaiter{r: me})
	ev.mu.Unlock()
	me.ring.Begin(obs.KEvWait, -1, 0)
	me.waitProgress(func() bool {
		ok, _ := ev.done()
		return ok
	})
	me.ring.End(obs.KEvWait)
	// Unregister (signal leaves waiters in place so later fires can
	// re-wake them; see signal). Any wake already in flight for us is a
	// no-op message, drained by ordinary progress.
	ev.mu.Lock()
	for i := range ev.waiters {
		if ev.waiters[i].r == me {
			ev.waiters = append(ev.waiters[:i], ev.waiters[i+1:]...)
			break
		}
	}
	ev.mu.Unlock()
	_, t := ev.done()
	me.ep.Clock.AdvanceTo(t)
}

// whenFired runs f(fireTime, from) when the event fires — from is the
// rank whose goroutine delivers the final signal — or immediately with
// from=me if the event has already fired. Used by AsyncAfter.
func (ev *Event) whenFired(me *Rank, f func(fireTime float64, from *Rank)) {
	ev.mu.Lock()
	if ev.pending == 0 {
		t := ev.maxDone
		ev.mu.Unlock()
		f(t, me)
		return
	}
	ev.after = append(ev.after, f)
	ev.mu.Unlock()
}

// Copy performs a blocking one-sided bulk transfer of count elements from
// src to dst (the paper's copy(src, dst, count)); buffers are contiguous.
// Any combination of local and remote endpoints is allowed; a fully remote
// pair is staged through the initiator.
func Copy[T any](me *Rank, src, dst GlobalPtr[T], count int) {
	me.enter()
	defer me.exit()
	if count < 0 {
		panic(fmt.Sprintf("upcxx: Copy with negative count %d", count))
	}
	if count == 0 {
		return
	}
	bytes := count * int(sizeOf[T]())
	srcR, dstR := int(src.rank), int(dst.rank)
	mo := me.job.model

	switch {
	case srcR == me.id && dstR == me.id:
		me.ep.Clock.Advance(mo.GetCost(me.id, me.id, bytes))
	case dstR == me.id: // remote get
		me.ep.Stats.Gets.Add(1)
		me.ep.Stats.GetBytes.Add(int64(bytes))
		me.ep.Clock.Advance(mo.GetCost(me.id, srcR, bytes))
	case srcR == me.id: // remote put
		me.ep.Stats.Puts.Add(1)
		me.ep.Stats.PutBytes.Add(int64(bytes))
		me.ep.Clock.Advance(mo.PutCost(me.id, dstR, bytes))
	default: // third party: get then put, staged through the initiator
		me.ep.Stats.Gets.Add(1)
		me.ep.Stats.Puts.Add(1)
		me.ep.Stats.GetBytes.Add(int64(bytes))
		me.ep.Stats.PutBytes.Add(int64(bytes))
		me.ep.Clock.Advance(mo.GetCost(me.id, srcR, bytes) + mo.PutCost(me.id, dstR, bytes))
	}
	moveBytes(me, src, dst, bytes)
}

// moveBytes performs the actual data movement between segments through
// the conduit's one-sided data plane, staged through a private buffer so
// that at most one segment lock is held at a time (no lock-ordering
// deadlocks, and overlapping same-segment ranges behave like memmove).
// On a wire conduit this is a get off the source followed by a put to
// the destination, both initiated here.
func moveBytes[T any](me *Rank, src, dst GlobalPtr[T], bytes int) {
	me.aggPreBlock()
	tmp := make([]byte, bytes)
	me.mustCd(me.cd.Get(int(src.rank), src.Offset(), tmp))
	me.mustCd(me.cd.Put(int(dst.rank), dst.Offset(), tmp))
}

// AsyncCopy initiates a non-blocking one-sided bulk transfer (the paper's
// async_copy). If done is non-nil — an *Event (the legacy handle), a
// *Promise, or an Onto(...) combination — the operation registers with
// it and completes into it; otherwise completion attaches to the rank's
// implicit handle set, synchronized by AsyncCopyFence / Fence. The data
// movement itself is performed eagerly (so program results are ready at
// synchronization); the cost model accounts initiation now and transfer
// completion at the modeled finish time, which is what enables
// communication/computation overlap in virtual time. For a future-
// returning variant with real wire overlap see CopyAsync.
func AsyncCopy[T any](me *Rank, src, dst GlobalPtr[T], count int, done Completer) {
	me.enter()
	defer me.exit()
	done = normCompleter(done)
	if count <= 0 {
		completeNow(done, me)
		return
	}
	bytes := count * int(sizeOf[T]())
	mo := me.job.model
	peer := int(src.rank)
	if peer == me.id {
		peer = int(dst.rank)
	}
	me.ep.Stats.Puts.Add(1)
	me.ep.Stats.PutBytes.Add(int64(bytes))
	me.ep.Clock.Advance(mo.NBInitCost())
	completion := me.Clock() + mo.NBCompleteCost(me.id, peer, bytes)

	if done != nil {
		done.compRegister(me, 1)
	}
	moveBytes(me, src, dst, bytes)

	if done != nil {
		done.compComplete(completion, me)
	} else {
		if completion > me.implicitMax {
			me.implicitMax = completion
		}
		me.implicitN++
	}
}

// AsyncCopyFence completes all outstanding implicit-handle async copies
// issued by this rank (the paper's async_copy_fence: "handle-less"
// non-blocking communication, §V-E).
func AsyncCopyFence(me *Rank) {
	me.enter()
	defer me.exit()
	me.ep.Clock.AdvanceTo(me.implicitMax)
	me.implicitMax = 0
	me.implicitN = 0
}

// Fence orders this rank's outstanding shared-memory operations (the
// upc_fence equivalent): it completes all implicit non-blocking operations
// and services progress once.
func Fence(me *Rank) {
	AsyncCopyFence(me)
	me.Advance()
}

// ReadSlice copies len(dst) elements from shared memory at src into the
// local slice dst; a convenience over Copy for staging between private
// and shared memory.
func ReadSlice[T any](me *Rank, src GlobalPtr[T], dst []T) {
	me.enter()
	defer me.exit()
	bytes := len(dst) * int(sizeOf[T]())
	if bytes == 0 {
		return
	}
	me.ep.Stats.Gets.Add(1)
	me.ep.Stats.GetBytes.Add(int64(bytes))
	me.ep.Clock.Advance(me.job.model.GetCost(me.id, int(src.rank), bytes))
	me.aggPreBlock()
	me.mustCd(me.cd.Get(int(src.rank), src.Offset(), sliceBytes(dst)))
}

// WriteSlice copies the local slice src into shared memory at dst.
func WriteSlice[T any](me *Rank, dst GlobalPtr[T], src []T) {
	me.enter()
	defer me.exit()
	bytes := len(src) * int(sizeOf[T]())
	if bytes == 0 {
		return
	}
	me.ep.Stats.Puts.Add(1)
	me.ep.Stats.PutBytes.Add(int64(bytes))
	me.ep.Clock.Advance(me.job.model.PutCost(me.id, int(dst.rank), bytes))
	me.aggPreBlock()
	me.mustCd(me.cd.Put(int(dst.rank), dst.Offset(), sliceBytes(src)))
}

// WriteSliceAsync is the non-blocking WriteSlice: initiation is charged
// now, completion attaches to done — any completion object — or the
// implicit set when done is nil.
func WriteSliceAsync[T any](me *Rank, dst GlobalPtr[T], src []T, done Completer) {
	me.enter()
	done = normCompleter(done)
	bytes := len(src) * int(sizeOf[T]())
	mo := me.job.model
	me.ep.Stats.Puts.Add(1)
	me.ep.Stats.PutBytes.Add(int64(bytes))
	me.ep.Clock.Advance(mo.NBInitCost())
	completion := me.Clock() + mo.NBCompleteCost(me.id, int(dst.rank), bytes)
	if done != nil {
		done.compRegister(me, 1)
	}
	me.aggPreBlock()
	me.mustCd(me.cd.Put(int(dst.rank), dst.Offset(), sliceBytes(src)))
	me.exit()
	if done != nil {
		done.compComplete(completion, me)
	} else {
		if completion > me.implicitMax {
			me.implicitMax = completion
		}
		me.implicitN++
	}
}
