package core

import (
	"fmt"
	"sort"

	"upcxx/internal/gasnet"
	"upcxx/internal/obs"
)

// Teams: first-class rank subsets with team-scoped collectives, the
// upcxx::team redesign of the flat collective API. Every rank owns two
// built-in teams — World() (all ranks) and Local() (the ranks
// co-located on this host, per the job topology) — and can carve
// further subsets with Split(color, key), MPI_Comm_split style. All
// collectives are team-scoped methods/functions; the old flat free
// functions in coll.go remain as deprecated wrappers over World().
//
// A Team value is per-rank (it is a view of the subset through this
// rank's handle, like every other core object), but its identity — the
// id and the member list — is a pure function of the split history, so
// co-members agree on both without communication beyond the split's
// own allgather. Collective calls on a team must be made by all its
// members in the same order, the usual SPMD contract; the per-team
// sequence number turns that order into globally unique rendezvous
// keys for the conduit's subset collectives.
type Team struct {
	r       *Rank
	id      uint64
	members []int // world ranks in team-rank order
	myIdx   int   // this rank's position in members
	seq     uint64
	splits  uint64
}

const (
	worldTeamID   = 1
	localTeamSalt = 0x6c6f63616c7465 // "localte"
	colorSalt     = 0x636f6c6f72     // "color"
	golden        = 0x9E3779B97F4A7C15
)

// mix64 is the splitmix64 finalizer: a cheap bijective scrambler good
// enough to make team ids and collective keys collision-free across
// independent split histories.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// log2up returns ceil(log2(n)) — the stage count of a binomial tree or
// dissemination exchange over n participants.
func log2up(n int) int {
	s := 0
	for v := 1; v < n; v <<= 1 {
		s++
	}
	return s
}

// jobNodes resolves the host topology of a job: the explicit
// Config.Nodes when given, else the conduit's own locality knowledge,
// else the backend default (in-process ranks genuinely share one host;
// plain wire ranks are assumed one per host).
func jobNodes(cfg Config, cd gasnet.Conduit) []int {
	if cfg.Nodes != nil {
		if len(cfg.Nodes) != cfg.Ranks {
			panic(fmt.Sprintf("upcxx: Config.Nodes has %d entries for %d ranks",
				len(cfg.Nodes), cfg.Ranks))
		}
		return append([]int(nil), cfg.Nodes...)
	}
	if lc := cd.Capabilities().Locality; lc != nil {
		return append([]int(nil), lc.Nodes()...)
	}
	nodes := make([]int, cfg.Ranks)
	if cd.WireCapable() {
		for i := range nodes {
			nodes[i] = i
		}
	}
	return nodes
}

// World returns the team of all ranks (team rank == world rank).
func (r *Rank) World() *Team {
	r.enter()
	defer r.exit()
	if r.world == nil {
		members := make([]int, r.job.cfg.Ranks)
		for i := range members {
			members[i] = i
		}
		r.world = &Team{r: r, id: worldTeamID, members: members, myIdx: r.id}
	}
	return r.world
}

// Local returns the team of ranks co-located with this one (same host
// index in the job topology; see Config.Nodes). Membership is identical
// across backends at matching topology, so programs folding per-host
// partials over Local() produce backend-independent answers.
func (r *Rank) Local() *Team {
	r.enter()
	defer r.exit()
	if r.localTeam == nil {
		node := r.nodes[r.id]
		var members []int
		myIdx := -1
		for m, h := range r.nodes {
			if h == node {
				if m == r.id {
					myIdx = len(members)
				}
				members = append(members, m)
			}
		}
		r.localTeam = &Team{r: r, id: mix64(localTeamSalt + uint64(node)),
			members: members, myIdx: myIdx}
	}
	return r.localTeam
}

// SplitTeam splits the world team; shorthand for me.World().Split.
func (r *Rank) SplitTeam(color, key int) *Team { return r.World().Split(color, key) }

// Rank returns this rank's index within the team.
func (t *Team) Rank() int { return t.myIdx }

// Ranks returns the team size.
func (t *Team) Ranks() int { return len(t.members) }

// Members returns the world ranks of the team in team-rank order. The
// slice is shared; do not mutate it.
func (t *Team) Members() []int { return t.members }

// WorldRank translates a team rank to a world rank.
func (t *Team) WorldRank(i int) int { return t.members[i] }

// ID returns the team's identity, equal on all members and unique
// across distinct teams of the job.
func (t *Team) ID() uint64 { return t.id }

func (t *Team) isWorld() bool { return t == t.r.world }

func (t *Team) String() string {
	return fmt.Sprintf("team %#x (rank %d/%d)", t.id, t.myIdx, len(t.members))
}

// nextKey derives the rendezvous key of the team's next collective:
// every member computes the same sequence independently, and distinct
// teams (or distinct collectives of one team) never collide.
func (t *Team) nextKey() uint64 {
	t.seq++
	return mix64(t.id + t.seq*golden)
}

// Split partitions the team: members calling with the same color form a
// new team, ordered by (key, world rank) — MPI_Comm_split semantics.
// Collective over the parent team; every member receives its own new
// team. Negative colors are not supported (there is no "undefined"
// non-participation; pass a distinct color instead).
func (t *Team) Split(color, key int) *Team {
	if color < 0 {
		panic("upcxx: Split with negative color")
	}
	me := t.r
	t.splits++
	id := mix64(mix64(t.id+t.splits*golden) ^ mix64(uint64(color)+colorSalt))

	type ck struct{ Color, Key int32 }
	all := TeamAllGather(t, ck{int32(color), int32(key)})

	type mem struct{ key, world int }
	var picked []mem
	for i, c := range all {
		if int(c.Color) == color {
			picked = append(picked, mem{key: int(c.Key), world: t.members[i]})
		}
	}
	sort.Slice(picked, func(a, b int) bool {
		if picked[a].key != picked[b].key {
			return picked[a].key < picked[b].key
		}
		return picked[a].world < picked[b].world
	})
	members := make([]int, len(picked))
	myIdx := -1
	for i, m := range picked {
		members[i] = m.world
		if m.world == me.id {
			myIdx = i
		}
	}
	return &Team{r: me, id: id, members: members, myIdx: myIdx}
}

// allGatherBytes is the subset-collective dispatch: conduit-provided
// team collectives when available (wire, hierarchical and in-process
// conduits all advertise them), else the engine's rendezvous as a
// fallback. The returned parts are indexed by team rank; the caller
// charges model costs.
func (t *Team) allGatherBytes(contrib []byte) [][]byte {
	me := t.r
	key := t.nextKey()
	me.aggPreBlock()
	if tc := me.caps.Teams; tc != nil {
		parts, err := tc.TeamAllGather(key, t.members, contrib)
		me.mustCd(err)
		return parts
	}
	if !me.onWire() {
		return me.ep.TeamGather(key, t.myIdx, len(t.members), contrib)
	}
	panic("upcxx: conduit supports neither team collectives nor shared memory")
}

// chargeColl charges one team collective: ceil(log2 m) tree stages plus,
// when the result fans back in full (allgather-shaped payloads), the
// per-peer wire time.
func (t *Team) chargeColl(elemBytes int, stages float64, fanIn bool) {
	mo := t.r.job.model
	m := len(t.members)
	c := stages * float64(log2up(m)) * mo.CollStageCost(elemBytes)
	if fanIn {
		c += float64(m-1) * mo.WireNs(elemBytes)
	}
	t.r.ep.Clock.Advance(c)
}

// Barrier blocks until every member of the team arrives, servicing
// progress while waiting. For the world team this is the conduit
// barrier (on the hierarchical conduit: an intra-host shared-memory
// phase plus a dissemination exchange among per-host leaders); for
// subsets it rides the conduit's keyed team barrier. Aggregated ops
// are drained first, preserving the "visible by the next barrier" rule.
func (t *Team) Barrier() {
	me := t.r
	me.enter()
	defer me.exit()
	var t0 uint64
	if me.ring != nil {
		t0 = obs.NowNs()
		me.ring.Begin(obs.KBarrier, -1, uint32(len(t.members)))
	}
	defer func() {
		if me.ring != nil {
			me.ring.End(obs.KBarrier)
			me.barrierNs.Observe(int64(obs.NowNs() - t0))
		}
	}()
	me.aggDrain()
	if t.isWorld() {
		me.mustCd(me.cd.Barrier())
		return
	}
	key := t.nextKey()
	if tc := me.caps.Teams; tc != nil {
		me.mustCd(tc.TeamBarrier(key, t.members))
	} else if !me.onWire() {
		me.ep.TeamGather(key, t.myIdx, len(t.members), nil)
	} else {
		panic("upcxx: conduit supports neither team collectives nor shared memory")
	}
	t.chargeColl(0, 1, false)
}

// TeamAllGather collects one POD value per member, indexed by team
// rank. (Go methods cannot carry type parameters, so the typed team
// collectives are free functions over *Team.)
func TeamAllGather[T any](t *Team, v T) []T {
	if t.isWorld() {
		return worldAllGather(t.r, v)
	}
	checkPOD[T]()
	parts := t.allGatherBytes(valueBytes(&v))
	out := make([]T, len(parts))
	for i, p := range parts {
		if len(p) == 0 {
			continue
		}
		if uint64(len(p)) != sizeOf[T]() {
			panic(fmt.Sprintf("upcxx: team collective: member %d contributed %d bytes, want %d",
				i, len(p), sizeOf[T]()))
		}
		copy(valueBytes(&out[i]), p)
	}
	t.chargeColl(int(sizeOf[T]()), 1, true)
	return out
}

// TeamBroadcast distributes the value held by the member with team rank
// root to every member.
func TeamBroadcast[T any](t *Team, v T, root int) T {
	if t.isWorld() {
		return worldBroadcast(t.r, v, root)
	}
	checkPOD[T]()
	var contrib []byte
	if t.myIdx == root {
		contrib = valueBytes(&v)
	}
	parts := t.allGatherBytes(contrib)
	if uint64(len(parts[root])) != sizeOf[T]() {
		panic(fmt.Sprintf("upcxx: team broadcast: root contributed %d bytes, want %d",
			len(parts[root]), sizeOf[T]()))
	}
	var out T
	copy(valueBytes(&out), parts[root])
	t.chargeColl(int(sizeOf[T]()), 1, false)
	return out
}

// TeamReduce combines one value per member with op (associative) and
// returns the result on every member. The fold runs in team-rank
// order, so floating-point results are deterministic and agree across
// backends.
func TeamReduce[T any](t *Team, v T, op func(a, b T) T) T {
	if t.isWorld() {
		return worldReduce(t.r, v, op)
	}
	vals := TeamAllGather(t, v)
	acc := vals[0]
	for _, x := range vals[1:] {
		acc = op(acc, x)
	}
	t.chargeColl(int(sizeOf[T]()), 1, false) // down-sweep on top of the gather
	return acc
}

// TeamReduceSlices element-wise combines equal-length slices from every
// member into root's (a team rank) result; other members receive nil.
func TeamReduceSlices[T any](t *Team, contrib []T, op func(a, b T) T, root int) []T {
	if t.isWorld() {
		return worldReduceSlices(t.r, contrib, op, root)
	}
	checkPOD[T]()
	parts := t.allGatherBytes(sliceBytes(contrib))
	bytes := len(contrib) * int(sizeOf[T]())
	mo := t.r.job.model
	t.r.ep.Clock.Advance(float64(log2up(len(t.members)))*mo.CollStageCost(0) + 2*mo.WireNs(bytes))
	t.r.Work(float64(len(contrib)))
	if t.myIdx != root {
		return nil
	}
	out := make([]T, len(contrib))
	first := true
	for i, p := range parts {
		if uint64(len(p)) != uint64(bytes) {
			panic(fmt.Sprintf("upcxx: team ReduceSlices: member %d contributed %d bytes, want %d",
				i, len(p), bytes))
		}
		d := make([]T, len(contrib))
		copy(sliceBytes(d), p)
		if first {
			copy(out, d)
			first = false
			continue
		}
		for j, x := range d {
			out[j] = op(out[j], x)
		}
	}
	return out
}

// TeamExclusiveScan returns the exclusive prefix fold of v across the
// team in team-rank order (team rank 0 receives identity).
func TeamExclusiveScan[T any](t *Team, v T, op func(a, b T) T, identity T) T {
	all := TeamAllGather(t, v)
	acc := identity
	for i := 0; i < t.myIdx; i++ {
		acc = op(acc, all[i])
	}
	t.r.Work(float64(t.myIdx))
	return acc
}

// TeamGatherAll collects one value per member on the member with team
// rank root (indexed by team rank); other members receive nil.
func TeamGatherAll[T any](t *Team, v T, root int) []T {
	all := TeamAllGather(t, v)
	if t.myIdx != root {
		return nil
	}
	out := make([]T, len(all))
	copy(out, all)
	return out
}
