package core

import "upcxx/internal/gasnet"

// Lock is a global mutual-exclusion lock (upc_lock analog). The lock's
// state lives on its home rank (the creator) and is manipulated only by
// active messages executed on the home's goroutine, so the manager needs
// no internal locking. Grant and release each cost one round trip, like a
// network lock service.
type Lock struct {
	home int
	id   uint64
}

type lockState struct {
	held  bool
	queue []lockWaiter
}

type lockWaiter struct {
	rank    int
	granted *bool
}

// NewLock creates a lock homed on the calling rank. The Lock value is POD
// and may be shared with other ranks (e.g. through a shared variable or a
// closure).
func NewLock(me *Rank) Lock {
	me.nextLockID++
	id := me.nextLockID
	me.locks[id] = &lockState{}
	return Lock{home: me.id, id: id}
}

// Acquire blocks until the calling rank holds the lock, servicing async
// tasks while waiting.
func (l Lock) Acquire(me *Rank) {
	granted := false
	me.ep.Send(l.home, 16, func(tep *gasnet.Endpoint) {
		home := me.job.ranks[tep.Rank]
		st := home.locks[l.id]
		if st == nil {
			panic("upcxx: Acquire on unknown lock")
		}
		if st.held {
			st.queue = append(st.queue, lockWaiter{rank: me.id, granted: &granted})
			return
		}
		st.held = true
		tep.Send(me.id, 8, func(*gasnet.Endpoint) { granted = true })
	})
	me.ep.WaitFor(func() bool { return granted })
}

// TryAcquire attempts to take the lock without queueing; it reports
// whether the lock was obtained.
func (l Lock) TryAcquire(me *Rank) bool {
	got := me.call(l.home, 16, 8, func(home *Rank) uint64 {
		st := home.locks[l.id]
		if st == nil {
			panic("upcxx: TryAcquire on unknown lock")
		}
		if st.held {
			return 0
		}
		st.held = true
		return 1
	})
	return got == 1
}

// Release releases the lock, handing it to the oldest queued waiter if
// any. The caller must hold the lock.
func (l Lock) Release(me *Rank) {
	done := false
	me.ep.Send(l.home, 16, func(tep *gasnet.Endpoint) {
		home := me.job.ranks[tep.Rank]
		st := home.locks[l.id]
		if st == nil || !st.held {
			panic("upcxx: Release of unheld lock")
		}
		if len(st.queue) > 0 {
			next := st.queue[0]
			st.queue = st.queue[1:]
			// Hand off directly: the lock stays held, the waiter wakes.
			g := next.granted
			tep.Send(next.rank, 8, func(*gasnet.Endpoint) { *g = true })
		} else {
			st.held = false
		}
		tep.Send(me.id, 8, func(*gasnet.Endpoint) { done = true })
	})
	me.ep.WaitFor(func() bool { return done })
}
