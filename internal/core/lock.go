package core

// Lock is a global mutual-exclusion lock (upc_lock analog). The lock's
// state lives on its home rank (the creator) inside that rank's conduit
// and is manipulated only by messages executed on the home's goroutine,
// so the manager needs no internal locking. Grant and release each cost
// one round trip, like a network lock service. Lock traffic is part of
// the serializable conduit vocabulary, so locks work identically on the
// in-process and wire backends.
type Lock struct {
	home int
	id   uint64
}

// NewLock creates a lock homed on the calling rank. The Lock value is POD
// and may be shared with other ranks (e.g. through a shared variable or a
// closure).
func NewLock(me *Rank) Lock {
	return Lock{home: me.id, id: me.cd.LockNew()}
}

// Acquire blocks until the calling rank holds the lock, servicing async
// tasks while waiting. Buffered aggregated ops are flushed first — the
// holder may be waiting on them before it releases.
func (l Lock) Acquire(me *Rank) {
	me.aggPreBlock()
	_, err := me.cd.LockAcquire(l.home, l.id, false)
	me.mustCd(err)
}

// TryAcquire attempts to take the lock without queueing; it reports
// whether the lock was obtained.
func (l Lock) TryAcquire(me *Rank) bool {
	me.aggPreBlock()
	got, err := me.cd.LockAcquire(l.home, l.id, true)
	me.mustCd(err)
	return got
}

// Release releases the lock, handing it to the oldest queued waiter if
// any. The caller must hold the lock.
func (l Lock) Release(me *Rank) {
	me.aggPreBlock()
	me.mustCd(me.cd.LockRelease(l.home, l.id))
}
