package core

import (
	"strings"
	"sync/atomic"
	"testing"

	"upcxx/internal/rpc"
)

// Test tasks are registered once per process (package init), following
// the registry's SPMD discipline; bodies get everything else through
// their POD-encoded args.

// tmix is a cheap splitmix-style finalizer for deterministic expected
// values.
func tmix(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

var (
	// xor mark into a cell: args [rank][off][val]
	ttMark = RegisterTask("core_test.mark", func(me *Rank, from int, args []byte) []byte {
		rank, rest := rpc.U64(args)
		off, rest := rpc.U64(rest)
		val, _ := rpc.U64(rest)
		AggXor64(me, PtrAt[uint64](int(rank), off), val, nil)
		return nil
	})

	// compute and reply: args [seed]; reply [tmix(seed ^ rank+1)]
	ttValue = RegisterTask("core_test.value", func(me *Rank, from int, args []byte) []byte {
		seed, _ := rpc.U64(args)
		return rpc.U64s(tmix(seed ^ uint64(me.ID()+1)))
	})

	// chain: args [rank][off][depth][salt]; xor a depth-tagged mark,
	// then spawn the rest of the chain on the next rank — an RPC
	// spawning an RPC, tracked transitively by the root Finish. The
	// body refers to its own Task handle, so registration happens in
	// init below rather than in this initializer.
	ttChain Task

	// read a local word and reply with it (exercises After ordering).
	ttReadCell = RegisterTask("core_test.readcell", func(me *Rank, from int, args []byte) []byte {
		rank, rest := rpc.U64(args)
		off, _ := rpc.U64(rest)
		return rpc.U64s(Read(me, PtrAt[uint64](int(rank), off)))
	})

	ttBoom = RegisterTask("core_test.boom", func(me *Rank, from int, args []byte) []byte {
		panic("boom")
	})
)

func init() {
	ttChain = RegisterTask("core_test.chain", chainBody)
}

func chainBody(me *Rank, from int, args []byte) []byte {
	rank, rest := rpc.U64(args)
	off, rest := rpc.U64(rest)
	depth, rest := rpc.U64(rest)
	salt, _ := rpc.U64(rest)
	AggXor64(me, PtrAt[uint64](int(rank), off), chainMark(salt, depth, me.ID()), nil)
	if depth > 0 {
		next := (me.ID() + 1) % me.Ranks()
		AsyncTask(me, On(next), ttChain, rpc.U64s(rank, off, depth-1, salt))
	}
	return nil
}

func chainMark(salt, depth uint64, rank int) uint64 {
	return tmix(salt<<20 + depth<<8 + uint64(rank+1))
}

// expectChain folds the marks a chain rooted at startRank with the
// given depth deposits, hopping ranks the way ttChain does.
func expectChain(n int, startRank int, depth, salt uint64) uint64 {
	var sum uint64
	r := startRank
	for d := depth; ; d-- {
		sum ^= chainMark(salt, d, r)
		if d == 0 {
			return sum
		}
		r = (r + 1) % n
	}
}

func newCell(me *Rank) GlobalPtr[uint64] {
	p := Allocate[uint64](me, me.ID(), 1)
	Write(me, p, 0)
	return p
}

func cellArgs(p GlobalPtr[uint64]) []byte {
	return rpc.U64s(uint64(p.Where()), p.Offset())
}

func TestAsyncTaskEverywhere(t *testing.T) {
	Run(testCfg(4), func(me *Rank) {
		if me.ID() == 0 {
			cell := newCell(me)
			var want uint64
			Finish(me, func() {
				for r := 0; r < me.Ranks(); r++ {
					v := tmix(uint64(r) + 101)
					want ^= v
					AsyncTask(me, On(r), ttMark, append(cellArgs(cell), rpc.U64s(v)...))
				}
			})
			if got := Read(me, cell); got != want {
				t.Errorf("cell after Finish = %#x, want %#x", got, want)
			}
		}
		me.Barrier()
	})
}

func TestAsyncTaskFutureReplies(t *testing.T) {
	Run(testCfg(4), func(me *Rank) {
		if me.ID() == 0 {
			futs := make([]*Future[[]byte], me.Ranks())
			for r := range futs {
				futs[r] = AsyncTaskFuture(me, r, ttValue, rpc.U64s(77))
			}
			for r, f := range futs {
				got, _ := rpc.U64(f.Get())
				if want := tmix(77 ^ uint64(r+1)); got != want {
					t.Errorf("reply from rank %d = %#x, want %#x", r, got, want)
				}
			}
		}
		me.Barrier()
	})
}

func TestAsyncTaskFutureSignalEvent(t *testing.T) {
	Run(testCfg(2), func(me *Rank) {
		if me.ID() == 0 {
			ev := NewEvent()
			f := AsyncTaskFuture(me, 1, ttValue, rpc.U64s(5), Signal(ev))
			ev.Wait(me)
			got, _ := rpc.U64(f.Get())
			if want := tmix(5 ^ 2); got != want {
				t.Errorf("reply = %#x, want %#x", got, want)
			}
		}
		me.Barrier()
	})
}

func TestTaskChainTransitiveFinish(t *testing.T) {
	const depth, salt = 9, 31
	Run(testCfg(3), func(me *Rank) {
		if me.ID() == 0 {
			cell := newCell(me)
			start := 1 % me.Ranks()
			Finish(me, func() {
				AsyncTask(me, On(start), ttChain, append(cellArgs(cell), rpc.U64s(depth, salt)...))
			})
			// Finish must have waited for the whole chain — RPCs spawned
			// by RPCs — not just the task it launched directly.
			if got, want := Read(me, cell), expectChain(me.Ranks(), start, depth, salt); got != want {
				t.Errorf("chain fold = %#x, want %#x", got, want)
			}
		}
		me.Barrier()
	})
}

func TestNestedFinishScopes(t *testing.T) {
	Run(testCfg(4), func(me *Rank) {
		if me.ID() == 0 {
			outer := newCell(me)
			inner := newCell(me)
			var wantOuter, wantInner uint64
			Finish(me, func() {
				for r := 0; r < me.Ranks(); r++ {
					v := tmix(uint64(r) + 500)
					wantOuter ^= v
					AsyncTask(me, On(r), ttMark, append(cellArgs(outer), rpc.U64s(v)...))
				}
				Finish(me, func() {
					for r := 0; r < me.Ranks(); r++ {
						v := tmix(uint64(r) + 900)
						wantInner ^= v
						AsyncTask(me, On(r), ttMark, append(cellArgs(inner), rpc.U64s(v)...))
					}
				})
				// The inner scope has drained even though the outer one
				// is still open.
				if got := Read(me, inner); got != wantInner {
					t.Errorf("inner cell inside outer Finish = %#x, want %#x", got, wantInner)
				}
			})
			if got := Read(me, outer); got != wantOuter {
				t.Errorf("outer cell = %#x, want %#x", got, wantOuter)
			}
		}
		me.Barrier()
	})
}

func TestAsyncTaskAfterOrdering(t *testing.T) {
	Run(testCfg(3), func(me *Rank) {
		if me.ID() == 0 {
			cell := newCell(me) // written by t1, read by t2
			mark := tmix(4242)
			e1 := NewEvent()
			var seen atomic.Uint64
			Finish(me, func() {
				AsyncTask(me, On(1%me.Ranks()), ttMark,
					append(cellArgs(cell), rpc.U64s(mark)...), Signal(e1))
				// t2 launches only after e1 fired, i.e. after t1's body
				// ran; it reads the cell and replies with what it saw.
				AsyncAfter(me, On(2%me.Ranks()), e1, nil, func(tgt *Rank) {
					seen.Store(Read(tgt, cell))
				})
			})
			if got := seen.Load(); got != mark {
				t.Errorf("dependent task saw %#x, want %#x", got, mark)
			}
		}
		me.Barrier()
	})
}

func TestAsyncTaskFutureAfterDependency(t *testing.T) {
	Run(testCfg(3), func(me *Rank) {
		if me.ID() == 0 {
			cell := newCell(me)
			mark := tmix(777)
			e1 := NewEvent()
			Finish(me, func() {
				AsyncTask(me, On(1), ttMark,
					append(cellArgs(cell), rpc.U64s(mark)...), Signal(e1))
				// Deferred behind e1: the reader must observe t1's mark.
				f := AsyncTaskFuture(me, 2, ttReadCell, cellArgs(cell), After(e1))
				got, _ := rpc.U64(f.Get())
				if got != mark {
					t.Errorf("dependent future read %#x, want %#x", got, mark)
				}
			})
		}
		me.Barrier()
	})
}

func TestAsyncTaskPanicCarriesCause(t *testing.T) {
	Run(testCfg(1), func(me *Rank) {
		defer func() {
			p := recover()
			if p == nil {
				t.Fatal("panicking task should abort the job")
			}
			msg := p.(error).Error()
			for _, want := range []string{"core_test.boom", "boom", "rank 0"} {
				if !strings.Contains(msg, want) {
					t.Errorf("panic cause %q should mention %q", msg, want)
				}
			}
		}()
		// Self-targeted launch executes inline, so the wrapped panic
		// propagates synchronously to this goroutine.
		AsyncTask(me, On(0), ttBoom, nil)
	})
}

func TestUnknownTaskIndexPanics(t *testing.T) {
	Run(testCfg(1), func(me *Rank) {
		defer func() {
			p := recover()
			if p == nil {
				t.Fatal("unregistered task index should panic")
			}
			if msg := p.(error).Error(); !strings.Contains(msg, "same order") {
				t.Errorf("panic %q should explain the registration discipline", msg)
			}
		}()
		me.execTask(0, 0xFFFF, nil, nil, nil)
	})
}

func TestZeroTaskRejectedAtLaunch(t *testing.T) {
	Run(testCfg(1), func(me *Rank) {
		defer func() {
			if recover() == nil {
				t.Error("AsyncTask with the zero Task should panic")
			}
		}()
		AsyncTask(me, On(0), Task{}, nil)
	})
}

func TestReservedAMHandlerIDRejected(t *testing.T) {
	Run(testCfg(1), func(me *Rank) {
		defer func() {
			if recover() == nil {
				t.Error("registering a reserved AM handler id should panic")
			}
		}()
		RegisterAMHandler(me, amRPCReq, func(*Rank, int, []byte) {})
	})
}
