package core

import "fmt"

// Wire-backend collectives. The in-process typed collectives rendezvous
// through a shared slot (one allocation per collective, shared
// read-only by all ranks — what keeps 32K-rank metadata exchanges
// linear in memory); across address spaces there is no shared slot, so
// every collective reduces to the conduit's byte-level AllGather and a
// local fold. Element types must be POD (pointer-free), the same
// contract the segment enforces — which is exactly what makes every
// shared value byte-serializable.

// wireAllGather performs the conduit allgather, aborting on failure.
// Buffered aggregated ops ship first: the rendezvous blocks until
// every rank arrives, and a peer may be waiting on our ops to get
// there.
func wireAllGather(me *Rank, contrib []byte) [][]byte {
	me.aggPreBlock()
	parts, err := me.cd.AllGather(contrib)
	me.mustCd(err)
	return parts
}

// wireExchange allgathers one POD value per rank. On a resilient job a
// dead rank's slot comes back empty (the conduit completes the gather
// without it); its entry stays the zero T, and callers that care must
// consult RankAlive. A wrong non-zero length is still corruption.
func wireExchange[T any](me *Rank, v T) []T {
	checkPOD[T]()
	parts := wireAllGather(me, valueBytes(&v))
	out := make([]T, len(parts))
	for i, p := range parts {
		if len(p) == 0 {
			continue // dead rank: zero value
		}
		if uint64(len(p)) != sizeOf[T]() {
			panic(fmt.Sprintf("upcxx: wire collective: rank %d contributed %d bytes, want %d",
				i, len(p), sizeOf[T]()))
		}
		copy(valueBytes(&out[i]), p)
	}
	return out
}

func wireBroadcast[T any](me *Rank, v T, root int) T {
	checkPOD[T]()
	var contrib []byte
	if me.id == root {
		contrib = valueBytes(&v)
	}
	parts := wireAllGather(me, contrib)
	if len(parts[root]) == 0 {
		// Only death erases the root's contribution (it deposits before
		// gathering when alive) — there is nothing to broadcast.
		panic(fmt.Errorf("upcxx: wire broadcast: %w", me.deadErrFor(root)))
	}
	var out T
	if uint64(len(parts[root])) != sizeOf[T]() {
		panic(fmt.Sprintf("upcxx: wire broadcast: root contributed %d bytes, want %d",
			len(parts[root]), sizeOf[T]()))
	}
	copy(valueBytes(&out), parts[root])
	return out
}

// wireReduce folds one value per rank in rank order, on every rank —
// the same deterministic fold order the in-process Reduce uses, so
// floating-point results agree across backends. Dead ranks' missing
// contributions are skipped: survivors fold the same surviving set in
// the same order, so they still agree with each other.
func wireReduce[T any](me *Rank, v T, op func(a, b T) T) T {
	checkPOD[T]()
	parts := wireAllGather(me, valueBytes(&v))
	var acc T
	first := true
	for i, p := range parts {
		if len(p) == 0 {
			continue // dead rank
		}
		if uint64(len(p)) != sizeOf[T]() {
			panic(fmt.Sprintf("upcxx: wire collective: rank %d contributed %d bytes, want %d",
				i, len(p), sizeOf[T]()))
		}
		var x T
		copy(valueBytes(&x), p)
		if first {
			acc, first = x, false
			continue
		}
		acc = op(acc, x)
	}
	return acc
}

func wireReduceSlices[T any](me *Rank, contrib []T, op func(a, b T) T, root int) []T {
	checkPOD[T]()
	parts := wireAllGather(me, sliceBytes(contrib))
	if me.id != root {
		return nil
	}
	out := make([]T, len(contrib))
	decode := func(p []byte) []T {
		if uint64(len(p)) != uint64(len(contrib))*sizeOf[T]() {
			panic("upcxx: wire ReduceSlices: unequal contribution lengths")
		}
		s := make([]T, len(contrib))
		copy(sliceBytes(s), p)
		return s
	}
	first := true
	for _, p := range parts {
		if len(p) == 0 && len(contrib) != 0 {
			continue // dead rank
		}
		d := decode(p)
		if first {
			copy(out, d)
			first = false
			continue
		}
		for i, x := range d {
			out[i] = op(out[i], x)
		}
	}
	return out
}
