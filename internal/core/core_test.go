package core

import (
	"sync/atomic"
	"testing"

	"upcxx/internal/sim"
)

func testCfg(ranks int) Config {
	return Config{Ranks: ranks, Machine: sim.Local, SW: sim.SWUPCXX, Virtual: true}
}

func TestRunBasics(t *testing.T) {
	var seen [4]atomic.Bool
	st := Run(testCfg(4), func(me *Rank) {
		if me.Ranks() != 4 {
			t.Errorf("Ranks() = %d, want 4", me.Ranks())
		}
		seen[me.ID()].Store(true)
	})
	for i := range seen {
		if !seen[i].Load() {
			t.Errorf("rank %d never ran", i)
		}
	}
	if st.Ranks != 4 {
		t.Errorf("Stats.Ranks = %d", st.Ranks)
	}
}

func TestAllocateReadWriteLocal(t *testing.T) {
	Run(testCfg(1), func(me *Rank) {
		p := Allocate[int64](me, 0, 10)
		for i := 0; i < 10; i++ {
			Write(me, p.Add(i), int64(i*i))
		}
		for i := 0; i < 10; i++ {
			if v := Read(me, p.Add(i)); v != int64(i*i) {
				t.Errorf("elem %d = %d, want %d", i, v, i*i)
			}
		}
		if err := Deallocate(me, p); err != nil {
			t.Error(err)
		}
	})
}

func TestAllocateRemote(t *testing.T) {
	// Paper §III-C: allocate space for 64 integers on thread 2.
	Run(testCfg(4), func(me *Rank) {
		if me.ID() == 0 {
			sp := Allocate[int32](me, 2, 64)
			if sp.Where() != 2 {
				t.Errorf("Where() = %d, want 2", sp.Where())
			}
			for i := 0; i < 64; i++ {
				Write(me, sp.Add(i), int32(100+i))
			}
			// Rank 3 reads them back.
			f := AsyncFuture(me, 3, func(r3 *Rank) int32 {
				var sum int32
				for i := 0; i < 64; i++ {
					sum += Read(r3, sp.Add(i))
				}
				return sum
			})
			var want int32
			for i := 0; i < 64; i++ {
				want += int32(100 + i)
			}
			if got := f.Get(); got != want {
				t.Errorf("remote sum = %d, want %d", got, want)
			}
			if err := Deallocate(me, sp); err != nil { // remote free from rank 0
				t.Error(err)
			}
		}
		me.Barrier()
	})
}

func TestGlobalPtrArithmetic(t *testing.T) {
	Run(testCfg(2), func(me *Rank) {
		if me.ID() == 0 {
			p := Allocate[float64](me, 1, 100)
			q := p.Add(40)
			if q.Diff(p) != 40 {
				t.Errorf("Diff = %d, want 40", q.Diff(p))
			}
			if q.Add(-40) != p {
				t.Error("Add(-40) did not invert Add(40)")
			}
			if p.Where() != 1 || q.Where() != 1 {
				t.Error("arithmetic changed affinity")
			}
		}
		me.Barrier()
	})
}

func TestNullPointer(t *testing.T) {
	var p GlobalPtr[int]
	if !p.IsNull() {
		t.Error("zero GlobalPtr should be null")
	}
	if !Null[int]().IsNull() {
		t.Error("Null() should be null")
	}
	defer func() {
		if recover() == nil {
			t.Error("arithmetic on null pointer should panic")
		}
	}()
	p.Add(1)
}

func TestPODEnforcement(t *testing.T) {
	type hasPtr struct{ P *int }
	Run(testCfg(1), func(me *Rank) {
		defer func() {
			if recover() == nil {
				t.Error("Allocate of pointerful type should panic")
			}
		}()
		Allocate[hasPtr](me, 0, 1)
	})
}

func TestLocalAccess(t *testing.T) {
	Run(testCfg(2), func(me *Rank) {
		p := Allocate[uint32](me, me.ID(), 4)
		lp := Local(me, p)
		*lp = 7
		if Read(me, p) != 7 {
			t.Error("Local store not visible through Read")
		}
		ls := LocalSlice(me, p, 4)
		ls[3] = 9
		if Read(me, p.Add(3)) != 9 {
			t.Error("LocalSlice store not visible through Read")
		}
		me.Barrier()
	})
}

func TestLocalOnRemotePanics(t *testing.T) {
	Run(testCfg(2), func(me *Rank) {
		p := Allocate[int](me, me.ID(), 1)
		all := AllGather(me, p)
		if me.ID() == 1 {
			defer func() {
				if recover() == nil {
					t.Error("Local on remote pointer should panic")
				}
			}()
			Local(me, all[0])
		}
	})
}

func TestSharedVar(t *testing.T) {
	Run(testCfg(4), func(me *Rank) {
		s := NewSharedVar[int64](me)
		if me.ID() == 2 {
			s.Set(me, 42)
		}
		me.Barrier()
		if got := s.Get(me); got != 42 {
			t.Errorf("rank %d read shared var %d, want 42", me.ID(), got)
		}
		if s.Ptr().Where() != 0 {
			t.Error("shared var should live on rank 0")
		}
	})
}

func TestSharedArrayCyclic(t *testing.T) {
	// Default block size 1: element i has affinity i % THREADS (UPC).
	Run(testCfg(4), func(me *Rank) {
		sa := NewSharedArray[int64](me, 100, 1)
		for i := 0; i < 100; i++ {
			if want := i % 4; sa.OwnerOf(i) != want {
				t.Errorf("OwnerOf(%d) = %d, want %d", i, sa.OwnerOf(i), want)
			}
		}
		// Every rank writes its own elements, everyone reads everything.
		for i := me.ID(); i < 100; i += me.Ranks() {
			sa.Set(me, i, int64(i*10))
		}
		me.Barrier()
		for i := 0; i < 100; i++ {
			if v := sa.Get(me, i); v != int64(i*10) {
				t.Errorf("rank %d: sa[%d] = %d, want %d", me.ID(), i, v, i*10)
			}
		}
	})
}

func TestSharedArrayBlocked(t *testing.T) {
	// Block size 10 over 3 ranks, 50 elements: blocks 0..4 dealt
	// round-robin -> ranks 0,1,2,0,1.
	Run(testCfg(3), func(me *Rank) {
		sa := NewSharedArray[int32](me, 50, 10)
		wantOwner := func(i int) int { return (i / 10) % 3 }
		for i := 0; i < 50; i++ {
			if sa.OwnerOf(i) != wantOwner(i) {
				t.Errorf("OwnerOf(%d) = %d, want %d", i, sa.OwnerOf(i), wantOwner(i))
			}
		}
		if me.ID() == 0 {
			for i := 0; i < 50; i++ {
				sa.Set(me, i, int32(i))
			}
		}
		me.Barrier()
		// Local slices hold exactly this rank's blocks in order:
		// rank 0 holds blocks 0,3; rank 1 blocks 1,4; rank 2 block 2.
		ls := sa.LocalSlice(me)
		wantLen := 20
		if me.ID() == 2 {
			wantLen = 10
		}
		if len(ls) != wantLen {
			t.Errorf("rank %d LocalSlice len %d, want %d", me.ID(), len(ls), wantLen)
		}
		if me.ID() == 1 {
			for k := 0; k < 10; k++ {
				if ls[k] != int32(10+k) { // block 1 = elements 10..19
					t.Errorf("rank 1 local[%d] = %d, want %d", k, ls[k], 10+k)
				}
				if ls[10+k] != int32(40+k) { // block 4 = elements 40..49
					t.Errorf("rank 1 local[%d] = %d, want %d", 10+k, ls[10+k], 40+k)
				}
			}
		}
		me.Barrier()
	})
}

func TestSharedArrayPtrPhaseFree(t *testing.T) {
	// Paper §III-B: global pointer arithmetic has no phase; Ptr(i).Add(1)
	// stays on the same rank's memory, unlike Ptr(i+1).
	Run(testCfg(4), func(me *Rank) {
		sa := NewSharedArray[int64](me, 64, 1)
		p := sa.Ptr(0) // rank 0's first local element
		q := p.Add(1)  // rank 0's second local element = global index 4
		if q.Where() != 0 {
			t.Error("phase-free Add changed rank")
		}
		if me.ID() == 0 {
			Write(me, q, 777)
		}
		me.Barrier()
		if got := sa.Get(me, 4); got != 777 {
			t.Errorf("sa[4] = %d, want 777 (pointer arithmetic mismatch)", got)
		}
	})
}

func TestCopyAllDirections(t *testing.T) {
	Run(testCfg(3), func(me *Rank) {
		src := Allocate[int32](me, me.ID(), 16)
		ls := LocalSlice(me, src, 16)
		for i := range ls {
			ls[i] = int32(me.ID()*100 + i)
		}
		all := AllGather(me, src)
		me.Barrier()
		if me.ID() == 0 {
			// Local->local.
			dst := Allocate[int32](me, 0, 16)
			Copy(me, src, dst, 16)
			if LocalSlice(me, dst, 16)[5] != 5 {
				t.Error("local copy failed")
			}
			// Remote get: rank 1 -> rank 0.
			Copy(me, all[1], dst, 16)
			if LocalSlice(me, dst, 16)[5] != 105 {
				t.Error("remote get failed")
			}
			// Remote put: rank 0 -> rank 2's buffer, then third-party
			// copy rank 1 -> rank 2.
			rdst := Allocate[int32](me, 2, 16)
			Copy(me, src, rdst, 16)
			if Read(me, rdst.Add(7)) != 7 {
				t.Error("remote put failed")
			}
			Copy(me, all[1], rdst, 16)
			if Read(me, rdst.Add(7)) != 107 {
				t.Error("third-party copy failed")
			}
		}
		me.Barrier()
	})
}

func TestAsyncCopyWithEvent(t *testing.T) {
	Run(testCfg(2), func(me *Rank) {
		buf := Allocate[float64](me, me.ID(), 32)
		all := AllGather(me, buf)
		if me.ID() == 0 {
			ls := LocalSlice(me, buf, 32)
			for i := range ls {
				ls[i] = float64(i) * 1.5
			}
			ev := NewEvent()
			AsyncCopy(me, buf, all[1], 32, ev)
			ev.Wait(me)
		}
		me.Barrier()
		if me.ID() == 1 {
			ls := LocalSlice(me, buf, 32)
			if ls[10] != 15 {
				t.Errorf("async copy payload = %v, want 15", ls[10])
			}
		}
	})
}

func TestAsyncCopyFenceCompletesImplicit(t *testing.T) {
	Run(testCfg(2), func(me *Rank) {
		buf := Allocate[int64](me, me.ID(), 8)
		all := AllGather(me, buf)
		if me.ID() == 0 {
			before := me.Clock()
			for i := 0; i < 4; i++ {
				AsyncCopy(me, buf, all[1], 8, nil)
			}
			AsyncCopyFence(me)
			if me.Clock() <= before {
				t.Error("fence should advance the clock past transfer completion")
			}
			if me.implicitN != 0 {
				t.Error("fence should clear implicit handles")
			}
		}
		me.Barrier()
	})
}

func TestEventReuse(t *testing.T) {
	Run(testCfg(2), func(me *Rank) {
		buf := Allocate[int64](me, me.ID(), 4)
		all := AllGather(me, buf)
		ev := NewEvent()
		for iter := 0; iter < 5; iter++ {
			if me.ID() == 0 {
				AsyncCopy(me, buf, all[1], 4, ev)
				ev.Wait(me)
			}
			me.Barrier()
		}
	})
}

func TestOverlapBeatsBlocking(t *testing.T) {
	// Two independent transfers overlapped with async_copy should finish
	// in less virtual time than two blocking copies (the reason
	// async_copy exists, paper §III-D).
	const n = 1 << 16
	overlap := Run(testCfg(3), func(me *Rank) {
		buf := Allocate[byte](me, me.ID(), n)
		all := AllGather(me, buf)
		if me.ID() == 0 {
			AsyncCopy(me, buf, all[1], n, nil)
			AsyncCopy(me, buf, all[2], n, nil)
			AsyncCopyFence(me)
		}
	})
	blocking := Run(testCfg(3), func(me *Rank) {
		buf := Allocate[byte](me, me.ID(), n)
		all := AllGather(me, buf)
		if me.ID() == 0 {
			Copy(me, buf, all[1], n)
			Copy(me, buf, all[2], n)
		}
	})
	if overlap.VirtualNs >= blocking.VirtualNs {
		t.Errorf("overlapped %v ns should beat blocking %v ns", overlap.VirtualNs, blocking.VirtualNs)
	}
}

func TestReadWriteSlice(t *testing.T) {
	Run(testCfg(2), func(me *Rank) {
		buf := Allocate[uint16](me, me.ID(), 64)
		all := AllGather(me, buf)
		if me.ID() == 0 {
			out := make([]uint16, 64)
			for i := range out {
				out[i] = uint16(i * 3)
			}
			WriteSlice(me, all[1], out)
			in := make([]uint16, 64)
			ReadSlice(me, all[1], in)
			for i := range in {
				if in[i] != out[i] {
					t.Errorf("slice round trip at %d: %d != %d", i, in[i], out[i])
				}
			}
		}
		me.Barrier()
	})
}
