package core

import "upcxx/internal/gasnet"

// Runtime-services API: the narrow surface sibling substrates build on,
// playing the role direct GASNet calls play for libraries layered over
// real UPC++ (the multidimensional array library, the MPI baseline).
// Application code should prefer the high-level operations.

// AM injects an active message executing fn on the target rank's
// goroutine, charging standard AM costs for a payload of the given size.
// fn must not block (it may send further messages).
func (r *Rank) AM(target, bytes int, fn func(tgt *Rank)) {
	r.noWire("AM", target)
	job := r.job
	r.ep.Send(target, bytes, func(tep *gasnet.Endpoint) {
		fn(job.ranks[tep.Rank])
	})
}

// AMAt injects an active message with an explicit modeled arrival time,
// for substrates that account their own protocol costs (e.g. the
// two-sided MPI baseline's eager/rendezvous protocols).
func (r *Rank) AMAt(target int, arrival float64, bytes int, fn func(tgt *Rank)) {
	r.noWire("AMAt", target)
	job := r.job
	r.ep.SendAt(target, arrival, bytes, func(tep *gasnet.Endpoint) {
		fn(job.ranks[tep.Rank])
	})
}

// WaitUntil services incoming tasks until pred() is true — and, on a
// wire job, conduit traffic too, with the aggregation layer flushed
// first (so a buffered request whose reply satisfies pred cannot
// deadlock the wait). In-process, any cross-rank state change that
// makes pred true must be followed by a WakeAt (or an ordinary
// message) to this rank, or the wait may not terminate.
func (r *Rank) WaitUntil(pred func() bool) { r.waitProgress(pred) }

// WakeAt sends a no-op message unblocking a WaitUntil on the target at
// the given modeled arrival time.
func (r *Rank) WakeAt(target int, arrival float64) { r.ep.Wake(target, arrival) }

// ExternalWaker returns a function that, called from ANY goroutine,
// makes this rank's blocked WaitUntil re-evaluate its predicate
// promptly. It is the handoff seam between non-SPMD threads (an HTTP
// server's handler goroutines, a signal handler) and the rank's
// progress loop: publish work where the predicate can see it, then
// call the waker. On backends without the wakeup extension
// (ProcConduit) it returns a harmless no-op — those backends' waits
// are driven by modeled messages (WakeAt) instead.
func (r *Rank) ExternalWaker() func() {
	if w := r.caps.Waker; w != nil {
		return w.Wake
	}
	return func() {}
}

// Now returns the rank's current virtual time in nanoseconds (alias of
// Clock, reading more naturally in timing expressions).
func (r *Rank) Now() float64 { return r.ep.Clock.Now() }

// AdvanceTo moves this rank's virtual clock forward to t (never
// backwards).
func (r *Rank) AdvanceTo(t float64) { r.ep.Clock.AdvanceTo(t) }

// Register adds n pending completions to ev, for substrates implementing
// their own event-completing protocols (e.g. the array library's
// asynchronous ghost copies).
func Register(ev *Event, n int) { ev.register(n) }

// SignalAt marks one registered completion of ev at virtual time done;
// from is the rank whose goroutine delivers the signal.
func SignalAt(ev *Event, done float64, from *Rank) { ev.signal(done, from) }

// SignalNow registers and immediately signals one completion of ev — the
// degenerate "operation was a no-op" case.
func SignalNow(ev *Event, from *Rank) {
	if ev == nil {
		return
	}
	ev.register(1)
	ev.signal(from.Now(), from)
}

// The Completer analogs, for substrates whose protocols complete into
// any completion object (event, promise, Onto set) — the ndarray
// library's asynchronous ghost copies use these.

// RegisterWith records n more pending operations with the completion
// object (nil-safe).
func RegisterWith(c Completer, me *Rank, n int) {
	if c = normCompleter(c); c != nil {
		c.compRegister(me, n)
	}
}

// CompleteAt credits one completion at modeled time t; sig is the rank
// whose goroutine delivers it (nil-safe).
func CompleteAt(c Completer, t float64, sig *Rank) {
	if c = normCompleter(c); c != nil {
		c.compComplete(t, sig)
	}
}

// CompleteNow registers and immediately completes one operation — the
// no-op-operation case (nil-safe).
func CompleteNow(c Completer, me *Rank) { completeNow(c, me) }
