package core

import (
	"strings"
	"testing"

	"upcxx/internal/rpc"
)

func TestThenChainsValues(t *testing.T) {
	Run(testCfg(2), func(me *Rank) {
		if me.ID() == 0 {
			f := AsyncFuture(me, 1, func(tgt *Rank) int { return tgt.ID() + 10 })
			g := Then(f, func(v int) int { return v * 2 })
			h := Then(g, func(v int) string {
				if v != 22 {
					t.Errorf("second link saw %d, want 22", v)
				}
				return "done"
			})
			if got := h.Get(); got != "done" {
				t.Errorf("chain result %q", got)
			}
		}
		me.Barrier()
	})
}

func TestThenOnResolvedFutureRunsInline(t *testing.T) {
	Run(testCfg(2), func(me *Rank) {
		if me.ID() == 0 {
			f := AsyncFuture(me, 1, func(*Rank) int { return 7 })
			f.Get() // resolve first
			ran := false
			Then(f, func(v int) struct{} {
				if v != 7 {
					t.Errorf("late continuation saw %d", v)
				}
				ran = true
				return struct{}{}
			})
			if !ran {
				t.Error("continuation on a resolved future did not run inline")
			}
		}
		me.Barrier()
	})
}

func TestThenAsyncReceivesRankHandle(t *testing.T) {
	Run(testCfg(2), func(me *Rank) {
		if me.ID() == 0 {
			f := AsyncFuture(me, 1, func(*Rank) int { return 3 })
			g := ThenAsync(f, func(r *Rank, v int) int {
				if r.ID() != 0 {
					t.Errorf("continuation ran with rank %d handle, want owner 0", r.ID())
				}
				return v + r.Ranks()
			})
			if got := g.Get(); got != 5 {
				t.Errorf("ThenAsync result %d, want 5", got)
			}
		}
		me.Barrier()
	})
}

func TestWhenAllJoins(t *testing.T) {
	Run(testCfg(4), func(me *Rank) {
		if me.ID() == 0 {
			fs := make([]*Future[int], 3)
			for i := range fs {
				tgt := i + 1
				fs[i] = AsyncFuture(me, tgt, func(r *Rank) int { return r.ID() * r.ID() })
			}
			vals := WhenAll(fs...).Get()
			for i, v := range vals {
				if want := (i + 1) * (i + 1); v != want {
					t.Errorf("WhenAll[%d] = %d, want %d", i, v, want)
				}
			}
		}
		me.Barrier()
	})
}

func TestWhenAnyRaces(t *testing.T) {
	Run(testCfg(3), func(me *Rank) {
		if me.ID() == 0 {
			a := AsyncFuture(me, 1, func(*Rank) int { return 1 })
			b := AsyncFuture(me, 2, func(*Rank) int { return 2 })
			v := WhenAny(a, b).Get()
			if v != 1 && v != 2 {
				t.Errorf("WhenAny = %d, want one of the inputs", v)
			}
			// Losers still resolve.
			a.Get()
			b.Get()
		}
		me.Barrier()
	})
}

// TestFinishWaitsForContinuations is the acceptance criterion: a Finish
// surrounding a future chain waits for every continuation, including
// links attached inside other continuations (which run during the
// Finish drain, after the body returned).
func TestFinishWaitsForContinuations(t *testing.T) {
	Run(testCfg(4), func(me *Rank) {
		if me.ID() == 0 {
			depth := 0
			Finish(me, func() {
				var chain func(v int)
				chain = func(v int) {
					if v >= 5 {
						return
					}
					f := AsyncFuture(me, 1+v%3, func(*Rank) int { return v + 1 })
					Then(f, func(u int) struct{} {
						depth = u
						chain(u) // attach the next link from inside a continuation
						return struct{}{}
					})
				}
				chain(0)
			})
			if depth != 5 {
				t.Errorf("Finish returned with chain at depth %d, want 5", depth)
			}
		}
		me.Barrier()
	})
}

// TestFinishWaitsForLateAttachedContinuation covers the "attached after
// the source op completed" half of the criterion: the continuation is
// attached to an already-resolved future inside the Finish body.
func TestFinishWaitsForLateAttachedContinuation(t *testing.T) {
	Run(testCfg(2), func(me *Rank) {
		if me.ID() == 0 {
			ran := false
			Finish(me, func() {
				f := AsyncFuture(me, 1, func(*Rank) int { return 9 })
				f.Get() // resolved before the continuation exists
				Then(f, func(int) struct{} { ran = true; return struct{}{} })
			})
			if !ran {
				t.Error("Finish returned before the late continuation ran")
			}
		}
		me.Barrier()
	})
}

func TestReadWriteAsyncRoundTrip(t *testing.T) {
	Run(testCfg(2), func(me *Rank) {
		p := Allocate[uint64](me, 1, 4)
		p = Broadcast(me, p, 0)
		if me.ID() == 0 {
			WriteAsync(me, p, 0xBEEF).Wait()
			if v := ReadAsync(me, p).Get(); v != 0xBEEF {
				t.Errorf("ReadAsync = %#x, want 0xBEEF", v)
			}
		}
		me.Barrier()
	})
}

func TestReadAsyncThenOverlap(t *testing.T) {
	// Issue N reads back to back, then consume: the modeled cost must
	// be far below N sequential round trips (overlap in virtual time).
	st := Run(testCfg(2), func(me *Rank) {
		n := 32
		p := Allocate[uint64](me, 1, n)
		p = Broadcast(me, p, 0)
		if me.ID() == 1 {
			for i := 0; i < n; i++ {
				Write(me, p.Add(i), uint64(i)*3)
			}
		}
		me.Barrier()
		if me.ID() == 0 {
			sum := uint64(0)
			Finish(me, func() {
				for i := 0; i < n; i++ {
					f := ReadAsync(me, p.Add(i))
					Then(f, func(v uint64) struct{} { sum += v; return struct{}{} })
				}
			})
			want := uint64(0)
			for i := 0; i < n; i++ {
				want += uint64(i) * 3
			}
			if sum != want {
				t.Errorf("overlapped sum = %d, want %d", sum, want)
			}
		}
		me.Barrier()
	})
	if st.VirtualNs <= 0 {
		t.Error("reads should cost virtual time")
	}
}

func TestCopyAsyncAndReadSliceAsync(t *testing.T) {
	Run(testCfg(3), func(me *Rank) {
		n := 16
		src := Allocate[uint64](me, 1, n)
		dst := Allocate[uint64](me, 2, n)
		src = Broadcast(me, src, 0)
		dst = Broadcast(me, dst, 0)
		if me.ID() == 1 {
			for i := 0; i < n; i++ {
				Write(me, src.Add(i), uint64(i)+100)
			}
		}
		me.Barrier()
		if me.ID() == 0 {
			CopyAsync(me, src, dst, n).Wait() // fully remote pair
			got := make([]uint64, n)
			out := ReadSliceAsync(me, dst, got).Get()
			for i, v := range out {
				if v != uint64(i)+100 {
					t.Errorf("dst[%d] = %d, want %d", i, v, i+100)
				}
			}
		}
		me.Barrier()
	})
}

func TestPromiseOntoCombinations(t *testing.T) {
	Run(testCfg(2), func(me *Rank) {
		p := Allocate[uint64](me, 1, 8)
		p = Broadcast(me, p, 0)
		if me.ID() == 0 {
			// One promise gathering several operations, combined with a
			// legacy event through Onto.
			pr := NewPromise(me)
			ev := NewEvent()
			AsyncCopy(me, p, p.Add(4), 2, Onto(pr, ev))
			WriteSliceAsync(me, p, []uint64{1, 2}, pr)
			done := pr.Finalize()
			done.Wait()
			if !ev.Test(me) {
				t.Error("event leg of Onto did not fire")
			}
			if !done.Ready() {
				t.Error("promise future not resolved after Finalize+Wait")
			}
		}
		me.Barrier()
	})
}

func TestOntoToFinishAttachesCopies(t *testing.T) {
	Run(testCfg(2), func(me *Rank) {
		p := Allocate[uint64](me, 1, 2)
		p = Broadcast(me, p, 0)
		if me.ID() == 0 {
			// AsyncCopy historically bypasses Finish (implicit handle
			// set); ToFinish opts it in.
			Finish(me, func() {
				WriteSliceAsync(me, p, []uint64{5, 6}, ToFinish())
			})
			got := make([]uint64, 2)
			ReadSlice(me, p, got)
			if got[0] != 5 || got[1] != 6 {
				t.Errorf("ToFinish copy landed %v", got)
			}
		}
		me.Barrier()
	})
}

func TestAsyncTaskOntoPromise(t *testing.T) {
	Run(testCfg(3), func(me *Rank) {
		if me.ID() == 0 {
			pr := NewPromise(me)
			AsyncTask(me, OnRanks(1, 2), ttValue, rpc.U64s(7), Onto(pr))
			pr.Finalize().Wait()
		}
		me.Barrier()
	})
}

func TestSignalStillWorksThroughSeam(t *testing.T) {
	Run(testCfg(2), func(me *Rank) {
		if me.ID() == 0 {
			ev := NewEvent()
			ran := false
			Async(me, On(1), func(*Rank) { ran = true }, Signal(ev))
			ev.Wait(me)
			if !ran {
				t.Error("Signal event fired before the task ran")
			}
		}
		me.Barrier()
	})
}

func TestFutureGetFromWrongRankPanics(t *testing.T) {
	fch := make(chan *Future[int], 1)
	Run(testCfg(2), func(me *Rank) {
		if me.ID() == 0 {
			fch <- AsyncFuture(me, 1, func(*Rank) int { return 1 })
		}
		me.Barrier()
		if me.ID() == 1 {
			f := <-fch
			func() {
				defer func() {
					p := recover()
					if p == nil {
						t.Error("Future.Get from the wrong rank's goroutine did not panic")
						return
					}
					msg, _ := p.(string)
					if !strings.Contains(msg, "owned by rank 0") {
						t.Errorf("panic does not name the owning rank: %v", p)
					}
				}()
				f.Get()
			}()
		}
		me.Barrier()
	})
}

func TestResolvedFutureSeedsChain(t *testing.T) {
	Run(testCfg(1), func(me *Rank) {
		f := Resolved(me, 21)
		if v := Then(f, func(v int) int { return v * 2 }).Get(); v != 42 {
			t.Errorf("Resolved chain = %d, want 42", v)
		}
	})
}
