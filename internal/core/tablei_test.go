package core

import "testing"

// TestTableI walks Table I of the paper: every UPC programming idiom has
// a UPC++ equivalent, and here a Go equivalent. One assertion per row.
func TestTableI(t *testing.T) {
	Run(testCfg(4), func(me *Rank) {
		// THREADS / ranks().
		if me.Ranks() != 4 {
			t.Error("ranks()")
		}
		// MYTHREAD / myrank().
		if me.ID() < 0 || me.ID() >= 4 {
			t.Error("myrank()")
		}
		// shared Type v -> shared_var<Type> v.
		v := NewSharedVar[int64](me)
		if me.ID() == 0 {
			v.Set(me, 5)
		}
		me.Barrier()
		if v.Get(me) != 5 {
			t.Error("shared_var")
		}
		// shared [BS] Type A[size] -> shared_array<Type, BS> A(size).
		a := NewSharedArray[int64](me, 16, 2)
		// shared Type *p -> global_ptr<Type> p.
		p := a.Ptr(0)
		if p.IsNull() {
			t.Error("global_ptr")
		}
		// upc_alloc -> allocate<Type>(...).
		q := Allocate[int64](me, me.ID(), 4)
		// upc_memcpy -> copy<Type>(...).
		if me.ID() == 0 {
			Write(me, q, 9)
			Copy(me, q, a.Ptr(0), 1)
			if a.Get(me, 0) != 9 {
				t.Error("copy")
			}
		}
		// upc_barrier / barrier() and upc_fence / fence().
		me.Barrier()
		Fence(me)
		// upc_forall(...; affinity_cond) -> for + affinity test.
		count := 0
		for i := 0; i < a.Len(); i++ {
			if a.OwnerOf(i) == me.ID() { // the affinity condition
				count++
			}
		}
		if count != 4 { // 16 elements, BS 2, 4 ranks -> 2 blocks = 4 elems each
			t.Errorf("forall affinity visited %d elements, want 4", count)
		}
		me.Barrier()
	})
}
