package core

import (
	"fmt"

	"upcxx/internal/gasnet"
	"upcxx/internal/obs"
	"upcxx/internal/rpc"
)

// Registered-function remote invocation: the wire-capable form of the
// paper's §III-G async vocabulary. A Go closure cannot cross an address
// space, so multi-process jobs ship a *registered* function instead —
// a name registered once per process (RegisterTask) resolving to a
// dense wire index, invoked with POD-encoded arguments (AsyncTask /
// AsyncTaskFuture). On the in-process backend the same calls take the
// direct path through the engine, closures and all, so one program
// runs unmodified on both conduits; on the wire backend requests,
// replies and completion acks all ride the aggregation batch plane, so
// fine-grained task storms coalesce like any other small operation.
//
// Completion semantics (both backends):
//
//   - A Signal event fires when the task's *body* has run (on the wire:
//     when the executor's reply arrives). An AsyncTaskFuture resolves
//     with the body's return bytes at the same point.
//   - A surrounding Finish waits for the task's whole *subtree*: tasks
//     the body spawned (transitively — an RPC may spawn RPCs), and the
//     aggregated operations it issued. The executor runs each task
//     under an implicit scope and sends its done-ack only when that
//     scope drains; acks cascade up the spawn tree, so the count at
//     the root can never hit zero while a descendant is in flight.
//   - Task bodies run inside the target's progress dispatch and must
//     not block (no Barrier, no Wait, no blocking reads): like an
//     active-message handler, a body performs local work and issues
//     asynchronous operations — further AsyncTasks, Agg* ops — which
//     the runtime tracks and flushes.

// Aggregated-AM handler ids below reservedAMLimit belong to the
// runtime; RegisterAMHandler rejects them.
const (
	amRPCReq  uint16 = 0x01 // registered-task request (rpc.EncodeRequest)
	amRPCRep  uint16 = 0x02 // body-completion reply (rpc.EncodeReply)
	amRPCDone uint16 = 0x03 // subtree-quiesced ack (rpc.EncodeDone)

	reservedAMLimit uint16 = 0x10
)

// TaskBody is a registered task's implementation: it runs on the
// target rank's goroutine with the target's handle, the calling rank,
// and the POD-encoded arguments (valid only for the duration of the
// call). The returned bytes travel back when the caller asked for a
// reply (AsyncTaskFuture, or AsyncTask with a Signal event); bodies
// may return nil otherwise. Bodies must not block.
type TaskBody = rpc.Fn[*Rank]

// Task is the portable handle of a registered function; see
// RegisterTask.
type Task = rpc.Task

// taskRegistry is process-global, like a GASNet handler table: every
// process of a wire job registers the same tasks in the same order
// (package init time is the natural place), so indices agree across
// address spaces. In-process jobs share it trivially.
var taskRegistry = rpc.NewRegistry[*Rank]()

// RegisterTask registers fn under a unique name and returns the handle
// AsyncTask / AsyncTaskFuture launch it by. Register once per process,
// before the job starts — typically from a package init or a
// package-level var — and in the same order everywhere; duplicate
// names panic.
func RegisterTask(name string, fn TaskBody) Task {
	return taskRegistry.Register(name, fn)
}

// pendingCall is one outstanding reply on the calling rank: a future
// awaiting the body's return bytes, a completion object awaiting body
// completion, or both. target is the executor rank, so a death sweep
// can fail exactly the calls the corpse owed. A retried call (launched
// under a RetryPolicy) carries its finish scope here instead of a
// done-ack id — the credit rides the reply, see wireTaskRetry.
type pendingCall struct {
	fut     *Future[[]byte]
	done    Completer
	target  int
	fs      *finishScope
	retried bool
	// t0 is the obs-clock issue time, captured only while tracing is
	// on; the reply observes the round trip into the rtt histogram.
	t0 uint64
}

// installRPC wires the runtime's reserved AM handlers into this rank's
// dispatch table. Called for wire-backed ranks (the in-process backend
// dispatches tasks directly through the engine and never consults the
// table for these ids).
func (r *Rank) installRPC() {
	if r.amHandlers == nil {
		r.amHandlers = make(map[uint16]AMHandler)
	}
	r.amHandlers[amRPCReq] = func(me *Rank, from int, p []byte) { me.rpcRequest(from, p) }
	r.amHandlers[amRPCRep] = func(me *Rank, _ int, p []byte) { me.rpcReply(p) }
	r.amHandlers[amRPCDone] = func(me *Rank, from int, p []byte) { me.rpcDone(from, p) }
}

// sysSend ships a runtime-internal protocol message on the aggregation
// plane. Unlike AggSend it performs no finish/event registration — the
// task protocol does its own accounting — and so may be called from
// completion callbacks without re-entering scope bookkeeping.
func (r *Rank) sysSend(to int, id uint16, payload []byte) {
	if to == r.id {
		rankApplier{r: r, from: r.id}.AM(id, payload)
		return
	}
	r.agg.Send(to, id, payload, nil)
}

// rpcRequest executes one incoming registered-task request. It runs on
// this rank's SPMD goroutine, inside batch application.
func (r *Rank) rpcRequest(from int, payload []byte) {
	req, err := rpc.DecodeRequest(payload)
	if err != nil {
		panic(fmt.Errorf("upcxx: rank %d: corrupt task request from rank %d: %w", r.id, from, err))
	}
	r.ep.Stats.Tasks.Add(1)
	var onBody func([]byte, float64)
	if req.Flags&rpc.FlagReply != 0 {
		callID := req.CallID
		onBody = func(reply []byte, _ float64) {
			r.sysSend(from, amRPCRep, rpc.EncodeReply(callID, reply))
		}
	}
	var onDone func(float64, *Rank)
	if req.DoneID != 0 {
		doneID := req.DoneID
		onDone = func(_ float64, _ *Rank) {
			r.sysSend(from, amRPCDone, rpc.EncodeDone(doneID))
		}
	}
	r.execTask(from, req.Task, req.Args, onBody, onDone)
}

// rpcReply resolves one pending call with the body's return bytes.
func (r *Rank) rpcReply(payload []byte) {
	callID, data, err := rpc.DecodeReply(payload)
	if err != nil {
		panic(fmt.Errorf("upcxx: rank %d: corrupt task reply: %w", r.id, err))
	}
	pc := r.calls[callID]
	if pc == nil {
		// A reply for a call that was already retired: a duplicate from
		// a retried request whose earlier attempt also got through, or a
		// straggler for a call the failure path already failed. Expected
		// under retries — drop it. Any other unknown id is corruption.
		if _, void := r.voidCalls[callID]; void {
			return
		}
		panic(fmt.Errorf("upcxx: rank %d: task reply for unknown call %d", r.id, callID))
	}
	delete(r.calls, callID)
	if pc.t0 != 0 {
		r.rpcRTT.Observe(int64(obs.NowNs() - pc.t0))
	}
	t := r.Clock()
	if pc.retried {
		// Further attempts may still be in flight; their replies must be
		// dropped, not panicked on.
		r.voidCall(callID)
	}
	if pc.fut != nil {
		// The payload aliases the batch buffer; the future outlives it.
		// Resolution fires attached continuations here, inside batch
		// application on the owner's goroutine.
		pc.fut.resolve(append([]byte(nil), data...), t, r)
	}
	if pc.done != nil {
		pc.done.compComplete(t, r)
	}
	if pc.retried && pc.fs != nil {
		// Retried calls carry no done-ack id; the finish credit rides
		// the (first) reply instead.
		pc.fs.childDone(t, r)
	}
}

// voidCall marks a retired call id whose late replies must be ignored.
func (r *Rank) voidCall(callID uint64) {
	if r.voidCalls == nil {
		r.voidCalls = make(map[uint64]struct{})
	}
	r.voidCalls[callID] = struct{}{}
}

// failCall retires one pending call with a failure: the future fails
// typed, the completion object completes (events observe completion,
// not success), and a retried call's finish credit is restored. Late
// replies for the id are dropped thereafter. No-op if the call already
// completed.
func (r *Rank) failCall(callID uint64, err error) {
	pc := r.calls[callID]
	if pc == nil {
		return
	}
	delete(r.calls, callID)
	r.voidCall(callID)
	t := r.Clock()
	if pc.fut != nil {
		pc.fut.fail(err, t, r)
	}
	if pc.done != nil {
		pc.done.compComplete(t, r)
	}
	if pc.retried && pc.fs != nil {
		pc.fs.childDone(t, r)
	}
}

// rpcDone credits one subtree-quiesced ack to the scope it belongs to.
func (r *Rank) rpcDone(from int, payload []byte) {
	id, err := rpc.DecodeDone(payload)
	if err != nil {
		panic(fmt.Errorf("upcxx: rank %d: corrupt done-ack from rank %d: %w", r.id, from, err))
	}
	fs := r.doneTab[id]
	if fs == nil {
		panic(fmt.Errorf("upcxx: rank %d: done-ack from rank %d for unknown scope %d", r.id, from, id))
	}
	if r.resilient {
		// The ack arrived, so the sender no longer owes it: release the
		// credit the death sweep would otherwise restore.
		if m := r.remoteSlots[from]; m != nil {
			if m[fs] > 1 {
				m[fs]--
			} else {
				delete(m, fs)
			}
		}
	}
	fs.childDone(r.Clock(), r)
}

// doneIDFor lazily assigns fs an id in this rank's done-ack table, the
// key remote executors complete it by. Wire path only; called on the
// owning rank's goroutine.
func (r *Rank) doneIDFor(fs *finishScope) uint64 {
	if fs.doneID == 0 {
		r.nextDone++
		fs.doneID = r.nextDone
		if r.doneTab == nil {
			r.doneTab = make(map[uint64]*finishScope)
		}
		r.doneTab[fs.doneID] = fs
	}
	return fs.doneID
}

// doneDrop retires a completed scope's done-ack id, if it ever had one.
func (r *Rank) doneDrop(fs *finishScope) {
	if fs.doneID != 0 {
		delete(r.doneTab, fs.doneID)
		fs.doneID = 0
	}
}

// execTask runs one registered task on this rank's goroutine: resolve
// the index, execute the body under an implicit finish scope (so tasks
// and aggregated ops the body issues defer the task's completion), and
// fire onBody when the body returns and onDone when the whole subtree
// has quiesced. A panicking body tears the job down wrapped with the
// task's name and route, following the failed-process-aborts-the-job
// model.
func (r *Rank) execTask(from int, idx uint16, args []byte,
	onBody func(reply []byte, t float64), onDone func(t float64, sig *Rank)) {
	fn, name, err := taskRegistry.Resolve(idx)
	if err != nil {
		panic(fmt.Errorf("upcxx: rank %d: task request from rank %d: %w", r.id, from, err))
	}
	rec := &finishScope{owner: r, outstanding: 1} // the body itself holds the first slot
	rec.onZero = func(t float64, sig *Rank) {
		r.doneDrop(rec)
		if onDone != nil {
			onDone(t, sig)
		}
	}
	r.finish = append(r.finish, rec)
	r.ring.Begin(obs.KRPCExec, int32(from), uint32(len(args)))
	var reply []byte
	func() {
		defer func() {
			if p := recover(); p != nil {
				r.finish = r.finish[:len(r.finish)-1]
				panic(fmt.Errorf("upcxx: task %q from rank %d panicked on rank %d: %v",
					name, from, r.id, p))
			}
		}()
		reply = fn(r, from, args)
	}()
	r.ring.End(obs.KRPCExec)
	r.finish = r.finish[:len(r.finish)-1]
	if onBody != nil {
		onBody(reply, r.Clock())
	}
	rec.childDone(r.Clock(), r) // release the body's slot; fires onZero when the subtree is dry
}

// mustTask validates a launch handle.
func mustTask(t Task) uint16 {
	if !t.Valid() {
		panic("upcxx: AsyncTask with the zero Task (register the function with RegisterTask first)")
	}
	return t.Index()
}

// wireTask ships one registered-task request over the aggregation
// plane. done and fut attach to the executor's reply; fs receives the
// done-ack when the task's subtree quiesces.
func (r *Rank) wireTask(target int, idx uint16, args []byte,
	done Completer, fut *Future[[]byte], fs *finishScope) {
	if r.agg == nil {
		panic(fmt.Errorf("upcxx: rank %d: conduit has no batch plane for task requests: %w",
			r.id, gasnet.ErrNotWireCapable))
	}
	r.ring.Instant(obs.KRPCDispatch, int32(target), uint32(len(args)), uint64(idx))
	var flags byte
	var callID uint64
	if done != nil || fut != nil {
		flags |= rpc.FlagReply
		r.nextCall++
		callID = r.nextCall
		if r.calls == nil {
			r.calls = make(map[uint64]*pendingCall)
		}
		pc := &pendingCall{fut: fut, done: done, target: target}
		if r.ring != nil {
			pc.t0 = obs.NowNs()
		}
		r.calls[callID] = pc
	}
	var doneID uint64
	if fs != nil {
		doneID = r.doneIDFor(fs)
		if r.resilient {
			// Record the done-ack debt so the target's death can repay
			// it (markRankDead's sweep) instead of hanging the Finish.
			if r.remoteSlots == nil {
				r.remoteSlots = make(map[int]map[*finishScope]int)
			}
			m := r.remoteSlots[target]
			if m == nil {
				m = make(map[*finishScope]int)
				r.remoteSlots[target] = m
			}
			m[fs]++
		}
	}
	r.ep.Stats.AMs.Add(1)
	r.agg.Send(target, amRPCReq, rpc.EncodeRequest(idx, flags, callID, doneID, args), nil)
}

// wireTaskRetry ships a registered-task request under a RetryPolicy.
// The call always requests a reply (the reply is the per-attempt
// liveness signal), carries no done-ack id — a re-executed body must
// not double-credit the Finish, so the scope's single credit rides the
// first reply (or the failure) via pendingCall.fs — and re-sends the
// SAME call id on each attempt: the executor's body may therefore run
// more than once (at-least-once semantics; see AsyncTaskFuture).
func (r *Rank) wireTaskRetry(target int, idx uint16, args []byte,
	done Completer, fut *Future[[]byte], fs *finishScope, pol RetryPolicy) {
	if r.agg == nil {
		panic(fmt.Errorf("upcxx: rank %d: conduit has no batch plane for task requests: %w",
			r.id, gasnet.ErrNotWireCapable))
	}
	r.ring.Instant(obs.KRPCDispatch, int32(target), uint32(len(args)), uint64(idx))
	r.nextCall++
	callID := r.nextCall
	if r.calls == nil {
		r.calls = make(map[uint64]*pendingCall)
	}
	pc := &pendingCall{fut: fut, done: done, target: target, fs: fs, retried: true}
	if r.ring != nil {
		pc.t0 = obs.NowNs()
	}
	r.calls[callID] = pc
	payload := rpc.EncodeRequest(idx, rpc.FlagReply, callID, 0, args)
	r.sendCallAttempt(callID, target, payload, pol, 1)
}

// sendCallAttempt issues attempt n of a retried call and, when the
// policy carries a per-attempt deadline, arms the timer that either
// re-sends or fails the call if the reply has not landed by then.
func (r *Rank) sendCallAttempt(callID uint64, target int, payload []byte, pol RetryPolicy, attempt int) {
	if r.calls[callID] == nil {
		return // completed (or failed) while the retry timer was pending
	}
	if !r.RankAlive(target) {
		r.failCall(callID, r.deadErrFor(target))
		return
	}
	r.ep.Stats.AMs.Add(1)
	r.agg.Send(target, amRPCReq, payload, nil)
	// Ship now: the attempt deadline measures the network round trip,
	// not this rank's next age-flush.
	r.agg.FlushAll()
	if pol.AttemptTimeout <= 0 || r.rcd == nil {
		return // no deadline — only target death can fail the call
	}
	r.rcd.After(pol.AttemptTimeout, func() {
		if r.calls[callID] == nil {
			return
		}
		timeout := &gasnet.TimeoutError{Rank: target, After: pol.AttemptTimeout}
		if attempt >= pol.MaxAttempts || !pol.retryable(timeout) {
			r.failCall(callID, timeout)
			return
		}
		r.sendCallAttempt(callID, target, payload, pol, attempt+1)
	})
}

// AsyncTask launches the registered task on every rank of place with
// the given POD-encoded arguments — the wire-capable form of the
// paper's async(place)(function, args...). args are copied at issue
// time. The launch is non-blocking; completion is observed through a
// surrounding Finish (which waits for the task's whole subtree), a
// Signal event (which fires when the body has run), or AsyncTaskFuture.
// The After and TaskFlops options work as with Async.
func AsyncTask(me *Rank, place Place, t Task, args []byte, opts ...AsyncOpt) {
	idx := mustTask(t)
	cfg := asyncCfg{payload: taskWireBytes(len(args))}
	for _, o := range opts {
		o.applyAsync(&cfg)
	}
	args = append([]byte(nil), args...)
	me.enter()
	fs := me.currentFinish()
	if fs != nil {
		fs.add(len(place.ranks))
	}
	if cfg.done != nil {
		cfg.done.compRegister(me, len(place.ranks))
	}
	me.exit()

	launchOne := func(from *Rank, target int, arrival float64) {
		if me.onWire() && target != me.id {
			me.wireTask(target, idx, args, cfg.done, nil, fs)
			return
		}
		me.launchTaskInProc(from, target, arrival, idx, args, cfg,
			func(_ []byte, done float64, tgt *Rank) {
				if cfg.done != nil {
					cfg.done.compComplete(done, tgt)
				}
			}, fs)
	}
	me.fanOut(place, cfg, launchOne)
}

// AsyncTaskFuture launches the registered task on the target rank and
// returns a future resolving with the body's return bytes — the wire-
// capable future<T> f = async(place)(function, args...). Decode the
// reply with the same codec the task encodes it with (rpc.U64 and
// friends for word payloads). The After, Signal and TaskFlops options
// work as with AsyncTask; with After, the future resolves only after
// the dependency has fired and the deferred task has replied.
//
// With WithRetry (resilient wire jobs), a silent attempt — no reply
// within the policy's AttemptTimeout — re-sends the request, and the
// future fails typed (ErrTimeout / ErrRankDead) when the policy is
// exhausted or the target dies. A re-sent request may execute the body
// again if the first request was merely slow, so retried task launches
// have at-least-once semantics: bodies should be idempotent, or the
// caller must tolerate duplicate execution. A surrounding Finish waits
// for the (first) reply of a retried call, not the executor's subtree.
func AsyncTaskFuture(me *Rank, target int, t Task, args []byte, opts ...AsyncOpt) *Future[[]byte] {
	idx := mustTask(t)
	cfg := asyncCfg{payload: taskWireBytes(len(args))}
	for _, o := range opts {
		o.applyAsync(&cfg)
	}
	args = append([]byte(nil), args...)
	f := newFuture[[]byte](me)
	me.enter()
	fs := me.currentFinish()
	if fs != nil {
		fs.add(1)
	}
	if cfg.done != nil {
		cfg.done.compRegister(me, 1)
	}
	me.exit()

	job := me.job
	me.fanOut(Place{ranks: []int{target}}, cfg, func(from *Rank, target int, arrival float64) {
		if me.onWire() && target != me.id {
			if cfg.retry != nil {
				me.wireTaskRetry(target, idx, args, cfg.done, f, fs, cfg.retry.withDefaults())
				return
			}
			me.wireTask(target, idx, args, cfg.done, f, fs)
			return
		}
		me.launchTaskInProc(from, target, arrival, idx, args, cfg,
			func(reply []byte, done float64, tgt *Rank) {
				repArrival := done + job.model.Lat(tgt.id, me.id) + job.model.WireNs(len(reply))
				tgt.ep.SendAt(me.id, repArrival, len(reply), func(rep *gasnet.Endpoint) {
					f.resolve(reply, rep.Clock.Now(), me)
				})
				if cfg.done != nil {
					cfg.done.compComplete(done, tgt)
				}
			}, fs)
	})
	return f
}

// launchTaskInProc injects one registered-task execution through the
// engine (the in-process backend, and a wire rank's self-targeted
// fast path): an active message whose handler dispatches the body
// with modeled dispatch/compute costs, body completion reported
// through onBody and subtree completion credited straight to fs.
func (r *Rank) launchTaskInProc(from *Rank, target int, arrival float64,
	idx uint16, args []byte, cfg asyncCfg,
	onBody func(reply []byte, done float64, tgt *Rank), fs *finishScope) {
	job := r.job
	caller := r.id
	from.ring.Instant(obs.KTaskDispatch, int32(target), uint32(len(args)), uint64(idx))
	from.ep.SendAt(target, arrival, cfg.payload, func(tep *gasnet.Endpoint) {
		tgt := job.ranks[tep.Rank]
		tep.Clock.Advance(job.model.TaskDispatchCost())
		if cfg.flops > 0 {
			tgt.Work(cfg.flops)
		}
		tgt.execTask(caller, idx, args,
			func(reply []byte, done float64) {
				if onBody != nil {
					onBody(reply, done, tgt)
				}
			},
			func(done float64, sig *Rank) {
				if fs != nil {
					fs.childDone(done, sig)
				}
			})
	})
}

// fanOut performs the launch across place's ranks, immediately or
// deferred behind cfg.after — the shared dependency machinery of
// Async and AsyncTask.
func (r *Rank) fanOut(place Place, cfg asyncCfg, launchOne func(from *Rank, target int, arrival float64)) {
	job := r.job
	if cfg.after == nil {
		for _, t := range place.ranks {
			t0 := r.Clock()
			r.ep.Clock.Advance(job.model.AMSendCost(cfg.payload))
			arrival := job.model.AMArrival(t0, r.id, t, cfg.payload)
			launchOne(r, t, arrival)
		}
		return
	}
	// async_after: launch when the dependency event fires. The launch
	// executes on whichever rank's goroutine delivers the final signal
	// and injects from that rank's endpoint, with arrivals modeled from
	// the fire time.
	targets := place.ranks
	cfg.after.whenFired(r, func(fireTime float64, from *Rank) {
		for _, t := range targets {
			arrival := fireTime + job.model.Lat(from.id, t) + job.model.WireNs(cfg.payload)
			launchOne(from, t, arrival)
		}
	})
}

// taskWireBytes is the modeled message size of a task request: the
// protocol header plus the encoded arguments (override with Payload).
func taskWireBytes(argLen int) int {
	return rpc.ReqHeaderBytes + argLen
}
