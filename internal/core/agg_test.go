package core

import (
	"fmt"
	"sync"
	"testing"

	"upcxx/internal/agg"
	"upcxx/internal/gasnet"
	"upcxx/internal/segment"
	"upcxx/internal/transport"
)

// runWireJob runs an n-rank wire job inside this process, one goroutine
// per rank with its own endpoint, segment and conduit over localhost
// TCP (the same shape as spmd.RunWireLocal, which cannot be imported
// from here without a cycle).
func runWireJob(t *testing.T, n, segBytes int, cfg Config, main func(me *Rank)) []Stats {
	t.Helper()
	eps := make([]*transport.TCPEndpoint, n)
	addrs := make([]string, n)
	for i := range eps {
		ep, err := transport.ListenTCP(i, n, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
		addrs[i] = ep.Addr()
	}
	stats := make([]Stats, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := eps[i].Connect(addrs); err != nil {
				t.Errorf("rank %d connect: %v", i, err)
				return
			}
			seg := segment.New(segBytes)
			cd := gasnet.NewWireConduit(eps[i], seg)
			defer cd.Close()
			stats[i] = RunWire(cfg, cd, seg, main)
			cd.Goodbye()
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	return stats
}

// aggExercise is the backend-portable Agg* workload: rank 0 writes a
// pattern into rank-1-owned elements of a cyclic shared array with
// AggPut, xors a tag on top with AggXor64, and sends counted AMs; the
// event and the barrier make everything visible, then every rank
// verifies. It returns the AM total rank `me` observed.
func aggExercise(t *testing.T, me *Rank, elems int) {
	n := me.Ranks()
	arr := NewSharedArray[uint64](me, elems, 1)
	var amSum uint64
	RegisterAMHandler(me, 40, func(tgt *Rank, from int, payload []byte) {
		amSum += uint64(payload[0]) + uint64(from)<<32
	})
	me.Barrier()

	ev := NewEvent()
	const tag = 0x5A00000000000000
	if me.ID() == 0 {
		for i := 0; i < elems; i++ {
			if arr.OwnerOf(i) == 0 {
				continue
			}
			AggPut(me, arr.Ptr(i), uint64(i)<<8, ev)
			AggXor64(me, arr.Ptr(i), tag, ev)
		}
		for k := 0; k < 10; k++ {
			AggSend(me, (k%(n-1))+1, 40, []byte{byte(k)}, ev)
		}
		ev.Wait(me)
	}
	me.Barrier()

	// Every rank verifies the elements it owns.
	for i := 0; i < elems; i++ {
		if arr.OwnerOf(i) != me.ID() || me.ID() == 0 {
			continue
		}
		if got, want := arr.Get(me, i), uint64(i)<<8^uint64(tag); got != want {
			t.Errorf("rank %d: elem %d = %#x, want %#x", me.ID(), i, got, want)
		}
	}
	var wantAM uint64
	for k := 0; k < 10; k++ {
		if (k%(n-1))+1 == me.ID() {
			wantAM += uint64(byte(k)) // all sends come from rank 0
		}
	}
	if amSum != wantAM {
		t.Errorf("rank %d: AM sum = %#x, want %#x", me.ID(), amSum, wantAM)
	}
	me.Barrier()
}

func TestAggOpsWireBackend(t *testing.T) {
	stats := runWireJob(t, 3, 1<<20, Config{}, func(me *Rank) {
		aggExercise(t, me, 96)
	})
	c := stats[0].Counters
	if c["agg_batches"] < 1 {
		t.Errorf("rank 0 shipped no aggregation batches: %v", c)
	}
	// 64 non-self puts + 64 xors + 10 AMs coalesced far below one frame
	// pair per op.
	if c["agg_ops_per_batch"] < 2 {
		t.Errorf("ops per batch = %v, want coalescing", c["agg_ops_per_batch"])
	}
	if c["wire_tx_frames_batch"] != c["agg_batches"] {
		t.Errorf("batch frames %v != batches %v", c["wire_tx_frames_batch"], c["agg_batches"])
	}
}

func TestAggOpsProcBackend(t *testing.T) {
	Run(testCfg(3), func(me *Rank) {
		aggExercise(t, me, 96)
	})
}

// TestAggFinish pins the Finish integration: aggregated ops issued in
// a Finish body are complete when Finish returns, with no explicit
// event or barrier.
func TestAggFinish(t *testing.T) {
	for _, wire := range []bool{false, true} {
		t.Run(fmt.Sprintf("wire=%v", wire), func(t *testing.T) {
			body := func(me *Rank) {
				var got uint64
				RegisterAMHandler(me, 41, func(tgt *Rank, from int, payload []byte) {
					got += uint64(payload[0])
				})
				v := NewSharedVar[uint64](me)
				me.Barrier()
				if me.ID() == me.Ranks()-1 {
					Finish(me, func() {
						AggPut(me, v.Ptr(), 7, nil)
						for k := 0; k < 5; k++ {
							AggSend(me, 0, 41, []byte{byte(k + 1)}, nil)
						}
					})
					// Finish returned: the put must be visible at rank 0
					// without any barrier.
					if got := Read(me, v.Ptr()); got != 7 {
						t.Errorf("AggPut not visible after Finish: %d", got)
					}
				}
				me.Barrier()
				if me.ID() == 0 && got != 1+2+3+4+5 {
					t.Errorf("rank 0 AM sum = %d, want 15", got)
				}
				me.Barrier()
			}
			if wire {
				runWireJob(t, 2, 1<<20, Config{}, body)
			} else {
				Run(testCfg(2), body)
			}
		})
	}
}

// TestAggSameDestOrdering pins per-destination FIFO: later aggregated
// ops to one destination overwrite earlier ones deterministically,
// including across a size-triggered flush boundary.
func TestAggSameDestOrdering(t *testing.T) {
	runWireJob(t, 2, 1<<20, Config{Agg: agg.Config{MaxOps: 3}}, func(me *Rank) {
		v := NewSharedVar[uint64](me)
		me.Barrier()
		if me.ID() == 1 {
			for i := 1; i <= 20; i++ { // crosses several MaxOps=3 flushes
				AggPut(me, v.Ptr(), uint64(i), nil)
			}
		}
		me.Barrier()
		if got := v.Get(me); got != 20 {
			t.Errorf("rank %d sees %d, want the last write 20", me.ID(), got)
		}
		me.Barrier()
	})
}

// TestAggRequestReplyStorm pins the reentrant-wait wake protocol: a
// rank draining its in-flight sends at a barrier keeps executing
// incoming requests, whose handlers register NEW sends with the drain
// event after its wake may already have been consumed — the event must
// re-wake the waiter on every fire or the drain sleeps forever (a
// deadlock this exact workload once triggered).
func TestAggRequestReplyStorm(t *testing.T) {
	for _, wire := range []bool{false, true} {
		t.Run(fmt.Sprintf("wire=%v", wire), func(t *testing.T) {
			body := func(me *Rank) {
				var answers int
				RegisterAMHandler(me, 50, func(tgt *Rank, from int, payload []byte) {
					AggSend(tgt, from, 51, payload, nil) // reply from inside the handler
				})
				RegisterAMHandler(me, 51, func(tgt *Rank, from int, payload []byte) { answers++ })
				me.Barrier()
				other := (me.ID() + 1) % me.Ranks()
				const reqs = 200
				for i := 0; i < reqs; i++ {
					AggSend(me, other, 50, []byte{1}, nil)
				}
				me.WaitUntil(func() bool { return answers == reqs })
				me.Barrier()
				me.Barrier()
			}
			if wire {
				runWireJob(t, 2, 1<<20, Config{}, body)
			} else {
				Run(testCfg(2), body)
			}
		})
	}
}

// TestAggFlushBeforeBlockingOp pins the pre-block flush: an aggregated
// op still sitting in a buffer must ship before a blocking conduit
// operation waits, because the peer able to unblock us may itself be
// waiting on that op. Here rank 1 buffers one AM (far below MaxOps)
// and then blocks acquiring a lock rank 0 holds; rank 0 releases only
// after the AM arrives — without the flush both ranks hang.
func TestAggFlushBeforeBlockingOp(t *testing.T) {
	runWireJob(t, 2, 1<<20, Config{}, func(me *Rank) {
		var sawPing bool
		RegisterAMHandler(me, 42, func(*Rank, int, []byte) { sawPing = true })
		var lk Lock
		if me.ID() == 0 {
			lk = NewLock(me)
			lk.Acquire(me)
		}
		lk = Broadcast(me, lk, 0)
		me.Barrier()
		if me.ID() == 0 {
			me.WaitUntil(func() bool { return sawPing })
			lk.Release(me)
		} else {
			AggSend(me, 0, 42, []byte{1}, nil) // buffered: 1 op << MaxOps
			lk.Acquire(me)                     // must flush the AM first
			lk.Release(me)
		}
		me.Barrier()
	})
}

// TestAggHandlersRejectConcurrentMode pins the loud failure: handler
// registration in Concurrent thread mode must panic up front (handlers
// dispatch under the Concurrent-mode rank lock, so a reply AggSend
// would self-deadlock — better to refuse than to hang).
func TestAggHandlersRejectConcurrentMode(t *testing.T) {
	cfg := testCfg(1)
	cfg.Threads = Concurrent
	Run(cfg, func(me *Rank) {
		defer func() {
			if recover() == nil {
				t.Error("RegisterAMHandler in Concurrent mode did not panic")
			}
		}()
		RegisterAMHandler(me, 60, func(*Rank, int, []byte) {})
	})
}

// TestAggFrameReduction is the tentpole's acceptance check at the core
// level: the same fine-grained update workload must cost at least 4x
// fewer wire frames with aggregation on (default batching) than off
// (MaxOps = 1, one single-op batch per update).
func TestAggFrameReduction(t *testing.T) {
	const updates = 512
	frames := func(cfg agg.Config) float64 {
		var total float64
		stats := runWireJob(t, 2, 1<<20, Config{Agg: cfg}, func(me *Rank) {
			arr := NewSharedArray[uint64](me, 64, 1)
			me.Barrier()
			if me.ID() == 0 {
				for i := 0; i < updates; i++ {
					AggXor64(me, arr.Ptr(1), uint64(i)|1, nil) // element 1 lives on rank 1
				}
			}
			me.Barrier()
		})
		for _, st := range stats {
			total += st.Counters["wire_tx_frames"]
		}
		return total
	}
	on := frames(agg.Config{})           // default MaxOps
	off := frames(agg.Config{MaxOps: 1}) // one frame pair per update
	if off < updates {
		t.Fatalf("unaggregated run sent %v frames, expected at least one per update", off)
	}
	if off < 4*on {
		t.Errorf("frame reduction %.1fx (on=%v off=%v), want >= 4x", off/on, on, off)
	}
	t.Logf("wire frames: aggregated=%v unaggregated=%v (%.1fx reduction)", on, off, off/on)
}
