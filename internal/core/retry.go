package core

import (
	"errors"
	"time"
)

// RetryPolicy makes an asynchronous operation survive transient
// failures: attach one with WithRetry to ReadAsync / WriteAsync /
// ReadSliceAsync / WriteSliceFuture / CopyAsync / AsyncTaskFuture and
// the runtime re-issues the operation on a per-attempt reply deadline
// instead of waiting forever on a lost frame, failing the future typed
// (ErrTimeout or ErrRankDead) only when the policy is exhausted or the
// target is declared dead.
//
// Retries need the failure machinery underneath: a resilient wire job
// (Config.Resilient) supplies the reply deadlines and the death
// detector. On a non-resilient wire job a policy degrades to a single
// attempt, and the in-process backend ignores it entirely (an
// in-process transfer cannot be lost). Data-movement retries (reads,
// writes, copies) are idempotent; a retried AsyncTaskFuture re-sends
// the same call, so its body may execute more than once — at-least-once
// semantics, see AsyncTaskFuture.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, first included
	// (default 3).
	MaxAttempts int
	// Backoff is the delay before the second attempt, doubling for
	// each further one (default 1ms).
	Backoff time.Duration
	// AttemptTimeout bounds each attempt: an attempt with no reply
	// after this long fails with ErrTimeout and (if retryable and
	// attempts remain) is re-issued. Zero means no per-attempt
	// deadline — only rank death fails the operation.
	AttemptTimeout time.Duration
	// Retryable decides whether an attempt's failure is worth another
	// try. Default: everything except ErrRankDead (a dead target fails
	// fast; a timeout retries).
	Retryable func(error) bool
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.Backoff <= 0 {
		p.Backoff = time.Millisecond
	}
	return p
}

func (p RetryPolicy) retryable(err error) bool {
	if p.Retryable != nil {
		return p.Retryable(err)
	}
	return !errors.Is(err, ErrRankDead)
}

// WithRetry attaches the policy to one asynchronous operation.
func WithRetry(p RetryPolicy) AsyncOpt {
	return asyncOptFn(func(c *asyncCfg) { c.retry = &p })
}

// afterCd schedules fn on this rank's goroutine after d, using the
// resilient conduit's tick-driven timer service; without one (no
// resilience, or in-process) it runs fn immediately — the caller's
// backoff degenerates to an eager retry.
func (r *Rank) afterCd(d time.Duration, fn func()) {
	if r.rcd != nil {
		r.rcd.After(d, fn)
		return
	}
	fn()
}

// startAsync drives one non-blocking conduit transfer to completion
// under pol (nil = single attempt): start issues one attempt with the
// per-attempt timeout and must honor the AsyncConduit contract (a
// non-nil return means its callback never fires; otherwise it fires
// exactly once). ok or bad runs exactly once, on this rank's
// goroutine, possibly before startAsync returns.
func (r *Rank) startAsync(pol *RetryPolicy,
	start func(timeout time.Duration, done func(error)) error, ok func(), bad func(error)) {
	if pol == nil {
		if err := start(0, func(err error) {
			if err != nil {
				bad(err)
				return
			}
			ok()
		}); err != nil {
			if r.resilient {
				bad(err)
				return
			}
			// Legacy behavior: a conduit send failure without resilience
			// means the transport tore down — abort the job.
			r.mustCd(err)
		}
		return
	}
	p := pol.withDefaults()
	attempt := 0
	backoff := p.Backoff
	var tryOnce func()
	tryOnce = func() {
		attempt++
		a := attempt
		done := func(err error) {
			if err == nil {
				ok()
				return
			}
			if a >= p.MaxAttempts || !p.retryable(err) {
				bad(err)
				return
			}
			d := backoff
			backoff *= 2
			r.afterCd(d, tryOnce)
		}
		if err := start(p.AttemptTimeout, done); err != nil {
			done(err)
		}
	}
	tryOnce()
}
