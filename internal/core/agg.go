package core

import (
	"fmt"

	"upcxx/internal/agg"
	"upcxx/internal/gasnet"
	"upcxx/internal/obs"
)

// The message-aggregation surface: AggPut, AggXor64 and AggSend buffer
// small remote operations into per-destination batches (internal/agg)
// and ship each batch as one conduit active message, instead of paying
// a frame round trip per op — the software coalescing that makes the
// paper's fine-grained access patterns (GUPS updates, DHT inserts)
// viable over a wire conduit.
//
// The operations are conduit-agnostic. On a backend that implements
// gasnet.BatchConduit (the wire) they coalesce for real; on the
// in-process backend — where a remote access is already a direct
// segment load/store — they execute immediately (puts and xors) or
// ride the engine's active messages (sends), so programs written
// against the Agg* surface run unmodified on both backends and CI can
// compare their checksums.
//
// Completion and ordering:
//
//   - An aggregated op completes when the destination rank has applied
//     it. Pass an *Event to observe completion; ops issued inside a
//     Finish block are also waited on by the Finish. Rank.Barrier
//     drains the aggregation layer before the conduit barrier, so
//     after a barrier every previously issued aggregated op is
//     globally visible.
//   - Ops to the same destination apply in issue order. Blocking
//     direct operations (Read/Write/Copy, AtomicXor, allocation,
//     locks, collectives) flush the aggregation layer before entering
//     the conduit, so aggregated ops issued earlier reach their
//     destinations ahead of the direct operation; beyond that, no
//     order holds across destinations.
//   - Buffered ops ship when a destination batch fills (size/bytes),
//     when it ages past the configured flush age at a progress call
//     (Advance, waits), at AggFlush, or at a barrier.

// AMHandler is a registered-handler active message body: it runs on
// the target rank's SPMD goroutine with the target's handle, the
// sending rank, and the message payload (valid only for the duration
// of the call — copy it to keep it). Handlers must not block, and must
// not wait on communication; they may issue further aggregated ops
// (e.g. a reply AggSend), which the runtime flushes promptly.
type AMHandler func(me *Rank, from int, payload []byte)

// RegisterAMHandler installs fn as rank me's handler for aggregated
// active messages with the given id. Like GASNet handler registration,
// every rank must register the same ids before any rank sends to them
// (SPMD programs register during startup, before the first barrier).
// Registering an id twice on one rank panics, as does registering an
// id below 0x10 — those belong to the runtime's task-RPC protocol
// (see rpc.go).
//
// Aggregated AM handlers require Serialized thread mode (the default):
// handlers execute inside the rank's progress dispatch, and in
// Concurrent mode that dispatch holds the rank's serialization lock —
// a handler issuing its reply through AggSend would re-enter it and
// deadlock. Registration panics up front rather than letting the first
// remote message hang the job.
func RegisterAMHandler(me *Rank, id uint16, fn AMHandler) {
	if id < reservedAMLimit {
		panic(fmt.Sprintf("upcxx: AM handler id %#x is reserved for the runtime (ids below %#x)",
			id, reservedAMLimit))
	}
	if me.job.cfg.Threads == Concurrent {
		panic("upcxx: aggregated AM handlers require Serialized thread mode " +
			"(handlers dispatch under the Concurrent-mode rank lock and could not " +
			"re-enter the runtime to reply)")
	}
	me.enter()
	defer me.exit()
	if me.amHandlers == nil {
		me.amHandlers = make(map[uint16]AMHandler)
	}
	if _, dup := me.amHandlers[id]; dup {
		panic(fmt.Sprintf("upcxx: AM handler %d registered twice on rank %d", id, me.id))
	}
	me.amHandlers[id] = fn
}

// rankApplier executes decoded batch ops against this rank's state:
// puts and xors against the registered segment, AMs against the
// handler table.
type rankApplier struct {
	r    *Rank
	from int
}

func (a rankApplier) Put(off uint64, data []byte) { a.r.seg.Write(off, data) }
func (a rankApplier) Xor64(off, val uint64)       { a.r.seg.Xor64(off, val) }
func (a rankApplier) AM(id uint16, payload []byte) {
	h := a.r.amHandlers[id]
	if h == nil {
		panic(fmt.Sprintf("upcxx: rank %d received aggregated AM for unregistered handler %d",
			a.r.id, id))
	}
	h(a.r, a.from, payload)
}

// initAgg wires the aggregation layer over a batch-capable conduit:
// outgoing batches ship through SendBatch, incoming ones decode
// against this rank's segment and AM table. Called from RunWire; the
// in-process backend never reaches here (ProcConduit does not
// implement gasnet.BatchConduit), which is its no-op fast path.
func (r *Rank) initAgg(bc gasnet.BatchConduit, cfg agg.Config) {
	r.aggBC = bc
	r.agg = agg.New(r.Ranks(), cfg, func(dst int, batch []byte, ops int, done func()) {
		r.mustCd(bc.SendBatch(dst, batch, func() {
			done()
			// Ack cut-through: the completions this acknowledgement just
			// delivered may themselves have buffered new ops — a task
			// subtree quiescing sends its done-ack, a firing event
			// launches deferred asyncs. Ship them now: the rank able to
			// consume them may already be blocked waiting (a Finish, a
			// barrier drain) with no further frame coming our way to
			// trigger an age flush. O(1) when nothing was buffered.
			r.agg.FlushAll()
		}))
	})
	bc.SetBatchHandler(func(from int, payload []byte) {
		r.ring.Begin(obs.KAggApply, int32(from), uint32(len(payload)))
		if _, err := agg.Apply(payload, rankApplier{r: r, from: from}); err != nil {
			panic(fmt.Errorf("upcxx: rank %d: corrupt aggregation batch from rank %d: %w",
				r.id, from, err))
		}
		r.ring.End(obs.KAggApply)
		// Cut-through flush: ops the applied handlers just buffered
		// (e.g. a DHT lookup's reply) must not wait for this rank's
		// next explicit progress call — a peer may be blocked on them
		// right now, possibly with this rank already inside a barrier
		// drain.
		r.agg.FlushAll()
	})
}

// aggPreBlock ships buffered batches before an operation that blocks
// inside the conduit (a remote read/write/atomic, allocation, lock or
// collective): the request's wait loop services incoming traffic but
// runs no aggregation progress, and the peer able to answer may itself
// be blocked on the ops sitting in our buffers. A pleasant side
// effect: batches flushed here travel the same TCP stream ahead of the
// blocking request's frame, so aggregated ops issued before a direct
// operation to the same destination are applied before it. O(1) when
// nothing is buffered.
func (r *Rank) aggPreBlock() {
	if r.agg != nil {
		r.agg.FlushAll()
	}
}

// aggDefer registers a buffered op with the surrounding Finish scope
// and completion object, returning the completion callback the
// aggregator fires on acknowledgement.
func (r *Rank) aggDefer(done Completer) func() {
	fs := r.currentFinish()
	if fs != nil {
		fs.add(1)
	}
	if done != nil {
		done.compRegister(r, 1)
	}
	return func() {
		t := r.Clock()
		if done != nil {
			done.compComplete(t, r)
		}
		if fs != nil {
			fs.childDone(t, r)
		}
	}
}

// AggPut writes v to the shared object at p through the aggregation
// layer: buffered per destination, applied when the batch ships, and
// complete (visible at the owner) when done completes — an *Event, a
// *Promise, or an Onto(...) set; with nil, by the next barrier. See
// the package notes above for ordering.
func AggPut[T any](me *Rank, p GlobalPtr[T], v T, done Completer) {
	me.enter()
	defer me.exit()
	done = normCompleter(done)
	n := int(sizeOf[T]())
	me.ep.Stats.Puts.Add(1)
	me.ep.Stats.PutBytes.Add(int64(n))
	me.ep.Clock.Advance(me.job.model.PutCost(me.id, int(p.rank), n))
	if me.agg == nil || int(p.rank) == me.id {
		me.mustCd(me.cd.Put(int(p.rank), p.Offset(), valueBytes(&v)))
		completeNow(done, me)
		return
	}
	me.agg.Put(int(p.rank), p.Offset(), valueBytes(&v), me.aggDefer(done))
}

// AggXor64 xors val into the shared word at p through the aggregation
// layer. Unlike AtomicXor the updated value does not travel back —
// aggregated xors are fire-and-forget updates (the GUPS access
// pattern), which is exactly what lets them coalesce.
func AggXor64(me *Rank, p GlobalPtr[uint64], val uint64, done Completer) {
	me.enter()
	defer me.exit()
	done = normCompleter(done)
	me.ep.Stats.Puts.Add(1)
	me.ep.Stats.PutBytes.Add(8)
	me.ep.Clock.Advance(me.job.model.PutCost(me.id, int(p.rank), 8))
	if me.agg == nil || int(p.rank) == me.id {
		_, err := me.cd.Xor64(int(p.rank), p.Offset(), val)
		me.mustCd(err)
		completeNow(done, me)
		return
	}
	me.agg.Xor64(int(p.rank), p.Offset(), val, me.aggDefer(done))
}

// AggSend delivers payload to the AM handler registered under id on
// the target rank, through the aggregation layer. The payload is
// copied at issue time. On the wire backend the message coalesces with
// other ops bound for the target; in-process it rides the engine's
// active messages (and a self-send on the wire applies immediately),
// so semantics match across backends: the handler runs on the target's
// goroutine, and completion (done / Finish) means it has run.
func AggSend(me *Rank, target int, id uint16, payload []byte, done Completer) {
	me.enter()
	defer me.exit()
	done = normCompleter(done)
	if target < 0 || target >= me.Ranks() {
		panic(fmt.Sprintf("upcxx: AggSend to invalid rank %d of %d", target, me.Ranks()))
	}
	me.ep.Stats.AMs.Add(1)
	if me.agg != nil {
		if target == me.id {
			rankApplier{r: me, from: me.id}.AM(id, payload)
			completeNow(done, me)
			return
		}
		me.agg.Send(target, id, payload, me.aggDefer(done))
		return
	}

	// In-process: ship as an engine active message executing on the
	// target's goroutine, with standard AM costs.
	fs := me.currentFinish()
	if fs != nil {
		fs.add(1)
	}
	if done != nil {
		done.compRegister(me, 1)
	}
	me.aggEv.register(1)
	job := me.job
	from := me.id
	pl := append([]byte(nil), payload...)
	t0 := me.Clock()
	me.ep.Clock.Advance(job.model.AMSendCost(len(pl)))
	arrival := job.model.AMArrival(t0, me.id, target, len(pl))
	me.ep.SendAt(target, arrival, len(pl), func(tep *gasnet.Endpoint) {
		tgt := job.ranks[tep.Rank]
		rankApplier{r: tgt, from: from}.AM(id, pl)
		t := tgt.Clock()
		if done != nil {
			done.compComplete(t, tgt)
		}
		if fs != nil {
			fs.childDone(t, tgt)
		}
		me.aggEv.signal(t, tgt)
	})
}

// AggFlush ships every buffered batch without waiting for
// acknowledgements (use an Event, Finish, or Barrier to wait).
func AggFlush(me *Rank) {
	me.enter()
	defer me.exit()
	if me.agg != nil {
		me.agg.FlushAll()
	}
}

// AggDrain flushes and then blocks until every aggregated op this rank
// issued has been applied and acknowledged, servicing incoming traffic
// while waiting. Barrier calls it implicitly.
func AggDrain(me *Rank) {
	me.enter()
	defer me.exit()
	me.aggDrain()
}

func (r *Rank) aggDrain() {
	if r.agg != nil {
		// Ship now under the barrier reason — the waitProgress flush
		// below then finds nothing buffered, so traces and counters
		// attribute the pre-barrier drain correctly.
		r.agg.FlushAllBarrier()
		r.waitProgress(func() bool { return r.agg.Pending() == 0 })
		return
	}
	// In-process: wait out engine-AM AggSends this rank launched, so
	// both backends give aggregated ops the same barrier visibility.
	r.aggEv.Wait(r)
}

// waitProgress blocks until pred() is true, servicing this rank's full
// progress surface: engine tasks always; on a batch-capable wire job
// also conduit traffic, with the aggregation layer flushed up front
// (our own buffered ops may be exactly what pred waits on) and ticked
// as traffic arrives. It is the wait primitive behind Event.Wait,
// WaitUntil, Finish and the barrier's drain.
func (r *Rank) waitProgress(pred func() bool) {
	if r.agg == nil {
		r.ep.WaitFor(pred)
		return
	}
	r.agg.FlushAll()
	err := r.aggBC.WaitFor(func() bool {
		// Drain self-targeted tasks first: a conduit message's handler
		// may have queued the work that satisfies pred. Tasks may
		// themselves buffer aggregated ops; those must ship before we
		// block again, because the conduit wait only re-evaluates this
		// predicate when a frame arrives — and the peer able to send
		// one may be blocked on exactly the ops we just buffered.
		if r.ep.Poll() > 0 {
			r.agg.FlushAll()
		}
		r.agg.Tick()
		return pred()
	})
	r.mustCd(err)
}
