package core

import (
	"sync/atomic"
	"testing"
)

func TestAsyncRunsOnTarget(t *testing.T) {
	Run(testCfg(4), func(me *Rank) {
		var ranOn atomic.Int64
		ranOn.Store(-1)
		if me.ID() == 0 {
			Finish(me, func() {
				Async(me, On(2), func(tgt *Rank) { ranOn.Store(int64(tgt.ID())) })
			})
			if ranOn.Load() != 2 {
				t.Errorf("async ran on rank %d, want 2", ranOn.Load())
			}
		}
		me.Barrier()
	})
}

func TestAsyncGroupPlace(t *testing.T) {
	Run(testCfg(4), func(me *Rank) {
		var count atomic.Int64
		if me.ID() == 0 {
			Finish(me, func() {
				Async(me, OnRanks(1, 2, 3), func(*Rank) { count.Add(1) })
			})
			if count.Load() != 3 {
				t.Errorf("group async ran %d times, want 3", count.Load())
			}
			Finish(me, func() {
				Async(me, Everywhere(me), func(*Rank) { count.Add(1) })
			})
			if count.Load() != 7 {
				t.Errorf("everywhere async total %d, want 7", count.Load())
			}
		}
		me.Barrier()
	})
}

func TestFinishWaitsForAll(t *testing.T) {
	Run(testCfg(8), func(me *Rank) {
		var done atomic.Int64
		if me.ID() == 0 {
			Finish(me, func() {
				for r := 1; r < 8; r++ {
					Async(me, On(r), func(*Rank) { done.Add(1) })
				}
			})
			if done.Load() != 7 {
				t.Errorf("finish returned with %d/7 tasks done", done.Load())
			}
		}
		me.Barrier()
	})
}

func TestFinishNested(t *testing.T) {
	Run(testCfg(2), func(me *Rank) {
		if me.ID() == 0 {
			var inner, outer atomic.Bool
			Finish(me, func() {
				Async(me, On(1), func(*Rank) { outer.Store(true) })
				Finish(me, func() {
					Async(me, On(1), func(*Rank) { inner.Store(true) })
				})
				if !inner.Load() {
					t.Error("inner finish did not wait for inner async")
				}
			})
			if !outer.Load() {
				t.Error("outer finish did not wait for outer async")
			}
		}
		me.Barrier()
	})
}

func TestFinishDynamicScopeOnly(t *testing.T) {
	// Paper §III-G: unlike X10, finish waits only for asyncs spawned in
	// its dynamic scope, not transitively for asyncs those tasks spawn.
	Run(testCfg(3), func(me *Rank) {
		var grandchild atomic.Bool
		if me.ID() == 0 {
			Finish(me, func() {
				Async(me, On(1), func(r1 *Rank) {
					// The grandchild is NOT tracked by rank 0's finish.
					Async(r1, On(2), func(*Rank) { grandchild.Store(true) })
				})
			})
			// The grandchild may or may not have run yet; the barrier
			// quiesces it.
		}
		me.Barrier()
		me.Advance()
		me.Barrier()
		if me.ID() == 0 && !grandchild.Load() {
			t.Error("grandchild async never ran")
		}
	})
}

func TestAsyncFutureReturnsValue(t *testing.T) {
	Run(testCfg(3), func(me *Rank) {
		if me.ID() == 0 {
			f := AsyncFuture(me, 2, func(tgt *Rank) int { return tgt.ID() * 11 })
			if v := f.Get(); v != 22 {
				t.Errorf("future = %d, want 22", v)
			}
		}
		me.Barrier()
	})
}

func TestAsyncFutureLatencyCharged(t *testing.T) {
	st := Run(testCfg(2), func(me *Rank) {
		if me.ID() == 0 {
			f := AsyncFuture(me, 1, func(*Rank) int { return 1 })
			f.Get()
		}
	})
	if st.VirtualNs <= 0 {
		t.Error("round trip should cost virtual time")
	}
}

func TestAsyncSignalEvent(t *testing.T) {
	// Paper: async(place, event* ack)(task) signals ack when the task
	// completes.
	Run(testCfg(2), func(me *Rank) {
		if me.ID() == 0 {
			ev := NewEvent()
			var ran atomic.Bool
			Async(me, On(1), func(*Rank) { ran.Store(true) }, Signal(ev))
			ev.Wait(me)
			if !ran.Load() {
				t.Error("event fired before task ran")
			}
		}
		me.Barrier()
	})
}

func TestListing1DependencyGraph(t *testing.T) {
	// The task graph of Listing 1 / Fig 1: e1 gates t3, e2 gates t4's
	// companions t5,t6, e3 is the final join.
	Run(testCfg(8), func(me *Rank) {
		if me.ID() != 0 {
			me.Barrier()
			return
		}
		var order [7]atomic.Int64 // completion stamps by task id (1-based)
		var stamp atomic.Int64
		mark := func(id int) func(*Rank) {
			return func(*Rank) { order[id].Store(stamp.Add(1)) }
		}
		e1, e2, e3 := NewEvent(), NewEvent(), NewEvent()
		Async(me, On(1), mark(1), Signal(e1))
		Async(me, On(2), mark(2), Signal(e1))
		AsyncAfter(me, On(3), e1, e2, mark(3))
		Async(me, On(4), mark(4), Signal(e2))
		AsyncAfter(me, On(5), e2, e3, mark(5))
		AsyncAfter(me, On(6), e2, e3, mark(6))
		e3.Wait(me)

		for id := 1; id <= 6; id++ {
			if order[id].Load() == 0 {
				t.Errorf("task %d never ran", id)
			}
		}
		// t3 must follow both t1 and t2; t5, t6 must follow t3 and t4.
		if order[3].Load() < order[1].Load() || order[3].Load() < order[2].Load() {
			t.Error("t3 ran before its e1 dependencies")
		}
		for _, id := range []int{5, 6} {
			if order[id].Load() < order[3].Load() || order[id].Load() < order[4].Load() {
				t.Errorf("t%d ran before its e2 dependencies", id)
			}
		}
		me.Barrier()
	})
}

func TestAsyncAfterAlreadyFired(t *testing.T) {
	Run(testCfg(2), func(me *Rank) {
		if me.ID() == 0 {
			ev := NewEvent()
			var a, b atomic.Bool
			Async(me, On(1), func(*Rank) { a.Store(true) }, Signal(ev))
			ev.Wait(me) // ev fires
			done := NewEvent()
			AsyncAfter(me, On(1), ev, done, func(*Rank) { b.Store(true) })
			done.Wait(me)
			if !a.Load() || !b.Load() {
				t.Error("async_after on already-fired event did not launch")
			}
		}
		me.Barrier()
	})
}

func TestEventWaitOnFreshEventReturns(t *testing.T) {
	Run(testCfg(1), func(me *Rank) {
		ev := NewEvent()
		ev.Wait(me) // must not block
		if !ev.Test(me) {
			t.Error("fresh event should test as fired")
		}
	})
}

func TestFutureReady(t *testing.T) {
	Run(testCfg(2), func(me *Rank) {
		if me.ID() == 0 {
			f := AsyncFuture(me, 1, func(*Rank) int { return 5 })
			for !f.Ready() {
			}
			if f.Get() != 5 {
				t.Error("ready future returned wrong value")
			}
		}
		me.Barrier()
	})
}

func TestLockMutualExclusion(t *testing.T) {
	Run(testCfg(4), func(me *Rank) {
		l := Broadcast(me, NewLock(me), 0) // share rank 0's lock value
		counter := NewSharedVar[int64](me)
		me.Barrier()
		for i := 0; i < 25; i++ {
			l.Acquire(me)
			v := counter.Get(me)
			counter.Set(me, v+1) // read-modify-write under the lock
			l.Release(me)
		}
		me.Barrier()
		if got := counter.Get(me); got != 100 {
			t.Errorf("counter = %d, want 100 (lost updates => broken lock)", got)
		}
	})
}

func TestTryAcquire(t *testing.T) {
	Run(testCfg(2), func(me *Rank) {
		l := Broadcast(me, NewLock(me), 0)
		me.Barrier()
		if me.ID() == 0 {
			if !l.TryAcquire(me) {
				t.Error("first TryAcquire should succeed")
			}
		}
		me.Barrier()
		if me.ID() == 1 {
			if l.TryAcquire(me) {
				t.Error("TryAcquire of held lock should fail")
			}
		}
		me.Barrier()
		if me.ID() == 0 {
			l.Release(me)
		}
		me.Barrier()
		if me.ID() == 1 {
			if !l.TryAcquire(me) {
				t.Error("TryAcquire after release should succeed")
			}
			l.Release(me)
		}
		me.Barrier()
	})
}

func TestCollectives(t *testing.T) {
	Run(testCfg(6), func(me *Rank) {
		// Broadcast.
		v := Broadcast(me, me.ID()*7, 3)
		if v != 21 {
			t.Errorf("Broadcast = %d, want 21", v)
		}
		// AllGather.
		all := AllGather(me, me.ID()*me.ID())
		for i, x := range all {
			if x != i*i {
				t.Errorf("AllGather[%d] = %d, want %d", i, x, i*i)
			}
		}
		// Reduce (sum).
		sum := Reduce(me, me.ID()+1, func(a, b int) int { return a + b })
		if sum != 21 {
			t.Errorf("Reduce = %d, want 21", sum)
		}
		// ExclusiveScan.
		scan := ExclusiveScan(me, 1, func(a, b int) int { return a + b }, 0)
		if scan != me.ID() {
			t.Errorf("ExclusiveScan = %d, want %d", scan, me.ID())
		}
		// Gather on root 2.
		g := Gather(me, me.ID()+100, 2)
		if me.ID() == 2 {
			for i, x := range g {
				if x != i+100 {
					t.Errorf("Gather[%d] = %d", i, x)
				}
			}
		} else if g != nil {
			t.Error("non-root Gather should return nil")
		}
	})
}

func TestReduceSlices(t *testing.T) {
	Run(testCfg(4), func(me *Rank) {
		part := make([]float64, 16)
		for i := range part {
			part[i] = float64(me.ID())
		}
		img := ReduceSlices(me, part, func(a, b float64) float64 { return a + b }, 0)
		if me.ID() == 0 {
			for i, x := range img {
				if x != 6 { // 0+1+2+3
					t.Errorf("reduced[%d] = %v, want 6", i, x)
				}
			}
		} else if img != nil {
			t.Error("non-root should get nil")
		}
	})
}

func TestConcurrentThreadMode(t *testing.T) {
	// In Concurrent mode multiple goroutines may drive one rank handle.
	Run(Config{Ranks: 2, Threads: Concurrent, Virtual: true}, func(me *Rank) {
		sa := NewSharedArray[int64](me, 64, 1)
		me.Barrier()
		if me.ID() == 0 {
			done := make(chan bool)
			for w := 0; w < 4; w++ {
				go func(w int) {
					for i := w * 8; i < (w+1)*8; i++ {
						sa.Set(me, i, int64(i))
					}
					done <- true
				}(w)
			}
			for w := 0; w < 4; w++ {
				<-done
			}
		}
		me.Barrier()
		for i := 0; i < 32; i++ {
			if sa.Get(me, i) != int64(i) {
				t.Errorf("sa[%d] corrupted", i)
			}
		}
	})
}

func TestAMMediatedAccessPath(t *testing.T) {
	Run(Config{Ranks: 3, Access: AMMediated, Virtual: true}, func(me *Rank) {
		sa := NewSharedArray[int64](me, 30, 1)
		for i := me.ID(); i < 30; i += me.Ranks() {
			sa.Set(me, i, int64(i+1000))
		}
		me.Barrier()
		for i := 0; i < 30; i++ {
			if v := sa.Get(me, i); v != int64(i+1000) {
				t.Errorf("AM-mediated sa[%d] = %d", i, v)
			}
		}
	})
}

func TestRMWAtomicity(t *testing.T) {
	Run(testCfg(4), func(me *Rank) {
		target := NewSharedVar[uint64](me)
		me.Barrier()
		for i := 0; i < 50; i++ {
			RMW(me, target.Ptr(), func(v uint64) uint64 { return v + 1 })
		}
		me.Barrier()
		if got := target.Get(me); got != 200 {
			t.Errorf("RMW lost updates: %d, want 200", got)
		}
	})
}

func TestStatsCounters(t *testing.T) {
	st := Run(testCfg(2), func(me *Rank) {
		buf := Allocate[int64](me, me.ID(), 8)
		all := AllGather(me, buf)
		if me.ID() == 0 {
			for i := 0; i < 10; i++ {
				Write(me, all[1], int64(i))
			}
			for i := 0; i < 5; i++ {
				Read(me, all[1])
			}
		}
	})
	if st.Puts < 10 {
		t.Errorf("Puts = %d, want >= 10", st.Puts)
	}
	if st.Gets < 5 {
		t.Errorf("Gets = %d, want >= 5", st.Gets)
	}
	if st.PutBytes < 80 {
		t.Errorf("PutBytes = %d, want >= 80", st.PutBytes)
	}
}

func TestVirtualTimeAdvances(t *testing.T) {
	st := Run(testCfg(2), func(me *Rank) {
		me.Work(1e6) // a million flops
		me.Barrier()
	})
	if st.VirtualNs <= 0 {
		t.Error("virtual time did not advance")
	}
}

func TestWorkParallelDividesTime(t *testing.T) {
	serial := Run(testCfg(1), func(me *Rank) { me.Work(1e9) })
	par := Run(testCfg(1), func(me *Rank) { me.WorkParallel(1e9, 8) })
	if par.VirtualNs*4 > serial.VirtualNs {
		t.Errorf("8-way parallel work %v should be ~8x cheaper than %v", par.VirtualNs, serial.VirtualNs)
	}
}
