package gasnet

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"

	"upcxx/internal/sim"
	"upcxx/internal/transport"
)

// shmTestMem is a testMem over an externally mapped buffer whose Xor64
// is a CAS on the word itself — matching segment.Segment's, so the
// owner's path through Memory and a co-located peer's direct CAS
// through HierConduit contend on the same synchronization domain.
type shmTestMem struct {
	testMem
}

func newShmTestMem(buf []byte) *shmTestMem {
	return &shmTestMem{testMem{buf: buf, live: map[uint64]bool{}}}
}

func (m *shmTestMem) Xor64(off, val uint64) uint64 {
	p := (*uint64)(unsafe.Pointer(&m.buf[off]))
	for {
		old := atomic.LoadUint64(p)
		if atomic.CompareAndSwapUint64(p, old, old^val) {
			return old ^ val
		}
	}
}

// buildHierFleet assembles an n-rank hierarchical fleet in-process:
// real mmap'd files in a temp dir, real TCP between the per-host
// leaders, ppn ranks per virtual host.
func buildHierFleet(t *testing.T, n, ppn, ringBytes, segBytes int) []Conduit {
	t.Helper()
	dir := t.TempDir()
	nodes := make([]int, n)
	for r := range nodes {
		nodes[r] = r / ppn
	}
	shms := make([]*ShmConduit, n)
	for i := 0; i < n; i++ {
		node := i / ppn
		locals := ppn
		if rest := n - node*ppn; rest < locals {
			locals = rest
		}
		nodeDir := filepath.Join(dir, fmt.Sprintf("node%d", node))
		if err := os.MkdirAll(nodeDir, 0o777); err != nil {
			t.Fatal(err)
		}
		shm, err := CreateShm(nodeDir, i-node*ppn, locals, ringBytes, segBytes)
		if err != nil {
			t.Fatal(err)
		}
		shms[i] = shm
	}
	eps := make([]*transport.TCPEndpoint, n)
	addrs := make([]string, n)
	for i := range eps {
		ep, err := transport.ListenTCP(i, n, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
		addrs[i] = ep.Addr()
	}
	cds := make([]Conduit, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := eps[i].Connect(addrs); err != nil {
				t.Errorf("rank %d connect: %v", i, err)
				return
			}
			if err := shms[i].Attach(); err != nil {
				t.Errorf("rank %d attach: %v", i, err)
				return
			}
			wire := NewWireConduit(eps[i], newShmTestMem(shms[i].Seg()))
			cds[i] = NewHierConduit(wire, shms[i], nodes)
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	t.Cleanup(func() {
		for _, c := range cds {
			c.Close()
		}
	})
	return cds
}

// TestConduitCapabilities pins, per backend, exactly which optional
// planes Capabilities advertises. This table is the single seam the
// runtime probes (no interface type asserts remain in core), so a
// backend silently losing a capability is a behavior change this test
// makes loud.
func TestConduitCapabilities(t *testing.T) {
	eng := New(sim.NewModel(true, sim.Local, sim.SWUPCXX, 1), 1)
	proc := NewProcGroup(eng, []Memory{newTestMem(64)})[0]

	ep, err := transport.ListenTCP(0, 1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Connect([]string{ep.Addr()}); err != nil {
		t.Fatal(err)
	}
	wire := NewWireConduit(ep, newTestMem(64))
	defer wire.Close()

	hier := buildHierFleet(t, 1, 1, minShmRingBytes, 1<<12)[0]

	cases := []struct {
		name                                                     string
		cd                                                       Conduit
		batch, async, resilient, teams, counters, localty, waker bool
	}{
		{"proc", proc, false, false, false, true, false, false, false},
		{"wire", wire, true, true, true, true, true, false, true},
		{"hier", hier, true, true, false, true, true, true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			caps := tc.cd.Capabilities()
			check := func(plane string, got, want bool) {
				if got != want {
					t.Errorf("%s: %s advertised = %v, want %v", tc.name, plane, got, want)
				}
			}
			check("Batch", caps.Batch != nil, tc.batch)
			check("Async", caps.Async != nil, tc.async)
			check("Resilient", caps.Resilient != nil, tc.resilient)
			check("Teams", caps.Teams != nil, tc.teams)
			check("Counters", caps.Counters != nil, tc.counters)
			check("Locality", caps.Locality != nil, tc.localty)
			check("Waker", caps.Waker != nil, tc.waker)
		})
	}
}

// TestHierConduitContract runs the cross-backend conduit contract over
// a 4-rank, 2-per-host hierarchical fleet: the script's puts, gets,
// xors, allocations and locks cross both the shm and the wire plane.
func TestHierConduitContract(t *testing.T) {
	const n, ppn = 4, 2
	cds := buildHierFleet(t, n, ppn, DefaultShmRingBytes, 1<<16)
	exerciseConduit(t, n, func(rank int) Conduit { return cds[rank] })
}

// TestHierConduitContractOneHost is the degenerate all-co-located
// shape: every data-plane op is a shm op, collectives have one leader.
func TestHierConduitContractOneHost(t *testing.T) {
	const n = 4
	cds := buildHierFleet(t, n, n, DefaultShmRingBytes, 1<<16)
	exerciseConduit(t, n, func(rank int) Conduit { return cds[rank] })
}
