package gasnet

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"syscall"
	"unsafe"

	"upcxx/internal/obs"
)

// ShmConduit is the intra-host communication substrate of the
// hierarchical backend: every co-located rank owns one mmap'd file
// holding its shared segment plus one lock-free SPSC ring per co-located
// peer, so same-host puts and gets are direct loads and stores (the
// shared-memory bypass real GASNet conduits perform with PSHM) and
// same-host active messages are ring writes — no kernel round trip, no
// wire frame. It is not a full Conduit: HierConduit composes it with a
// WireConduit, routing each operation by peer locality.
//
// File layout (rank i's file, rank<i>.shm in the job's shm directory):
//
//	[64B header: magic, nLocal, ringBytes, segBytes]
//	nLocal ring blocks of 128+ringBytes each — block j carries messages
//	  from local rank j to local rank i (the self block is unused):
//	    [head u64 @0, consumer-owned] [tail u64 @64, producer-owned]
//	    [ringBytes of record data]
//	[segBytes of shared segment]
//
// head/tail are monotonically increasing byte counts (position = count
// mod ringBytes); the 64-byte spacing keeps the two control words on
// separate cache lines. Records are 8-byte aligned:
//
//	[len u32 (bit31 = more-fragments)] [handler u16] [pad u16] [arg u64]
//	[payload, padded to 8]
//
// Payloads longer than ringBytes/4 are fragmented (the more-fragments
// bit chains them); SPSC ordering makes reassembly a plain append.
//
// Setup is two-phase to avoid a filesystem race: every rank Creates its
// own file before the job rendezvous, then Attaches to its peers' files
// after — so by the time any rank attaches, every file exists at full
// size.
//
// Like the wire conduit, an ShmConduit must be driven by a single
// goroutine (its rank's SPMD goroutine); handlers execute inside Poll.
type ShmConduit struct {
	dir       string
	me        int // local index among co-located ranks
	n         int // number of co-located ranks
	ringBytes int
	segBytes  int

	files  [][]byte // mmap per local rank's file (files[me] created, rest attached)
	closed bool

	handlers map[uint16]func(from int, arg uint64, payload []byte)
	partial  [][]byte // per-producer fragment accumulator
	// idle runs in the producer's full-ring spin loop; HierConduit hooks
	// the wire poll here so a rank stalled on a full ring keeps serving
	// its cross-host peers.
	idle func()

	// Traffic counters: written on the SPMD goroutine, read live by the
	// debug plane, hence atomics.
	txMsgs, rxMsgs, txBytes, rxBytes atomic.Int64

	// ring is this rank's span ring (nil unless tracing is on);
	// installed via SetObs.
	obsRing *obs.Ring
}

const (
	shmMagic     = 0x75706378782d7368 // "upcxx-sh"
	shmHdrBytes  = 64
	shmCtlBytes  = 128
	shmRecHdr    = 16
	shmMoreFlag  = 1 << 31
	shmAlignMask = 7

	// DefaultShmRingBytes is the per-peer ring capacity when the caller
	// passes 0.
	DefaultShmRingBytes = 1 << 20
	minShmRingBytes     = 4096
)

// ShmPath returns rank me's shm file path inside dir.
func ShmPath(dir string, me int) string {
	return filepath.Join(dir, fmt.Sprintf("rank%d.shm", me))
}

func shmFileSize(n, ringBytes, segBytes int) int {
	return shmHdrBytes + n*(shmCtlBytes+ringBytes) + segBytes
}

// CreateShm creates and maps this rank's own shm file (local index me of
// n co-located ranks, each with a segBytes shared segment). ringBytes 0
// takes the default. Call before the job rendezvous; Attach after.
func CreateShm(dir string, me, n, ringBytes, segBytes int) (*ShmConduit, error) {
	if ringBytes <= 0 {
		ringBytes = DefaultShmRingBytes
	}
	if ringBytes < minShmRingBytes {
		ringBytes = minShmRingBytes
	}
	ringBytes = (ringBytes + shmAlignMask) &^ shmAlignMask
	if me < 0 || me >= n {
		return nil, fmt.Errorf("gasnet: shm local index %d out of %d", me, n)
	}
	size := shmFileSize(n, ringBytes, segBytes)
	buf, err := shmMap(ShmPath(dir, me), size, true)
	if err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint64(buf[0:], shmMagic)
	binary.LittleEndian.PutUint64(buf[8:], uint64(n))
	binary.LittleEndian.PutUint64(buf[16:], uint64(ringBytes))
	binary.LittleEndian.PutUint64(buf[24:], uint64(segBytes))
	c := &ShmConduit{
		dir:       dir,
		me:        me,
		n:         n,
		ringBytes: ringBytes,
		segBytes:  segBytes,
		files:     make([][]byte, n),
		handlers:  make(map[uint16]func(int, uint64, []byte)),
		partial:   make([][]byte, n),
	}
	c.files[me] = buf
	return c, nil
}

// Attach maps every peer's shm file. All ranks must have Created theirs
// first (the launcher's rendezvous provides that ordering).
func (c *ShmConduit) Attach() error {
	size := shmFileSize(c.n, c.ringBytes, c.segBytes)
	for j := 0; j < c.n; j++ {
		if j == c.me {
			continue
		}
		buf, err := shmMap(ShmPath(c.dir, j), size, false)
		if err != nil {
			return err
		}
		if binary.LittleEndian.Uint64(buf[0:]) != shmMagic ||
			binary.LittleEndian.Uint64(buf[8:]) != uint64(c.n) ||
			binary.LittleEndian.Uint64(buf[16:]) != uint64(c.ringBytes) ||
			binary.LittleEndian.Uint64(buf[24:]) != uint64(c.segBytes) {
			return fmt.Errorf("gasnet: shm file %s disagrees on geometry", ShmPath(c.dir, j))
		}
		c.files[j] = buf
	}
	return nil
}

func shmMap(path string, size int, create bool) ([]byte, error) {
	flags := os.O_RDWR
	if create {
		flags |= os.O_CREATE | os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o600)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if create {
		if err := f.Truncate(int64(size)); err != nil {
			return nil, err
		}
	}
	buf, err := syscall.Mmap(int(f.Fd()), 0, size,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("gasnet: mmap %s: %w", path, err)
	}
	return buf, nil
}

// Locals returns the number of co-located ranks; Local returns this
// rank's index among them.
func (c *ShmConduit) Locals() int { return c.n }

// Local returns this rank's local index.
func (c *ShmConduit) Local() int { return c.me }

// Seg returns this rank's shared-segment window of its own mapped file;
// wrap it with segment.NewExtern so co-located peers' direct loads and
// stores land in the same physical pages the owner allocates from.
func (c *ShmConduit) Seg() []byte {
	off := shmHdrBytes + c.n*(shmCtlBytes+c.ringBytes)
	return c.files[c.me][off : off+c.segBytes : off+c.segBytes]
}

// PeerSeg returns the mapped shared-segment window of co-located rank
// j's file (valid after Attach). Direct loads/stores here are the
// shared-memory puts and gets of the hierarchical conduit.
func (c *ShmConduit) PeerSeg(j int) []byte {
	off := shmHdrBytes + c.n*(shmCtlBytes+c.ringBytes)
	return c.files[j][off : off+c.segBytes : off+c.segBytes]
}

// Register installs the handler for one shm AM id. Handlers run inside
// Poll on the consumer's goroutine and must not block.
func (c *ShmConduit) Register(h uint16, fn func(from int, arg uint64, payload []byte)) {
	c.handlers[h] = fn
}

// SetIdle installs the hook run while a producer spins on a full ring.
func (c *ShmConduit) SetIdle(fn func()) { c.idle = fn }

// ring is one SPSC channel's view: control words plus data window.
type shmRing struct {
	ctl  []byte
	data []byte
}

// ringTo returns the ring inside file `owner` written by local rank
// `producer`.
func (c *ShmConduit) ring(owner, producer int) shmRing {
	off := shmHdrBytes + producer*(shmCtlBytes+c.ringBytes)
	f := c.files[owner]
	return shmRing{
		ctl:  f[off : off+shmCtlBytes],
		data: f[off+shmCtlBytes : off+shmCtlBytes+c.ringBytes],
	}
}

func (r shmRing) head() *uint64 { return (*uint64)(unsafe.Pointer(&r.ctl[0])) }
func (r shmRing) tail() *uint64 { return (*uint64)(unsafe.Pointer(&r.ctl[64])) }

// copyIn writes src into the ring data window at logical position pos,
// wrapping as needed.
func ringCopyIn(data []byte, pos uint64, src []byte) {
	i := pos % uint64(len(data))
	k := copy(data[i:], src)
	if k < len(src) {
		copy(data, src[k:])
	}
}

// ringCopyOut reads len(dst) bytes at logical position pos.
func ringCopyOut(dst, data []byte, pos uint64) {
	i := pos % uint64(len(data))
	k := copy(dst, data[i:])
	if k < len(dst) {
		copy(dst[k:], data)
	}
}

// Send delivers one active message to co-located rank `to`, fragmenting
// payloads larger than a quarter ring. Blocks (polling own rings and
// running the idle hook) while the destination ring is full; because the
// consumer publishes head before dispatching each record, two ranks
// blocked sending to each other still drain.
func (c *ShmConduit) Send(to int, h uint16, arg uint64, payload []byte) {
	maxFrag := c.ringBytes / 4
	for {
		n := len(payload)
		more := n > maxFrag
		if more {
			n = maxFrag
		}
		c.push(to, h, arg, payload[:n], more)
		payload = payload[n:]
		if !more {
			return
		}
	}
}

func (c *ShmConduit) push(to int, h uint16, arg uint64, p []byte, more bool) {
	if to == c.me {
		panic("gasnet: shm self-send")
	}
	r := c.ring(to, c.me)
	rec := uint64(shmRecHdr + ((len(p) + shmAlignMask) &^ shmAlignMask))
	capacity := uint64(c.ringBytes)
	for capacity-(atomic.LoadUint64(r.tail())-atomic.LoadUint64(r.head())) < rec {
		// Full: the consumer is behind. Serve our own rings (it may be
		// blocked pushing to us) and the other plane, then yield.
		if c.Poll() == 0 {
			if c.idle != nil {
				c.idle()
			}
			runtime.Gosched()
		}
	}
	tail := atomic.LoadUint64(r.tail())
	var hdr [shmRecHdr]byte
	ln := uint32(len(p))
	if more {
		ln |= shmMoreFlag
	}
	binary.LittleEndian.PutUint32(hdr[0:], ln)
	binary.LittleEndian.PutUint16(hdr[4:], h)
	binary.LittleEndian.PutUint64(hdr[8:], arg)
	ringCopyIn(r.data, tail, hdr[:])
	ringCopyIn(r.data, tail+shmRecHdr, p)
	// The tail store publishes the record: it is sequentially consistent
	// (Go sync/atomic), so the consumer's tail load orders after our data
	// writes.
	atomic.StoreUint64(r.tail(), tail+rec)
	c.txMsgs.Add(1)
	c.txBytes.Add(int64(len(p)))
	c.obsRing.Instant(obs.KShmTx, int32(to), uint32(len(p)), uint64(h))
}

// Poll drains every incoming ring, dispatching complete messages, and
// reports how many records it consumed. Head is published before each
// dispatch so a handler that blocks in Send never wedges its producer.
func (c *ShmConduit) Poll() int {
	n := 0
	for j := 0; j < c.n; j++ {
		if j == c.me {
			continue
		}
		r := c.ring(c.me, j)
		for {
			head := atomic.LoadUint64(r.head())
			tail := atomic.LoadUint64(r.tail())
			if head == tail {
				break
			}
			var hdr [shmRecHdr]byte
			ringCopyOut(hdr[:], r.data, head)
			ln := binary.LittleEndian.Uint32(hdr[0:])
			more := ln&shmMoreFlag != 0
			plen := int(ln &^ uint32(shmMoreFlag))
			h := binary.LittleEndian.Uint16(hdr[4:])
			arg := binary.LittleEndian.Uint64(hdr[8:])
			payload := make([]byte, plen)
			ringCopyOut(payload, r.data, head+shmRecHdr)
			rec := uint64(shmRecHdr + ((plen + shmAlignMask) &^ shmAlignMask))
			atomic.StoreUint64(r.head(), head+rec)
			n++
			if more {
				c.partial[j] = append(c.partial[j], payload...)
				continue
			}
			if part := c.partial[j]; part != nil {
				payload = append(part, payload...)
				c.partial[j] = nil
			}
			c.rxMsgs.Add(1)
			c.rxBytes.Add(int64(len(payload)))
			c.obsRing.Instant(obs.KShmRx, int32(j), uint32(len(payload)), uint64(h))
			fn := c.handlers[h]
			if fn == nil {
				panic(fmt.Sprintf("gasnet: shm message for unregistered handler %d", h))
			}
			fn(j, arg, payload)
		}
	}
	return n
}

// SetObs installs the rank's span ring on the shm send/receive paths.
func (c *ShmConduit) SetObs(ring *obs.Ring) { c.obsRing = ring }

// Counters reports shm-plane traffic (complete messages, payload bytes).
func (c *ShmConduit) Counters() map[string]float64 {
	return map[string]float64{
		"shm_tx_msgs":  float64(c.txMsgs.Load()),
		"shm_rx_msgs":  float64(c.rxMsgs.Load()),
		"shm_tx_bytes": float64(c.txBytes.Load()),
		"shm_rx_bytes": float64(c.rxBytes.Load()),
	}
}

// Close unmaps every mapping. The launcher owns the directory (and
// removes it after the job); Close only releases this process's views.
func (c *ShmConduit) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	var first error
	for j, buf := range c.files {
		if buf == nil {
			continue
		}
		c.files[j] = nil
		if err := syscall.Munmap(buf); err != nil && first == nil {
			first = err
		}
	}
	return first
}
