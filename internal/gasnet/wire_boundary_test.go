package gasnet

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"upcxx/internal/transport"
)

// wireFleet builds n connected WireConduits over localhost TCP, each
// backed by a testMem of memBytes.
func wireFleet(t *testing.T, n, memBytes int) []*WireConduit {
	t.Helper()
	eps := make([]*transport.TCPEndpoint, n)
	addrs := make([]string, n)
	for i := range eps {
		ep, err := transport.ListenTCP(i, n, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		eps[i] = ep
		addrs[i] = ep.Addr()
	}
	cds := make([]*WireConduit, n)
	var wg sync.WaitGroup
	for i := range eps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := eps[i].Connect(addrs); err != nil {
				t.Errorf("rank %d connect: %v", i, err)
				return
			}
			cds[i] = NewWireConduit(eps[i], newTestMem(memBytes))
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	return cds
}

// servePoll runs cd.Poll until the returned stop func is called, so a
// single-goroutine test can play both requester and responder.
func servePoll(cd *WireConduit) (stop func()) {
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		for {
			select {
			case <-done:
				return
			default:
				cd.Poll()
			}
		}
	}()
	return func() { close(done); <-exited }
}

func pattern(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*131 + i>>11)
	}
	return p
}

// TestPutGetChunkBoundaries pins the Get/Put chunking behaviour at the
// exact frame-capacity edges: payloads of maxChunk-1/maxChunk (one
// request frame) and maxChunk+1 through MaxPayload+1 (split into
// chunked requests), plus the degenerate zero-length transfer, must
// all round-trip intact and never exceed transport.MaxPayload per
// frame (the transport rejects oversized sends, so success here proves
// the chunker's arithmetic).
func TestPutGetChunkBoundaries(t *testing.T) {
	if testing.Short() {
		t.Skip("moves several 16 MiB payloads")
	}
	cds := wireFleet(t, 2, transport.MaxPayload+(1<<20))
	stop := servePoll(cds[1])
	defer stop()

	sizes := []int{0, maxChunk - 1, maxChunk, maxChunk + 1,
		transport.MaxPayload - 1, transport.MaxPayload, transport.MaxPayload + 1}
	for _, n := range sizes {
		t.Run(fmt.Sprintf("size=%d", n), func(t *testing.T) {
			src := pattern(n)
			if err := cds[0].Put(1, 0, src); err != nil {
				t.Fatalf("put %d bytes: %v", n, err)
			}
			got := make([]byte, n)
			if err := cds[0].Get(1, 0, got); err != nil {
				t.Fatalf("get %d bytes: %v", n, err)
			}
			if !bytes.Equal(got, src) {
				t.Fatalf("%d-byte round trip corrupted payload", n)
			}
		})
	}
}

// TestAllGatherFragmentBoundaries pins the collective fragmentation
// path (sendFragmented/accumFragment, the substrate of the core's wire
// collectives) at the fragment-capacity edges: a zero-length
// contribution, exactly one full fragment (maxFragData), one byte
// over, and contributions at MaxPayload±1 — with asymmetric sizes per
// rank so reassembly keys (generation, sender) are exercised.
func TestAllGatherFragmentBoundaries(t *testing.T) {
	if testing.Short() {
		t.Skip("gathers ~64 MiB of contributions")
	}
	const n = 2
	cds := wireFleet(t, n, 64)

	rounds := [][n]int{
		{0, maxFragData}, // empty + exactly one full fragment
		{maxFragData + 1, transport.MaxPayload - 1},      // just over one fragment
		{transport.MaxPayload, transport.MaxPayload + 1}, // at and past the frame cap
		{0, 0}, // pure barrier round after the heavy ones
	}
	for _, sizes := range rounds {
		contribs := make([][]byte, n)
		for r, sz := range sizes {
			contribs[r] = pattern(sz)
		}
		tables := make([][][]byte, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				tables[i], errs[i] = cds[i].AllGather(contribs[i])
			}(i)
		}
		wg.Wait()
		for i := 0; i < n; i++ {
			if errs[i] != nil {
				t.Fatalf("sizes %v: rank %d allgather: %v", sizes, i, errs[i])
			}
			for r := 0; r < n; r++ {
				if !bytes.Equal(tables[i][r], contribs[r]) {
					t.Fatalf("sizes %v: rank %d sees corrupt contribution from %d", sizes, i, r)
				}
			}
		}
	}
}

// recorder collects applied batches on the receiving side.
type recorder struct {
	mu      sync.Mutex
	batches [][]byte
	froms   []int
}

func (r *recorder) handle(from int, payload []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.batches = append(r.batches, append([]byte(nil), payload...))
	r.froms = append(r.froms, from)
}

// TestSendBatchAckAndCounters exercises the aggregation batch plane:
// batches are delivered to the installed handler in send order, each
// is acknowledged exactly once, and the per-handler counters account
// one tx batch frame per SendBatch plus one rx reply per ack.
func TestSendBatchAckAndCounters(t *testing.T) {
	cds := wireFleet(t, 2, 64)
	rec := &recorder{}
	cds[1].SetBatchHandler(rec.handle)
	stop := servePoll(cds[1])

	const batches = 5
	acked := 0
	for i := 0; i < batches; i++ {
		payload := []byte{byte(i), byte(i + 1)}
		if err := cds[0].SendBatch(1, payload, func() { acked++ }); err != nil {
			t.Fatal(err)
		}
	}
	if err := cds[0].WaitFor(func() bool { return acked == batches }); err != nil {
		t.Fatal(err)
	}
	stop()

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.batches) != batches {
		t.Fatalf("delivered %d batches, want %d", len(rec.batches), batches)
	}
	for i, b := range rec.batches {
		if rec.froms[i] != 0 {
			t.Errorf("batch %d from rank %d, want 0", i, rec.froms[i])
		}
		if !bytes.Equal(b, []byte{byte(i), byte(i + 1)}) {
			t.Errorf("batch %d out of order or corrupt: %v", i, b)
		}
	}

	tx := cds[0].Counters()
	if got := tx["wire_tx_frames_batch"]; got != batches {
		t.Errorf("sender wire_tx_frames_batch = %v, want %d", got, batches)
	}
	if got := tx["wire_rx_frames_reply"]; got != batches {
		t.Errorf("sender wire_rx_frames_reply = %v, want %d", got, batches)
	}
	if tx["wire_tx_bytes_batch"] != 2*batches {
		t.Errorf("sender wire_tx_bytes_batch = %v, want %d", tx["wire_tx_bytes_batch"], 2*batches)
	}
	rxc := cds[1].Counters()
	if got := rxc["wire_rx_frames_batch"]; got != batches {
		t.Errorf("receiver wire_rx_frames_batch = %v, want %d", got, batches)
	}
	if rxc["wire_rx_frames"] < batches {
		t.Errorf("receiver wire_rx_frames = %v, want >= %d", rxc["wire_rx_frames"], batches)
	}
}
