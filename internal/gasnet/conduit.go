package gasnet

import "errors"

// Conduit is the backend seam of the runtime — the layer the paper's
// Fig 2 draws between GASNet and the swappable network conduits. Every
// cross-rank operation the core runtime performs on behalf of the
// remote-access API is expressed in this vocabulary: one-sided data
// movement, a fixed-function remote atomic, global memory management,
// barriers, an allgather rendezvous, and a lock service. All payloads
// are plain bytes (the segment's pointer-free guarantee makes every
// shared object byte-serializable), so a conduit may ship them over a
// wire; nothing in the vocabulary requires shared memory.
//
// Two implementations exist: ProcConduit runs over the in-process
// Engine (ranks are goroutines; the virtual-time cost model applies),
// and WireConduit runs over internal/transport's framed TCP messages
// (ranks are OS processes). Closure-carrying asyncs are deliberately
// NOT part of this interface — Go closures do not serialize — so they
// remain an in-process fast path; the core rejects them on wire-backed
// jobs with ErrNotWireCapable.
//
// A Conduit is driven by its rank's single SPMD goroutine: blocking
// calls service incoming requests while waiting (the GASNet progress
// rule), so a rank stalled in Barrier still serves its peers' Gets.
// Implementations are not required to be safe for concurrent callers.
type Conduit interface {
	// Rank returns the calling rank's index; Ranks the job size.
	Rank() int
	Ranks() int

	// Get copies len(p) bytes from rank's segment at off into p.
	// Put copies p into rank's segment at off.
	Get(rank int, off uint64, p []byte) error
	Put(rank int, off uint64, p []byte) error

	// Xor64 atomically xors val into the 8 bytes at off in rank's
	// segment and returns the new value (the HPCC update atomic).
	Xor64(rank int, off uint64, val uint64) (uint64, error)

	// Alloc reserves size bytes in rank's segment; Free releases an
	// allocation. Remote allocation is the paper's §III-C capability.
	Alloc(rank int, size uint64) (uint64, error)
	Free(rank int, off uint64) error

	// Barrier blocks until all ranks arrive, servicing requests.
	Barrier() error

	// AllGather deposits this rank's contribution and returns every
	// rank's, indexed by rank. Contributions may be empty and may
	// differ in length. All typed collectives reduce to this.
	AllGather(contrib []byte) ([][]byte, error)

	// LockNew creates a lock homed on the calling rank and returns its
	// id; LockAcquire blocks until the lock homed on `home` is held
	// (try: no queueing, reports success); LockRelease hands it to the
	// oldest waiter or frees it.
	LockNew() uint64
	LockAcquire(home int, id uint64, try bool) (bool, error)
	LockRelease(home int, id uint64) error

	// Poll services queued requests without blocking and reports how
	// many ran (the conduit half of the paper's advance()).
	Poll() int

	// WireCapable reports whether ranks live in separate address
	// spaces (true for WireConduit). The core uses it to reject
	// closure-shipping operations that cannot serialize.
	WireCapable() bool

	// Close tears down the conduit's resources. The caller must have
	// synchronized (e.g. a final Barrier) first.
	Close() error
}

// BatchConduit is the optional extension the message-aggregation layer
// (internal/agg, surfaced as core.AggPut/AggXor64/AggSend) requires of
// a conduit: ship one encoded batch of small operations as a single
// active message with a single acknowledgement, deliver incoming
// batches to an installed decoder, and block with progress. Only
// conduits whose ranks pay a per-message cost implement it —
// WireConduit does; ProcConduit deliberately does not, because an
// in-process remote access is already a direct segment load/store and
// coalescing would only add latency. The core runtime type-asserts
// this interface and falls back to immediate execution when it is
// absent, which is what makes the Agg* operations conduit-agnostic.
type BatchConduit interface {
	Conduit

	// SendBatch ships an encoded batch (internal/agg's op encoding) to
	// rank `to` without blocking; onAck runs on the calling rank's
	// goroutine once the target has applied every op in it.
	SendBatch(to int, payload []byte, onAck func()) error

	// SetBatchHandler installs the decoder incoming batches dispatch
	// to. The handler runs on the receiving rank's SPMD goroutine and
	// must apply the whole batch before returning (the conduit acks on
	// return); it must not block.
	SetBatchHandler(fn func(from int, payload []byte))

	// WaitFor blocks until pred() is true, servicing incoming requests
	// and acknowledgements while waiting.
	WaitFor(pred func() bool) error
}

// AsyncConduit is the optional extension the futures-based one-sided
// operations (core.ReadAsync, WriteAsync, CopyAsync, ReadSliceAsync)
// use for genuinely non-blocking data movement: the request frames
// leave now, the initiating rank keeps computing, and onDone fires
// from the rank's progress dispatch (Poll or a blocking call's wait
// loop) when the last reply arrives. Only conduits whose transfers
// have real wire latency implement it — WireConduit does; ProcConduit
// does not, because an in-process access completes in the same
// instruction stream and the core's virtual-time path models the
// overlap instead. The core type-asserts this interface and falls
// back to the eager-move-plus-modeled-completion path when absent.
type AsyncConduit interface {
	Conduit

	// GetAsync starts copying len(p) bytes from rank's segment at off
	// into p without blocking; onDone runs on the calling rank's
	// goroutine once every byte has landed. p must stay untouched
	// until then.
	GetAsync(rank int, off uint64, p []byte, onDone func()) error

	// PutAsync starts copying p into rank's segment at off without
	// blocking; onDone runs on the calling rank's goroutine once the
	// target has applied every byte.
	PutAsync(rank int, off uint64, p []byte, onDone func()) error
}

// CounterSource is implemented by conduits that meter their own
// traffic (WireConduit's per-handler frame/byte counters); the runtime
// folds these into job statistics and the bench harness into its JSON
// artifact.
type CounterSource interface {
	Counters() map[string]float64
}

// Memory is the local segment surface a conduit serves remote requests
// against. *segment.Segment satisfies it; the indirection keeps gasnet
// below the segment package in the layering.
type Memory interface {
	Read(off uint64, p []byte)
	Write(off uint64, p []byte)
	Xor64(off, val uint64) uint64
	Alloc(size uint64) (uint64, error)
	Free(off uint64) error
}

// ErrNotWireCapable is returned (wrapped in a panic by the core, which
// follows the paper's failed-process-aborts-the-job model) when an
// operation that ships Go closures — a raw-closure Async or
// AsyncFuture, RMW, raw AMs — targets a remote rank of a wire-backed
// job. Closures do not serialize; remote invocation over the wire uses
// registered functions instead (the core's RegisterTask + AsyncTask /
// AsyncTaskFuture, which ship a registry index and POD-encoded
// arguments), and data movement uses the encoded-argument operations
// (Read/Write/Copy, AtomicXor, collectives, locks).
var ErrNotWireCapable = errors.New(
	"gasnet: operation ships a Go closure and cannot cross a wire conduit " +
		"(wire-capable: registered tasks [RegisterTask+AsyncTask], Read/Write/Copy/AsyncCopy, " +
		"AtomicXor, Allocate/Deallocate, Barrier, collectives, locks)")
