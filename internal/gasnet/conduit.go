package gasnet

import (
	"errors"
	"fmt"
	"time"
)

// Conduit is the backend seam of the runtime — the layer the paper's
// Fig 2 draws between GASNet and the swappable network conduits. Every
// cross-rank operation the core runtime performs on behalf of the
// remote-access API is expressed in this vocabulary: one-sided data
// movement, a fixed-function remote atomic, global memory management,
// barriers, an allgather rendezvous, and a lock service. All payloads
// are plain bytes (the segment's pointer-free guarantee makes every
// shared object byte-serializable), so a conduit may ship them over a
// wire; nothing in the vocabulary requires shared memory.
//
// Two implementations exist: ProcConduit runs over the in-process
// Engine (ranks are goroutines; the virtual-time cost model applies),
// and WireConduit runs over internal/transport's framed TCP messages
// (ranks are OS processes). Closure-carrying asyncs are deliberately
// NOT part of this interface — Go closures do not serialize — so they
// remain an in-process fast path; the core rejects them on wire-backed
// jobs with ErrNotWireCapable.
//
// A Conduit is driven by its rank's single SPMD goroutine: blocking
// calls service incoming requests while waiting (the GASNet progress
// rule), so a rank stalled in Barrier still serves its peers' Gets.
// Implementations are not required to be safe for concurrent callers.
type Conduit interface {
	// Rank returns the calling rank's index; Ranks the job size.
	Rank() int
	Ranks() int

	// Get copies len(p) bytes from rank's segment at off into p.
	// Put copies p into rank's segment at off.
	Get(rank int, off uint64, p []byte) error
	Put(rank int, off uint64, p []byte) error

	// Xor64 atomically xors val into the 8 bytes at off in rank's
	// segment and returns the new value (the HPCC update atomic).
	Xor64(rank int, off uint64, val uint64) (uint64, error)

	// Alloc reserves size bytes in rank's segment; Free releases an
	// allocation. Remote allocation is the paper's §III-C capability.
	Alloc(rank int, size uint64) (uint64, error)
	Free(rank int, off uint64) error

	// Barrier blocks until all ranks arrive, servicing requests.
	Barrier() error

	// AllGather deposits this rank's contribution and returns every
	// rank's, indexed by rank. Contributions may be empty and may
	// differ in length. All typed collectives reduce to this.
	AllGather(contrib []byte) ([][]byte, error)

	// LockNew creates a lock homed on the calling rank and returns its
	// id; LockAcquire blocks until the lock homed on `home` is held
	// (try: no queueing, reports success); LockRelease hands it to the
	// oldest waiter or frees it.
	LockNew() uint64
	LockAcquire(home int, id uint64, try bool) (bool, error)
	LockRelease(home int, id uint64) error

	// Poll services queued requests without blocking and reports how
	// many ran (the conduit half of the paper's advance()).
	Poll() int

	// WireCapable reports whether ranks live in separate address
	// spaces (true for WireConduit). The core uses it to reject
	// closure-shipping operations that cannot serialize.
	WireCapable() bool

	// Capabilities reports which optional extensions this conduit
	// implements, as one discoverable probe (see Caps). The core runtime
	// reads it once at job start instead of scattering interface-upgrade
	// type asserts; a composing conduit (HierConduit) advertises exactly
	// the intersection its legs support.
	Capabilities() Caps

	// Close tears down the conduit's resources. The caller must have
	// synchronized (e.g. a final Barrier) first.
	Close() error
}

// Caps is a conduit's optional-capability surface: each field is nil
// when the backend does not implement the extension, or the extension
// itself when it does. Capabilities() returning a struct of typed
// interfaces — rather than callers type-asserting the conduit — is
// what lets a composing backend advertise a capability set different
// from its Go method set (HierConduit, for example, carries a
// resilient wire leg but does not offer resilience, because its shm
// plane has no failure detector).
//
// Invariant: a non-nil field must behave exactly as its interface
// documents; the table-driven caps test asserts each backend reports
// exactly what it implements.
type Caps struct {
	// Batch is the aggregation plane (SendBatch/SetBatchHandler/
	// WaitFor); nil on backends where a remote access is already a
	// direct load/store (ProcConduit).
	Batch BatchConduit
	// Async is the non-blocking data plane (GetAsync/PutAsync); nil on
	// backends whose transfers complete in the same instruction stream.
	Async AsyncConduit
	// Resilient is the survivable-peer-loss extension; nil on backends
	// without a failure detector.
	Resilient ResilientConduit
	// Teams is the subset-collective rendezvous (team-scoped barrier
	// and allgather); nil only on conduits predating the team API.
	Teams TeamConduit
	// Counters is the backend's named traffic metering; nil when the
	// backend keeps no counters.
	Counters CounterSource
	// Locality reports the host topology the conduit was launched
	// with; nil when the backend has no notion of co-location.
	Locality LocalityConduit
	// Waker is the cross-goroutine wakeup extension: external threads
	// (an HTTP server, a signal handler) nudging a blocked progress
	// loop. Nil on backends whose WaitFor already spins (ProcConduit).
	Waker WakerConduit
}

// WakerConduit is the optional extension that lets a goroutine OTHER
// than the rank's progress goroutine unblock a WaitFor on this
// conduit. Wake must be safe to call from any goroutine, any number
// of times, and must cause a concurrently blocked WaitFor on this
// conduit's own rank to re-evaluate its predicate promptly. Spurious
// wakes (nobody waiting) must be harmless. This is the seam the
// service plane uses to hand work from HTTP handler goroutines to the
// SPMD progress loop without polling latency.
type WakerConduit interface {
	Wake()
}

// TeamConduit is the optional extension backing team-scoped
// collectives (core.Team): an allgather rendezvous over an arbitrary
// ordered subset of ranks. Every member must call with the same key
// and the same members slice (world ranks in team-rank order,
// members[0] acting as the rendezvous root); keys must be unique per
// collective operation — the core derives them from the team id and a
// per-team sequence number, so independent teams may run collectives
// concurrently without interference. Team collectives do not skip
// dead ranks; resilient jobs keep teams of live ranks.
type TeamConduit interface {
	// TeamAllGather deposits contrib and returns every member's
	// contribution indexed by team rank (position in members).
	TeamAllGather(key uint64, members []int, contrib []byte) ([][]byte, error)

	// TeamBarrier blocks until every member arrives at key, servicing
	// requests while waiting.
	TeamBarrier(key uint64, members []int) error
}

// LocalityConduit exposes the host topology a conduit was launched
// with, so the runtime can form the local team without a side channel.
type LocalityConduit interface {
	// Nodes returns the host index of every rank (len = Ranks()); ranks
	// with equal entries are co-located and may share memory.
	Nodes() []int
}

// BatchConduit is the optional extension the message-aggregation layer
// (internal/agg, surfaced as core.AggPut/AggXor64/AggSend) requires of
// a conduit: ship one encoded batch of small operations as a single
// active message with a single acknowledgement, deliver incoming
// batches to an installed decoder, and block with progress. Only
// conduits whose ranks pay a per-message cost implement it —
// WireConduit does; ProcConduit deliberately does not, because an
// in-process remote access is already a direct segment load/store and
// coalescing would only add latency. The core runtime probes for it
// through Capabilities().Batch and falls back to immediate execution
// when it is absent, which is what makes the Agg* operations
// conduit-agnostic.
type BatchConduit interface {
	Conduit

	// SendBatch ships an encoded batch (internal/agg's op encoding) to
	// rank `to` without blocking; onAck runs on the calling rank's
	// goroutine once the target has applied every op in it.
	SendBatch(to int, payload []byte, onAck func()) error

	// SetBatchHandler installs the decoder incoming batches dispatch
	// to. The handler runs on the receiving rank's SPMD goroutine and
	// must apply the whole batch before returning (the conduit acks on
	// return); it must not block.
	SetBatchHandler(fn func(from int, payload []byte))

	// WaitFor blocks until pred() is true, servicing incoming requests
	// and acknowledgements while waiting.
	WaitFor(pred func() bool) error
}

// AsyncConduit is the optional extension the futures-based one-sided
// operations (core.ReadAsync, WriteAsync, CopyAsync, ReadSliceAsync)
// use for genuinely non-blocking data movement: the request frames
// leave now, the initiating rank keeps computing, and onDone fires
// from the rank's progress dispatch (Poll or a blocking call's wait
// loop) when the last reply arrives. Only conduits whose transfers
// have real wire latency implement it — WireConduit does; ProcConduit
// does not, because an in-process access completes in the same
// instruction stream and the core's virtual-time path models the
// overlap instead. The core probes for it through
// Capabilities().Async and falls back to the
// eager-move-plus-modeled-completion path when absent.
type AsyncConduit interface {
	Conduit

	// GetAsync starts copying len(p) bytes from rank's segment at off
	// into p without blocking; onDone runs on the calling rank's
	// goroutine once every byte has landed (err nil), or with the
	// failure — a reply deadline expiry (timeout > 0 and resilience
	// enabled) or the target rank's death. p must stay untouched until
	// then. Contract: a non-nil return means onDone was not and will
	// not be invoked; otherwise onDone runs exactly once.
	GetAsync(rank int, off uint64, p []byte, timeout time.Duration, onDone func(err error)) error

	// PutAsync starts copying p into rank's segment at off without
	// blocking; onDone runs on the calling rank's goroutine once the
	// target has applied every byte, or with the failure. Same timeout
	// and exactly-once contract as GetAsync.
	PutAsync(rank int, off uint64, p []byte, timeout time.Duration, onDone func(err error)) error
}

// ResilienceConfig tunes the heartbeat failure detector of a conduit
// opted into resilient mode. Zero fields take defaults.
type ResilienceConfig struct {
	// HeartbeatInterval is how long a peer may stay silent before this
	// rank pings it (default 50ms).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long an outstanding ping may go
	// unanswered before the peer is declared dead (default 250ms).
	HeartbeatTimeout time.Duration
}

func (rc ResilienceConfig) withDefaults() ResilienceConfig {
	if rc.HeartbeatInterval <= 0 {
		rc.HeartbeatInterval = 50 * time.Millisecond
	}
	if rc.HeartbeatTimeout <= 0 {
		rc.HeartbeatTimeout = 250 * time.Millisecond
	}
	return rc
}

// ResilientConduit is the optional extension a conduit implements when
// it can survive individual rank deaths instead of aborting the job:
// heartbeat-based failure detection over the AM plane, typed
// ErrRankDead failures for operations addressed to dead ranks (instead
// of hangs), dead-rank-skipping collectives, and a coarse timer
// service the retry layer schedules backoffs on. Everything stays
// dormant — byte-for-byte legacy behavior — until EnableResilience is
// called. WireConduit implements it; ProcConduit does not (in-process
// rank death is simulated above the conduit, in core's chaos plane).
type ResilientConduit interface {
	Conduit

	// EnableResilience switches the conduit to survivable mode:
	// heartbeats start, peer loss marks single ranks dead rather than
	// tearing the job down, and onRankDeath (may be nil) runs on the
	// calling rank's goroutine exactly once per dead rank.
	EnableResilience(rc ResilienceConfig, onRankDeath func(rank int))

	// RankDead reports whether rank has been declared dead.
	RankDead(rank int) bool

	// After schedules fn on the conduit's tick sweep once d has
	// elapsed, running on the calling rank's goroutine. Requires
	// resilient mode (the tick is what drives it).
	After(d time.Duration, fn func())

	// Abort closes the conduit immediately without the goodbye
	// handshake, so peers observe this rank as dead — the in-process
	// simulation of a killed rank.
	Abort()
}

// ErrRankDead is the sentinel matched (via errors.Is) by every
// RankDeadError: the target of an operation was declared dead by the
// failure detector, so the operation failed fast instead of hanging.
var ErrRankDead = errors.New("gasnet: rank dead")

// RankDeadError reports which rank died and why.
type RankDeadError struct {
	Rank  int
	Cause error
}

func (e *RankDeadError) Error() string {
	if e.Cause == nil {
		return fmt.Sprintf("gasnet: rank %d dead", e.Rank)
	}
	return fmt.Sprintf("gasnet: rank %d dead: %v", e.Rank, e.Cause)
}
func (e *RankDeadError) Is(target error) bool { return target == ErrRankDead }
func (e *RankDeadError) Unwrap() error        { return e.Cause }

// ErrTimeout is the sentinel matched by TimeoutError: a per-attempt
// reply deadline expired with the target still considered alive.
var ErrTimeout = errors.New("gasnet: reply deadline expired")

// TimeoutError reports an expired reply deadline for one request.
type TimeoutError struct {
	Rank  int
	After time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("gasnet: no reply from rank %d within %v", e.Rank, e.After)
}
func (e *TimeoutError) Is(target error) bool { return target == ErrTimeout }

// CounterSource is implemented by conduits that meter their own
// traffic (WireConduit's per-handler frame/byte counters); the runtime
// folds these into job statistics and the bench harness into its JSON
// artifact.
type CounterSource interface {
	Counters() map[string]float64
}

// Memory is the local segment surface a conduit serves remote requests
// against. *segment.Segment satisfies it; the indirection keeps gasnet
// below the segment package in the layering.
type Memory interface {
	Read(off uint64, p []byte)
	Write(off uint64, p []byte)
	Xor64(off, val uint64) uint64
	Alloc(size uint64) (uint64, error)
	Free(off uint64) error
}

// ErrNotWireCapable is returned (wrapped in a panic by the core, which
// follows the paper's failed-process-aborts-the-job model) when an
// operation that ships Go closures — a raw-closure Async or
// AsyncFuture, RMW, raw AMs — targets a remote rank of a wire-backed
// job. Closures do not serialize; remote invocation over the wire uses
// registered functions instead (the core's RegisterTask + AsyncTask /
// AsyncTaskFuture, which ship a registry index and POD-encoded
// arguments), and data movement uses the encoded-argument operations
// (Read/Write/Copy, AtomicXor, collectives, locks).
var ErrNotWireCapable = errors.New(
	"gasnet: operation ships a Go closure and cannot cross a wire conduit " +
		"(wire-capable: registered tasks [RegisterTask+AsyncTask], Read/Write/Copy/AsyncCopy, " +
		"AtomicXor, Allocate/Deallocate, Barrier, collectives, locks)")
