package gasnet

import (
	"sync"
	"sync/atomic"
	"testing"

	"upcxx/internal/sim"
)

func newTestEngine(n int) *Engine {
	return New(sim.NewModel(true, sim.Local, sim.SWUPCXX, n), n)
}

// spawn runs f on every rank and waits for completion.
func spawn(g *Engine, f func(e *Endpoint)) {
	var wg sync.WaitGroup
	for i := 0; i < g.N; i++ {
		wg.Add(1)
		go func(e *Endpoint) {
			defer wg.Done()
			f(e)
		}(g.Endpoint(i))
	}
	wg.Wait()
}

func TestSendAndPoll(t *testing.T) {
	g := newTestEngine(2)
	var got atomic.Int64
	spawn(g, func(e *Endpoint) {
		if e.Rank == 0 {
			e.Send(1, 8, func(*Endpoint) { got.Store(42) })
		}
		e.Barrier() // delivery ordering: message is in flight before exit
		e.Poll()    // target drains whatever arrived
		e.Barrier()
	})
	if got.Load() != 42 {
		t.Fatalf("AM did not run: got %d", got.Load())
	}
}

func TestLoopbackSendRunsInline(t *testing.T) {
	g := newTestEngine(1)
	e := g.Endpoint(0)
	ran := false
	e.Send(0, 0, func(*Endpoint) { ran = true })
	if !ran {
		t.Fatal("loopback AM should execute synchronously")
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	g := newTestEngine(4)
	var after [4]float64
	spawn(g, func(e *Endpoint) {
		// Skewed clocks: rank i advances i microseconds.
		e.Clock.Advance(float64(e.Rank) * 1000)
		e.Barrier()
		after[e.Rank] = e.Clock.Now()
	})
	want := after[0]
	if want <= 3000 {
		t.Fatalf("release time %v should exceed max entry clock 3000", want)
	}
	for i, v := range after {
		if v != want {
			t.Fatalf("rank %d clock %v differs from rank 0 clock %v", i, v, want)
		}
	}
}

func TestBarrierManyRounds(t *testing.T) {
	g := newTestEngine(8)
	var sum atomic.Int64
	spawn(g, func(e *Endpoint) {
		for round := 0; round < 50; round++ {
			if e.Rank == round%8 {
				sum.Add(1)
			}
			e.Barrier()
			// Every rank must observe all increments so far.
			if int(sum.Load()) < round+1 {
				t.Errorf("round %d: rank %d saw sum %d", round, e.Rank, sum.Load())
			}
			e.Barrier()
		}
	})
	if sum.Load() != 50 {
		t.Fatalf("sum = %d, want 50", sum.Load())
	}
}

func TestWaitForWake(t *testing.T) {
	g := newTestEngine(2)
	var flag atomic.Bool
	spawn(g, func(e *Endpoint) {
		if e.Rank == 0 {
			e.Clock.Advance(5000)
			// The transition WaitFor is waiting on must ride the wake
			// message itself (the engine's invariant 2): storing the
			// flag before sending would let the waiter observe it
			// without consuming the wake, leaving its clock behind.
			e.SendAt(1, e.Clock.Now()+1000, 0, func(*Endpoint) { flag.Store(true) })
			e.Barrier()
		} else {
			e.WaitFor(flag.Load)
			if e.Clock.Now() < 6000 {
				t.Errorf("waiter clock %v should include wake arrival 6000", e.Clock.Now())
			}
			e.Barrier()
		}
	})
}

func TestSendBackpressureNoDeadlock(t *testing.T) {
	// Two ranks flood each other far beyond InboxCap; the self-draining
	// send must prevent the classic mutual-full-inbox deadlock.
	g := newTestEngine(2)
	const msgs = InboxCap * 10
	var delivered atomic.Int64
	spawn(g, func(e *Endpoint) {
		other := 1 - e.Rank
		for i := 0; i < msgs; i++ {
			e.Send(other, 8, func(*Endpoint) { delivered.Add(1) })
		}
		e.Barrier()
		e.Poll()
		e.Barrier()
	})
	if delivered.Load() != 2*msgs {
		t.Fatalf("delivered %d, want %d", delivered.Load(), 2*msgs)
	}
}

func TestTaskArrivalAdvancesTargetClock(t *testing.T) {
	g := newTestEngine(2)
	spawn(g, func(e *Endpoint) {
		if e.Rank == 0 {
			e.Clock.Advance(1e6) // 1 ms ahead
			e.Send(1, 0, func(tgt *Endpoint) {
				if tgt.Clock.Now() < 1e6 {
					t.Errorf("target executed task at %v, before send time 1e6", tgt.Clock.Now())
				}
			})
			e.Barrier()
		} else {
			e.Barrier()
		}
	})
}

func TestCollectiveAllGather(t *testing.T) {
	g := newTestEngine(8)
	results := make([][]int, 8)
	spawn(g, func(e *Endpoint) {
		slot := e.Collective(
			func(n int) any { return make([]int, n) },
			func(s any) { s.([]int)[e.Rank] = e.Rank * e.Rank },
			nil,
			8,
		)
		results[e.Rank] = slot.([]int)
	})
	for r := 0; r < 8; r++ {
		for i := 0; i < 8; i++ {
			if results[r][i] != i*i {
				t.Fatalf("rank %d slot[%d] = %d, want %d", r, i, results[r][i], i*i)
			}
		}
	}
	// All ranks must share the same backing array (no quadratic copies).
	if &results[0][0] != &results[7][0] {
		t.Error("collective results should share one backing array")
	}
}

func TestCollectiveSequencing(t *testing.T) {
	// Back-to-back collectives must not bleed into each other.
	g := newTestEngine(4)
	bad := atomic.Bool{}
	spawn(g, func(e *Endpoint) {
		for round := 0; round < 20; round++ {
			slot := e.Collective(
				func(n int) any { return make([]int, n) },
				func(s any) { s.([]int)[e.Rank] = round },
				nil,
				8,
			).([]int)
			for _, v := range slot {
				if v != round {
					bad.Store(true)
				}
			}
		}
	})
	if bad.Load() {
		t.Fatal("collective rounds interleaved")
	}
}

func TestStatsCounting(t *testing.T) {
	g := newTestEngine(2)
	spawn(g, func(e *Endpoint) {
		if e.Rank == 0 {
			for i := 0; i < 5; i++ {
				e.Send(1, 100, func(*Endpoint) {})
			}
		}
		e.Barrier()
		e.Poll()
		e.Barrier()
	})
	ams, tasks, _, _, _, _ := g.TotalStats()
	if ams != 5 {
		t.Errorf("AMs = %d, want 5", ams)
	}
	if tasks != 5 {
		t.Errorf("Tasks = %d, want 5", tasks)
	}
}

func TestManyRanksBarrierStress(t *testing.T) {
	// 1024 goroutine ranks through repeated barriers: exercises the
	// generation handoff under heavy contention.
	g := newTestEngine(1024)
	var rounds atomic.Int64
	spawn(g, func(e *Endpoint) {
		for i := 0; i < 5; i++ {
			e.Barrier()
		}
		rounds.Add(1)
	})
	if rounds.Load() != 1024 {
		t.Fatalf("only %d ranks completed", rounds.Load())
	}
}

func TestMaxClock(t *testing.T) {
	g := newTestEngine(3)
	spawn(g, func(e *Endpoint) {
		e.Clock.Advance(float64(e.Rank) * 100)
	})
	if mc := g.MaxClock(); mc != 200 {
		t.Fatalf("MaxClock = %v, want 200", mc)
	}
}
