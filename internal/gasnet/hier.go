package gasnet

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"

	"upcxx/internal/frames"
	"upcxx/internal/obs"
	"upcxx/internal/transport"
)

// Wire handler ids of the hierarchical leader plane (13/14 are the flat
// team collectives in wire.go; the two tables share one numbering).
const (
	hHierGather uint16 = 15 // Arg=key, payload = fragment of a subtree's entry blob
	hHierTable  uint16 = 16 // Arg=key, payload = fragment of the member-ordered table
	hHierBar    uint16 = 17 // Arg=key, payload = [round u64]; dissemination token
)

// Shm AM handler ids (ShmConduit's own table, disjoint from the wire's).
const (
	shmReply       uint16 = 1 // arg=token, payload = reply bytes
	shmAlloc       uint16 = 2 // arg=token, payload = [size u64]; reply 0 = fail
	shmFree        uint16 = 3 // arg=token, payload = [off u64]
	shmBatch       uint16 = 4 // arg=token, payload = aggregation batch
	shmTeamContrib uint16 = 5 // arg=key, payload = member's contribution (to its leader)
	shmTeamTable   uint16 = 6 // arg=key, payload = the encoded table (leader to locals)
	shmBarArrive   uint16 = 7 // arg=key, no payload
	shmBarRelease  uint16 = 8 // arg=key, no payload
)

// HierConduit is the two-level backend: co-located ranks (same host
// index in the launch topology) communicate through an ShmConduit —
// direct load/store puts and gets into mmap'd peer segments, AM rings
// for control — while cross-host traffic rides a WireConduit, and
// collectives run hierarchically: an intra-host phase over shared
// memory, then a tree/dissemination phase among one elected leader per
// host (the first co-located rank). This is the paper's two-level
// machine model: GASNet's PSHM bypass below, the network conduit above.
//
// The wire leg's blocking-wait primitive is replaced so that EVERY
// blocking wire operation also services the shm plane (and vice versa,
// via the shm producer's idle hook) — a rank parked in a wire lock
// request still answers its neighbors' shared-memory allocations, which
// is what keeps the two planes deadlock-free under mutual blocking.
//
// Like its legs, a HierConduit is driven by its rank's single SPMD
// goroutine. It advertises Batch, Async, Teams, Counters and Locality;
// NOT Resilient — the shm plane has no failure detector, so the
// composed conduit cannot honor survivable peer loss even though its
// wire leg could.
type HierConduit struct {
	wire  *WireConduit
	shm   *ShmConduit
	nodes []int // host index per world rank

	me       int
	locals   []int       // world ranks co-located with me, ascending (locals[shmIdx] = world)
	localIdx map[int]int // world rank -> shm local index

	nextToken uint64
	replies   map[uint64][]byte
	shmAcks   map[uint64]func()

	gen uint64 // world-collective generation (Barrier/AllGather keys)

	// Leader-plane collective state. All maps accumulate passively from
	// handlers: a leader may receive deposits for a key before it enters
	// that collective itself.
	localParts map[uint64]map[int][]byte // leader: world rank -> contrib
	localTable map[uint64][]byte         // member: table by key
	treeBlobs  map[uint64]map[int][]byte // leader: child leader (world) -> entry blob
	treeFrags  map[fragKey]*fragBuf      // leader: partial blobs (gen field holds the key)
	hierTable  map[uint64][]byte         // leader: table from parent by key
	tableFrags map[uint64]*fragBuf       // leader: partial tables by key
	barLocal   map[uint64]int            // leader: local arrivals by key
	barRelease map[uint64]bool           // member: release flag by key
	barWire    map[hierBarKey]int        // leader: dissemination tokens by (key, round)

	// ring is this rank's span ring (nil unless tracing is on); SetObs
	// installs it here and on both legs.
	ring *obs.Ring
}

type hierBarKey struct {
	key   uint64
	round int
}

// NewHierConduit composes wire and shm under the given host topology
// (nodes[r] = host of world rank r). shm must already be Attached, its
// locals being exactly the ranks sharing wire.Rank()'s host, in
// ascending world-rank order.
func NewHierConduit(wire *WireConduit, shm *ShmConduit, nodes []int) *HierConduit {
	me := wire.Rank()
	if len(nodes) != wire.Ranks() {
		panic(fmt.Sprintf("gasnet: hier topology has %d entries for %d ranks", len(nodes), wire.Ranks()))
	}
	h := &HierConduit{
		wire:       wire,
		shm:        shm,
		nodes:      nodes,
		me:         me,
		localIdx:   make(map[int]int),
		replies:    make(map[uint64][]byte),
		shmAcks:    make(map[uint64]func()),
		localParts: make(map[uint64]map[int][]byte),
		localTable: make(map[uint64][]byte),
		treeBlobs:  make(map[uint64]map[int][]byte),
		treeFrags:  make(map[fragKey]*fragBuf),
		hierTable:  make(map[uint64][]byte),
		tableFrags: make(map[uint64]*fragBuf),
		barLocal:   make(map[uint64]int),
		barRelease: make(map[uint64]bool),
		barWire:    make(map[hierBarKey]int),
	}
	for r, nd := range nodes {
		if nd == nodes[me] {
			h.localIdx[r] = len(h.locals)
			h.locals = append(h.locals, r)
		}
	}
	if len(h.locals) != shm.Locals() || h.localIdx[me] != shm.Local() {
		panic(fmt.Sprintf("gasnet: shm geometry (%d locals, me %d) disagrees with topology (%d, %d)",
			shm.Locals(), shm.Local(), len(h.locals), h.localIdx[me]))
	}

	// Both planes' blocked waits service each other.
	wire.wait = h.waitFor
	shm.SetIdle(func() { wire.Poll() })

	wire.register(hHierGather, h.onHierGather)
	wire.register(hHierTable, h.onHierTable)
	wire.register(hHierBar, h.onHierBar)

	shm.Register(shmReply, h.onShmReply)
	shm.Register(shmAlloc, h.onShmAlloc)
	shm.Register(shmFree, h.onShmFree)
	shm.Register(shmBatch, h.onShmBatch)
	shm.Register(shmTeamContrib, h.onShmTeamContrib)
	shm.Register(shmTeamTable, h.onShmTeamTable)
	shm.Register(shmBarArrive, h.onShmBarArrive)
	shm.Register(shmBarRelease, h.onShmBarRelease)
	return h
}

// waitFor services both planes until pred() is true. Poll on the wire
// leg also flushes its buffered outgoing frames, so a peer is never
// left waiting on a frame parked in our write buffer.
//
// A rank with no co-located peers has a silent shm plane, so it blocks
// event-driven on the transport inbox — zero-cost waits, exactly as
// the flat wire conduit. With live shm peers the mapped rings have no
// wakeup mechanism (that is their point: no kernel in the path), so
// the wait is a polling loop, as in any PSHM-enabled GASNet: both
// polls are cheap (a channel drain, a few atomic loads). The spin
// budget is deliberately short before backing off to a sleep — peers
// sharing cores (the common case for co-located ranks) need this CPU
// to produce the very message being waited for.
func (h *HierConduit) waitFor(pred func() bool) error {
	if h.shm.Locals() == 1 {
		return h.wire.tep.WaitFor(pred)
	}
	idle := 0
	for !pred() {
		if h.wire.Poll()+h.shm.Poll() > 0 {
			idle = 0
			continue
		}
		idle++
		if idle < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
	return nil
}

// Rank returns this conduit's world rank; Ranks the job size.
func (h *HierConduit) Rank() int  { return h.me }
func (h *HierConduit) Ranks() int { return h.wire.Ranks() }

// WireCapable reports true: ranks are separate processes even when
// co-located — closures still do not cross.
func (h *HierConduit) WireCapable() bool { return true }

// Capabilities: batching, the async data plane, team collectives,
// counters, locality and external wakeup. No resilience (see type
// comment).
func (h *HierConduit) Capabilities() Caps {
	return Caps{Batch: h, Async: h, Teams: h, Counters: h, Locality: h, Waker: h}
}

// Wake unblocks a WaitFor on this conduit from a foreign goroutine
// (WakerConduit). The wire leg's inbox is what waitFor blocks on when
// this rank has no co-located peers; with peers the wait spins and a
// wake is unnecessary but harmless.
func (h *HierConduit) Wake() { h.wire.Wake() }

// Nodes returns the launch topology (LocalityConduit).
func (h *HierConduit) Nodes() []int { return h.nodes }

// SetObs installs the rank's span ring on the composed conduit and
// both of its legs.
func (h *HierConduit) SetObs(ring *obs.Ring) {
	h.ring = ring
	h.wire.SetObs(ring)
	h.shm.SetObs(ring)
}

// colocated returns the shm index of a co-located non-self rank.
func (h *HierConduit) colocated(rank int) (int, bool) {
	if rank == h.me {
		return 0, false
	}
	li, ok := h.localIdx[rank]
	return li, ok
}

// ---- One-sided data plane ----

// Get: co-located targets are direct loads from the peer's mapped
// segment — no frame, no kernel, the PSHM fast path; everything else is
// the wire leg (which keeps its own self fast path).
func (h *HierConduit) Get(rank int, off uint64, p []byte) error {
	if li, ok := h.colocated(rank); ok {
		seg := h.shm.PeerSeg(li)
		if off+uint64(len(p)) > uint64(len(seg)) {
			return fmt.Errorf("gasnet: shm get of %d bytes at %d overruns %d-byte segment", len(p), off, len(seg))
		}
		copy(p, seg[off:])
		return nil
	}
	return h.wire.Get(rank, off, p)
}

// Put: the direct-store mirror of Get.
func (h *HierConduit) Put(rank int, off uint64, p []byte) error {
	if li, ok := h.colocated(rank); ok {
		seg := h.shm.PeerSeg(li)
		if off+uint64(len(p)) > uint64(len(seg)) {
			return fmt.Errorf("gasnet: shm put of %d bytes at %d overruns %d-byte segment", len(p), off, len(seg))
		}
		copy(seg[off:], p)
		return nil
	}
	return h.wire.Put(rank, off, p)
}

// Xor64: a CAS loop directly on the co-located peer's mapped word — the
// same loop the segment's own Xor64 runs, so owner and neighbors
// contend correctly through the one shared memory location.
func (h *HierConduit) Xor64(rank int, off uint64, val uint64) (uint64, error) {
	if li, ok := h.colocated(rank); ok {
		seg := h.shm.PeerSeg(li)
		if off+8 > uint64(len(seg)) {
			return 0, fmt.Errorf("gasnet: shm xor at %d overruns %d-byte segment", off, len(seg))
		}
		p := (*uint64)(unsafe.Pointer(&seg[off]))
		for {
			old := atomic.LoadUint64(p)
			if atomic.CompareAndSwapUint64(p, old, old^val) {
				return old ^ val, nil
			}
		}
	}
	return h.wire.Xor64(rank, off, val)
}

// GetAsync completes co-located transfers synchronously (a direct copy
// IS the completed transfer); cross-host ones ride the wire's async
// plane.
func (h *HierConduit) GetAsync(rank int, off uint64, p []byte, timeout time.Duration, onDone func(err error)) error {
	if _, ok := h.colocated(rank); ok {
		if err := h.Get(rank, off, p); err != nil {
			return err
		}
		onDone(nil)
		return nil
	}
	return h.wire.GetAsync(rank, off, p, timeout, onDone)
}

// PutAsync is the mirror of GetAsync.
func (h *HierConduit) PutAsync(rank int, off uint64, p []byte, timeout time.Duration, onDone func(err error)) error {
	if _, ok := h.colocated(rank); ok {
		if err := h.Put(rank, off, p); err != nil {
			return err
		}
		onDone(nil)
		return nil
	}
	return h.wire.PutAsync(rank, off, p, timeout, onDone)
}

// ---- Control plane: allocation over shm AMs ----

// shmRequest is the shm plane's blocking request/reply: the token rides
// the record's arg, the reply arrives as shmReply, and the wait loop
// services both planes.
func (h *HierConduit) shmRequest(li int, handler uint16, payload []byte) []byte {
	h.nextToken++
	tok := h.nextToken
	h.shm.Send(li, handler, tok, payload)
	var out []byte
	found := false
	_ = h.waitFor(func() bool {
		out, found = h.replies[tok]
		return found
	})
	delete(h.replies, tok)
	return out
}

func (h *HierConduit) onShmReply(from int, tok uint64, payload []byte) {
	if fn, ok := h.shmAcks[tok]; ok {
		delete(h.shmAcks, tok)
		fn()
		return
	}
	h.replies[tok] = payload
}

// Alloc runs on the owner's allocator: self directly, co-located via a
// shm AM round trip, remote over the wire.
func (h *HierConduit) Alloc(rank int, size uint64) (uint64, error) {
	li, ok := h.colocated(rank)
	if !ok {
		return h.wire.Alloc(rank, size)
	}
	var req [8]byte
	putU64(req[:], size)
	rep := h.shmRequest(li, shmAlloc, req[:])
	v := u64(rep)
	if v == 0 {
		return 0, fmt.Errorf("gasnet: remote alloc of %d bytes on rank %d failed", size, rank)
	}
	return v - 1, nil
}

func (h *HierConduit) onShmAlloc(from int, tok uint64, payload []byte) {
	var rep [8]byte
	if off, err := h.wire.mem.Alloc(u64(payload)); err == nil {
		putU64(rep[:], off+1)
	}
	h.shm.Send(from, shmReply, tok, rep[:])
}

// Free mirrors Alloc.
func (h *HierConduit) Free(rank int, off uint64) error {
	li, ok := h.colocated(rank)
	if !ok {
		return h.wire.Free(rank, off)
	}
	var req [8]byte
	putU64(req[:], off)
	rep := h.shmRequest(li, shmFree, req[:])
	if u64(rep) == 0 {
		return fmt.Errorf("gasnet: remote free at offset %d on rank %d failed", off, rank)
	}
	return nil
}

func (h *HierConduit) onShmFree(from int, tok uint64, payload []byte) {
	var rep [8]byte
	if h.wire.mem.Free(u64(payload)) == nil {
		putU64(rep[:], 1)
	}
	h.shm.Send(from, shmReply, tok, rep[:])
}

// ---- Lock service ----
//
// Locks stay on the wire plane unconditionally: a lock's waiter queue
// must live in exactly one place, and the home rank's wire handler
// table is it. Blocking acquires still service the shm plane (the
// replaced wait), so co-located ranks spinning on one lock make
// progress.

func (h *HierConduit) LockNew() uint64 { return h.wire.LockNew() }
func (h *HierConduit) LockAcquire(home int, id uint64, try bool) (bool, error) {
	return h.wire.LockAcquire(home, id, try)
}
func (h *HierConduit) LockRelease(home int, id uint64) error {
	return h.wire.LockRelease(home, id)
}

// ---- Aggregation batch plane ----

// SetBatchHandler installs the decoder on both planes.
func (h *HierConduit) SetBatchHandler(fn func(from int, payload []byte)) {
	h.wire.SetBatchHandler(fn)
}

// SendBatch routes one aggregation batch by locality: co-located
// batches ride the shm ring (one record, one shm ack — no wire frames
// at all), remote ones the wire's batch plane.
func (h *HierConduit) SendBatch(to int, payload []byte, onAck func()) error {
	li, ok := h.colocated(to)
	if !ok {
		return h.wire.SendBatch(to, payload, onAck)
	}
	if onAck == nil {
		onAck = func() {}
	}
	h.nextToken++
	h.shmAcks[h.nextToken] = onAck
	h.shm.Send(li, shmBatch, h.nextToken, payload)
	// shm.Send copied the batch into the ring; the pooled encoder
	// buffer arrived owned by this call, so recycle it here.
	frames.Put(payload)
	return nil
}

func (h *HierConduit) onShmBatch(from int, tok uint64, payload []byte) {
	if h.wire.batchHandler == nil {
		panic("gasnet: shm aggregation batch received with no batch handler installed")
	}
	h.wire.batchHandler(h.locals[from], payload)
	h.shm.Send(from, shmReply, tok, nil)
}

// WaitFor blocks until pred() is true, servicing both planes.
func (h *HierConduit) WaitFor(pred func() bool) error { return h.waitFor(pred) }

// ---- Hierarchical collectives ----

// Barrier is the world barrier: intra-host arrive/release over shm,
// dissemination among per-host leaders over the wire.
func (h *HierConduit) Barrier() error {
	h.gen++
	return h.teamBarrier(mix64hier(h.gen), h.worldMembers())
}

// AllGather is the world allgather, run hierarchically: local gather to
// the host leader, binomial tree among leaders, binomial broadcast of
// the table back down, local distribution.
func (h *HierConduit) AllGather(contrib []byte) ([][]byte, error) {
	h.gen++
	return h.teamAllGather(mix64hier(h.gen), h.worldMembers(), contrib)
}

// TeamAllGather implements TeamConduit over the same two-level path.
func (h *HierConduit) TeamAllGather(key uint64, members []int, contrib []byte) ([][]byte, error) {
	return h.teamAllGather(key, members, contrib)
}

// TeamBarrier implements TeamConduit.
func (h *HierConduit) TeamBarrier(key uint64, members []int) error {
	return h.teamBarrier(key, members)
}

func (h *HierConduit) worldMembers() []int {
	m := make([]int, h.Ranks())
	for i := range m {
		m[i] = i
	}
	return m
}

// mix64hier scrambles the internal world-collective generation into key
// space so it cannot collide with the core's team-derived keys (which
// are splitmix64 outputs of team ids).
func mix64hier(gen uint64) uint64 {
	x := gen + 0x486965724261723F // "HierBar?"
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// partition splits members into per-host groups preserving team order,
// with each group's first member as its leader. leaders[0] == members[0],
// so the tree root is the team root. Returns the groups, the leaders
// (indexed like groups), and this rank's group index. Panics if this
// rank is not a member — the TeamConduit contract.
func (h *HierConduit) partition(members []int) (groups [][]int, leaders []int, gi int) {
	byNode := make(map[int]int)
	gi = -1
	for _, m := range members {
		nd := h.nodes[m]
		g, ok := byNode[nd]
		if !ok {
			g = len(groups)
			byNode[nd] = g
			groups = append(groups, nil)
		}
		groups[g] = append(groups[g], m)
		if m == h.me {
			gi = g
		}
	}
	if gi < 0 {
		panic(fmt.Sprintf("gasnet: rank %d is not a member of the team", h.me))
	}
	leaders = make([]int, len(groups))
	for i, g := range groups {
		leaders[i] = g[0]
	}
	return groups, leaders, gi
}

// encodeEntry appends one (world rank, contribution) record.
func encodeEntry(blob []byte, rank int, p []byte) []byte {
	var hdr [16]byte
	putU64(hdr[0:], uint64(rank))
	putU64(hdr[8:], uint64(len(p)))
	blob = append(blob, hdr[:]...)
	return append(blob, p...)
}

func decodeEntries(blob []byte, into map[int][]byte) error {
	for len(blob) > 0 {
		if len(blob) < 16 {
			return fmt.Errorf("gasnet: truncated hier entry blob")
		}
		rank := int(u64(blob[0:]))
		ln := u64(blob[8:])
		blob = blob[16:]
		if uint64(len(blob)) < ln {
			return fmt.Errorf("gasnet: truncated hier entry for rank %d", rank)
		}
		into[rank] = blob[:ln:ln]
		blob = blob[ln:]
	}
	return nil
}

func (h *HierConduit) depositLocal(key uint64, world int, contrib []byte) {
	byRank := h.localParts[key]
	if byRank == nil {
		byRank = make(map[int][]byte)
		h.localParts[key] = byRank
	}
	if contrib == nil {
		contrib = []byte{}
	}
	byRank[world] = contrib
}

// teamAllGather runs the hierarchical subset allgather; see AllGather.
func (h *HierConduit) teamAllGather(key uint64, members []int, contrib []byte) ([][]byte, error) {
	groups, leaders, gi := h.partition(members)
	group := groups[gi]

	if h.me != group[0] {
		// Non-leader: contribute to the host leader, wait for the table.
		h.shm.Send(h.localIdx[group[0]], shmTeamContrib, key, contrib)
		var enc []byte
		ok := false
		_ = h.waitFor(func() bool {
			enc, ok = h.localTable[key]
			return ok
		})
		delete(h.localTable, key)
		return decodeParts(enc, len(members))
	}

	// Leader: local gather phase.
	h.ring.Begin(obs.KHierLocal, -1, uint32(len(group)))
	h.depositLocal(key, h.me, contrib)
	_ = h.waitFor(func() bool { return len(h.localParts[key]) == len(group) })
	h.ring.End(obs.KHierLocal)
	byRank := h.localParts[key]
	delete(h.localParts, key)
	var blob []byte
	for _, m := range group {
		p, ok := byRank[m]
		if !ok {
			return nil, fmt.Errorf("gasnet: hier collective %#x: deposit from non-member while awaiting rank %d", key, m)
		}
		blob = encodeEntry(blob, m, p)
	}

	// Binomial tree gather among leaders, rooted at leaders[0].
	h.ring.Begin(obs.KHierLeader, -1, uint32(len(leaders)))
	li, L := gi, len(leaders)
	atRoot := true
	for mask := 1; mask < L; mask <<= 1 {
		if li&mask != 0 {
			parent := leaders[li-mask]
			if err := h.wire.sendFragmented(parent, hHierGather, key, blob); err != nil {
				return nil, err
			}
			atRoot = false
			break
		}
		if child := li + mask; child < L {
			cw := leaders[child]
			var b []byte
			ok := false
			_ = h.waitFor(func() bool {
				b, ok = h.treeBlobs[key][cw]
				return ok
			})
			delete(h.treeBlobs[key], cw)
			blob = append(blob, b...)
		}
	}
	if len(h.treeBlobs[key]) == 0 {
		delete(h.treeBlobs, key)
	}

	var enc []byte
	if atRoot {
		// Assemble the member-ordered table.
		entries := make(map[int][]byte, len(members))
		if err := decodeEntries(blob, entries); err != nil {
			return nil, err
		}
		parts := make([][]byte, len(members))
		for i, m := range members {
			p, ok := entries[m]
			if !ok {
				return nil, fmt.Errorf("gasnet: hier collective %#x: missing contribution from rank %d", key, m)
			}
			parts[i] = p
		}
		enc = encodeParts(parts)
	} else {
		ok := false
		_ = h.waitFor(func() bool {
			enc, ok = h.hierTable[key]
			return ok
		})
		delete(h.hierTable, key)
	}
	h.ring.End(obs.KHierLeader)
	h.ring.Begin(obs.KHierRel, -1, uint32(len(enc)))

	// Binomial broadcast of the table down the leader tree, then local
	// distribution. Children descend from the highest offset so the far
	// half of the tree starts earliest.
	low := bits.Len(uint(L - 1)) // ceil(log2 L)
	if li != 0 {
		low = bits.TrailingZeros(uint(li))
	}
	for k := low - 1; k >= 0; k-- {
		if child := li + 1<<k; child < L {
			if err := h.wire.sendFragmented(leaders[child], hHierTable, key, enc); err != nil {
				return nil, err
			}
		}
	}
	for _, m := range group[1:] {
		h.shm.Send(h.localIdx[m], shmTeamTable, key, enc)
	}
	// Nothing downstream is guaranteed to block; ship the frames now.
	h.wire.tep.Flush()
	h.ring.End(obs.KHierRel)
	return decodeParts(enc, len(members))
}

// teamBarrier: locals arrive at their leader over shm; leaders run a
// dissemination barrier (ceil(log2 L) rounds, each leader passing a
// token 2^r places around the leader ring); leaders release locals.
func (h *HierConduit) teamBarrier(key uint64, members []int) error {
	groups, leaders, gi := h.partition(members)
	group := groups[gi]

	if h.me != group[0] {
		h.shm.Send(h.localIdx[group[0]], shmBarArrive, key, nil)
		_ = h.waitFor(func() bool { return h.barRelease[key] })
		delete(h.barRelease, key)
		return nil
	}

	if len(group) > 1 {
		h.ring.Begin(obs.KHierLocal, -1, uint32(len(group)))
		_ = h.waitFor(func() bool { return h.barLocal[key] == len(group)-1 })
		h.ring.End(obs.KHierLocal)
		delete(h.barLocal, key)
	}

	li, L := gi, len(leaders)
	h.ring.Begin(obs.KHierLeader, -1, uint32(L))
	for round, dist := 0, 1; dist < L; round, dist = round+1, dist<<1 {
		to := leaders[(li+dist)%L]
		var pay [8]byte
		putU64(pay[:], uint64(round))
		if err := h.wire.send(transport.Message{
			To: int32(to), Handler: hHierBar, Arg: key, Payload: pay[:],
		}); err != nil {
			return err
		}
		bk := hierBarKey{key: key, round: round}
		_ = h.waitFor(func() bool { return h.barWire[bk] > 0 })
		if h.barWire[bk]--; h.barWire[bk] == 0 {
			delete(h.barWire, bk)
		}
	}

	h.ring.End(obs.KHierLeader)

	h.ring.Begin(obs.KHierRel, -1, uint32(len(group)-1))
	for _, m := range group[1:] {
		h.shm.Send(h.localIdx[m], shmBarRelease, key, nil)
	}
	h.wire.tep.Flush()
	h.ring.End(obs.KHierRel)
	return nil
}

// ---- Handlers ----

func (h *HierConduit) onHierGather(_ *transport.TCPEndpoint, m transport.Message) {
	k := fragKey{gen: m.Arg, from: m.From}
	fb := h.treeFrags[k]
	if fb == nil {
		fb = &fragBuf{}
		h.treeFrags[k] = fb
	}
	if full, done := accumFragment(fb, m.Payload); done {
		delete(h.treeFrags, k)
		byRank := h.treeBlobs[m.Arg]
		if byRank == nil {
			byRank = make(map[int][]byte)
			h.treeBlobs[m.Arg] = byRank
		}
		byRank[int(m.From)] = full
	}
}

func (h *HierConduit) onHierTable(_ *transport.TCPEndpoint, m transport.Message) {
	fb := h.tableFrags[m.Arg]
	if fb == nil {
		fb = &fragBuf{}
		h.tableFrags[m.Arg] = fb
	}
	if full, done := accumFragment(fb, m.Payload); done {
		delete(h.tableFrags, m.Arg)
		h.hierTable[m.Arg] = full
	}
}

func (h *HierConduit) onHierBar(_ *transport.TCPEndpoint, m transport.Message) {
	h.barWire[hierBarKey{key: m.Arg, round: int(u64(m.Payload))}]++
}

func (h *HierConduit) onShmTeamContrib(from int, key uint64, payload []byte) {
	h.depositLocal(key, h.locals[from], payload)
}

func (h *HierConduit) onShmTeamTable(from int, key uint64, payload []byte) {
	h.localTable[key] = payload
}

func (h *HierConduit) onShmBarArrive(from int, key uint64, _ []byte) {
	h.barLocal[key]++
}

func (h *HierConduit) onShmBarRelease(from int, key uint64, _ []byte) {
	h.barRelease[key] = true
}

// ---- Lifecycle and metering ----

// Poll services both planes without blocking.
func (h *HierConduit) Poll() int { return h.wire.Poll() + h.shm.Poll() }

// Counters merges both planes' metering: the wire leg's per-handler
// frame/byte counters (so tests can assert co-located puts produce zero
// wire frames) plus the shm ring's message counts.
func (h *HierConduit) Counters() map[string]float64 {
	out := h.wire.Counters()
	for k, v := range h.shm.Counters() {
		out[k] = v
	}
	return out
}

// Goodbye announces a clean close on the wire plane (the shm plane has
// no connection state to say goodbye on).
func (h *HierConduit) Goodbye() { h.wire.Goodbye() }

// Close tears down both legs. Callers must have synchronized first.
func (h *HierConduit) Close() error {
	werr := h.wire.Close()
	serr := h.shm.Close()
	if werr != nil {
		return werr
	}
	return serr
}
