package gasnet

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"upcxx/internal/sim"
	"upcxx/internal/transport"
)

// testMem is a minimal Memory: a flat buffer with a bump allocator,
// enough to exercise every conduit operation without importing the
// segment package (which sits above gasnet in the layering).
type testMem struct {
	mu   sync.Mutex
	buf  []byte
	next uint64
	live map[uint64]bool
}

func newTestMem(n int) *testMem {
	return &testMem{buf: make([]byte, n), live: map[uint64]bool{}}
}

func (m *testMem) Read(off uint64, p []byte) {
	m.mu.Lock()
	copy(p, m.buf[off:])
	m.mu.Unlock()
}

func (m *testMem) Write(off uint64, p []byte) {
	m.mu.Lock()
	copy(m.buf[off:], p)
	m.mu.Unlock()
}

func (m *testMem) Xor64(off, val uint64) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(m.buf[off+uint64(i)]) << (8 * i)
	}
	v ^= val
	for i := 0; i < 8; i++ {
		m.buf[off+uint64(i)] = byte(v >> (8 * i))
	}
	return v
}

func (m *testMem) Alloc(size uint64) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.next+size > uint64(len(m.buf)) {
		return 0, fmt.Errorf("testMem: out of memory")
	}
	off := m.next
	m.next += size
	m.live[off] = true
	return off, nil
}

func (m *testMem) Free(off uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.live[off] {
		return fmt.Errorf("testMem: bad free at %d", off)
	}
	delete(m.live, off)
	return nil
}

// exerciseConduit runs the same cross-rank script over any conduit
// fleet: remote put/get/xor, remote alloc/free, a contended lock, an
// allgather, barriers. It is the contract both backends must satisfy.
func exerciseConduit(t *testing.T, n int, conduit func(rank int) Conduit) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, n)
	var lockID uint64
	var ctrOff uint64 // counter word in rank 0's memory, guarded by the lock
	ready := make(chan struct{})
	le := func(p []byte) uint64 {
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(p[i]) << (8 * i)
		}
		return v
	}

	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := conduit(rank)
			fail := func(err error) {
				if err != nil && errs[rank] == nil {
					errs[rank] = err
				}
			}

			if c.Rank() != rank || c.Ranks() != n {
				fail(fmt.Errorf("identity: got %d/%d, want %d/%d", c.Rank(), c.Ranks(), rank, n))
			}

			// Rank 0 creates the lock and the counter word before anyone
			// uses them (the ready channel publishes both).
			if rank == 0 {
				lockID = c.LockNew()
				o, err := c.Alloc(0, 8)
				fail(err)
				ctrOff = o
				close(ready)
			} else {
				<-ready
			}

			// Remote data plane: each rank writes a tagged pattern into
			// its right neighbor's memory at a rank-specific offset, then
			// reads it back and xors it.
			right := (rank + 1) % n
			off, err := c.Alloc(right, 64)
			fail(err)
			pattern := bytes.Repeat([]byte{byte(rank + 1)}, 16)
			fail(c.Put(right, off, pattern))
			got := make([]byte, 16)
			fail(c.Get(right, off, got))
			if !bytes.Equal(got, pattern) {
				fail(fmt.Errorf("get after put: %v != %v", got, pattern))
			}
			v, err := c.Xor64(right, off, 0xFF)
			fail(err)
			var want uint64
			for i := 0; i < 8; i++ {
				want |= uint64(pattern[i]) << (8 * i)
			}
			if v != want^0xFF {
				fail(fmt.Errorf("xor64: got %x, want %x", v, want^0xFF))
			}

			// Lock-protected counter: a non-atomic read-modify-write on
			// rank 0's memory, made safe only by the conduit's lock
			// service — lost updates mean mutual exclusion failed.
			for iter := 0; iter < 5; iter++ {
				ok, err := c.LockAcquire(0, lockID, false)
				fail(err)
				if !ok {
					fail(fmt.Errorf("blocking acquire returned false"))
				}
				var w [8]byte
				fail(c.Get(0, ctrOff, w[:]))
				v := le(w[:]) + 1
				for i := 0; i < 8; i++ {
					w[i] = byte(v >> (8 * i))
				}
				fail(c.Put(0, ctrOff, w[:]))
				fail(c.LockRelease(0, lockID))
			}

			// Allgather with per-rank payload lengths (rank r contributes
			// r+1 bytes of value r).
			contrib := bytes.Repeat([]byte{byte(rank)}, rank+1)
			parts, err := c.AllGather(contrib)
			fail(err)
			if len(parts) != n {
				fail(fmt.Errorf("allgather: %d parts, want %d", len(parts), n))
			} else {
				for r, p := range parts {
					if len(p) != r+1 {
						fail(fmt.Errorf("allgather part %d: %d bytes, want %d", r, len(p), r+1))
					}
				}
			}

			fail(c.Barrier())
			var w [8]byte
			fail(c.Get(0, ctrOff, w[:]))
			if got, want := le(w[:]), uint64(5*n); got != want {
				fail(fmt.Errorf("lock-protected counter = %d, want %d (lost updates)", got, want))
			}
			fail(c.Free(right, off))
			fail(c.Barrier())
		}(i)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
		}
	}
}

func TestProcConduitContract(t *testing.T) {
	const n = 4
	eng := New(sim.NewModel(true, sim.Local, sim.SWUPCXX, n), n)
	mems := make([]Memory, n)
	for i := range mems {
		mems[i] = newTestMem(1 << 16)
	}
	cds := NewProcGroup(eng, mems)
	exerciseConduit(t, n, func(rank int) Conduit { return cds[rank] })
}

func TestWireConduitContract(t *testing.T) {
	const n = 4
	eps := make([]*transport.TCPEndpoint, n)
	addrs := make([]string, n)
	for i := range eps {
		ep, err := transport.ListenTCP(i, n, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		eps[i] = ep
		addrs[i] = ep.Addr()
	}
	cds := make([]Conduit, n)
	var wg sync.WaitGroup
	for i := range eps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := eps[i].Connect(addrs); err != nil {
				t.Errorf("rank %d connect: %v", i, err)
			}
			cds[i] = NewWireConduit(eps[i], newTestMem(1<<16))
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	exerciseConduit(t, n, func(rank int) Conduit { return cds[rank] })
}

// TestWireCapableFlags pins the closure-shipping policy bit.
func TestWireCapableFlags(t *testing.T) {
	eng := New(sim.NewModel(true, sim.Local, sim.SWUPCXX, 1), 1)
	pc := NewProcGroup(eng, []Memory{newTestMem(64)})[0]
	if pc.WireCapable() {
		t.Error("ProcConduit.WireCapable() = true, want false")
	}
	ep, err := transport.ListenTCP(0, 1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if err := ep.Connect([]string{ep.Addr()}); err != nil {
		t.Fatal(err)
	}
	wc := NewWireConduit(ep, newTestMem(64))
	if !wc.WireCapable() {
		t.Error("WireConduit.WireCapable() = false, want true")
	}
}

// TestWireConduitBigTransfer moves a payload large enough to span many
// TCP segments through Put/Get and checks integrity.
func TestWireConduitBigTransfer(t *testing.T) {
	const n = 2
	eps := make([]*transport.TCPEndpoint, n)
	addrs := make([]string, n)
	for i := range eps {
		ep, err := transport.ListenTCP(i, n, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		eps[i] = ep
		addrs[i] = ep.Addr()
	}
	mems := []*testMem{newTestMem(4 << 20), newTestMem(4 << 20)}
	cds := make([]*WireConduit, n)
	var wg sync.WaitGroup
	for i := range eps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := eps[i].Connect(addrs); err != nil {
				t.Errorf("connect: %v", err)
			}
			cds[i] = NewWireConduit(eps[i], mems[i])
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i * 7)
	}
	done := make(chan struct{})
	go func() {
		// Rank 1 services requests until rank 0 finishes.
		for {
			select {
			case <-done:
				return
			default:
				cds[1].Poll()
			}
		}
	}()
	if err := cds[0].Put(1, 0, big); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(big))
	if err := cds[0].Get(1, 0, got); err != nil {
		t.Fatal(err)
	}
	close(done)
	if !bytes.Equal(got, big) {
		t.Fatal("1 MiB round trip corrupted payload")
	}
}

// TestWireConduitHugeAllGather pushes a collective whose contribution —
// and whose gathered table — exceed one transport frame, exercising the
// fragmentation path (contributions to rank 0, table broadcast back).
func TestWireConduitHugeAllGather(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates ~100 MiB")
	}
	const n = 2
	eps := make([]*transport.TCPEndpoint, n)
	addrs := make([]string, n)
	for i := range eps {
		ep, err := transport.ListenTCP(i, n, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		eps[i] = ep
		addrs[i] = ep.Addr()
	}
	cds := make([]*WireConduit, n)
	var wg sync.WaitGroup
	for i := range eps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := eps[i].Connect(addrs); err != nil {
				t.Errorf("connect: %v", err)
			}
			cds[i] = NewWireConduit(eps[i], newTestMem(64))
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	big := transport.MaxPayload + (1 << 20) // one fragment won't fit
	contribs := make([][]byte, n)
	for rank := range contribs {
		p := make([]byte, big)
		for i := 0; i < len(p); i += 4096 {
			p[i] = byte(i*3 + rank) // sparse pattern: cheap to fill, catches misassembly
		}
		p[len(p)-1] = byte(rank + 1)
		contribs[rank] = p
	}
	tables := make([][][]byte, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tables[i], errs[i] = cds[i].AllGather(contribs[i])
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("rank %d allgather: %v", i, errs[i])
		}
		for r := 0; r < n; r++ {
			if !bytes.Equal(tables[i][r], contribs[r]) {
				t.Fatalf("rank %d sees corrupt contribution from %d", i, r)
			}
		}
	}
}
