package gasnet

import (
	"encoding/binary"
	"fmt"

	"upcxx/internal/transport"
)

// Wire protocol handler indices. All ranks register the same table at
// the same indices, as with GASNet handler registration. Every request
// carries a caller-chosen token in the frame's Arg field; the reply
// echoes it, so a rank blocked on one request keeps serving its peers'
// requests while it waits.
const (
	hReply   uint16 = 1  // Arg=token, payload = reply bytes
	hGet     uint16 = 2  // Arg=token, payload = [off u64][len u64]
	hPut     uint16 = 3  // Arg=token, payload = [off u64][data]
	hXor     uint16 = 4  // Arg=token, payload = [off u64][val u64]
	hAlloc   uint16 = 5  // Arg=token, payload = [size u64]; reply 0 = fail
	hFree    uint16 = 6  // Arg=token, payload = [off u64]
	hLockAcq uint16 = 7  // Arg=token, payload = [id u64][try u8]
	hLockRel uint16 = 8  // Arg=token, payload = [id u64]
	hGather  uint16 = 9  // Arg=generation, payload = contribution
	hResult  uint16 = 10 // Arg=generation, payload = length-prefixed table
	hBatch   uint16 = 11 // Arg=token, payload = aggregation batch (internal/agg encoding)
)

// handlerName names each wire handler for the per-handler traffic
// counters (Counters keys are derived from these).
func handlerName(h uint16) string {
	switch h {
	case hReply:
		return "reply"
	case hGet:
		return "get"
	case hPut:
		return "put"
	case hXor:
		return "xor"
	case hAlloc:
		return "alloc"
	case hFree:
		return "free"
	case hLockAcq:
		return "lockacq"
	case hLockRel:
		return "lockrel"
	case hGather:
		return "gather"
	case hResult:
		return "result"
	case hBatch:
		return "batch"
	}
	return fmt.Sprintf("h%d", h)
}

// WireConduit is the multi-process Conduit: each rank is one OS process
// owning only its own segment, and every remote operation of the
// Conduit vocabulary travels as a framed active message with encoded
// arguments over internal/transport. Collectives rendezvous through
// rank 0 (contributions in, the gathered table back out). Time is
// wall-clock; the virtual-time model does not extend across address
// spaces.
//
// A WireConduit must be driven by a single goroutine — its rank's SPMD
// goroutine — which is where all handlers execute (inside Poll or a
// blocking call's wait loop), so the conduit's state needs no locking.
type WireConduit struct {
	tep *transport.TCPEndpoint
	mem Memory

	nextToken uint64
	replies   map[uint64][]byte
	// acks holds reply callbacks for tokens whose requester did not
	// block: aggregation batches and the async data plane (GetAsync /
	// PutAsync chunks). Tokens without a callback park in replies for
	// the blocking request path.
	acks map[uint64]func(payload []byte)

	// batchHandler decodes and applies one aggregation batch; installed
	// by the layer above (core) via SetBatchHandler.
	batchHandler func(from int, payload []byte)

	locks      map[uint64]*wireLockState
	nextLockID uint64

	gen          uint64              // collective generation (SPMD-ordered)
	gatherParts  map[uint64][][]byte // rank 0: contributions by generation
	gatherCount  map[uint64]int      // rank 0: deposits by generation
	gatherResult map[uint64][]byte   // non-root: encoded table by generation

	gatherFrags map[fragKey]*fragBuf // rank 0: partial contributions
	resultFrags map[uint64]*fragBuf  // non-root: partial tables by generation

	// Per-handler traffic counters, indexed by handler. All sends and
	// all handler dispatches happen on the rank's SPMD goroutine, so
	// plain integers suffice.
	tx, rx map[uint16]*wireStat
}

// wireStat counts one direction of one handler's traffic.
type wireStat struct {
	frames int64
	bytes  int64 // payload bytes (the fixed 26-byte frame header is not included)
}

// fragKey identifies one in-flight fragmented collective payload.
type fragKey struct {
	gen  uint64
	from int32
}

// fragBuf reassembles a fragmented payload.
type fragBuf struct {
	buf []byte
	got uint64
}

type wireLockState struct {
	held  bool
	queue []wireLockWaiter
}

type wireLockWaiter struct {
	rank  int32
	token uint64
}

// NewWireConduit builds the conduit over a connected transport endpoint,
// serving remote requests against mem (this rank's segment). The
// endpoint's handler table must be unused; NewWireConduit owns it.
func NewWireConduit(tep *transport.TCPEndpoint, mem Memory) *WireConduit {
	c := &WireConduit{
		tep:          tep,
		mem:          mem,
		replies:      make(map[uint64][]byte),
		acks:         make(map[uint64]func(payload []byte)),
		locks:        make(map[uint64]*wireLockState),
		gatherParts:  make(map[uint64][][]byte),
		gatherCount:  make(map[uint64]int),
		gatherResult: make(map[uint64][]byte),
		gatherFrags:  make(map[fragKey]*fragBuf),
		resultFrags:  make(map[uint64]*fragBuf),
		tx:           make(map[uint16]*wireStat),
		rx:           make(map[uint16]*wireStat),
	}
	c.register(hReply, c.onReply)
	c.register(hGet, c.onGet)
	c.register(hPut, c.onPut)
	c.register(hXor, c.onXor)
	c.register(hAlloc, c.onAlloc)
	c.register(hFree, c.onFree)
	c.register(hLockAcq, c.onLockAcquire)
	c.register(hLockRel, c.onLockRelease)
	c.register(hGather, c.onGather)
	c.register(hResult, c.onResult)
	c.register(hBatch, c.onBatch)
	return c
}

// register installs a handler wrapped with receive-side counting.
func (c *WireConduit) register(h uint16, fn transport.Handler) {
	c.tep.Register(h, func(ep *transport.TCPEndpoint, m transport.Message) {
		c.count(c.rx, m.Handler, len(m.Payload))
		fn(ep, m)
	})
}

func (c *WireConduit) count(dir map[uint16]*wireStat, h uint16, bytes int) {
	s := dir[h]
	if s == nil {
		s = &wireStat{}
		dir[h] = s
	}
	s.frames++
	s.bytes += int64(bytes)
}

// send is the counted send path every outgoing frame takes.
func (c *WireConduit) send(m transport.Message) error {
	c.count(c.tx, m.Handler, len(m.Payload))
	return c.tep.Send(m)
}

// Counters reports this conduit's wire traffic as named counters:
// aggregate frame and payload-byte totals per direction, plus
// per-handler breakdowns (wire_tx_frames_put, wire_rx_bytes_batch,
// ...). The bench harness folds them into its JSON artifact so message
// reductions from the aggregation layer are measurable, not anecdotal.
func (c *WireConduit) Counters() map[string]float64 {
	out := make(map[string]float64)
	fold := func(prefix string, dir map[uint16]*wireStat) {
		var frames, bytes int64
		for h, s := range dir {
			frames += s.frames
			bytes += s.bytes
			out[prefix+"_frames_"+handlerName(h)] = float64(s.frames)
			out[prefix+"_bytes_"+handlerName(h)] = float64(s.bytes)
		}
		out[prefix+"_frames"] = float64(frames)
		out[prefix+"_bytes"] = float64(bytes)
	}
	fold("wire_tx", c.tx)
	fold("wire_rx", c.rx)
	return out
}

// Rank returns this conduit's rank.
func (c *WireConduit) Rank() int { return c.tep.Rank() }

// Ranks returns the job size.
func (c *WireConduit) Ranks() int { return c.tep.Ranks() }

// WireCapable reports true: ranks are separate processes, closures do
// not cross.
func (c *WireConduit) WireCapable() bool { return true }

// request sends one encoded-argument message and blocks until its
// tokened reply arrives, dispatching incoming requests while waiting.
func (c *WireConduit) request(to int, handler uint16, payload []byte) ([]byte, error) {
	c.nextToken++
	tok := c.nextToken
	err := c.send(transport.Message{
		To: int32(to), Handler: handler, Arg: tok, Payload: payload,
	})
	if err != nil {
		return nil, err
	}
	var out []byte
	found := false
	if err := c.tep.WaitFor(func() bool {
		out, found = c.replies[tok]
		return found
	}); err != nil {
		return nil, err
	}
	delete(c.replies, tok)
	return out, nil
}

// reply answers a request message with the given bytes.
func (c *WireConduit) reply(m transport.Message, payload []byte) {
	// A reply failure means the peer is gone; the job is aborting.
	_ = c.send(transport.Message{To: m.From, Handler: hReply, Arg: m.Arg, Payload: payload})
}

func (c *WireConduit) onReply(_ *transport.TCPEndpoint, m transport.Message) {
	// Batch acknowledgements and async-data-plane replies carry a
	// callback instead of a parked requester; everything else parks in
	// the replies map.
	if cb, ok := c.acks[m.Arg]; ok {
		delete(c.acks, m.Arg)
		cb(m.Payload)
		return
	}
	c.replies[m.Arg] = m.Payload
}

func u64(p []byte) uint64       { return binary.LittleEndian.Uint64(p) }
func putU64(p []byte, v uint64) { binary.LittleEndian.PutUint64(p, v) }

// ---- One-sided data plane ----

// maxChunk bounds the data carried by one Get reply or Put request so
// no frame ever exceeds transport.MaxPayload (the put request spends 8
// bytes on the offset); larger transfers are split into chunked
// requests rather than failing — or, worse, hanging the requester on a
// reply the transport refuses to send.
const maxChunk = transport.MaxPayload - 8

// Get copies len(p) bytes from rank's segment at off into p.
func (c *WireConduit) Get(rank int, off uint64, p []byte) error {
	if rank == c.Rank() {
		c.mem.Read(off, p)
		return nil
	}
	for len(p) > 0 {
		n := len(p)
		if n > maxChunk {
			n = maxChunk
		}
		var req [16]byte
		putU64(req[0:], off)
		putU64(req[8:], uint64(n))
		rep, err := c.request(rank, hGet, req[:])
		if err != nil {
			return err
		}
		if len(rep) != n {
			return fmt.Errorf("gasnet: wire get of %d bytes returned %d", n, len(rep))
		}
		copy(p, rep)
		p = p[n:]
		off += uint64(n)
	}
	return nil
}

func (c *WireConduit) onGet(_ *transport.TCPEndpoint, m transport.Message) {
	off, n := u64(m.Payload[0:]), u64(m.Payload[8:])
	if n > maxChunk {
		// A well-formed requester chunks, so an oversized length is a
		// corrupt frame. An empty reply makes the requester fail its
		// length check instead of hanging (and bounds the allocation).
		c.reply(m, nil)
		return
	}
	buf := make([]byte, n)
	c.mem.Read(off, buf)
	c.reply(m, buf)
}

// Put copies p into rank's segment at off.
func (c *WireConduit) Put(rank int, off uint64, p []byte) error {
	if rank == c.Rank() {
		c.mem.Write(off, p)
		return nil
	}
	for len(p) > 0 {
		n := len(p)
		if n > maxChunk {
			n = maxChunk
		}
		req := make([]byte, 8+n)
		putU64(req, off)
		copy(req[8:], p[:n])
		if _, err := c.request(rank, hPut, req); err != nil {
			return err
		}
		p = p[n:]
		off += uint64(n)
	}
	return nil
}

func (c *WireConduit) onPut(_ *transport.TCPEndpoint, m transport.Message) {
	c.mem.Write(u64(m.Payload), m.Payload[8:])
	c.reply(m, nil)
}

// GetAsync is the non-blocking Get: every chunk request leaves now and
// onDone runs, on this rank's goroutine, when the last chunk's reply
// has been copied into p. Replies ride the same tokened hReply path as
// blocking requests — the callback registered per token is what makes
// the requester free to keep working instead of parking in WaitFor.
func (c *WireConduit) GetAsync(rank int, off uint64, p []byte, onDone func()) error {
	if rank == c.Rank() {
		c.mem.Read(off, p)
		onDone()
		return nil
	}
	if len(p) == 0 {
		onDone()
		return nil
	}
	remaining := (len(p) + maxChunk - 1) / maxChunk
	for len(p) > 0 {
		n := len(p)
		if n > maxChunk {
			n = maxChunk
		}
		dst := p[:n]
		var req [16]byte
		putU64(req[0:], off)
		putU64(req[8:], uint64(n))
		c.nextToken++
		c.acks[c.nextToken] = func(rep []byte) {
			if len(rep) != len(dst) {
				panic(fmt.Sprintf("gasnet: wire async get of %d bytes returned %d", len(dst), len(rep)))
			}
			copy(dst, rep)
			remaining--
			if remaining == 0 {
				onDone()
			}
		}
		if err := c.send(transport.Message{
			To: int32(rank), Handler: hGet, Arg: c.nextToken, Payload: req[:],
		}); err != nil {
			delete(c.acks, c.nextToken)
			return err
		}
		p = p[n:]
		off += uint64(n)
	}
	return nil
}

// PutAsync is the non-blocking Put: chunked requests leave now, and
// onDone runs when the target has acknowledged the last chunk.
func (c *WireConduit) PutAsync(rank int, off uint64, p []byte, onDone func()) error {
	if rank == c.Rank() {
		c.mem.Write(off, p)
		onDone()
		return nil
	}
	if len(p) == 0 {
		onDone()
		return nil
	}
	remaining := (len(p) + maxChunk - 1) / maxChunk
	for len(p) > 0 {
		n := len(p)
		if n > maxChunk {
			n = maxChunk
		}
		req := make([]byte, 8+n)
		putU64(req, off)
		copy(req[8:], p[:n])
		c.nextToken++
		c.acks[c.nextToken] = func([]byte) {
			remaining--
			if remaining == 0 {
				onDone()
			}
		}
		if err := c.send(transport.Message{
			To: int32(rank), Handler: hPut, Arg: c.nextToken, Payload: req,
		}); err != nil {
			delete(c.acks, c.nextToken)
			return err
		}
		p = p[n:]
		off += uint64(n)
	}
	return nil
}

// Xor64 performs the remote atomic update and returns the new value.
func (c *WireConduit) Xor64(rank int, off uint64, val uint64) (uint64, error) {
	if rank == c.Rank() {
		return c.mem.Xor64(off, val), nil
	}
	var req [16]byte
	putU64(req[0:], off)
	putU64(req[8:], val)
	rep, err := c.request(rank, hXor, req[:])
	if err != nil {
		return 0, err
	}
	return u64(rep), nil
}

func (c *WireConduit) onXor(_ *transport.TCPEndpoint, m transport.Message) {
	v := c.mem.Xor64(u64(m.Payload[0:]), u64(m.Payload[8:]))
	var rep [8]byte
	putU64(rep[:], v)
	c.reply(m, rep[:])
}

// ---- Aggregation batch plane ----

// SetBatchHandler installs the decoder for incoming aggregation
// batches (hBatch frames). The handler executes on this rank's SPMD
// goroutine, inside Poll or a blocking call's wait loop, and must
// apply every operation in the payload before returning: the conduit
// acknowledges the batch to its sender as soon as fn returns, which is
// what completes the sender's events and Finish scopes. fn must not
// block. internal/core installs the internal/agg decoder here.
func (c *WireConduit) SetBatchHandler(fn func(from int, payload []byte)) {
	c.batchHandler = fn
}

// SendBatch ships one encoded aggregation batch to rank `to` without
// blocking; onAck runs on this rank's goroutine once the target has
// applied every operation in the batch. This is the transport half of
// the aggregation layer: many small operations travel as one frame and
// are acknowledged by one reply, instead of a frame pair each.
func (c *WireConduit) SendBatch(to int, payload []byte, onAck func()) error {
	c.nextToken++
	tok := c.nextToken
	if onAck == nil {
		onAck = func() {} // the ack must still be consumed, or it parks in the replies map forever
	}
	c.acks[tok] = func([]byte) { onAck() }
	err := c.send(transport.Message{
		To: int32(to), Handler: hBatch, Arg: tok, Payload: payload,
	})
	if err != nil {
		delete(c.acks, tok)
	}
	return err
}

func (c *WireConduit) onBatch(_ *transport.TCPEndpoint, m transport.Message) {
	if c.batchHandler == nil {
		panic("gasnet: aggregation batch received with no batch handler installed")
	}
	c.batchHandler(int(m.From), m.Payload)
	c.reply(m, nil)
}

// WaitFor blocks until pred() is true, dispatching incoming requests
// (and batch acknowledgements) while waiting. The aggregation layer
// uses it to drain pending batches without spinning.
func (c *WireConduit) WaitFor(pred func() bool) error {
	return c.tep.WaitFor(pred)
}

// ---- Global memory management ----

// Alloc reserves size bytes in rank's segment (remote allocation is one
// round trip to the owner, as in the in-process backend).
func (c *WireConduit) Alloc(rank int, size uint64) (uint64, error) {
	if rank == c.Rank() {
		return c.mem.Alloc(size)
	}
	var req [8]byte
	putU64(req[:], size)
	rep, err := c.request(rank, hAlloc, req[:])
	if err != nil {
		return 0, err
	}
	v := u64(rep)
	if v == 0 {
		return 0, fmt.Errorf("gasnet: remote alloc of %d bytes on rank %d failed", size, rank)
	}
	return v - 1, nil
}

func (c *WireConduit) onAlloc(_ *transport.TCPEndpoint, m transport.Message) {
	var rep [8]byte
	if off, err := c.mem.Alloc(u64(m.Payload)); err == nil {
		putU64(rep[:], off+1)
	}
	c.reply(m, rep[:])
}

// Free releases an allocation in rank's segment.
func (c *WireConduit) Free(rank int, off uint64) error {
	if rank == c.Rank() {
		return c.mem.Free(off)
	}
	var req [8]byte
	putU64(req[:], off)
	rep, err := c.request(rank, hFree, req[:])
	if err != nil {
		return err
	}
	if u64(rep) == 0 {
		return fmt.Errorf("gasnet: remote free at offset %d on rank %d failed", off, rank)
	}
	return nil
}

func (c *WireConduit) onFree(_ *transport.TCPEndpoint, m transport.Message) {
	var rep [8]byte
	if c.mem.Free(u64(m.Payload)) == nil {
		putU64(rep[:], 1)
	}
	c.reply(m, rep[:])
}

// ---- Lock service ----

// LockNew creates a lock homed on this rank.
func (c *WireConduit) LockNew() uint64 {
	c.nextLockID++
	c.locks[c.nextLockID] = &wireLockState{}
	return c.nextLockID
}

// LockAcquire blocks until the lock homed on home is held (try: report
// instead of queueing). The home's handler either replies immediately
// or parks the requester's token; the release handler answers parked
// tokens, so the waiter's blocked request completes on handoff.
func (c *WireConduit) LockAcquire(home int, id uint64, try bool) (bool, error) {
	req := make([]byte, 9)
	putU64(req, id)
	if try {
		req[8] = 1
	}
	rep, err := c.request(home, hLockAcq, req)
	if err != nil {
		return false, err
	}
	return u64(rep) == 1, nil
}

func (c *WireConduit) onLockAcquire(_ *transport.TCPEndpoint, m transport.Message) {
	id, try := u64(m.Payload), m.Payload[8] == 1
	st := c.locks[id]
	if st == nil {
		panic(fmt.Sprintf("gasnet: wire acquire of unknown lock %d", id))
	}
	var rep [8]byte
	switch {
	case !st.held:
		st.held = true
		putU64(rep[:], 1)
	case try:
		// rep stays 0: not acquired.
	default:
		st.queue = append(st.queue, wireLockWaiter{rank: m.From, token: m.Arg})
		return // reply deferred until release hands the lock over
	}
	c.reply(m, rep[:])
}

// LockRelease releases the lock homed on home.
func (c *WireConduit) LockRelease(home int, id uint64) error {
	var req [8]byte
	putU64(req[:], id)
	_, err := c.request(home, hLockRel, req[:])
	return err
}

func (c *WireConduit) onLockRelease(_ *transport.TCPEndpoint, m transport.Message) {
	st := c.locks[u64(m.Payload)]
	if st == nil || !st.held {
		panic("gasnet: wire release of unheld lock")
	}
	if len(st.queue) > 0 {
		next := st.queue[0]
		st.queue = st.queue[1:]
		// Hand off directly: the lock stays held; answering the parked
		// acquire request wakes the waiter.
		var granted [8]byte
		putU64(granted[:], 1)
		_ = c.send(transport.Message{
			To: next.rank, Handler: hReply, Arg: next.token, Payload: granted[:],
		})
	} else {
		st.held = false
	}
	var rep [8]byte
	putU64(rep[:], 1)
	c.reply(m, rep[:])
}

// ---- Barrier and allgather rendezvous ----

// Barrier blocks until all ranks arrive, servicing requests meanwhile.
func (c *WireConduit) Barrier() error {
	_, err := c.AllGather(nil)
	return err
}

// Collective payloads (a rank's contribution, rank 0's gathered table)
// have no inherent size bound, so they travel as one or more fragments
// of at most maxFragData bytes each, prefixed [total u64][offset u64];
// TCP's per-connection ordering keeps one sender's fragments in order
// and the (generation, sender) key separates interleaved senders.
const maxFragData = transport.MaxPayload - 16

// sendFragmented ships payload to rank `to` in bounded fragments (a
// zero-length payload still sends one header-only fragment, so the
// receiver always completes).
func (c *WireConduit) sendFragmented(to int, handler uint16, gen uint64, payload []byte) error {
	total := uint64(len(payload))
	off := uint64(0)
	for {
		n := total - off
		if n > maxFragData {
			n = maxFragData
		}
		frame := make([]byte, 16+n)
		putU64(frame[0:], total)
		putU64(frame[8:], off)
		copy(frame[16:], payload[off:off+n])
		if err := c.send(transport.Message{
			To: int32(to), Handler: handler, Arg: gen, Payload: frame,
		}); err != nil {
			return err
		}
		off += n
		if off >= total {
			return nil
		}
	}
}

// accumFragment folds one fragment into its reassembly buffer and
// returns the complete payload once every byte has arrived.
func accumFragment(fb *fragBuf, payload []byte) ([]byte, bool) {
	total := u64(payload[0:])
	off := u64(payload[8:])
	data := payload[16:]
	if fb.buf == nil {
		fb.buf = make([]byte, total)
	}
	copy(fb.buf[off:], data)
	fb.got += uint64(len(data))
	if fb.got >= total {
		return fb.buf, true
	}
	return nil, false
}

// AllGather deposits this rank's contribution with rank 0 and returns
// the full table. Generations are implicit: collectives are SPMD-
// ordered, so the i-th AllGather on every rank is the same collective.
// Rank 0 buffers early arrivals of future generations.
func (c *WireConduit) AllGather(contrib []byte) ([][]byte, error) {
	c.gen++
	g := c.gen
	n := c.Ranks()
	if c.Rank() == 0 {
		c.depositGather(g, 0, contrib)
		if err := c.tep.WaitFor(func() bool { return c.gatherCount[g] == n }); err != nil {
			return nil, err
		}
		parts := c.gatherParts[g]
		delete(c.gatherParts, g)
		delete(c.gatherCount, g)
		enc := encodeParts(parts)
		for r := 1; r < n; r++ {
			if err := c.sendFragmented(r, hResult, g, enc); err != nil {
				return nil, err
			}
		}
		// The result frames were sent after this rank's wait completed;
		// nothing downstream is guaranteed to block, so ship them now.
		c.tep.Flush()
		return parts, nil
	}
	if err := c.sendFragmented(0, hGather, g, contrib); err != nil {
		return nil, err
	}
	var enc []byte
	found := false
	if err := c.tep.WaitFor(func() bool {
		enc, found = c.gatherResult[g]
		return found
	}); err != nil {
		return nil, err
	}
	delete(c.gatherResult, g)
	return decodeParts(enc, n)
}

func (c *WireConduit) depositGather(g uint64, rank int32, contrib []byte) {
	parts := c.gatherParts[g]
	if parts == nil {
		parts = make([][]byte, c.Ranks())
		c.gatherParts[g] = parts
	}
	parts[rank] = contrib
	c.gatherCount[g]++
}

func (c *WireConduit) onGather(_ *transport.TCPEndpoint, m transport.Message) {
	k := fragKey{gen: m.Arg, from: m.From}
	fb := c.gatherFrags[k]
	if fb == nil {
		fb = &fragBuf{}
		c.gatherFrags[k] = fb
	}
	if full, done := accumFragment(fb, m.Payload); done {
		delete(c.gatherFrags, k)
		c.depositGather(m.Arg, m.From, full)
	}
}

func (c *WireConduit) onResult(_ *transport.TCPEndpoint, m transport.Message) {
	fb := c.resultFrags[m.Arg]
	if fb == nil {
		fb = &fragBuf{}
		c.resultFrags[m.Arg] = fb
	}
	if full, done := accumFragment(fb, m.Payload); done {
		delete(c.resultFrags, m.Arg)
		c.gatherResult[m.Arg] = full
	}
}

// encodeParts length-prefixes each rank's contribution.
func encodeParts(parts [][]byte) []byte {
	total := 0
	for _, p := range parts {
		total += 8 + len(p)
	}
	enc := make([]byte, 0, total)
	var hdr [8]byte
	for _, p := range parts {
		putU64(hdr[:], uint64(len(p)))
		enc = append(enc, hdr[:]...)
		enc = append(enc, p...)
	}
	return enc
}

func decodeParts(enc []byte, n int) ([][]byte, error) {
	parts := make([][]byte, n)
	for i := 0; i < n; i++ {
		if len(enc) < 8 {
			return nil, fmt.Errorf("gasnet: truncated allgather table at rank %d", i)
		}
		ln := u64(enc)
		enc = enc[8:]
		if uint64(len(enc)) < ln {
			return nil, fmt.Errorf("gasnet: truncated allgather contribution for rank %d", i)
		}
		if ln > 0 {
			parts[i] = enc[:ln:ln]
		}
		enc = enc[ln:]
	}
	return parts, nil
}

// Poll dispatches queued requests without blocking.
func (c *WireConduit) Poll() int { return c.tep.Poll() }

// Goodbye announces a clean close to every peer. Call it on the
// success path only, after the job's final Barrier and before Close;
// a rank that aborts must skip it so its peers see the EOF as peer
// loss and abort too.
func (c *WireConduit) Goodbye() { c.tep.Goodbye() }

// Close tears down the transport endpoint. Callers must have
// synchronized (a final Barrier) first, or in-flight peers' requests
// may fail.
func (c *WireConduit) Close() error { return c.tep.Close() }
