package gasnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"upcxx/internal/frames"
	"upcxx/internal/obs"
	"upcxx/internal/transport"
)

// Wire protocol handler indices. All ranks register the same table at
// the same indices, as with GASNet handler registration. Every request
// carries a caller-chosen token in the frame's Arg field; the reply
// echoes it, so a rank blocked on one request keeps serving its peers'
// requests while it waits.
const (
	hReply   uint16 = 1  // Arg=token, payload = reply bytes
	hGet     uint16 = 2  // Arg=token, payload = [off u64][len u64]
	hPut     uint16 = 3  // Arg=token, payload = [off u64][data]
	hXor     uint16 = 4  // Arg=token, payload = [off u64][val u64]
	hAlloc   uint16 = 5  // Arg=token, payload = [size u64]; reply 0 = fail
	hFree    uint16 = 6  // Arg=token, payload = [off u64]
	hLockAcq uint16 = 7  // Arg=token, payload = [id u64][try u8]
	hLockRel uint16 = 8  // Arg=token, payload = [id u64]
	hGather  uint16 = 9  // Arg=generation, payload = contribution
	hResult  uint16 = 10 // Arg=generation, payload = length-prefixed table
	hBatch   uint16 = 11 // Arg=token, payload = aggregation batch (internal/agg encoding)
	hPing    uint16 = 12 // Arg=token, no payload; heartbeat probe, replied immediately

	// Team (subset) collectives: contributions rendezvous with the
	// team's root (members[0]) under a caller-chosen key instead of the
	// SPMD-ordered world generation, so independent teams may gather
	// concurrently.
	hTeamGather uint16 = 13 // Arg=key, payload = fragment of a member's contribution
	hTeamResult uint16 = 14 // Arg=key, payload = fragment of the encoded table

	// 15-17 belong to HierConduit's leader plane (see hier.go).
)

// handlerName names each wire handler for the per-handler traffic
// counters (Counters keys are derived from these).
func handlerName(h uint16) string {
	switch h {
	case hReply:
		return "reply"
	case hGet:
		return "get"
	case hPut:
		return "put"
	case hXor:
		return "xor"
	case hAlloc:
		return "alloc"
	case hFree:
		return "free"
	case hLockAcq:
		return "lockacq"
	case hLockRel:
		return "lockrel"
	case hGather:
		return "gather"
	case hResult:
		return "result"
	case hBatch:
		return "batch"
	case hPing:
		return "ping"
	case hTeamGather:
		return "teamgather"
	case hTeamResult:
		return "teamresult"
	case hHierGather:
		return "hiergather"
	case hHierTable:
		return "hiertable"
	case hHierBar:
		return "hierbar"
	}
	return fmt.Sprintf("h%d", h)
}

// WireConduit is the multi-process Conduit: each rank is one OS process
// owning only its own segment, and every remote operation of the
// Conduit vocabulary travels as a framed active message with encoded
// arguments over internal/transport. Collectives rendezvous through
// rank 0 (contributions in, the gathered table back out). Time is
// wall-clock; the virtual-time model does not extend across address
// spaces.
//
// A WireConduit must be driven by a single goroutine — its rank's SPMD
// goroutine — which is where all handlers execute (inside Poll or a
// blocking call's wait loop), so the conduit's state needs no locking.
type WireConduit struct {
	tep *transport.TCPEndpoint
	mem Memory

	// wait is the blocking-wait primitive every parked operation uses
	// (requests, collectives, lock grants). It defaults to the
	// transport's inbox wait; a composing conduit (HierConduit)
	// replaces it with a loop that also services its other plane, so a
	// rank blocked inside a wire operation still serves co-located
	// peers' shared-memory requests.
	wait func(pred func() bool) error

	nextToken uint64
	replies   map[uint64][]byte
	// acks holds reply callbacks for tokens whose requester did not
	// block: aggregation batches and the async data plane (GetAsync /
	// PutAsync chunks). Tokens without a callback park in replies for
	// the blocking request path.
	acks map[uint64]*wireAck
	// void marks tokens whose requester gave up (rank death, deadline
	// expiry): a late reply for one is dropped instead of parking in
	// the replies map forever.
	void map[uint64]struct{}

	// Resilient mode (EnableResilience): nil slices mean legacy
	// behavior everywhere.
	resilient   bool
	hb          ResilienceConfig
	onRankDeath func(rank int)
	dead        []bool
	deadCause   []error
	lastHeard   []time.Time // last frame received per peer
	pingOut     []bool      // heartbeat probe outstanding per peer
	timers      []wireTimer // After callbacks, swept on tick
	lostBatches int64       // batches completed-as-lost to dead ranks

	// batchHandler decodes and applies one aggregation batch; installed
	// by the layer above (core) via SetBatchHandler.
	batchHandler func(from int, payload []byte)

	locks      map[uint64]*wireLockState
	nextLockID uint64

	gen          uint64              // collective generation (SPMD-ordered)
	gatherParts  map[uint64][][]byte // rank 0: contributions by generation
	gatherCount  map[uint64]int      // rank 0: deposits by generation
	gatherSeen   map[uint64][]bool   // rank 0, resilient: which ranks deposited
	gatherDone   uint64              // rank 0, resilient: highest completed generation
	gatherResult map[uint64][]byte   // non-root: encoded table by generation

	gatherFrags map[fragKey]*fragBuf // rank 0: partial contributions
	resultFrags map[uint64]*fragBuf  // non-root: partial tables by generation

	// Team-collective rendezvous state, keyed by the caller-chosen
	// collective key (never by generation: teams gather concurrently).
	teamParts       map[uint64]map[int32][]byte // root: contributions by world rank
	teamFrags       map[fragKey]*fragBuf        // root: partial contributions (gen field holds the key)
	teamResult      map[uint64][]byte           // member: encoded table by key
	teamResultFrags map[uint64]*fragBuf         // member: partial tables by key

	// Per-handler traffic counters, indexed by handler. All sends and
	// all handler dispatches happen on the rank's SPMD goroutine, but
	// the live debug plane may pull Counters from another goroutine, so
	// the maps are fully populated at construction (never grown) and
	// the stats themselves are atomics.
	tx, rx map[uint16]*wireStat

	// ring is this rank's span ring (nil unless tracing is enabled);
	// installed by the layer above via SetObs.
	ring *obs.Ring
}

// wireStat counts one direction of one handler's traffic.
type wireStat struct {
	frames atomic.Int64
	bytes  atomic.Int64 // payload bytes (the fixed 26-byte frame header is not included)
}

// wireAck is one registered non-blocking reply callback.
type wireAck struct {
	to int // target rank, so rank death can fail matching tokens
	// lossy marks aggregation-plane tokens: on target death the ack
	// completes as success ("the batch is lost, not pending") so
	// events and Finish scopes drain — replication above the batch
	// plane is what preserves the data. Data-plane tokens instead fail
	// with RankDeadError.
	lossy    bool
	deadline time.Time // zero: no reply deadline
	fn       func(payload []byte, err error)
}

// wireTimer is one After callback.
type wireTimer struct {
	at time.Time
	fn func()
}

// fragKey identifies one in-flight fragmented collective payload.
type fragKey struct {
	gen  uint64
	from int32
}

// fragBuf reassembles a fragmented payload.
type fragBuf struct {
	buf []byte
	got uint64
}

type wireLockState struct {
	held  bool
	queue []wireLockWaiter
}

type wireLockWaiter struct {
	rank  int32
	token uint64
}

// NewWireConduit builds the conduit over a connected transport endpoint,
// serving remote requests against mem (this rank's segment). The
// endpoint's handler table must be unused; NewWireConduit owns it.
func NewWireConduit(tep *transport.TCPEndpoint, mem Memory) *WireConduit {
	c := &WireConduit{
		tep:             tep,
		mem:             mem,
		replies:         make(map[uint64][]byte),
		acks:            make(map[uint64]*wireAck),
		void:            make(map[uint64]struct{}),
		locks:           make(map[uint64]*wireLockState),
		gatherParts:     make(map[uint64][][]byte),
		gatherCount:     make(map[uint64]int),
		gatherSeen:      make(map[uint64][]bool),
		gatherResult:    make(map[uint64][]byte),
		gatherFrags:     make(map[fragKey]*fragBuf),
		resultFrags:     make(map[uint64]*fragBuf),
		teamParts:       make(map[uint64]map[int32][]byte),
		teamFrags:       make(map[fragKey]*fragBuf),
		teamResult:      make(map[uint64][]byte),
		teamResultFrags: make(map[uint64]*fragBuf),
		tx:              make(map[uint16]*wireStat),
		rx:              make(map[uint16]*wireStat),
	}
	// Populate both counter maps up front for every handler the wire
	// protocol can carry (1..hHierBar): the debug plane reads them from
	// another goroutine, so the maps must never grow after this.
	for h := hReply; h <= hHierBar; h++ {
		c.tx[h] = &wireStat{}
		c.rx[h] = &wireStat{}
	}
	c.wait = c.tep.WaitFor
	c.register(hReply, c.onReply)
	c.register(hGet, c.onGet)
	c.register(hPut, c.onPut)
	c.register(hXor, c.onXor)
	c.register(hAlloc, c.onAlloc)
	c.register(hFree, c.onFree)
	c.register(hLockAcq, c.onLockAcquire)
	c.register(hLockRel, c.onLockRelease)
	c.register(hGather, c.onGather)
	c.register(hResult, c.onResult)
	c.register(hBatch, c.onBatch)
	c.register(hPing, c.onPing)
	c.register(hTeamGather, c.onTeamGather)
	c.register(hTeamResult, c.onTeamResult)
	return c
}

// register installs a handler wrapped with receive-side counting (and,
// in resilient mode, liveness bookkeeping: any frame from a peer is
// proof of life).
func (c *WireConduit) register(h uint16, fn transport.Handler) {
	c.tep.Register(h, func(ep *transport.TCPEndpoint, m transport.Message) {
		c.count(c.rx, m.Handler, len(m.Payload))
		c.ring.Instant(obs.KWireRx, m.From, uint32(len(m.Payload)), uint64(m.Handler))
		if c.lastHeard != nil {
			c.lastHeard[m.From] = time.Now()
		}
		fn(ep, m)
	})
}

func (c *WireConduit) count(dir map[uint16]*wireStat, h uint16, bytes int) {
	s := dir[h]
	if s == nil {
		return // unknown handler: never counted (the maps must not grow)
	}
	s.frames.Add(1)
	s.bytes.Add(int64(bytes))
}

// send is the counted send path every outgoing frame takes. The
// payload is borrowed until the transport's next flush (small payloads
// are copied at the call) — callers that reuse the buffer sooner go
// through sendOwned.
func (c *WireConduit) send(m transport.Message) error {
	c.count(c.tx, m.Handler, len(m.Payload))
	c.ring.Instant(obs.KWireTx, m.To, uint32(len(m.Payload)), uint64(m.Handler))
	return c.tep.Send(m)
}

// sendOwned is send with ownership transfer: the payload (typically a
// frames pool buffer) belongs to the transport from the call on and is
// recycled once the frame ships.
func (c *WireConduit) sendOwned(m transport.Message) error {
	c.count(c.tx, m.Handler, len(m.Payload))
	c.ring.Instant(obs.KWireTx, m.To, uint32(len(m.Payload)), uint64(m.Handler))
	return c.tep.SendOwned(m)
}

// SetObs installs the rank's span ring on the conduit's frame paths.
// Call before traffic starts; the ring itself is nil-safe, so a
// conduit without one records nothing.
func (c *WireConduit) SetObs(ring *obs.Ring) {
	c.ring = ring
	c.tep.SetObs(ring)
}

// Counters reports this conduit's wire traffic as named counters:
// aggregate frame and payload-byte totals per direction, plus
// per-handler breakdowns (wire_tx_frames_put, wire_rx_bytes_batch,
// ...). The bench harness folds them into its JSON artifact so message
// reductions from the aggregation layer are measurable, not anecdotal.
func (c *WireConduit) Counters() map[string]float64 {
	out := make(map[string]float64)
	fold := func(prefix string, dir map[uint16]*wireStat) {
		var frames, bytes int64
		for h, s := range dir {
			f, b := s.frames.Load(), s.bytes.Load()
			if f == 0 && b == 0 {
				continue
			}
			frames += f
			bytes += b
			out[prefix+"_frames_"+handlerName(h)] = float64(f)
			out[prefix+"_bytes_"+handlerName(h)] = float64(b)
		}
		out[prefix+"_frames"] = float64(frames)
		out[prefix+"_bytes"] = float64(bytes)
	}
	fold("wire_tx", c.tx)
	fold("wire_rx", c.rx)
	return out
}

// Rank returns this conduit's rank.
func (c *WireConduit) Rank() int { return c.tep.Rank() }

// Ranks returns the job size.
func (c *WireConduit) Ranks() int { return c.tep.Ranks() }

// WireCapable reports true: ranks are separate processes, closures do
// not cross.
func (c *WireConduit) WireCapable() bool { return true }

// Capabilities: the full extension set — batching, the async data
// plane, resilience, team collectives, traffic counters and external
// wakeup. No locality: a flat wire mesh encodes no co-location.
func (c *WireConduit) Capabilities() Caps {
	return Caps{Batch: c, Async: c, Resilient: c, Teams: c, Counters: c, Waker: c}
}

// Wake unblocks a WaitFor on this conduit from a foreign goroutine
// (WakerConduit).
func (c *WireConduit) Wake() { c.tep.Wake() }

// request sends one encoded-argument message and blocks until its
// tokened reply arrives, dispatching incoming requests while waiting.
// In resilient mode the wait also completes — with a RankDeadError —
// if the target is declared dead first, so a blocked requester never
// hangs on a lost peer.
//
// The returned reply buffer is a retained frame-pool buffer: the caller
// owns it and must hand it to frames.Put once consumed.
func (c *WireConduit) request(to int, handler uint16, payload []byte) ([]byte, error) {
	return c.requestMode(to, handler, payload, false)
}

// requestOwned is request with payload ownership transferred to the
// transport (released once the frame ships).
func (c *WireConduit) requestOwned(to int, handler uint16, payload []byte) ([]byte, error) {
	return c.requestMode(to, handler, payload, true)
}

func (c *WireConduit) requestMode(to int, handler uint16, payload []byte, owned bool) ([]byte, error) {
	if err := c.deadErr(to); err != nil {
		if owned {
			frames.Put(payload)
		}
		return nil, err
	}
	c.nextToken++
	tok := c.nextToken
	m := transport.Message{To: int32(to), Handler: handler, Arg: tok, Payload: payload}
	var err error
	if owned {
		err = c.sendOwned(m)
	} else {
		err = c.send(m)
	}
	if err != nil {
		if derr := c.noteSendError(to, err); derr != nil {
			return nil, derr
		}
		return nil, err
	}
	var out []byte
	found := false
	if err := c.wait(func() bool {
		out, found = c.replies[tok]
		return found || c.isDead(to)
	}); err != nil {
		return nil, err
	}
	if !found {
		// The target died while we waited. A reply may still surface
		// from the inbox backlog; void the token so it is dropped.
		c.void[tok] = struct{}{}
		return nil, c.deadErr(to)
	}
	delete(c.replies, tok)
	return out, nil
}

// isDead reports resilient-mode death state (always false otherwise).
func (c *WireConduit) isDead(rank int) bool {
	return c.dead != nil && c.dead[rank]
}

// deadErr returns the typed error for a dead target, nil otherwise.
func (c *WireConduit) deadErr(rank int) error {
	if c.isDead(rank) {
		return &RankDeadError{Rank: rank, Cause: c.deadCause[rank]}
	}
	return nil
}

// noteSendError folds a transport send failure into the death
// bookkeeping: in resilient mode a peer-down send means the target is
// dead, and the caller should surface that typed cause.
func (c *WireConduit) noteSendError(to int, err error) error {
	if c.resilient && errors.Is(err, transport.ErrPeerDown) {
		c.markDead(to, err)
		return c.deadErr(to)
	}
	return nil
}

// reply answers a request message with the given bytes.
func (c *WireConduit) reply(m transport.Message, payload []byte) {
	// A reply failure means the peer is gone; the job is aborting.
	_ = c.send(transport.Message{To: m.From, Handler: hReply, Arg: m.Arg, Payload: payload})
}

func (c *WireConduit) onReply(ep *transport.TCPEndpoint, m transport.Message) {
	// A voided token's requester gave up (death sweep, deadline): the
	// late reply is dropped, not parked (its pooled payload recycles
	// when this handler returns).
	if _, gone := c.void[m.Arg]; gone {
		delete(c.void, m.Arg)
		return
	}
	// Batch acknowledgements and async-data-plane replies carry a
	// callback instead of a parked requester; the callback consumes the
	// payload synchronously (GetAsync copies into its destination), so
	// the buffer recycles on return. Everything else parks in the
	// replies map past this dispatch: retain the pooled buffer —
	// ownership passes to the blocked requester, which releases it once
	// consumed (see request).
	if a, ok := c.acks[m.Arg]; ok {
		delete(c.acks, m.Arg)
		a.fn(m.Payload, nil)
		return
	}
	ep.Retain()
	c.replies[m.Arg] = m.Payload
}

func (c *WireConduit) onPing(_ *transport.TCPEndpoint, m transport.Message) {
	c.reply(m, nil)
}

func u64(p []byte) uint64       { return binary.LittleEndian.Uint64(p) }
func putU64(p []byte, v uint64) { binary.LittleEndian.PutUint64(p, v) }

// ---- One-sided data plane ----

// maxChunk bounds the data carried by one Get reply or Put request so
// no frame ever exceeds transport.MaxPayload (the put request spends 8
// bytes on the offset); larger transfers are split into chunked
// requests rather than failing — or, worse, hanging the requester on a
// reply the transport refuses to send.
const maxChunk = transport.MaxPayload - 8

// Get copies len(p) bytes from rank's segment at off into p.
func (c *WireConduit) Get(rank int, off uint64, p []byte) error {
	if rank == c.Rank() {
		c.mem.Read(off, p)
		return nil
	}
	for len(p) > 0 {
		n := len(p)
		if n > maxChunk {
			n = maxChunk
		}
		var req [16]byte
		putU64(req[0:], off)
		putU64(req[8:], uint64(n))
		rep, err := c.request(rank, hGet, req[:])
		if err != nil {
			return err
		}
		if len(rep) != n {
			return fmt.Errorf("gasnet: wire get of %d bytes returned %d", n, len(rep))
		}
		copy(p, rep)
		frames.Put(rep)
		p = p[n:]
		off += uint64(n)
	}
	return nil
}

func (c *WireConduit) onGet(_ *transport.TCPEndpoint, m transport.Message) {
	off, n := u64(m.Payload[0:]), u64(m.Payload[8:])
	if n > maxChunk {
		// A well-formed requester chunks, so an oversized length is a
		// corrupt frame. An empty reply makes the requester fail its
		// length check instead of hanging (and bounds the allocation).
		c.reply(m, nil)
		return
	}
	// Pooled reply buffer, handed to the transport with the frame: the
	// hot read-serving loop recycles instead of allocating per request.
	buf := frames.Get(int(n))
	c.mem.Read(off, buf)
	_ = c.sendOwned(transport.Message{To: m.From, Handler: hReply, Arg: m.Arg, Payload: buf})
}

// Put copies p into rank's segment at off.
func (c *WireConduit) Put(rank int, off uint64, p []byte) error {
	if rank == c.Rank() {
		c.mem.Write(off, p)
		return nil
	}
	for len(p) > 0 {
		n := len(p)
		if n > maxChunk {
			n = maxChunk
		}
		req := frames.Get(8 + n)
		putU64(req, off)
		copy(req[8:], p[:n])
		rep, err := c.requestOwned(rank, hPut, req)
		if err != nil {
			return err
		}
		frames.Put(rep)
		p = p[n:]
		off += uint64(n)
	}
	return nil
}

func (c *WireConduit) onPut(_ *transport.TCPEndpoint, m transport.Message) {
	c.mem.Write(u64(m.Payload), m.Payload[8:])
	c.reply(m, nil)
}

// asyncXfer tracks one multi-chunk non-blocking transfer: the first
// failure (death sweep, deadline expiry, mid-transfer send error)
// reports and suppresses its siblings, so onDone runs exactly once.
type asyncXfer struct {
	remaining int
	failed    bool
	onDone    func(err error)
}

func (x *asyncXfer) complete(err error) {
	if x.failed {
		return
	}
	if err != nil {
		x.failed = true
		x.onDone(err)
		return
	}
	x.remaining--
	if x.remaining == 0 {
		x.onDone(nil)
	}
}

// ackDeadline converts a caller timeout into a wireAck deadline;
// deadlines only fire in resilient mode (the tick sweep drives them).
func (c *WireConduit) ackDeadline(timeout time.Duration) time.Time {
	if timeout <= 0 || !c.resilient {
		return time.Time{}
	}
	return time.Now().Add(timeout)
}

// GetAsync is the non-blocking Get: every chunk request leaves now and
// onDone runs, on this rank's goroutine, when the last chunk's reply
// has been copied into p — or with the failure (reply deadline expiry,
// target death). Replies ride the same tokened hReply path as blocking
// requests — the callback registered per token is what makes the
// requester free to keep working instead of parking in WaitFor.
func (c *WireConduit) GetAsync(rank int, off uint64, p []byte, timeout time.Duration, onDone func(err error)) error {
	if err := c.deadErr(rank); err != nil {
		return err
	}
	if rank == c.Rank() {
		c.mem.Read(off, p)
		onDone(nil)
		return nil
	}
	if len(p) == 0 {
		onDone(nil)
		return nil
	}
	st := &asyncXfer{remaining: (len(p) + maxChunk - 1) / maxChunk, onDone: onDone}
	deadline := c.ackDeadline(timeout)
	issued := 0
	for len(p) > 0 {
		n := len(p)
		if n > maxChunk {
			n = maxChunk
		}
		dst := p[:n]
		var req [16]byte
		putU64(req[0:], off)
		putU64(req[8:], uint64(n))
		c.nextToken++
		c.acks[c.nextToken] = &wireAck{to: rank, deadline: deadline, fn: func(rep []byte, err error) {
			if err != nil {
				st.complete(err)
				return
			}
			if len(rep) != len(dst) {
				panic(fmt.Sprintf("gasnet: wire async get of %d bytes returned %d", len(dst), len(rep)))
			}
			copy(dst, rep)
			st.complete(nil)
		}}
		if err := c.send(transport.Message{
			To: int32(rank), Handler: hGet, Arg: c.nextToken, Payload: req[:],
		}); err != nil {
			return c.failAsyncSend(st, c.nextToken, rank, issued, err)
		}
		issued++
		p = p[n:]
		off += uint64(n)
	}
	return nil
}

// PutAsync is the non-blocking Put: chunked requests leave now, and
// onDone runs when the target has acknowledged the last chunk, or with
// the failure.
func (c *WireConduit) PutAsync(rank int, off uint64, p []byte, timeout time.Duration, onDone func(err error)) error {
	if err := c.deadErr(rank); err != nil {
		return err
	}
	if rank == c.Rank() {
		c.mem.Write(off, p)
		onDone(nil)
		return nil
	}
	if len(p) == 0 {
		onDone(nil)
		return nil
	}
	st := &asyncXfer{remaining: (len(p) + maxChunk - 1) / maxChunk, onDone: onDone}
	deadline := c.ackDeadline(timeout)
	issued := 0
	for len(p) > 0 {
		n := len(p)
		if n > maxChunk {
			n = maxChunk
		}
		req := frames.Get(8 + n)
		putU64(req, off)
		copy(req[8:], p[:n])
		c.nextToken++
		c.acks[c.nextToken] = &wireAck{to: rank, deadline: deadline, fn: func(_ []byte, err error) {
			st.complete(err)
		}}
		if err := c.sendOwned(transport.Message{
			To: int32(rank), Handler: hPut, Arg: c.nextToken, Payload: req,
		}); err != nil {
			return c.failAsyncSend(st, c.nextToken, rank, issued, err)
		}
		issued++
		p = p[n:]
		off += uint64(n)
	}
	return nil
}

// failAsyncSend unwinds a mid-transfer send failure for chunk number
// `issued` (0-based). The failed chunk's own ack is retired first. If
// no earlier chunk was issued there are no callbacks in flight, so the
// plain error return applies (onDone never runs). Otherwise the
// transfer already has observable callbacks, so the failure is
// delivered through onDone exactly once — directly, or already done by
// the markDead sweep a peer-down send error triggers — and nil is
// returned per the AsyncConduit contract.
func (c *WireConduit) failAsyncSend(st *asyncXfer, tok uint64, rank, issued int, err error) error {
	delete(c.acks, tok)
	if derr := c.noteSendError(rank, err); derr != nil {
		err = derr // markDead has already failed the earlier chunks' acks
	}
	if issued == 0 && !st.failed {
		return err
	}
	st.complete(err)
	return nil
}

// Xor64 performs the remote atomic update and returns the new value.
func (c *WireConduit) Xor64(rank int, off uint64, val uint64) (uint64, error) {
	if rank == c.Rank() {
		return c.mem.Xor64(off, val), nil
	}
	var req [16]byte
	putU64(req[0:], off)
	putU64(req[8:], val)
	rep, err := c.request(rank, hXor, req[:])
	if err != nil {
		return 0, err
	}
	v := u64(rep)
	frames.Put(rep)
	return v, nil
}

func (c *WireConduit) onXor(_ *transport.TCPEndpoint, m transport.Message) {
	v := c.mem.Xor64(u64(m.Payload[0:]), u64(m.Payload[8:]))
	var rep [8]byte
	putU64(rep[:], v)
	c.reply(m, rep[:])
}

// ---- Aggregation batch plane ----

// SetBatchHandler installs the decoder for incoming aggregation
// batches (hBatch frames). The handler executes on this rank's SPMD
// goroutine, inside Poll or a blocking call's wait loop, and must
// apply every operation in the payload before returning: the conduit
// acknowledges the batch to its sender as soon as fn returns, which is
// what completes the sender's events and Finish scopes. fn must not
// block. internal/core installs the internal/agg decoder here.
func (c *WireConduit) SetBatchHandler(fn func(from int, payload []byte)) {
	c.batchHandler = fn
}

// SendBatch ships one encoded aggregation batch to rank `to` without
// blocking; onAck runs on this rank's goroutine once the target has
// applied every operation in the batch. This is the transport half of
// the aggregation layer: many small operations travel as one frame and
// are acknowledged by one reply, instead of a frame pair each.
// Aggregation batches to a dead rank complete as LOST rather than
// failing: the ack fires (so events and Finish scopes drain) and the
// loss is counted — replication above the batch plane is what
// preserves the data. This is the complete-as-lost semantics the
// replicated DHT's write fan-out relies on.
func (c *WireConduit) SendBatch(to int, payload []byte, onAck func()) error {
	if onAck == nil {
		onAck = func() {} // the ack must still be consumed, or it parks in the replies map forever
	}
	if c.isDead(to) {
		frames.Put(payload) // ownership arrived with the call; the frame never ships
		c.lostBatches++
		onAck()
		return nil
	}
	c.nextToken++
	tok := c.nextToken
	c.acks[tok] = &wireAck{to: to, lossy: true, fn: func([]byte, error) { onAck() }}
	// The batch buffer comes from the aggregation encoder's frame pool
	// and is owned by this call: the transport recycles it once the
	// frame ships (or on a failed send).
	err := c.sendOwned(transport.Message{
		To: int32(to), Handler: hBatch, Arg: tok, Payload: payload,
	})
	if err != nil {
		delete(c.acks, tok)
		if c.noteSendError(to, err) != nil {
			c.lostBatches++
			onAck()
			return nil
		}
		return err
	}
	// Ship eagerly: the batch is itself the coalescing unit, so parking
	// it in the transport's tx queue until the next progress call would
	// re-batch the already-batched and charge every op a poll-cadence
	// latency — exactly what a size-triggered flush of a 1-op adaptive
	// batch must not pay.
	c.tep.Flush()
	return nil
}

func (c *WireConduit) onBatch(_ *transport.TCPEndpoint, m transport.Message) {
	if c.batchHandler == nil {
		panic("gasnet: aggregation batch received with no batch handler installed")
	}
	c.batchHandler(int(m.From), m.Payload)
	c.reply(m, nil)
}

// WaitFor blocks until pred() is true, dispatching incoming requests
// (and batch acknowledgements) while waiting. The aggregation layer
// uses it to drain pending batches without spinning.
func (c *WireConduit) WaitFor(pred func() bool) error {
	return c.wait(pred)
}

// ---- Resilient mode: failure detection and typed rank death ----

// EnableResilience switches the conduit to survivable peer loss.
// From here on: any frame from a peer counts as proof of life; a peer
// silent past HeartbeatInterval is pinged; an unanswered ping past
// HeartbeatTimeout declares the peer dead, as does an observed
// connection loss. Death fails (or completes-as-lost, for the batch
// plane) every pending token to that rank, unblocks requesters, and
// runs onRankDeath exactly once per rank on this rank's goroutine.
// Call before the job starts issuing traffic, on the SPMD goroutine.
func (c *WireConduit) EnableResilience(rc ResilienceConfig, onRankDeath func(rank int)) {
	if c.resilient {
		return
	}
	c.resilient = true
	c.hb = rc.withDefaults()
	c.onRankDeath = onRankDeath
	n := c.Ranks()
	c.dead = make([]bool, n)
	c.deadCause = make([]error, n)
	c.lastHeard = make([]time.Time, n)
	now := time.Now()
	for i := range c.lastHeard {
		c.lastHeard[i] = now
	}
	c.pingOut = make([]bool, n)
	c.tep.SetPeerDownHandler(func(peer int, cause error) { c.markDead(peer, cause) })
	tick := c.hb.HeartbeatInterval / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	c.tep.SetTick(tick, c.onTick)
}

// RankDead reports whether rank has been declared dead.
func (c *WireConduit) RankDead(rank int) bool { return c.isDead(rank) }

// LostBatches counts aggregation batches completed-as-lost because
// their target died.
func (c *WireConduit) LostBatches() int64 { return c.lostBatches }

// After schedules fn to run on this rank's goroutine once d has
// elapsed, swept by the resilience tick (so resolution is the tick
// period, not a wall-clock timer). The retry layer schedules backoffs
// and attempt re-issues here.
func (c *WireConduit) After(d time.Duration, fn func()) {
	c.timers = append(c.timers, wireTimer{at: time.Now().Add(d), fn: fn})
}

// Abort closes the conduit without the goodbye handshake: peers see
// this rank die. The chaos harness's in-process stand-in for kill.
func (c *WireConduit) Abort() { c.tep.Abort() }

// onTick runs on the SPMD goroutine (from Poll, or on a timer while a
// blocking wait sleeps): sweep expired reply deadlines, run due After
// callbacks, and drive the heartbeat probe state machine.
func (c *WireConduit) onTick() {
	now := time.Now()
	// Expired reply deadlines: fail the ack, void the token so a late
	// reply is dropped rather than parked.
	var expired []uint64
	for tok, a := range c.acks {
		if !a.deadline.IsZero() && now.After(a.deadline) {
			expired = append(expired, tok)
		}
	}
	for _, tok := range expired {
		a := c.acks[tok]
		delete(c.acks, tok)
		c.void[tok] = struct{}{}
		a.fn(nil, &TimeoutError{Rank: a.to, After: now.Sub(a.deadline)})
	}
	// Due After callbacks (fn may schedule more; those wait for the
	// next sweep).
	if len(c.timers) > 0 {
		var due []func()
		keep := c.timers[:0]
		for _, tm := range c.timers {
			if now.After(tm.at) {
				due = append(due, tm.fn)
			} else {
				keep = append(keep, tm)
			}
		}
		c.timers = keep
		for _, fn := range due {
			fn()
		}
	}
	// Heartbeats: ping any live peer silent past the interval. The
	// probe rides the normal ack plane with a deadline, so an
	// unanswered ping surfaces right here as a TimeoutError, which is
	// what severs the peer.
	me := c.Rank()
	for r := 0; r < c.Ranks(); r++ {
		if r == me || c.dead[r] || c.pingOut[r] {
			continue
		}
		if now.Sub(c.lastHeard[r]) <= c.hb.HeartbeatInterval {
			continue
		}
		peer := r
		c.pingOut[peer] = true
		c.ring.Instant(obs.KPing, int32(peer), 0, 0)
		c.nextToken++
		c.acks[c.nextToken] = &wireAck{to: peer, deadline: now.Add(c.hb.HeartbeatTimeout),
			fn: func(_ []byte, err error) {
				c.pingOut[peer] = false
				if err != nil && !c.dead[peer] {
					c.tep.SeverPeer(peer, fmt.Errorf("gasnet: rank %d unresponsive: %w", peer, err))
				}
			}}
		if err := c.send(transport.Message{To: int32(peer), Handler: hPing, Arg: c.nextToken}); err != nil {
			delete(c.acks, c.nextToken)
			c.pingOut[peer] = false
			c.noteSendError(peer, err)
		}
	}
}

// markDead declares one rank dead, exactly once: records the cause,
// fails or completes-as-lost every pending token addressed to it,
// unblocks collectives, and notifies the layer above. Runs on the
// SPMD goroutine (the transport delivers peer loss through the inbox).
func (c *WireConduit) markDead(rank int, cause error) {
	if c.dead == nil || c.dead[rank] {
		return
	}
	c.dead[rank] = true
	c.deadCause[rank] = cause
	c.ring.Instant(obs.KDeath, int32(rank), 0, 0)
	obs.Logf(1, c.Rank(), "wire: declaring rank %d dead: %v", rank, cause)
	// Collect first: the callbacks may register new tokens.
	var toks []uint64
	for tok, a := range c.acks {
		if a.to == rank {
			toks = append(toks, tok)
		}
	}
	derr := &RankDeadError{Rank: rank, Cause: cause}
	for _, tok := range toks {
		a, ok := c.acks[tok]
		if !ok {
			continue
		}
		delete(c.acks, tok)
		c.void[tok] = struct{}{}
		if a.lossy {
			c.lostBatches++
			a.fn(nil, nil)
		} else {
			a.fn(nil, derr)
		}
	}
	if c.onRankDeath != nil {
		c.onRankDeath(rank)
	}
}

// ---- Global memory management ----

// Alloc reserves size bytes in rank's segment (remote allocation is one
// round trip to the owner, as in the in-process backend).
func (c *WireConduit) Alloc(rank int, size uint64) (uint64, error) {
	if rank == c.Rank() {
		return c.mem.Alloc(size)
	}
	var req [8]byte
	putU64(req[:], size)
	rep, err := c.request(rank, hAlloc, req[:])
	if err != nil {
		return 0, err
	}
	v := u64(rep)
	frames.Put(rep)
	if v == 0 {
		return 0, fmt.Errorf("gasnet: remote alloc of %d bytes on rank %d failed", size, rank)
	}
	return v - 1, nil
}

func (c *WireConduit) onAlloc(_ *transport.TCPEndpoint, m transport.Message) {
	var rep [8]byte
	if off, err := c.mem.Alloc(u64(m.Payload)); err == nil {
		putU64(rep[:], off+1)
	}
	c.reply(m, rep[:])
}

// Free releases an allocation in rank's segment.
func (c *WireConduit) Free(rank int, off uint64) error {
	if rank == c.Rank() {
		return c.mem.Free(off)
	}
	var req [8]byte
	putU64(req[:], off)
	rep, err := c.request(rank, hFree, req[:])
	if err != nil {
		return err
	}
	ok := u64(rep) != 0
	frames.Put(rep)
	if !ok {
		return fmt.Errorf("gasnet: remote free at offset %d on rank %d failed", off, rank)
	}
	return nil
}

func (c *WireConduit) onFree(_ *transport.TCPEndpoint, m transport.Message) {
	var rep [8]byte
	if c.mem.Free(u64(m.Payload)) == nil {
		putU64(rep[:], 1)
	}
	c.reply(m, rep[:])
}

// ---- Lock service ----

// LockNew creates a lock homed on this rank.
func (c *WireConduit) LockNew() uint64 {
	c.nextLockID++
	c.locks[c.nextLockID] = &wireLockState{}
	return c.nextLockID
}

// LockAcquire blocks until the lock homed on home is held (try: report
// instead of queueing). The home's handler either replies immediately
// or parks the requester's token; the release handler answers parked
// tokens, so the waiter's blocked request completes on handoff.
func (c *WireConduit) LockAcquire(home int, id uint64, try bool) (bool, error) {
	req := make([]byte, 9)
	putU64(req, id)
	if try {
		req[8] = 1
	}
	rep, err := c.request(home, hLockAcq, req)
	if err != nil {
		return false, err
	}
	got := u64(rep) == 1
	frames.Put(rep)
	return got, nil
}

func (c *WireConduit) onLockAcquire(_ *transport.TCPEndpoint, m transport.Message) {
	id, try := u64(m.Payload), m.Payload[8] == 1
	st := c.locks[id]
	if st == nil {
		panic(fmt.Sprintf("gasnet: wire acquire of unknown lock %d", id))
	}
	var rep [8]byte
	switch {
	case !st.held:
		st.held = true
		putU64(rep[:], 1)
	case try:
		// rep stays 0: not acquired.
	default:
		st.queue = append(st.queue, wireLockWaiter{rank: m.From, token: m.Arg})
		return // reply deferred until release hands the lock over
	}
	c.reply(m, rep[:])
}

// LockRelease releases the lock homed on home.
func (c *WireConduit) LockRelease(home int, id uint64) error {
	var req [8]byte
	putU64(req[:], id)
	rep, err := c.request(home, hLockRel, req[:])
	frames.Put(rep)
	return err
}

func (c *WireConduit) onLockRelease(_ *transport.TCPEndpoint, m transport.Message) {
	st := c.locks[u64(m.Payload)]
	if st == nil || !st.held {
		panic("gasnet: wire release of unheld lock")
	}
	if len(st.queue) > 0 {
		next := st.queue[0]
		st.queue = st.queue[1:]
		// Hand off directly: the lock stays held; answering the parked
		// acquire request wakes the waiter.
		var granted [8]byte
		putU64(granted[:], 1)
		_ = c.send(transport.Message{
			To: next.rank, Handler: hReply, Arg: next.token, Payload: granted[:],
		})
	} else {
		st.held = false
	}
	var rep [8]byte
	putU64(rep[:], 1)
	c.reply(m, rep[:])
}

// ---- Barrier and allgather rendezvous ----

// Barrier blocks until all ranks arrive, servicing requests meanwhile.
func (c *WireConduit) Barrier() error {
	_, err := c.AllGather(nil)
	return err
}

// Collective payloads (a rank's contribution, rank 0's gathered table)
// have no inherent size bound, so they travel as one or more fragments
// of at most maxFragData bytes each, prefixed [total u64][offset u64];
// TCP's per-connection ordering keeps one sender's fragments in order
// and the (generation, sender) key separates interleaved senders.
const maxFragData = transport.MaxPayload - 16

// sendFragmented ships payload to rank `to` in bounded fragments (a
// zero-length payload still sends one header-only fragment, so the
// receiver always completes).
func (c *WireConduit) sendFragmented(to int, handler uint16, gen uint64, payload []byte) error {
	total := uint64(len(payload))
	off := uint64(0)
	for {
		n := total - off
		if n > maxFragData {
			n = maxFragData
		}
		frame := frames.Get(int(16 + n))
		putU64(frame[0:], total)
		putU64(frame[8:], off)
		copy(frame[16:], payload[off:off+n])
		// The fragment buffer is pooled and handed to the transport,
		// which recycles it after the writev (or on any error path).
		if err := c.sendOwned(transport.Message{
			To: int32(to), Handler: handler, Arg: gen, Payload: frame,
		}); err != nil {
			return err
		}
		off += n
		if off >= total {
			return nil
		}
	}
}

// accumFragment folds one fragment into its reassembly buffer and
// returns the complete payload once every byte has arrived.
func accumFragment(fb *fragBuf, payload []byte) ([]byte, bool) {
	total := u64(payload[0:])
	off := u64(payload[8:])
	data := payload[16:]
	if fb.buf == nil {
		fb.buf = make([]byte, total)
	}
	copy(fb.buf[off:], data)
	fb.got += uint64(len(data))
	if fb.got >= total {
		return fb.buf, true
	}
	return nil, false
}

// AllGather deposits this rank's contribution with rank 0 and returns
// the full table. Generations are implicit: collectives are SPMD-
// ordered, so the i-th AllGather on every rank is the same collective.
// Rank 0 buffers early arrivals of future generations.
// In resilient mode a dead rank's slot in the gathered table is nil
// (zero-length): rank 0 completes the collective once every rank has
// either deposited or died, skips dead ranks when shipping the table
// back, and a non-root rank fails with RankDeadError if rank 0 itself
// dies (root death is not survivable — the rendezvous point is gone).
func (c *WireConduit) AllGather(contrib []byte) ([][]byte, error) {
	c.gen++
	g := c.gen
	n := c.Ranks()
	if c.Rank() == 0 {
		c.depositGather(g, 0, contrib)
		if err := c.wait(func() bool { return c.gatherComplete(g, n) }); err != nil {
			return nil, err
		}
		parts := c.gatherParts[g]
		delete(c.gatherParts, g)
		delete(c.gatherCount, g)
		delete(c.gatherSeen, g)
		c.gatherDone = g
		enc := encodeParts(parts)
		for r := 1; r < n; r++ {
			if c.isDead(r) {
				continue
			}
			if err := c.sendFragmented(r, hResult, g, enc); err != nil {
				if c.noteSendError(r, err) != nil {
					continue // declared dead mid-broadcast; the rest still get the table
				}
				return nil, err
			}
		}
		// The result frames were sent after this rank's wait completed;
		// nothing downstream is guaranteed to block, so ship them now.
		c.tep.Flush()
		return parts, nil
	}
	if err := c.deadErr(0); err != nil {
		return nil, err
	}
	if err := c.sendFragmented(0, hGather, g, contrib); err != nil {
		if derr := c.noteSendError(0, err); derr != nil {
			return nil, derr
		}
		return nil, err
	}
	var enc []byte
	found := false
	if err := c.wait(func() bool {
		enc, found = c.gatherResult[g]
		return found || c.isDead(0)
	}); err != nil {
		return nil, err
	}
	if !found {
		return nil, c.deadErr(0)
	}
	delete(c.gatherResult, g)
	return decodeParts(enc, n)
}

// gatherComplete is rank 0's completion predicate for generation g:
// legacy, every rank deposited; resilient, every rank deposited or is
// dead (a deposit that raced ahead of the death notification still
// counts — the data is preserved).
func (c *WireConduit) gatherComplete(g uint64, n int) bool {
	if !c.resilient {
		return c.gatherCount[g] == n
	}
	seen := c.gatherSeen[g]
	if seen == nil {
		return false
	}
	for r := 0; r < n; r++ {
		if !seen[r] && !c.dead[r] {
			return false
		}
	}
	return true
}

func (c *WireConduit) depositGather(g uint64, rank int32, contrib []byte) {
	parts := c.gatherParts[g]
	if parts == nil {
		parts = make([][]byte, c.Ranks())
		c.gatherParts[g] = parts
	}
	parts[rank] = contrib
	c.gatherCount[g]++
	seen := c.gatherSeen[g]
	if seen == nil {
		seen = make([]bool, c.Ranks())
		c.gatherSeen[g] = seen
	}
	seen[rank] = true
}

func (c *WireConduit) onGather(_ *transport.TCPEndpoint, m transport.Message) {
	if c.resilient && m.Arg <= c.gatherDone {
		// A straggler deposit for a generation that already completed
		// without this (since-revived? no — declared-dead) rank: drop
		// it; the table was already shipped.
		return
	}
	k := fragKey{gen: m.Arg, from: m.From}
	fb := c.gatherFrags[k]
	if fb == nil {
		fb = &fragBuf{}
		c.gatherFrags[k] = fb
	}
	if full, done := accumFragment(fb, m.Payload); done {
		delete(c.gatherFrags, k)
		c.depositGather(m.Arg, m.From, full)
	}
}

func (c *WireConduit) onResult(_ *transport.TCPEndpoint, m transport.Message) {
	fb := c.resultFrags[m.Arg]
	if fb == nil {
		fb = &fragBuf{}
		c.resultFrags[m.Arg] = fb
	}
	if full, done := accumFragment(fb, m.Payload); done {
		delete(c.resultFrags, m.Arg)
		c.gatherResult[m.Arg] = full
	}
}

// ---- Team (subset) collectives ----

// TeamAllGather deposits this rank's contribution with the team root
// (members[0]) and returns every member's, indexed by team rank. The
// rendezvous is keyed by the caller-chosen key rather than the world
// generation, so independent teams gather concurrently; contributions
// park by world rank at the root, which may receive deposits before it
// enters the collective itself. Fragmentation bounds every frame at
// the transport payload limit, exactly as the world allgather does.
func (c *WireConduit) TeamAllGather(key uint64, members []int, contrib []byte) ([][]byte, error) {
	me := c.Rank()
	root := members[0]
	if me == root {
		c.depositTeam(key, int32(me), contrib)
		if err := c.wait(func() bool { return len(c.teamParts[key]) == len(members) }); err != nil {
			return nil, err
		}
		byRank := c.teamParts[key]
		delete(c.teamParts, key)
		parts := make([][]byte, len(members))
		for i, m := range members {
			p, ok := byRank[int32(m)]
			if !ok {
				return nil, fmt.Errorf("gasnet: team collective %#x: deposit from non-member while awaiting rank %d", key, m)
			}
			parts[i] = p
		}
		enc := encodeParts(parts)
		for _, m := range members[1:] {
			if err := c.sendFragmented(m, hTeamResult, key, enc); err != nil {
				return nil, err
			}
		}
		// Members may not block again on our traffic; ship the tables now.
		c.tep.Flush()
		return parts, nil
	}
	if err := c.sendFragmented(root, hTeamGather, key, contrib); err != nil {
		return nil, err
	}
	var enc []byte
	found := false
	if err := c.wait(func() bool {
		enc, found = c.teamResult[key]
		return found
	}); err != nil {
		return nil, err
	}
	delete(c.teamResult, key)
	return decodeParts(enc, len(members))
}

// TeamBarrier is a payload-free team allgather.
func (c *WireConduit) TeamBarrier(key uint64, members []int) error {
	_, err := c.TeamAllGather(key, members, nil)
	return err
}

// depositTeam parks one member's contribution at the root. A nil
// contribution still creates the map entry — arrival is what the
// completion predicate counts.
func (c *WireConduit) depositTeam(key uint64, rank int32, contrib []byte) {
	byRank := c.teamParts[key]
	if byRank == nil {
		byRank = make(map[int32][]byte)
		c.teamParts[key] = byRank
	}
	if contrib == nil {
		contrib = []byte{}
	}
	byRank[rank] = contrib
}

func (c *WireConduit) onTeamGather(_ *transport.TCPEndpoint, m transport.Message) {
	k := fragKey{gen: m.Arg, from: m.From}
	fb := c.teamFrags[k]
	if fb == nil {
		fb = &fragBuf{}
		c.teamFrags[k] = fb
	}
	if full, done := accumFragment(fb, m.Payload); done {
		delete(c.teamFrags, k)
		c.depositTeam(m.Arg, m.From, full)
	}
}

func (c *WireConduit) onTeamResult(_ *transport.TCPEndpoint, m transport.Message) {
	fb := c.teamResultFrags[m.Arg]
	if fb == nil {
		fb = &fragBuf{}
		c.teamResultFrags[m.Arg] = fb
	}
	if full, done := accumFragment(fb, m.Payload); done {
		delete(c.teamResultFrags, m.Arg)
		c.teamResult[m.Arg] = full
	}
}

// encodeParts length-prefixes each rank's contribution.
func encodeParts(parts [][]byte) []byte {
	total := 0
	for _, p := range parts {
		total += 8 + len(p)
	}
	enc := make([]byte, total)
	off := 0
	for _, p := range parts {
		putU64(enc[off:], uint64(len(p)))
		off += 8
		off += copy(enc[off:], p)
	}
	return enc
}

func decodeParts(enc []byte, n int) ([][]byte, error) {
	parts := make([][]byte, n)
	for i := 0; i < n; i++ {
		if len(enc) < 8 {
			return nil, fmt.Errorf("gasnet: truncated allgather table at rank %d", i)
		}
		ln := u64(enc)
		enc = enc[8:]
		if uint64(len(enc)) < ln {
			return nil, fmt.Errorf("gasnet: truncated allgather contribution for rank %d", i)
		}
		if ln > 0 {
			parts[i] = enc[:ln:ln]
		}
		enc = enc[ln:]
	}
	return parts, nil
}

// Poll dispatches queued requests without blocking.
func (c *WireConduit) Poll() int { return c.tep.Poll() }

// Goodbye announces a clean close to every peer. Call it on the
// success path only, after the job's final Barrier and before Close;
// a rank that aborts must skip it so its peers see the EOF as peer
// loss and abort too.
func (c *WireConduit) Goodbye() { c.tep.Goodbye() }

// Close tears down the transport endpoint. Callers must have
// synchronized (a final Barrier) first, or in-flight peers' requests
// may fail.
func (c *WireConduit) Close() error { return c.tep.Close() }
