package gasnet

import "fmt"

// ProcConduit is the in-process Conduit: ranks are goroutines of one
// address space, data moves by direct segment access (the RDMA analog),
// and control traffic rides the Engine's active messages so the
// virtual-time cost model keeps charging exactly what the pre-conduit
// runtime charged. It is the fast path and the reference semantics; the
// wire backend must agree with it on every computed answer.
type ProcConduit struct {
	ep    *Endpoint
	group *procGroup

	// Lock service state for locks homed on this rank. Manipulated only
	// by active messages executing on this rank's goroutine, so no
	// mutex is needed (the same discipline the engine's AM handlers
	// follow everywhere).
	locks      map[uint64]*procLockState
	nextLockID uint64
}

type procGroup struct {
	mems     []Memory
	conduits []*ProcConduit
}

type procLockState struct {
	held  bool
	queue []procLockWaiter
}

type procLockWaiter struct {
	rank    int
	granted *bool
}

// NewProcGroup builds one ProcConduit per rank of the engine, serving
// remote requests against mems (indexed by rank).
func NewProcGroup(eng *Engine, mems []Memory) []*ProcConduit {
	if len(mems) != eng.N {
		panic(fmt.Sprintf("gasnet: %d memories for %d ranks", len(mems), eng.N))
	}
	g := &procGroup{mems: mems, conduits: make([]*ProcConduit, eng.N)}
	for i := range g.conduits {
		g.conduits[i] = &ProcConduit{
			ep:    eng.Endpoint(i),
			group: g,
			locks: make(map[uint64]*procLockState),
		}
	}
	return g.conduits
}

// Rank returns this conduit's rank.
func (c *ProcConduit) Rank() int { return c.ep.Rank }

// Ranks returns the job size.
func (c *ProcConduit) Ranks() int { return c.ep.N() }

// WireCapable reports false: ranks share one address space, so closure
// asyncs are allowed.
func (c *ProcConduit) WireCapable() bool { return false }

// Capabilities: teams only. Batch and async stay nil because an
// in-process remote access is already a direct segment load/store —
// coalescing or splitting initiation from completion would only add
// latency; the core's virtual-time path models the overlap instead.
// Resilience is simulated above the conduit (core's chaos plane).
func (c *ProcConduit) Capabilities() Caps { return Caps{Teams: c} }

// TeamAllGather rides the engine's subset rendezvous; contributions are
// indexed by team rank (position in members).
func (c *ProcConduit) TeamAllGather(key uint64, members []int, contrib []byte) ([][]byte, error) {
	idx := -1
	for i, m := range members {
		if m == c.ep.Rank {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("gasnet: rank %d is not a member of team collective %#x", c.ep.Rank, key)
	}
	return c.ep.TeamGather(key, idx, len(members), contrib), nil
}

// TeamBarrier is a payload-free team allgather.
func (c *ProcConduit) TeamBarrier(key uint64, members []int) error {
	_, err := c.TeamAllGather(key, members, nil)
	return err
}

// Get copies from the target segment under its lock — the one-sided
// RDMA analog. The caller charges get costs; no messages are involved.
func (c *ProcConduit) Get(rank int, off uint64, p []byte) error {
	c.group.mems[rank].Read(off, p)
	return nil
}

// Put copies into the target segment under its lock.
func (c *ProcConduit) Put(rank int, off uint64, p []byte) error {
	c.group.mems[rank].Write(off, p)
	return nil
}

// Xor64 performs the remote atomic directly on the target segment.
func (c *ProcConduit) Xor64(rank int, off uint64, val uint64) (uint64, error) {
	return c.group.mems[rank].Xor64(off, val), nil
}

// call is the blocking request/reply AM pattern remote control ops use:
// fn runs on the target's goroutine, the reply value travels back, and
// both legs are charged to the cost model.
func (c *ProcConduit) call(target, reqBytes, repBytes int, fn func() uint64) uint64 {
	if target == c.ep.Rank {
		// Loopback still rides Send for uniform cost accounting.
		var reply uint64
		c.ep.Send(target, reqBytes, func(*Endpoint) { reply = fn() })
		return reply
	}
	var (
		reply uint64
		done  bool
	)
	me := c.ep.Rank
	c.ep.Send(target, reqBytes, func(tep *Endpoint) {
		v := fn()
		tep.Send(me, repBytes, func(*Endpoint) {
			reply = v
			done = true
		})
	})
	c.ep.WaitFor(func() bool { return done })
	return reply
}

// Alloc reserves size bytes in rank's segment; remote allocation is an
// AM round trip executed on the owner's goroutine (16-byte request,
// 16-byte reply, matching the paper's remote-allocate RPC shape).
func (c *ProcConduit) Alloc(rank int, size uint64) (uint64, error) {
	if rank == c.ep.Rank {
		return c.group.mems[rank].Alloc(size)
	}
	const failed = ^uint64(0)
	mem := c.group.mems[rank]
	v := c.call(rank, 16, 16, func() uint64 {
		off, err := mem.Alloc(size)
		if err != nil {
			return failed
		}
		return off + 1
	})
	if v == failed {
		return 0, fmt.Errorf("gasnet: remote alloc of %d bytes on rank %d failed", size, rank)
	}
	return v - 1, nil
}

// Free releases an allocation in rank's segment.
func (c *ProcConduit) Free(rank int, off uint64) error {
	if rank == c.ep.Rank {
		return c.group.mems[rank].Free(off)
	}
	mem := c.group.mems[rank]
	ok := c.call(rank, 16, 8, func() uint64 {
		if mem.Free(off) != nil {
			return 0
		}
		return 1
	})
	if ok == 0 {
		return fmt.Errorf("gasnet: remote free at offset %d on rank %d failed", off, rank)
	}
	return nil
}

// Barrier delegates to the engine's virtual-time barrier.
func (c *ProcConduit) Barrier() error {
	c.ep.Barrier()
	return nil
}

// AllGather rides the engine's collective rendezvous: one shared slot,
// per-rank deposits, byte payload charged to the cost model.
func (c *ProcConduit) AllGather(contrib []byte) ([][]byte, error) {
	me := c.ep.Rank
	slot := c.ep.Collective(
		func(n int) any { return make([][]byte, n) },
		func(s any) { s.([][]byte)[me] = contrib },
		nil,
		len(contrib),
	)
	return slot.([][]byte), nil
}

// LockNew creates a lock homed on this rank.
func (c *ProcConduit) LockNew() uint64 {
	c.nextLockID++
	id := c.nextLockID
	c.locks[id] = &procLockState{}
	return id
}

// LockAcquire blocks until the lock (homed on home) is held by this
// rank, servicing tasks while waiting; with try it reports failure
// instead of queueing. Grant and release each cost one round trip, like
// a network lock service.
func (c *ProcConduit) LockAcquire(home int, id uint64, try bool) (bool, error) {
	homeC := c.group.conduits[home]
	if try {
		got := c.call(home, 16, 8, func() uint64 {
			st := homeC.locks[id]
			if st == nil {
				panic("gasnet: TryAcquire on unknown lock")
			}
			if st.held {
				return 0
			}
			st.held = true
			return 1
		})
		return got == 1, nil
	}
	granted := false
	me := c.ep.Rank
	c.ep.Send(home, 16, func(tep *Endpoint) {
		st := homeC.locks[id]
		if st == nil {
			panic("gasnet: Acquire on unknown lock")
		}
		if st.held {
			st.queue = append(st.queue, procLockWaiter{rank: me, granted: &granted})
			return
		}
		st.held = true
		tep.Send(me, 8, func(*Endpoint) { granted = true })
	})
	c.ep.WaitFor(func() bool { return granted })
	return true, nil
}

// LockRelease releases the lock, handing it to the oldest queued waiter
// if any. The caller must hold the lock.
func (c *ProcConduit) LockRelease(home int, id uint64) error {
	homeC := c.group.conduits[home]
	done := false
	me := c.ep.Rank
	c.ep.Send(home, 16, func(tep *Endpoint) {
		st := homeC.locks[id]
		if st == nil || !st.held {
			panic("gasnet: Release of unheld lock")
		}
		if len(st.queue) > 0 {
			next := st.queue[0]
			st.queue = st.queue[1:]
			// Hand off directly: the lock stays held, the waiter wakes.
			g := next.granted
			tep.Send(next.rank, 8, func(*Endpoint) { *g = true })
		} else {
			st.held = false
		}
		tep.Send(me, 8, func(*Endpoint) { done = true })
	})
	c.ep.WaitFor(func() bool { return done })
	return nil
}

// Poll services queued engine tasks without blocking.
func (c *ProcConduit) Poll() int { return c.ep.Poll() }

// Close is a no-op: the engine owns no external resources.
func (c *ProcConduit) Close() error { return nil }
