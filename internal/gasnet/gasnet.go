// Package gasnet is the communication substrate of upcxx-go, playing the
// role GASNet plays under real UPC++ (paper Fig 2): active messages, a
// per-rank progress engine, barriers and collective rendezvous.
//
// Each rank of a job owns one Endpoint, serviced by that rank's goroutine.
// An active message is a closure executed on the *target's* goroutine when
// the target polls its inbox — either explicitly (Poll / Advance) or
// implicitly while blocked in any synchronizing operation (Barrier,
// WaitFor, a full Send). This mirrors GASNet semantics, where AM handlers
// run inside the polling call of the target process.
//
// Two invariants keep the system deadlock-free:
//
//  1. AM handlers never block. Anything that must wait (lock grants,
//     future replies) is expressed as a later message back to the waiter.
//  2. Any cross-rank state change that can unblock a waiter is followed by
//     a wake message to that waiter's inbox, so blocked receives always
//     terminate.
//
// Virtual time: every message carries its modeled arrival time; executing
// a task first advances the target clock to the arrival (never backwards).
// See DESIGN.md §4.
package gasnet

import (
	"sync"
	"sync/atomic"

	"upcxx/internal/sim"
)

// InboxCap is the per-rank inbox depth. Senders finding a full inbox
// service their own inbox while waiting (the GASNet "poll while stalled"
// rule), so a modest depth bounds memory at 32K ranks without deadlock.
const InboxCap = 64

// Task is one active message: a closure plus modeling metadata.
type Task struct {
	// Fn runs on the target rank's goroutine; ep is the target endpoint.
	Fn func(ep *Endpoint)
	// Arrival is the virtual time at which the message reaches the target.
	Arrival float64
	// From is the sending rank.
	From int
	// Bytes is the modeled payload size.
	Bytes int
}

// Stats aggregates communication counters for one endpoint. Counters are
// atomic so the engine can snapshot them while ranks run.
type Stats struct {
	AMs      atomic.Int64
	Tasks    atomic.Int64
	Puts     atomic.Int64
	Gets     atomic.Int64
	PutBytes atomic.Int64
	GetBytes atomic.Int64
	Barriers atomic.Int64
}

// Engine owns the endpoints, barrier and collective state of one job.
type Engine struct {
	N     int
	Model *sim.Model
	eps   []*Endpoint
	bar   *barrier
	coll  *collective
	team  *teamColl
}

// New creates an engine with n endpoints sharing the given cost model.
func New(model *sim.Model, n int) *Engine {
	g := &Engine{
		N:     n,
		Model: model,
		bar:   newBarrier(n),
		coll:  &collective{},
		team:  &teamColl{slots: make(map[uint64]*teamSlot)},
	}
	g.eps = make([]*Endpoint, n)
	for i := range g.eps {
		g.eps[i] = &Endpoint{
			Rank:  i,
			eng:   g,
			Inbox: make(chan Task, InboxCap),
		}
	}
	return g
}

// Endpoint returns rank i's endpoint.
func (g *Engine) Endpoint(i int) *Endpoint { return g.eps[i] }

// TotalStats sums the counters across all endpoints.
func (g *Engine) TotalStats() (ams, tasks, puts, gets, putB, getB int64) {
	for _, e := range g.eps {
		ams += e.Stats.AMs.Load()
		tasks += e.Stats.Tasks.Load()
		puts += e.Stats.Puts.Load()
		gets += e.Stats.Gets.Load()
		putB += e.Stats.PutBytes.Load()
		getB += e.Stats.GetBytes.Load()
	}
	return
}

// MaxClock returns the maximum virtual clock across ranks (the job's
// modeled makespan so far).
func (g *Engine) MaxClock() float64 {
	m := 0.0
	for _, e := range g.eps {
		if t := e.Clock.Now(); t > m {
			m = t
		}
	}
	return m
}

// Endpoint is one rank's attachment to the engine.
type Endpoint struct {
	Rank  int
	eng   *Engine
	Inbox chan Task
	Clock sim.Clock
	Stats Stats
}

// Engine returns the owning engine.
func (e *Endpoint) Engine() *Engine { return e.eng }

// N returns the job size.
func (e *Endpoint) N() int { return e.eng.N }

// Model returns the job's cost model.
func (e *Endpoint) Model() *sim.Model { return e.eng.Model }

// Peer returns another rank's endpoint; used by the one-sided data path
// (the RDMA analog) and by in-process shortcuts that are charged as if
// they were messages.
func (e *Endpoint) Peer(rank int) *Endpoint { return e.eng.eps[rank] }

// Send injects an active message of the given modeled payload size to the
// target rank, charging send overhead to the local clock. If the target
// inbox is full the sender services its own inbox while waiting.
func (e *Endpoint) Send(to int, bytes int, fn func(ep *Endpoint)) {
	mo := e.eng.Model
	t0 := e.Clock.Now()
	e.Clock.Advance(mo.AMSendCost(bytes)) // sender occupancy
	arrival := mo.AMArrival(t0, e.Rank, to, bytes)
	e.SendAt(to, arrival, bytes, fn)
}

// SendAt injects a message with an explicit arrival time, for callers
// (e.g. the MPI baseline) that model their own protocol costs.
func (e *Endpoint) SendAt(to int, arrival float64, bytes int, fn func(ep *Endpoint)) {
	e.Stats.AMs.Add(1)
	t := Task{Fn: fn, Arrival: arrival, From: e.Rank, Bytes: bytes}
	if to == e.Rank {
		// Loopback: execute immediately on our own goroutine.
		e.exec(t)
		return
	}
	tgt := e.eng.eps[to]
	for {
		select {
		case tgt.Inbox <- t:
			return
		case mine := <-e.Inbox:
			e.exec(mine)
		}
	}
}

func (e *Endpoint) exec(t Task) {
	e.Clock.AdvanceTo(t.Arrival)
	e.Stats.Tasks.Add(1)
	t.Fn(e)
}

// Poll drains all currently queued tasks without blocking and reports how
// many ran. This is the paper's advance().
func (e *Endpoint) Poll() int {
	n := 0
	for {
		select {
		case t := <-e.Inbox:
			e.exec(t)
			n++
		default:
			return n
		}
	}
}

// WaitFor services the inbox until pred() is true. Any state transition
// that can make pred true must be accompanied by a wake message to this
// endpoint (invariant 2 above); Wake provides a no-op message for that.
func (e *Endpoint) WaitFor(pred func() bool) {
	for !pred() {
		e.exec(<-e.Inbox)
	}
}

// Wake sends a no-op message that unblocks a WaitFor on the target; the
// arrival time models the notification's network travel.
func (e *Endpoint) Wake(to int, arrival float64) {
	e.SendAt(to, arrival, 0, func(*Endpoint) {})
}

// ---- Barrier ----

type barGen struct {
	ch        chan struct{}
	releaseNs float64
}

type barrier struct {
	mu    sync.Mutex
	n     int
	count int
	maxNs float64
	cur   *barGen
}

func newBarrier(n int) *barrier {
	return &barrier{n: n, cur: &barGen{ch: make(chan struct{})}}
}

// Barrier synchronizes all ranks. On release every clock advances to
// max(entry clocks) + the modeled dissemination-barrier cost. Tasks are
// serviced while waiting, matching GASNet's progress guarantee.
func (e *Endpoint) Barrier() {
	e.Stats.Barriers.Add(1)
	b := e.eng.bar
	b.mu.Lock()
	gen := b.cur
	if t := e.Clock.Now(); t > b.maxNs {
		b.maxNs = t
	}
	b.count++
	if b.count == b.n {
		gen.releaseNs = b.maxNs + e.eng.Model.BarrierCost()
		b.count = 0
		b.maxNs = 0
		b.cur = &barGen{ch: make(chan struct{})}
		b.mu.Unlock()
		close(gen.ch)
	} else {
		b.mu.Unlock()
		for done := false; !done; {
			select {
			case <-gen.ch:
				done = true
			case t := <-e.Inbox:
				e.exec(t)
			}
		}
	}
	e.Clock.AdvanceTo(gen.releaseNs)
}

// ---- Collective rendezvous ----

type collective struct {
	mu       sync.Mutex
	slot     any
	leavers  int
	finished bool
}

// Collective performs an allgather-style rendezvous. alloc builds the
// shared result (called once per collective, by the first arriver); put
// deposits this rank's contribution into it; finish (optional) runs
// exactly once, after every contribution is deposited and before any
// rank returns — the hook reductions use to fold in one rendezvous. The
// returned value is shared read-only by all ranks and remains valid
// after return (a fresh one is allocated per collective). elemBytes
// sizes the cost model's allgather charge.
//
// Sharing one result slice instead of copying per rank is what keeps
// 32K-rank metadata exchanges (e.g. shared_array base-offset directories)
// linear instead of quadratic in memory.
func (e *Endpoint) Collective(alloc func(n int) any, put func(slot any), finish func(slot any), elemBytes int) any {
	c := e.eng.coll
	c.mu.Lock()
	if c.slot == nil {
		c.slot = alloc(e.eng.N)
	}
	slot := c.slot
	c.mu.Unlock()

	put(slot)
	e.Barrier() // all contributions deposited

	if finish != nil {
		c.mu.Lock()
		if !c.finished {
			finish(slot)
			c.finished = true
		}
		c.mu.Unlock()
	}

	mo := e.eng.Model
	cost := float64(mo.CollStages())*mo.CollStageCost(elemBytes) +
		float64(e.eng.N-1)*mo.WireNs(elemBytes)
	e.Clock.Advance(cost)

	c.mu.Lock()
	c.leavers++
	if c.leavers == e.eng.N {
		c.slot = nil
		c.leavers = 0
		c.finished = false
	}
	c.mu.Unlock()
	e.Barrier() // nobody may start the next collective before all leave
	return slot
}

// ---- Team (subset) collective rendezvous ----

// teamColl holds the in-flight subset collectives, keyed by the
// caller-supplied collective key. Unlike the world-wide Collective —
// one generation at a time, fenced by barriers — independent teams may
// rendezvous concurrently, so each key gets its own slot and the slot
// is retired when its last member leaves.
type teamColl struct {
	mu    sync.Mutex
	slots map[uint64]*teamSlot
}

type teamSlot struct {
	parts     [][]byte
	count     int
	leavers   int
	maxNs     float64
	releaseNs float64
	done      chan struct{}
}

// TeamGather is the engine's subset allgather: the members of one team
// (size of them, this rank depositing at team rank idx) rendezvous
// under key, and every member returns the shared contribution table
// indexed by team rank. Tasks are serviced while waiting, and all
// members leave at the same virtual time (the max of their entry
// clocks); the caller charges the tree-stage costs on top. Keys must
// be unique per collective — the core derives them from team id and a
// per-team sequence number.
func (e *Endpoint) TeamGather(key uint64, idx, size int, contrib []byte) [][]byte {
	tc := e.eng.team
	tc.mu.Lock()
	s := tc.slots[key]
	if s == nil {
		s = &teamSlot{parts: make([][]byte, size), done: make(chan struct{})}
		tc.slots[key] = s
	}
	if len(s.parts) != size {
		tc.mu.Unlock()
		panic("gasnet: TeamGather members disagree on team size")
	}
	s.parts[idx] = contrib
	if t := e.Clock.Now(); t > s.maxNs {
		s.maxNs = t
	}
	s.count++
	if s.count == size {
		s.releaseNs = s.maxNs
		close(s.done)
	}
	tc.mu.Unlock()

	for done := false; !done; {
		select {
		case <-s.done:
			done = true
		case t := <-e.Inbox:
			e.exec(t)
		}
	}
	e.Clock.AdvanceTo(s.releaseNs)

	tc.mu.Lock()
	s.leavers++
	if s.leavers == size {
		delete(tc.slots, key)
	}
	tc.mu.Unlock()
	return s.parts
}
