package gasnet

import (
	"fmt"
	"sync"
	"testing"
)

// buildShmPair maps a fleet of co-located ShmConduits over one shared
// temp-dir file set, with a deliberately tiny ring so the stress tests
// exercise wraparound, backpressure (full-ring spins) and record
// fragmentation, not just the easy path.
func buildShmFleet(t *testing.T, n, ringBytes, segBytes int) []*ShmConduit {
	t.Helper()
	dir := t.TempDir()
	cds := make([]*ShmConduit, n)
	for i := 0; i < n; i++ {
		shm, err := CreateShm(dir, i, n, ringBytes, segBytes)
		if err != nil {
			t.Fatal(err)
		}
		cds[i] = shm
	}
	for _, shm := range cds {
		if err := shm.Attach(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, shm := range cds {
			shm.Close()
		}
	})
	return cds
}

// TestShmRingStress hammers every pairwise ring from all ranks at once
// — mixed payload sizes from empty through multi-fragment, tiny rings
// forcing wraps and full-ring backpressure — and verifies every byte
// and the delivery ordering per (sender, receiver) pair. Run with
// -race this doubles as the memory-model check on the mapped
// head/tail publication protocol.
func TestShmRingStress(t *testing.T) {
	const (
		n       = 4
		ring    = minShmRingBytes // 4 KiB: maxFrag is 1 KiB, so big sends fragment
		rounds  = 300
		maxSize = 3*minShmRingBytes/4 + 17 // 3 fragments
	)
	cds := buildShmFleet(t, n, ring, 1<<12)

	pattern := func(from, to, seq, i int) byte {
		return byte(from*131 + to*31 + seq*7 + i)
	}

	type recvState struct {
		nextSeq [n]int
		got     [n]int
	}
	states := make([]recvState, n)
	errs := make([]error, n)

	for me := 0; me < n; me++ {
		st := &states[me]
		mine := me
		cds[me].Register(9, func(from int, arg uint64, payload []byte) {
			seq := int(arg)
			if seq != st.nextSeq[from] {
				errs[mine] = fmt.Errorf("rank %d: from %d: seq %d, want %d (reordered)", mine, from, seq, st.nextSeq[from])
				return
			}
			st.nextSeq[from]++
			st.got[from]++
			wantLen := (seq * 37) % maxSize
			if len(payload) != wantLen {
				errs[mine] = fmt.Errorf("rank %d: from %d seq %d: %d bytes, want %d", mine, from, seq, len(payload), wantLen)
				return
			}
			for i, b := range payload {
				if b != pattern(from, mine, seq, i) {
					errs[mine] = fmt.Errorf("rank %d: from %d seq %d: byte %d corrupt", mine, from, seq, i)
					return
				}
			}
		})
	}

	var wg sync.WaitGroup
	for me := 0; me < n; me++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			c := cds[me]
			for seq := 0; seq < rounds; seq++ {
				size := (seq * 37) % maxSize
				for to := 0; to < n; to++ {
					if to == me {
						continue
					}
					p := make([]byte, size)
					for i := range p {
						p[i] = pattern(me, to, seq, i)
					}
					c.Send(to, 9, uint64(seq), p)
				}
				c.Poll()
			}
			// Drain until everyone's full stream has arrived.
			st := &states[me]
			for {
				done := true
				for from := 0; from < n; from++ {
					if from != me && st.got[from] < rounds {
						done = false
					}
				}
				if done || errs[me] != nil {
					return
				}
				c.Poll()
			}
		}(me)
	}
	wg.Wait()
	for me, err := range errs {
		if err != nil {
			t.Error(err)
		}
		for from := 0; from < n; from++ {
			if from != me && states[me].got[from] != rounds {
				t.Errorf("rank %d: received %d of %d messages from %d", me, states[me].got[from], rounds, from)
			}
		}
	}
}

// TestShmCounters pins the metering names the hierarchical conduit
// merges into its Counters map.
func TestShmCounters(t *testing.T) {
	cds := buildShmFleet(t, 2, minShmRingBytes, 1<<12)
	got := 0
	cds[1].Register(3, func(from int, arg uint64, payload []byte) { got++ })
	cds[0].Send(1, 3, 7, []byte("hello"))
	for got == 0 {
		cds[1].Poll()
	}
	c0, c1 := cds[0].Counters(), cds[1].Counters()
	if c0["shm_tx_msgs"] != 1 || c0["shm_tx_bytes"] == 0 {
		t.Errorf("sender counters = %v, want 1 tx msg with bytes", c0)
	}
	if c1["shm_rx_msgs"] != 1 || c1["shm_rx_bytes"] == 0 {
		t.Errorf("receiver counters = %v, want 1 rx msg with bytes", c1)
	}
}

// TestShmSegmentVisibility checks the whole point of the shm plane:
// bytes stored through one rank's segment view are immediately visible
// through every peer's mapping.
func TestShmSegmentVisibility(t *testing.T) {
	cds := buildShmFleet(t, 3, minShmRingBytes, 1<<12)
	seg := cds[1].Seg()
	copy(seg[64:], []byte("shared-page"))
	for _, reader := range []int{0, 2} {
		peer := cds[reader].PeerSeg(1)
		if string(peer[64:64+11]) != "shared-page" {
			t.Fatalf("rank %d sees %q through its mapping of rank 1's segment", reader, peer[64:64+11])
		}
	}
}
