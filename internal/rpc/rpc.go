// Package rpc is the serializable task layer under the runtime's
// asynchronous remote function invocation: a registry mapping function
// names to dense wire indices, and the fixed-layout encodings of the
// request / reply / done-ack messages that travel on the conduit's
// aggregation plane. This is what lets the paper's §III-G vocabulary —
// async, futures, finish — cross address spaces without a compiler:
// instead of shipping a Go closure (which does not serialize), callers
// register a named function once per process and ship its index plus
// POD-encoded arguments, exactly as real UPC++ ships a function pointer
// and a trivially-copyable argument tuple over GASNet.
//
// The package is deliberately transport- and runtime-free: the registry
// is generic over the handle type H (internal/core instantiates it with
// *core.Rank), and the codecs are pure functions over byte slices, so
// both halves are testable without a job. internal/core glues them to
// the conduit (see core.RegisterTask / AsyncTask / AsyncTaskFuture).
//
// Registration discipline is SPMD, like a GASNet handler table: every
// process of a job must register the same names in the same order
// before the job starts (package init time is the natural place), so
// that an index minted on one rank resolves to the same function on
// every other. Registering after tasks have started crossing the wire
// is a race; duplicate names panic.
package rpc

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Fn is a registered task body, generic over the runtime handle type:
// it runs on the target rank's goroutine with the target's handle, the
// calling rank, and the POD-encoded arguments (valid only for the
// duration of the call — copy to keep). The returned bytes travel back
// to the caller when a reply was requested (a future or a signal
// event); bodies invoked without one may return nil.
type Fn[H any] func(h H, from int, args []byte) []byte

// Task is the portable handle of a registered function: the value
// Register returns, safe to store in package variables and cheap to
// copy. Only its wire index crosses address spaces; the name stays
// local, for diagnostics. The zero Task is invalid and is rejected by
// every launch path.
type Task struct {
	idx1 uint16 // wire index + 1; 0 means invalid
	name string
}

// Valid reports whether t came from a Register call.
func (t Task) Valid() bool { return t.idx1 != 0 }

// Index returns the task's wire index.
func (t Task) Index() uint16 {
	if t.idx1 == 0 {
		panic("rpc: use of zero Task (not returned by Register)")
	}
	return t.idx1 - 1
}

// Name returns the registration name (empty for the zero Task).
func (t Task) Name() string { return t.name }

func (t Task) String() string {
	if !t.Valid() {
		return "task<invalid>"
	}
	return fmt.Sprintf("task %q (#%d)", t.name, t.Index())
}

// Registry maps registered functions to dense wire indices, in
// registration order. It is safe for concurrent use: registration
// normally completes before the job starts, but in-process jobs share
// one registry across all rank goroutines.
type Registry[H any] struct {
	mu    sync.RWMutex
	names map[string]uint16 // name -> index
	fns   []Fn[H]
	tags  []string
}

// NewRegistry returns an empty registry.
func NewRegistry[H any]() *Registry[H] {
	return &Registry[H]{names: make(map[string]uint16)}
}

// Register adds fn under name and returns its portable handle. Names
// must be unique and non-empty; registering twice panics (two bodies
// under one index would silently diverge across ranks). The index is
// the registration ordinal, so the SPMD discipline in the package
// comment is what keeps indices meaningful across address spaces.
func (r *Registry[H]) Register(name string, fn Fn[H]) Task {
	if name == "" {
		panic("rpc: Register with empty task name")
	}
	if fn == nil {
		panic(fmt.Sprintf("rpc: Register(%q) with nil function", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.names[name]; dup {
		panic(fmt.Sprintf("rpc: task %q registered twice", name))
	}
	if len(r.fns) >= 1<<16 {
		panic("rpc: task registry full (65536 tasks)")
	}
	idx := uint16(len(r.fns))
	r.names[name] = idx
	r.fns = append(r.fns, fn)
	r.tags = append(r.tags, name)
	return Task{idx1: idx + 1, name: name}
}

// Resolve returns the function and name registered at the given wire
// index, or an error naming the index and the registry size — the
// diagnostic a rank produces when its peer's registration sequence
// diverged from its own.
func (r *Registry[H]) Resolve(idx uint16) (Fn[H], string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if int(idx) >= len(r.fns) {
		return nil, "", fmt.Errorf(
			"rpc: no task registered at index %d (registry has %d; did every process register the same tasks in the same order?)",
			idx, len(r.fns))
	}
	return r.fns[idx], r.tags[idx], nil
}

// Len reports how many tasks are registered.
func (r *Registry[H]) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.fns)
}

// Names returns the registered names in index order.
func (r *Registry[H]) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.tags))
	copy(out, r.tags)
	return out
}

// ---- Wire encodings ----
//
// The three message kinds of the task protocol, each riding the
// conduit's aggregation plane as a registered-handler active message
// (so small RPCs coalesce with everything else bound for the same
// rank):
//
//	request:  [task u16][flags u8][callID u64][doneID u64][args...]
//	reply:    [callID u64][reply bytes...]
//	done-ack: [doneID u64]
//
// callID keys the caller's pending-reply table (futures and signal
// events); doneID keys the caller's finish-scope table — the executor
// sends the done-ack only when the task's whole subtree (tasks spawned
// by the task, and the aggregated operations it issued) has quiesced,
// which is what gives Finish its distributed semantics. A zero id
// means the corresponding half of the protocol is unused.

// FlagReply marks a request whose caller awaits the body's return
// bytes (a future) or a completion signal (an event): the executor
// must send a reply message when the body returns.
const FlagReply byte = 1 << 0

// ReqHeaderBytes is the fixed size of a request's prefix — also the
// per-launch protocol overhead the core's cost model charges on top of
// the encoded arguments.
const ReqHeaderBytes = 2 + 1 + 8 + 8

// EncodeRequest builds a request message.
func EncodeRequest(task uint16, flags byte, callID, doneID uint64, args []byte) []byte {
	p := make([]byte, ReqHeaderBytes+len(args))
	binary.LittleEndian.PutUint16(p[0:], task)
	p[2] = flags
	binary.LittleEndian.PutUint64(p[3:], callID)
	binary.LittleEndian.PutUint64(p[11:], doneID)
	copy(p[ReqHeaderBytes:], args)
	return p
}

// Request is a decoded task request.
type Request struct {
	Task   uint16
	Flags  byte
	CallID uint64
	DoneID uint64
	Args   []byte // aliases the decoded buffer; valid only as long as it is
}

// DecodeRequest parses a request message.
func DecodeRequest(p []byte) (Request, error) {
	if len(p) < ReqHeaderBytes {
		return Request{}, fmt.Errorf("rpc: truncated task request (%d bytes)", len(p))
	}
	return Request{
		Task:   binary.LittleEndian.Uint16(p[0:]),
		Flags:  p[2],
		CallID: binary.LittleEndian.Uint64(p[3:]),
		DoneID: binary.LittleEndian.Uint64(p[11:]),
		Args:   p[ReqHeaderBytes:],
	}, nil
}

// EncodeReply builds a reply message carrying the body's return bytes.
func EncodeReply(callID uint64, data []byte) []byte {
	p := make([]byte, 8+len(data))
	binary.LittleEndian.PutUint64(p, callID)
	copy(p[8:], data)
	return p
}

// DecodeReply parses a reply message; the returned data aliases p.
func DecodeReply(p []byte) (callID uint64, data []byte, err error) {
	if len(p) < 8 {
		return 0, nil, fmt.Errorf("rpc: truncated task reply (%d bytes)", len(p))
	}
	return binary.LittleEndian.Uint64(p), p[8:], nil
}

// EncodeDone builds a done-ack message.
func EncodeDone(doneID uint64) []byte {
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], doneID)
	return p[:]
}

// DecodeDone parses a done-ack message.
func DecodeDone(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("rpc: malformed done-ack (%d bytes)", len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}

// ---- Argument codec ----
//
// Task arguments are POD by convention (the same guarantee the shared
// segment enforces); these helpers cover the common case of packing
// u64 words — offsets, ranks, seeds, global-pointer halves — without
// each call site hand-rolling binary.LittleEndian.

// AppendU64 appends v to an argument buffer.
func AppendU64(b []byte, v uint64) []byte {
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], v)
	return append(b, w[:]...)
}

// U64 consumes one u64 from the front of an argument buffer, returning
// the value and the remainder. Short buffers panic: argument layout is
// part of a task's contract, and a mismatch is a program bug on par
// with a wrong function signature.
func U64(b []byte) (uint64, []byte) {
	if len(b) < 8 {
		panic(fmt.Sprintf("rpc: argument buffer underflow (want 8 bytes, have %d)", len(b)))
	}
	return binary.LittleEndian.Uint64(b), b[8:]
}

// U64s packs the given words as an argument buffer.
func U64s(vs ...uint64) []byte {
	b := make([]byte, 0, 8*len(vs))
	for _, v := range vs {
		b = AppendU64(b, v)
	}
	return b
}
