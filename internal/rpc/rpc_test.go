package rpc

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryRoundTrip(t *testing.T) {
	r := NewRegistry[int]()
	a := r.Register("a", func(h, from int, args []byte) []byte { return []byte{1} })
	b := r.Register("b", func(h, from int, args []byte) []byte { return []byte{2} })
	if !a.Valid() || !b.Valid() {
		t.Fatal("registered tasks should be valid")
	}
	if a.Index() != 0 || b.Index() != 1 {
		t.Fatalf("indices = %d, %d; want 0, 1", a.Index(), b.Index())
	}
	fn, name, err := r.Resolve(b.Index())
	if err != nil || name != "b" {
		t.Fatalf("Resolve(1) = %q, %v", name, err)
	}
	if got := fn(0, 0, nil); !bytes.Equal(got, []byte{2}) {
		t.Fatalf("resolved wrong function: %v", got)
	}
	if got := r.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Names = %v", got)
	}
}

func TestResolveUnknownIndex(t *testing.T) {
	r := NewRegistry[int]()
	r.Register("only", func(h, from int, args []byte) []byte { return nil })
	_, _, err := r.Resolve(7)
	if err == nil {
		t.Fatal("Resolve of unregistered index should error")
	}
	if !strings.Contains(err.Error(), "index 7") || !strings.Contains(err.Error(), "same order") {
		t.Fatalf("error should name the index and the registration discipline: %v", err)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry[int]()
	r.Register("dup", func(h, from int, args []byte) []byte { return nil })
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("duplicate registration should panic")
		}
		if !strings.Contains(p.(string), "dup") {
			t.Fatalf("panic should name the task: %v", p)
		}
	}()
	r.Register("dup", func(h, from int, args []byte) []byte { return nil })
}

func TestZeroTaskPanics(t *testing.T) {
	var z Task
	if z.Valid() {
		t.Fatal("zero Task should be invalid")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Index of zero Task should panic")
		}
	}()
	z.Index()
}

func TestRequestRoundTrip(t *testing.T) {
	args := []byte("hello args")
	p := EncodeRequest(42, FlagReply, 7, 9, args)
	req, err := DecodeRequest(p)
	if err != nil {
		t.Fatal(err)
	}
	if req.Task != 42 || req.Flags != FlagReply || req.CallID != 7 || req.DoneID != 9 {
		t.Fatalf("decoded header = %+v", req)
	}
	if !bytes.Equal(req.Args, args) {
		t.Fatalf("args = %q", req.Args)
	}
	if _, err := DecodeRequest(p[:10]); err == nil {
		t.Fatal("truncated request should error")
	}
}

func TestReplyAndDoneRoundTrip(t *testing.T) {
	callID, data, err := DecodeReply(EncodeReply(3, []byte("out")))
	if err != nil || callID != 3 || !bytes.Equal(data, []byte("out")) {
		t.Fatalf("reply round trip = %d, %q, %v", callID, data, err)
	}
	// Zero-length replies are legal (a task with no return value).
	if _, data, err = DecodeReply(EncodeReply(4, nil)); err != nil || len(data) != 0 {
		t.Fatalf("empty reply round trip = %q, %v", data, err)
	}
	if _, _, err := DecodeReply([]byte{1, 2}); err == nil {
		t.Fatal("truncated reply should error")
	}
	id, err := DecodeDone(EncodeDone(11))
	if err != nil || id != 11 {
		t.Fatalf("done round trip = %d, %v", id, err)
	}
	if _, err := DecodeDone([]byte{1}); err == nil {
		t.Fatal("malformed done-ack should error")
	}
}

func TestArgCodec(t *testing.T) {
	b := U64s(1, 2, 3)
	v, rest := U64(b)
	if v != 1 {
		t.Fatalf("first word = %d", v)
	}
	v, rest = U64(rest)
	if v != 2 {
		t.Fatalf("second word = %d", v)
	}
	v, rest = U64(rest)
	if v != 3 || len(rest) != 0 {
		t.Fatalf("third word = %d, rest %d bytes", v, len(rest))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("underflow should panic")
		}
	}()
	U64(rest)
}
