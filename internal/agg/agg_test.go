package agg

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// memApplier records applied ops for assertions.
type memApplier struct {
	log []string
	mem map[uint64][]byte
}

func newMemApplier() *memApplier { return &memApplier{mem: map[uint64][]byte{}} }

func (m *memApplier) Put(off uint64, data []byte) {
	m.mem[off] = append([]byte(nil), data...)
	m.log = append(m.log, fmt.Sprintf("put %d %d", off, len(data)))
}

func (m *memApplier) Xor64(off uint64, val uint64) {
	m.log = append(m.log, fmt.Sprintf("xor %d %x", off, val))
}

func (m *memApplier) AM(id uint16, payload []byte) {
	m.log = append(m.log, fmt.Sprintf("am %d %q", id, payload))
}

// capture is a Flusher that applies every batch to an Applier
// immediately and records batch shapes; acks are delivered on demand.
type capture struct {
	ap      Applier
	batches []int // ops per batch
	bytes   []int
	acks    []func()
}

func (c *capture) flush(t *testing.T) Flusher {
	return func(dst int, batch []byte, ops int, done func()) {
		n, err := Apply(batch, c.ap)
		if err != nil {
			t.Fatalf("apply: %v", err)
		}
		if n != ops {
			t.Fatalf("batch declared %d ops, decoded %d", ops, n)
		}
		c.batches = append(c.batches, ops)
		c.bytes = append(c.bytes, len(batch))
		c.acks = append(c.acks, done)
	}
}

func (c *capture) ackAll() {
	for _, d := range c.acks {
		d()
	}
	c.acks = nil
}

func TestRoundTripAndOrder(t *testing.T) {
	ap := newMemApplier()
	c := &capture{ap: ap}
	a := New(2, Config{MaxOps: 100}, c.flush(t))

	a.Put(1, 8, []byte("hello"), nil)
	a.Xor64(1, 16, 0xABCD, nil)
	a.Send(1, 7, []byte("ping"), nil)
	if got := a.Pending(); got != 3 {
		t.Fatalf("Pending = %d, want 3 buffered", got)
	}
	a.Flush(1)
	c.ackAll()

	want := []string{"put 8 5", "xor 16 abcd", `am 7 "ping"`}
	if len(ap.log) != len(want) {
		t.Fatalf("applied %v, want %v", ap.log, want)
	}
	for i := range want {
		if ap.log[i] != want[i] {
			t.Errorf("op %d = %q, want %q (order must be preserved)", i, ap.log[i], want[i])
		}
	}
	if !bytes.Equal(ap.mem[8], []byte("hello")) {
		t.Errorf("put payload corrupted: %q", ap.mem[8])
	}
	if a.Pending() != 0 {
		t.Errorf("Pending = %d after ack, want 0", a.Pending())
	}
}

func TestMaxOpsFlush(t *testing.T) {
	c := &capture{ap: newMemApplier()}
	a := New(1, Config{MaxOps: 4}, c.flush(t))
	for i := 0; i < 10; i++ {
		a.Xor64(0, uint64(i*8), 1, nil)
	}
	if got := c.batches; len(got) != 2 || got[0] != 4 || got[1] != 4 {
		t.Fatalf("size-triggered batches = %v, want [4 4]", got)
	}
	if a.Buffered() != 2 {
		t.Fatalf("Buffered = %d, want 2 left open", a.Buffered())
	}
	a.FlushAll()
	if got := c.batches; len(got) != 3 || got[2] != 2 {
		t.Fatalf("after FlushAll batches = %v, want trailing 2", got)
	}
}

func TestMaxBytesFlush(t *testing.T) {
	c := &capture{ap: newMemApplier()}
	a := New(1, Config{MaxOps: 1000, MaxBytes: 64}, c.flush(t))
	// Each put encodes to 13+20 = 33 bytes: the second overflows 64 and
	// must flush the first before buffering.
	data := make([]byte, 20)
	a.Put(0, 0, data, nil)
	a.Put(0, 64, data, nil)
	if len(c.batches) != 1 || c.batches[0] != 1 {
		t.Fatalf("byte-triggered batches = %v, want [1]", c.batches)
	}
	// An op bigger than MaxBytes still ships, alone.
	big := make([]byte, 200)
	a.Put(0, 128, big, nil)
	if len(c.batches) != 3 {
		t.Fatalf("oversized op: batches = %v, want 3 total", c.batches)
	}
	if c.batches[2] != 1 || c.bytes[2] != 13+200 {
		t.Fatalf("oversized op must ship alone: ops=%d bytes=%d", c.batches[2], c.bytes[2])
	}
}

func TestAgeFlushOnTick(t *testing.T) {
	c := &capture{ap: newMemApplier()}
	a := New(2, Config{MaxOps: 100, MaxAge: time.Millisecond}, c.flush(t))
	now := time.Unix(0, 0)
	a.now = func() time.Time { return now }

	a.Xor64(0, 0, 1, nil)
	now = now.Add(500 * time.Microsecond)
	a.Xor64(1, 0, 1, nil)
	if n := a.Tick(); n != 0 {
		t.Fatalf("Tick before MaxAge flushed %d batches", n)
	}
	now = now.Add(600 * time.Microsecond) // dest 0 is now 1.1ms old, dest 1 only 0.6ms
	if n := a.Tick(); n != 1 {
		t.Fatalf("Tick flushed %d batches, want only the aged one", n)
	}
	now = now.Add(time.Millisecond)
	if n := a.Tick(); n != 1 {
		t.Fatalf("second Tick flushed %d batches, want 1", n)
	}
}

func TestCompletionCallbacks(t *testing.T) {
	c := &capture{ap: newMemApplier()}
	a := New(1, Config{MaxOps: 2}, c.flush(t))
	fired := 0
	a.Put(0, 0, []byte{1}, func() { fired++ })
	a.Xor64(0, 8, 1, func() { fired++ })
	if fired != 0 {
		t.Fatal("done fired before ack")
	}
	if a.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2 in flight", a.Pending())
	}
	c.ackAll()
	if fired != 2 {
		t.Fatalf("done fired %d times, want 2", fired)
	}
	if a.Pending() != 0 {
		t.Fatalf("Pending = %d after ack, want 0", a.Pending())
	}
}

func TestCounters(t *testing.T) {
	c := &capture{ap: newMemApplier()}
	a := New(1, Config{MaxOps: 4}, c.flush(t))
	for i := 0; i < 8; i++ {
		a.Xor64(0, 0, 1, nil)
	}
	got := a.Counters()
	if got["agg_batches"] != 2 || got["agg_ops"] != 8 || got["agg_ops_per_batch"] != 4 {
		t.Errorf("counters = %v", got)
	}
	// 3 absorbed ops per batch, 52 bytes of frame overhead each.
	if got["agg_saved_bytes"] != 2*3*frameOverhead {
		t.Errorf("agg_saved_bytes = %v, want %d", got["agg_saved_bytes"], 2*3*frameOverhead)
	}
}

func TestApplyRejectsCorruptBatches(t *testing.T) {
	ap := newMemApplier()
	for _, bad := range [][]byte{
		{99},          // unknown kind
		{opPut, 0, 0}, // truncated put header
		{opPut, 0, 0, 0, 0, 0, 0, 0, 0, 5, 0, 0, 0}, // put data missing
		{opXor, 1, 2, 3},              // truncated xor
		{opAM, 1},                     // truncated am header
		{opAM, 1, 0, 4, 0, 0, 0, 'x'}, // am payload short
	} {
		if _, err := Apply(bad, ap); err == nil {
			t.Errorf("Apply(%v) accepted a corrupt batch", bad)
		}
	}
	if _, err := Apply(nil, ap); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}
