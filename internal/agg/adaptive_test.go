package agg

import (
	"sync"
	"testing"
	"time"
)

// sink is a Flusher that discards batches and acks immediately — the
// controller tests care about flush shapes, not applied state.
func sink() Flusher {
	return func(dst int, batch []byte, ops int, done func()) { done() }
}

// trickle drives one op into dst and immediately ages it out via an
// injected clock: with the budget above 1 every flush the controller
// sees is age-triggered with occupancy 1 (at the floor the op
// size-flushes at issue instead, which the raise's rate gate
// recognizes as trickle by its inter-flush spacing).
func trickle(a *Aggregator, now *time.Time, dst, n int) {
	for i := 0; i < n; i++ {
		a.Xor64(dst, uint64(i*8), 1, nil)
		// The age bound never exceeds 8x the configured MaxAge, so
		// advancing by 16x always crosses it.
		*now = now.Add(DefaultMaxAge * 16)
		a.Tick()
	}
}

func TestAdaptiveBulkGrowsBudgetToCap(t *testing.T) {
	a := New(2, Config{Adaptive: true}, sink())
	mo0, age0 := a.Tuning(1)
	if mo0 != DefaultMaxOps || age0 != DefaultMaxAge {
		t.Fatalf("initial tuning = (%d, %v), want configured (%d, %v)", mo0, age0, DefaultMaxOps, DefaultMaxAge)
	}
	// Saturating load: every flush is size-triggered, so each window
	// raises the budget additively until it pins at the cap.
	for i := 0; a.maxOpsFor(1) < adaptMaxOps && i < 3_000_000; i++ {
		a.Xor64(1, uint64(i*8), 1, nil)
	}
	mo, age := a.Tuning(1)
	if mo != adaptMaxOps {
		t.Fatalf("bulk load converged to MaxOps %d, want cap %d", mo, adaptMaxOps)
	}
	if age <= DefaultMaxAge {
		t.Errorf("bulk load left MaxAge at %v, want relaxed above %v", age, DefaultMaxAge)
	}
	if age > DefaultMaxAge*8 {
		t.Errorf("MaxAge %v exceeds the 8x bound", age)
	}
	if c := a.Counters(); c["agg_adaptive_raises"] == 0 || c["agg_adaptive_cuts"] != 0 {
		t.Errorf("counters = raises %v cuts %v, want raises>0 cuts==0",
			c["agg_adaptive_raises"], c["agg_adaptive_cuts"])
	}
	// The untouched destination keeps its seed tuning: control is
	// per-destination.
	if mo, _ := a.Tuning(0); mo != DefaultMaxOps {
		t.Errorf("idle destination tuning drifted to %d", mo)
	}
}

func TestAdaptiveTrickleShrinksToOne(t *testing.T) {
	a := New(1, Config{Adaptive: true}, sink())
	now := time.Unix(0, 0)
	a.now = func() time.Time { return now }

	// Age-triggered flushes at occupancy 1 halve the budget per window
	// (64 -> 32 -> ... -> 1 in 6 windows). At the floor each single op
	// fills the 1-op budget and reads as a size flush, but the raise's
	// rate gate sees the window's flushes spaced far beyond the age
	// bound and holds: the floor is sticky under a steady trickle —
	// no latency-spiking probe sawtooth.
	reached1 := false
	probeCeil := 0
	for i := 0; i < adaptWindow*40; i++ {
		trickle(a, &now, 0, 1)
		mo, _ := a.Tuning(0)
		if mo == 1 {
			reached1 = true
		}
		if reached1 && mo > probeCeil {
			probeCeil = mo
		}
	}
	if !reached1 {
		mo, _ := a.Tuning(0)
		t.Fatalf("trickle never converged to MaxOps 1 (at %d)", mo)
	}
	if probeCeil != 1 {
		t.Errorf("budget rebounded to %d from the floor; the rate gate should hold a steady trickle at 1", probeCeil)
	}
	if _, age := a.Tuning(0); age >= DefaultMaxAge {
		t.Errorf("trickle MaxAge = %v, want tightened below the configured %v", age, DefaultMaxAge)
	}
	if c := a.Counters(); c["agg_adaptive_cuts"] == 0 {
		t.Errorf("no cuts recorded for a pure trickle: %v", c)
	}
}

func TestAdaptiveBurstyReconverges(t *testing.T) {
	a := New(1, Config{Adaptive: true}, sink())
	now := time.Unix(0, 0)
	a.now = func() time.Time { return now }

	// Phase 1: trickle collapses the budget (stop at the moment it
	// touches the floor; the sawtooth would otherwise probe back up).
	for i := 0; ; i++ {
		if mo, _ := a.Tuning(0); mo == 1 {
			break
		}
		if i > adaptWindow*100 {
			mo, _ := a.Tuning(0)
			t.Fatalf("trickle phase never reached MaxOps 1 (at %d)", mo)
		}
		trickle(a, &now, 0, 1)
	}
	// Phase 2: sustained bulk re-grows it past the configured seed.
	for i := 0; a.maxOpsFor(0) < DefaultMaxOps*2 && i < 3_000_000; i++ {
		a.Xor64(0, uint64(i*8), 1, nil)
	}
	if mo, _ := a.Tuning(0); mo < DefaultMaxOps*2 {
		t.Fatalf("bulk burst re-converged only to MaxOps %d, want >= %d", mo, DefaultMaxOps*2)
	}
	c := a.Counters()
	if c["agg_adaptive_raises"] == 0 || c["agg_adaptive_cuts"] == 0 {
		t.Errorf("bursty load should record both raises and cuts: %v", c)
	}
}

func TestAdaptiveMixedWindowHoldsSteady(t *testing.T) {
	a := New(1, Config{Adaptive: true}, sink())
	now := time.Unix(0, 0)
	a.now = func() time.Time { return now }

	// Alternate size- and age-triggered flushes: neither reaches the
	// 3/4 dominance bound, so windows classify as mixed and the knobs
	// hold.
	for w := 0; w < 4; w++ {
		for i := 0; i < adaptWindow/2; i++ {
			for j := 0; j < DefaultMaxOps; j++ { // one full batch -> size flush
				a.Xor64(0, uint64(j*8), 1, nil)
			}
			trickle(a, &now, 0, 1) // one age flush
		}
	}
	mo, age := a.Tuning(0)
	if mo != DefaultMaxOps || age != DefaultMaxAge {
		t.Errorf("mixed load moved tuning to (%d, %v), want seed (%d, %v)",
			mo, age, DefaultMaxOps, DefaultMaxAge)
	}
}

func TestAdaptiveFullAgeFlushKeepsBudget(t *testing.T) {
	a := New(1, Config{Adaptive: true}, sink())
	now := time.Unix(0, 0)
	a.now = func() time.Time { return now }

	// Age flushes at high occupancy (budget-1 ops buffered when the
	// age bound hits) mean the budget fits the load and only the age
	// bound is slightly tight: MaxOps must hold while MaxAge tightens.
	for i := 0; i < adaptWindow*2; i++ {
		for j := 0; j < DefaultMaxOps-1; j++ {
			a.Xor64(0, uint64(j*8), 1, nil)
		}
		now = now.Add(DefaultMaxAge * 16)
		if a.Tick() != 1 {
			t.Fatal("full batch did not age-flush")
		}
	}
	mo, age := a.Tuning(0)
	if mo != DefaultMaxOps {
		t.Errorf("high-occupancy age flushes cut MaxOps to %d, want %d held", mo, DefaultMaxOps)
	}
	if age >= DefaultMaxAge {
		t.Errorf("MaxAge = %v, want tightened below %v", age, DefaultMaxAge)
	}
}

// TestAdaptiveConcurrentReaders is the race-mode soak: the SPMD
// goroutine drives ops, ticks and flushes while observers pull
// Counters and Tuning live, the way the debug endpoint does. Run with
// -race this checks every knob and counter crossing goroutines is an
// atomic.
func TestAdaptiveConcurrentReaders(t *testing.T) {
	a := New(4, Config{Adaptive: true, MaxAge: 50 * time.Microsecond}, sink())
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = a.Counters()
				for dst := 0; dst < 4; dst++ {
					_, _ = a.Tuning(dst)
				}
			}
		}()
	}
	for i := 0; i < 200_000; i++ {
		a.Xor64(i%4, uint64(i*8), 1, nil)
		if i%97 == 0 {
			a.Tick()
		}
		if i%5001 == 0 {
			a.FlushAll()
		}
	}
	close(done)
	wg.Wait()
	a.FlushAll() // agg_ops counts shipped ops; drain the open batches
	if got := a.Counters()["agg_ops"]; got != 200_000 {
		t.Fatalf("agg_ops = %v, want 200000", got)
	}
}
