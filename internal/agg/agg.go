// Package agg implements per-destination message aggregation — the
// software coalescing layer that makes fine-grained remote operations
// viable over a wire conduit. The paper's §IV runtime (and every PGAS
// runtime since) pays a full active-message round trip per remote
// access; when the conduit is a framed-TCP wire, an 8-byte put costs
// two frames and two header parses. The canonical answer is to buffer
// small operations per destination rank and ship them as one batch
// frame, trading a bounded amount of latency for an order of magnitude
// fewer messages.
//
// The Aggregator owns the buffering and flush policy only; it is
// deliberately transport-free. Callers supply a Flusher that ships one
// encoded batch to a rank and invokes a completion callback when the
// target has applied every operation in it; the receiving side decodes
// batches with Apply against an Applier. internal/core glues both ends
// to the gasnet conduit (see core.AggPut / AggXor64 / AggSend) and
// keeps a no-op fast path on the in-process backend, where a remote
// access is already a direct segment load/store.
//
// Flush policy: a destination's batch is shipped when it reaches
// Config.MaxOps operations or Config.MaxBytes encoded bytes, when the
// oldest buffered operation exceeds Config.MaxAge at a Tick (the
// progress-loop hook), or on an explicit Flush/FlushAll (barriers and
// waits flush). Operations to one destination are applied in the order
// they were buffered; no order holds across destinations, and none
// holds against unaggregated operations unless the caller flushes
// first. With Config.Adaptive the MaxOps/MaxAge thresholds become
// per-destination operating points steered by an AIMD controller fed
// from the flush-reason mix (see Config.Adaptive and the controller
// law at adaptWindow).
//
// An Aggregator is confined to its rank's SPMD goroutine, like the
// conduit it feeds; it performs no internal locking.
package agg

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"upcxx/internal/frames"
	"upcxx/internal/obs"
)

// Batch op kinds. A batch payload is a concatenation of operations,
// each a one-byte kind followed by its fixed header and inline data:
//
//	put: [kind][off u64][len u32][data]
//	xor: [kind][off u64][val u64]
//	am:  [kind][id u16][len u32][payload]
const (
	opPut byte = 1
	opXor byte = 2
	opAM  byte = 3
)

// frameOverhead estimates the wire bytes an unbatched operation pays
// beyond its encoded body: one 26-byte transport frame header for the
// request and one for its reply. The bytes-saved counter charges this
// for every operation a batch absorbs past its first.
const frameOverhead = 52

// Default flush thresholds. MaxOps is the primary knob: batches of ~64
// small ops amortize the per-frame cost well below the per-op cost
// while keeping added latency to one MaxAge in the worst case.
const (
	DefaultMaxOps   = 64
	DefaultMaxBytes = 32 << 10
	DefaultMaxAge   = 200 * time.Microsecond
)

// Config sets the flush thresholds. Zero fields take the defaults;
// MaxOps = 1 effectively disables coalescing (every operation ships as
// its own single-op batch), which is the "aggregation off" baseline the
// dhtbench experiment measures against.
type Config struct {
	// MaxOps flushes a destination once this many ops are buffered.
	MaxOps int
	// MaxBytes flushes a destination once its encoded batch reaches
	// this size; it also bounds the batch payload handed to the
	// Flusher (a single oversized op still ships alone, see Put).
	MaxBytes int
	// MaxAge flushes a destination at the next Tick once its oldest
	// buffered op has waited this long.
	MaxAge time.Duration
	// Adaptive replaces the static MaxOps/MaxAge thresholds with a
	// per-destination AIMD controller seeded from them: destinations
	// whose batches fill before they age out grow their op budget
	// (additively, toward adaptMaxOps) and relax their age bound;
	// destinations whose batches age out near-empty shed budget
	// (multiplicatively, toward 1 op) and tighten it — so bulk flows
	// converge to deep batches and latency-sensitive trickles to
	// immediate sends, per destination, with no retuning by the
	// caller. MaxBytes stays a static bound either way. The realized
	// per-destination knobs surface through Tuning and the
	// agg_adaptive_* / agg_maxops_avg / agg_maxage_us_avg counters.
	Adaptive bool
}

func (c Config) withDefaults() Config {
	if c.MaxOps <= 0 {
		c.MaxOps = DefaultMaxOps
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = DefaultMaxBytes
	}
	if c.MaxAge <= 0 {
		c.MaxAge = DefaultMaxAge
	}
	return c
}

// Flusher ships one encoded batch of ops operations to rank dst and
// invokes done exactly once when the destination has applied every
// operation in the batch (on the wire: when the batch ack returns).
// The batch slice is owned by the Flusher from the call on; it comes
// from the frames pool, and the Flusher (or the layer it hands the
// batch to — the wire conduit's SendBatch recycles after the writev)
// must route it to frames.Put once the bytes are on the wire.
type Flusher func(dst int, batch []byte, ops int, done func())

// Adaptive controller law. The controller watches a window of
// adaptWindow threshold-triggered flushes per destination and
// classifies the load by which trigger dominated (explicit and barrier
// flushes say nothing about load shape and are not counted):
//
//   - size-dominated (≥3/4 of the window hit MaxOps/MaxBytes): bulk
//     flow. Additive increase — the op budget grows by adaptStep up to
//     adaptMaxOps, and the age bound relaxes ×5/4 (capped at 8× the
//     configured MaxAge) so deep batches are not cut short. The raise
//     is rate-gated: at a small budget a trickle also reads as size
//     flushes (a single op fills a 1-op batch), so the controller
//     raises only when the window's flushes arrived faster than the
//     age bound on average — if ops trickle in slower than MaxAge, a
//     deeper batch cannot coalesce them and would only park each op
//     for the full age bound again. The gate is what lets the budget
//     *stay* at the floor under a steady trickle instead of probing
//     a latency-spiking sawtooth.
//   - age-dominated (≥3/4 hit MaxAge): trickle. Multiplicative
//     decrease — the op budget halves toward 1 *if* batches were also
//     running near-empty (occupancy under half the budget; an age
//     flush of a nearly full batch means the budget is fine and only
//     the age bound is slightly tight), and the age bound tightens
//     ×4/5 (floored at 1/8 of the configured MaxAge) so a trickle's
//     ops stop paying the full worst-case latency.
//   - mixed: no change.
//
// The window then resets. AIMD gives the usual sawtooth convergence:
// sustained bulk load climbs to deep batches, a shift to latency-
// sensitive traffic collapses the budget within a few windows.
const (
	adaptWindow = 16
	adaptStep   = 8
	adaptMaxOps = 1024
)

// destCtl is one destination's adaptive controller: the realized
// knobs, plus the flush-classification window. The knobs are atomics
// because Counters and Tuning read them from other goroutines (the
// debug endpoint, tests) while the SPMD goroutine retunes; the window
// fields are touched only on the flush path and need no
// synchronization.
type destCtl struct {
	maxOps   atomic.Int64
	maxAge   atomic.Int64 // nanoseconds
	sizeFl   int          // size-triggered flushes in the current window
	ageFl    int          // age-triggered flushes in the current window
	opsSum   int          // total ops across the window's flushes
	winStart time.Time    // when the current window's first flush landed
}

// Applier executes decoded batch operations against the receiving
// rank's state: puts and xors against its registered segment, AMs
// against its handler table. Handlers must not block.
type Applier interface {
	Put(off uint64, data []byte)
	Xor64(off uint64, val uint64)
	AM(id uint16, payload []byte)
}

// destBuf is one destination rank's open batch.
type destBuf struct {
	buf    []byte
	ops    int
	dones  []func()
	oldest time.Time // when the oldest buffered op was added
}

// Aggregator buffers small remote operations into per-destination
// batches. See the package comment for the flush policy and the
// threading discipline.
type Aggregator struct {
	cfg      Config
	flush    Flusher
	bufs     []destBuf
	ctls     []destCtl // per-destination controllers; nil unless cfg.Adaptive
	buffered int       // ops across all open batches (so the empty case is O(1))
	inflight int       // ops shipped but not yet acknowledged

	now func() time.Time // injectable clock for tests

	// Observability (SetObs): the rank's span ring (nil while tracing
	// is off) and a flush-size histogram.
	ring       *obs.Ring
	flushBytes *obs.Histogram

	// Counters (see Counters for the exported names). Atomics: the
	// debug endpoint pulls them live from another goroutine while the
	// SPMD goroutine flushes.
	batches    atomic.Int64
	opsTotal   atomic.Int64
	batchBytes atomic.Int64
	savedBytes atomic.Int64
	// byReason counts flushes per trigger, indexed by the obs.Flush*
	// reason codes.
	byReason [obs.FlushBarrier + 1]atomic.Int64
	// Adaptive-controller decisions across all destinations.
	raises atomic.Int64
	cuts   atomic.Int64
}

// New builds an aggregator over ranks destinations shipping through
// flush.
func New(ranks int, cfg Config, flush Flusher) *Aggregator {
	a := &Aggregator{
		cfg:   cfg.withDefaults(),
		flush: flush,
		bufs:  make([]destBuf, ranks),
		now:   time.Now,
	}
	if a.cfg.Adaptive {
		a.ctls = make([]destCtl, ranks)
		for i := range a.ctls {
			a.ctls[i].maxOps.Store(int64(a.cfg.MaxOps))
			a.ctls[i].maxAge.Store(int64(a.cfg.MaxAge))
		}
	}
	return a
}

// maxOpsFor is the realized op budget for dst: the controller's when
// adaptive, the configured threshold otherwise.
func (a *Aggregator) maxOpsFor(dst int) int {
	if a.ctls == nil {
		return a.cfg.MaxOps
	}
	return int(a.ctls[dst].maxOps.Load())
}

// maxAgeFor is the realized age bound for dst.
func (a *Aggregator) maxAgeFor(dst int) time.Duration {
	if a.ctls == nil {
		return a.cfg.MaxAge
	}
	return time.Duration(a.ctls[dst].maxAge.Load())
}

// Tuning reports the realized flush knobs for dst — the controller's
// current operating point when adaptive, the static configuration
// otherwise. Safe to call from any goroutine.
func (a *Aggregator) Tuning(dst int) (maxOps int, maxAge time.Duration) {
	return a.maxOpsFor(dst), a.maxAgeFor(dst)
}

// SetObs attaches the aggregator to the observability plane: the
// owning rank's span ring (may be nil — tracing disabled) and the
// flush-size histogram registered under the rank's label.
func (a *Aggregator) SetObs(ring *obs.Ring, rank int) {
	a.ring = ring
	a.flushBytes = obs.Reg().NewHistogram("upcxx_agg_flush_bytes", rank)
}

// room prepares dst's batch for an op encoding to need bytes: if the
// open batch would overflow MaxBytes it is flushed first, so a batch
// handed to the Flusher only exceeds MaxBytes when a single op does.
func (a *Aggregator) room(dst, need int) *destBuf {
	b := &a.bufs[dst]
	if b.ops > 0 && len(b.buf)+need > a.cfg.MaxBytes {
		a.flushReason(dst, obs.FlushMaxBytes)
	}
	if b.buf == nil {
		// Pooled encoder buffer, sized so the common batch never
		// regrows (MaxBytes is its flush bound); a single oversized op
		// gets an exact-size buffer instead of append-doubling into it.
		n := a.cfg.MaxBytes
		if need > n {
			n = need
		}
		b.buf = frames.Get(n)[:0]
	}
	return b
}

// noteOp finishes buffering one op: completion bookkeeping, then the
// size-based flush checks.
func (a *Aggregator) noteOp(dst int, b *destBuf, done func()) {
	if b.ops == 0 {
		b.oldest = a.now()
	}
	b.ops++
	a.buffered++
	b.dones = append(b.dones, done)
	a.ring.Instant(obs.KAggOp, int32(dst), uint32(len(b.buf)), 0)
	if b.ops >= a.maxOpsFor(dst) {
		a.flushReason(dst, obs.FlushMaxOps)
	} else if len(b.buf) >= a.cfg.MaxBytes {
		a.flushReason(dst, obs.FlushMaxBytes)
	}
}

func le64(buf []byte, v uint64) []byte {
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], v)
	return append(buf, w[:]...)
}

func le32(buf []byte, v uint32) []byte {
	var w [4]byte
	binary.LittleEndian.PutUint32(w[:], v)
	return append(buf, w[:]...)
}

// Put buffers a write of data into dst's segment at off; done (may be
// nil) runs when the destination has applied it. data is copied.
func (a *Aggregator) Put(dst int, off uint64, data []byte, done func()) {
	b := a.room(dst, 13+len(data))
	b.buf = append(b.buf, opPut)
	b.buf = le64(b.buf, off)
	b.buf = le32(b.buf, uint32(len(data)))
	b.buf = append(b.buf, data...)
	a.noteOp(dst, b, done)
}

// Xor64 buffers an atomic xor of val into the word at off in dst's
// segment. Unlike the conduit's blocking Xor64 the updated value does
// not travel back; aggregated xors are fire-and-forget updates.
func (a *Aggregator) Xor64(dst int, off uint64, val uint64, done func()) {
	b := a.room(dst, 17)
	b.buf = append(b.buf, opXor)
	b.buf = le64(b.buf, off)
	b.buf = le64(b.buf, val)
	a.noteOp(dst, b, done)
}

// Send buffers a registered-handler active message for dst; the
// target's Applier dispatches it to handler id with the payload (which
// is copied here).
func (a *Aggregator) Send(dst int, id uint16, payload []byte, done func()) {
	b := a.room(dst, 7+len(payload))
	b.buf = append(b.buf, opAM)
	b.buf = append(b.buf, byte(id), byte(id>>8))
	b.buf = le32(b.buf, uint32(len(payload)))
	b.buf = append(b.buf, payload...)
	a.noteOp(dst, b, done)
}

// Flush ships dst's open batch, if any.
func (a *Aggregator) Flush(dst int) { a.flushReason(dst, obs.FlushExplicit) }

// flushReason ships dst's open batch, recording why it shipped.
func (a *Aggregator) flushReason(dst int, reason uint64) {
	b := &a.bufs[dst]
	if b.ops == 0 {
		return
	}
	batch, ops, dones := b.buf, b.ops, b.dones
	*b = destBuf{}

	a.buffered -= ops
	a.inflight += ops
	a.batches.Add(1)
	a.opsTotal.Add(int64(ops))
	a.batchBytes.Add(int64(len(batch)))
	a.savedBytes.Add(int64(ops-1) * frameOverhead)
	if reason < uint64(len(a.byReason)) {
		a.byReason[reason].Add(1)
	}
	a.ring.Instant(obs.KAggFlush, int32(dst), uint32(len(batch)), reason)
	a.flushBytes.Observe(int64(len(batch)))
	if a.ctls != nil {
		a.adapt(dst, reason, ops)
	}

	a.flush(dst, batch, ops, func() {
		a.inflight -= ops
		for _, d := range dones {
			if d != nil {
				d()
			}
		}
	})
}

// adapt feeds one threshold-triggered flush into dst's controller and
// retunes the knobs when the classification window fills. See the law
// above the adaptWindow constants.
func (a *Aggregator) adapt(dst int, reason uint64, ops int) {
	c := &a.ctls[dst]
	switch reason {
	case obs.FlushMaxOps, obs.FlushMaxBytes:
		c.sizeFl++
	case obs.FlushMaxAge:
		c.ageFl++
	default:
		// Explicit and barrier flushes are caller-driven; they carry
		// no signal about whether the thresholds fit the load.
		return
	}
	if c.sizeFl+c.ageFl == 1 {
		c.winStart = a.now()
	}
	c.opsSum += ops
	n := c.sizeFl + c.ageFl
	if n < adaptWindow {
		return
	}
	const dominant = adaptWindow * 3 / 4
	mo := c.maxOps.Load()
	ma := c.maxAge.Load()
	switch {
	case c.sizeFl >= dominant:
		// Rate gate (see the law above): only raise when this window's
		// flushes averaged less than one age bound apart — flushes
		// spaced wider are a trickle wearing a too-small budget, and a
		// deeper batch would park ops without coalescing anything.
		if a.now().Sub(c.winStart) >= time.Duration(ma)*adaptWindow {
			break
		}
		mo = min(adaptMaxOps, mo+adaptStep)
		ma = min(int64(a.cfg.MaxAge)*8, ma*5/4)
		a.raises.Add(1)
	case c.ageFl >= dominant:
		if int64(c.opsSum/n) <= mo/2 {
			mo = max(1, mo/2)
		}
		ma = max(int64(a.cfg.MaxAge)/8, ma*4/5)
		a.cuts.Add(1)
	}
	c.maxOps.Store(mo)
	c.maxAge.Store(ma)
	c.sizeFl, c.ageFl, c.opsSum = 0, 0, 0
}

// FlushAll ships every open batch. O(1) when nothing is buffered, so
// progress loops and pre-block flushes can call it freely.
func (a *Aggregator) FlushAll() { a.flushAllReason(obs.FlushExplicit) }

// FlushAllBarrier is FlushAll for the pre-barrier drain, so the flush
// trigger shows up distinctly in traces and counters.
func (a *Aggregator) FlushAllBarrier() { a.flushAllReason(obs.FlushBarrier) }

func (a *Aggregator) flushAllReason(reason uint64) {
	if a.buffered == 0 {
		return
	}
	for dst := range a.bufs {
		a.flushReason(dst, reason)
	}
}

// Tick is the progress-loop hook: it flushes destinations whose oldest
// buffered op has exceeded MaxAge and reports how many batches it
// shipped. Ranks call it from Advance and while waiting — often once
// per received message — so the empty case returns without reading the
// clock or scanning destinations.
func (a *Aggregator) Tick() int {
	if a.buffered == 0 {
		return 0
	}
	now := a.now()
	n := 0
	for dst := range a.bufs {
		if b := &a.bufs[dst]; b.ops > 0 && now.Sub(b.oldest) >= a.maxAgeFor(dst) {
			a.flushReason(dst, obs.FlushMaxAge)
			n++
		}
	}
	return n
}

// Buffered reports how many ops sit in open batches.
func (a *Aggregator) Buffered() int { return a.buffered }

// Pending reports how many ops are not yet known applied: buffered
// plus shipped-but-unacknowledged. Barriers drain it to zero.
func (a *Aggregator) Pending() int { return a.buffered + a.inflight }

// Counters reports the aggregation metrics for the bench harness:
// batches shipped, ops coalesced, encoded batch bytes, the estimated
// wire bytes saved versus one frame pair per op, and the realized
// ops-per-batch ratio.
func (a *Aggregator) Counters() map[string]float64 {
	batches := a.batches.Load()
	ops := a.opsTotal.Load()
	c := map[string]float64{
		"agg_batches":        float64(batches),
		"agg_ops":            float64(ops),
		"agg_batch_bytes":    float64(a.batchBytes.Load()),
		"agg_saved_bytes":    float64(a.savedBytes.Load()),
		"agg_flush_maxops":   float64(a.byReason[obs.FlushMaxOps].Load()),
		"agg_flush_maxbytes": float64(a.byReason[obs.FlushMaxBytes].Load()),
		"agg_flush_maxage":   float64(a.byReason[obs.FlushMaxAge].Load()),
		"agg_flush_explicit": float64(a.byReason[obs.FlushExplicit].Load()),
		"agg_flush_barrier":  float64(a.byReason[obs.FlushBarrier].Load()),
	}
	if batches > 0 {
		c["agg_ops_per_batch"] = float64(ops) / float64(batches)
	}
	if a.ctls != nil {
		c["agg_adaptive_raises"] = float64(a.raises.Load())
		c["agg_adaptive_cuts"] = float64(a.cuts.Load())
		var mo, ma float64
		for i := range a.ctls {
			mo += float64(a.ctls[i].maxOps.Load())
			ma += float64(a.ctls[i].maxAge.Load())
		}
		n := float64(len(a.ctls))
		c["agg_maxops_avg"] = mo / n
		c["agg_maxage_us_avg"] = ma / n / 1e3
	}
	return c
}

// Apply decodes one batch payload and executes each op against ap, in
// order, returning how many ops ran. A truncated or unknown op aborts
// with an error (a correct peer never produces one).
func Apply(batch []byte, ap Applier) (int, error) {
	n := 0
	for len(batch) > 0 {
		kind := batch[0]
		batch = batch[1:]
		switch kind {
		case opPut:
			if len(batch) < 12 {
				return n, fmt.Errorf("agg: truncated put header")
			}
			off := binary.LittleEndian.Uint64(batch)
			ln := int(binary.LittleEndian.Uint32(batch[8:]))
			batch = batch[12:]
			if len(batch) < ln {
				return n, fmt.Errorf("agg: put data truncated: want %d, have %d", ln, len(batch))
			}
			ap.Put(off, batch[:ln])
			batch = batch[ln:]
		case opXor:
			if len(batch) < 16 {
				return n, fmt.Errorf("agg: truncated xor op")
			}
			ap.Xor64(binary.LittleEndian.Uint64(batch), binary.LittleEndian.Uint64(batch[8:]))
			batch = batch[16:]
		case opAM:
			if len(batch) < 6 {
				return n, fmt.Errorf("agg: truncated am header")
			}
			id := uint16(batch[0]) | uint16(batch[1])<<8
			ln := int(binary.LittleEndian.Uint32(batch[2:]))
			batch = batch[6:]
			if len(batch) < ln {
				return n, fmt.Errorf("agg: am payload truncated: want %d, have %d", ln, len(batch))
			}
			ap.AM(id, batch[:ln])
			batch = batch[ln:]
		default:
			return n, fmt.Errorf("agg: unknown op kind %d", kind)
		}
		n++
	}
	return n, nil
}
