// Package dht implements a sharded distributed hash table over the
// runtime's message-aggregation layer — the canonical workload for
// software coalescing of fine-grained remote operations (the role
// GUPS plays for raw remote atomics in the paper's §V-A).
//
// Layout is owner-computes over the registered segments: every rank
// owns one open-addressing shard allocated in its own shared segment,
// and a key's owner is a pure function of the key, so any rank can
// route an operation without metadata traffic. Inserts travel as
// aggregated active messages (core.AggSend) and are applied by the
// owner against its local shard; lookups are an aggregated
// request/response pair, with replies themselves coalescing when many
// lookups hit one owner. On the in-process conduit the same code runs
// over the engine's active messages, which is how CI proves both
// backends compute the identical table.
//
// Replication (Config.Replicas = K > 1) keeps each key on K
// consecutive ranks — successor placement, ReplicaRanks — so the
// table survives rank death on a resilient job: writes fan out to
// every live replica through the same aggregation plane, reads route
// around dead replicas, and with Config.ReadRepair a lookup queries
// all live replicas and re-inserts the value into any that have lost
// it (a rank that missed writes while others already considered a
// peer dead). Checksum counts each key exactly once — at its first
// live replica — so it equals the unreplicated table's checksum and
// is invariant under both replication and repair.
//
// A shard never moves and only its owner touches it, so there is no
// locking anywhere: the handler executes on the owner's SPMD
// goroutine, the same discipline the conduit itself follows.
package dht

import (
	"encoding/binary"
	"fmt"

	"upcxx/internal/bench/gups"
	"upcxx/internal/core"
)

// Aggregated-AM handler ids used by the table. Ids are a global
// namespace (like a GASNet handler table), so at most one Table may
// exist per job at a time.
const (
	hInsert uint16 = 0x20 // payload [key u64][val u64]
	hLookup uint16 = 0x21 // payload [req u64][key u64]
	hAnswer uint16 = 0x22 // payload [req u64][val u64][found u8]
)

// Bucket is one slot of a shard: a (key, value) pair plus an
// occupancy word (keys are arbitrary 64-bit values, so no key can
// double as the empty sentinel). Bucket is POD, as segment storage
// requires.
type Bucket struct {
	Used uint64
	Key  uint64
	Val  uint64
}

// BucketBytes is the segment footprint of one bucket.
const BucketBytes = 24

// DefaultCapacity sizes a shard for the given per-rank insert volume:
// the next power of two at or above 4x keeps the expected load factor
// near 1/4, so linear probing stays short even on unlucky key splits.
func DefaultCapacity(insertsPerRank int) int {
	c := 64
	for c < 4*insertsPerRank {
		c <<= 1
	}
	return c
}

// SegBytes returns the per-rank segment space a Table of the given
// shard capacity needs, including allocator slack for the runtime's
// own metadata.
func SegBytes(capPerRank int) int {
	return capPerRank*BucketBytes + (1 << 17)
}

// Config tunes a Table beyond its shard capacity.
type Config struct {
	// Replicas is K, the number of ranks each key lives on (successor
	// placement; see ReplicaRanks). 0 or 1 means unreplicated; values
	// above the rank count are clamped. Size shards for K times the
	// unreplicated load.
	Replicas int
	// ReadRepair makes every lookup query all live replicas and
	// re-insert the winning value into replicas that answered "not
	// found" — convergence after partial writes. Without it a lookup
	// consults only the first live replica.
	ReadRepair bool
}

// Table is one job-wide distributed hash table. Construction is
// collective; thereafter each rank calls Insert/Lookup with its own
// handle, and methods must run on the rank's SPMD goroutine.
type Table struct {
	capacity int
	mask     uint64
	local    []Bucket // this rank's shard, in its own segment
	cfg      Config
	k        int // effective replica count (cfg.Replicas clamped)

	pending map[uint64]*query
	nextReq uint64

	inserts   int64 // Insert calls issued by this rank
	lookups   int64 // Lookup calls issued by this rank
	localOps  int64 // of those, owner-local fast paths
	served    int64 // remote ops this rank's shard applied
	repairs   int64 // read-repair re-inserts this rank issued
	occupancy int64 // live buckets in the local shard
}

// query is one outstanding per-replica probe of a Lookup, tracked by
// request id so an answer — or the target's death — settles exactly
// this probe.
type query struct {
	l      *Lookup
	target int
}

// New collectively creates an unreplicated table whose per-rank shard
// holds capPerRank buckets (rounded up to a power of two). Every rank
// must call it before any rank inserts. Only one Table may be live per
// job: its AM handler ids are global, and registering them twice
// panics.
func New(me *core.Rank, capPerRank int) *Table {
	return NewWithConfig(me, capPerRank, Config{})
}

// NewWithConfig is New with replication and read-repair settings.
func NewWithConfig(me *core.Rank, capPerRank int, cfg Config) *Table {
	capacity := 1
	for capacity < capPerRank {
		capacity <<= 1
	}
	k := cfg.Replicas
	if k < 1 {
		k = 1
	}
	if k > me.Ranks() {
		k = me.Ranks()
	}
	t := &Table{
		capacity: capacity,
		mask:     uint64(capacity - 1),
		cfg:      cfg,
		k:        k,
		pending:  make(map[uint64]*query),
	}
	shard := core.Allocate[Bucket](me, me.ID(), capacity)
	t.local = core.LocalSlice(me, shard, capacity)
	for i := range t.local {
		t.local[i] = Bucket{}
	}
	core.RegisterAMHandler(me, hInsert, t.onInsert)
	core.RegisterAMHandler(me, hLookup, t.onLookup)
	core.RegisterAMHandler(me, hAnswer, t.onAnswer)
	if t.survivable() {
		core.OnRankDeath(me, func(rank int) { t.onRankDeath(me, rank) })
	}
	me.Barrier()
	return t
}

// survivable reports whether the table routes around dead ranks (and
// must therefore tolerate the protocol leftovers death produces, e.g.
// answers for requests a death sweep already settled).
func (t *Table) survivable() bool { return t.k > 1 || t.cfg.ReadRepair }

// ReplicaRanks returns the ranks holding key under successor
// placement: the primary owner followed by the k-1 next ranks mod the
// job size (clamped to at most ranks, so the copies are always on
// distinct ranks). A pure function of its arguments — identical on
// every rank and backend, so any rank routes without metadata traffic.
func ReplicaRanks(key uint64, ranks, k int) []int {
	if k < 1 {
		k = 1
	}
	if k > ranks {
		k = ranks
	}
	owner := int(gups.Mix64(key) % uint64(ranks))
	out := make([]int, k)
	for i := range out {
		out[i] = (owner + i) % ranks
	}
	return out
}

// Owner returns the rank whose shard primarily holds key — the first
// replica.
func (t *Table) Owner(me *core.Rank, key uint64) int {
	return int(gups.Mix64(key) % uint64(me.Ranks()))
}

// liveReplicas returns key's replica ranks that are still alive, in
// placement order. Fault-free this is exactly ReplicaRanks.
func (t *Table) liveReplicas(me *core.Rank, key uint64) []int {
	all := ReplicaRanks(key, me.Ranks(), t.k)
	live := all[:0]
	for _, r := range all {
		if me.RankAlive(r) {
			live = append(live, r)
		}
	}
	return live
}

// slot returns the probe start for key within a shard.
func (t *Table) slot(key uint64) uint64 {
	return gups.Mix64(key^0xD6E8FEB86659FD93) & t.mask
}

// Insert stores (key, val), overwriting any previous value for key —
// on every live replica, fanned out through the aggregation plane.
// Owner-local copies apply immediately; remote ones travel as
// aggregated AMs and are visible at their replicas once the completion
// object passed as done fires (nil: by the caller's next barrier; an
// *Event or *Promise both work). Like all aggregated ops, inserts to
// one replica apply in issue order, so the last insert of a key wins
// deterministically at each replica.
// Panics typed (core.ErrRankDead) if no replica is left alive.
func (t *Table) Insert(me *core.Rank, key, val uint64, done core.Completer) {
	t.inserts++
	live := t.liveReplicas(me, key)
	if len(live) == 0 {
		panic(fmt.Errorf("dht: insert of key %#x: every replica dead: %w", key, core.ErrRankDead))
	}
	var p [16]byte
	binary.LittleEndian.PutUint64(p[0:], key)
	binary.LittleEndian.PutUint64(p[8:], val)
	for _, r := range live {
		if r == me.ID() {
			t.localOps++
			t.put(key, val)
			core.CompleteNow(done, me)
			continue
		}
		core.AggSend(me, r, hInsert, p[:], done)
	}
}

func (t *Table) onInsert(me *core.Rank, _ int, payload []byte) {
	t.served++
	t.put(binary.LittleEndian.Uint64(payload), binary.LittleEndian.Uint64(payload[8:]))
}

// put applies one insert to the local shard: linear probing from the
// key's slot, overwrite on key match.
func (t *Table) put(key, val uint64) {
	s := t.slot(key)
	for i := 0; i < t.capacity; i++ {
		b := &t.local[(s+uint64(i))&t.mask]
		if b.Used == 0 {
			*b = Bucket{Used: 1, Key: key, Val: val}
			t.occupancy++
			return
		}
		if b.Key == key {
			b.Val = val
			return
		}
	}
	panic(fmt.Sprintf("dht: shard full (%d buckets)", t.capacity))
}

// get probes the local shard.
func (t *Table) get(key uint64) (uint64, bool) {
	s := t.slot(key)
	for i := 0; i < t.capacity; i++ {
		b := &t.local[(s+uint64(i))&t.mask]
		if b.Used == 0 {
			return 0, false
		}
		if b.Key == key {
			return b.Val, true
		}
	}
	return 0, false
}

// Lookup is one in-flight lookup's handle.
type Lookup struct {
	key       uint64
	remaining int   // per-replica probes still outstanding
	answered  int   // probes that actually answered (vs died)
	stale     []int // replicas that answered "not found" (repair targets)
	failed    error // every replica dead — Wait panics with this
	done      bool
	found     bool
	val       uint64
	cb        func(*Lookup) // OnDone continuation, nil until registered
}

// Lookup starts a (possibly remote) probe for key and returns its
// handle; issue a batch of lookups and then Wait each to let requests
// — and the owners' replies — coalesce. Unreplicated (or without
// ReadRepair), the probe goes to the first live replica; with
// ReadRepair every live replica is consulted and lagging ones are
// repaired from the winning value when the last answer arrives.
func (t *Table) Lookup(me *core.Rank, key uint64) *Lookup {
	t.lookups++
	l := &Lookup{key: key}
	live := t.liveReplicas(me, key)
	if len(live) == 0 {
		l.failed = fmt.Errorf("dht: lookup of key %#x: every replica dead: %w", key, core.ErrRankDead)
		l.done = true
		return l
	}
	targets := live
	if !t.cfg.ReadRepair {
		targets = live[:1]
	}
	l.remaining = len(targets)
	for _, r := range targets {
		t.probe(me, l, r)
	}
	return l
}

// probe issues one per-replica query: a local shard read when the
// target is this rank, an aggregated request/answer pair otherwise.
func (t *Table) probe(me *core.Rank, l *Lookup, target int) {
	if target == me.ID() {
		t.localOps++
		v, ok := t.get(l.key)
		t.absorb(me, l, target, v, ok)
		return
	}
	t.nextReq++
	req := t.nextReq
	t.pending[req] = &query{l: l, target: target}
	var p [16]byte
	binary.LittleEndian.PutUint64(p[0:], req)
	binary.LittleEndian.PutUint64(p[8:], l.key)
	core.AggSend(me, target, hLookup, p[:], nil)
}

// absorb folds one replica's answer into the lookup, finishing it when
// the last probe settles.
func (t *Table) absorb(me *core.Rank, l *Lookup, target int, val uint64, found bool) {
	l.remaining--
	l.answered++
	if found {
		if !l.found {
			l.found = true
			l.val = val
		}
	} else {
		l.stale = append(l.stale, target)
	}
	if l.remaining == 0 {
		t.finishLookup(me, l)
	}
}

// finishLookup settles the handle and, in repair mode, re-inserts the
// winning value into live replicas that had lost it.
func (t *Table) finishLookup(me *core.Rank, l *Lookup) {
	if l.answered == 0 {
		// Every queried replica died before answering (and none is left:
		// re-routing happens at death time): the key is unreachable.
		l.failed = fmt.Errorf("dht: lookup of key %#x: every replica dead: %w", l.key, core.ErrRankDead)
		l.done = true
		l.fire()
		return
	}
	l.done = true
	defer l.fire()
	if !l.found || !t.cfg.ReadRepair || len(l.stale) == 0 {
		return
	}
	var p [16]byte
	binary.LittleEndian.PutUint64(p[0:], l.key)
	binary.LittleEndian.PutUint64(p[8:], l.val)
	for _, r := range l.stale {
		if !me.RankAlive(r) {
			continue
		}
		t.repairs++
		if r == me.ID() {
			t.put(l.key, l.val)
			continue
		}
		core.AggSend(me, r, hInsert, p[:], nil)
	}
}

// onRankDeath settles every probe outstanding against the dead rank:
// repair-mode lookups simply lose one voter; single-target lookups
// re-route to the next live replica.
func (t *Table) onRankDeath(me *core.Rank, rank int) {
	var doomed []uint64
	for req, q := range t.pending {
		if q.target == rank {
			doomed = append(doomed, req)
		}
	}
	for _, req := range doomed {
		q := t.pending[req]
		delete(t.pending, req)
		l := q.l
		if !t.cfg.ReadRepair {
			if live := t.liveReplicas(me, l.key); len(live) > 0 {
				t.probe(me, l, live[0])
				continue
			}
		}
		l.remaining--
		if l.remaining == 0 {
			t.finishLookup(me, l)
		}
	}
}

func (t *Table) onLookup(me *core.Rank, from int, payload []byte) {
	t.served++
	req := binary.LittleEndian.Uint64(payload)
	val, found := t.get(binary.LittleEndian.Uint64(payload[8:]))
	var rep [17]byte
	binary.LittleEndian.PutUint64(rep[0:], req)
	binary.LittleEndian.PutUint64(rep[8:], val)
	if found {
		rep[16] = 1
	}
	// The reply is itself aggregated; the runtime flushes
	// handler-generated ops as soon as the incoming batch is applied.
	core.AggSend(me, from, hAnswer, rep[:], nil)
}

func (t *Table) onAnswer(me *core.Rank, from int, payload []byte) {
	req := binary.LittleEndian.Uint64(payload)
	q := t.pending[req]
	if q == nil {
		// On a survivable table an answer can legitimately outlive its
		// request: the death sweep settled the probe, then the "dead"
		// rank's in-flight reply landed anyway (chaos simulation, or a
		// frame that beat the detector). Drop it.
		if t.survivable() {
			return
		}
		panic(fmt.Sprintf("dht: rank %d: answer for unknown request %d", me.ID(), req))
	}
	delete(t.pending, req)
	t.absorb(me, q.l, from, binary.LittleEndian.Uint64(payload[8:]), payload[16] == 1)
}

// Key returns the key this lookup probes — handy when Waiting a batch.
func (l *Lookup) Key() uint64 { return l.key }

// fire runs the OnDone continuation, if one is registered.
func (l *Lookup) fire() {
	if l.cb != nil {
		cb := l.cb
		l.cb = nil
		cb(l)
	}
}

// OnDone registers fn to run on the owning rank's goroutine when the
// lookup settles — immediately, if it already has (the local fast path
// and the every-replica-dead path settle inside Lookup itself). Like
// every Table operation, OnDone must be called from the rank's own
// goroutine; the continuation runs there too, from progress dispatch.
// It is the event-loop alternative to Wait for callers multiplexing
// many lookups (the gateway's serve loop).
func (l *Lookup) OnDone(fn func(*Lookup)) {
	if l.done {
		fn(l)
		return
	}
	l.cb = fn
}

// Done reports whether the lookup has settled (answer absorbed or
// failed); once true, Result is valid and Wait will not block.
func (l *Lookup) Done() bool { return l.done }

// Result returns the settled lookup's outcome without panicking: the
// value, whether the key was present, and the typed failure (nil
// unless every replica of the key died). Valid only once Done reports
// true.
func (l *Lookup) Result() (val uint64, found bool, err error) {
	return l.val, l.found, l.failed
}

// Wait blocks until the lookup's answer arrives (servicing progress,
// which also flushes the request if it is still buffered) and returns
// the value and whether the key was present. If every replica of the
// key died, Wait panics with a core.ErrRankDead-typed cause rather
// than report a false miss.
func (l *Lookup) Wait(me *core.Rank) (uint64, bool) {
	if !l.done {
		me.WaitUntil(func() bool { return l.done })
	}
	if l.failed != nil {
		panic(l.failed)
	}
	return l.val, l.found
}

// Checksum barriers (draining all in-flight inserts) and folds the
// whole table into one value, identical on every rank. The fold is
// insertion-order- and probe-placement-independent — each occupied
// bucket contributes a mix of its (key, value) pair under xor — and
// counts every key exactly once, at its first LIVE replica, so the
// checksum is invariant under replication, rank death and read-repair:
// it always equals ExpectedChecksum of the logical contents, which is
// what lets CI compare conduit backends and chaos runs against
// fault-free ones. A rank whose scripted death has passed (the
// in-process chaos ghost) contributes nothing.
func (t *Table) Checksum(me *core.Rank) uint64 {
	me.Barrier()
	var sum uint64
	var entries int64
	ghost := core.ChaosKilled(me)
	for i := range t.local {
		b := &t.local[i]
		if b.Used == 0 {
			continue
		}
		if ghost || !t.countsHere(me, b.Key) {
			continue
		}
		sum ^= gups.Mix64(b.Key*0x9E3779B97F4A7C15 + gups.Mix64(b.Val))
		entries++
	}
	total := core.TeamReduce(me.World(), entries, func(a, b int64) int64 { return a + b })
	sum = core.TeamReduce(me.World(), sum, func(a, b uint64) uint64 { return a ^ b })
	return gups.Mix64(sum ^ uint64(total))
}

// countsHere reports whether this rank is key's first live replica —
// the one copy of the key Checksum counts.
func (t *Table) countsHere(me *core.Rank, key uint64) bool {
	for _, r := range ReplicaRanks(key, me.Ranks(), t.k) {
		if me.RankAlive(r) {
			return r == me.ID()
		}
	}
	return false
}

// ExpectedChecksum computes, with no job at all, the checksum a Table
// holding exactly the given key -> value pairs reports — the reference
// oracle benchmarks and tests verify real runs against. It must stay
// in lockstep with Checksum's fold.
func ExpectedChecksum(pairs map[uint64]uint64) uint64 {
	var sum uint64
	for k, v := range pairs {
		sum ^= gups.Mix64(k*0x9E3779B97F4A7C15 + gups.Mix64(v))
	}
	return gups.Mix64(sum ^ uint64(len(pairs)))
}

// Entries returns the number of live buckets in this rank's shard.
func (t *Table) Entries() int64 { return t.occupancy }

// Counters reports this rank's table activity for the bench harness.
func (t *Table) Counters() map[string]float64 {
	return map[string]float64{
		"dht_inserts":   float64(t.inserts),
		"dht_lookups":   float64(t.lookups),
		"dht_local_ops": float64(t.localOps),
		"dht_served":    float64(t.served),
		"dht_repairs":   float64(t.repairs),
		"dht_entries":   float64(t.occupancy),
	}
}
