// Package dht implements a sharded distributed hash table over the
// runtime's message-aggregation layer — the canonical workload for
// software coalescing of fine-grained remote operations (the role
// GUPS plays for raw remote atomics in the paper's §V-A).
//
// Layout is owner-computes over the registered segments: every rank
// owns one open-addressing shard allocated in its own shared segment,
// and a key's owner is a pure function of the key, so any rank can
// route an operation without metadata traffic. Inserts travel as
// aggregated active messages (core.AggSend) and are applied by the
// owner against its local shard; lookups are an aggregated
// request/response pair, with replies themselves coalescing when many
// lookups hit one owner. On the in-process conduit the same code runs
// over the engine's active messages, which is how CI proves both
// backends compute the identical table.
//
// A shard never moves and only its owner touches it, so there is no
// locking anywhere: the handler executes on the owner's SPMD
// goroutine, the same discipline the conduit itself follows.
package dht

import (
	"encoding/binary"
	"fmt"

	"upcxx/internal/bench/gups"
	"upcxx/internal/core"
)

// Aggregated-AM handler ids used by the table. Ids are a global
// namespace (like a GASNet handler table), so at most one Table may
// exist per job at a time.
const (
	hInsert uint16 = 0x20 // payload [key u64][val u64]
	hLookup uint16 = 0x21 // payload [req u64][key u64]
	hAnswer uint16 = 0x22 // payload [req u64][val u64][found u8]
)

// Bucket is one slot of a shard: a (key, value) pair plus an
// occupancy word (keys are arbitrary 64-bit values, so no key can
// double as the empty sentinel). Bucket is POD, as segment storage
// requires.
type Bucket struct {
	Used uint64
	Key  uint64
	Val  uint64
}

// BucketBytes is the segment footprint of one bucket.
const BucketBytes = 24

// DefaultCapacity sizes a shard for the given per-rank insert volume:
// the next power of two at or above 4x keeps the expected load factor
// near 1/4, so linear probing stays short even on unlucky key splits.
func DefaultCapacity(insertsPerRank int) int {
	c := 64
	for c < 4*insertsPerRank {
		c <<= 1
	}
	return c
}

// SegBytes returns the per-rank segment space a Table of the given
// shard capacity needs, including allocator slack for the runtime's
// own metadata.
func SegBytes(capPerRank int) int {
	return capPerRank*BucketBytes + (1 << 17)
}

// Table is one job-wide distributed hash table. Construction is
// collective; thereafter each rank calls Insert/Lookup with its own
// handle, and methods must run on the rank's SPMD goroutine.
type Table struct {
	capacity int
	mask     uint64
	local    []Bucket // this rank's shard, in its own segment

	pending map[uint64]*Lookup
	nextReq uint64

	inserts   int64 // Insert calls issued by this rank
	lookups   int64 // Lookup calls issued by this rank
	localOps  int64 // of those, owner-local fast paths
	served    int64 // remote ops this rank's shard applied
	occupancy int64 // live buckets in the local shard
}

// New collectively creates a table whose per-rank shard holds
// capPerRank buckets (rounded up to a power of two). Every rank must
// call it before any rank inserts. Only one Table may be live per job:
// its AM handler ids are global, and registering them twice panics.
func New(me *core.Rank, capPerRank int) *Table {
	capacity := 1
	for capacity < capPerRank {
		capacity <<= 1
	}
	t := &Table{
		capacity: capacity,
		mask:     uint64(capacity - 1),
		pending:  make(map[uint64]*Lookup),
	}
	shard := core.Allocate[Bucket](me, me.ID(), capacity)
	t.local = core.LocalSlice(me, shard, capacity)
	for i := range t.local {
		t.local[i] = Bucket{}
	}
	core.RegisterAMHandler(me, hInsert, t.onInsert)
	core.RegisterAMHandler(me, hLookup, t.onLookup)
	core.RegisterAMHandler(me, hAnswer, t.onAnswer)
	me.Barrier()
	return t
}

// Owner returns the rank whose shard holds key — a pure function of
// the key, identical on every rank and backend.
func (t *Table) Owner(me *core.Rank, key uint64) int {
	return int(gups.Mix64(key) % uint64(me.Ranks()))
}

// slot returns the probe start for key within a shard.
func (t *Table) slot(key uint64) uint64 {
	return gups.Mix64(key^0xD6E8FEB86659FD93) & t.mask
}

// Insert stores (key, val), overwriting any previous value for key.
// Owner-local inserts apply immediately; remote ones travel as
// aggregated AMs and are visible at the owner once an event passed as
// ev fires (nil: by the caller's next barrier). Like all aggregated
// ops, inserts to one owner apply in issue order, so the last insert
// of a key wins deterministically.
func (t *Table) Insert(me *core.Rank, key, val uint64, ev *core.Event) {
	t.inserts++
	owner := t.Owner(me, key)
	if owner == me.ID() {
		t.localOps++
		t.put(key, val)
		core.SignalNow(ev, me)
		return
	}
	var p [16]byte
	binary.LittleEndian.PutUint64(p[0:], key)
	binary.LittleEndian.PutUint64(p[8:], val)
	core.AggSend(me, owner, hInsert, p[:], ev)
}

func (t *Table) onInsert(me *core.Rank, _ int, payload []byte) {
	t.served++
	t.put(binary.LittleEndian.Uint64(payload), binary.LittleEndian.Uint64(payload[8:]))
}

// put applies one insert to the local shard: linear probing from the
// key's slot, overwrite on key match.
func (t *Table) put(key, val uint64) {
	s := t.slot(key)
	for i := 0; i < t.capacity; i++ {
		b := &t.local[(s+uint64(i))&t.mask]
		if b.Used == 0 {
			*b = Bucket{Used: 1, Key: key, Val: val}
			t.occupancy++
			return
		}
		if b.Key == key {
			b.Val = val
			return
		}
	}
	panic(fmt.Sprintf("dht: shard full (%d buckets)", t.capacity))
}

// get probes the local shard.
func (t *Table) get(key uint64) (uint64, bool) {
	s := t.slot(key)
	for i := 0; i < t.capacity; i++ {
		b := &t.local[(s+uint64(i))&t.mask]
		if b.Used == 0 {
			return 0, false
		}
		if b.Key == key {
			return b.Val, true
		}
	}
	return 0, false
}

// Lookup is one in-flight lookup's handle.
type Lookup struct {
	done  bool
	found bool
	val   uint64
}

// Lookup starts a (possibly remote) probe for key and returns its
// handle; issue a batch of lookups and then Wait each to let requests
// — and the owners' replies — coalesce.
func (t *Table) Lookup(me *core.Rank, key uint64) *Lookup {
	t.lookups++
	l := &Lookup{}
	owner := t.Owner(me, key)
	if owner == me.ID() {
		t.localOps++
		l.val, l.found = t.get(key)
		l.done = true
		return l
	}
	t.nextReq++
	req := t.nextReq
	t.pending[req] = l
	var p [16]byte
	binary.LittleEndian.PutUint64(p[0:], req)
	binary.LittleEndian.PutUint64(p[8:], key)
	core.AggSend(me, owner, hLookup, p[:], nil)
	return l
}

func (t *Table) onLookup(me *core.Rank, from int, payload []byte) {
	t.served++
	req := binary.LittleEndian.Uint64(payload)
	val, found := t.get(binary.LittleEndian.Uint64(payload[8:]))
	var rep [17]byte
	binary.LittleEndian.PutUint64(rep[0:], req)
	binary.LittleEndian.PutUint64(rep[8:], val)
	if found {
		rep[16] = 1
	}
	// The reply is itself aggregated; the runtime flushes
	// handler-generated ops as soon as the incoming batch is applied.
	core.AggSend(me, from, hAnswer, rep[:], nil)
}

func (t *Table) onAnswer(me *core.Rank, _ int, payload []byte) {
	req := binary.LittleEndian.Uint64(payload)
	l := t.pending[req]
	if l == nil {
		panic(fmt.Sprintf("dht: rank %d: answer for unknown request %d", me.ID(), req))
	}
	delete(t.pending, req)
	l.val = binary.LittleEndian.Uint64(payload[8:])
	l.found = payload[16] == 1
	l.done = true
}

// Wait blocks until the lookup's answer arrives (servicing progress,
// which also flushes the request if it is still buffered) and returns
// the value and whether the key was present.
func (l *Lookup) Wait(me *core.Rank) (uint64, bool) {
	if !l.done {
		me.WaitUntil(func() bool { return l.done })
	}
	return l.val, l.found
}

// Checksum barriers (draining all in-flight inserts) and folds the
// whole table into one value, identical on every rank. The fold is
// insertion-order- and probe-placement-independent — each occupied
// bucket contributes a mix of its (key, value) pair under xor — so
// the checksum depends only on the table's contents, which is what
// lets CI compare conduit backends.
func (t *Table) Checksum(me *core.Rank) uint64 {
	me.Barrier()
	var sum uint64
	for i := range t.local {
		b := &t.local[i]
		if b.Used != 0 {
			sum ^= gups.Mix64(b.Key*0x9E3779B97F4A7C15 + gups.Mix64(b.Val))
		}
	}
	entries := core.Reduce(me, t.occupancy, func(a, b int64) int64 { return a + b })
	sum = core.Reduce(me, sum, func(a, b uint64) uint64 { return a ^ b })
	return gups.Mix64(sum ^ uint64(entries))
}

// ExpectedChecksum computes, with no job at all, the checksum a Table
// holding exactly the given key -> value pairs reports — the reference
// oracle benchmarks and tests verify real runs against. It must stay
// in lockstep with Checksum's fold.
func ExpectedChecksum(pairs map[uint64]uint64) uint64 {
	var sum uint64
	for k, v := range pairs {
		sum ^= gups.Mix64(k*0x9E3779B97F4A7C15 + gups.Mix64(v))
	}
	return gups.Mix64(sum ^ uint64(len(pairs)))
}

// Entries returns the number of live buckets in this rank's shard.
func (t *Table) Entries() int64 { return t.occupancy }

// Counters reports this rank's table activity for the bench harness.
func (t *Table) Counters() map[string]float64 {
	return map[string]float64{
		"dht_inserts":   float64(t.inserts),
		"dht_lookups":   float64(t.lookups),
		"dht_local_ops": float64(t.localOps),
		"dht_served":    float64(t.served),
		"dht_entries":   float64(t.occupancy),
	}
}
