package dht

import (
	"fmt"
	"hash/fnv"
	"testing"
	"testing/quick"
)

// TestStrKeyGolden pins the hash to wire-format constants: these exact
// values are what a restarted gateway — or a client in another
// language implementing the same recurrence — must produce to address
// the same buckets. If this test ever needs updating, the change is a
// data-compatibility break, not a refactor.
func TestStrKeyGolden(t *testing.T) {
	golden := map[string]uint64{
		"":                    0xcbf29ce484222325,
		"a":                   0xaf63dc4c8601ec8c,
		"42":                  0x07ee7e07b4b19223,
		"hello":               0xa430d84680aabd0b,
		"user:1048576":        0xb08c1ed27f663139,
		"the-quick-brown-fox": 0xe558f28dc7a24ee3,
	}
	for s, want := range golden {
		if got := StrKey(s); got != want {
			t.Errorf("StrKey(%q) = %#x, want %#x", s, got, want)
		}
	}
}

// TestStrKeyMatchesFNV1a cross-checks the recurrence against the
// stdlib's FNV-1a over arbitrary strings: the golden table pins a few
// points, this pins the whole function.
func TestStrKeyMatchesFNV1a(t *testing.T) {
	f := func(s string) bool {
		h := fnv.New64a()
		h.Write([]byte(s))
		return StrKey(s) == h.Sum64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestStrKeysVerifiesCollisions exercises the collision-checked mode:
// repeats of one string are fine, and a forced alias (injected by
// seeding the seen map directly, since finding a real 64-bit collision
// is not a unit test's job) must panic loudly.
func TestStrKeysVerifiesCollisions(t *testing.T) {
	sk := NewStrKeys()
	for i := 0; i < 1000; i++ {
		s := fmt.Sprintf("key-%d", i%100)
		if got, want := sk.Key(s), StrKey(s); got != want {
			t.Fatalf("StrKeys.Key(%q) = %#x, want %#x", s, got, want)
		}
	}
	if sk.Len() != 100 {
		t.Fatalf("Len = %d after 100 distinct strings, want 100", sk.Len())
	}

	sk.seen[StrKey("alias")] = "something-else"
	defer func() {
		if recover() == nil {
			t.Fatal("aliased string did not panic")
		}
	}()
	sk.Key("alias")
}
