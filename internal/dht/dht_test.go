package dht

import (
	"sync"
	"testing"

	"upcxx/internal/bench/gups"
	"upcxx/internal/core"
	"upcxx/internal/gasnet"
	"upcxx/internal/segment"
	"upcxx/internal/transport"
)

func keyFor(rank, i int) uint64 {
	return gups.Mix64(uint64(rank)<<32+uint64(i))<<1 | 1 // odd keys only
}

func valFor(key uint64) uint64 { return gups.Mix64(key ^ 0x5851F42D4C957F2D) }

// workload inserts perRank keys from every rank, verifies a sample by
// lookup (including a key that was never inserted — all inserted keys
// are odd), and returns the table checksum.
func workload(t *testing.T, me *core.Rank, perRank int) uint64 {
	tbl := New(me, DefaultCapacity(perRank))
	for i := 0; i < perRank; i++ {
		k := keyFor(me.ID(), i)
		tbl.Insert(me, k, valFor(k), nil)
	}
	me.Barrier()

	sample := perRank
	if sample > 64 {
		sample = 64
	}
	pend := make([]*Lookup, sample)
	for s := 0; s < sample; s++ {
		pend[s] = tbl.Lookup(me, keyFor(me.ID(), s*(perRank/sample)))
	}
	miss := tbl.Lookup(me, uint64(2+4*me.ID())) // even: never inserted
	for s, l := range pend {
		k := keyFor(me.ID(), s*(perRank/sample))
		v, ok := l.Wait(me)
		if !ok || v != valFor(k) {
			t.Errorf("rank %d: lookup %#x = (%#x,%v), want (%#x,true)", me.ID(), k, v, ok, valFor(k))
		}
	}
	if _, ok := miss.Wait(me); ok {
		t.Errorf("rank %d: lookup of never-inserted key reported found", me.ID())
	}
	return tbl.Checksum(me)
}

func runProc(t *testing.T, n, perRank int) []uint64 {
	sums := make([]uint64, n)
	core.Run(core.Config{Ranks: n, SegmentBytes: SegBytes(DefaultCapacity(perRank))},
		func(me *core.Rank) { sums[me.ID()] = workload(t, me, perRank) })
	return sums
}

func runWire(t *testing.T, n, perRank int) ([]uint64, []core.Stats) {
	t.Helper()
	eps := make([]*transport.TCPEndpoint, n)
	addrs := make([]string, n)
	for i := range eps {
		ep, err := transport.ListenTCP(i, n, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
		addrs[i] = ep.Addr()
	}
	sums := make([]uint64, n)
	stats := make([]core.Stats, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := eps[i].Connect(addrs); err != nil {
				t.Errorf("rank %d connect: %v", i, err)
				return
			}
			seg := segment.New(SegBytes(DefaultCapacity(perRank)))
			cd := gasnet.NewWireConduit(eps[i], seg)
			defer cd.Close()
			stats[i] = core.RunWire(core.Config{}, cd, seg, func(me *core.Rank) {
				sums[me.ID()] = workload(t, me, perRank)
			})
			cd.Goodbye()
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	return sums, stats
}

// TestBackendsAgree is the DHT acceptance gate: identical verified
// checksums on the in-process and wire backends at 1 and 4 ranks.
func TestBackendsAgree(t *testing.T) {
	const perRank = 512
	for _, n := range []int{1, 2, 4} {
		proc := runProc(t, n, perRank)
		wire, _ := runWire(t, n, perRank)
		for r := 1; r < n; r++ {
			if proc[r] != proc[0] {
				t.Fatalf("n=%d: proc rank %d checksum %x != rank 0 %x", n, r, proc[r], proc[0])
			}
			if wire[r] != wire[0] {
				t.Fatalf("n=%d: wire rank %d checksum %x != rank 0 %x", n, r, wire[r], wire[0])
			}
		}
		if proc[0] != wire[0] {
			t.Fatalf("n=%d: proc checksum %x != wire checksum %x", n, proc[0], wire[0])
		}
	}
}

// TestOverwriteAndEntries pins overwrite semantics: reinserting a key
// replaces its value without growing the table.
func TestOverwriteAndEntries(t *testing.T) {
	core.Run(core.Config{Ranks: 2, SegmentBytes: SegBytes(256)}, func(me *core.Rank) {
		tbl := New(me, 256)
		if me.ID() == 0 {
			for i := 0; i < 50; i++ {
				tbl.Insert(me, keyFor(9, i), 1, nil)
			}
			for i := 0; i < 50; i++ {
				tbl.Insert(me, keyFor(9, i), 2, nil)
			}
		}
		me.Barrier()
		total := core.Reduce(me, tbl.Entries(), func(a, b int64) int64 { return a + b })
		if total != 50 {
			t.Errorf("entries = %d after duplicate inserts, want 50", total)
		}
		for i := 0; i < 50; i += 7 {
			if v, ok := tbl.Lookup(me, keyFor(9, i)).Wait(me); !ok || v != 2 {
				t.Errorf("key %d = (%d,%v), want (2,true) after overwrite", i, v, ok)
			}
		}
		me.Barrier()
	})
}

// TestAggregationServesLookups pins the batched request/response path
// on the wire: many lookups against one owner coalesce, and the wire
// counters show the reply traffic batching too.
func TestAggregationServesLookups(t *testing.T) {
	_, stats := runWire(t, 2, 512)
	for r, st := range stats {
		if st.Counters["agg_batches"] == 0 {
			t.Errorf("rank %d shipped no aggregation batches", r)
		}
	}
}
