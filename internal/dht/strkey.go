package dht

// String-key convenience layer. The table's native key space is u64 —
// that is what the wire format, the shard layout and ReplicaRanks are
// defined over — but external clients (the HTTP gateway) address the
// store by arbitrary strings. StrKey maps a string deterministically
// onto the native space; StrKeys adds a collision check for callers
// that cannot tolerate two distinct strings silently aliasing one
// bucket (a 64-bit hash makes that astronomically unlikely per pair,
// but a front door serving millions of keys should be able to prove
// it, not assume it).

// strKeyOffset/strKeyPrime are the FNV-1a 64-bit parameters. FNV-1a
// is chosen deliberately: a short, dependency-free, byte-order-free
// recurrence whose output for a given string is a wire-format
// constant — the golden values in strkey_test.go pin it forever, so a
// gateway restarted years later (or a different-language client
// implementing the same recurrence) still addresses the same buckets.
const (
	strKeyOffset uint64 = 14695981039346656037
	strKeyPrime  uint64 = 1099511628211
)

// StrKey hashes s onto the table's native u64 key space (FNV-1a).
// Deterministic across processes, platforms and repo versions; the
// same string always routes to the same replicas.
func StrKey(s string) uint64 {
	h := strKeyOffset
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= strKeyPrime
	}
	return h
}

// StrKeys is a collision-checked view of the string key space: Key
// remembers every (hash, string) binding it has issued and panics if
// two distinct strings ever map to one hash, turning a silent aliasing
// bug into a loud one. It is verification mode — the memory cost is
// one map entry per distinct string, so benchmarks and production
// gateways that trust 64-bit dispersion use plain StrKey, while tests
// and verifying runs route through StrKeys.
//
// Not safe for concurrent use; confine one StrKeys to one goroutine
// (the gateway keeps it on the SPMD serve loop).
type StrKeys struct {
	seen map[uint64]string
}

// NewStrKeys returns an empty collision-checked key mapper.
func NewStrKeys() *StrKeys {
	return &StrKeys{seen: make(map[uint64]string)}
}

// Key maps s through StrKey, recording the binding; panics if the hash
// is already bound to a different string.
func (sk *StrKeys) Key(s string) uint64 {
	h := StrKey(s)
	if prev, ok := sk.seen[h]; ok {
		if prev != s {
			panic("dht: string-key collision: " +
				prev + " and " + s + " hash to the same u64 key")
		}
		return h
	}
	sk.seen[h] = s
	return h
}

// Len reports how many distinct strings have been mapped.
func (sk *StrKeys) Len() int { return len(sk.seen) }
