package dht

import (
	"encoding/binary"
	"testing"

	"upcxx/internal/core"
)

// TestReplicaPlacement pins the successor-placement invariants every
// rank relies on to route without metadata: K distinct in-range ranks,
// primary first, consecutive mod n, clamped to the job size.
func TestReplicaPlacement(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		for _, k := range []int{0, 1, 2, 3, n, n + 5} {
			want := k
			if want < 1 {
				want = 1
			}
			if want > n {
				want = n
			}
			for i := 0; i < 200; i++ {
				key := keyFor(i%5, i)
				rs := ReplicaRanks(key, n, k)
				if len(rs) != want {
					t.Fatalf("n=%d k=%d: got %d replicas, want %d", n, k, len(rs), want)
				}
				seen := make(map[int]bool)
				for j, r := range rs {
					if r < 0 || r >= n {
						t.Fatalf("n=%d k=%d: replica %d out of range", n, k, r)
					}
					if seen[r] {
						t.Fatalf("n=%d k=%d key %#x: rank %d holds two of the K copies: %v", n, k, key, r, rs)
					}
					seen[r] = true
					if j > 0 && r != (rs[j-1]+1)%n {
						t.Fatalf("n=%d k=%d: not successor placement: %v", n, k, rs)
					}
				}
			}
		}
	}
}

// TestReplicatedChecksumMatchesOracle: with K=2 fan-out the checksum
// still counts every key exactly once, so it equals the pure
// ExpectedChecksum oracle (and the unreplicated table's checksum).
func TestReplicatedChecksumMatchesOracle(t *testing.T) {
	const n, perRank = 4, 256
	pairs := make(map[uint64]uint64)
	for r := 0; r < n; r++ {
		for i := 0; i < perRank; i++ {
			k := keyFor(r, i)
			pairs[k] = valFor(k)
		}
	}
	want := ExpectedChecksum(pairs)
	sums := make([]uint64, n)
	held := make([]int64, n)
	core.Run(core.Config{Ranks: n, SegmentBytes: SegBytes(DefaultCapacity(2 * perRank))},
		func(me *core.Rank) {
			tbl := NewWithConfig(me, DefaultCapacity(2*perRank), Config{Replicas: 2, ReadRepair: true})
			for i := 0; i < perRank; i++ {
				k := keyFor(me.ID(), i)
				tbl.Insert(me, k, valFor(k), nil)
			}
			me.Barrier()
			for i := 0; i < perRank; i += 17 {
				k := keyFor((me.ID()+1)%n, i)
				if v, ok := tbl.Lookup(me, k).Wait(me); !ok || v != valFor(k) {
					t.Errorf("rank %d: lookup %#x = (%#x,%v), want (%#x,true)", me.ID(), k, v, ok, valFor(k))
				}
			}
			sums[me.ID()] = tbl.Checksum(me)
			held[me.ID()] = tbl.Entries()
		})
	var total int64
	for r := 0; r < n; r++ {
		if sums[r] != want {
			t.Errorf("rank %d: checksum %x, want oracle %x", r, sums[r], want)
		}
		total += held[r]
	}
	// Fan-out really stored K copies: physical occupancy is twice the
	// logical entry count.
	if total != int64(2*len(pairs)) {
		t.Errorf("physical entries = %d, want %d (K=2 copies of %d keys)", total, 2*len(pairs), len(pairs))
	}
}

// insertPrimaryOnly plants (key, val) at the primary replica only —
// the partial-write state read-repair exists to heal.
func insertPrimaryOnly(me *core.Rank, tbl *Table, key, val uint64) {
	owner := ReplicaRanks(key, me.Ranks(), tbl.k)[0]
	if owner == me.ID() {
		tbl.put(key, val)
		return
	}
	var p [16]byte
	binary.LittleEndian.PutUint64(p[0:], key)
	binary.LittleEndian.PutUint64(p[8:], val)
	core.AggSend(me, owner, hInsert, p[:], nil)
}

// TestReadRepairConvergence: keys planted on their primary replica only
// are healed onto every replica by lookups, and the table checksum —
// which counts each key once — is identical before and after repair
// (and equal to the oracle throughout).
func TestReadRepairConvergence(t *testing.T) {
	const n, perRank = 4, 128
	pairs := make(map[uint64]uint64)
	keys := make([]uint64, 0, n*perRank)
	for r := 0; r < n; r++ {
		for i := 0; i < perRank; i++ {
			k := keyFor(r, i)
			pairs[k] = valFor(k)
			keys = append(keys, k)
		}
	}
	want := ExpectedChecksum(pairs)
	core.Run(core.Config{Ranks: n, SegmentBytes: SegBytes(DefaultCapacity(2 * perRank))},
		func(me *core.Rank) {
			tbl := NewWithConfig(me, DefaultCapacity(2*perRank), Config{Replicas: 2, ReadRepair: true})
			for i := 0; i < perRank; i++ {
				k := keyFor(me.ID(), i)
				insertPrimaryOnly(me, tbl, k, valFor(k))
			}
			me.Barrier()
			if got := tbl.Checksum(me); got != want {
				t.Errorf("rank %d: pre-repair checksum %x, want %x", me.ID(), got, want)
			}
			// Every rank reads every key; each lookup consults both
			// replicas and re-inserts into the one that missed the write.
			pend := make([]*Lookup, 0, 64)
			drain := func() {
				for _, l := range pend {
					if v, ok := l.Wait(me); !ok || v != pairs[l.key] {
						t.Errorf("rank %d: lookup %#x = (%#x,%v), want (%#x,true)",
							me.ID(), l.key, v, ok, pairs[l.key])
					}
				}
				pend = pend[:0]
			}
			for _, k := range keys {
				pend = append(pend, tbl.Lookup(me, k))
				if len(pend) == cap(pend) {
					drain()
				}
			}
			drain()
			me.Barrier()
			me.Barrier() // drain handler-issued repair traffic
			// Convergence: every replica of every key now holds it.
			for _, k := range keys {
				for _, r := range ReplicaRanks(k, n, tbl.k) {
					if r != me.ID() {
						continue
					}
					if v, ok := tbl.get(k); !ok || v != pairs[k] {
						t.Errorf("rank %d: replica of %#x not repaired: (%#x,%v)", me.ID(), k, v, ok)
					}
				}
			}
			if got := tbl.Checksum(me); got != want {
				t.Errorf("rank %d: post-repair checksum %x, want %x", me.ID(), got, want)
			}
			if tbl.Counters()["dht_repairs"] == 0 && me.ID() == 0 {
				t.Errorf("rank 0 issued no repairs despite primary-only seeding")
			}
		})
}
