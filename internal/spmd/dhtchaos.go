package spmd

import (
	"fmt"
	"time"

	"upcxx/internal/core"
	"upcxx/internal/dht"
)

// runDHTChaos is the chaos-mode acceptance program: a K=2 replicated,
// read-repairing DHT that survives the death of any single rank and
// proves it by verification, not by luck. Every rank inserts `scale`
// keys (fanned out to both replicas), the fault plan is armed, and
// then every rank repeatedly verifies the ENTIRE key set — all ranks'
// keys, not just its own — by lookup until the plan's horizon plus
// detection slack has passed. Lookups issued across a death re-route
// to the surviving replica and heal it, so every round must see every
// key with its exact value.
//
// Survivors return dht.ExpectedChecksum over the full logical
// contents — computed locally, with no collective, because the value
// has already been verified key by key. That makes the reported
// checksum of a chaos run byte-identical to the fault-free run's on
// either backend, which is exactly what the chaos CI job asserts. A
// rank whose scripted death has passed (in-process backend only; a
// wire process really exits) takes the ghost path: stop work, report
// 0, meet the survivors at the final barrier.
func runDHTChaos(me *core.Rank, scale int) uint64 {
	n := me.Ranks()
	k := 1
	if n > 1 {
		k = 2
	}
	tbl := dht.NewWithConfig(me, dht.DefaultCapacity(2*scale),
		dht.Config{Replicas: k, ReadRepair: true})

	key := func(rank, i int) uint64 {
		return mix(uint64(rank)<<32+uint64(i))<<1 | 1
	}
	val := func(k uint64) uint64 { return mix(k ^ 0x5851F42D4C957F2D) }

	// The full logical contents: every survivor's verification oracle.
	pairs := make(map[uint64]uint64, n*scale)
	keys := make([]uint64, 0, n*scale)
	for r := 0; r < n; r++ {
		for i := 0; i < scale; i++ {
			k := key(r, i)
			pairs[k] = val(k)
			keys = append(keys, k)
		}
	}
	for i := 0; i < scale; i++ {
		k := key(me.ID(), i)
		tbl.Insert(me, k, val(k), nil)
	}
	me.Barrier()

	core.ChaosArm(me)
	horizon := core.ChaosHorizon(me)
	deadline := time.Now().Add(horizon + 600*time.Millisecond)
	if horizon == 0 {
		// No time-triggered faults scripted: one verification round
		// proves the table; spinning until a slack deadline buys nothing.
		deadline = time.Now()
	}

	ghost := false
	pend := make([]*dht.Lookup, 0, 128)
	drain := func() {
		for _, l := range pend {
			k := l.Key()
			if v, ok := l.Wait(me); !ok || v != pairs[k] {
				panic(fmt.Sprintf("spmd: dhtchaos: key %#x = (%#x,%v), want (%#x,true)",
					k, v, ok, pairs[k]))
			}
		}
		pend = pend[:0]
	}
	verify := func() {
		for _, k := range keys {
			pend = append(pend, tbl.Lookup(me, k))
			if len(pend) == cap(pend) {
				drain()
				if core.ChaosKilled(me) {
					ghost = true
					return
				}
			}
		}
		drain()
	}
	for {
		if core.ChaosKilled(me) {
			ghost = true
		}
		if ghost {
			break
		}
		verify()
		if ghost || time.Now().After(deadline) {
			break
		}
	}

	if ghost {
		me.Barrier() // meet the survivors' final barrier, then vanish
		return 0
	}
	me.Barrier()
	return dht.ExpectedChecksum(pairs)
}
