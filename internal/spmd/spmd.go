// Package spmd is the registry of named SPMD programs the upcxx-run
// launcher can execute, on either conduit backend: in-process (one
// goroutine per rank, the virtual-time engine) or wire (one OS process
// per rank over the TCP conduit). Every program sticks to the
// serializable operation vocabulary — one-sided reads/writes, AtomicXor,
// remote allocation, barriers, collectives, locks — so the same body
// runs unmodified on both backends, and every program returns a
// deterministic checksum for a given (ranks, scale) pair, which is how
// CI proves the two backends compute identical answers.
package spmd

import (
	"fmt"
	"strings"

	"upcxx/internal/bench/gups"
	"upcxx/internal/core"
	"upcxx/internal/dht"
)

// Prog is one registered SPMD program.
type Prog struct {
	Name string
	Desc string
	// DefaultScale is the size knob used when the launcher passes 0.
	DefaultScale int
	// SegBytes sizes each rank's shared segment for the given run.
	SegBytes func(ranks, scale int) int
	// Run executes the program body on one rank and returns this run's
	// checksum (identical on every rank). It must use only wire-capable
	// operations and must panic on verification failure.
	Run func(me *core.Rank, scale int) uint64
	// Resilient asks the launcher for a fault-tolerant job (heartbeats,
	// typed rank-death failures) even without an injected fault plan:
	// the program is written to survive rank death.
	Resilient bool
	// Gateway marks a program that is only the compute half of a
	// launcher-assembled gateway job (upcxx-run -gateway): its ranks
	// park until a gateway rank's drain broadcast, so running it
	// standalone would hang forever. Standalone sweeps and plain
	// launches must skip or reject it.
	Gateway bool
}

// Register adds a program to the registry. Packages outside spmd (the
// service plane, benchmarks) register their programs through this from
// an init function, keeping the dependency arrow pointing at spmd.
func Register(p Prog) {
	for _, q := range registry {
		if q.Name == p.Name {
			panic("spmd: duplicate program " + p.Name)
		}
	}
	registry = append(registry, p)
}

var registry = []Prog{
	{
		Name:         "gups",
		Desc:         "HPCC Random Access: atomic-xor updates to a cyclic shared table, with involution verification (paper §V-A)",
		DefaultScale: 14, // log2 of the table size
		SegBytes: func(ranks, scale int) int {
			return (1<<scale)/ranks*8 + (1 << 17)
		},
		Run: func(me *core.Rank, scale int) uint64 {
			updates := (1 << scale) / 4 / me.Ranks()
			if updates < 64 {
				updates = 64
			}
			sum, errs := gups.SPMD(me, scale, updates)
			if errs != 0 {
				panic(fmt.Sprintf("spmd: gups verification failed: %d mismatches", errs))
			}
			return sum
		},
	},
	{
		Name:         "ring",
		Desc:         "neighbor-ring walkthrough: remote allocation, one-sided slices, async copy with events, a global lock, shared vars, collectives",
		DefaultScale: 256, // elements per neighbor block
		SegBytes: func(ranks, scale int) int {
			return scale*8*4 + (1 << 17)
		},
		Run: ring,
	},
	{
		Name:         "dht",
		Desc:         "sharded distributed hash table over aggregated active messages: batched inserts, request/response lookups, owner-computes checksum",
		DefaultScale: 4096, // inserts per rank
		SegBytes: func(ranks, scale int) int {
			return dht.SegBytes(dht.DefaultCapacity(scale))
		},
		Run: runDHT,
	},
	{
		Name:         "dhtchaos",
		Desc:         "replicated DHT under rank death: K=2 successor replication, read-repair lookups, survivors verify the full key set and report the fault-free checksum",
		DefaultScale: 512, // inserts per rank
		SegBytes: func(ranks, scale int) int {
			return dht.SegBytes(dht.DefaultCapacity(2 * scale))
		},
		Run:       runDHTChaos,
		Resilient: true,
	},
	{
		Name:         "pipeline",
		Desc:         "futures-first overlap: per-rank batches of multi-hop ReadAsync→Then→AggPut chains under one Finish, verified against a pure fold",
		DefaultScale: 256, // chains per rank
		SegBytes: func(ranks, scale int) int {
			return ranks*scale*8 + scale*8 + (1 << 17)
		},
		Run: pipeline,
	},
	{
		Name:         "taskgraph",
		Desc:         "event-driven task DAG over registered-function RPC: async/async_after with events, futures, distributed finish over RPC-spawned chains (paper §III-G Listing 1)",
		DefaultScale: 12, // spawn-chain depth
		SegBytes: func(ranks, scale int) int {
			return 1 << 17
		},
		Run: taskgraph,
	},
}

// runDHT is the dht program body: every rank inserts `scale` keys with
// values derived from the keys, verifies a lookup sample (hits and a
// guaranteed miss — inserted keys are all odd), and folds the table
// into the backend-independent checksum.
func runDHT(me *core.Rank, scale int) uint64 {
	tbl := dht.New(me, dht.DefaultCapacity(scale))
	key := func(rank, i int) uint64 {
		return mix(uint64(rank)<<32+uint64(i))<<1 | 1
	}
	val := func(k uint64) uint64 { return mix(k ^ 0x5851F42D4C957F2D) }
	for i := 0; i < scale; i++ {
		k := key(me.ID(), i)
		tbl.Insert(me, k, val(k), nil)
	}
	me.Barrier()

	sample := scale
	if sample > 256 {
		sample = 256
	}
	step := scale / sample
	pend := make([]*dht.Lookup, sample)
	for s := 0; s < sample; s++ {
		pend[s] = tbl.Lookup(me, key(me.ID(), s*step))
	}
	miss := tbl.Lookup(me, uint64(2+4*me.ID())) // even keys are never inserted
	for s, l := range pend {
		k := key(me.ID(), s*step)
		if v, ok := l.Wait(me); !ok || v != val(k) {
			panic(fmt.Sprintf("spmd: dht lookup of %#x = (%#x,%v), want (%#x,true)", k, v, ok, val(k)))
		}
	}
	if _, ok := miss.Wait(me); ok {
		panic("spmd: dht lookup found a never-inserted key")
	}
	return tbl.Checksum(me)
}

// Progs returns the registered programs.
func Progs() []Prog {
	out := make([]Prog, len(registry))
	copy(out, registry)
	return out
}

// Lookup resolves a program by name (case-insensitive).
func Lookup(name string) (Prog, bool) {
	name = strings.ToLower(strings.TrimSpace(name))
	for _, p := range registry {
		if p.Name == name {
			return p, true
		}
	}
	return Prog{}, false
}

// Names returns every program name, for usage strings.
func Names() []string {
	names := make([]string, len(registry))
	for i, p := range registry {
		names[i] = p.Name
	}
	return names
}

// mix derives test patterns and folds checksums (gups owns the shared
// splitmix64 finalizer; a divergent copy here would change checksums on
// only one backend path).
func mix(z uint64) uint64 { return gups.Mix64(z) }

// ring is the example program: each rank allocates a block on its right
// neighbor (remote allocation), fills it one-sided, and publishes the
// pointer through a shared directory; everyone then reads the block that
// landed in its own segment, async-copies its right neighbor's block
// home under an event, bumps a shared counter under a global lock, and
// folds everything into one checksum with collectives.
func ring(me *core.Rank, scale int) uint64 {
	n := me.Ranks()
	right := (me.ID() + 1) % n

	// Remote allocation + one-sided write: a block in the right
	// neighbor's segment, holding values derived from our rank.
	blk := core.Allocate[uint64](me, right, scale)
	vals := make([]uint64, scale)
	for i := range vals {
		vals[i] = mix(uint64(me.ID())<<32 + uint64(i))
	}
	core.WriteSlice(me, blk, vals)

	// Publish pointers through a shared directory: dir[i] is the block
	// living in rank i's segment (global pointers are POD, so they ship
	// over the wire like any other shared value).
	dir := core.NewSharedArray[core.GlobalPtr[uint64]](me, n, 1)
	dir.Set(me, right, blk)
	me.Barrier()

	// The block in our own segment was written by our left neighbor.
	var sum uint64
	for i, v := range core.LocalSlice(me, dir.Get(me, me.ID()), scale) {
		sum ^= mix(v + uint64(i))
	}

	// Async-copy the right neighbor's block into our segment, completion
	// observed through an event.
	dst := core.Allocate[uint64](me, me.ID(), scale)
	ev := core.NewEvent()
	core.AsyncCopy(me, dir.Get(me, right), dst, scale, ev)
	ev.Wait(me)
	for i, v := range core.LocalSlice(me, dst, scale) {
		sum ^= mix(v ^ uint64(i)<<16)
	}

	// Global lock + shared counter: every rank adds its (id+1) under
	// mutual exclusion; the total is n(n+1)/2.
	var lk core.Lock
	if me.ID() == 0 {
		lk = core.NewLock(me)
	}
	lk = core.TeamBroadcast(me.World(), lk, 0)
	ctr := core.NewSharedVar[uint64](me)
	me.Barrier()
	lk.Acquire(me)
	ctr.Set(me, ctr.Get(me)+uint64(me.ID()+1))
	lk.Release(me)
	me.Barrier()
	total := ctr.Get(me)
	if want := uint64(n) * uint64(n+1) / 2; total != want {
		panic(fmt.Sprintf("spmd: ring lock counter = %d, want %d", total, want))
	}

	// Fold per-rank sums with collectives: an exclusive scan seasons
	// each contribution, a slice reduction and a final allreduce agree
	// on one checksum everywhere.
	scan := core.TeamExclusiveScan(me.World(), uint64(me.ID()+1),
		func(a, b uint64) uint64 { return a + b }, 0)
	folded := core.TeamReduceSlices(me.World(), []uint64{sum, mix(scan ^ total)},
		func(a, b uint64) uint64 { return a ^ b }, 0)
	var rootFold uint64
	if me.ID() == 0 {
		rootFold = mix(folded[0] ^ folded[1])
	}
	rootFold = core.TeamBroadcast(me.World(), rootFold, 0)
	sum = core.TeamReduce(me.World(), sum^rootFold, func(a, b uint64) uint64 { return a ^ b })

	// Remote free closes the loop on dynamic global memory management.
	if err := core.Deallocate(me, blk); err != nil {
		panic(err)
	}
	me.Barrier()
	return sum
}
