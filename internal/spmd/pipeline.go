package spmd

import (
	"fmt"

	"upcxx/internal/core"
)

// The pipeline program is the acceptance gate of the futures-first
// completion model (future.go): every rank drives `scale` independent
// multi-hop Read→Then→AggPut chains, all overlapped under one Finish,
// and rank 0 verifies every chain's result against a pure reference
// fold. Each hop is a non-blocking ReadAsync of a cell owned by a
// different rank; its Then continuation folds the value into the
// chain's accumulator and issues the next hop from inside progress
// dispatch — the continuation-issues-the-next-async idiom — and the
// final continuation deposits the accumulator through the aggregation
// layer. The surrounding Finish must therefore wait for continuations
// attached after its body returned, transitively, on both conduit
// backends; a single dropped hop, wrong-order fold, or lost AggPut
// breaks the checksum.

// pipeHops is the chain depth: each chain reads from this many
// distinct neighbor ranks (wrapping) before depositing its result.
const pipeHops = 3

// pipeSrc is the value rank r publishes in source cell j.
func pipeSrc(r, j int) uint64 { return mix(uint64(r)<<32 + uint64(j)) }

// pipeSeed is chain (r, j)'s starting accumulator.
func pipeSeed(r, j int) uint64 { return mix(uint64(r)<<16 ^ uint64(j) ^ 0xC0FFEE) }

// pipeFold is one hop's fold of the value read into the accumulator.
func pipeFold(acc, v uint64, hop int) uint64 { return mix(acc ^ (v + uint64(hop+1))) }

// pipeExpect is the pure reference: chain (r, j)'s final accumulator.
func pipeExpect(n, r, j int) uint64 {
	acc := pipeSeed(r, j)
	for h := 0; h < pipeHops; h++ {
		acc = pipeFold(acc, pipeSrc((r+1+h)%n, j), h)
	}
	return acc
}

// pipeline is the program body. scale is the number of chains per rank.
func pipeline(me *core.Rank, scale int) uint64 {
	n := me.Ranks()

	// Source table: scale cells in this rank's segment, published
	// through an allgathered pointer directory (global pointers are
	// POD and travel over the wire like any shared value).
	src := core.Allocate[uint64](me, me.ID(), scale)
	for j := 0; j < scale; j++ {
		core.Write(me, src.Add(j), pipeSrc(me.ID(), j))
	}
	dir := core.TeamAllGather(me.World(), src)

	// Result area: n*scale cells on rank 0, one per chain.
	var res core.GlobalPtr[uint64]
	if me.ID() == 0 {
		res = core.Allocate[uint64](me, 0, n*scale)
		zero := make([]uint64, n*scale)
		core.WriteSlice(me, res, zero)
	}
	res = core.TeamBroadcast(me.World(), res, 0)
	me.Barrier()

	// All chains of this rank, overlapped under one Finish: hop h of
	// chain j reads dir[(me+1+h)%n].Add(j); the last continuation
	// AggPuts the accumulator into the chain's result cell. The Finish
	// returns only when every hop of every chain has run and every
	// deposit has been acknowledged.
	core.Finish(me, func() {
		for j := 0; j < scale; j++ {
			j := j
			var hop func(h int, acc uint64)
			hop = func(h int, acc uint64) {
				if h == pipeHops {
					core.AggPut(me, res.Add(me.ID()*scale+j), acc, nil)
					return
				}
				f := core.ReadAsync(me, dir[(me.ID()+1+h)%n].Add(j))
				core.Then(f, func(v uint64) struct{} {
					hop(h+1, pipeFold(acc, v, h))
					return struct{}{}
				})
			}
			hop(0, pipeSeed(me.ID(), j))
		}
	})
	me.Barrier()

	// Rank 0 verifies every chain against the reference and folds the
	// checksum; everyone agrees through the broadcast.
	var sum uint64
	if me.ID() == 0 {
		got := make([]uint64, n*scale)
		core.ReadSlice(me, res, got)
		for r := 0; r < n; r++ {
			for j := 0; j < scale; j++ {
				want := pipeExpect(n, r, j)
				if got[r*scale+j] != want {
					panic(fmt.Sprintf("spmd: pipeline chain (rank %d, #%d) = %#x, want %#x",
						r, j, got[r*scale+j], want))
				}
				sum ^= mix(want + uint64(r*scale+j))
			}
		}
	}
	me.Barrier()
	return core.TeamBroadcast(me.World(), sum, 0)
}
