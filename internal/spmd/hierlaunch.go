package spmd

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"

	"upcxx/internal/core"
	"upcxx/internal/gasnet"
	"upcxx/internal/segment"
	"upcxx/internal/transport"
)

// Hierarchical (two-level) launch: ranks are packed onto virtual hosts
// `procs-per-node` at a time, co-located ranks share an mmap'd segment
// file and talk through lock-free shm rings, and only cross-host
// traffic touches TCP. The rendezvous protocol is unchanged — the
// topology is a pure function of (rank, n, ppn), computed identically
// by every process, so no extra wire exchange is needed; what the
// rendezvous DOES provide is the ordering guarantee that every
// co-located rank has created its segment file before anyone attaches.

// HierNodes returns the host index of every rank under a
// procs-per-node packing: rank r lives on host r/ppn. This is the one
// topology function shared by all backends (upcxx-run passes it to the
// in-process backend as Config.Nodes), which is what makes LocalTeam
// membership identical across proc, tcp and hier runs of the same
// shape.
func HierNodes(n, ppn int) []int {
	if ppn < 1 || ppn > n {
		panic(fmt.Sprintf("spmd: procs-per-node %d out of range for %d ranks", ppn, n))
	}
	nodes := make([]int, n)
	for r := range nodes {
		nodes[r] = r / ppn
	}
	return nodes
}

// hierSetup builds one rank's two-level conduit stack over an already
// listening transport endpoint: create our shm file under
// dir/node<k>/, rendezvous (the barrier that guarantees every
// co-located file exists), connect the TCP mesh, attach the peers'
// files, and compose. The rank's registered segment is a window of the
// mapped file, so co-located peers reach it with plain loads and
// stores.
func hierSetup(tep *transport.TCPEndpoint, rendezvous string, rank, n, ppn, segBytes int, dir string) (*gasnet.HierConduit, *segment.Segment, error) {
	nodes := HierNodes(n, ppn)
	node := nodes[rank]
	slot := rank - node*ppn
	locals := ppn
	if rest := n - node*ppn; rest < locals {
		locals = rest
	}
	nodeDir := filepath.Join(dir, fmt.Sprintf("node%d", node))
	if err := os.MkdirAll(nodeDir, 0o777); err != nil {
		return nil, nil, err
	}
	shm, err := gasnet.CreateShm(nodeDir, slot, locals, gasnet.DefaultShmRingBytes, segBytes)
	if err != nil {
		return nil, nil, err
	}
	addrs, err := DialRendezvous(rendezvous, rank, n, tep.Addr())
	if err != nil {
		shm.Close()
		return nil, nil, err
	}
	if err := tep.Connect(addrs); err != nil {
		shm.Close()
		return nil, nil, err
	}
	if err := shm.Attach(); err != nil {
		shm.Close()
		return nil, nil, err
	}
	seg := segment.NewExtern(shm.Seg())
	wire := gasnet.NewWireConduit(tep, seg)
	return gasnet.NewHierConduit(wire, shm, nodes), seg, nil
}

// RunHierChild is one OS process's half of a hierarchical job: listen,
// create our shm segment file, rendezvous, connect, attach, and run
// main as rank `rank` of n over the composed conduit. dir is the
// job-wide shm directory (the launcher creates and removes it).
func RunHierChild(rendezvous string, rank, n, ppn, segBytes int, dir string, cfg core.Config, main func(me *core.Rank)) (core.Stats, error) {
	tep, err := transport.ListenTCP(rank, n, "127.0.0.1:0")
	if err != nil {
		return core.Stats{}, err
	}
	if cfg.Fault != nil {
		tep.SetFault(cfg.Fault.ForRank(rank))
	}
	cd, seg, err := hierSetup(tep, rendezvous, rank, n, ppn, segBytes, dir)
	if err != nil {
		tep.Close()
		return core.Stats{}, err
	}
	defer cd.Close()
	st := core.RunWire(cfg, cd, seg, main)
	cd.Goodbye()
	return st, nil
}

// RunHierLocal runs an n-rank hierarchical job inside ONE process, one
// goroutine per rank, sharing real mmap'd files in a temp directory —
// same data path as the multi-process launch (the OS maps the same
// physical pages at n virtual addresses), so it exercises the shm
// rings, the leader election and the two-plane wait loop without
// subprocess management.
func RunHierLocal(n, ppn, segBytes int, cfg core.Config, main func(me *core.Rank)) ([]core.Stats, error) {
	dir, err := os.MkdirTemp("", "upcxx-shm-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	rdvErr := make(chan error, 1)
	go func() { rdvErr <- Rendezvous(ln, n) }()

	eps := make([]*transport.TCPEndpoint, n)
	for i := range eps {
		tep, err := transport.ListenTCP(i, n, "127.0.0.1:0")
		if err != nil {
			for _, e := range eps[:i] {
				e.Close()
			}
			return nil, err
		}
		eps[i] = tep
	}

	stats := make([]core.Stats, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if cfg.Fault != nil {
				eps[i].SetFault(cfg.Fault.ForRank(i))
			}
			cd, seg, err := hierSetup(eps[i], ln.Addr().String(), i, n, ppn, segBytes, dir)
			if err != nil {
				errs[i] = err
				eps[i].Close()
				return
			}
			defer cd.Close()
			stats[i] = core.RunWire(cfg, cd, seg, main)
			cd.Goodbye()
		}(i)
	}
	wg.Wait()
	if err := <-rdvErr; err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("spmd: rank %d: %w", i, err)
		}
	}
	return stats, nil
}
