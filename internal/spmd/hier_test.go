package spmd

import (
	"fmt"
	"testing"

	"upcxx/internal/core"
)

// runHierChecksum executes a registered program over the hierarchical
// conduit (in one process: real mmap'd files, real TCP between hosts)
// and returns the agreed checksum.
func runHierChecksum(t *testing.T, p Prog, n, ppn, scale int) uint64 {
	t.Helper()
	sums := make([]uint64, n)
	_, err := RunHierLocal(n, ppn, p.SegBytes(n, scale), core.Config{}, func(me *core.Rank) {
		sums[me.ID()] = p.Run(me, scale)
	})
	if err != nil {
		t.Fatalf("hier %s n=%d ppn=%d: %v", p.Name, n, ppn, err)
	}
	for r, s := range sums {
		if s != sums[0] {
			t.Fatalf("hier %s n=%d ppn=%d: rank %d checksum %x != rank 0 %x", p.Name, n, ppn, r, s, sums[0])
		}
	}
	return sums[0]
}

// runProcTopoChecksum is runProcChecksum with an explicit topology, for
// comparing against hier runs of the same shape.
func runProcTopoChecksum(t *testing.T, p Prog, n, ppn, scale int) uint64 {
	t.Helper()
	sums := make([]uint64, n)
	core.Run(core.Config{Ranks: n, SegmentBytes: p.SegBytes(n, scale), Nodes: HierNodes(n, ppn)}, func(me *core.Rank) {
		sums[me.ID()] = p.Run(me, scale)
	})
	for r, s := range sums {
		if s != sums[0] {
			t.Fatalf("proc %s n=%d ppn=%d: rank %d checksum %x != rank 0 %x", p.Name, n, ppn, r, s, sums[0])
		}
	}
	return sums[0]
}

// TestHierBackendAgrees extends the backend-agreement gate to the
// two-level conduit: at every (ranks, procs-per-node) shape, the
// hierarchical run must reproduce the in-process checksum computed
// under the identical topology. The teams program runs the SplitTeam
// subset collectives at 1/2/4/8 ranks; ring and gups sweep the
// one-sided and atomic planes.
func TestHierBackendAgrees(t *testing.T) {
	cases := []struct {
		prog  string
		scale int
		n     []int
	}{
		{"teams", 0, []int{1, 2, 4, 8}},
		{"ring", 64, []int{2, 4}},
		{"gups", 10, []int{4}},
		{"dht", 384, []int{4}},
	}
	for _, tc := range cases {
		p, ok := Lookup(tc.prog)
		if !ok {
			t.Fatalf("program %q not registered", tc.prog)
		}
		scale := tc.scale
		if scale == 0 {
			scale = p.DefaultScale
		}
		for _, n := range tc.n {
			ppns := []int{1}
			if n >= 2 {
				ppns = append(ppns, 2)
			}
			if n > 2 {
				ppns = append(ppns, n)
			}
			for _, ppn := range ppns {
				t.Run(fmt.Sprintf("%s/n=%d/ppn=%d", tc.prog, n, ppn), func(t *testing.T) {
					proc := runProcTopoChecksum(t, p, n, ppn, scale)
					hier := runHierChecksum(t, p, n, ppn, scale)
					if proc != hier {
						t.Fatalf("checksum mismatch: proc %016x, hier %016x", proc, hier)
					}
					if ppn == 1 {
						// One rank per host degenerates to the flat wire
						// topology; the tcp backend must agree too.
						wire := runWireChecksum(t, p, n, scale)
						if wire != hier {
							t.Fatalf("checksum mismatch: tcp %016x, hier %016x", wire, hier)
						}
					}
				})
			}
		}
	}
}

// hierCounterProbe is a put/get workload between two CO-LOCATED ranks;
// the returned stats prove which plane carried the bytes.
func hierCounterProbe(me *core.Rank) {
	partner := me.ID() ^ 1
	blk := core.Allocate[uint64](me, partner, 128)
	vals := make([]uint64, 128)
	for i := range vals {
		vals[i] = uint64(me.ID())<<32 + uint64(i)
	}
	core.WriteSlice(me, blk, vals)
	me.Barrier()
	back := make([]uint64, 128)
	core.ReadSlice(me, blk, back)
	for i, v := range back {
		if v != vals[i] {
			panic(fmt.Sprintf("spmd: hier probe readback[%d] = %#x, want %#x", i, v, vals[i]))
		}
	}
	me.Barrier()
}

// TestHierShmBypassesWire is the locality acceptance test: the same
// put/get workload between two co-located ranks moves ZERO put/get
// frames on the hierarchical conduit (the bytes go through the mmap'd
// segment) but a nonzero number on pure TCP.
func TestHierShmBypassesWire(t *testing.T) {
	const n = 2
	hier, err := RunHierLocal(n, n, 1<<17, core.Config{}, hierCounterProbe)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := RunWireLocal(n, 1<<17, core.Config{}, hierCounterProbe)
	if err != nil {
		t.Fatal(err)
	}
	for r, st := range hier {
		for _, key := range []string{"wire_tx_frames_put", "wire_tx_frames_get", "wire_tx_frames_alloc"} {
			if v := st.Counters[key]; v != 0 {
				t.Errorf("hier rank %d: %s = %v, want 0 (co-located ops must ride shm)", r, key, v)
			}
		}
		if st.Counters["shm_tx_msgs"] == 0 && r != 0 {
			// Rank 1 allocates on rank 0 over the shm control plane.
			t.Errorf("hier rank %d: no shm traffic at all: %v", r, st.Counters)
		}
	}
	var wirePuts float64
	for _, st := range wire {
		wirePuts += st.Counters["wire_tx_frames_put"]
	}
	if wirePuts == 0 {
		t.Error("tcp run moved zero put frames; the probe no longer measures anything")
	}
}
