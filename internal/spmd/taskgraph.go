package spmd

import (
	"fmt"

	"upcxx/internal/core"
	"upcxx/internal/rpc"
)

// The taskgraph program ports examples/taskgraph — the paper's
// Listing 1 / Figure 1 event-driven task DAG — onto the registered-
// function invocation layer, so the same dependency graph runs over
// both conduit backends: async with signal events, async_after
// dependencies, futures carrying reply payloads, and distributed
// finish over chains of RPCs that spawn RPCs on other ranks. Every
// task deposits a placement-tagged mark in rank 0's segment through
// the aggregation layer; rank 0 verifies the folds against a pure
// reference computation and panics on any mismatch, so the printed
// checksum certifies that every task ran, ran on the intended rank,
// and was waited for correctly.
//
// Tasks are registered at package init, per the registry's SPMD
// discipline (same names, same order, every process).
var (
	tgMark  core.Task // [cellRank][cellOff][val]: xor val into the cell
	tgValue core.Task // [seed]: reply [mix(seed ^ rank+1)]
	tgSpawn core.Task // [cellRank][cellOff][depth][salt]: mark, then spawn depth-1 on the next rank
)

func init() {
	tgMark = core.RegisterTask("spmd.taskgraph.mark", func(me *core.Rank, from int, args []byte) []byte {
		cellRank, rest := rpc.U64(args)
		cellOff, rest := rpc.U64(rest)
		val, _ := rpc.U64(rest)
		core.AggXor64(me, core.PtrAt[uint64](int(cellRank), cellOff), val, nil)
		return nil
	})
	tgValue = core.RegisterTask("spmd.taskgraph.value", func(me *core.Rank, from int, args []byte) []byte {
		seed, _ := rpc.U64(args)
		return rpc.U64s(tgReply(seed, me.ID()))
	})
	tgSpawn = core.RegisterTask("spmd.taskgraph.spawn", func(me *core.Rank, from int, args []byte) []byte {
		cellRank, rest := rpc.U64(args)
		cellOff, rest := rpc.U64(rest)
		depth, rest := rpc.U64(rest)
		salt, _ := rpc.U64(rest)
		core.AggXor64(me, core.PtrAt[uint64](int(cellRank), cellOff),
			tgChainMark(salt, depth, me.ID()), nil)
		if depth > 0 {
			next := (me.ID() + 1) % me.Ranks()
			core.AsyncTask(me, core.On(next), tgSpawn,
				rpc.U64s(cellRank, cellOff, depth-1, salt))
		}
		return nil
	})
}

// tgDagMark is the mark DAG task i deposits when it executes on rank.
func tgDagMark(i int, rank int) uint64 {
	return mix(0xDA6<<20 + uint64(i)<<8 + uint64(rank+1))
}

// tgChainMark is the mark a chain hop deposits: tagged with the
// chain's salt, the remaining depth, and the executing rank, so a hop
// landing on the wrong rank breaks the fold.
func tgChainMark(salt, depth uint64, rank int) uint64 {
	return mix(salt<<24 + depth<<8 + uint64(rank+1))
}

// tgReply is the value task's deterministic reply.
func tgReply(seed uint64, rank int) uint64 {
	return mix(seed ^ 0xF00D ^ uint64(rank+1))
}

// tgExpectChain folds the marks of one spawn chain: rooted on
// startRank with the given depth, hopping to the next rank each level.
func tgExpectChain(n, startRank int, depth, salt uint64) uint64 {
	var sum uint64
	r := startRank
	for d := depth; ; d-- {
		sum ^= tgChainMark(salt, d, r)
		if d == 0 {
			return sum
		}
		r = (r + 1) % n
	}
}

// taskgraph is the program body. Rank 0 drives; the other ranks
// proceed to the barrier, where they execute incoming tasks while
// waiting (the runtime's progress rule).
func taskgraph(me *core.Rank, scale int) uint64 {
	n := me.Ranks()
	depth := uint64(scale)

	var dagCell, chainCell core.GlobalPtr[uint64]
	if me.ID() == 0 {
		dagCell = core.Allocate[uint64](me, 0, 1)
		chainCell = core.Allocate[uint64](me, 0, 1)
		core.Write(me, dagCell, 0)
		core.Write(me, chainCell, 0)
	}
	me.Barrier()

	var sum uint64
	if me.ID() == 0 {
		cellArgs := func(p core.GlobalPtr[uint64]) []byte {
			return rpc.U64s(uint64(p.Where()), p.Offset())
		}
		mark := func(i int) core.Place { return core.On(i % n) }

		// Listing 1, over registered tasks: the t1..t6 DAG wired with
		// events, every task depositing its placement-tagged mark.
		var expDag uint64
		launch := func(i int, opts ...core.AsyncOpt) {
			expDag ^= tgDagMark(i, i%n)
			core.AsyncTask(me, mark(i), tgMark,
				append(cellArgs(dagCell), rpc.U64s(tgDagMark(i, i%n))...), opts...)
		}
		core.Finish(me, func() {
			e1, e2, e3 := core.NewEvent(), core.NewEvent(), core.NewEvent()
			launch(1, core.Signal(e1))
			launch(2, core.Signal(e1))
			launch(3, core.After(e1), core.Signal(e2))
			launch(4, core.Signal(e2))
			launch(5, core.After(e2), core.Signal(e3))
			launch(6, core.After(e2), core.Signal(e3))
			e3.Wait(me)
		})
		if got := core.Read(me, dagCell); got != expDag {
			panic(fmt.Sprintf("spmd: taskgraph DAG fold = %#x, want %#x", got, expDag))
		}

		// Futures: one value task per rank, replies folded in rank
		// order and each verified against the reference.
		futs := make([]*core.Future[[]byte], n)
		for r := 0; r < n; r++ {
			futs[r] = core.AsyncTaskFuture(me, r, tgValue, rpc.U64s(depth))
		}
		var vsum uint64
		for r, f := range futs {
			got, _ := rpc.U64(f.Get())
			if want := tgReply(depth, r); got != want {
				panic(fmt.Sprintf("spmd: taskgraph reply from rank %d = %#x, want %#x", r, got, want))
			}
			vsum = mix(vsum ^ got)
		}

		// Distributed finish over RPC-spawns-RPC chains: one chain
		// rooted on every rank, each hop spawning the next hop on the
		// next rank; half the roots launch from a nested scope. The
		// outer Finish returns only when every hop of every chain has
		// executed and its mark has been applied.
		var expChain uint64
		core.Finish(me, func() {
			for r := 0; r < n; r += 2 {
				expChain ^= tgExpectChain(n, r, depth, uint64(r+1))
				core.AsyncTask(me, core.On(r), tgSpawn,
					append(cellArgs(chainCell), rpc.U64s(depth, uint64(r+1))...))
			}
			core.Finish(me, func() {
				for r := 1; r < n; r += 2 {
					expChain ^= tgExpectChain(n, r, depth, uint64(r+1))
					core.AsyncTask(me, core.On(r), tgSpawn,
						append(cellArgs(chainCell), rpc.U64s(depth, uint64(r+1))...))
				}
			})
		})
		if got := core.Read(me, chainCell); got != expChain {
			panic(fmt.Sprintf("spmd: taskgraph chain fold = %#x, want %#x", got, expChain))
		}

		sum = mix(expDag ^ mix(expChain) ^ vsum)
	}
	me.Barrier()
	return core.TeamBroadcast(me.World(), sum, 0)
}
