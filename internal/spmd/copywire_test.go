package spmd

import (
	"fmt"
	"testing"

	"upcxx/internal/core"
	"upcxx/internal/transport"
)

// Wire-backend coverage for the implicit-handle non-blocking copy path
// (WriteSliceAsync with a nil completion + AsyncCopyFence), previously
// exercised only in-process — including transfers straddling the
// transport's MaxPayload fragmentation boundary, where one logical put
// becomes several chunked frames.

// copyWireSegBytes sizes segments for the boundary transfers: the
// largest test slice plus allocator slack.
func copyWireSegBytes(elems int) int { return elems*8 + (1 << 18) }

// wirePutBoundarySizes are element counts whose byte sizes bracket the
// chunking threshold of the wire data plane (MaxPayload - 8 bytes of
// put-offset header): one chunk, exactly one chunk, several chunks.
func wirePutBoundarySizes() []int {
	maxChunkBytes := transport.MaxPayload - 8
	return []int{
		0,
		1,
		maxChunkBytes/8 - 1,
		maxChunkBytes / 8, // MaxPayload boundary: last single-frame put
		maxChunkBytes/8 + 1,
		2*maxChunkBytes/8 + 3,
	}
}

func TestWriteSliceAsyncFenceOnWire(t *testing.T) {
	sizes := wirePutBoundarySizes()
	maxElems := sizes[len(sizes)-1]
	fill := func(n int, salt uint64) []uint64 {
		s := make([]uint64, n)
		for i := range s {
			s[i] = mix(salt<<32 + uint64(i))
		}
		return s
	}
	_, err := RunWireLocal(2, copyWireSegBytes(maxElems), core.Config{}, func(me *core.Rank) {
		if me.ID() == 0 {
			for round, n := range sizes {
				dst := core.Allocate[uint64](me, 1, maxElems+1)
				want := fill(n, uint64(round+1))
				// Implicit-handle async puts: no event, no promise;
				// AsyncCopyFence is the only synchronization.
				core.WriteSliceAsync(me, dst, want, nil)
				core.AsyncCopyFence(me)
				got := make([]uint64, n)
				core.ReadSlice(me, dst, got)
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("size %d: dst[%d] = %#x, want %#x", n, i, got[i], want[i])
						break
					}
				}
				if err := core.Deallocate(me, dst); err != nil {
					t.Errorf("size %d: %v", n, err)
				}
			}
		}
		me.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAsyncCopyEventOnWireAtBoundary(t *testing.T) {
	// AsyncCopy completing into an event, remote→local at the
	// fragmentation boundary, on the wire backend.
	maxChunkBytes := transport.MaxPayload - 8
	sizes := []int{maxChunkBytes / 8, maxChunkBytes/8 + 1}
	maxElems := sizes[len(sizes)-1]
	_, err := RunWireLocal(2, copyWireSegBytes(2*maxElems+2), core.Config{}, func(me *core.Rank) {
		src := core.Allocate[uint64](me, me.ID(), maxElems)
		vals := make([]uint64, maxElems)
		for i := range vals {
			vals[i] = mix(uint64(me.ID())<<40 + uint64(i))
		}
		core.WriteSlice(me, src, vals)
		dir := core.AllGather(me, src)
		me.Barrier()

		if me.ID() == 0 {
			for _, n := range sizes {
				dst := core.Allocate[uint64](me, 0, n)
				ev := core.NewEvent()
				core.AsyncCopy(me, dir[1], dst, n, ev)
				ev.Wait(me)
				got := core.LocalSlice(me, dst, n)
				for i := 0; i < n; i++ {
					want := mix(uint64(1)<<40 + uint64(i))
					if got[i] != want {
						t.Errorf("n=%d: dst[%d] = %#x, want %#x", n, i, got[i], want)
						break
					}
				}
				if err := core.Deallocate(me, dst); err != nil {
					t.Errorf("n=%d: %v", n, err)
				}
			}
		}
		me.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFutureOpsOnWireAtBoundary(t *testing.T) {
	// The futures-first slice ops (WriteSliceFuture / ReadSliceAsync)
	// across the chunking boundary on the wire's async data plane.
	maxChunkBytes := transport.MaxPayload - 8
	for _, n := range []int{maxChunkBytes / 8, maxChunkBytes/8 + 1} {
		n := n
		t.Run(fmt.Sprintf("elems=%d", n), func(t *testing.T) {
			_, err := RunWireLocal(2, copyWireSegBytes(n), core.Config{}, func(me *core.Rank) {
				if me.ID() == 0 {
					dst := core.Allocate[uint64](me, 1, n)
					want := make([]uint64, n)
					for i := range want {
						want[i] = mix(0xABC<<32 + uint64(i))
					}
					core.WriteSliceFuture(me, dst, want).Wait()
					got := core.ReadSliceAsync(me, dst, make([]uint64, n)).Get()
					for i := range want {
						if got[i] != want[i] {
							t.Errorf("dst[%d] = %#x, want %#x", i, got[i], want[i])
							break
						}
					}
				}
				me.Barrier()
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}
