package spmd

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"

	"upcxx/internal/core"
	"upcxx/internal/gasnet"
)

// runProg executes a registered program on the in-process backend and
// returns rank 0's checksum, after checking every rank agrees.
func runProcChecksum(t *testing.T, p Prog, n, scale int) uint64 {
	t.Helper()
	sums := make([]uint64, n)
	// One rank per host, matching the wire backend's default topology —
	// topology-sensitive programs (teams) must see identical LocalTeam
	// membership on both sides of the comparison.
	core.Run(core.Config{Ranks: n, SegmentBytes: p.SegBytes(n, scale), Nodes: HierNodes(n, 1)}, func(me *core.Rank) {
		sums[me.ID()] = p.Run(me, scale)
	})
	for r, s := range sums {
		if s != sums[0] {
			t.Fatalf("proc %s n=%d: rank %d checksum %x != rank 0 %x", p.Name, n, r, s, sums[0])
		}
	}
	return sums[0]
}

// runWireChecksum executes the same program over the TCP wire conduit
// (one goroutine per rank, separate segments, localhost sockets).
func runWireChecksum(t *testing.T, p Prog, n, scale int) uint64 {
	t.Helper()
	sums := make([]uint64, n)
	_, err := RunWireLocal(n, p.SegBytes(n, scale), core.Config{Resilient: p.Resilient}, func(me *core.Rank) {
		sums[me.ID()] = p.Run(me, scale)
	})
	if err != nil {
		t.Fatalf("wire %s n=%d: %v", p.Name, n, err)
	}
	for r, s := range sums {
		if s != sums[0] {
			t.Fatalf("wire %s n=%d: rank %d checksum %x != rank 0 %x", p.Name, n, r, s, sums[0])
		}
	}
	return sums[0]
}

// TestBackendsAgree is the acceptance gate of the conduit seam: every
// registered program must produce the identical verified checksum on
// the in-process and TCP backends at the same rank count.
func TestBackendsAgree(t *testing.T) {
	for _, p := range Progs() {
		if p.Gateway {
			// Gateway programs park until a launcher-provided gateway
			// rank broadcasts its drain; standalone they hang forever.
			continue
		}
		for _, n := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/n=%d", p.Name, n), func(t *testing.T) {
				scale := p.DefaultScale
				switch p.Name {
				case "gups":
					scale = 10 // keep test-sized tables
				case "dht":
					scale = 384 // keep test-sized shards
				case "dhtchaos":
					scale = 128 // fault-free here; the chaos tests kill ranks
				}
				proc := runProcChecksum(t, p, n, scale)
				wire := runWireChecksum(t, p, n, scale)
				if proc != wire {
					t.Fatalf("checksum mismatch: proc %016x, wire %016x", proc, wire)
				}
			})
		}
	}
}

// TestChecksumDependsOnInputs guards against degenerate constants: the
// checksum must move when the size knob does.
func TestChecksumDependsOnInputs(t *testing.T) {
	p, _ := Lookup("ring")
	a := runProcChecksum(t, p, 2, 64)
	b := runProcChecksum(t, p, 2, 128)
	if a == b {
		t.Fatalf("ring checksum %x did not change with scale", a)
	}
}

// TestClosureOpsRejectedOnWire pins the degradation contract: closure-
// shipping operations panic with gasnet.ErrNotWireCapable when they
// target a remote rank of a wire job, while self-targeted ones work.
func TestClosureOpsRejectedOnWire(t *testing.T) {
	rejected := func(f func(me *core.Rank)) func(me *core.Rank) {
		return func(me *core.Rank) {
			defer func() {
				r := recover()
				if r == nil {
					t.Error("closure op crossed the wire without panicking")
					return
				}
				err, ok := r.(error)
				if !ok || !errors.Is(err, gasnet.ErrNotWireCapable) {
					t.Errorf("panic = %v, want ErrNotWireCapable", r)
				}
			}()
			f(me)
		}
	}
	_, err := RunWireLocal(2, 1<<20, core.Config{}, func(me *core.Rank) {
		other := 1 - me.ID()

		// Remote closure asyncs must degrade with the clear error...
		rejected(func(me *core.Rank) {
			core.Async(me, core.On(other), func(*core.Rank) {})
		})(me)
		rejected(func(me *core.Rank) {
			core.AsyncFuture(me, other, func(*core.Rank) int { return 0 })
		})(me)
		rejected(func(me *core.Rank) {
			me.AM(other, 8, func(*core.Rank) {})
		})(me)
		p := core.Allocate[uint64](me, other, 1)
		rejected(func(me *core.Rank) {
			core.RMW(me, p, func(v uint64) uint64 { return v + 1 })
		})(me)
		me.Barrier()

		// ...while the in-process fast path still works on self.
		ran := false
		core.Finish(me, func() {
			core.Async(me, core.On(me.ID()), func(*core.Rank) { ran = true })
		})
		if !ran {
			t.Errorf("rank %d: self-targeted async did not run on wire backend", me.ID())
		}
		// And the local half of RMW remains available.
		q := core.Allocate[uint64](me, me.ID(), 1)
		if got := core.RMW(me, q, func(v uint64) uint64 { return v + 41 }); got != 41 {
			t.Errorf("local RMW on wire = %d, want 41", got)
		}
		me.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRendezvousProtocol drives the launcher's address-exchange path —
// Rendezvous on the parent side, RunWireChild on the child side — with
// goroutines standing in for the spawned processes.
func TestRendezvousProtocol(t *testing.T) {
	const n = 3
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	rdvErr := make(chan error, 1)
	go func() { rdvErr <- Rendezvous(ln, n) }()

	p, _ := Lookup("ring")
	sums := make([]uint64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			_, errs[rank] = RunWireChild(ln.Addr().String(), rank, n,
				p.SegBytes(n, 64), core.Config{}, func(me *core.Rank) {
					sums[me.ID()] = p.Run(me, 64)
				})
		}(i)
	}
	wg.Wait()
	if err := <-rdvErr; err != nil {
		t.Fatalf("rendezvous: %v", err)
	}
	for r := 0; r < n; r++ {
		if errs[r] != nil {
			t.Fatalf("child %d: %v", r, errs[r])
		}
		if sums[r] != sums[0] {
			t.Fatalf("child %d checksum %x != child 0 %x", r, sums[r], sums[0])
		}
	}
	if want := runProcChecksum(t, p, n, 64); sums[0] != want {
		t.Fatalf("rendezvous-launched checksum %x != proc %x", sums[0], want)
	}
}

// TestWireStats checks the wire job reports sane counters: the GUPS
// update loop must show its puts.
func TestWireStats(t *testing.T) {
	p, _ := Lookup("gups")
	stats, err := RunWireLocal(2, p.SegBytes(2, 10), core.Config{}, func(me *core.Rank) {
		p.Run(me, 10)
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, st := range stats {
		if st.Ranks != 2 {
			t.Errorf("rank %d: Stats.Ranks = %d, want 2", r, st.Ranks)
		}
		if st.Puts == 0 {
			t.Errorf("rank %d: no puts recorded for the update loop", r)
		}
	}
}
