package spmd

// Wire-conduit coverage for the registered-task invocation layer:
// distributed Finish (nested scopes, RPC-spawns-RPC chains across OS
// address-space boundaries simulated by RunWireLocal's per-rank
// endpoints/segments) and future replies. The taskgraph program
// asserts the same properties end to end; these tests pin them at the
// core-API level so a regression names the broken primitive instead of
// a checksum.

import (
	"errors"
	"strings"
	"testing"

	"upcxx/internal/core"
	"upcxx/internal/gasnet"
	"upcxx/internal/rpc"
)

var (
	twChain core.Task
	twEcho  = core.RegisterTask("spmd_test.echo", func(me *core.Rank, from int, args []byte) []byte {
		seed, _ := rpc.U64(args)
		return rpc.U64s(mix(seed + uint64(me.ID()+1)))
	})
)

func init() {
	// Chain: xor a (depth, rank)-tagged mark into the root's cell and
	// spawn the remainder on the next rank.
	twChain = core.RegisterTask("spmd_test.chain", func(me *core.Rank, from int, args []byte) []byte {
		cellRank, rest := rpc.U64(args)
		cellOff, rest := rpc.U64(rest)
		depth, _ := rpc.U64(rest)
		core.AggXor64(me, core.PtrAt[uint64](int(cellRank), cellOff),
			mix(depth<<8+uint64(me.ID()+1)), nil)
		if depth > 0 {
			core.AsyncTask(me, core.On((me.ID()+1)%me.Ranks()), twChain,
				rpc.U64s(cellRank, cellOff, depth-1))
		}
		return nil
	})
}

func TestWireDistributedFinishChain(t *testing.T) {
	const n, depth = 4, 11
	_, err := RunWireLocal(n, 1<<17, core.Config{}, func(me *core.Rank) {
		if me.ID() == 0 {
			cell := core.Allocate[uint64](me, 0, 1)
			core.Write(me, cell, 0)
			core.Finish(me, func() {
				core.AsyncTask(me, core.On(1), twChain,
					rpc.U64s(uint64(cell.Where()), cell.Offset(), depth))
			})
			// Finish returned: every hop of the chain — each an RPC
			// spawned by an RPC on another address space — must have
			// executed and had its aggregated mark applied.
			var want uint64
			r := 1
			for d := depth; ; d-- {
				want ^= mix(uint64(d)<<8 + uint64(r+1))
				if d == 0 {
					break
				}
				r = (r + 1) % n
			}
			if got := core.Read(me, cell); got != want {
				t.Errorf("chain fold after Finish = %#x, want %#x", got, want)
			}
		}
		me.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWireFutureAndSignal(t *testing.T) {
	_, err := RunWireLocal(3, 1<<17, core.Config{}, func(me *core.Rank) {
		if me.ID() == 0 {
			ev := core.NewEvent()
			futs := make([]*core.Future[[]byte], me.Ranks())
			for r := range futs {
				futs[r] = core.AsyncTaskFuture(me, r, twEcho, rpc.U64s(40), core.Signal(ev))
			}
			ev.Wait(me) // fires once every body has replied
			for r, f := range futs {
				if !f.Ready() {
					t.Errorf("future %d not ready after signal event fired", r)
				}
				got, _ := rpc.U64(f.Get())
				if want := mix(40 + uint64(r+1)); got != want {
					t.Errorf("reply from rank %d = %#x, want %#x", r, got, want)
				}
			}
		}
		me.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWireRawClosureStillRejected pins that the loud degradation
// contract survives the RPC layer: raw closures to remote ranks still
// panic, now with a hint pointing at the registered-function API.
func TestWireRawClosureStillRejected(t *testing.T) {
	_, err := RunWireLocal(2, 1<<17, core.Config{}, func(me *core.Rank) {
		func() {
			defer func() {
				p := recover()
				if p == nil {
					t.Error("raw closure crossed the wire without panicking")
					return
				}
				err, ok := p.(error)
				if !ok || !errors.Is(err, gasnet.ErrNotWireCapable) {
					t.Errorf("panic = %v, want ErrNotWireCapable", p)
				} else if !strings.Contains(err.Error(), "RegisterTask") {
					t.Errorf("panic %v should point at RegisterTask", err)
				}
			}()
			core.Async(me, core.On(1-me.ID()), func(*core.Rank) {})
		}()
		me.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
