package spmd

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"upcxx/internal/core"
	"upcxx/internal/gasnet"
	"upcxx/internal/obs"
	"upcxx/internal/segment"
	"upcxx/internal/transport"
)

// RendezvousTimeout bounds the whole address exchange. A rank that dies
// before registering (or a parent that dies before answering) would
// otherwise hang every surviving process forever; localhost rendezvous
// completes in milliseconds, so expiry always means a lost peer. The
// default suits localhost; launchers spawning ranks across slow or
// congested hosts may raise it (upcxx-run's -rendezvous-timeout flag),
// and tests may shrink it. Set it before any rendezvous begins.
var RendezvousTimeout = 30 * time.Second

// Launch protocol for multi-process wire jobs, shared by the upcxx-run
// launcher and the in-process tests: every rank listens for active
// messages on its own TCP port, announces that address to a rendezvous
// point, receives the full address table back, and connects the mesh.
// The wire format is one text line each way:
//
//	child -> parent:  "<rank> <am-address>\n"
//	parent -> child:  "<addr0> <addr1> ... <addrN-1>\n"

// Rendezvous runs the parent side: it accepts n registrations on ln and
// answers each with the complete address table. It returns once every
// child has been answered.
func Rendezvous(ln net.Listener, n int) error {
	return RendezvousWithNames(ln, n, nil)
}

// RendezvousWithNames is Rendezvous with launcher-assigned role names:
// name(rank), when non-nil, labels each rank in the timeout diagnostic
// so a heterogeneous job (compute mesh + gateway) reports WHICH side
// never showed up — "missing: [gateway]" reads very differently from
// "missing: [4]". A nil name keeps the plain numeric labels.
func RendezvousWithNames(ln net.Listener, n int, name func(rank int) string) error {
	label := func(rank int) string {
		if name != nil {
			if s := name(rank); s != "" {
				return s
			}
		}
		return fmt.Sprint(rank)
	}
	deadline := time.Now().Add(RendezvousTimeout)
	if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
		d.SetDeadline(deadline)
	}
	addrs := make([]string, n)
	conns := make([]net.Conn, n)
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()
	for i := 0; i < n; i++ {
		conn, err := ln.Accept()
		if err != nil {
			// A bare timeout is useless for diagnosing a lost child;
			// report exactly which ranks made it and which never showed.
			var got, missing []string
			for r := 0; r < n; r++ {
				if conns[r] != nil {
					got = append(got, label(r))
				} else {
					missing = append(missing, label(r))
				}
			}
			return fmt.Errorf("spmd: rendezvous accept (%d of %d ranks registered; connected: [%s], missing: [%s]): %w",
				i, n, strings.Join(got, " "), strings.Join(missing, " "), err)
		}
		conn.SetDeadline(deadline)
		line, err := bufio.NewReader(conn).ReadString('\n')
		if err != nil {
			conn.Close()
			return fmt.Errorf("spmd: rendezvous registration: %w", err)
		}
		var rank int
		var addr string
		if _, err := fmt.Sscanf(line, "%d %s", &rank, &addr); err != nil {
			conn.Close()
			return fmt.Errorf("spmd: bad registration %q: %w", strings.TrimSpace(line), err)
		}
		if rank < 0 || rank >= n || conns[rank] != nil {
			conn.Close()
			return fmt.Errorf("spmd: bad or duplicate rank %d in registration", rank)
		}
		addrs[rank] = addr
		conns[rank] = conn
	}
	table := strings.Join(addrs, " ")
	for rank, c := range conns {
		if _, err := fmt.Fprintln(c, table); err != nil {
			return fmt.Errorf("spmd: answering rank %d: %w", rank, err)
		}
	}
	return nil
}

// DialRendezvous runs the child side: announce this rank's AM address
// and return the full address table, indexed by rank.
func DialRendezvous(rendezvous string, rank, n int, amAddr string) ([]string, error) {
	conn, err := net.DialTimeout("tcp", rendezvous, RendezvousTimeout)
	if err != nil {
		return nil, fmt.Errorf("spmd: dialing rendezvous %s: %w", rendezvous, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(RendezvousTimeout))
	if _, err := fmt.Fprintf(conn, "%d %s\n", rank, amAddr); err != nil {
		return nil, fmt.Errorf("spmd: registering with rendezvous: %w", err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("spmd: reading address table: %w", err)
	}
	addrs := strings.Fields(line)
	if len(addrs) != n {
		return nil, fmt.Errorf("spmd: address table has %d entries, want %d", len(addrs), n)
	}
	return addrs, nil
}

// RunWireChild is one OS process's half of a wire job: rendezvous,
// full-mesh connect, then run main as rank `rank` of n over the TCP
// conduit. segBytes sizes this rank's shared segment.
func RunWireChild(rendezvous string, rank, n, segBytes int, cfg core.Config, main func(me *core.Rank)) (core.Stats, error) {
	tep, err := transport.ListenTCP(rank, n, "127.0.0.1:0")
	if err != nil {
		return core.Stats{}, err
	}
	if cfg.Fault != nil {
		// The injector is shared with the runtime's ChaosArm via the
		// plan's per-rank cache, so time triggers stay dormant until the
		// program arms them.
		tep.SetFault(cfg.Fault.ForRank(rank))
	}
	obs.Logf(1, rank, "spmd: listening on %s, dialing rendezvous %s", tep.Addr(), rendezvous)
	addrs, err := DialRendezvous(rendezvous, rank, n, tep.Addr())
	if err != nil {
		tep.Close()
		return core.Stats{}, err
	}
	if err := tep.Connect(addrs); err != nil {
		tep.Close()
		return core.Stats{}, err
	}
	obs.Logf(1, rank, "spmd: mesh connected (%d ranks)", n)
	seg := segment.New(segBytes)
	cd := gasnet.NewWireConduit(tep, seg)
	defer cd.Close()
	st := core.RunWire(cfg, cd, seg, main)
	// Reached only when main completed: a panicking rank skips the
	// goodbye, so its peers see the close as peer loss and abort.
	cd.Goodbye()
	return st, nil
}

// RunWireLocal runs an n-rank wire job inside ONE process, one
// goroutine per rank, each with its own transport endpoint, segment and
// conduit over localhost TCP — no shared runtime state beyond the
// sockets. This exercises the entire wire protocol (it is the conduit
// test harness) while keeping tests free of subprocess management; the
// upcxx-run launcher provides true multi-process isolation.
func RunWireLocal(n, segBytes int, cfg core.Config, main func(me *core.Rank)) ([]core.Stats, error) {
	eps := make([]*transport.TCPEndpoint, n)
	addrs := make([]string, n)
	for i := range eps {
		tep, err := transport.ListenTCP(i, n, "127.0.0.1:0")
		if err != nil {
			for _, e := range eps[:i] {
				e.Close()
			}
			return nil, err
		}
		eps[i] = tep
		addrs[i] = tep.Addr()
	}
	stats := make([]core.Stats, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if cfg.Fault != nil {
				eps[i].SetFault(cfg.Fault.ForRank(i))
			}
			if err := eps[i].Connect(addrs); err != nil {
				errs[i] = err
				return
			}
			seg := segment.New(segBytes)
			cd := gasnet.NewWireConduit(eps[i], seg)
			defer cd.Close()
			stats[i] = core.RunWire(cfg, cd, seg, main)
			cd.Goodbye()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("spmd: rank %d: %w", i, err)
		}
	}
	return stats, nil
}
