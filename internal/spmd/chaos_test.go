package spmd

import (
	"errors"
	"sync"
	"testing"
	"time"

	"upcxx/internal/core"
	"upcxx/internal/dht"
	"upcxx/internal/fault"
	"upcxx/internal/gasnet"
	"upcxx/internal/segment"
	"upcxx/internal/transport"
)

func chaosKey(rank, i int) uint64 { return mix(uint64(rank)<<32+uint64(i))<<1 | 1 }
func chaosVal(k uint64) uint64    { return mix(k ^ 0x5851F42D4C957F2D) }

func mustPlan(t *testing.T, spec string) *fault.Plan {
	t.Helper()
	p, err := fault.Parse(spec)
	if err != nil {
		t.Fatalf("fault.Parse(%q): %v", spec, err)
	}
	return p
}

// runWireFaulty is the chaos-test harness: an n-rank wire job in one
// process like RunWireLocal, but with the transport endpoints exposed
// to the program body (so a rank can Abort itself, simulating a crash)
// and per-rank panics captured instead of crashing the test binary —
// a deliberately killed rank's teardown is allowed to fail.
func runWireFaulty(t *testing.T, n, segBytes int, cfg core.Config,
	main func(me *core.Rank, eps []*transport.TCPEndpoint)) []any {
	t.Helper()
	eps := make([]*transport.TCPEndpoint, n)
	addrs := make([]string, n)
	for i := range eps {
		ep, err := transport.ListenTCP(i, n, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Fault != nil {
			ep.SetFault(cfg.Fault.ForRank(i))
		}
		eps[i] = ep
		addrs[i] = ep.Addr()
	}
	panics := make([]any, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { panics[i] = recover() }()
			if err := eps[i].Connect(addrs); err != nil {
				panics[i] = err
				return
			}
			seg := segment.New(segBytes)
			cd := gasnet.NewWireConduit(eps[i], seg)
			defer cd.Close()
			core.RunWire(cfg, cd, seg, func(me *core.Rank) { main(me, eps) })
			cd.Goodbye()
		}(i)
	}
	wg.Wait()
	return panics
}

// TestPeerDeathUnblocksFutureGet is the regression test for the wire
// backend's worst failure mode before resilience existed: a peer dying
// while Future.Get was blocked left the caller spinning forever. Now
// the death must fail the future typed, and Get must panic with a
// cause satisfying errors.Is(err, core.ErrRankDead) — promptly, not
// after some unrelated timeout.
func TestPeerDeathUnblocksFutureGet(t *testing.T) {
	cfg := core.Config{
		Resilient:         true,
		HeartbeatInterval: 15 * time.Millisecond,
		HeartbeatTimeout:  120 * time.Millisecond,
	}
	var got error
	var elapsed time.Duration
	panics := runWireFaulty(t, 2, 1<<20, cfg, func(me *core.Rank, eps []*transport.TCPEndpoint) {
		if me.ID() == 1 {
			// Serve rank 0's allocation, then die without a goodbye while
			// its read is in flight.
			me.Barrier()
			time.Sleep(40 * time.Millisecond)
			eps[1].Abort()
			return
		}
		p := core.Allocate[uint64](me, 1, 1)
		me.Barrier()
		start := time.Now()
		func() {
			defer func() {
				elapsed = time.Since(start)
				r := recover()
				if r == nil {
					return
				}
				err, ok := r.(error)
				if !ok {
					panic(r)
				}
				got = err
			}()
			// Rank 1 sleeps through this request and then aborts: without
			// the death pipeline this Get never returned.
			core.ReadAsync(me, p).Get()
		}()
	})
	if panics[0] != nil {
		t.Fatalf("rank 0 panicked: %v", panics[0])
	}
	if got == nil {
		t.Fatalf("Get returned a value; want a typed ErrRankDead panic")
	}
	if !errors.Is(got, core.ErrRankDead) {
		t.Fatalf("Get panicked with %v; want errors.Is(err, ErrRankDead)", got)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("death detection took %v; want well under the 2s policy bound", elapsed)
	}
}

// TestRetryRecoversDroppedReply: a fault plan drops rank 0's first Get
// request frame on the floor; a RetryPolicy with a per-attempt reply
// deadline must time the attempt out and re-issue it, and the future
// must resolve with the correct value — after at least one full
// attempt timeout, proving the first attempt really was lost.
func TestRetryRecoversDroppedReply(t *testing.T) {
	const attemptTimeout = 100 * time.Millisecond
	plan := mustPlan(t, "drop:rank=0,peer=1,handler=2,op=1") // handler 2 = wire hGet
	cfg := core.Config{
		Resilient:         true,
		Fault:             plan,
		HeartbeatInterval: 15 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second, // death detection must not race the retry
	}
	var elapsed time.Duration
	panics := runWireFaulty(t, 2, 1<<20, cfg, func(me *core.Rank, _ []*transport.TCPEndpoint) {
		if me.ID() == 0 {
			p := core.Allocate[uint64](me, 1, 1)
			core.Write(me, p, 0xFEEDFACE)
			start := time.Now()
			f := core.ReadAsync(me, p, core.WithRetry(core.RetryPolicy{
				MaxAttempts:    3,
				AttemptTimeout: attemptTimeout,
			}))
			if v := f.Get(); v != 0xFEEDFACE {
				t.Errorf("retried read = %#x, want 0xFEEDFACE", v)
			}
			elapsed = time.Since(start)
		}
		me.Barrier()
	})
	for r, p := range panics {
		if p != nil {
			t.Fatalf("rank %d panicked: %v", r, p)
		}
	}
	if elapsed < attemptTimeout {
		t.Fatalf("read completed in %v, faster than one attempt timeout %v — the drop rule never fired",
			elapsed, attemptTimeout)
	}
}

var chaosEcho = core.RegisterTask("spmd.chaos.echo",
	func(me *core.Rank, from int, args []byte) []byte { return args })

// TestDelayedAckAfterFinishWait: the executor's reply batch — carrying
// both the task's return value and the done-ack Finish waits for — is
// delayed after Finish has already entered its wait. Finish must stay
// blocked for the full delay and then complete normally, with the
// future carrying the right bytes: a late ack is late, not lost.
func TestDelayedAckAfterFinishWait(t *testing.T) {
	const delay = 150 * time.Millisecond
	// handler 11 = wire hBatch; rank 1's first batch to rank 0 is the
	// reply+done-ack of the task below.
	plan := mustPlan(t, "delay:rank=1,peer=0,handler=11,op=1,delay=150ms")
	cfg := core.Config{Fault: plan}
	var elapsed time.Duration
	panics := runWireFaulty(t, 2, 1<<20, cfg, func(me *core.Rank, _ []*transport.TCPEndpoint) {
		me.Barrier()
		if me.ID() == 0 {
			var f *core.Future[[]byte]
			start := time.Now()
			core.Finish(me, func() {
				f = core.AsyncTaskFuture(me, 1, chaosEcho, []byte{0x2A})
			})
			elapsed = time.Since(start)
			if got := f.Get(); len(got) != 1 || got[0] != 0x2A {
				t.Errorf("echo reply = %v, want [42]", got)
			}
		}
		me.Barrier()
	})
	for r, p := range panics {
		if p != nil {
			t.Fatalf("rank %d panicked: %v", r, p)
		}
	}
	if elapsed < delay-10*time.Millisecond {
		t.Fatalf("Finish returned in %v, before the delayed ack (%v) can have arrived", elapsed, delay)
	}
}

// TestQuorumReadAfterReplicaDeath: on a K=2 replicated table, every
// key must remain readable with its exact value after one replica rank
// crashes — lookups re-route to the surviving replica, and the
// first-live-replica checksum still equals the full-contents oracle on
// every survivor.
func TestQuorumReadAfterReplicaDeath(t *testing.T) {
	const n, perRank = 3, 96
	capPerRank := dht.DefaultCapacity(2 * perRank)
	cfg := core.Config{
		Resilient:         true,
		HeartbeatInterval: 15 * time.Millisecond,
		HeartbeatTimeout:  150 * time.Millisecond,
	}
	pairs := make(map[uint64]uint64)
	var keys []uint64
	for r := 0; r < n; r++ {
		for i := 0; i < perRank; i++ {
			k := chaosKey(r, i)
			pairs[k] = chaosVal(k)
			keys = append(keys, k)
		}
	}
	sums := make([]uint64, n)
	panics := runWireFaulty(t, n, dht.SegBytes(capPerRank), cfg,
		func(me *core.Rank, eps []*transport.TCPEndpoint) {
			tbl := dht.NewWithConfig(me, capPerRank, dht.Config{Replicas: 2, ReadRepair: true})
			for i := 0; i < perRank; i++ {
				k := chaosKey(me.ID(), i)
				tbl.Insert(me, k, chaosVal(k), nil)
			}
			me.Barrier()
			if me.ID() == 1 {
				time.Sleep(30 * time.Millisecond)
				eps[1].Abort()
				return
			}
			me.WaitUntil(func() bool { return !me.RankAlive(1) })
			for _, k := range keys {
				if v, ok := tbl.Lookup(me, k).Wait(me); !ok || v != pairs[k] {
					t.Errorf("rank %d: post-death lookup %#x = (%#x,%v), want (%#x,true)",
						me.ID(), k, v, ok, pairs[k])
				}
			}
			sums[me.ID()] = tbl.Checksum(me)
		})
	for _, r := range []int{0, 2} {
		if panics[r] != nil {
			t.Fatalf("survivor rank %d panicked: %v", r, panics[r])
		}
		if want := dht.ExpectedChecksum(pairs); sums[r] != want {
			t.Errorf("survivor rank %d checksum %x, want oracle %x", r, sums[r], want)
		}
	}
}

// TestDHTChaosProcBackend runs the dhtchaos acceptance program on the
// in-process backend under a kill plan: rank 2's scripted death at
// 80ms. Every survivor must finish with the checksum of the fault-free
// run (the full-contents oracle), and the ghost reports 0.
func TestDHTChaosProcBackend(t *testing.T) {
	const n, scale = 4, 96
	p, ok := Lookup("dhtchaos")
	if !ok {
		t.Fatal("dhtchaos program not registered")
	}
	plan := mustPlan(t, "kill:rank=2,at=80ms")
	sums := make([]uint64, n)
	core.Run(core.Config{
		Ranks:        n,
		SegmentBytes: p.SegBytes(n, scale),
		Fault:        plan,
	}, func(me *core.Rank) {
		sums[me.ID()] = p.Run(me, scale)
	})
	pairs := make(map[uint64]uint64)
	for r := 0; r < n; r++ {
		for i := 0; i < scale; i++ {
			k := mix(uint64(r)<<32+uint64(i))<<1 | 1
			pairs[k] = mix(k ^ 0x5851F42D4C957F2D)
		}
	}
	want := dht.ExpectedChecksum(pairs)
	for r := 0; r < n; r++ {
		if r == 2 {
			if sums[r] != 0 {
				t.Errorf("ghost rank 2 reported checksum %x, want 0", sums[r])
			}
			continue
		}
		if sums[r] != want {
			t.Errorf("survivor rank %d checksum %x, want fault-free %x", r, sums[r], want)
		}
	}
}
