package spmd

// Golden test for the observability plane: a 2-rank wire job with
// tracing on must produce a merged Chrome trace_event file that parses,
// validates (known phases, non-negative durations, per-tid monotone
// timestamps), and carries spans from several runtime subsystems on
// both ranks' timelines.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"upcxx/internal/core"
	"upcxx/internal/obs"
	"upcxx/internal/rpc"
)

func TestWireLocalGoldenTrace(t *testing.T) {
	obs.Reset()
	obs.SetTracing(true)
	t.Cleanup(func() {
		obs.SetTracing(false)
		obs.Reset()
	})

	// A small workload that crosses subsystems: registered-task RPC
	// (core + wire frames), a distributed Finish, and barriers.
	_, err := RunWireLocal(2, 1<<17, core.Config{}, func(me *core.Rank) {
		core.Finish(me, func() {
			f := core.AsyncTaskFuture(me, 1-me.ID(), twEcho, rpc.U64s(40))
			f.Wait()
		})
		me.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}

	// Both goroutine ranks live in this one process, so one process
	// dump carries both rings; the merger then produces trace.json.
	dir := t.TempDir()
	if err := obs.DumpTraceFile(dir, 0); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "trace.json")
	n, err := obs.MergeTraceDir(dir, out)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("merged trace has no events")
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := obs.ValidateTrace(data)
	if err != nil {
		t.Fatalf("merged trace does not validate: %v", err)
	}
	if sum.Events != n {
		t.Errorf("validator saw %d events, merger wrote %d", sum.Events, n)
	}
	for _, tid := range []int{0, 1} {
		if sum.Tids[tid] == 0 {
			t.Errorf("no events on rank %d's timeline; tids = %v", tid, sum.Tids)
		}
	}
	for _, cat := range []string{"core", "wire", "net"} {
		if sum.Categories[cat] == 0 {
			t.Errorf("no %q-subsystem events in trace; categories = %v", cat, sum.Categories)
		}
	}

	// Every complete span must have begun and ended on the same
	// timeline: re-parse and check X events carry a tid the summary
	// knows and durations fit inside the trace extent.
	var tf obs.TraceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatal(err)
	}
	var maxTs float64
	for _, e := range tf.TraceEvents {
		if e.Ts+e.Dur > maxTs {
			maxTs = e.Ts + e.Dur
		}
	}
	for _, e := range tf.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		if sum.Tids[e.Tid] == 0 {
			t.Fatalf("span %q on unknown tid %d", e.Name, e.Tid)
		}
		if e.Ts+e.Dur > maxTs {
			t.Fatalf("span %q [%f +%f] extends past the trace extent %f", e.Name, e.Ts, e.Dur, maxTs)
		}
	}
}
