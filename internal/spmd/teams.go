package spmd

import (
	"fmt"

	"upcxx/internal/core"
)

func init() {
	registry = append(registry, Prog{
		Name:         "teams",
		Desc:         "teams-first collectives: parity SplitTeam with reversed ranks, nested splits, LocalTeam folds — checksum is topology-sensitive and backend-independent",
		DefaultScale: 64, // seasons the per-rank contributions
		SegBytes: func(ranks, scale int) int {
			return 1 << 17
		},
		Run: teams,
	})
}

// teams exercises the team-scoped collective surface end to end. Every
// collective runs on a proper subset of the world (or on the local
// team), so the program fails loudly if subset rendezvous, team-rank
// ordering or topology agreement is wrong on any backend. The final
// world allreduce folds the per-rank sums into one checksum, identical
// on every rank — and identical across backends launched with the same
// -procs-per-node.
func teams(me *core.Rank, scale int) uint64 {
	n := me.Ranks()
	id := me.ID()

	// Parity split with REVERSED key order: team rank 0 is the highest
	// world rank of the parity class, so team order != world order and
	// any code path that conflates the two corrupts the checksum.
	par := me.SplitTeam(id%2, n-id)
	if got := par.WorldRank(par.Rank()); got != id {
		panic(fmt.Sprintf("spmd: teams: my team slot maps to world rank %d, want %d", got, id))
	}

	var sum uint64
	for i, v := range core.TeamAllGather(par, uint64(id)+uint64(scale)) {
		sum ^= mix(v<<8 + uint64(i))
	}

	add := func(a, b uint64) uint64 { return a + b }
	xor := func(a, b uint64) uint64 { return a ^ b }

	// Reversed order makes the exclusive scan order-sensitive; the
	// closed-form check pins team-rank order to (key, world) sorting.
	tot := core.TeamReduce(par, uint64(id)+1, add)
	scan := core.TeamExclusiveScan(par, uint64(id)+1, add, 0)
	var wantScan uint64
	for w := id % 2; w < n; w += 2 {
		if n-w < n-id { // ranks with smaller key precede me
			wantScan += uint64(w) + 1
		}
	}
	if scan != wantScan {
		panic(fmt.Sprintf("spmd: teams: exclusive scan = %d, want %d", scan, wantScan))
	}
	sum ^= mix(tot ^ scan<<4)

	// Broadcast from the LAST team slot (the lowest world rank of the
	// class, under reversed keys).
	sum ^= core.TeamBroadcast(par, mix(uint64(id)+0xb), par.Ranks()-1)

	// Root-only slice reduction on the subset.
	folded := core.TeamReduceSlices(par, []uint64{uint64(id), mix(uint64(id))}, xor, 0)
	if par.Rank() == 0 {
		sum ^= mix(folded[0] ^ folded[1]<<1)
	} else if folded != nil {
		panic("spmd: teams: non-root received a TeamReduceSlices result")
	}

	// Nested split: quarter the world by parity of the PARENT team rank.
	sub := par.Split(par.Rank()%2, par.Rank())
	sub.Barrier()
	for i, v := range core.TeamGatherAll(sub, uint64(id)+2, 0) {
		if sub.Rank() == 0 {
			sum ^= mix(v * uint64(i+3))
		}
	}

	// Local team: fold within each virtual host, then every rank folds
	// its host's digest. Membership comes from the launch topology, so
	// the checksum moves with -procs-per-node but not with the backend.
	loc := me.Local()
	lsum := core.TeamReduce(loc, mix(uint64(id)+uint64(scale)<<20), xor)
	// Season with the local slot: an unseasoned digest appears once per
	// co-located rank and would xor-cancel whenever ppn is even.
	sum ^= mix(lsum + uint64(loc.Ranks()) + uint64(loc.Rank())<<33)
	loc.Barrier()

	// One world allreduce makes the checksum rank-independent.
	return core.TeamReduce(me.World(), sum, xor)
}
