// Package svc is the service plane: the layering that turns the rank
// mesh into a fronted production service. It follows the ports-and-
// adapters split — ports.go defines the Store port and the typed
// errors the application layer maps to transport status codes; app.go
// is the application layer (admission control, per-request deadlines,
// graceful drain) written purely against the port; httpapi.go is the
// inbound HTTP/JSON adapter; dhtstore.go is the outbound adapter
// binding the port to the replicated DHT over the SPMD progress loop.
//
// The split is what keeps the hard concurrency boundary honest: every
// DHT operation must run on the gateway rank's SPMD goroutine (the
// runtime's progress discipline), while HTTP handlers run on whatever
// goroutines net/http spawns. Only dhtstore.go knows about that
// boundary; the app layer sees a Store, and the HTTP layer sees the
// app.
package svc

import (
	"context"
	"errors"
)

// Store is the port the application layer drives: a string-keyed
// u64-valued store. Implementations must be safe for concurrent use —
// calls arrive from many HTTP handler goroutines at once. Batch
// variants exist so one inbound request can hand the adapter a set of
// operations that coalesce into aggregated traffic together.
type Store interface {
	// Put stores (key, val), durably on every live replica, and
	// returns once the write is acknowledged. A nil error is the
	// service's durability promise: the pair survives any single rank
	// death.
	Put(ctx context.Context, key string, val uint64) error

	// Get returns the value stored under key and whether it was
	// present.
	Get(ctx context.Context, key string) (val uint64, found bool, err error)

	// PutBatch stores every pair; errs[i] is the i'th pair's outcome.
	PutBatch(ctx context.Context, keys []string, vals []uint64) []error

	// GetBatch looks every key up; outcomes are positional.
	GetBatch(ctx context.Context, keys []string) []GetResult

	// Ready reports whether the store is attached to its backend
	// (rendezvous complete, DHT joined) and able to serve.
	Ready() bool
}

// GetResult is one positional outcome of a GetBatch.
type GetResult struct {
	Val   uint64
	Found bool
	Err   error
}

// Typed service errors. The application layer maps these — and the
// runtime's own typed failures (core.ErrRankDead, context deadline
// expiry) — onto transport status codes in one place (HTTPStatus).
var (
	// ErrSaturated: admission control rejected the request because the
	// configured in-flight budget is spent. Clients should back off
	// and retry (429 + Retry-After).
	ErrSaturated = errors.New("svc: server saturated")

	// ErrDraining: the service is shutting down gracefully and accepts
	// no new work; in-flight requests are completing (503).
	ErrDraining = errors.New("svc: draining")

	// ErrUnavailable: the backing store cannot serve the operation
	// right now — typically every replica of a key's range died or the
	// retry budget against failover was exhausted (503).
	ErrUnavailable = errors.New("svc: store unavailable")
)
