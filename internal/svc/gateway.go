package svc

import (
	"upcxx/internal/core"
	"upcxx/internal/dht"
	"upcxx/internal/obs"
)

// SPMD wiring shared by every way a gateway job is assembled — the
// upcxx-gate binary + gateserve compute ranks under upcxx-run, the
// in-process gatebench fleet, and the drain tests. The topology is one
// resilient wire job of n+1 ranks: ranks 0..n-1 run ServeMain (full
// DHT members parked in progress, serving shard traffic), rank n runs
// GatewayMain (also a full DHT member, additionally pumping the
// DHTStore op queue). One topology, one capacity formula, one control
// protocol — computed here so the sides can never disagree.

// CtlHandler is the gateway's control AM id: the gateway broadcasts it
// to the compute ranks when it has drained, releasing them from their
// serve park into the final collective. Outside the runtime-reserved
// range (< 0x10) and clear of the DHT's 0x20–0x22.
const CtlHandler uint16 = 0x30

// GateReplicas is the job's replication factor: K=2 — every key
// survives one rank death, which is the service's durability promise.
const GateReplicas = 2

// DefaultGateScale is the default capacity knob: the number of
// distinct keys the job is provisioned for.
const DefaultGateScale = 1 << 16

// GateCapacity returns each rank's shard capacity for a job
// provisioned for `scale` distinct keys: K replicas of the key
// population spread over the ranks, with DefaultCapacity's 4x
// open-addressing headroom on top. Every rank (gateway included) must
// compute the identical value — it is a pure function of (ranks,
// scale) so they do.
func GateCapacity(ranks, scale int) int {
	if scale <= 0 {
		scale = DefaultGateScale
	}
	per := GateReplicas*scale/ranks + 16
	return dht.DefaultCapacity(per)
}

// GateSegBytes sizes each rank's shared segment for the same job.
func GateSegBytes(ranks, scale int) int {
	return dht.SegBytes(GateCapacity(ranks, scale))
}

// ServeMain is the compute-rank body: join the replicated table, then
// park in progress — serving DHT traffic the whole time — until the
// gateway's drain broadcast, and close with the collective checksum
// (identical on every surviving rank, which is how heterogeneous jobs
// keep the launcher's cross-rank verification).
func ServeMain(me *core.Rank, scale int) uint64 {
	stopped := false
	core.RegisterAMHandler(me, CtlHandler, func(me *core.Rank, from int, _ []byte) {
		obs.Logf(1, me.ID(), "svc: drain broadcast from rank %d", from)
		stopped = true
	})
	tbl := dht.NewWithConfig(me, GateCapacity(me.Ranks(), scale),
		dht.Config{Replicas: GateReplicas, ReadRepair: true})
	me.WaitUntil(func() bool { return stopped })
	return tbl.Checksum(me)
}

// GatewayMain is the gateway-rank body: join the same table, pump the
// store's op queue until Stop drains it, broadcast the release to the
// surviving compute ranks, and join the same closing checksum. The
// caller (the upcxx-gate binary, or a test) owns the HTTP side; this
// body owns everything that must happen on the SPMD goroutine.
func GatewayMain(me *core.Rank, st *DHTStore, scale int) uint64 {
	tbl := dht.NewWithConfig(me, GateCapacity(me.Ranks(), scale),
		dht.Config{Replicas: GateReplicas, ReadRepair: true})
	removeSrc := obs.Reg().AddSource(me.ID(), func() map[string]int64 {
		out := make(map[string]int64)
		for k, v := range st.Counters() {
			out[k] = int64(v)
		}
		return out
	})
	defer removeSrc()

	st.Serve(me, tbl) // returns once Stop() has been called and the queue drained

	for r := 0; r < me.Ranks(); r++ {
		if r == me.ID() || !me.RankAlive(r) {
			continue
		}
		core.AggSend(me, r, CtlHandler, []byte{1}, nil)
	}
	core.AggFlush(me)
	obs.Logf(1, me.ID(), "svc: drained, released %d compute ranks", me.Ranks()-1)
	return tbl.Checksum(me)
}
