package svc

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"upcxx/internal/core"
)

// stubStore is a controllable Store for app-layer tests: every call
// blocks until the test releases it, so saturation and deadlines are
// deterministic — no SPMD job anywhere near these tests, which is the
// point of the port.
type stubStore struct {
	gate  chan struct{} // nil: complete immediately; else block until recv
	err   error
	ready bool
}

func (s *stubStore) wait(ctx context.Context) error {
	if s.gate == nil {
		return s.err
	}
	select {
	case <-s.gate:
		return s.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *stubStore) Put(ctx context.Context, _ string, _ uint64) error { return s.wait(ctx) }
func (s *stubStore) Get(ctx context.Context, _ string) (uint64, bool, error) {
	return 7, true, s.wait(ctx)
}
func (s *stubStore) PutBatch(ctx context.Context, keys []string, _ []uint64) []error {
	errs := make([]error, len(keys))
	for i := range errs {
		errs[i] = s.wait(ctx)
	}
	return errs
}
func (s *stubStore) GetBatch(ctx context.Context, keys []string) []GetResult {
	res := make([]GetResult, len(keys))
	for i := range res {
		res[i] = GetResult{Val: 7, Found: true, Err: s.wait(ctx)}
	}
	return res
}
func (s *stubStore) Ready() bool { return s.ready }

// TestAdmissionControl pins the saturation contract: MaxInFlight
// requests are admitted, request MaxInFlight+1 is rejected immediately
// with ErrSaturated (never queued), and slots freed by completing
// requests readmit.
func TestAdmissionControl(t *testing.T) {
	store := &stubStore{gate: make(chan struct{}), ready: true}
	s := New(store, Config{MaxInFlight: 2, RequestTimeout: 5 * time.Second})

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.Put(context.Background(), fmt.Sprint(i), 1)
		}(i)
	}
	// Wait until both requests hold their slots.
	deadline := time.Now().Add(5 * time.Second)
	for s.Counters()["svc.inflight"] != 2 {
		if time.Now().After(deadline) {
			t.Fatal("admitted requests never claimed their slots")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	if err := s.Put(context.Background(), "over", 1); !errors.Is(err, ErrSaturated) {
		t.Fatalf("over-budget request: err = %v, want ErrSaturated", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("saturated rejection took %v; must be immediate, not queued", d)
	}

	close(store.gate) // complete the admitted pair
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("admitted request %d: %v", i, err)
		}
	}
	if err := s.Put(context.Background(), "after", 1); err != nil {
		t.Fatalf("request after slots freed: %v", err)
	}
	if got := s.Counters()["svc.rejected"]; got != 1 {
		t.Fatalf("svc.rejected = %v, want 1", got)
	}
}

// TestRequestTimeout pins the per-request deadline: a store that never
// answers maps to context.DeadlineExceeded (504), not a hang.
func TestRequestTimeout(t *testing.T) {
	store := &stubStore{gate: make(chan struct{}), ready: true}
	s := New(store, Config{MaxInFlight: 4, RequestTimeout: 20 * time.Millisecond})
	start := time.Now()
	err := s.Put(context.Background(), "k", 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("timeout took %v", d)
	}
	if got := HTTPStatus(err); got != http.StatusGatewayTimeout {
		t.Fatalf("HTTPStatus(timeout) = %d, want 504", got)
	}
}

// TestDrainRejectsNewWork: after Drain, every entry point answers
// ErrDraining and Ready flips false while in-flight work completes.
func TestDrainRejectsNewWork(t *testing.T) {
	store := &stubStore{gate: make(chan struct{}), ready: true}
	s := New(store, Config{MaxInFlight: 4, RequestTimeout: 5 * time.Second})

	inflight := make(chan error, 1)
	go func() { inflight <- s.Put(context.Background(), "k", 1) }()
	for s.Counters()["svc.inflight"] != 1 {
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	if err := s.Put(context.Background(), "new", 1); !errors.Is(err, ErrDraining) {
		t.Fatalf("put during drain: err = %v, want ErrDraining", err)
	}
	if _, _, err := s.Get(context.Background(), "new"); !errors.Is(err, ErrDraining) {
		t.Fatalf("get during drain: err = %v, want ErrDraining", err)
	}
	if s.Ready() {
		t.Fatal("Ready() true while draining")
	}

	close(store.gate) // let the in-flight request finish
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// TestHTTPStatusMapping pins the full error → status table.
func TestHTTPStatusMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, http.StatusOK},
		{ErrSaturated, http.StatusTooManyRequests},
		{ErrDraining, http.StatusServiceUnavailable},
		{ErrUnavailable, http.StatusServiceUnavailable},
		{fmt.Errorf("wrapped: %w", core.ErrRankDead), http.StatusServiceUnavailable},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{errors.New("mystery"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := HTTPStatus(tc.err); got != tc.want {
			t.Errorf("HTTPStatus(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}
