package svc

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"upcxx/internal/obs"
)

// The inbound HTTP/JSON adapter: a mux over the application layer.
//
//	PUT  /kv/{key}        body: decimal u64, or {"value": N}   → 204
//	GET  /kv/{key}                                             → {"key","value"} | 404
//	POST /kv/batch/put    {"items":[{"key","value"},...]}      → {"results":[...]}
//	POST /kv/batch/get    {"keys":[...]}                       → {"items":[...]}
//	GET  /healthz         process liveness (always 200)
//	GET  /readyz          200 only after rendezvous + DHT attach, 503 while draining
//	     /debug/...       the runtime metrics plane (internal/obs)
//
// Error mapping is HTTPStatus; saturation answers carry Retry-After so
// well-behaved clients back off instead of hammering a full server.

// maxBodyBytes bounds request bodies; batch items are bounded by it
// implicitly.
const maxBodyBytes = 8 << 20

// Handler builds the gateway's full mux around the application layer.
func Handler(s *Service) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("PUT /kv/{key}", func(w http.ResponseWriter, r *http.Request) {
		val, err := readValue(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.Put(r.Context(), r.PathValue("key"), val); err != nil {
			writeErr(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("GET /kv/{key}", func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		val, found, err := s.Get(r.Context(), key)
		if err != nil {
			writeErr(w, err)
			return
		}
		if !found {
			http.Error(w, "key not found", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, kvItem{Key: key, Value: val})
	})

	mux.HandleFunc("POST /kv/batch/put", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Items []kvItem `json:"items"`
		}
		if err := readJSON(r, &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		keys := make([]string, len(req.Items))
		vals := make([]uint64, len(req.Items))
		for i, it := range req.Items {
			keys[i], vals[i] = it.Key, it.Value
		}
		errs, err := s.PutBatch(r.Context(), keys, vals)
		if err != nil {
			writeErr(w, err)
			return
		}
		out := struct {
			Results []batchResult `json:"results"`
		}{Results: make([]batchResult, len(errs))}
		for i, e := range errs {
			out.Results[i] = batchResult{Key: keys[i], OK: e == nil, Error: errString(e)}
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("POST /kv/batch/get", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Keys []string `json:"keys"`
		}
		if err := readJSON(r, &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := s.GetBatch(r.Context(), req.Keys)
		if err != nil {
			writeErr(w, err)
			return
		}
		out := struct {
			Items []batchItem `json:"items"`
		}{Items: make([]batchItem, len(res))}
		for i, gr := range res {
			out.Items[i] = batchItem{
				Key: req.Keys[i], Value: gr.Val, Found: gr.Found, Error: errString(gr.Err),
			}
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if !s.Ready() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ready\n")
	})

	// The runtime observability plane: /debug/metrics (Prometheus
	// text, including the gate.* and svc.* counters registered as a
	// source), /debug/trace, /debug/ranks, pprof.
	mux.Handle("/debug/", obs.NewDebugHandler(""))

	return mux
}

// kvItem is the JSON shape of one pair, shared by single and batch
// endpoints.
type kvItem struct {
	Key   string `json:"key"`
	Value uint64 `json:"value"`
}

type batchResult struct {
	Key   string `json:"key"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

type batchItem struct {
	Key   string `json:"key"`
	Value uint64 `json:"value,omitempty"`
	Found bool   `json:"found"`
	Error string `json:"error,omitempty"`
}

// readValue parses a PUT body: a bare decimal u64 (curl-friendly) or a
// JSON object {"value": N}.
func readValue(r *http.Request) (uint64, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		return 0, fmt.Errorf("reading body: %w", err)
	}
	text := strings.TrimSpace(string(body))
	if strings.HasPrefix(text, "{") {
		var v struct {
			Value uint64 `json:"value"`
		}
		if err := json.Unmarshal([]byte(text), &v); err != nil {
			return 0, fmt.Errorf("bad JSON body: %w", err)
		}
		return v.Value, nil
	}
	val, err := strconv.ParseUint(text, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("body must be a decimal uint64 or {\"value\": n}: %w", err)
	}
	return val, nil
}

func readJSON(r *http.Request, into any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("bad JSON body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeErr maps an application error to its status; saturation and
// drain carry Retry-After so clients back off.
func writeErr(w http.ResponseWriter, err error) {
	status := HTTPStatus(err)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	http.Error(w, err.Error(), status)
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
