package svc

import (
	"upcxx/internal/core"
	"upcxx/internal/spmd"
)

// gateserve is the compute-rank half of a gateway job: every rank
// joins the K=2 replicated, read-repairing DHT and parks in progress —
// serving shard traffic the whole time — until the gateway rank's
// drain broadcast releases it into the closing collective checksum.
// upcxx-run's -gateway mode launches this program on ranks 0..n-1 and
// the upcxx-gate binary as rank n of the same wire job; the body lives
// here (ServeMain) so the launcher, the benchmarks and the tests
// assemble the identical topology.
func init() {
	spmd.Register(spmd.Prog{
		Name:         "gateserve",
		Desc:         "gateway compute rank: replicated DHT member serving an upcxx-gate front door until its drain broadcast (use via upcxx-run -gateway)",
		DefaultScale: DefaultGateScale, // distinct keys provisioned for
		SegBytes:     GateSegBytes,
		Run: func(me *core.Rank, scale int) uint64 {
			return ServeMain(me, scale)
		},
		Resilient: true,
		Gateway:   true,
	})
}
