package svc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"upcxx/internal/core"
	"upcxx/internal/dht"
	"upcxx/internal/spmd"
)

// TestGatewayDrainSemantics is the end-to-end drain test the PR's
// satellite demands, deterministic and subprocess-free: a 4-rank
// in-process wire job (3 compute ranks + the gateway) fronted by an
// httptest server over the real mux. It drives the full HTTP surface,
// then drains under concurrent load and verifies the three drain
// guarantees:
//
//  1. every acknowledged write survives — the survivors' collective
//     checksum equals ExpectedChecksum over exactly the acked set,
//     which also proves the aggregator flushed before mesh departure
//     (an unflushed acked insert would be missing from the fold);
//  2. requests arriving during the drain are refused (503 +
//     Retry-After), never hung;
//  3. the job exits cleanly: every rank returns the same checksum.
func TestGatewayDrainSemantics(t *testing.T) {
	const (
		serveRanks = 3
		ranks      = serveRanks + 1
		scale      = 4096
	)
	st := NewDHTStore(StoreConfig{VerifyKeys: true})
	app := New(st, Config{MaxInFlight: 64, RequestTimeout: 10 * time.Second})

	sums := make([]uint64, ranks)
	acked := struct {
		sync.Mutex
		pairs map[uint64]uint64
	}{pairs: map[uint64]uint64{}}
	ack := func(key string, val uint64) {
		acked.Lock()
		acked.pairs[dht.StrKey(key)] = val
		acked.Unlock()
	}

	clientErr := make(chan error, 1)
	go func() {
		clientErr <- func() error {
			for !st.Ready() {
				time.Sleep(time.Millisecond)
			}
			srv := httptest.NewServer(Handler(app))
			defer srv.Close()
			c := srv.Client()

			// -- The full request surface, before the drain. --
			put := func(key string, val uint64) (*http.Response, error) {
				req, _ := http.NewRequest(http.MethodPut,
					fmt.Sprintf("%s/kv/%s", srv.URL, key),
					strings.NewReader(fmt.Sprint(val)))
				return c.Do(req)
			}
			resp, err := put("alpha", 42)
			if err != nil {
				return err
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusNoContent {
				return fmt.Errorf("PUT /kv/alpha: %s", resp.Status)
			}
			ack("alpha", 42)

			resp, err = c.Get(srv.URL + "/kv/alpha")
			if err != nil {
				return err
			}
			var got kvItem
			err = json.NewDecoder(resp.Body).Decode(&got)
			resp.Body.Close()
			if err != nil || got.Value != 42 {
				return fmt.Errorf("GET /kv/alpha = %+v, %v; want value 42", got, err)
			}

			resp, err = c.Get(srv.URL + "/kv/never-written")
			if err != nil {
				return err
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusNotFound {
				return fmt.Errorf("GET missing key: %s, want 404", resp.Status)
			}

			// Batch endpoints.
			var batch struct {
				Items []kvItem `json:"items"`
			}
			for i := 0; i < 200; i++ {
				batch.Items = append(batch.Items,
					kvItem{Key: fmt.Sprintf("batch-%d", i), Value: uint64(1000 + i)})
			}
			body, _ := json.Marshal(batch)
			resp, err = c.Post(srv.URL+"/kv/batch/put", "application/json", bytes.NewReader(body))
			if err != nil {
				return err
			}
			var putOut struct {
				Results []batchResult `json:"results"`
			}
			err = json.NewDecoder(resp.Body).Decode(&putOut)
			resp.Body.Close()
			if err != nil || len(putOut.Results) != 200 {
				return fmt.Errorf("batch put: %v, %d results", err, len(putOut.Results))
			}
			for _, r := range putOut.Results {
				if !r.OK {
					return fmt.Errorf("batch put %s failed: %s", r.Key, r.Error)
				}
			}
			for _, it := range batch.Items {
				ack(it.Key, it.Value)
			}

			var keys struct {
				Keys []string `json:"keys"`
			}
			for i := 0; i < 200; i++ {
				keys.Keys = append(keys.Keys, fmt.Sprintf("batch-%d", i))
			}
			body, _ = json.Marshal(keys)
			resp, err = c.Post(srv.URL+"/kv/batch/get", "application/json", bytes.NewReader(body))
			if err != nil {
				return err
			}
			var getOut struct {
				Items []batchItem `json:"items"`
			}
			err = json.NewDecoder(resp.Body).Decode(&getOut)
			resp.Body.Close()
			if err != nil {
				return err
			}
			for i, it := range getOut.Items {
				if !it.Found || it.Value != uint64(1000+i) {
					return fmt.Errorf("batch get %s = %+v, want found value %d", it.Key, it, 1000+i)
				}
			}

			if resp, err = c.Get(srv.URL + "/readyz"); err != nil {
				return err
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("readyz before drain: %s", resp.Status)
			}

			// -- Drain under concurrent writers. --
			// Workers hammer puts on distinct keys until refused; every
			// 204 is recorded as acked. The drain starts while they run.
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; ; i++ {
						key := fmt.Sprintf("drain-%d-%d", w, i)
						val := uint64(w*1_000_000 + i)
						resp, err := put(key, val)
						if err != nil {
							return
						}
						status := resp.StatusCode
						retryAfter := resp.Header.Get("Retry-After")
						resp.Body.Close()
						switch status {
						case http.StatusNoContent:
							ack(key, val)
						case http.StatusServiceUnavailable:
							if retryAfter == "" {
								clientErr <- fmt.Errorf("503 during drain without Retry-After")
							}
							return
						default:
							clientErr <- fmt.Errorf("drain-time put: unexpected %d", status)
							return
						}
					}
				}(w)
			}
			time.Sleep(30 * time.Millisecond) // let the workers land in flight
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			if err := app.Drain(ctx); err != nil {
				return fmt.Errorf("Drain: %w", err)
			}
			wg.Wait()

			// -- After the drain: refused, not ready, never hung. --
			resp, err = put("late", 1)
			if err != nil {
				return err
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusServiceUnavailable {
				return fmt.Errorf("put after drain: %s, want 503", resp.Status)
			}
			if resp, err = c.Get(srv.URL + "/readyz"); err != nil {
				return err
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusServiceUnavailable {
				return fmt.Errorf("readyz after drain: %s, want 503", resp.Status)
			}

			st.Stop() // release the mesh: queue is drained, ranks depart
			return nil
		}()
	}()

	_, err := spmd.RunWireLocal(ranks, GateSegBytes(ranks, scale),
		core.Config{Resilient: true}, func(me *core.Rank) {
			if me.ID() < serveRanks {
				sums[me.ID()] = ServeMain(me, scale)
			} else {
				sums[me.ID()] = GatewayMain(me, st, scale)
			}
		})
	if err != nil {
		t.Fatalf("RunWireLocal: %v", err)
	}
	if err := <-clientErr; err != nil {
		t.Fatal(err)
	}

	for r := 1; r < ranks; r++ {
		if sums[r] != sums[0] {
			t.Fatalf("checksum mismatch: rank %d = %#x, rank 0 = %#x", r, sums[r], sums[0])
		}
	}
	want := dht.ExpectedChecksum(acked.pairs)
	if sums[0] != want {
		t.Fatalf("acked-write durability: collective checksum %#x != expected %#x over %d acked pairs",
			sums[0], want, len(acked.pairs))
	}
}
