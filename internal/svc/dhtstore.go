package svc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"upcxx/internal/core"
	"upcxx/internal/dht"
)

// DHTStore is the outbound adapter binding the Store port to the
// replicated DHT. It is a single-consumer operation queue across the
// runtime's hard concurrency boundary:
//
//   - HTTP handler goroutines call Put/Get/`*Batch`: they enqueue an op
//     under the mutex, nudge the rank's progress loop through the
//     conduit's waker extension, and block on the op's done channel.
//   - The rank's SPMD goroutine runs Serve: it parks in WaitUntil —
//     servicing DHT traffic, heartbeats and aggregation the whole time
//     — takes due ops, issues them against the table (inserts complete
//     into promises, lookups settle through OnDone), flushes the
//     aggregator once per batch so concurrent requests coalesce into
//     shared frames, and settles each op back to its waiting client.
//
// Typed failures retry with backoff on the serve loop: a rank death
// re-routes to the surviving replicas on the next attempt (the PR-6
// failover-retry policy), and only an exhausted budget surfaces to the
// client as ErrUnavailable.
type DHTStore struct {
	cfg StoreConfig

	mu     sync.Mutex
	queue  []*op
	wake   func()
	closed bool // serve loop has exited; no op can ever settle again

	ready    atomic.Bool
	stopping atomic.Bool

	// inflight counts issued-but-unsettled ops. Touched only on the
	// SPMD goroutine (issue and settle both run there).
	inflight int

	// Counters, read by the metrics plane from other goroutines.
	puts, gets, retries, failures atomic.Int64
}

// StoreConfig tunes the adapter.
type StoreConfig struct {
	// Retry is the failover-retry policy for typed runtime failures.
	// Unlike the runtime default, the adapter retries core.ErrRankDead
	// (when Retryable is nil): the DHT re-routes around dead replicas,
	// so the next attempt lands on the survivors. MaxAttempts and
	// Backoff default per core.RetryPolicy (3 attempts, 1ms doubling).
	Retry core.RetryPolicy
	// VerifyKeys routes string keys through dht.StrKeys, panicking on
	// a 64-bit hash collision instead of silently aliasing two keys.
	// Costs one map entry per distinct key; tests and verifying runs
	// set it.
	VerifyKeys bool
}

type opKind uint8

const (
	opPut opKind = iota
	opGet
)

// op is one client operation crossing the boundary.
type op struct {
	kind opKind
	key  string
	val  uint64 // put payload

	out  GetResult // settled outcome (Err doubles for puts)
	done chan struct{}

	attempts  int
	notBefore time.Time // backoff gate; zero = due immediately
}

// NewDHTStore returns an unbound store; it reports Ready only once a
// rank's Serve loop has attached.
func NewDHTStore(cfg StoreConfig) *DHTStore {
	if cfg.Retry.MaxAttempts <= 0 {
		cfg.Retry.MaxAttempts = 3
	}
	if cfg.Retry.Backoff <= 0 {
		cfg.Retry.Backoff = time.Millisecond
	}
	if cfg.Retry.Retryable == nil {
		// Failover retry: every typed failure is worth another attempt,
		// ErrRankDead included — re-issue routes to surviving replicas.
		cfg.Retry.Retryable = func(error) bool { return true }
	}
	return &DHTStore{cfg: cfg}
}

// ---- Client side (any goroutine) ----

// Put implements Store.Put.
func (st *DHTStore) Put(ctx context.Context, key string, val uint64) error {
	o := &op{kind: opPut, key: key, val: val, done: make(chan struct{})}
	if err := st.enqueue(o); err != nil {
		return err
	}
	select {
	case <-o.done:
		return o.out.Err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Get implements Store.Get.
func (st *DHTStore) Get(ctx context.Context, key string) (uint64, bool, error) {
	o := &op{kind: opGet, key: key, done: make(chan struct{})}
	if err := st.enqueue(o); err != nil {
		return 0, false, err
	}
	select {
	case <-o.done:
		return o.out.Val, o.out.Found, o.out.Err
	case <-ctx.Done():
		return 0, false, ctx.Err()
	}
}

// PutBatch implements Store.PutBatch: all pairs enqueue under one lock
// and one wake, so the serve loop issues them as one aggregated batch.
func (st *DHTStore) PutBatch(ctx context.Context, keys []string, vals []uint64) []error {
	ops := make([]*op, len(keys))
	for i := range keys {
		ops[i] = &op{kind: opPut, key: keys[i], val: vals[i], done: make(chan struct{})}
	}
	errs := make([]error, len(keys))
	if err := st.enqueueAll(ops); err != nil {
		for i := range errs {
			errs[i] = err
		}
		return errs
	}
	for i, o := range ops {
		select {
		case <-o.done:
			errs[i] = o.out.Err
		case <-ctx.Done():
			errs[i] = ctx.Err()
		}
	}
	return errs
}

// GetBatch implements Store.GetBatch.
func (st *DHTStore) GetBatch(ctx context.Context, keys []string) []GetResult {
	ops := make([]*op, len(keys))
	for i := range keys {
		ops[i] = &op{kind: opGet, key: keys[i], done: make(chan struct{})}
	}
	res := make([]GetResult, len(keys))
	if err := st.enqueueAll(ops); err != nil {
		for i := range res {
			res[i] = GetResult{Err: err}
		}
		return res
	}
	for i, o := range ops {
		select {
		case <-o.done:
			res[i] = o.out
		case <-ctx.Done():
			res[i] = GetResult{Err: ctx.Err()}
		}
	}
	return res
}

// Ready implements Store.Ready.
func (st *DHTStore) Ready() bool { return st.ready.Load() }

// Stop asks the serve loop to drain: issue and settle everything
// already queued, refuse new work, then return. Safe from any
// goroutine; returns immediately (Serve's return is the completion
// signal — the gateway's SPMD body continues past it into the
// departure sequence).
func (st *DHTStore) Stop() {
	st.stopping.Store(true)
	st.mu.Lock()
	wake := st.wake
	st.mu.Unlock()
	if wake != nil {
		wake()
	}
}

// enqueue hands one op to the serve loop.
func (st *DHTStore) enqueue(o *op) error { return st.enqueueAll([]*op{o}) }

func (st *DHTStore) enqueueAll(ops []*op) error {
	if st.stopping.Load() {
		return ErrDraining
	}
	st.mu.Lock()
	// Re-check under the lock: the serve loop's exit decision (closed)
	// is taken under this mutex, so an op appended here is guaranteed
	// to be settled before the loop returns.
	if st.closed {
		st.mu.Unlock()
		return ErrDraining
	}
	st.queue = append(st.queue, ops...)
	wake := st.wake
	st.mu.Unlock()
	if wake != nil {
		wake()
	}
	return nil
}

// ---- Serve side (the rank's SPMD goroutine) ----

// Serve binds the store to the rank and its table and runs the serve
// loop until Stop has been called AND every accepted op has settled.
// The rank must be on a resilient wire job: the loop parks in
// WaitUntil and relies on the conduit's waker extension plus the
// resilient tick to observe new work and due backoffs promptly.
func (st *DHTStore) Serve(me *core.Rank, tbl *dht.Table) {
	var keys *dht.StrKeys
	if st.cfg.VerifyKeys {
		keys = dht.NewStrKeys()
	}
	hash := dht.StrKey
	if keys != nil {
		hash = keys.Key
	}

	st.mu.Lock()
	st.wake = me.ExternalWaker()
	st.mu.Unlock()
	st.ready.Store(true)

	for {
		me.WaitUntil(func() bool {
			if st.dueNow() {
				return true
			}
			return st.stopping.Load() && st.idle()
		})
		batch := st.take()
		for _, o := range batch {
			st.issue(me, tbl, hash, o)
		}
		if len(batch) > 0 {
			core.AggFlush(me)
		}
		if st.stopping.Load() && st.tryClose() {
			break
		}
	}
	// Every op is settled; drain the aggregation plane (read-repair
	// re-inserts travel with nil completers) before the rank departs.
	core.AggDrain(me)
	st.ready.Store(false)
}

// dueNow reports whether any queued op's backoff gate has passed.
func (st *DHTStore) dueNow() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.queue) == 0 {
		return false
	}
	now := time.Now()
	for _, o := range st.queue {
		if !o.notBefore.After(now) {
			return true
		}
	}
	return false
}

// idle reports drain completion: nothing queued, nothing in flight.
func (st *DHTStore) idle() bool {
	st.mu.Lock()
	empty := len(st.queue) == 0
	st.mu.Unlock()
	return empty && st.inflight == 0
}

// tryClose atomically confirms drain completion and seals the queue:
// taken under the same mutex as enqueueAll's append, so either the op
// made it in (and the loop keeps running to settle it) or the client
// got ErrDraining — an accepted op can never be abandoned.
func (st *DHTStore) tryClose() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.queue) == 0 && st.inflight == 0 {
		st.closed = true
		return true
	}
	return false
}

// take removes and returns every due op.
func (st *DHTStore) take() []*op {
	st.mu.Lock()
	defer st.mu.Unlock()
	now := time.Now()
	var due []*op
	rest := st.queue[:0]
	for _, o := range st.queue {
		if o.notBefore.After(now) {
			rest = append(rest, o)
		} else {
			due = append(due, o)
		}
	}
	for i := len(rest); i < len(st.queue); i++ {
		st.queue[i] = nil
	}
	st.queue = rest
	return due
}

// issue starts one op against the table. Runs on the SPMD goroutine.
func (st *DHTStore) issue(me *core.Rank, tbl *dht.Table, hash func(string) uint64, o *op) {
	st.inflight++
	k := hash(o.key)
	switch o.kind {
	case opPut:
		st.puts.Add(1)
		if err := st.tryInsert(me, tbl, k, o); err != nil {
			st.settle(me, o, err)
		}
	case opGet:
		st.gets.Add(1)
		tbl.Lookup(me, k).OnDone(func(l *dht.Lookup) {
			v, found, err := l.Result()
			o.out.Val, o.out.Found = v, found
			st.settle(me, o, err)
		})
	}
}

// tryInsert issues one replicated insert, converting the table's typed
// every-replica-dead panic into an error the retry plane handles. A
// nil return means the op's promise is armed: acknowledgement of every
// live replica settles it through the Then continuation.
func (st *DHTStore) tryInsert(me *core.Rank, tbl *dht.Table, key uint64, o *op) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		e, ok := r.(error)
		if !ok || !errors.Is(e, core.ErrRankDead) {
			panic(r)
		}
		err = e
	}()
	p := core.NewPromise(me)
	tbl.Insert(me, key, o.val, p)
	core.Then(p.Finalize(), func(struct{}) struct{} {
		st.settle(me, o, nil)
		return struct{}{}
	})
	return nil
}

// settle finishes one issued op: success and exhausted failures
// release the waiting client; retryable failures go back in the queue
// behind a doubling backoff. Runs on the SPMD goroutine (from progress
// dispatch or inline from issue).
func (st *DHTStore) settle(me *core.Rank, o *op, err error) {
	st.inflight--
	if err != nil {
		o.attempts++
		if o.attempts < st.cfg.Retry.MaxAttempts && st.cfg.Retry.Retryable(err) {
			st.retries.Add(1)
			o.notBefore = time.Now().Add(st.cfg.Retry.Backoff << (o.attempts - 1))
			st.mu.Lock()
			st.queue = append(st.queue, o)
			st.mu.Unlock()
			return
		}
		st.failures.Add(1)
		err = fmt.Errorf("%w: %w", ErrUnavailable, err)
	}
	o.out.Err = err
	close(o.done)
}

// Counters exposes the adapter's counters for the metrics plane.
func (st *DHTStore) Counters() map[string]float64 {
	st.mu.Lock()
	queued := len(st.queue)
	st.mu.Unlock()
	return map[string]float64{
		"gate.puts":     float64(st.puts.Load()),
		"gate.gets":     float64(st.gets.Load()),
		"gate.retries":  float64(st.retries.Load()),
		"gate.failures": float64(st.failures.Load()),
		"gate.queued":   float64(queued),
	}
}
