package svc

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"upcxx/internal/core"
)

// Config tunes the application layer's production behaviors.
type Config struct {
	// MaxInFlight bounds admitted requests; one more is rejected with
	// ErrSaturated (429) instead of queueing — the service sheds load
	// at the door rather than letting latency grow without bound.
	// Default 1024.
	MaxInFlight int
	// RequestTimeout bounds each admitted request end to end; expiry
	// maps to 504. Default 5s.
	RequestTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 1024
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	return c
}

// Service is the application layer: admission control, per-request
// deadlines and graceful drain around a Store. It is transport-
// agnostic — the HTTP adapter calls these methods, and so do tests,
// without a socket in sight.
type Service struct {
	store Store
	cfg   Config

	mu       sync.Mutex
	inflight int           // admitted, unfinished requests
	draining bool          // Drain has begun; reject everything new
	idle     chan struct{} // non-nil while Drain waits; closed at inflight 0

	// Counters for the metrics plane.
	admitted  atomic.Int64
	rejected  atomic.Int64
	timeouts  atomic.Int64
	storeErrs atomic.Int64
}

// New wraps store in the application layer.
func New(store Store, cfg Config) *Service {
	return &Service{store: store, cfg: cfg.withDefaults()}
}

// admit claims one in-flight slot, without queueing: a saturated
// service answers immediately, it never builds an invisible backlog.
// The returned release must be called exactly once when the request
// finishes.
func (s *Service) admit() (release func(), err error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	if s.inflight >= s.cfg.MaxInFlight {
		s.mu.Unlock()
		s.rejected.Add(1)
		return nil, ErrSaturated
	}
	s.inflight++
	s.mu.Unlock()
	s.admitted.Add(1)
	return func() {
		s.mu.Lock()
		s.inflight--
		if s.inflight == 0 && s.idle != nil {
			close(s.idle)
			s.idle = nil
		}
		s.mu.Unlock()
	}, nil
}

// Put stores one pair through admission control.
func (s *Service) Put(ctx context.Context, key string, val uint64) error {
	release, err := s.admit()
	if err != nil {
		return err
	}
	defer release()
	ctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
	defer cancel()
	return s.note(s.store.Put(ctx, key, val))
}

// Get reads one key through admission control.
func (s *Service) Get(ctx context.Context, key string) (uint64, bool, error) {
	release, err := s.admit()
	if err != nil {
		return 0, false, err
	}
	defer release()
	ctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
	defer cancel()
	v, found, err := s.store.Get(ctx, key)
	return v, found, s.note(err)
}

// PutBatch stores a set of pairs under ONE admission slot and one
// deadline: the batch is the unit of admission, which is the point of
// offering batch endpoints — a thousand keys cost one slot and
// coalesce into aggregated traffic.
func (s *Service) PutBatch(ctx context.Context, keys []string, vals []uint64) ([]error, error) {
	release, err := s.admit()
	if err != nil {
		return nil, err
	}
	defer release()
	ctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
	defer cancel()
	errs := s.store.PutBatch(ctx, keys, vals)
	for _, e := range errs {
		s.note(e)
	}
	return errs, nil
}

// GetBatch reads a set of keys under one admission slot.
func (s *Service) GetBatch(ctx context.Context, keys []string) ([]GetResult, error) {
	release, err := s.admit()
	if err != nil {
		return nil, err
	}
	defer release()
	ctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
	defer cancel()
	res := s.store.GetBatch(ctx, keys)
	for _, r := range res {
		s.note(r.Err)
	}
	return res, nil
}

// note feeds the error counters and passes err through.
func (s *Service) note(err error) error {
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
	default:
		s.storeErrs.Add(1)
	}
	return err
}

// Ready reports whether the service can serve traffic: store attached
// and not draining. /readyz serves this.
func (s *Service) Ready() bool {
	return !s.Draining() && s.store.Ready()
}

// Draining reports whether Drain has begun.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain flips the service into drain mode — every new request is
// rejected with ErrDraining, /readyz goes negative — and blocks until
// the in-flight requests finish or ctx expires. It is step one of the
// SIGTERM sequence; the caller then drains the store adapter and
// leaves the mesh.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	if s.inflight == 0 {
		s.mu.Unlock()
		return nil
	}
	if s.idle == nil {
		s.idle = make(chan struct{})
	}
	idle := s.idle
	s.mu.Unlock()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Counters exposes the application layer's counters for the metrics
// plane (merged into /debug/metrics by the HTTP adapter).
func (s *Service) Counters() map[string]float64 {
	s.mu.Lock()
	inflight := s.inflight
	s.mu.Unlock()
	return map[string]float64{
		"svc.admitted":   float64(s.admitted.Load()),
		"svc.rejected":   float64(s.rejected.Load()),
		"svc.timeouts":   float64(s.timeouts.Load()),
		"svc.store_errs": float64(s.storeErrs.Load()),
		"svc.inflight":   float64(inflight),
	}
}

// HTTPStatus maps an application-layer error onto its transport status
// code, the single place wire semantics are decided:
//
//	nil                       → 200
//	ErrSaturated              → 429 (client should back off; Retry-After set)
//	ErrDraining               → 503 (instance going away; retry elsewhere)
//	ErrUnavailable            → 503 (replicas lost / failover exhausted)
//	core.ErrRankDead (typed)  → 503 (death surfaced mid-request)
//	context.DeadlineExceeded  → 504
//	anything else             → 500
func HTTPStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrSaturated):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining), errors.Is(err, ErrUnavailable),
		errors.Is(err, core.ErrRankDead):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}
