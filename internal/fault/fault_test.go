package fault

import (
	"strings"
	"testing"
	"time"
)

func TestParseValidPlans(t *testing.T) {
	cases := []struct {
		spec string
		want []Rule
	}{
		{
			"kill:rank=2,at=500ms",
			[]Rule{{Kind: Kill, Rank: 2, Peer: AnyPeer, Handler: AnyHandler, At: 500 * time.Millisecond}},
		},
		{
			"drop:rank=1,peer=0,handler=1,op=1",
			[]Rule{{Kind: Drop, Rank: 1, Peer: 0, Handler: 1, AtOp: 1}},
		},
		{
			"sever:rank=0,peer=2,op=3;delay:rank=3,op=1,delay=20ms",
			[]Rule{
				{Kind: Sever, Rank: 0, Peer: 2, Handler: AnyHandler, AtOp: 3},
				{Kind: Delay, Rank: 3, Peer: AnyPeer, Handler: AnyHandler, AtOp: 1, Delay: 20 * time.Millisecond},
			},
		},
		{
			" drop:rank=0,op=2 ; kill:rank=1,at=1s ",
			[]Rule{
				{Kind: Drop, Rank: 0, Peer: AnyPeer, Handler: AnyHandler, AtOp: 2},
				{Kind: Kill, Rank: 1, Peer: AnyPeer, Handler: AnyHandler, At: time.Second},
			},
		},
	}
	for _, c := range cases {
		p, err := Parse(c.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.spec, err)
			continue
		}
		if len(p.Rules) != len(c.want) {
			t.Errorf("Parse(%q): %d rules, want %d", c.spec, len(p.Rules), len(c.want))
			continue
		}
		for i, r := range p.Rules {
			if r != c.want[i] {
				t.Errorf("Parse(%q) rule %d = %+v, want %+v", c.spec, i, r, c.want[i])
			}
		}
		// The plan must round-trip through its text form.
		back, err := Parse(p.String())
		if err != nil {
			t.Errorf("Parse(String(%q)): %v", c.spec, err)
			continue
		}
		for i, r := range back.Rules {
			if r != c.want[i] {
				t.Errorf("round trip of %q rule %d = %+v, want %+v", c.spec, i, r, c.want[i])
			}
		}
	}
}

func TestParseRejectsBadPlans(t *testing.T) {
	cases := []struct{ spec, errFrag string }{
		{"", "empty plan"},
		{"explode:rank=0,op=1", "unknown kind"},
		{"drop:op=1", "missing rank"},
		{"drop:rank=0", "needs op= or at="},
		{"drop:rank=0,op=0", "op must be >= 1"},
		{"delay:rank=0,op=1", "needs delay="},
		{"kill:rank=2", "kill needs at="},
		{"kill:rank=2,at=1s,op=3", "only rank= and at="},
		{"drop:rank=0,op=1,shape=round", "unknown key"},
		{"drop rank=0", "want kind:key=value"},
		{"drop:rank=zero,op=1", "invalid syntax"},
	}
	for _, c := range cases {
		_, err := Parse(c.spec)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.spec, c.errFrag)
			continue
		}
		if !strings.Contains(err.Error(), c.errFrag) {
			t.Errorf("Parse(%q) = %v, want error containing %q", c.spec, err, c.errFrag)
		}
	}
}

// TestOpTriggersFireExactlyOnce drives a frame sequence through an
// injector and checks each rule fires on exactly the frame its op=
// names, and never again.
func TestOpTriggersFireExactlyOnce(t *testing.T) {
	type frame struct {
		peer    int
		handler uint16
	}
	cases := []struct {
		name   string
		spec   string
		frames []frame
		// hits[i] is the expected fired action kind for frame i, or -1.
		hits []Kind
	}{
		{
			name:   "third frame any filter",
			spec:   "drop:rank=0,op=3",
			frames: []frame{{1, 9}, {1, 9}, {1, 9}, {1, 9}},
			hits:   []Kind{-1, -1, Drop, -1},
		},
		{
			name:   "peer filter counts only matching frames",
			spec:   "sever:rank=0,peer=2,op=2",
			frames: []frame{{2, 1}, {1, 1}, {1, 1}, {2, 1}, {2, 1}},
			hits:   []Kind{-1, -1, -1, Sever, -1},
		},
		{
			name:   "handler filter",
			spec:   "delay:rank=0,handler=7,op=1,delay=1ms",
			frames: []frame{{1, 6}, {1, 7}, {1, 7}},
			hits:   []Kind{-1, Delay, -1},
		},
		{
			name:   "two independent rules",
			spec:   "drop:rank=0,peer=1,op=1;drop:rank=0,peer=2,op=1",
			frames: []frame{{1, 3}, {2, 3}, {1, 3}, {2, 3}},
			hits:   []Kind{Drop, Drop, -1, -1},
		},
		{
			name:   "rules for other ranks are inert",
			spec:   "drop:rank=5,op=1",
			frames: []frame{{1, 1}, {1, 1}},
			hits:   []Kind{-1, -1},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			plan, err := Parse(c.spec)
			if err != nil {
				t.Fatal(err)
			}
			in := plan.ForRank(0)
			for i, f := range c.frames {
				act, fired := in.OnSend(f.peer, f.handler)
				if want := c.hits[i]; want == -1 {
					if fired {
						t.Fatalf("frame %d: fired %v, want no fire", i, act.Kind)
					}
				} else {
					if !fired {
						t.Fatalf("frame %d: no fire, want %v", i, want)
					}
					if act.Kind != want {
						t.Fatalf("frame %d: fired %v, want %v", i, act.Kind, want)
					}
				}
			}
		})
	}
}

// TestTimeTriggersDormantUntilArm: at= rules must not fire before the
// plan is armed, and fire exactly once after the trigger elapses.
func TestTimeTriggersDormantUntilArm(t *testing.T) {
	plan, err := Parse("drop:rank=0,at=5ms")
	if err != nil {
		t.Fatal(err)
	}
	in := plan.ForRank(0)
	if _, fired := in.OnSend(1, 1); fired {
		t.Fatal("time rule fired before Arm")
	}
	in.Arm()
	if !in.Armed() {
		t.Fatal("Armed() false after Arm")
	}
	if _, fired := in.OnSend(1, 1); fired {
		t.Fatal("time rule fired before its trigger elapsed")
	}
	time.Sleep(10 * time.Millisecond)
	act, fired := in.OnSend(1, 1)
	if !fired || act.Kind != Drop {
		t.Fatalf("after trigger: (%v, %v), want (Drop, true)", act.Kind, fired)
	}
	if _, fired := in.OnSend(1, 1); fired {
		t.Fatal("time rule fired twice")
	}
}

func TestKillAfterAndPlanQueries(t *testing.T) {
	plan, err := Parse("kill:rank=2,at=500ms;drop:rank=0,op=1;kill:rank=3,at=200ms")
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := plan.ForRank(2).KillAfter(); !ok || d != 500*time.Millisecond {
		t.Errorf("rank 2 KillAfter = (%v, %v), want (500ms, true)", d, ok)
	}
	if _, ok := plan.ForRank(0).KillAfter(); ok {
		t.Error("rank 0 KillAfter fired on a non-kill plan")
	}
	if !plan.KillsRank(2) || !plan.KillsRank(3) || plan.KillsRank(0) {
		t.Error("KillsRank wrong")
	}
	if got := plan.KillRanks(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("KillRanks = %v, want [2 3]", got)
	}
	if plan.Horizon() != 500*time.Millisecond {
		t.Errorf("Horizon = %v, want 500ms", plan.Horizon())
	}
	// A nil plan is a fully inert seam.
	var nilPlan *Plan
	if nilPlan.ForRank(0) != nil || nilPlan.KillsRank(0) || nilPlan.Horizon() != 0 {
		t.Error("nil plan not inert")
	}
	var nilInj *Injector
	nilInj.Arm()
	if _, fired := nilInj.OnSend(0, 0); fired {
		t.Error("nil injector fired")
	}
}

// TestForRankCaching: the transport and the runtime must share one
// trigger state, so ForRank returns the identical injector.
func TestForRankCaching(t *testing.T) {
	plan, err := Parse("drop:rank=1,op=1")
	if err != nil {
		t.Fatal(err)
	}
	a, b := plan.ForRank(1), plan.ForRank(1)
	if a != b {
		t.Fatal("ForRank returned distinct injectors for one rank")
	}
	if _, fired := a.OnSend(0, 1); !fired {
		t.Fatal("first consult did not fire")
	}
	if _, fired := b.OnSend(0, 1); fired {
		t.Fatal("shared rule fired twice through the second handle")
	}
}
