// Package fault is the deterministic fault-injection plan threaded
// through the transport and wire-conduit layers. A Plan is a set of
// Rules — drop this frame, delay that one, sever a connection
// mid-frame, kill a whole rank — each triggered either by an outgoing
// operation count or by elapsed time since the plan was armed. The
// seam is a no-op when no plan is installed (every consult is a
// nil-receiver method call), so production paths pay one branch; with
// a plan installed every failure scenario in the test suite is
// reproducible in-process under `go test -race`.
//
// Plans parse from the compact text form the upcxx-run launcher's
// -chaos flag takes:
//
//	kill:rank=2,at=500ms
//	drop:rank=1,peer=0,handler=1,op=1;delay:rank=0,peer=2,op=3,delay=20ms
//
// Rules are ';'-separated; each is "kind:key=value,...". Every rule
// names the rank it runs on (rank=). Transport rules (drop, delay,
// sever) optionally filter by destination peer (peer=) and frame
// handler id (handler=), and trigger on the Nth matching outgoing
// frame (op=, 1-based) or at a duration after arming (at=). Kill
// rules take only at= and are executed by the launcher/runtime, not
// the transport.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind enumerates what a rule does when it fires.
type Kind int

const (
	// Drop silently discards one outgoing frame.
	Drop Kind = iota
	// Delay stalls one outgoing frame by Rule.Delay before sending.
	Delay
	// Sever writes a frame header and then closes the connection, so
	// the peer observes a mid-frame stream cut (unexpected EOF).
	Sever
	// Kill terminates the whole rank at Rule.At after arming. The
	// transport never consults Kill rules; the runtime (core.ChaosArm)
	// and the launcher execute them.
	Kill
)

func (k Kind) String() string {
	switch k {
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Sever:
		return "sever"
	case Kill:
		return "kill"
	}
	return fmt.Sprintf("fault.Kind(%d)", int(k))
}

// AnyPeer / AnyHandler are the wildcard filter values.
const (
	AnyPeer    = -1
	AnyHandler = -1
)

// Rule is one injected fault. Zero filter semantics: Peer/Handler
// default to the wildcards via Parse; a hand-built Rule must set them
// explicitly (0 is a valid rank and a valid handler id).
type Rule struct {
	Kind Kind
	// Rank is the rank whose injector fires this rule.
	Rank int
	// Peer filters transport rules by destination rank (AnyPeer: any).
	Peer int
	// Handler filters transport rules by frame handler id (AnyHandler:
	// any).
	Handler int
	// AtOp triggers on the Nth matching outgoing frame, 1-based.
	// 0 means the rule is not op-triggered.
	AtOp int64
	// At triggers once this much time elapsed since Injector.Arm.
	// 0 means the rule is not time-triggered.
	At time.Duration
	// Delay is the stall applied by Delay rules.
	Delay time.Duration
}

func (r Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:rank=%d", r.Kind, r.Rank)
	if r.Peer != AnyPeer {
		fmt.Fprintf(&b, ",peer=%d", r.Peer)
	}
	if r.Handler != AnyHandler {
		fmt.Fprintf(&b, ",handler=%d", r.Handler)
	}
	if r.AtOp != 0 {
		fmt.Fprintf(&b, ",op=%d", r.AtOp)
	}
	if r.At != 0 {
		fmt.Fprintf(&b, ",at=%s", r.At)
	}
	if r.Delay != 0 {
		fmt.Fprintf(&b, ",delay=%s", r.Delay)
	}
	return b.String()
}

// Plan is a parsed fault plan. It is safe for concurrent use; the
// per-rank Injectors it hands out are cached, so the transport and
// the runtime arming the plan on the same rank share one trigger
// state and every rule fires exactly once.
type Plan struct {
	Rules []Rule

	mu        sync.Mutex
	injectors map[int]*Injector
}

// Parse builds a Plan from the ';'-separated rule list described in
// the package comment.
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := parseRule(part)
		if err != nil {
			return nil, err
		}
		p.Rules = append(p.Rules, r)
	}
	if len(p.Rules) == 0 {
		return nil, fmt.Errorf("fault: empty plan %q", spec)
	}
	return p, nil
}

func parseRule(spec string) (Rule, error) {
	kind, fields, ok := strings.Cut(spec, ":")
	if !ok {
		return Rule{}, fmt.Errorf("fault: rule %q: want kind:key=value,...", spec)
	}
	r := Rule{Rank: -1, Peer: AnyPeer, Handler: AnyHandler}
	switch strings.TrimSpace(kind) {
	case "drop":
		r.Kind = Drop
	case "delay":
		r.Kind = Delay
	case "sever":
		r.Kind = Sever
	case "kill":
		r.Kind = Kill
	default:
		return Rule{}, fmt.Errorf("fault: rule %q: unknown kind %q", spec, kind)
	}
	for _, kv := range strings.Split(fields, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Rule{}, fmt.Errorf("fault: rule %q: bad field %q", spec, kv)
		}
		var err error
		switch key {
		case "rank":
			r.Rank, err = strconv.Atoi(val)
		case "peer":
			r.Peer, err = strconv.Atoi(val)
		case "handler":
			r.Handler, err = strconv.Atoi(val)
		case "op":
			r.AtOp, err = strconv.ParseInt(val, 10, 64)
			if err == nil && r.AtOp < 1 {
				err = fmt.Errorf("op must be >= 1")
			}
		case "at":
			r.At, err = time.ParseDuration(val)
		case "delay":
			r.Delay, err = time.ParseDuration(val)
		default:
			err = fmt.Errorf("unknown key")
		}
		if err != nil {
			return Rule{}, fmt.Errorf("fault: rule %q: field %q: %v", spec, kv, err)
		}
	}
	if r.Rank < 0 {
		return Rule{}, fmt.Errorf("fault: rule %q: missing rank=", spec)
	}
	switch r.Kind {
	case Kill:
		if r.At == 0 {
			return Rule{}, fmt.Errorf("fault: rule %q: kill needs at=", spec)
		}
		if r.AtOp != 0 || r.Peer != AnyPeer || r.Handler != AnyHandler {
			return Rule{}, fmt.Errorf("fault: rule %q: kill takes only rank= and at=", spec)
		}
	case Delay:
		if r.Delay <= 0 {
			return Rule{}, fmt.Errorf("fault: rule %q: delay rule needs delay=", spec)
		}
		fallthrough
	default:
		if r.AtOp == 0 && r.At == 0 {
			return Rule{}, fmt.Errorf("fault: rule %q: needs op= or at= trigger", spec)
		}
	}
	return r, nil
}

// String renders the plan back to its parseable text form.
func (p *Plan) String() string {
	parts := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, ";")
}

// ForRank returns the (cached) Injector carrying rank's rules. The
// same *Injector is returned on every call, so independent layers
// consulting the plan share exactly-once trigger state. Nil-safe: a
// nil plan returns a nil injector, which is itself a no-op.
func (p *Plan) ForRank(rank int) *Injector {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.injectors == nil {
		p.injectors = make(map[int]*Injector)
	}
	if in, ok := p.injectors[rank]; ok {
		return in
	}
	in := &Injector{rank: rank}
	for _, r := range p.Rules {
		if r.Rank == rank {
			in.rules = append(in.rules, &ruleState{rule: r})
		}
	}
	p.injectors[rank] = in
	return in
}

// KillsRank reports whether the plan kills rank — launchers use this
// to treat that rank's death as expected rather than a job failure.
func (p *Plan) KillsRank(rank int) bool {
	if p == nil {
		return false
	}
	for _, r := range p.Rules {
		if r.Kind == Kill && r.Rank == rank {
			return true
		}
	}
	return false
}

// Horizon is the latest time-trigger in the whole plan, from arming.
// Programs that must survive the plan keep verifying past this point.
func (p *Plan) Horizon() time.Duration {
	if p == nil {
		return 0
	}
	var h time.Duration
	for _, r := range p.Rules {
		if r.At > h {
			h = r.At
		}
	}
	return h
}

// KillRanks lists the ranks the plan kills, ascending.
func (p *Plan) KillRanks() []int {
	if p == nil {
		return nil
	}
	seen := map[int]bool{}
	var out []int
	for _, r := range p.Rules {
		if r.Kind == Kill && !seen[r.Rank] {
			seen[r.Rank] = true
			out = append(out, r.Rank)
		}
	}
	sort.Ints(out)
	return out
}

// Action is what OnSend tells the transport to do to one frame.
type Action struct {
	Kind  Kind
	Delay time.Duration
}

type ruleState struct {
	rule  Rule
	ops   int64 // matching frames seen so far
	fired bool
}

// Injector holds one rank's live trigger state. All methods are
// nil-receiver safe (the unset seam) and safe for concurrent use.
type Injector struct {
	rank int

	mu    sync.Mutex
	armed bool
	base  time.Time
	rules []*ruleState
}

// Arm starts the time base for time-triggered rules. Idempotent; the
// first call wins. Op-count rules are live before arming.
func (in *Injector) Arm() {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.armed {
		in.armed = true
		in.base = time.Now()
	}
}

// Armed reports whether the time base has started.
func (in *Injector) Armed() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.armed
}

// OnSend consults the plan for one outgoing frame to peer with the
// given handler id. At most one rule fires per frame (first match in
// plan order); each rule fires exactly once over the injector's
// lifetime. The op counter advances per rule on every frame matching
// that rule's filters, whether or not it fires.
func (in *Injector) OnSend(peer int, handler uint16) (Action, bool) {
	if in == nil {
		return Action{}, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	now := time.Now()
	for _, rs := range in.rules {
		r := rs.rule
		if r.Kind == Kill {
			continue
		}
		if r.Peer != AnyPeer && r.Peer != peer {
			continue
		}
		if r.Handler != AnyHandler && r.Handler != int(handler) {
			continue
		}
		rs.ops++
		if rs.fired {
			continue
		}
		hit := r.AtOp != 0 && rs.ops == r.AtOp
		if !hit && r.At != 0 && in.armed && now.Sub(in.base) >= r.At {
			hit = true
		}
		if hit {
			rs.fired = true
			return Action{Kind: r.Kind, Delay: r.Delay}, true
		}
	}
	return Action{}, false
}

// KillAfter returns the delay from arming until this rank's earliest
// kill rule fires, if the plan kills this rank.
func (in *Injector) KillAfter() (time.Duration, bool) {
	if in == nil {
		return 0, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var best time.Duration
	found := false
	for _, rs := range in.rules {
		if rs.rule.Kind == Kill && (!found || rs.rule.At < best) {
			best, found = rs.rule.At, true
		}
	}
	return best, found
}
