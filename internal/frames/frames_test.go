package frames

import "testing"

func TestGetLengthAndClassCapacity(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{0, c256}, {1, c256}, {256, c256},
		{257, c2K}, {c2K, c2K},
		{c2K + 1, c16K}, {c16K, c16K},
		{c16K + 1, c32K}, {c32K, c32K},
		{c32K + 1, c128K}, {c128K, c128K},
		{c128K + 1, c1M}, {c1M, c1M},
	}
	for _, tc := range cases {
		b := Get(tc.n)
		if len(b) != tc.n {
			t.Errorf("Get(%d): len %d, want %d", tc.n, len(b), tc.n)
		}
		if cap(b) != tc.wantCap {
			t.Errorf("Get(%d): cap %d, want class %d", tc.n, cap(b), tc.wantCap)
		}
		Put(b)
	}
}

func TestOversizedFallsThrough(t *testing.T) {
	n := c1M + 1
	b := Get(n)
	if len(b) != n || cap(b) != n {
		t.Fatalf("oversized Get(%d): len %d cap %d, want exact unpooled slice", n, len(b), cap(b))
	}
	Put(b) // must be a silent drop
}

func TestPutTolerance(t *testing.T) {
	Put(nil)                  // nil-safe
	Put(make([]byte, 10))     // foreign capacity: dropped
	Put(Get(100)[10:])        // subslice with non-class cap: dropped
	Put(make([]byte, 0, 777)) // empty foreign buffer: dropped
}

func TestRoundTripReuse(t *testing.T) {
	// A released buffer should come back out of the pool (not a hard
	// guarantee of sync.Pool, but on a single goroutine with no GC in
	// between it holds; if the pool dropped it we still get a valid
	// buffer and only this assertion's point is lost).
	b := Get(100)
	for i := range b {
		b[i] = 0xAB
	}
	Put(b)
	c := Get(50)
	if cap(c) != c256 || len(c) != 50 {
		t.Fatalf("reuse Get(50): len %d cap %d", len(c), cap(c))
	}
	Put(c)
}

func TestAllocsSteadyState(t *testing.T) {
	// Warm the class, then check a get/put cycle allocates nothing:
	// array pointers box into sync.Pool's interface without escaping.
	Put(Get(1024))
	avg := testing.AllocsPerRun(1000, func() {
		b := Get(1024)
		b[0] = 1
		Put(b)
	})
	if avg > 0.1 {
		t.Errorf("get/put cycle allocates %.2f times per op, want ~0", avg)
	}
}
