// Package frames provides the size-classed frame-buffer pools shared by
// the transport's vectored send plane, its receive loop, and the
// aggregation batch encoder. Hot loops on the wire path allocate one
// payload buffer per frame; recycling those buffers through a handful
// of power-of-two size classes keeps the steady state at ~0 allocations
// per frame (gated by the transport's testing.AllocsPerRun tests).
//
// The pools store pointers to fixed-size arrays, not slices: putting a
// *[N]byte into a sync.Pool boxes a pointer (no allocation), where
// putting a []byte would heap-allocate a slice header on every Put.
// Get slices the class array down to the requested length; Put recovers
// the array from the slice's capacity.
//
// Ownership discipline: a buffer passes between layers with its frame
// (transport rx loop -> handler, agg encoder -> Flusher -> SendOwned ->
// writev), and exactly one owner calls Put when the bytes are dead.
// Put is forgiving by design — nil slices and buffers whose capacity
// matches no class (a caller's own allocation, a subslice) are dropped
// for the garbage collector, never pooled, so a stray foreign buffer
// can corrupt nothing.
package frames

import "sync"

// The size classes. Chosen for the traffic the runtime actually
// carries: c256 covers control frames and small aggregated ops, c2K the
// inline-payload slabs' spill and typical RPC bodies, c16K the
// transport's header slabs and mid-size fragments, c32K the default
// aggregation batch (agg.DefaultMaxBytes), c128K and c1M bulk puts and
// collective tables. Larger requests (up to transport.MaxPayload) fall
// through to plain make and are never pooled — they are rare, huge, and
// pinning 16 MiB arrays in pools would be worse than allocating.
const (
	c256  = 256
	c2K   = 2 << 10
	c16K  = 16 << 10
	c32K  = 32 << 10
	c128K = 128 << 10
	c1M   = 1 << 20
)

var (
	p256  = sync.Pool{New: func() any { return new([c256]byte) }}
	p2K   = sync.Pool{New: func() any { return new([c2K]byte) }}
	p16K  = sync.Pool{New: func() any { return new([c16K]byte) }}
	p32K  = sync.Pool{New: func() any { return new([c32K]byte) }}
	p128K = sync.Pool{New: func() any { return new([c128K]byte) }}
	p1M   = sync.Pool{New: func() any { return new([c1M]byte) }}
)

// Get returns a buffer of length n whose capacity is the smallest size
// class holding n (or exactly n, unpooled, beyond the largest class).
// The contents are NOT zeroed — callers overwrite every byte they use.
func Get(n int) []byte {
	switch {
	case n <= c256:
		return p256.Get().(*[c256]byte)[:n]
	case n <= c2K:
		return p2K.Get().(*[c2K]byte)[:n]
	case n <= c16K:
		return p16K.Get().(*[c16K]byte)[:n]
	case n <= c32K:
		return p32K.Get().(*[c32K]byte)[:n]
	case n <= c128K:
		return p128K.Get().(*[c128K]byte)[:n]
	case n <= c1M:
		return p1M.Get().(*[c1M]byte)[:n]
	default:
		return make([]byte, n)
	}
}

// Put recycles a buffer obtained from Get. Safe on nil and on foreign
// buffers (capacity matching no class): those are simply dropped. The
// caller must not touch b afterwards.
func Put(b []byte) {
	if b == nil {
		return
	}
	switch cap(b) {
	case c256:
		p256.Put((*[c256]byte)(b[:c256]))
	case c2K:
		p2K.Put((*[c2K]byte)(b[:c2K]))
	case c16K:
		p16K.Put((*[c16K]byte)(b[:c16K]))
	case c32K:
		p32K.Put((*[c32K]byte)(b[:c32K]))
	case c128K:
		p128K.Put((*[c128K]byte)(b[:c128K]))
	case c1M:
		p1M.Put((*[c1M]byte)(b[:c1M]))
	}
}
