package mt

import (
	"testing"
	"testing/quick"
)

// TestReferenceVectors checks the first outputs of mt19937-64 under the
// published init_by_array64 seed {0x12345, 0x23456, 0x34567, 0x45678}
// from Matsumoto & Nishimura's mt19937-64.out reference file.
func TestReferenceVectors(t *testing.T) {
	m := &MT19937{}
	m.SeedArray([]uint64{0x12345, 0x23456, 0x34567, 0x45678})
	want := []uint64{
		7266447313870364031,
		4946485549665804864,
		16945909448695747420,
		16394063075524226720,
		4873882236456199058,
		14877448043947020171,
		6740343660852211943,
		13857871200353263164,
		5249110015610582907,
		10205081126064480383,
		1235879089597390050,
		17320312680810499042,
	}
	for i, w := range want {
		if got := m.Uint64(); got != w {
			t.Fatalf("output %d = %d, want %d", i, got, w)
		}
	}
}

func TestSeedDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(43)
	same := 0
	a.Seed(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds agree on %d of 1000 outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	m := New(7)
	for i := 0; i < 100000; i++ {
		f := m.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestUint64nRange(t *testing.T) {
	f := func(seed uint64, n uint64) bool {
		if n == 0 {
			n = 1
		}
		m := New(seed)
		for i := 0; i < 100; i++ {
			if m.Uint64n(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUniformity(t *testing.T) {
	// Coarse chi-square-ish check: 16 buckets over 160k draws should
	// each hold 10k +- 5%.
	m := New(123)
	var buckets [16]int
	const draws = 160000
	for i := 0; i < draws; i++ {
		buckets[m.Uint64()>>60]++
	}
	for i, b := range buckets {
		if b < 9500 || b > 10500 {
			t.Errorf("bucket %d = %d, expected ~10000", i, b)
		}
	}
}

func TestBitBalance(t *testing.T) {
	// Every bit position should be set about half the time.
	m := New(99)
	var counts [64]int
	const draws = 20000
	for i := 0; i < draws; i++ {
		v := m.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<b) != 0 {
				counts[b]++
			}
		}
	}
	for b, c := range counts {
		if c < draws*45/100 || c > draws*55/100 {
			t.Errorf("bit %d set %d/%d times", b, c, draws)
		}
	}
}
