package sim

// SW is the software half of the performance model: the per-operation
// overheads of one programming system (UPC++, Berkeley UPC, Titanium or
// MPI) layered over the same machine. The paper's central claim is that a
// "compiler-free" C++ library adds only a small constant software overhead
// relative to compiled PGAS languages, which vanishes at scale as network
// latency dominates; the figures are reproduced by giving each system its
// own SW profile on a shared Machine. All times in nanoseconds.
type SW struct {
	Name string `json:"name"`

	// SharedAccessNs is the address-translation cost of one shared-array
	// element access (index -> owner + local address). Berkeley UPC
	// compiles this translation down; the UPC++ library performs it at
	// run time through the shared_array proxy (paper §V-A: "the Berkeley
	// UPC compiler and runtime are heavily optimized for shared array
	// accesses", UPC ~10% faster at 128 cores).
	SharedAccessNs float64 `json:"shared_access_ns"`

	// GetNs / PutNs are the per-operation initiator overheads of
	// one-sided remote reads and writes (on top of network time).
	GetNs float64 `json:"get_ns"`
	PutNs float64 `json:"put_ns"`

	// AMNs is the send-side overhead of one active message (async task
	// injection, remote allocation, lock traffic, ...).
	AMNs float64 `json:"am_ns"`

	// TaskNs is the cost of enqueueing/dispatching one async task on the
	// target (paper §IV: task queue managed by advance()).
	TaskNs float64 `json:"task_ns"`

	// TwoSidedNs is the per-message matching overhead of the two-sided
	// (MPI) baseline: tag matching, request bookkeeping.
	TwoSidedNs float64 `json:"two_sided_ns"`

	// BarrierPerStageNs is the software cost per stage of the
	// log2(P)-stage dissemination barrier.
	BarrierPerStageNs float64 `json:"barrier_per_stage_ns"`
}

// Predefined software-overhead profiles. Relative ordering is what the
// paper measures: UPC < UPC++ for fine-grained shared access (Fig 4,
// Table IV); Titanium ~= UPC++ for array code (Fig 5); MPI two-sided
// carries matching overhead that one-sided UPC++ avoids (Fig 8, ~10% at
// 32K ranks).
var (
	SWUPCXX = SW{
		Name:              "upcxx",
		SharedAccessNs:    450, // run-time proxy-object translation
		GetNs:             750,
		PutNs:             750,
		AMNs:              900,
		TaskNs:            500,
		TwoSidedNs:        0,
		BarrierPerStageNs: 150,
	}

	SWUPC = SW{
		Name:              "upc",
		SharedAccessNs:    60, // compiler-specialized pointer-to-shared arithmetic
		GetNs:             620,
		PutNs:             620,
		AMNs:              900,
		TaskNs:            500,
		TwoSidedNs:        0,
		BarrierPerStageNs: 150,
	}

	SWTitanium = SW{
		Name:              "titanium",
		SharedAccessNs:    220, // compiled array accessors, slightly leaner than the C++ proxy
		GetNs:             680,
		PutNs:             680,
		AMNs:              950,
		TaskNs:            500,
		TwoSidedNs:        0,
		BarrierPerStageNs: 150,
	}

	SWMPI = SW{
		Name:              "mpi",
		SharedAccessNs:    0,
		GetNs:             700,
		PutNs:             700,
		AMNs:              900,
		TaskNs:            500,
		TwoSidedNs:        250, // tag matching + request bookkeeping per message
		BarrierPerStageNs: 150,
	}
)

// SWByName returns the named profile, defaulting to SWUPCXX.
func SWByName(name string) SW {
	switch name {
	case "upc":
		return SWUPC
	case "titanium":
		return SWTitanium
	case "mpi":
		return SWMPI
	default:
		return SWUPCXX
	}
}
