package sim

// Profile bundles the two halves of the performance model that produced a
// measurement: the hardware profile and the software systems layered over
// it. The benchmark harness embeds one Profile per experiment result so a
// BENCH_*.json artifact is self-describing — a future reader (or a later
// PR comparing trajectories) can see exactly which LogGP constants were in
// force without digging through source history.
type Profile struct {
	Machine  Machine `json:"machine"`
	Software []SW    `json:"software"`
}

// NewProfile builds a Profile from a machine and the software systems
// (deduplicated by name, order preserved) that ran on it.
func NewProfile(m Machine, sws ...SW) Profile {
	p := Profile{Machine: m}
	seen := map[string]bool{}
	for _, sw := range sws {
		if seen[sw.Name] {
			continue
		}
		seen[sw.Name] = true
		p.Software = append(p.Software, sw)
	}
	return p
}

// Machines returns every predefined machine profile.
func Machines() []Machine { return []Machine{Edison, Vesta, Local} }

// SWProfiles returns every predefined software profile.
func SWProfiles() []SW { return []SW{SWUPCXX, SWUPC, SWTitanium, SWMPI} }
