// Package sim provides the performance-modeling substrate for upcxx-go.
//
// The paper evaluates UPC++ on two supercomputers (Edison, a Cray XC30 with
// an Aries Dragonfly interconnect, and Vesta, an IBM BG/Q with a 5D torus)
// at up to 32K cores. This repository runs on a single machine, so the
// hardware is replaced by a LogGP-style analytic network model: every
// runtime operation charges latency (L), per-message software overhead (o),
// inter-message gap (g) and per-byte cost (G) to a per-rank virtual clock.
// Rank counts, algorithms, message sizes and memory traffic are all real;
// only *time* is modeled. See DESIGN.md §4 for the substitution argument.
package sim

import (
	"fmt"
	"math"
)

// Topology selects the network-diameter model used to derive the one-way
// latency as a function of job size.
type Topology int

const (
	// TopoFlat models a crossbar: latency independent of node count.
	TopoFlat Topology = iota
	// TopoDragonfly models the Aries Dragonfly used by Edison: small,
	// nearly constant diameter with a mild logarithmic growth term.
	TopoDragonfly
	// TopoTorus5D models the BG/Q 5D torus: diameter grows as the fifth
	// root of the node count.
	TopoTorus5D
)

// String names the topology for profile metadata and JSON artifacts.
func (t Topology) String() string {
	switch t {
	case TopoDragonfly:
		return "dragonfly"
	case TopoTorus5D:
		return "torus5d"
	default:
		return "flat"
	}
}

// MarshalJSON emits the topology by name so benchmark artifacts stay
// readable and stable if the enum is reordered.
func (t Topology) MarshalJSON() ([]byte, error) {
	return []byte(`"` + t.String() + `"`), nil
}

// UnmarshalJSON accepts the names emitted by MarshalJSON; an unknown
// name is an error rather than a silent default so edited or
// future-version artifacts cannot misattribute results to the wrong
// network model.
func (t *Topology) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"flat"`:
		*t = TopoFlat
	case `"dragonfly"`:
		*t = TopoDragonfly
	case `"torus5d"`:
		*t = TopoTorus5D
	default:
		return fmt.Errorf("unknown topology %s", b)
	}
	return nil
}

// Machine describes the hardware half of the performance model: node
// geometry, compute rates and LogGP network parameters. All times are in
// nanoseconds, all rates in units per nanosecond. The JSON form is part
// of the upcxx-bench artifact schema (see internal/bench/harness).
type Machine struct {
	Name         string `json:"name"`
	CoresPerNode int    `json:"cores_per_node"`

	// PeakFlopsPerNs is the per-core peak floating-point rate
	// (flops per nanosecond, i.e. GFLOP/s).
	PeakFlopsPerNs float64 `json:"peak_flops_per_ns"`

	// MemBytesPerNs is the per-core sustained memory bandwidth
	// (bytes per nanosecond, i.e. GB/s); used by memory-bound kernels.
	MemBytesPerNs float64 `json:"mem_bytes_per_ns"`

	// NICLatencyNs is the base one-way network latency between two nodes
	// that are adjacent in the topology (NIC + first hop).
	NICLatencyNs float64 `json:"nic_latency_ns"`

	// HopLatencyNs is the additional one-way latency per topological hop.
	HopLatencyNs float64 `json:"hop_latency_ns"`

	// IntraNodeNs is the one-way latency between two ranks on the same
	// node (shared-memory transport).
	IntraNodeNs float64 `json:"intra_node_ns"`

	// BytesPerNs is the per-rank injection bandwidth (bytes/ns = GB/s).
	BytesPerNs float64 `json:"bytes_per_ns"`

	// GapNs is the LogGP g parameter: minimum interval between
	// consecutive message injections by one rank.
	GapNs float64 `json:"gap_ns"`

	// EagerBytes is the eager/rendezvous protocol threshold used by the
	// two-sided (MPI) baseline.
	EagerBytes int `json:"eager_bytes"`

	Topo Topology `json:"topology"`
}

// Hops returns the modeled average hop count for a job spanning the given
// number of nodes.
func (m Machine) Hops(nodes int) float64 {
	if nodes <= 1 {
		return 0
	}
	n := float64(nodes)
	switch m.Topo {
	case TopoDragonfly:
		// Dragonfly diameter is small and nearly flat; average path
		// length grows very slowly with machine size.
		return 1.5 + 0.25*math.Log2(n)
	case TopoTorus5D:
		// Average distance in a balanced 5D torus scales with the
		// fifth root of the node count (quarter-diameter per dim).
		return 1.25 * math.Pow(n, 1.0/5.0)
	default:
		return 1
	}
}

// OneWayNs returns the modeled one-way latency between two distinct nodes
// in a job spanning the given number of nodes.
func (m Machine) OneWayNs(nodes int) float64 {
	return m.NICLatencyNs + m.HopLatencyNs*m.Hops(nodes)
}

// Nodes returns the number of nodes occupied by a job of the given rank
// count with block rank-to-node placement.
func (m Machine) Nodes(ranks int) int {
	if m.CoresPerNode <= 0 {
		return 1
	}
	return (ranks + m.CoresPerNode - 1) / m.CoresPerNode
}

// Node returns the node index hosting the given rank.
func (m Machine) Node(rank int) int {
	if m.CoresPerNode <= 0 {
		return 0
	}
	return rank / m.CoresPerNode
}

// Predefined machine profiles. The constants are calibrated so that the
// benchmark harness lands in the same decade as the paper's absolute
// numbers (see EXPERIMENTS.md); the *shape* of every figure depends only on
// the relative software-overhead profiles in sw.go.
var (
	// Edison models NERSC's Cray XC30: 2x12-core Ivy Bridge nodes
	// (19.2 GF/s/core peak), Aries Dragonfly interconnect with ~1.3us
	// small-message latency and ~8 GB/s per-node injection bandwidth.
	Edison = Machine{
		Name:           "edison",
		CoresPerNode:   24,
		PeakFlopsPerNs: 19.2,
		MemBytesPerNs:  4.3,
		NICLatencyNs:   1300,
		HopLatencyNs:   100,
		IntraNodeNs:    450,
		BytesPerNs:     2.7, // per-rank share of node injection bandwidth under load
		GapNs:          60,
		EagerBytes:     8192,
		Topo:           TopoDragonfly,
	}

	// Vesta models ALCF's IBM BG/Q: 16-core A2 nodes (12.8 GF/s/core),
	// 5D torus with ~2us nearest-neighbor latency and software-heavy
	// messaging (fine-grained remote access costs several microseconds,
	// consistent with Table IV of the paper).
	Vesta = Machine{
		Name:           "vesta",
		CoresPerNode:   16,
		PeakFlopsPerNs: 12.8,
		MemBytesPerNs:  1.8,
		NICLatencyNs:   2000,
		HopLatencyNs:   350,
		IntraNodeNs:    900,
		BytesPerNs:     1.7,
		GapNs:          90,
		EagerBytes:     4096,
		Topo:           TopoTorus5D,
	}

	// Local is a laptop-scale profile used by unit tests and the
	// real-time (wall-clock) mode; its constants are small so virtual
	// and real runs have comparable magnitudes.
	Local = Machine{
		Name:           "local",
		CoresPerNode:   8,
		PeakFlopsPerNs: 4,
		MemBytesPerNs:  8,
		NICLatencyNs:   500,
		HopLatencyNs:   0,
		IntraNodeNs:    200,
		BytesPerNs:     10,
		GapNs:          20,
		EagerBytes:     8192,
		Topo:           TopoFlat,
	}
)

// MachineByName returns the named profile, defaulting to Local.
func MachineByName(name string) Machine {
	switch name {
	case "edison":
		return Edison
	case "vesta":
		return Vesta
	default:
		return Local
	}
}
