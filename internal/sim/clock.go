package sim

import (
	"math"
	"sync/atomic"
)

// Clock is a per-rank virtual clock measured in nanoseconds since job
// start. It is owned by one rank goroutine; the atomic bit pattern lets
// other ranks (and the barrier reducer) read it without a data race.
//
// Clocks are monotone: AdvanceTo never moves a clock backwards, which is
// what makes the conservative max-merge at synchronization points sound
// (DESIGN.md §4, "Virtual-time semantics").
type Clock struct {
	bits atomic.Uint64 // float64 bit pattern
}

// Now returns the current virtual time in nanoseconds.
func (c *Clock) Now() float64 { return f64(c.bits.Load()) }

// Advance adds d nanoseconds (negative d is ignored) and returns the new
// time.
func (c *Clock) Advance(d float64) float64 {
	t := f64(c.bits.Load())
	if d > 0 {
		t += d
	}
	c.bits.Store(u64(t))
	return t
}

// AdvanceTo moves the clock forward to t if t is later than now, and
// returns the (possibly unchanged) current time.
func (c *Clock) AdvanceTo(t float64) float64 {
	now := f64(c.bits.Load())
	if t > now {
		c.bits.Store(u64(t))
		return t
	}
	return now
}

// Set unconditionally sets the clock; used only by barrier release where
// the target time is already known to be >= every participant's clock.
func (c *Clock) Set(t float64) { c.bits.Store(u64(t)) }

func u64(f float64) uint64 { return math.Float64bits(f) }
func f64(u uint64) float64 { return math.Float64frombits(u) }
