package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNodesAndPlacement(t *testing.T) {
	m := Edison
	cases := []struct{ ranks, nodes int }{
		{1, 1}, {24, 1}, {25, 2}, {48, 2}, {6144, 256},
	}
	for _, c := range cases {
		if got := m.Nodes(c.ranks); got != c.nodes {
			t.Errorf("Nodes(%d) = %d, want %d", c.ranks, got, c.nodes)
		}
	}
	if m.Node(0) != 0 || m.Node(23) != 0 || m.Node(24) != 1 {
		t.Errorf("block placement wrong: %d %d %d", m.Node(0), m.Node(23), m.Node(24))
	}
}

func TestHopsMonotone(t *testing.T) {
	for _, m := range []Machine{Edison, Vesta, Local} {
		prev := -1.0
		for nodes := 1; nodes <= 4096; nodes *= 2 {
			h := m.Hops(nodes)
			if h < prev {
				t.Errorf("%s: Hops(%d)=%v < Hops(previous)=%v", m.Name, nodes, h, prev)
			}
			prev = h
		}
	}
}

func TestTorusGrowsFasterThanDragonfly(t *testing.T) {
	// BG/Q torus diameter should grow faster with machine size than the
	// Dragonfly: this drives the Fig 4 latency growth.
	dfly := Edison.Hops(2048) / Edison.Hops(8)
	torus := Vesta.Hops(2048) / Vesta.Hops(8)
	if torus <= dfly {
		t.Errorf("torus growth %v should exceed dragonfly growth %v", torus, dfly)
	}
}

func TestLatIntraVsInter(t *testing.T) {
	mo := NewModel(true, Edison, SWUPCXX, 48)
	if l := mo.Lat(0, 0); l != 0 {
		t.Errorf("self latency = %v, want 0", l)
	}
	intra := mo.Lat(0, 1)  // same node
	inter := mo.Lat(0, 24) // different node
	if intra != Edison.IntraNodeNs {
		t.Errorf("intra-node latency = %v, want %v", intra, Edison.IntraNodeNs)
	}
	if inter <= intra {
		t.Errorf("inter-node latency %v should exceed intra-node %v", inter, intra)
	}
}

func TestGetPutCostsScaleWithSize(t *testing.T) {
	mo := NewModel(true, Edison, SWUPCXX, 1024)
	small := mo.GetCost(0, 100, 8)
	big := mo.GetCost(0, 100, 1<<20)
	if big <= small {
		t.Errorf("1MiB get (%v) should cost more than 8B get (%v)", big, small)
	}
	// Large transfers should be bandwidth-dominated: within 2x of pure wire time.
	wire := mo.WireNs(1 << 20)
	if big > 2*wire {
		t.Errorf("1MiB get %v ns should be bandwidth-bound (wire %v ns)", big, wire)
	}
}

func TestUPCfasterThanUPCXXForSharedAccess(t *testing.T) {
	// The Fig 4 / Table IV driver: compiled UPC shared-array access
	// translation is cheaper than the UPC++ run-time proxy.
	if SWUPC.SharedAccessNs >= SWUPCXX.SharedAccessNs {
		t.Fatal("UPC shared access must be cheaper than UPC++")
	}
	// But the absolute gap must shrink relative to total cost at scale:
	moSmall := NewModel(true, Vesta, SWUPCXX, 16)
	moLarge := NewModel(true, Vesta, SWUPCXX, 8192)
	upd := func(mo *Model, sw SW) float64 {
		return 2*sw.SharedAccessNs + mo.GetCost(0, mo.Ranks-1, 8) + mo.PutCost(0, mo.Ranks-1, 8)
	}
	gapSmall := upd(moSmall, SWUPCXX) / upd(moSmall, SWUPC)
	gapLarge := upd(moLarge, SWUPCXX) / upd(moLarge, SWUPC)
	if gapLarge >= gapSmall {
		t.Errorf("relative UPC++/UPC gap should shrink with scale: small=%v large=%v", gapSmall, gapLarge)
	}
}

func TestBarrierCostLogarithmic(t *testing.T) {
	c16 := NewModel(true, Edison, SWUPCXX, 16).BarrierCost()
	c1k := NewModel(true, Edison, SWUPCXX, 1024).BarrierCost()
	c32k := NewModel(true, Edison, SWUPCXX, 32768).BarrierCost()
	if !(c16 < c1k && c1k < c32k) {
		t.Fatalf("barrier cost should grow with P: %v %v %v", c16, c1k, c32k)
	}
	// log2(32768)/log2(1024) = 1.5: growth must be sub-linear.
	if c32k/c1k > 3 {
		t.Errorf("barrier growth should be logarithmic: %v vs %v", c32k, c1k)
	}
}

func TestClockMonotone(t *testing.T) {
	var c Clock
	c.Advance(100)
	if c.Now() != 100 {
		t.Fatalf("Now = %v, want 100", c.Now())
	}
	c.AdvanceTo(50) // must not go backwards
	if c.Now() != 100 {
		t.Fatalf("AdvanceTo moved clock backwards to %v", c.Now())
	}
	c.AdvanceTo(250)
	if c.Now() != 250 {
		t.Fatalf("AdvanceTo = %v, want 250", c.Now())
	}
	c.Advance(-10) // negative ignored
	if c.Now() != 250 {
		t.Fatalf("negative Advance changed clock: %v", c.Now())
	}
}

func TestClockPropertyMonotone(t *testing.T) {
	f := func(steps []float64) bool {
		var c Clock
		prev := 0.0
		for _, s := range steps {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				continue
			}
			c.Advance(s)
			now := c.Now()
			if now < prev {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11, 32768: 15}
	for n, want := range cases {
		if got := log2ceil(n); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestByName(t *testing.T) {
	if MachineByName("edison").Name != "edison" || MachineByName("vesta").Name != "vesta" ||
		MachineByName("nope").Name != "local" {
		t.Error("MachineByName lookup broken")
	}
	if SWByName("upc").Name != "upc" || SWByName("mpi").Name != "mpi" ||
		SWByName("titanium").Name != "titanium" || SWByName("").Name != "upcxx" {
		t.Error("SWByName lookup broken")
	}
}

func TestFlopsAndMemCost(t *testing.T) {
	mo := NewModel(true, Edison, SWUPCXX, 24)
	// 19.2 flops/ns peak: 19200 flops take 1000 ns.
	if got := mo.FlopsCost(19200); math.Abs(got-1000) > 1e-9 {
		t.Errorf("FlopsCost = %v, want 1000", got)
	}
	if mo.MemCost(4.3*1000) != 1000 {
		t.Errorf("MemCost wrong: %v", mo.MemCost(4.3*1000))
	}
}
