package sim

// Model combines a Machine, a software profile and a job size into the
// cost functions the runtime charges against per-rank virtual clocks.
// A Model is immutable after construction and safe for concurrent use.
type Model struct {
	Virtual bool
	M       Machine
	SW      SW
	Ranks   int

	oneWay float64 // precomputed inter-node one-way latency for this job size
	perB   float64 // per-byte wire cost (ns/byte)
}

// NewModel builds the cost model for a job of the given size. If virtual is
// false all charge functions still compute costs (so counters and event
// completion times remain meaningful) but clocks track only explicitly
// charged time; the harness then uses wall-clock time instead.
func NewModel(virtual bool, m Machine, sw SW, ranks int) *Model {
	perB := 0.0
	if m.BytesPerNs > 0 {
		perB = 1 / m.BytesPerNs
	}
	return &Model{
		Virtual: virtual,
		M:       m,
		SW:      sw,
		Ranks:   ranks,
		oneWay:  m.OneWayNs(m.Nodes(ranks)),
		perB:    perB,
	}
}

// Lat returns the modeled one-way latency in nanoseconds from rank a to
// rank b (intra-node if they share a node, zero if they are the same rank).
func (mo *Model) Lat(a, b int) float64 {
	if a == b {
		return 0
	}
	if mo.M.Node(a) == mo.M.Node(b) {
		return mo.M.IntraNodeNs
	}
	return mo.oneWay
}

// WireNs returns the per-byte serialization time for a payload of n bytes.
func (mo *Model) WireNs(n int) float64 { return float64(n) * mo.perB }

// GetCost returns the full blocking cost of a one-sided read of n bytes
// from rank `from` by rank `by`: software overhead + request latency +
// payload return.
func (mo *Model) GetCost(by, from, n int) float64 {
	if by == from {
		return mo.localAccess(n)
	}
	l := mo.Lat(by, from)
	return mo.SW.GetNs + 2*l + mo.WireNs(n)
}

// PutCost returns the full blocking cost of a one-sided write of n bytes
// (remote completion acknowledged, as for a fenced put).
func (mo *Model) PutCost(by, to, n int) float64 {
	if by == to {
		return mo.localAccess(n)
	}
	l := mo.Lat(by, to)
	return mo.SW.PutNs + 2*l + mo.WireNs(n)
}

// NBInitCost is the initiation (CPU) cost of a non-blocking one-sided
// operation; the transfer itself completes NBCompleteCost later.
func (mo *Model) NBInitCost() float64 { return mo.SW.PutNs + mo.M.GapNs }

// NBCompleteCost returns the time after initiation at which a non-blocking
// transfer of n bytes to/from the given peer completes.
func (mo *Model) NBCompleteCost(by, peer, n int) float64 {
	if by == peer {
		return mo.localAccess(n)
	}
	return mo.Lat(by, peer) + mo.WireNs(n)
}

// localAccess models a purely local memory copy of n bytes.
func (mo *Model) localAccess(n int) float64 {
	if mo.M.MemBytesPerNs <= 0 {
		return 0
	}
	return float64(n) / (2 * mo.M.MemBytesPerNs)
}

// SharedAccessCost is the address-translation overhead of one shared-array
// element access in the active software profile.
func (mo *Model) SharedAccessCost() float64 { return mo.SW.SharedAccessNs }

// AMSendCost is the initiator-side cost of injecting one active message
// carrying n payload bytes.
func (mo *Model) AMSendCost(n int) float64 {
	return mo.SW.AMNs + mo.M.GapNs + mo.WireNs(n)
}

// AMArrival returns the virtual arrival time at the target of an active
// message whose injection began at time t0 with n payload bytes:
// t0 + send overhead + latency + serialization. Callers must pass the
// clock value from *before* charging AMSendCost, which models sender
// occupancy over the same interval (LogGP: o and nG overlap the wire).
func (mo *Model) AMArrival(t0 float64, from, to, n int) float64 {
	return t0 + mo.SW.AMNs + mo.Lat(from, to) + mo.WireNs(n)
}

// TaskDispatchCost is the target-side cost of dequeuing and dispatching one
// async task.
func (mo *Model) TaskDispatchCost() float64 { return mo.SW.TaskNs }

// TwoSidedMatchCost is the per-message matching overhead of the two-sided
// baseline (zero for one-sided profiles).
func (mo *Model) TwoSidedMatchCost() float64 { return mo.SW.TwoSidedNs }

// BarrierCost returns the cost of a dissemination barrier over P ranks,
// entered with all clocks already advanced to the barrier point.
func (mo *Model) BarrierCost() float64 {
	stages := log2ceil(mo.Ranks)
	if stages == 0 {
		return mo.SW.BarrierPerStageNs
	}
	return float64(stages) * (mo.oneWayForColl() + mo.SW.BarrierPerStageNs)
}

// CollStageCost is the per-stage cost of a log2(P)-stage collective tree
// moving n bytes per stage (used for broadcast/reduce/gather trees).
func (mo *Model) CollStageCost(n int) float64 {
	return mo.oneWayForColl() + mo.SW.BarrierPerStageNs + mo.WireNs(n)
}

// CollStages returns the number of stages in a binomial collective tree.
func (mo *Model) CollStages() int { return log2ceil(mo.Ranks) }

// oneWayForColl uses the inter-node latency when the job spans more than
// one node, otherwise the intra-node latency.
func (mo *Model) oneWayForColl() float64 {
	if mo.M.Nodes(mo.Ranks) > 1 {
		return mo.oneWay
	}
	return mo.M.IntraNodeNs
}

// FlopsCost returns the modeled time to execute n floating-point operations
// at peak on one core.
func (mo *Model) FlopsCost(n float64) float64 {
	if mo.M.PeakFlopsPerNs <= 0 {
		return 0
	}
	return n / mo.M.PeakFlopsPerNs
}

// MemCost returns the modeled time to move n bytes through one core's
// memory system (for memory-bound kernels).
func (mo *Model) MemCost(n float64) float64 {
	if mo.M.MemBytesPerNs <= 0 {
		return 0
	}
	return n / mo.M.MemBytesPerNs
}

// EagerThreshold reports the machine's eager/rendezvous protocol switch.
func (mo *Model) EagerThreshold() int { return mo.M.EagerBytes }

func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	s := 0
	for v := n - 1; v > 0; v >>= 1 {
		s++
	}
	return s
}
