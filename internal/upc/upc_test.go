package upc

import (
	"testing"

	"upcxx/internal/core"
	"upcxx/internal/sim"
)

func TestVeneerBasics(t *testing.T) {
	core.Run(Config(4, sim.Local, true), func(me *core.Rank) {
		if Threads(me) != 4 || MyThread(me) != me.ID() {
			t.Error("THREADS/MYTHREAD")
		}
		sa := AllAlloc[int64](me, 40, 1)
		Forall(me, 40, func(i int) int { return i }, func(i int) {
			sa.Set(me, i, int64(i*i))
		})
		Barrier(me)
		for i := 0; i < 40; i++ {
			if sa.Get(me, i) != int64(i*i) {
				t.Errorf("sa[%d] = %d", i, sa.Get(me, i))
			}
		}
		Barrier(me)
	})
}

func TestForallPartition(t *testing.T) {
	// Every iteration must execute exactly once across all threads.
	core.Run(Config(3, sim.Local, true), func(me *core.Rank) {
		counts := core.NewSharedArray[int64](me, 30, 1)
		Forall(me, 30, func(i int) int { return i / 2 }, func(i int) {
			counts.Set(me, i, counts.Get(me, i)+1)
		})
		Barrier(me)
		if me.ID() == 0 {
			for i := 0; i < 30; i++ {
				if counts.Get(me, i) != 1 {
					t.Errorf("iteration %d ran %d times", i, counts.Get(me, i))
				}
			}
		}
		Barrier(me)
	})
}

func TestMemgetMemput(t *testing.T) {
	core.Run(Config(2, sim.Local, true), func(me *core.Rank) {
		buf := Alloc[int32](me, 8)
		all := core.AllGather(me, buf)
		if me.ID() == 0 {
			out := []int32{1, 2, 3, 4, 5, 6, 7, 8}
			Memput(me, all[1], out)
			in := make([]int32, 8)
			Memget(me, in, all[1])
			for i := range in {
				if in[i] != out[i] {
					t.Errorf("memget[%d] = %d", i, in[i])
				}
			}
			// Shared-to-shared.
			Memcpy(me, all[0], all[1], 8)
			if core.Read(me, buf.Add(7)) != 8 {
				t.Error("memcpy")
			}
		}
		Barrier(me)
		if err := Free(me, buf); err != nil {
			t.Error(err)
		}
		Barrier(me)
	})
}

func TestUPCProfileCheaperSharedAccess(t *testing.T) {
	// The baseline's reason to exist: the same shared-array traffic costs
	// less virtual time under the UPC profile than under UPC++.
	workload := func(me *core.Rank) {
		sa := core.NewSharedArray[uint64](me, 1024, 1)
		for i := me.ID(); i < 1024; i += me.Ranks() {
			sa.Set(me, i, uint64(i))
		}
		me.Barrier()
	}
	upcT := core.Run(Config(4, sim.Vesta, true), workload).VirtualNs
	upcxxT := core.Run(core.Config{Ranks: 4, Machine: sim.Vesta, SW: sim.SWUPCXX, Virtual: true}, workload).VirtualNs
	if upcT >= upcxxT {
		t.Errorf("UPC profile (%v ns) should be cheaper than UPC++ (%v ns)", upcT, upcxxT)
	}
}
