// Package upc is the Berkeley-UPC-flavored baseline of the evaluation:
// the same runtime as package core, exposed through UPC's vocabulary
// (Table I, left column) and run under the sim.SWUPC software-overhead
// profile, which models the Berkeley UPC compiler's specialized
// pointer-to-shared arithmetic ("the Berkeley UPC compiler and runtime
// are heavily optimized for shared array accesses", paper §V-A).
//
// The GUPS and Sample Sort baselines of Figs 4 and 6 are written against
// this package; the corresponding UPC++ versions use package core
// directly. The two differ only in the SW profile of the job they run
// under, which is exactly the comparison the paper makes.
package upc

import (
	"upcxx/internal/core"
	"upcxx/internal/sim"
)

// Config returns a core job configuration carrying the UPC software
// profile on the given machine.
func Config(ranks int, machine sim.Machine, virtual bool) core.Config {
	return core.Config{Ranks: ranks, Machine: machine, SW: sim.SWUPC, Virtual: virtual}
}

// Threads returns THREADS.
func Threads(me *core.Rank) int { return me.Ranks() }

// MyThread returns MYTHREAD.
func MyThread(me *core.Rank) int { return me.ID() }

// AllAlloc collectively allocates a block-cyclically distributed shared
// array (upc_all_alloc with layout qualifier [bs]).
func AllAlloc[T any](me *core.Rank, size, bs int) *core.SharedArray[T] {
	return core.NewSharedArray[T](me, size, bs)
}

// Alloc allocates size elements in the calling thread's shared segment
// (upc_alloc).
func Alloc[T any](me *core.Rank, size int) core.GlobalPtr[T] {
	return core.Allocate[T](me, me.ID(), size)
}

// Free releases shared memory (upc_free).
func Free[T any](me *core.Rank, p core.GlobalPtr[T]) error { return core.Deallocate(me, p) }

// Memget copies shared-to-private (upc_memget).
func Memget[T any](me *core.Rank, dst []T, src core.GlobalPtr[T]) { core.ReadSlice(me, src, dst) }

// Memput copies private-to-shared (upc_memput).
func Memput[T any](me *core.Rank, dst core.GlobalPtr[T], src []T) { core.WriteSlice(me, dst, src) }

// Memcpy copies shared-to-shared (upc_memcpy).
func Memcpy[T any](me *core.Rank, dst, src core.GlobalPtr[T], n int) { core.Copy(me, src, dst, n) }

// Barrier is upc_barrier.
func Barrier(me *core.Rank) { me.Barrier() }

// Fence is upc_fence.
func Fence(me *core.Rank) { core.Fence(me) }

// NewLock creates a upc_lock on the calling thread.
func NewLock(me *core.Rank) core.Lock { return core.NewLock(me) }

// Forall iterates i in [0, n) executing body only for the iterations
// whose affinity expression equals MYTHREAD — the upc_forall loop. As in
// UPC, every thread evaluates the affinity test for every iteration (the
// Table I row "for(...) { if (affinity_cond) { stmts } }").
func Forall(me *core.Rank, n int, affinity func(i int) int, body func(i int)) {
	p := me.Ranks()
	for i := 0; i < n; i++ {
		if affinity(i)%p == me.ID() {
			body(i)
		}
	}
}
