// Package transport provides byte-level message transports — the
// "network drivers" layer under the gasnet analog (paper Fig 2). The
// in-process engine used by the runtime needs no serialization; this
// package exists to demonstrate the multi-process path a real conduit
// takes: framed active messages over TCP between separate endpoints,
// with handler dispatch by registered index.
//
// The core runtime intentionally does not run over this transport (its
// asyncs carry Go closures, which do not serialize); it is the substrate
// a future wire-format runtime would plug into, and is exercised by its
// own tests over localhost sockets.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Message is one framed active message.
type Message struct {
	From    int32
	To      int32
	Handler uint16
	Arg     uint64
	Payload []byte
}

// maxPayload bounds a frame (sanity limit against corrupt streams).
const maxPayload = 16 << 20

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// Handler processes one delivered message on the receiving endpoint's
// polling goroutine.
type Handler func(ep *TCPEndpoint, m Message)

// TCPEndpoint is one rank's attachment to a full-mesh TCP fabric.
type TCPEndpoint struct {
	rank     int32
	n        int32
	ln       net.Listener
	handlers []Handler

	mu    sync.Mutex
	conns []net.Conn // by peer rank; nil for self

	inbox     chan Message
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// writeFrame serializes a message: [to][from][handler][arg][len][payload].
func writeFrame(w io.Writer, m Message) error {
	var hdr [26]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(m.To))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(m.From))
	binary.LittleEndian.PutUint16(hdr[8:], m.Handler)
	binary.LittleEndian.PutUint64(hdr[10:], m.Arg)
	binary.LittleEndian.PutUint64(hdr[18:], uint64(len(m.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(m.Payload)
	return err
}

// readFrame deserializes one message.
func readFrame(r io.Reader) (Message, error) {
	var hdr [26]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	m := Message{
		To:      int32(binary.LittleEndian.Uint32(hdr[0:])),
		From:    int32(binary.LittleEndian.Uint32(hdr[4:])),
		Handler: binary.LittleEndian.Uint16(hdr[8:]),
		Arg:     binary.LittleEndian.Uint64(hdr[10:]),
	}
	n := binary.LittleEndian.Uint64(hdr[18:])
	if n > maxPayload {
		return Message{}, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	if n > 0 {
		m.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, m.Payload); err != nil {
			return Message{}, err
		}
	}
	return m, nil
}

// ListenTCP creates an endpoint for the given rank of an n-rank job,
// listening on addr (use "127.0.0.1:0" to pick a free port). Connect must
// be called with everyone's advertised addresses before sending.
func ListenTCP(rank, n int, addr string) (*TCPEndpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ep := &TCPEndpoint{
		rank:     int32(rank),
		n:        int32(n),
		ln:       ln,
		handlers: make([]Handler, 256),
		conns:    make([]net.Conn, n),
		inbox:    make(chan Message, 1024),
		done:     make(chan struct{}),
	}
	return ep, nil
}

// Addr returns the endpoint's advertised listen address.
func (ep *TCPEndpoint) Addr() string { return ep.ln.Addr().String() }

// Register installs a handler at the given index (all endpoints must
// agree on the mapping, as with GASNet handler tables).
func (ep *TCPEndpoint) Register(idx uint16, h Handler) { ep.handlers[idx] = h }

// Connect wires the full mesh: ranks below us dial in, we dial ranks
// above us (a deterministic pairing that avoids duplicate connections).
// addrs is indexed by rank.
func (ep *TCPEndpoint) Connect(addrs []string) error {
	var wg sync.WaitGroup
	var acceptErr error
	expect := int(ep.rank) // ranks 0..rank-1 dial us
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < expect; i++ {
			c, err := ep.ln.Accept()
			if err != nil {
				acceptErr = err
				return
			}
			// The dialer announces itself with one frame.
			m, err := readFrame(c)
			if err != nil {
				acceptErr = err
				return
			}
			ep.mu.Lock()
			ep.conns[m.From] = c
			ep.mu.Unlock()
		}
	}()
	for r := int(ep.rank) + 1; r < int(ep.n); r++ {
		c, err := net.Dial("tcp", addrs[r])
		if err != nil {
			return fmt.Errorf("transport: rank %d dialing %d: %w", ep.rank, r, err)
		}
		if err := writeFrame(c, Message{From: ep.rank, To: int32(r), Handler: 0xFFFF}); err != nil {
			return err
		}
		ep.mu.Lock()
		ep.conns[r] = c
		ep.mu.Unlock()
	}
	wg.Wait()
	if acceptErr != nil {
		return acceptErr
	}
	// One reader goroutine per peer feeds the inbox.
	for r := int32(0); r < ep.n; r++ {
		if r == ep.rank {
			continue
		}
		conn := ep.conns[r]
		ep.wg.Add(1)
		go func(c net.Conn) {
			defer ep.wg.Done()
			for {
				m, err := readFrame(c)
				if err != nil {
					return // connection closed
				}
				select {
				case ep.inbox <- m:
				case <-ep.done:
					return
				}
			}
		}(conn)
	}
	return nil
}

// Send delivers a message to the target rank (loopback is delivered
// through the inbox like any other message).
func (ep *TCPEndpoint) Send(m Message) error {
	m.From = ep.rank
	if m.To == ep.rank {
		select {
		case ep.inbox <- m:
			return nil
		case <-ep.done:
			return ErrClosed
		}
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	c := ep.conns[m.To]
	if c == nil {
		return fmt.Errorf("transport: no connection to rank %d", m.To)
	}
	return writeFrame(c, m)
}

// Poll dispatches queued messages to their handlers without blocking and
// reports how many ran.
func (ep *TCPEndpoint) Poll() int {
	n := 0
	for {
		select {
		case m := <-ep.inbox:
			if h := ep.handlers[m.Handler]; h != nil {
				h(ep, m)
			}
			n++
		default:
			return n
		}
	}
}

// WaitFor polls (blocking) until pred() is true.
func (ep *TCPEndpoint) WaitFor(pred func() bool) error {
	for !pred() {
		select {
		case m := <-ep.inbox:
			if h := ep.handlers[m.Handler]; h != nil {
				h(ep, m)
			}
		case <-ep.done:
			return ErrClosed
		}
	}
	return nil
}

// Close tears the endpoint down; safe to call more than once.
func (ep *TCPEndpoint) Close() error {
	ep.closeOnce.Do(func() {
		close(ep.done)
		ep.ln.Close()
		ep.mu.Lock()
		for _, c := range ep.conns {
			if c != nil {
				c.Close()
			}
		}
		ep.mu.Unlock()
		ep.wg.Wait()
	})
	return nil
}
