// Package transport provides byte-level message transports — the
// "network drivers" layer under the gasnet analog (paper Fig 2): framed
// active messages over TCP between separate endpoints, with handler
// dispatch by registered index.
//
// This is the substrate of gasnet's wire conduit: the core runtime runs
// over it whenever a job is launched multi-process (cmd/upcxx-run, or
// core.RunWire directly). The serializable operations — one-sided
// reads/writes, the xor atomic, remote allocation, barriers and
// collectives, lock traffic — all travel as these frames; only
// closure-carrying asyncs remain in-process-only, because Go closures
// do not serialize.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"upcxx/internal/fault"
	"upcxx/internal/frames"
	"upcxx/internal/obs"
)

// Message is one framed active message.
type Message struct {
	From    int32
	To      int32
	Handler uint16
	Arg     uint64
	Payload []byte

	// pooled marks a payload owned by the transport (rx-loop buffers
	// from internal/frames, SendOwned loopbacks): dispatch releases it
	// back to the pool after the handler returns unless the handler
	// called Retain.
	pooled bool
}

// MaxPayload bounds a frame's payload, both on send (oversized messages
// are rejected before any bytes hit the wire, so a half-written frame
// never corrupts the stream) and on receive (sanity limit against
// corrupt or hostile streams).
const MaxPayload = 16 << 20

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// ErrPayloadTooLarge is returned by Send for payloads over MaxPayload.
var ErrPayloadTooLarge = errors.New("transport: payload exceeds MaxPayload")

// ErrPeerDown is the sentinel matched (via errors.Is) by every
// PeerDownError a survivable endpoint returns for sends to a lost peer.
var ErrPeerDown = errors.New("transport: peer down")

// PeerDownError reports a send addressed to a peer whose connection was
// lost while the endpoint survives in peer-down mode.
type PeerDownError struct {
	Peer  int
	Cause error
}

func (e *PeerDownError) Error() string {
	return fmt.Sprintf("transport: peer %d down: %v", e.Peer, e.Cause)
}
func (e *PeerDownError) Is(target error) bool { return target == ErrPeerDown }
func (e *PeerDownError) Unwrap() error        { return e.Cause }

// Handler processes one delivered message on the receiving endpoint's
// polling goroutine.
type Handler func(ep *TCPEndpoint, m Message)

// Control frames exchanged between endpoints, outside the handler table:
// hello identifies the dialing rank during Connect; bye announces a
// clean close, so the EOF that follows it is teardown, not peer loss.
// peerDown is synthesized locally (never sent on the wire): when a
// survivable endpoint loses a peer, its reader goroutine enqueues one
// peerDown message through the inbox, so the loss is observed on the
// dispatch goroutine strictly after every frame that peer delivered.
// wake is also synthesized locally: Wake enqueues one through the
// inbox so a blocked WaitFor re-runs its predicate. It carries no
// payload and dispatch treats it as a no-op.
const (
	helloHandler    uint16 = 0xFFFF
	byeHandler      uint16 = 0xFFFE
	peerDownHandler uint16 = 0xFFFD
	wakeHandler     uint16 = 0xFFFC
)

// Vectored send plane tuning.
const (
	// frameHdrLen is the fixed frame header: [to u32][from u32]
	// [handler u16][arg u64][len u64].
	frameHdrLen = 26
	// inlineMax is the largest payload copied into the header slab
	// instead of queued by reference: small control payloads (tokens,
	// offsets, stack-allocated request encodings) cost less to copy 26
	// bytes away from their header than to spend an iovec entry on, and
	// the copy ends the caller's borrow at Send return.
	inlineMax = 64
	// slabCap sizes the pooled header/inline slabs (a frames size
	// class; ~500 header+small-payload runs per slab).
	slabCap = 16 << 10
	// flushThreshold ships a peer's queue from inside Send once this
	// many bytes are queued, bounding memory under one-way storms.
	flushThreshold = 256 << 10
)

// outQ is one peer's vectored send queue: frame headers (and inlined
// small payloads) are carved from pooled slabs, large payloads are
// queued by reference, and the whole run ships as one
// net.Buffers.WriteTo — a single writev on a *net.TCPConn — per flush,
// so the tx path copies nothing it can scatter-gather. Guarded by the
// endpoint's mu.
type outQ struct {
	bufs  net.Buffers // iovec list, in frame order
	owned [][]byte    // pooled payloads released once shipped
	slab  []byte      // active header/inline slab (len = bytes used)
	slabs [][]byte    // retired slabs awaiting release
	run   int         // slab offset where bufs' open tail entry begins; -1 when sealed
	qn    int         // total queued bytes
}

// slabAppend copies p into the slab, extending the open tail iovec when
// p lands contiguously after it (headers and inline payloads of
// consecutive frames coalesce into one entry).
func (q *outQ) slabAppend(p []byte) {
	if q.slab == nil || len(q.slab)+len(p) > cap(q.slab) {
		if q.slab != nil {
			q.slabs = append(q.slabs, q.slab)
		}
		q.slab = frames.Get(slabCap)[:0]
		q.run = -1
	}
	start := len(q.slab)
	q.slab = append(q.slab, p...)
	if q.run >= 0 {
		q.bufs[len(q.bufs)-1] = q.slab[q.run:len(q.slab):len(q.slab)]
	} else {
		q.run = start
		q.bufs = append(q.bufs, q.slab[start:len(q.slab):len(q.slab)])
	}
	q.qn += len(p)
}

// refAppend queues p by reference as its own iovec entry, sealing the
// slab run (the next header starts a new entry, preserving frame order).
func (q *outQ) refAppend(p []byte) {
	q.run = -1
	q.bufs = append(q.bufs, p)
	q.qn += len(p)
}

// enqueue queues one frame. owned payloads are released by the queue
// (after the flush that ships them, or immediately when inlined);
// borrowed payloads stay aliased until the flush.
func (q *outQ) enqueue(m Message, owned bool) {
	var hdr [frameHdrLen]byte
	putHeader(hdr[:], m, len(m.Payload))
	q.slabAppend(hdr[:])
	switch {
	case len(m.Payload) == 0:
	case len(m.Payload) <= inlineMax:
		q.slabAppend(m.Payload)
		if owned {
			frames.Put(m.Payload)
		}
	default:
		q.refAppend(m.Payload)
		if owned {
			q.owned = append(q.owned, m.Payload)
		}
	}
}

// ship writes every queued byte to c with one vectored WriteTo and
// resets the queue (releasing owned payloads and retired slabs) whether
// or not the write succeeded — after an error the connection is dead
// and the bytes are gone either way.
func (q *outQ) ship(c net.Conn) error {
	if q.qn == 0 {
		return nil
	}
	bufs := q.bufs
	_, err := bufs.WriteTo(c)
	q.reset()
	return err
}

// reset drops queued state, returning owned payloads and retired slabs
// to the pool and keeping every slice's capacity for reuse.
func (q *outQ) reset() {
	for i := range q.bufs {
		q.bufs[i] = nil
	}
	q.bufs = q.bufs[:0]
	for i, b := range q.owned {
		frames.Put(b)
		q.owned[i] = nil
	}
	q.owned = q.owned[:0]
	for i, s := range q.slabs {
		frames.Put(s)
		q.slabs[i] = nil
	}
	q.slabs = q.slabs[:0]
	q.slab = q.slab[:0]
	q.run = -1
	q.qn = 0
}

// free releases everything including the active slab; the queue is dead.
func (q *outQ) free() {
	q.reset()
	frames.Put(q.slab)
	q.slab = nil
}

// TCPEndpoint is one rank's attachment to a full-mesh TCP fabric.
type TCPEndpoint struct {
	rank     int32
	n        int32
	ln       net.Listener
	handlers []Handler

	mu    sync.Mutex
	conns []net.Conn // by peer rank; nil for self
	qs    []*outQ    // vectored send queue per peer, same indexing

	// retained is the dispatch-scope flag Retain sets: the handler
	// currently executing keeps the pooled payload alive past its
	// return. Dispatch goroutine only.
	retained bool

	inbox     chan Message
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	failMu  sync.Mutex
	failure error // first peer-connection loss; endpoint is torn down

	dropped atomic.Int64 // messages with no registered handler

	// Fault-injection seam: consulted on every outgoing remote frame.
	// Nil (the default) is a no-op. Set before Connect.
	inj *fault.Injector

	// Peer-down survival. By default a lost peer tears the whole
	// endpoint down (fail); installing a peer-down handler switches the
	// endpoint to survivable mode, where only that peer's connection is
	// retired and the loss is reported through the handler.
	survivable atomic.Bool
	peerDown   func(peer int, cause error) // runs on the dispatch goroutine
	downed     []atomic.Bool               // by peer rank
	downCause  []error                     // guarded by failMu

	// Optional periodic tick, run on the dispatch goroutine from
	// Poll/WaitFor (heartbeats, deadline sweeps). Set before use.
	tickEvery time.Duration
	tick      func()
	lastTick  time.Time

	// ring is this rank's span ring (nil unless tracing is on);
	// installed by the conduit via SetObs.
	ring *obs.Ring
}

// SetObs installs the rank's span ring on the endpoint's flush and
// blocking-wait paths.
func (ep *TCPEndpoint) SetObs(ring *obs.Ring) { ep.ring = ring }

// SetFault installs a fault injector consulted on every outgoing remote
// frame. A nil injector (the default) costs one predictable branch.
// Install before Connect.
func (ep *TCPEndpoint) SetFault(inj *fault.Injector) { ep.inj = inj }

// SetPeerDownHandler switches the endpoint to survivable peer loss:
// instead of tearing the whole endpoint down, a lost peer retires only
// its own connection, fn runs on the dispatch goroutine (after every
// frame that peer had already delivered), and subsequent sends to the
// peer return a PeerDownError. Without it the legacy whole-endpoint
// teardown applies.
func (ep *TCPEndpoint) SetPeerDownHandler(fn func(peer int, cause error)) {
	ep.failMu.Lock()
	ep.peerDown = fn
	ep.failMu.Unlock()
	ep.survivable.Store(fn != nil)
}

// SetTick installs fn to run on the dispatch goroutine roughly every d:
// from Poll when due, and on a timer while WaitFor blocks — which is
// what lets heartbeat and deadline machinery make progress while the
// rank sits in a blocking wait.
func (ep *TCPEndpoint) SetTick(d time.Duration, fn func()) {
	ep.tickEvery = d
	ep.tick = fn
	ep.lastTick = time.Now()
}

// runDueTick fires the tick if one is installed and due. Dispatch
// goroutine only.
func (ep *TCPEndpoint) runDueTick() {
	if ep.tick == nil {
		return
	}
	if now := time.Now(); now.Sub(ep.lastTick) >= ep.tickEvery {
		ep.lastTick = now
		ep.tick()
	}
}

// PeerDown reports whether peer's connection has been retired (only in
// survivable mode; a legacy endpoint tears down whole instead).
func (ep *TCPEndpoint) PeerDown(peer int) bool {
	return ep.downed != nil && ep.downed[peer].Load()
}

// peerDownErr builds the typed send error for a retired peer.
func (ep *TCPEndpoint) peerDownErr(peer int) error {
	ep.failMu.Lock()
	cause := ep.downCause[peer]
	ep.failMu.Unlock()
	return &PeerDownError{Peer: peer, Cause: cause}
}

// peerLost routes a dead peer connection: survivable endpoints retire
// just that peer, legacy endpoints tear down whole. Safe from any
// goroutine.
func (ep *TCPEndpoint) peerLost(peer int32, cause error) {
	if !ep.survivable.Load() {
		ep.fail(cause)
		return
	}
	ep.markPeerDown(peer, cause)
}

// markPeerDown retires one peer connection exactly once and enqueues
// the synthetic peerDown message behind everything the peer already
// delivered.
func (ep *TCPEndpoint) markPeerDown(peer int32, cause error) {
	if ep.downed[peer].Swap(true) {
		return
	}
	ep.failMu.Lock()
	ep.downCause[peer] = cause
	ep.failMu.Unlock()
	obs.Logf(1, int(ep.rank), "transport: peer %d down: %v", peer, cause)
	ep.mu.Lock()
	if c := ep.conns[peer]; c != nil {
		c.Close()
		ep.conns[peer] = nil
	}
	if ep.qs != nil && ep.qs[peer] != nil {
		ep.qs[peer].free()
		ep.qs[peer] = nil
	}
	ep.mu.Unlock()
	select {
	case ep.inbox <- Message{From: peer, To: ep.rank, Handler: peerDownHandler}:
	case <-ep.done:
	}
}

// Wake makes a WaitFor blocked on this endpoint re-evaluate its
// predicate by enqueueing a synthetic no-op message through the inbox.
// Safe to call from any goroutine, any number of times: it is how
// non-SPMD threads (an HTTP server, a signal handler) nudge the rank's
// progress loop after publishing work for it. When the inbox is full
// the wake is dropped — a full inbox means dispatch is active and the
// predicate is being re-checked anyway.
func (ep *TCPEndpoint) Wake() {
	select {
	case ep.inbox <- Message{From: ep.rank, To: ep.rank, Handler: wakeHandler}:
	default:
	}
}

// SeverPeer forcibly closes the connection to peer, as if the link had
// died: the local side observes peer loss through the usual path
// (peer-down in survivable mode, teardown otherwise) and the remote
// side sees an unannounced EOF.
func (ep *TCPEndpoint) SeverPeer(peer int, cause error) {
	if cause == nil {
		cause = fmt.Errorf("transport: rank %d severed connection to rank %d", ep.rank, peer)
	}
	ep.peerLost(int32(peer), cause)
}

// Abort closes the endpoint immediately WITHOUT the goodbye exchange,
// so every peer observes the close as unannounced peer loss — the
// in-process simulation of a killed rank.
func (ep *TCPEndpoint) Abort() { ep.shutdown() }

// fail records the first peer-loss error and tears the endpoint down so
// every blocked operation returns it instead of hanging. Called from
// reader goroutines, so it must not wait for them (see Close).
func (ep *TCPEndpoint) fail(err error) {
	ep.failMu.Lock()
	if ep.failure == nil {
		ep.failure = err
	}
	ep.failMu.Unlock()
	ep.shutdown()
}

// Err returns the peer-loss error that tore the endpoint down, or nil.
func (ep *TCPEndpoint) Err() error {
	ep.failMu.Lock()
	defer ep.failMu.Unlock()
	return ep.failure
}

// closedErr is what blocked operations return once done is closed: the
// peer-loss cause when there is one, plain ErrClosed otherwise.
func (ep *TCPEndpoint) closedErr() error {
	if err := ep.Err(); err != nil {
		return err
	}
	return ErrClosed
}

// Rank returns this endpoint's rank; Ranks the job size.
func (ep *TCPEndpoint) Rank() int  { return int(ep.rank) }
func (ep *TCPEndpoint) Ranks() int { return int(ep.n) }

// Dropped reports how many delivered messages named a handler index
// that was out of range or unregistered (each is dropped rather than
// crashing the dispatch loop; a correct peer never sends one).
func (ep *TCPEndpoint) Dropped() int64 { return ep.dropped.Load() }

// Retain transfers ownership of the payload being dispatched to the
// calling handler: the transport will not recycle it when the handler
// returns. Handlers that park a payload past their return (the wire
// conduit's reply map) must call it; handlers that consume or copy the
// payload synchronously must not. Valid only while a handler executes,
// on the dispatch goroutine.
func (ep *TCPEndpoint) Retain() { ep.retained = true }

// dispatch routes one message to its handler, tolerating bogus indices.
// Pooled payloads (rx-loop buffers, owned loopbacks) return to the
// frame pool when the handler does — unless it called Retain — which is
// what keeps the steady-state receive loop at zero allocations per
// frame.
func (ep *TCPEndpoint) dispatch(m Message) {
	if m.Handler == wakeHandler {
		return // delivery itself was the point: WaitFor re-runs its predicate
	}
	if m.Handler == peerDownHandler {
		ep.failMu.Lock()
		fn, cause := ep.peerDown, ep.downCause[m.From]
		ep.failMu.Unlock()
		if fn != nil {
			fn(int(m.From), cause)
		}
		return
	}
	if int(m.Handler) >= len(ep.handlers) || ep.handlers[m.Handler] == nil {
		ep.dropped.Add(1)
		if m.pooled {
			frames.Put(m.Payload)
		}
		return
	}
	ep.retained = false
	ep.handlers[m.Handler](ep, m)
	if m.pooled && !ep.retained {
		frames.Put(m.Payload)
	}
}

// putHeader serializes a frame header announcing an n-byte payload:
// [to][from][handler][arg][len].
func putHeader(hdr []byte, m Message, n int) {
	binary.LittleEndian.PutUint32(hdr[0:], uint32(m.To))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(m.From))
	binary.LittleEndian.PutUint16(hdr[8:], m.Handler)
	binary.LittleEndian.PutUint64(hdr[10:], m.Arg)
	binary.LittleEndian.PutUint64(hdr[18:], uint64(n))
}

// writeFrame serializes one message directly to w (the Connect hello
// exchange; steady-state traffic goes through the vectored queues).
func writeFrame(w io.Writer, m Message) error {
	var hdr [frameHdrLen]byte
	putHeader(hdr[:], m, len(m.Payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(m.Payload)
	return err
}

// readFrame deserializes one message. The payload buffer comes from the
// frame pool; dispatch releases it after the handler runs (see Retain).
func readFrame(r io.Reader) (Message, error) {
	var hdr [frameHdrLen]byte
	return readFrameHdr(r, &hdr)
}

// readFrameHdr is readFrame with a caller-provided header scratch
// buffer: hdr escapes through the io.ReadFull interface call, so the
// reader loop hoists one out of its per-frame path instead of heap-
// allocating 26 bytes per received frame.
func readFrameHdr(r io.Reader, hdr *[frameHdrLen]byte) (Message, error) {
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	m := Message{
		To:      int32(binary.LittleEndian.Uint32(hdr[0:])),
		From:    int32(binary.LittleEndian.Uint32(hdr[4:])),
		Handler: binary.LittleEndian.Uint16(hdr[8:]),
		Arg:     binary.LittleEndian.Uint64(hdr[10:]),
	}
	n := binary.LittleEndian.Uint64(hdr[18:])
	if n > MaxPayload {
		return Message{}, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	if n > 0 {
		m.Payload = frames.Get(int(n))
		m.pooled = true
		if _, err := io.ReadFull(r, m.Payload); err != nil {
			frames.Put(m.Payload)
			return Message{}, err
		}
	}
	return m, nil
}

// ListenTCP creates an endpoint for the given rank of an n-rank job,
// listening on addr (use "127.0.0.1:0" to pick a free port). Connect must
// be called with everyone's advertised addresses before sending.
func ListenTCP(rank, n int, addr string) (*TCPEndpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ep := &TCPEndpoint{
		rank:      int32(rank),
		n:         int32(n),
		ln:        ln,
		handlers:  make([]Handler, 256),
		conns:     make([]net.Conn, n),
		inbox:     make(chan Message, 1024),
		done:      make(chan struct{}),
		downed:    make([]atomic.Bool, n),
		downCause: make([]error, n),
	}
	return ep, nil
}

// Addr returns the endpoint's advertised listen address.
func (ep *TCPEndpoint) Addr() string { return ep.ln.Addr().String() }

// Register installs a handler at the given index (all endpoints must
// agree on the mapping, as with GASNet handler tables).
func (ep *TCPEndpoint) Register(idx uint16, h Handler) { ep.handlers[idx] = h }

// Connect wires the full mesh: ranks below us dial in, we dial ranks
// above us (a deterministic pairing that avoids duplicate connections).
// addrs is indexed by rank.
func (ep *TCPEndpoint) Connect(addrs []string) error {
	var wg sync.WaitGroup
	var acceptErr error
	expect := int(ep.rank) // ranks 0..rank-1 dial us
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < expect; i++ {
			c, err := ep.ln.Accept()
			if err != nil {
				acceptErr = err
				return
			}
			// The dialer announces itself with one frame.
			m, err := readFrame(c)
			if err != nil {
				acceptErr = err
				return
			}
			ep.mu.Lock()
			ep.conns[m.From] = c
			ep.mu.Unlock()
		}
	}()
	for r := int(ep.rank) + 1; r < int(ep.n); r++ {
		c, err := net.Dial("tcp", addrs[r])
		if err != nil {
			return fmt.Errorf("transport: rank %d dialing %d: %w", ep.rank, r, err)
		}
		if err := writeFrame(c, Message{From: ep.rank, To: int32(r), Handler: helloHandler}); err != nil {
			return err
		}
		ep.mu.Lock()
		ep.conns[r] = c
		ep.mu.Unlock()
	}
	wg.Wait()
	if acceptErr != nil {
		return acceptErr
	}
	// Give every connection a vectored send queue: frames accumulate as
	// header-slab and payload iovecs and ship as one writev-backed
	// WriteTo per flush, instead of a syscall pair (or a copy into a
	// buffered writer) each — which is what lets pipelined non-blocking
	// operations (GetAsync storms, the aggregation plane) actually
	// overlap, with zero payload copies on the tx path. Flushed whenever
	// this rank is about to block (WaitFor), at the end of every Poll,
	// and inline once a queue passes flushThreshold, so no frame can sit
	// queued while its sender sleeps.
	ep.qs = make([]*outQ, ep.n)
	for r, c := range ep.conns {
		if c != nil {
			ep.qs[r] = &outQ{run: -1}
		}
	}
	// One reader goroutine per peer feeds the inbox. A read error with
	// the endpoint still open means the peer died mid-job: surface it
	// and tear down, so ranks blocked on that peer fail loudly instead
	// of hanging (and a launcher's smoke run exits instead of timing out).
	for r := int32(0); r < ep.n; r++ {
		if r == ep.rank {
			continue
		}
		conn := ep.conns[r]
		ep.wg.Add(1)
		go func(peer int32, c net.Conn) {
			defer ep.wg.Done()
			sawBye := false
			var hdr [frameHdrLen]byte // one header scratch per reader, not per frame
			for {
				m, err := readFrameHdr(c, &hdr)
				if err != nil {
					if sawBye {
						return // peer announced a clean close
					}
					select {
					case <-ep.done: // deliberate Close on our side
					default:
						ep.peerLost(peer, fmt.Errorf("transport: rank %d lost connection to rank %d: %w",
							ep.rank, peer, err))
					}
					return
				}
				if m.Handler == byeHandler {
					sawBye = true
					continue
				}
				select {
				case ep.inbox <- m:
				case <-ep.done:
					return
				}
			}
		}(r, conn)
	}
	return nil
}

// Send queues a message for the target rank (loopback is delivered
// through the inbox like any other message). Remote frames accumulate
// in a per-peer vectored queue and ship when the queue passes the
// inline-flush threshold, when this endpoint is about to block in
// WaitFor, at the end of Poll, or at an explicit Flush — so a caller
// that sends and then stops making progress calls must Flush.
//
// Ownership: Send BORROWS the payload until the flush that ships it
// (payloads of at most inlineMax bytes are copied at the call, ending
// the borrow immediately). Callers that mutate or recycle the payload
// before then must use SendOwned. Payloads over MaxPayload and sends on
// a closed endpoint are rejected up front.
func (ep *TCPEndpoint) Send(m Message) error { return ep.enqueue(m, false) }

// SendOwned is Send with ownership transfer: the payload belongs to the
// transport from the call on and is released to the frame pool once the
// frame has shipped (or on any error path), so callers can hand over
// pooled buffers without waiting for a flush. The caller must not touch
// the payload after the call.
func (ep *TCPEndpoint) SendOwned(m Message) error { return ep.enqueue(m, true) }

// disposeOwned releases an owned payload on a path where the frame
// never ships.
func disposeOwned(m Message, owned bool) {
	if owned {
		frames.Put(m.Payload)
	}
}

func (ep *TCPEndpoint) enqueue(m Message, owned bool) error {
	if len(m.Payload) > MaxPayload {
		disposeOwned(m, owned)
		return fmt.Errorf("%w: %d bytes", ErrPayloadTooLarge, len(m.Payload))
	}
	select {
	case <-ep.done:
		disposeOwned(m, owned)
		return ep.closedErr()
	default:
	}
	m.From = ep.rank
	if m.To == ep.rank {
		// Loopback: an owned payload rides the pooled-release path
		// through dispatch, exactly like an rx buffer.
		m.pooled = owned
		select {
		case ep.inbox <- m:
			return nil
		case <-ep.done:
			disposeOwned(m, owned)
			return ep.closedErr()
		}
	}
	if ep.downed[m.To].Load() {
		disposeOwned(m, owned)
		return ep.peerDownErr(int(m.To))
	}
	if act, fired := ep.inj.OnSend(int(m.To), m.Handler); fired {
		switch act.Kind {
		case fault.Drop:
			disposeOwned(m, owned)
			return nil // the frame silently vanishes
		case fault.Delay:
			time.Sleep(act.Delay)
		case fault.Sever:
			// The sever writes a header-only torn frame; the payload
			// itself never ships (severFrame reads only its length).
			disposeOwned(m, owned)
			return ep.severFrame(m)
		}
	}
	ep.mu.Lock()
	q := ep.qs[m.To]
	if q == nil {
		ep.mu.Unlock()
		disposeOwned(m, owned)
		return fmt.Errorf("transport: no connection to rank %d", m.To)
	}
	q.enqueue(m, owned)
	var err error
	if q.qn >= flushThreshold {
		err = q.ship(ep.conns[m.To])
	}
	ep.mu.Unlock()
	if err != nil {
		return ep.flushFailed(m.To, err)
	}
	return nil
}

// flushFailed routes a failed vectored write into the peer-loss path
// (outside ep.mu — markPeerDown retakes it) and returns the typed send
// error the caller should see.
func (ep *TCPEndpoint) flushFailed(peer int32, err error) error {
	cause := fmt.Errorf("transport: rank %d flushing to rank %d: %w", ep.rank, peer, err)
	ep.peerLost(peer, cause)
	if ep.survivable.Load() {
		return ep.peerDownErr(int(peer))
	}
	return cause
}

// severFrame executes an injected mid-frame sever: it writes only the
// frame header (announcing a payload that never follows) and closes
// the connection, so the peer's next read fails with an unexpected EOF
// partway through a frame — the worst-shaped cut a real link failure
// produces. The local side then routes through the normal peer-loss
// path and the caller gets the typed peer-down error.
func (ep *TCPEndpoint) severFrame(m Message) error {
	ep.mu.Lock()
	if q := ep.qs[m.To]; q != nil {
		var hdr [frameHdrLen]byte
		putHeader(hdr[:], m, len(m.Payload)+1)
		q.slabAppend(hdr[:])
		_ = q.ship(ep.conns[m.To])
	}
	c := ep.conns[m.To]
	ep.mu.Unlock()
	cause := fmt.Errorf("transport: fault injection severed rank %d's connection to rank %d mid-frame",
		ep.rank, m.To)
	if c != nil {
		c.Close()
	}
	ep.peerLost(m.To, cause)
	if ep.survivable.Load() {
		return ep.peerDownErr(int(m.To))
	}
	return cause
}

// Flush ships every queued frame now. Callers that send and then
// neither poll nor wait (a collective root answering its children
// after its own wait completed) must flush, or the frames sit queued
// while the peers sleep.
func (ep *TCPEndpoint) Flush() { ep.flushOut() }

// flushOut ships every queued frame, one vectored write per peer. A
// failed write means that peer's connection is dead: the failure routes
// into the peer-loss path (peer-down retirement in survivable mode,
// whole-endpoint teardown otherwise) after ep.mu is released — so a
// dead peer surfaces at flush time instead of waiting for the reader
// goroutine to notice, and a flush error is never silently swallowed.
func (ep *TCPEndpoint) flushOut() {
	var failedPeers []int32
	var failedErrs []error
	ep.mu.Lock()
	buffered := 0
	for r, q := range ep.qs {
		if q == nil || q.qn == 0 {
			continue
		}
		buffered += q.qn
		if err := q.ship(ep.conns[r]); err != nil {
			failedPeers = append(failedPeers, int32(r))
			failedErrs = append(failedErrs, err)
		}
	}
	ep.mu.Unlock()
	if buffered > 0 && ep.ring != nil {
		ep.ring.Instant(obs.KNetFlush, -1, uint32(buffered), 0)
	}
	// Route failures outside ep.mu: markPeerDown retakes it.
	for i, peer := range failedPeers {
		_ = ep.flushFailed(peer, failedErrs[i])
	}
}

// Poll dispatches queued messages to their handlers without blocking and
// reports how many ran. Buffered outgoing frames (including replies the
// handlers just wrote) are flushed before returning.
func (ep *TCPEndpoint) Poll() int {
	n := 0
	for {
		select {
		case m := <-ep.inbox:
			ep.dispatch(m)
			n++
		default:
			ep.runDueTick()
			ep.flushOut()
			return n
		}
	}
}

// WaitFor polls (blocking) until pred() is true. Buffered outgoing
// frames are flushed whenever the wait is about to block, so a peer
// can never be left waiting on a frame parked in our write buffer.
func (ep *TCPEndpoint) WaitFor(pred func() bool) error {
	if !pred() && ep.ring != nil {
		ep.ring.Begin(obs.KNetWait, -1, 0)
		defer ep.ring.End(obs.KNetWait)
	}
	for !pred() {
		select {
		case m := <-ep.inbox:
			ep.dispatch(m)
			continue
		default:
		}
		ep.flushOut()
		if ep.tick != nil {
			// With a tick installed the blocking wait must still wake
			// periodically: heartbeats and deadline sweeps are what turn
			// a silently lost peer into progress on this very wait.
			timer := time.NewTimer(ep.tickEvery)
			select {
			case m := <-ep.inbox:
				ep.dispatch(m)
			case <-timer.C:
				ep.lastTick = time.Now()
				ep.tick()
			case <-ep.done:
				timer.Stop()
				return ep.closedErr()
			}
			timer.Stop()
			continue
		}
		select {
		case m := <-ep.inbox:
			ep.dispatch(m)
		case <-ep.done:
			return ep.closedErr()
		}
	}
	ep.flushOut()
	return nil
}

// Goodbye announces a clean close to every peer, so the EOF they see
// when this endpoint closes reads as orderly teardown rather than peer
// loss. Call it only after the job's final synchronization point, right
// before Close; a rank that dies early must NOT say goodbye — the
// unannounced EOF is what propagates the abort to its peers.
func (ep *TCPEndpoint) Goodbye() {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	for r, q := range ep.qs {
		if q == nil {
			continue
		}
		// Best-effort: an unreachable peer is already tearing down.
		q.enqueue(Message{From: ep.rank, To: int32(r), Handler: byeHandler}, false)
		_ = q.ship(ep.conns[r])
	}
}

// shutdown closes the listener and every connection without waiting for
// the reader goroutines (fail is called from one of them).
func (ep *TCPEndpoint) shutdown() {
	ep.closeOnce.Do(func() {
		close(ep.done)
		ep.ln.Close()
		ep.mu.Lock()
		for _, c := range ep.conns {
			if c != nil {
				c.Close()
			}
		}
		ep.mu.Unlock()
	})
}

// Close tears the endpoint down; safe to call more than once.
func (ep *TCPEndpoint) Close() error {
	ep.shutdown()
	ep.wg.Wait()
	return nil
}
