package transport

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestWakeUnblocksWaitFor is the contract the service plane builds on:
// a non-transport goroutine flips shared state, calls Wake, and a
// WaitFor blocked on that state observes it promptly — without any
// message traffic and without a tick installed.
func TestWakeUnblocksWaitFor(t *testing.T) {
	eps := mesh(t, 2)
	var flag atomic.Bool
	done := make(chan error, 1)
	go func() {
		done <- eps[0].WaitFor(flag.Load)
	}()
	// Let the waiter park, then wake it from a foreign goroutine.
	time.Sleep(20 * time.Millisecond)
	flag.Store(true)
	eps[0].Wake()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("WaitFor: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitFor did not observe the flag after Wake")
	}
}

// TestWakeIsDroppedWhenIdle pins the no-op half of the contract: wakes
// issued while nobody waits must not be misrouted to a handler, leak a
// frame, or count as a drop against the unknown-handler accounting.
func TestWakeIsDroppedWhenIdle(t *testing.T) {
	eps := mesh(t, 2)
	for i := 0; i < 2000; i++ {
		eps[0].Wake() // beyond inbox capacity: the overflow path must not block
	}
	if n := eps[0].Poll(); n == 0 {
		t.Fatal("Poll dispatched no queued wakes")
	}
	if d := eps[0].Dropped(); d != 0 {
		t.Fatalf("wake frames counted as handler drops: %d", d)
	}
	// The endpoint must still carry real traffic afterwards.
	got := make(chan uint64, 1)
	eps[1].Register(7, func(_ *TCPEndpoint, m Message) { got <- m.Arg })
	if err := eps[0].Send(Message{From: 0, To: 1, Handler: 7, Arg: 42}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		eps[0].Poll()
		eps[1].Poll()
		select {
		case v := <-got:
			if v != 42 {
				t.Fatalf("arg = %d, want 42", v)
			}
			return
		case <-deadline:
			t.Fatal("message after wake storm never arrived")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}
