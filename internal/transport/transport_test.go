package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// mesh spins up n endpoints over localhost and wires the full mesh.
func mesh(t *testing.T, n int) []*TCPEndpoint {
	t.Helper()
	eps := make([]*TCPEndpoint, n)
	addrs := make([]string, n)
	for i := range eps {
		ep, err := ListenTCP(i, n, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
		addrs[i] = ep.Addr()
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, ep := range eps {
		wg.Add(1)
		go func(i int, ep *TCPEndpoint) {
			defer wg.Done()
			errs[i] = ep.Connect(addrs)
		}(i, ep)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d connect: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, ep := range eps {
			ep.Close()
		}
	})
	return eps
}

func TestFrameRoundTrip(t *testing.T) {
	f := func(to, from int32, h uint16, arg uint64, payload []byte) bool {
		var buf bytes.Buffer
		in := Message{To: to, From: from, Handler: h, Arg: arg, Payload: payload}
		if err := writeFrame(&buf, in); err != nil {
			return false
		}
		out, err := readFrame(&buf)
		if err != nil {
			return false
		}
		return out.To == to && out.From == from && out.Handler == h &&
			out.Arg == arg && bytes.Equal(out.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRingOverTCP(t *testing.T) {
	const n = 4
	eps := mesh(t, n)
	var received [n]atomic.Uint64
	for i, ep := range eps {
		i := i
		ep.Register(1, func(_ *TCPEndpoint, m Message) {
			received[i].Store(m.Arg)
		})
	}
	var wg sync.WaitGroup
	for i, ep := range eps {
		wg.Add(1)
		go func(i int, ep *TCPEndpoint) {
			defer wg.Done()
			next := int32((i + 1) % n)
			if err := ep.Send(Message{To: next, Handler: 1, Arg: uint64(100 + i)}); err != nil {
				t.Errorf("send: %v", err)
				return
			}
			if err := ep.WaitFor(func() bool { return received[i].Load() != 0 }); err != nil {
				t.Errorf("wait: %v", err)
			}
		}(i, ep)
	}
	wg.Wait()
	for i := range eps {
		prev := (i + n - 1) % n
		if got := received[i].Load(); got != uint64(100+prev) {
			t.Errorf("rank %d received %d, want %d", i, got, 100+prev)
		}
	}
}

func TestPayloadIntegrity(t *testing.T) {
	eps := mesh(t, 2)
	var got atomic.Pointer[[]byte]
	eps[1].Register(2, func(_ *TCPEndpoint, m Message) {
		p := append([]byte(nil), m.Payload...)
		got.Store(&p)
	})
	payload := make([]byte, 1<<16)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := eps[0].Send(Message{To: 1, Handler: 2, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	eps[0].Flush() // the sender performs no further progress calls
	if err := eps[1].WaitFor(func() bool { return got.Load() != nil }); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(*got.Load(), payload) {
		t.Fatal("payload corrupted in flight")
	}
}

func TestReplyChain(t *testing.T) {
	// Request/reply over the wire: the active-message shape the runtime
	// would use for remote allocation.
	eps := mesh(t, 2)
	var answer atomic.Uint64
	eps[1].Register(3, func(ep *TCPEndpoint, m Message) {
		_ = ep.Send(Message{To: m.From, Handler: 4, Arg: m.Arg * m.Arg})
	})
	eps[0].Register(4, func(_ *TCPEndpoint, m Message) { answer.Store(m.Arg) })

	done := make(chan error, 1)
	go func() {
		done <- eps[1].WaitFor(func() bool { return false }) // serve until closed
	}()
	if err := eps[0].Send(Message{To: 1, Handler: 3, Arg: 12}); err != nil {
		t.Fatal(err)
	}
	if err := eps[0].WaitFor(func() bool { return answer.Load() != 0 }); err != nil {
		t.Fatal(err)
	}
	if answer.Load() != 144 {
		t.Fatalf("reply = %d, want 144", answer.Load())
	}
	eps[1].Close()
	if err := <-done; err != ErrClosed {
		t.Errorf("server exit = %v, want ErrClosed", err)
	}
}

func TestLoopbackDelivery(t *testing.T) {
	eps := mesh(t, 2)
	hit := false
	eps[0].Register(5, func(_ *TCPEndpoint, m Message) { hit = m.Arg == 7 })
	if err := eps[0].Send(Message{To: 0, Handler: 5, Arg: 7}); err != nil {
		t.Fatal(err)
	}
	eps[0].Poll()
	if !hit {
		t.Fatal("loopback message not delivered")
	}
}

// ---- Error paths ----

func TestOversizedPayloadRejected(t *testing.T) {
	eps := mesh(t, 2)
	big := make([]byte, MaxPayload+1)
	err := eps[0].Send(Message{To: 1, Handler: 1, Payload: big})
	if !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("Send(%d bytes) = %v, want ErrPayloadTooLarge", len(big), err)
	}
	// The stream must still be intact: a normal message goes through.
	var ok atomic.Bool
	eps[1].Register(1, func(_ *TCPEndpoint, m Message) { ok.Store(m.Arg == 9) })
	if err := eps[0].Send(Message{To: 1, Handler: 1, Arg: 9}); err != nil {
		t.Fatal(err)
	}
	eps[0].Flush()
	if err := eps[1].WaitFor(ok.Load); err != nil {
		t.Fatal(err)
	}
	// A loopback oversized send must be rejected the same way.
	if err := eps[0].Send(Message{To: 0, Handler: 1, Payload: big}); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("loopback oversized Send = %v, want ErrPayloadTooLarge", err)
	}
}

func TestOversizedFrameRejectedOnRead(t *testing.T) {
	// A corrupt (or hostile) stream announcing a giant payload must be
	// refused before any allocation, not trusted.
	var hdr [26]byte
	binary.LittleEndian.PutUint64(hdr[18:], MaxPayload+1)
	if _, err := readFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("readFrame accepted an over-limit length header")
	}
}

func TestClosedEndpointSends(t *testing.T) {
	eps := mesh(t, 2)
	eps[0].Close()
	if err := eps[0].Send(Message{To: 1, Handler: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("remote Send on closed endpoint = %v, want ErrClosed", err)
	}
	if err := eps[0].Send(Message{To: 0, Handler: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("loopback Send on closed endpoint = %v, want ErrClosed", err)
	}
	if err := eps[0].WaitFor(func() bool { return false }); !errors.Is(err, ErrClosed) {
		t.Fatalf("WaitFor on closed endpoint = %v, want ErrClosed", err)
	}
}

func TestPartialFrameRead(t *testing.T) {
	full := &bytes.Buffer{}
	if err := writeFrame(full, Message{To: 1, From: 0, Handler: 2, Arg: 3,
		Payload: []byte("hello, wire")}); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()
	// Every proper prefix must fail cleanly — truncated header or
	// truncated payload — never hang or misparse.
	for cut := 0; cut < len(raw); cut++ {
		if _, err := readFrame(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("readFrame succeeded on %d of %d bytes", cut, len(raw))
		}
	}
	if m, err := readFrame(bytes.NewReader(raw)); err != nil || string(m.Payload) != "hello, wire" {
		t.Fatalf("full frame readback: %v %q", err, m.Payload)
	}
}

func TestHandlerIndexOutOfRange(t *testing.T) {
	eps := mesh(t, 2)
	var ok atomic.Bool
	eps[1].Register(7, func(_ *TCPEndpoint, m Message) { ok.Store(true) })
	// Out-of-range index (the handler table has 256 slots) and an
	// unregistered in-range index: both must be dropped, not panic.
	for _, h := range []uint16{0x7FFF, 200} {
		if err := eps[0].Send(Message{To: 1, Handler: h, Arg: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := eps[0].Send(Message{To: 1, Handler: 7}); err != nil {
		t.Fatal(err)
	}
	eps[0].Flush()
	if err := eps[1].WaitFor(ok.Load); err != nil {
		t.Fatal(err)
	}
	if got := eps[1].Dropped(); got != 2 {
		t.Fatalf("Dropped() = %d, want 2", got)
	}
}

func TestManyMessagesOrdered(t *testing.T) {
	// Point-to-point ordering over one TCP stream.
	eps := mesh(t, 2)
	var last atomic.Int64
	var bad atomic.Bool
	eps[1].Register(6, func(_ *TCPEndpoint, m Message) {
		if int64(m.Arg) != last.Load()+1 {
			bad.Store(true)
		}
		last.Store(int64(m.Arg))
	})
	const msgs = 500
	go func() {
		for i := 1; i <= msgs; i++ {
			if err := eps[0].Send(Message{To: 1, Handler: 6, Arg: uint64(i)}); err != nil {
				fmt.Println("send error:", err)
				return
			}
		}
		eps[0].Flush()
	}()
	if err := eps[1].WaitFor(func() bool { return last.Load() == msgs }); err != nil {
		t.Fatal(err)
	}
	if bad.Load() {
		t.Fatal("messages reordered on one stream")
	}
}

// A peer dying mid-job must surface as an error on every blocked
// operation, not a hang: the reader goroutine that sees the dropped
// connection tears the endpoint down and WaitFor/Send report the cause.
func TestPeerLossUnblocksWaiters(t *testing.T) {
	eps := mesh(t, 3)

	waitErr := make(chan error, 1)
	go func() {
		waitErr <- eps[0].WaitFor(func() bool { return false })
	}()

	eps[1].Close() // rank 1 "dies"

	err := <-waitErr
	if err == nil {
		t.Fatal("WaitFor returned nil after peer loss")
	}
	if errors.Is(err, ErrClosed) {
		t.Fatalf("WaitFor = ErrClosed, want the peer-loss cause, got %v", err)
	}
	if eps[0].Err() == nil {
		t.Error("Err() = nil after peer loss")
	}
	if err := eps[0].Send(Message{To: 2, Handler: 3}); err == nil {
		t.Error("Send on a torn-down endpoint returned nil")
	}
}
