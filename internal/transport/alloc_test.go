//go:build !race

// Steady-state allocation gates for the zero-copy data path. The race
// detector instruments allocations, so these run in non-race builds
// only (the CI alloc-gate leg).
package transport

import (
	"sync/atomic"
	"testing"

	"upcxx/internal/frames"
)

// TestAllocsSendReceiveSteadyState gates the full frame cycle — Send
// (borrowed payload, by-reference iovec), vectored flush, reader-
// goroutine rx into a pooled buffer, dispatch, pool release — at ≤1
// allocation per frame once the slabs, queues and pools are warm.
func TestAllocsSendReceiveSteadyState(t *testing.T) {
	eps := mesh(t, 2)
	var hits atomic.Int64
	eps[1].Register(5, func(_ *TCPEndpoint, m Message) { hits.Add(1) })

	payload := make([]byte, 1024)
	const batch = 64
	want := int64(0)
	cycle := func() {
		for i := 0; i < batch; i++ {
			if err := eps[0].Send(Message{To: 1, Handler: 5, Arg: uint64(i), Payload: payload}); err != nil {
				t.Fatal(err)
			}
		}
		eps[0].Flush()
		want += batch
		// Drain with non-blocking polls: WaitFor would arm timers and
		// muddy the measurement.
		for hits.Load() < want {
			eps[1].Poll()
		}
	}
	cycle() // warm slabs, iovec queues, rx pools

	avg := testing.AllocsPerRun(50, cycle)
	if perFrame := avg / batch; perFrame > 1.0 {
		t.Errorf("send+rx steady state: %.3f allocs/frame, want <= 1", perFrame)
	}
}

// TestAllocsDispatchSteadyState gates the pooled dispatch-and-release
// path in isolation via loopback: an owned pooled payload rides the
// inbox, runs its handler, and returns to the pool — zero allocations
// per frame.
func TestAllocsDispatchSteadyState(t *testing.T) {
	eps := mesh(t, 1)
	var sum atomic.Uint64
	eps[0].Register(5, func(_ *TCPEndpoint, m Message) { sum.Add(uint64(m.Payload[0])) })

	cycle := func() {
		p := frames.Get(512)
		p[0] = 1
		if err := eps[0].SendOwned(Message{To: 0, Handler: 5, Payload: p}); err != nil {
			t.Fatal(err)
		}
		for eps[0].Poll() == 0 {
		}
	}
	cycle()

	avg := testing.AllocsPerRun(2000, cycle)
	if avg > 0.1 {
		t.Errorf("loopback dispatch steady state: %.3f allocs/frame, want 0", avg)
	}
}
