package transport

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// failWrites makes every subsequent write on ep's connection to peer
// fail deterministically by moving its write deadline into the past —
// the in-process stand-in for a peer whose link died between our last
// flush and this one.
func failWrites(t *testing.T, ep *TCPEndpoint, peer int) {
	t.Helper()
	ep.mu.Lock()
	c := ep.conns[peer]
	ep.mu.Unlock()
	if c == nil {
		t.Fatalf("no connection to peer %d", peer)
	}
	if err := c.(*net.TCPConn).SetWriteDeadline(time.Unix(1, 0)); err != nil {
		t.Fatal(err)
	}
}

// TestFlushErrorRetiresPeerSurvivable: a failed vectored write at flush
// time must route into the peer-down path — the peer retires, the
// handler observes the flush cause, and later sends fail fast with the
// typed error — instead of being silently swallowed.
func TestFlushErrorRetiresPeerSurvivable(t *testing.T) {
	type downEv struct {
		peer  int
		cause error
	}
	var mu sync.Mutex
	var downs []downEv
	eps := meshWith(t, 2, func(i int, ep *TCPEndpoint) {
		ep.SetPeerDownHandler(func(peer int, cause error) {
			mu.Lock()
			downs = append(downs, downEv{peer, cause})
			mu.Unlock()
		})
	})

	failWrites(t, eps[0], 1)
	if err := eps[0].Send(Message{To: 1, Handler: 3, Arg: 7}); err != nil {
		t.Fatalf("queueing send: %v", err)
	}
	eps[0].Flush()

	if !eps[0].PeerDown(1) {
		t.Fatal("flush failure did not retire the peer")
	}
	// The retirement reaches the dispatch plane: the synthetic
	// peer-down message runs the handler with the flush-time cause.
	for i := 0; len(downs) == 0 && i < 1000; i++ {
		eps[0].Poll()
	}
	mu.Lock()
	defer mu.Unlock()
	if len(downs) != 1 || downs[0].peer != 1 {
		t.Fatalf("peer-down events = %+v, want one for peer 1", downs)
	}
	if !strings.Contains(downs[0].cause.Error(), "flushing") {
		t.Errorf("cause %q does not name the flush path", downs[0].cause)
	}
	// Subsequent sends fail fast with the typed error.
	if err := eps[0].Send(Message{To: 1, Handler: 3}); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("send after flush failure: %v, want ErrPeerDown", err)
	}
}

// TestFlushErrorTearsDownLegacy: without a peer-down handler a flush
// failure is whole-endpoint fatal, matching the reader-side loss
// semantics.
func TestFlushErrorTearsDownLegacy(t *testing.T) {
	eps := meshWith(t, 2, nil)
	failWrites(t, eps[0], 1)
	if err := eps[0].Send(Message{To: 1, Handler: 3}); err != nil {
		t.Fatalf("queueing send: %v", err)
	}
	eps[0].Flush()
	if err := eps[0].Err(); err == nil {
		t.Fatal("flush failure left no endpoint error")
	} else if !strings.Contains(err.Error(), "flushing") {
		t.Errorf("teardown cause %q does not name the flush path", err)
	}
	if err := eps[0].Send(Message{To: 1, Handler: 3}); err == nil {
		t.Fatal("send on a torn-down endpoint succeeded")
	}
}

// TestInlineFlushErrorSurfacesOnSend: a send large enough to trip the
// inline flush threshold reports the write failure on the Send call
// itself, with the same typed error.
func TestInlineFlushErrorSurfacesOnSend(t *testing.T) {
	eps := meshWith(t, 2, func(i int, ep *TCPEndpoint) {
		ep.SetPeerDownHandler(func(int, error) {})
	})
	failWrites(t, eps[0], 1)
	big := make([]byte, flushThreshold)
	if err := eps[0].Send(Message{To: 1, Handler: 3, Payload: big}); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("oversized send on a dead link: %v, want ErrPeerDown", err)
	}
	if !eps[0].PeerDown(1) {
		t.Fatal("inline flush failure did not retire the peer")
	}
}
