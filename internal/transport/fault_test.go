package transport

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"upcxx/internal/fault"
)

// meshWith is mesh with a pre-Connect setup hook per endpoint, so fault
// injectors and peer-down handlers are installed before any traffic.
func meshWith(t *testing.T, n int, setup func(i int, ep *TCPEndpoint)) []*TCPEndpoint {
	t.Helper()
	eps := make([]*TCPEndpoint, n)
	addrs := make([]string, n)
	for i := range eps {
		ep, err := ListenTCP(i, n, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
		addrs[i] = ep.Addr()
		if setup != nil {
			setup(i, ep)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, ep := range eps {
		wg.Add(1)
		go func(i int, ep *TCPEndpoint) {
			defer wg.Done()
			errs[i] = ep.Connect(addrs)
		}(i, ep)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d connect: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, ep := range eps {
			ep.Close()
		}
	})
	return eps
}

func mustPlan(t *testing.T, spec string) *fault.Plan {
	t.Helper()
	p, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestInjectedDropSkipsFrame: a drop rule swallows exactly the frame
// its op-count names; the stream stays intact around it.
func TestInjectedDropSkipsFrame(t *testing.T) {
	plan := mustPlan(t, "drop:rank=0,peer=1,handler=3,op=2")
	eps := meshWith(t, 2, func(i int, ep *TCPEndpoint) {
		ep.SetFault(plan.ForRank(i))
	})
	var got []uint64
	var mu sync.Mutex
	eps[1].Register(3, func(_ *TCPEndpoint, m Message) {
		mu.Lock()
		got = append(got, m.Arg)
		mu.Unlock()
	})
	for i := 1; i <= 3; i++ {
		if err := eps[0].Send(Message{To: 1, Handler: 3, Arg: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	eps[0].Flush()
	if err := eps[1].WaitFor(func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 2
	}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if got[0] != 1 || got[1] != 3 {
		t.Fatalf("delivered %v, want [1 3] (frame 2 dropped)", got)
	}
}

// TestInjectedDelayStallsFrame: a delay rule holds its frame at least
// the configured duration.
func TestInjectedDelayStallsFrame(t *testing.T) {
	const stall = 60 * time.Millisecond
	plan := mustPlan(t, "delay:rank=0,peer=1,op=1,delay=60ms")
	eps := meshWith(t, 2, func(i int, ep *TCPEndpoint) {
		ep.SetFault(plan.ForRank(i))
	})
	var hit atomic.Bool
	eps[1].Register(3, func(_ *TCPEndpoint, m Message) { hit.Store(true) })
	start := time.Now()
	if err := eps[0].Send(Message{To: 1, Handler: 3, Arg: 1}); err != nil {
		t.Fatal(err)
	}
	eps[0].Flush()
	if err := eps[1].WaitFor(hit.Load); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < stall {
		t.Fatalf("frame arrived after %v, want >= %v", elapsed, stall)
	}
}

// TestMidFrameSeverSurvivable: an injected mid-frame sever retires
// exactly one peer link on a survivable mesh. The victim observes the
// unexpected-EOF cause through its peer-down handler, both sides fail
// fast with typed errors on further sends across the cut, and traffic
// to third ranks keeps flowing.
func TestMidFrameSeverSurvivable(t *testing.T) {
	plan := mustPlan(t, "sever:rank=0,peer=1,handler=3,op=1")
	type downEv struct {
		peer  int
		cause error
	}
	downs := make([]chan downEv, 3)
	eps := meshWith(t, 3, func(i int, ep *TCPEndpoint) {
		ep.SetFault(plan.ForRank(i))
		ch := make(chan downEv, 4)
		downs[i] = ch
		ep.SetPeerDownHandler(func(peer int, cause error) {
			ch <- downEv{peer, cause}
		})
	})
	// The send that fires the sever rule: header goes out, payload never
	// does, connection closes.
	err := eps[0].Send(Message{To: 1, Handler: 3, Payload: []byte("never arrives")})
	if !errors.Is(err, ErrPeerDown) {
		t.Fatalf("severing Send = %v, want ErrPeerDown", err)
	}
	// Rank 1 sees the mid-frame cut as peer loss from rank 0, delivered
	// through its peer-down handler while the endpoint survives.
	var ev downEv
	waitDown := func(rank int) downEv {
		t.Helper()
		var got downEv
		done := make(chan struct{})
		go func() {
			defer close(done)
			got = <-downs[rank]
		}()
		// Drive rank's dispatch loop until the handler ran.
		deadline := time.Now().Add(5 * time.Second)
		for {
			select {
			case <-done:
				return got
			default:
			}
			if time.Now().After(deadline) {
				t.Fatalf("rank %d never observed peer loss", rank)
			}
			eps[rank].Poll()
			time.Sleep(time.Millisecond)
		}
	}
	ev = waitDown(1)
	if ev.peer != 0 {
		t.Fatalf("rank 1 peer-down from %d, want 0", ev.peer)
	}
	if ev.cause == nil {
		t.Fatal("rank 1 peer-down cause missing")
	}
	// Both survivors keep full connectivity to rank 2.
	for _, from := range []int{0, 1} {
		var ok atomic.Bool
		eps[2].Register(7, func(_ *TCPEndpoint, m Message) { ok.Store(true) })
		if err := eps[from].Send(Message{To: 2, Handler: 7, Arg: 1}); err != nil {
			t.Fatalf("rank %d -> 2 after sever: %v", from, err)
		}
		eps[from].Flush()
		if err := eps[2].WaitFor(ok.Load); err != nil {
			t.Fatal(err)
		}
	}
	// Sends across the cut fail fast and typed, in both directions.
	if err := eps[0].Send(Message{To: 1, Handler: 3}); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("rank 0 -> 1 after sever = %v, want ErrPeerDown", err)
	}
	var pde *PeerDownError
	err = eps[1].Send(Message{To: 0, Handler: 3})
	if !errors.As(err, &pde) || pde.Peer != 0 {
		t.Fatalf("rank 1 -> 0 after sever = %v, want PeerDownError{Peer: 0}", err)
	}
	if !eps[1].PeerDown(0) || eps[1].Err() != nil {
		t.Fatal("rank 1 should have retired peer 0 without endpoint teardown")
	}
}

// TestMidFrameSeverLegacyTeardown pins the default (non-survivable)
// behavior under the same injected sever: whole-endpoint teardown with
// the cause surfaced, exactly as TestPeerLossUnblocksWaiters expects
// for organic peer loss.
func TestMidFrameSeverLegacyTeardown(t *testing.T) {
	plan := mustPlan(t, "sever:rank=0,peer=1,op=1")
	eps := meshWith(t, 2, func(i int, ep *TCPEndpoint) {
		ep.SetFault(plan.ForRank(i))
	})
	waitErr := make(chan error, 1)
	go func() {
		waitErr <- eps[1].WaitFor(func() bool { return false })
	}()
	if err := eps[0].Send(Message{To: 1, Handler: 3}); err == nil {
		t.Fatal("severing Send returned nil on a legacy endpoint")
	}
	err := <-waitErr
	if err == nil || errors.Is(err, ErrClosed) {
		t.Fatalf("rank 1 WaitFor = %v, want the peer-loss cause", err)
	}
	if eps[1].Err() == nil {
		t.Error("rank 1 Err() = nil after mid-frame sever")
	}
}

// TestSeverDuringHandshake: a connection cut partway through the hello
// frame must fail Connect cleanly (no hang, no misparse).
func TestSeverDuringHandshake(t *testing.T) {
	ep, err := ListenTCP(1, 2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	connErr := make(chan error, 1)
	go func() {
		// Rank 1 of 2 dials nobody and accepts rank 0's hello.
		connErr <- ep.Connect([]string{"", ep.Addr()})
	}()
	c, err := net.Dial("tcp", ep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// Half a hello frame, then the link dies.
	if _, err := c.Write(make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	c.Close()
	select {
	case err := <-connErr:
		if err == nil {
			t.Fatal("Connect succeeded through a severed handshake")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Connect hung on a severed handshake")
	}
}

// TestAbortLooksLikePeerLoss: Abort skips the goodbye, so survivable
// peers observe it as unannounced peer loss — the simulation seam the
// chaos harness uses for killed ranks.
func TestAbortLooksLikePeerLoss(t *testing.T) {
	downed := make(chan int, 4)
	eps := meshWith(t, 3, func(i int, ep *TCPEndpoint) {
		if i != 1 {
			ep.SetPeerDownHandler(func(peer int, cause error) { downed <- peer })
		}
	})
	eps[1].Abort()
	deadline := time.Now().Add(5 * time.Second)
	for {
		select {
		case p := <-downed:
			if p != 1 {
				t.Fatalf("peer-down for rank %d, want 1", p)
			}
			if eps[0].Err() != nil && eps[2].Err() != nil {
				t.Fatal("survivable endpoints tore down on Abort")
			}
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("no peer observed the aborted rank")
		}
		eps[0].Poll()
		eps[2].Poll()
		time.Sleep(time.Millisecond)
	}
}

// TestTickRunsWhileBlocked: an installed tick keeps firing while the
// endpoint sits in a blocking WaitFor — the progress guarantee the
// heartbeat layer is built on.
func TestTickRunsWhileBlocked(t *testing.T) {
	eps := meshWith(t, 2, nil)
	var ticks atomic.Int64
	eps[0].SetTick(5*time.Millisecond, func() { ticks.Add(1) })
	if err := eps[0].WaitFor(func() bool { return ticks.Load() >= 3 }); err != nil {
		t.Fatal(err)
	}
}
