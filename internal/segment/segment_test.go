package segment

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"unsafe"
)

func TestAllocAligned(t *testing.T) {
	s := New(1 << 16)
	for i := 0; i < 20; i++ {
		off, err := s.Alloc(uint64(1 + i*7))
		if err != nil {
			t.Fatal(err)
		}
		if off%Align != 0 {
			t.Fatalf("allocation %d at off %d not %d-aligned", i, off, Align)
		}
	}
}

func TestAllocFreeReuse(t *testing.T) {
	s := New(1 << 12)
	a, _ := s.Alloc(1024)
	b, _ := s.Alloc(1024)
	if a == b {
		t.Fatal("distinct allocations share an offset")
	}
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	c, err := s.Alloc(512)
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Errorf("first-fit should reuse freed block: got %d want %d", c, a)
	}
}

func TestOutOfMemory(t *testing.T) {
	s := New(1 << 10)
	if _, err := s.Alloc(2 << 10); err == nil {
		t.Fatal("expected out-of-memory error")
	}
	// Fill completely, then one more byte must fail.
	if _, err := s.Alloc(1 << 10); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc(1); err == nil {
		t.Fatal("expected out-of-memory after exhaustion")
	}
}

func TestDoubleFree(t *testing.T) {
	s := New(1 << 10)
	off, _ := s.Alloc(64)
	if err := s.Free(off); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(off); err == nil {
		t.Fatal("double free should error")
	}
	if err := s.Free(12345); err == nil {
		t.Fatal("free of random offset should error")
	}
}

func TestCoalescing(t *testing.T) {
	s := New(1 << 12)
	var offs []uint64
	for i := 0; i < 8; i++ {
		o, err := s.Alloc(256)
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, o)
	}
	// Free all in a scrambled order; the free list must coalesce back to
	// one block covering the whole segment.
	for _, i := range []int{3, 1, 7, 0, 5, 2, 6, 4} {
		if err := s.Free(offs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.FreeBlocks(); got != 1 {
		t.Fatalf("after freeing everything, free list has %d blocks, want 1", got)
	}
	if s.InUse() != 0 {
		t.Fatalf("InUse = %d after freeing everything", s.InUse())
	}
	// Whole capacity must be allocatable again.
	if _, err := s.Alloc(s.Capacity()); err != nil {
		t.Fatalf("cannot re-allocate full capacity: %v", err)
	}
}

func TestPeakTracksHighWater(t *testing.T) {
	s := New(1 << 12)
	a, _ := s.Alloc(1024)
	b, _ := s.Alloc(1024)
	s.Free(a)
	s.Free(b)
	if s.Peak() != 2048 {
		t.Errorf("Peak = %d, want 2048", s.Peak())
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	s := New(1 << 12)
	off, _ := s.Alloc(64)
	in := []byte("hello, global address space!")
	s.Write(off, in)
	out := make([]byte, len(in))
	s.Read(off, out)
	if string(out) != string(in) {
		t.Fatalf("round trip: got %q want %q", out, in)
	}
}

func TestTypedAccess(t *testing.T) {
	type vec struct{ X, Y, Z float64 }
	s := New(1 << 12)
	off, _ := s.Alloc(uint64(unsafe.Sizeof(vec{})) * 4)
	vs := Slice[vec](s, off, 4)
	vs[2] = vec{1, 2, 3}
	if p := At[vec](s, off+2*uint64(unsafe.Sizeof(vec{}))); *p != (vec{1, 2, 3}) {
		t.Fatalf("typed views disagree: %+v", *p)
	}
}

// TestAllocatorPropertyNoOverlap drives random alloc/free sequences and
// checks the fundamental allocator invariants: live allocations never
// overlap, never exceed capacity, and InUse accounting is exact.
func TestAllocatorPropertyNoOverlap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(1 << 14)
		type allocation struct{ off, size uint64 }
		var live []allocation
		var accounted uint64
		for step := 0; step < 200; step++ {
			if len(live) == 0 || rng.Intn(2) == 0 {
				size := uint64(1 + rng.Intn(1000))
				off, err := s.Alloc(size)
				if err != nil {
					continue // segment full; acceptable
				}
				rounded := (size + Align - 1) &^ uint64(Align-1)
				// No overlap with any live allocation.
				for _, a := range live {
					if off < a.off+a.size && a.off < off+rounded {
						return false
					}
				}
				if off+rounded > s.Capacity() {
					return false
				}
				live = append(live, allocation{off, rounded})
				accounted += rounded
			} else {
				i := rng.Intn(len(live))
				if err := s.Free(live[i].off); err != nil {
					return false
				}
				accounted -= live[i].size
				live = append(live[:i], live[i+1:]...)
			}
			if s.InUse() != accounted {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCheckPOD(t *testing.T) {
	type ok1 struct {
		A int64
		B [3]float64
		C struct{ X, Y uint8 }
	}
	type bad1 struct{ P *int }
	type bad2 struct{ S []byte }
	type bad3 struct{ M map[string]int }
	type bad4 struct{ Str string }
	goods := []reflect.Type{
		reflect.TypeOf(int64(0)),
		reflect.TypeOf(3.14),
		reflect.TypeOf([4]uint64{}),
		reflect.TypeOf(ok1{}),
		reflect.TypeOf(complex128(0)),
	}
	for _, g := range goods {
		if err := CheckPOD(g); err != nil {
			t.Errorf("CheckPOD(%v) = %v, want nil", g, err)
		}
	}
	bads := []reflect.Type{
		reflect.TypeOf(bad1{}),
		reflect.TypeOf(bad2{}),
		reflect.TypeOf(bad3{}),
		reflect.TypeOf(bad4{}),
		reflect.TypeOf(&ok1{}),
		reflect.TypeOf("s"),
		reflect.TypeOf([]int{}),
		reflect.TypeOf(make(chan int)),
	}
	for _, b := range bads {
		if err := CheckPOD(b); err == nil {
			t.Errorf("CheckPOD(%v) = nil, want error", b)
		}
	}
	// Cached second lookup must agree.
	if err := CheckPOD(reflect.TypeOf(bad1{})); err == nil {
		t.Error("cached CheckPOD lost the error")
	}
	if err := CheckPOD(reflect.TypeOf(ok1{})); err != nil {
		t.Error("cached CheckPOD invented an error")
	}
}

func TestConcurrentReadWrite(t *testing.T) {
	// Remote-access data path: concurrent readers/writers on disjoint
	// allocations must not corrupt each other.
	s := New(1 << 16)
	const n = 8
	offs := make([]uint64, n)
	for i := range offs {
		offs[i], _ = s.Alloc(64)
	}
	done := make(chan bool)
	for i := 0; i < n; i++ {
		go func(i int) {
			pat := byte(i + 1)
			buf := make([]byte, 64)
			for j := range buf {
				buf[j] = pat
			}
			for iter := 0; iter < 100; iter++ {
				s.Write(offs[i], buf)
				out := make([]byte, 64)
				s.Read(offs[i], out)
				for _, b := range out {
					if b != pat {
						t.Errorf("rank %d read corrupted byte %d", i, b)
						done <- false
						return
					}
				}
			}
			done <- true
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}
