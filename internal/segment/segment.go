// Package segment implements the registered-memory substrate of upcxx-go.
//
// Real UPC++ runs over GASNet, which registers one contiguous memory
// segment per process with the NIC so remote ranks can read and write it
// with one-sided RDMA. This package is the analog: every rank owns one
// fixed-size Segment backed by a []byte that never reallocates (so raw
// pointers into it remain stable, just as RDMA registration pins pages),
// plus a first-fit free-list allocator with coalescing that backs
// upcxx.Allocate / shared_array storage.
//
// Element types stored in segments must be pointer-free (no Go pointers,
// maps, slices, strings, channels, interfaces or funcs): the garbage
// collector does not scan segment bytes, exactly as a real PGAS segment is
// opaque to the host language runtime. The core package enforces this with
// a one-time reflective check per allocation type.
package segment

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Align is the alignment of every allocation, sufficient for any
// pointer-free scalar or struct the library stores.
const Align = 16

// ErrOutOfMemory is returned when a segment cannot satisfy an allocation.
var ErrOutOfMemory = errors.New("segment: out of shared memory")

// ErrBadFree is returned when freeing an offset that is not the base of a
// live allocation.
var ErrBadFree = errors.New("segment: free of unallocated offset")

type block struct {
	off  uint64
	size uint64
}

// Segment is one rank's registered shared-memory region. All methods are
// safe for concurrent use: remote ranks access segments directly (the RDMA
// analog), serialized by the segment lock.
type Segment struct {
	mu    sync.Mutex
	buf   []byte
	free  []block           // sorted by offset, coalesced
	live  map[uint64]uint64 // allocation base -> size
	inUse uint64
	peak  uint64
}

// New creates a segment of the given capacity in bytes (rounded up to
// Align).
func New(capacity int) *Segment {
	if capacity < Align {
		capacity = Align
	}
	c := (uint64(capacity) + Align - 1) &^ uint64(Align-1)
	return &Segment{
		buf:  make([]byte, c),
		free: []block{{0, c}},
		live: make(map[uint64]uint64),
	}
}

// NewExtern wraps an externally provided buffer — typically a window of
// an mmap'd shared file, so co-located processes address each other's
// segments with plain loads and stores — as a Segment. The usable
// capacity is len(buf) rounded down to Align; buf must stay mapped for
// the segment's lifetime and must be 8-byte aligned (mmap regions are
// page-aligned).
func NewExtern(buf []byte) *Segment {
	c := uint64(len(buf)) &^ uint64(Align-1)
	if c < Align {
		panic(fmt.Sprintf("segment: NewExtern buffer of %d bytes is smaller than one %d-byte block", len(buf), Align))
	}
	return &Segment{
		buf:  buf[:c:c],
		free: []block{{0, c}},
		live: make(map[uint64]uint64),
	}
}

// Capacity returns the total segment size in bytes.
func (s *Segment) Capacity() uint64 { return uint64(len(s.buf)) }

// InUse returns the number of bytes currently allocated.
func (s *Segment) InUse() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inUse
}

// Peak returns the high-water mark of allocated bytes.
func (s *Segment) Peak() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peak
}

// Alloc reserves size bytes and returns the segment offset of the
// allocation. First-fit over an offset-sorted, coalesced free list.
func (s *Segment) Alloc(size uint64) (uint64, error) {
	if size == 0 {
		size = Align
	}
	size = (size + Align - 1) &^ uint64(Align-1)
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.free {
		b := &s.free[i]
		if b.size < size {
			continue
		}
		off := b.off
		b.off += size
		b.size -= size
		if b.size == 0 {
			s.free = append(s.free[:i], s.free[i+1:]...)
		}
		s.live[off] = size
		s.inUse += size
		if s.inUse > s.peak {
			s.peak = s.inUse
		}
		return off, nil
	}
	return 0, fmt.Errorf("%w: need %d, %d of %d free", ErrOutOfMemory, size, uint64(len(s.buf))-s.inUse, len(s.buf))
}

// Free releases an allocation previously returned by Alloc, coalescing
// with adjacent free blocks.
func (s *Segment) Free(off uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	size, ok := s.live[off]
	if !ok {
		return fmt.Errorf("%w: offset %d", ErrBadFree, off)
	}
	delete(s.live, off)
	s.inUse -= size

	i := sort.Search(len(s.free), func(i int) bool { return s.free[i].off >= off })
	s.free = append(s.free, block{})
	copy(s.free[i+1:], s.free[i:])
	s.free[i] = block{off, size}

	// Coalesce with successor, then predecessor.
	if i+1 < len(s.free) && s.free[i].off+s.free[i].size == s.free[i+1].off {
		s.free[i].size += s.free[i+1].size
		s.free = append(s.free[:i+1], s.free[i+2:]...)
	}
	if i > 0 && s.free[i-1].off+s.free[i-1].size == s.free[i].off {
		s.free[i-1].size += s.free[i].size
		s.free = append(s.free[:i], s.free[i+1:]...)
	}
	return nil
}

// FreeBlocks returns the number of blocks on the free list (for tests of
// coalescing behaviour).
func (s *Segment) FreeBlocks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.free)
}

// Read copies len(p) bytes starting at off into p under the segment lock.
// This is the remote-get data path.
func (s *Segment) Read(off uint64, p []byte) {
	s.mu.Lock()
	copy(p, s.buf[off:])
	s.mu.Unlock()
}

// Write copies p into the segment at off under the segment lock. This is
// the remote-put data path.
func (s *Segment) Write(off uint64, p []byte) {
	s.mu.Lock()
	copy(s.buf[off:], p)
	s.mu.Unlock()
}

// Xor64 atomically xors val into the 8 bytes at off and returns the new
// value. This is the one fixed-function remote atomic the wire protocol
// carries (HPCC Random Access's update op); richer read-modify-writes
// remain closure-based and in-process-only. A CAS loop rather than the
// segment lock: on shared-memory (NewExtern) segments the peer process
// updating the same word holds a different Segment object, so the only
// mutual exclusion both sides share is the memory word itself. Align
// guarantees allocation bases are 8-byte aligned; callers must keep
// uint64 fields aligned within their structs (Go's layout does).
func (s *Segment) Xor64(off, val uint64) uint64 {
	if off >= uint64(len(s.buf)) || uint64(len(s.buf))-off < 8 {
		panic(fmt.Sprintf("segment: Xor64 at offset %d overruns %d-byte segment", off, len(s.buf)))
	}
	p := (*uint64)(unsafe.Pointer(&s.buf[off]))
	for {
		old := atomic.LoadUint64(p)
		if atomic.CompareAndSwapUint64(p, old, old^val) {
			return old ^ val
		}
	}
}

// Lock acquires the segment lock for a multi-word read-modify-write (the
// network-atomic analog). The caller must call Unlock.
func (s *Segment) Lock() { s.mu.Lock() }

// Unlock releases the segment lock.
func (s *Segment) Unlock() { s.mu.Unlock() }

// Base returns the address of the first segment byte. Offsets returned by
// Alloc are stable relative to Base for the segment's lifetime.
func (s *Segment) Base() unsafe.Pointer { return unsafe.Pointer(&s.buf[0]) }

// Bytes returns the n bytes at off without locking; callers on the owning
// rank use it for local access, remote callers must hold Lock.
func (s *Segment) Bytes(off, n uint64) []byte { return s.buf[off : off+n : off+n] }

// At returns a typed pointer to the segment bytes at off. The caller is
// responsible for ensuring off was allocated with space for T and that T
// is pointer-free.
func At[T any](s *Segment, off uint64) *T {
	return (*T)(unsafe.Pointer(&s.buf[off]))
}

// Slice returns a []T view of n elements starting at off. Same caveats as
// At.
func Slice[T any](s *Segment, off uint64, n int) []T {
	return unsafe.Slice((*T)(unsafe.Pointer(&s.buf[off])), n)
}
