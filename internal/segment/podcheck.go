package segment

import (
	"fmt"
	"reflect"
	"sync"
)

var podCache sync.Map // reflect.Type -> error (nil entry means OK)

// CheckPOD reports whether t may be stored in a shared segment: it must
// contain no Go pointers, since segment bytes are invisible to the garbage
// collector (the same restriction a registered RDMA segment imposes on the
// host language). The result is cached per type.
func CheckPOD(t reflect.Type) error {
	if v, ok := podCache.Load(t); ok {
		if v == nil {
			return nil
		}
		return v.(error)
	}
	err := checkPOD(t, nil)
	if err == nil {
		podCache.Store(t, nil)
	} else {
		podCache.Store(t, err)
	}
	return err
}

func checkPOD(t reflect.Type, path []string) error {
	bad := func(why string) error {
		loc := t.String()
		if len(path) > 0 {
			loc = fmt.Sprintf("%s (at %v)", loc, path)
		}
		return fmt.Errorf("segment: type %s is not pointer-free: %s", loc, why)
	}
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128:
		return nil
	case reflect.Array:
		return checkPOD(t.Elem(), append(path, "[]"))
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if err := checkPOD(f.Type, append(path, f.Name)); err != nil {
				return err
			}
		}
		return nil
	case reflect.Ptr, reflect.UnsafePointer:
		return bad("contains a pointer")
	case reflect.Slice:
		return bad("contains a slice header")
	case reflect.String:
		return bad("contains a string header")
	case reflect.Map, reflect.Chan, reflect.Func, reflect.Interface:
		return bad("contains a " + t.Kind().String())
	default:
		return bad("unsupported kind " + t.Kind().String())
	}
}
