// Package mpi is the two-sided message-passing baseline of the
// evaluation: non-blocking sends and receives with tag matching
// (MPI_Isend / MPI_Irecv / MPI_Waitall), eager and rendezvous protocols,
// and the collectives the benchmarks need. The paper's LULESH study (Fig
// 8) compares its MPI version — which uses exactly these primitives for
// the 26-neighbor ghost exchange — against the one-sided UPC++ port.
//
// The layer runs over the same gasnet substrate and machine model as
// UPC++; only the protocol differs. Two-sided matching adds a per-message
// software cost (sim.SW.TwoSidedNs), an extra copy when a message arrives
// before its receive is posted (the unexpected queue), and a rendezvous
// round trip above the eager threshold. Those are the mechanisms behind
// the ~10% one-sided advantage the paper reports at 32K ranks.
package mpi

import (
	"fmt"
	"unsafe"

	"upcxx/internal/core"
)

// AnySource matches a receive against any sending rank.
const AnySource = -1

// AnyTag matches a receive against any tag.
const AnyTag = -1

// Request tracks one non-blocking operation. All fields are owned by the
// requesting rank's goroutine.
type Request struct {
	done       bool
	completeAt float64 // virtual completion time
	recvBuf    []byte  // destination of a pending receive
	n          int     // bytes transferred
	src, tag   int     // match signature (receives)
}

// Test reports whether the operation has completed, polling progress.
func (r *Request) Test(me *core.Rank) bool {
	me.Advance()
	return r.done
}

type pendingRecv struct {
	src, tag int
	buf      []byte
	req      *Request
}

type unexpected struct {
	src, tag   int
	data       []byte
	arrival    float64
	rendezvous bool
	sender     int
	sendReq    *Request
	parked     bool // arrived before the receive was posted (extra copy)
}

// Comm is one rank's communicator. Construction is collective; matching
// state is only ever touched by the owning rank's goroutine (posted
// receives locally, incoming sends inside AM handlers), so no locking is
// required — the same single-threaded-progress discipline MPI
// implementations use.
type Comm struct {
	me    *core.Rank
	all   []*Comm
	recvs []*pendingRecv
	unexp []*unexpected
}

// New collectively creates the job's communicators.
func New(me *core.Rank) *Comm {
	c := &Comm{me: me}
	c.all = core.TeamAllGather(me.World(), c)
	me.Barrier()
	return c
}

// Rank returns the caller's rank.
func (c *Comm) Rank() int { return c.me.ID() }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.me.Ranks() }

// Barrier is MPI_Barrier.
func (c *Comm) Barrier() { c.me.Barrier() }

// Isend starts a non-blocking send of data to the given rank and tag.
// The payload is captured by reference; the caller must not modify it
// until the request completes (MPI semantics).
func (c *Comm) Isend(to, tag int, data []byte) *Request {
	me := c.me
	mo := me.Model()
	req := &Request{n: len(data)}
	me.Lapse(mo.TwoSidedMatchCost())

	rendezvous := len(data) > mo.EagerThreshold()
	var shipped []byte
	if rendezvous {
		shipped = data // handed over when matched; no eager copy
	} else {
		// Eager: the payload is buffered and the sender completes
		// locally as soon as injection finishes.
		shipped = make([]byte, len(data))
		copy(shipped, data)
	}

	headerBytes := 32
	wireBytes := headerBytes
	if !rendezvous {
		wireBytes += len(data)
	}
	sendTime := me.Now()
	if !rendezvous {
		req.done = true
		req.completeAt = sendTime + mo.NBInitCost()
	}

	from := me.ID()
	me.AM(to, wireBytes, func(tgt *core.Rank) {
		tc := c.all[tgt.ID()]
		tc.arrived(tgt, &unexpected{
			src:        from,
			tag:        tag,
			data:       shipped,
			arrival:    tgt.Now(),
			rendezvous: rendezvous,
			sender:     from,
			sendReq:    req,
		})
	})
	return req
}

// arrived handles an incoming send at the target: match a posted receive
// or queue as unexpected.
func (c *Comm) arrived(tgt *core.Rank, u *unexpected) {
	for i, pr := range c.recvs {
		if matches(pr.src, pr.tag, u.src, u.tag) {
			c.recvs = append(c.recvs[:i], c.recvs[i+1:]...)
			c.complete(tgt, pr, u)
			return
		}
	}
	if !u.rendezvous {
		// The eager unexpected copy: payload parked in a temp buffer
		// until the receive is posted (the cost one-sided transfers
		// avoid).
		parked := make([]byte, len(u.data))
		copy(parked, u.data)
		u.data = parked
		tgt.MemWork(float64(len(parked)))
	}
	u.parked = true
	c.unexp = append(c.unexp, u)
}

// complete finishes a matched transfer at the receiver and notifies the
// sender if it is still waiting (rendezvous).
func (c *Comm) complete(tgt *core.Rank, pr *pendingRecv, u *unexpected) {
	mo := tgt.Model()
	n := copy(pr.buf, u.data)
	matchTime := tgt.Now()
	if u.arrival > matchTime {
		matchTime = u.arrival
	}
	// A receive posted in time lands directly in the user buffer (no
	// extra copy); only parked unexpected payloads pay the copy-out.
	copyCost := 0.0
	if u.parked {
		copyCost = mo.MemCost(float64(n))
	}
	var completion float64
	if u.rendezvous {
		// RTS already arrived; CTS round trip plus the bulk transfer.
		l := mo.Lat(u.sender, tgt.ID())
		completion = matchTime + 2*l + mo.WireNs(n) + mo.TwoSidedMatchCost() + copyCost
		// Sender completes when the bulk transfer drains.
		sreq := u.sendReq
		tgt.AMAt(u.sender, completion, 0, func(*core.Rank) {
			sreq.done = true
			sreq.completeAt = completion
		})
	} else {
		completion = matchTime + mo.TwoSidedMatchCost() + copyCost
	}
	pr.req.done = true
	pr.req.completeAt = completion
	pr.req.n = n
	// complete always runs on the receiver's goroutine (either inside
	// Irecv or inside the arrived() handler the receiver polled), so a
	// blocked Wait rechecks its predicate as soon as this returns; the
	// completion *time* is applied by Wait's AdvanceTo, preserving
	// overlap between posting and completion.
}

// Irecv posts a non-blocking receive into buf from the given source rank
// (or AnySource) and tag (or AnyTag).
func (c *Comm) Irecv(from, tag int, buf []byte) *Request {
	me := c.me
	me.Lapse(me.Model().TwoSidedMatchCost())
	req := &Request{recvBuf: buf, src: from, tag: tag}
	pr := &pendingRecv{src: from, tag: tag, buf: buf, req: req}
	// Match against the unexpected queue first (FIFO per signature).
	for i, u := range c.unexp {
		if matches(from, tag, u.src, u.tag) {
			c.unexp = append(c.unexp[:i], c.unexp[i+1:]...)
			c.complete(me, pr, u)
			return req
		}
	}
	c.recvs = append(c.recvs, pr)
	return req
}

func matches(wantSrc, wantTag, src, tag int) bool {
	return (wantSrc == AnySource || wantSrc == src) && (wantTag == AnyTag || wantTag == tag)
}

// Wait blocks until every request completes (MPI_Waitall), advancing the
// virtual clock to the latest completion.
func (c *Comm) Wait(reqs ...*Request) {
	me := c.me
	me.WaitUntil(func() bool {
		for _, r := range reqs {
			if !r.done {
				return false
			}
		}
		return true
	})
	maxT := 0.0
	for _, r := range reqs {
		if r.completeAt > maxT {
			maxT = r.completeAt
		}
	}
	me.AdvanceTo(maxT)
}

// Send is a blocking typed send (MPI_Send).
func Send[T any](c *Comm, to, tag int, data []T) {
	c.Wait(Isend(c, to, tag, data))
}

// Recv is a blocking typed receive (MPI_Recv).
func Recv[T any](c *Comm, from, tag int, buf []T) {
	c.Wait(Irecv(c, from, tag, buf))
}

// Isend is the typed non-blocking send.
func Isend[T any](c *Comm, to, tag int, data []T) *Request {
	return c.Isend(to, tag, bytesOf(data))
}

// Irecv is the typed non-blocking receive.
func Irecv[T any](c *Comm, from, tag int, buf []T) *Request {
	return c.Irecv(from, tag, bytesOf(buf))
}

// bytesOf views a POD slice as bytes (both directions share memory).
func bytesOf[T any](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	var t T
	sz := int(unsafe.Sizeof(t))
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*sz)
}

// Allreduce combines one float64 per rank with op on every rank.
func (c *Comm) Allreduce(v float64, op func(a, b float64) float64) float64 {
	return core.TeamReduce(c.me.World(), v, op)
}

// AllreduceI combines one int64 per rank.
func (c *Comm) AllreduceI(v int64, op func(a, b int64) int64) int64 {
	return core.TeamReduce(c.me.World(), v, op)
}

// Allgather collects one int64 per rank (shared read-only result).
func (c *Comm) Allgather(v int64) []int64 {
	return core.TeamAllGather(c.me.World(), v)
}

func (c *Comm) String() string {
	return fmt.Sprintf("mpi.Comm(rank %d of %d)", c.me.ID(), c.me.Ranks())
}
