package mpi

import (
	"testing"

	"upcxx/internal/core"
	"upcxx/internal/sim"
)

func mpiCfg(ranks int) core.Config {
	return core.Config{Ranks: ranks, Machine: sim.Local, SW: sim.SWMPI, Virtual: true}
}

func TestSendRecvBasic(t *testing.T) {
	core.Run(mpiCfg(2), func(me *core.Rank) {
		c := New(me)
		if me.ID() == 0 {
			Send(c, 1, 7, []int64{10, 20, 30})
		} else {
			buf := make([]int64, 3)
			Recv(c, 0, 7, buf)
			if buf[0] != 10 || buf[2] != 30 {
				t.Errorf("recv got %v", buf)
			}
		}
		c.Barrier()
	})
}

func TestUnexpectedMessageQueue(t *testing.T) {
	// Send arrives before the receive is posted.
	core.Run(mpiCfg(2), func(me *core.Rank) {
		c := New(me)
		if me.ID() == 0 {
			Send(c, 1, 1, []int32{42})
			c.Barrier() // ensure delivery before rank 1 posts
		} else {
			c.Barrier()
			buf := make([]int32, 1)
			Recv(c, 0, 1, buf)
			if buf[0] != 42 {
				t.Errorf("unexpected-queue recv got %d", buf[0])
			}
		}
		c.Barrier()
	})
}

func TestTagMatching(t *testing.T) {
	core.Run(mpiCfg(2), func(me *core.Rank) {
		c := New(me)
		if me.ID() == 0 {
			Send(c, 1, 5, []int32{5})
			Send(c, 1, 6, []int32{6})
		} else {
			a, b := make([]int32, 1), make([]int32, 1)
			// Post in reverse tag order: matching must respect tags.
			r6 := Irecv(c, 0, 6, b)
			r5 := Irecv(c, 0, 5, a)
			c.Wait(r5, r6)
			if a[0] != 5 || b[0] != 6 {
				t.Errorf("tag matching: got %d,%d", a[0], b[0])
			}
		}
		c.Barrier()
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	core.Run(mpiCfg(3), func(me *core.Rank) {
		c := New(me)
		if me.ID() != 0 {
			Send(c, 0, me.ID()*10, []int32{int32(me.ID())})
		} else {
			got := map[int32]bool{}
			for i := 0; i < 2; i++ {
				buf := make([]int32, 1)
				Recv(c, AnySource, AnyTag, buf)
				got[buf[0]] = true
			}
			if !got[1] || !got[2] {
				t.Errorf("wildcard recv missed senders: %v", got)
			}
		}
		c.Barrier()
	})
}

func TestNonOvertaking(t *testing.T) {
	// Same signature messages must be received in send order.
	core.Run(mpiCfg(2), func(me *core.Rank) {
		c := New(me)
		if me.ID() == 0 {
			for i := int32(0); i < 10; i++ {
				Send(c, 1, 3, []int32{i})
			}
		} else {
			for i := int32(0); i < 10; i++ {
				buf := make([]int32, 1)
				Recv(c, 0, 3, buf)
				if buf[0] != i {
					t.Errorf("message %d overtaken by %d", i, buf[0])
				}
			}
		}
		c.Barrier()
	})
}

func TestRendezvousLargeMessage(t *testing.T) {
	// Above the eager threshold the protocol switches to rendezvous; the
	// payload must still arrive intact and the sender must complete.
	core.Run(mpiCfg(2), func(me *core.Rank) {
		c := New(me)
		n := sim.Local.EagerBytes + 4096
		if me.ID() == 0 {
			data := make([]byte, n)
			for i := range data {
				data[i] = byte(i * 7)
			}
			req := c.Isend(1, 9, data)
			c.Wait(req)
			if !req.done {
				t.Error("rendezvous sender never completed")
			}
		} else {
			buf := make([]byte, n)
			c.Wait(c.Irecv(0, 9, buf))
			for i := 0; i < n; i += 997 {
				if buf[i] != byte(i*7) {
					t.Errorf("rendezvous payload corrupt at %d", i)
				}
			}
		}
		c.Barrier()
	})
}

func TestRendezvousCostsMoreThanEager(t *testing.T) {
	run := func(n int) float64 {
		st := core.Run(mpiCfg(2), func(me *core.Rank) {
			c := New(me)
			if me.ID() == 0 {
				c.Wait(c.Isend(1, 1, make([]byte, n)))
			} else {
				c.Wait(c.Irecv(0, 1, make([]byte, n)))
			}
		})
		return st.VirtualNs
	}
	eager := run(sim.Local.EagerBytes - 64)
	rdvz := run(sim.Local.EagerBytes + 64)
	if rdvz <= eager {
		t.Errorf("rendezvous (%v ns) should cost more than eager (%v ns) at the threshold", rdvz, eager)
	}
}

func TestHaloExchangePattern(t *testing.T) {
	// The LULESH pattern in miniature: every rank exchanges with both
	// neighbors using Isend/Irecv/Waitall.
	core.Run(mpiCfg(4), func(me *core.Rank) {
		c := New(me)
		p := me.Ranks()
		left, right := (me.ID()+p-1)%p, (me.ID()+1)%p
		out := []int64{int64(me.ID())}
		inL, inR := make([]int64, 1), make([]int64, 1)
		reqs := []*Request{
			Irecv(c, left, 0, inL),
			Irecv(c, right, 1, inR),
			Isend(c, right, 0, out),
			Isend(c, left, 1, out),
		}
		c.Wait(reqs...)
		if inL[0] != int64(left) || inR[0] != int64(right) {
			t.Errorf("halo exchange: got %d,%d want %d,%d", inL[0], inR[0], left, right)
		}
		c.Barrier()
	})
}

func TestCollectives(t *testing.T) {
	core.Run(mpiCfg(4), func(me *core.Rank) {
		c := New(me)
		sum := c.Allreduce(float64(me.ID()+1), func(a, b float64) float64 { return a + b })
		if sum != 10 {
			t.Errorf("Allreduce = %v, want 10", sum)
		}
		mx := c.AllreduceI(int64(me.ID()), func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		})
		if mx != 3 {
			t.Errorf("AllreduceI max = %d", mx)
		}
		all := c.Allgather(int64(me.ID() * 2))
		for i, v := range all {
			if v != int64(i*2) {
				t.Errorf("Allgather[%d] = %d", i, v)
			}
		}
	})
}

func TestMPIMatchingCostCharged(t *testing.T) {
	// The same byte exchange must cost more virtual time under MPI's
	// two-sided profile than under one-sided UPC++ puts — the Fig 8
	// driver.
	mpiTime := core.Run(mpiCfg(2), func(me *core.Rank) {
		c := New(me)
		for i := 0; i < 50; i++ {
			if me.ID() == 0 {
				c.Wait(c.Isend(1, 0, make([]byte, 1024)))
			} else {
				c.Wait(c.Irecv(0, 0, make([]byte, 1024)))
			}
		}
	}).VirtualNs
	oneSided := core.Run(core.Config{Ranks: 2, Machine: sim.Local, SW: sim.SWUPCXX, Virtual: true},
		func(me *core.Rank) {
			buf := core.Allocate[byte](me, me.ID(), 1024)
			all := core.AllGather(me, buf)
			if me.ID() == 0 {
				for i := 0; i < 50; i++ {
					core.AsyncCopy(me, buf, all[1], 1024, nil)
					core.AsyncCopyFence(me)
				}
			}
		}).VirtualNs
	if mpiTime <= oneSided {
		t.Errorf("two-sided %v ns should exceed one-sided %v ns", mpiTime, oneSided)
	}
}
