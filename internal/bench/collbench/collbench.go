// Package collbench measures the collective algorithms on real
// transports: barrier and small-payload allgather latency, flat vs
// hierarchical. The flat baseline is the wire conduit's original
// linear collective (every rank ships its contribution to rank 0,
// which serializes the full table back out); the hierarchical conduit
// replaces it with a two-level scheme — shm gather within a host,
// binomial tree + dissemination rounds among per-host leaders — so the
// comparison quantifies both effects separately:
//
//   - ppn=1: every rank is its own host, so the shm plane is idle and
//     the delta is purely tree/dissemination vs linear over TCP;
//   - ppn=n: one host, so the wire is idle and the delta is the PSHM
//     bypass itself.
//
// Like dhtbench, this is wall-clock (the quantity under test is real
// protocol latency, not model output), so results are best-of-Repeats
// and the harness gates them with a wide tolerance.
package collbench

import (
	"fmt"
	"sync"
	"time"

	"upcxx/internal/core"
	"upcxx/internal/spmd"
)

// Params configures a run.
type Params struct {
	Ranks int
	// PPN is ranks-per-virtual-host for the hierarchical flavor;
	// ignored when Hier is false.
	PPN int
	// Hier selects the two-level conduit; false runs the flat TCP wire.
	Hier bool
	// Iters is the number of timed barriers (and allgathers; default
	// 64).
	Iters int
	// Repeats re-runs the whole job, keeping the fastest (default 3).
	Repeats int
}

// Result reports one configuration's latencies.
type Result struct {
	Ranks, PPN    int
	BarrierUsec   float64 // wall microseconds per barrier (max over ranks)
	AllGatherUsec float64 // wall microseconds per 8-byte allgather
	WireFrames    float64 // total frames across ranks, whole timed phase
	Checksum      uint64  // allgather verification fold
}

// Counters reports the metrics as named counters for the harness.
func (r Result) Counters() map[string]float64 {
	return map[string]float64{
		"barrier_usec":   r.BarrierUsec,
		"allgather_usec": r.AllGatherUsec,
		"wire_tx_frames": r.WireFrames,
	}
}

// Run executes the benchmark, keeping the fastest repeat.
func Run(p Params) Result {
	repeats := p.Repeats
	if repeats <= 0 {
		repeats = 3
	}
	var best Result
	for rep := 0; rep < repeats; rep++ {
		r := runOnce(p)
		if rep == 0 || r.BarrierUsec < best.BarrierUsec {
			best = r
		}
	}
	return best
}

func runOnce(p Params) Result {
	iters := p.Iters
	if iters <= 0 {
		iters = 64
	}
	ppn := p.PPN
	if !p.Hier {
		ppn = 1
	}

	var (
		mu        sync.Mutex
		barrierNs time.Duration
		gatherNs  time.Duration
		checksum  uint64
		wantedSum uint64
	)
	body := func(me *core.Rank) {
		w := me.World()
		w.Barrier() // warm the conduit (connections, first-collective setup)

		t0 := time.Now()
		for i := 0; i < iters; i++ {
			w.Barrier()
		}
		dt := time.Since(t0)

		var sum uint64
		t1 := time.Now()
		for i := 0; i < iters; i++ {
			vals := core.TeamAllGather(w, uint64(me.ID())+uint64(i)<<20)
			sum ^= vals[i%len(vals)]
		}
		dg := time.Since(t1)
		w.Barrier()

		mu.Lock()
		if dt > barrierNs {
			barrierNs = dt
		}
		if dg > gatherNs {
			gatherNs = dg
		}
		if me.ID() == 0 {
			checksum = sum
			// The fold every rank must have computed: vals[i%n] is rank
			// (i mod n)'s contribution in world order.
			for i := 0; i < iters; i++ {
				wantedSum ^= uint64(i%me.Ranks()) + uint64(i)<<20
			}
		}
		mu.Unlock()
	}

	const segBytes = 1 << 17
	var stats []core.Stats
	var err error
	if p.Hier {
		stats, err = spmd.RunHierLocal(p.Ranks, ppn, segBytes, core.Config{}, body)
	} else {
		stats, err = spmd.RunWireLocal(p.Ranks, segBytes, core.Config{}, body)
	}
	if err != nil {
		panic(fmt.Sprintf("collbench: %v", err))
	}
	if checksum != wantedSum {
		panic(fmt.Sprintf("collbench: allgather fold %016x, want %016x (ranks=%d hier=%v ppn=%d)",
			checksum, wantedSum, p.Ranks, p.Hier, ppn))
	}

	r := Result{
		Ranks:         p.Ranks,
		PPN:           ppn,
		BarrierUsec:   barrierNs.Seconds() * 1e6 / float64(iters),
		AllGatherUsec: gatherNs.Seconds() * 1e6 / float64(iters),
		Checksum:      checksum,
	}
	for _, st := range stats {
		r.WireFrames += st.Counters["wire_tx_frames"]
	}
	return r
}
