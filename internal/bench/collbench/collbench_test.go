package collbench

import "testing"

// TestFlavorsVerify runs every flavor at a small shape; the internal
// allgather fold panics on any correctness failure.
func TestFlavorsVerify(t *testing.T) {
	for _, p := range []Params{
		{Ranks: 2, Hier: false},
		{Ranks: 2, Hier: true, PPN: 1},
		{Ranks: 4, Hier: true, PPN: 2},
		{Ranks: 4, Hier: true, PPN: 4},
	} {
		r := Run(Params{Ranks: p.Ranks, PPN: p.PPN, Hier: p.Hier, Iters: 8, Repeats: 1})
		if r.BarrierUsec <= 0 || r.AllGatherUsec <= 0 {
			t.Errorf("%+v: degenerate latencies: %+v", p, r)
		}
	}
}

// TestHierBeatsFlatBarrier is the headline acceptance claim: at 8
// ranks, the hierarchical barrier — shm arrive/release within a host,
// dissemination rounds among leaders — completes faster than the flat
// wire barrier (linear gather through rank 0). Co-locating all 8 ranks
// makes the comparison shm rings vs TCP round-trips, which holds by a
// wide margin on any machine; best-of-repeats suppresses scheduler
// noise. (The ppn=1 tree-vs-linear margin is real but thinner, so it
// is reported by the harness experiment rather than asserted here.)
func TestHierBeatsFlatBarrier(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock comparison; skipped in -short")
	}
	const n = 8
	flat := Run(Params{Ranks: n, Iters: 48, Repeats: 5})
	hier := Run(Params{Ranks: n, Hier: true, PPN: n, Iters: 48, Repeats: 5})
	t.Logf("flat barrier %.1fus, hier(ppn=%d) barrier %.1fus", flat.BarrierUsec, n, hier.BarrierUsec)
	if hier.BarrierUsec >= flat.BarrierUsec {
		t.Errorf("hierarchical barrier (%.1fus) not faster than flat (%.1fus) at %d co-located ranks",
			hier.BarrierUsec, flat.BarrierUsec, n)
	}
}
