package dhtbench

import "testing"

// TestAggregationWins is the ISSUE's acceptance criterion at the
// benchmark level: on the same workload, the aggregated insert phase
// must cost at least 4x fewer wire frames than the unaggregated one,
// and both must compute the identical verified table (the checksum is
// a pure function of the inserted contents).
func TestAggregationWins(t *testing.T) {
	p := Params{Ranks: 2, InsertsPerRank: 1024}
	p.Aggregate = true
	on := Run(p)
	p.Aggregate = false
	off := Run(p)

	if on.Checksum != off.Checksum {
		t.Fatalf("checksum changed with aggregation: on=%016x off=%016x", on.Checksum, off.Checksum)
	}
	if on.Inserts != 2048 || off.Inserts != 2048 {
		t.Fatalf("inserts = %d/%d, want 2048", on.Inserts, off.Inserts)
	}
	if off.WireFrames < float64(off.Inserts)/2 {
		t.Fatalf("unaggregated run sent only %v frames for %d inserts", off.WireFrames, off.Inserts)
	}
	if off.WireFrames < 4*on.WireFrames {
		t.Errorf("frame reduction %.1fx (on=%v off=%v), want >= 4x",
			off.WireFrames/on.WireFrames, on.WireFrames, off.WireFrames)
	}
	if on.OpsPerBatch < 2 {
		t.Errorf("agg ops/batch = %v, want real coalescing", on.OpsPerBatch)
	}
	t.Logf("frames: on=%v off=%v (%.1fx), ops/batch=%.1f",
		on.WireFrames, off.WireFrames, off.WireFrames/on.WireFrames, on.OpsPerBatch)
}
