// Package dhtbench measures the message-aggregation subsystem on a
// real wire: a distributed hash table insert storm over the TCP
// conduit (spmd.RunWireLocal — every rank its own endpoint, segment
// and conduit over localhost sockets), run with aggregation on and
// off. Unlike the paper-reproduction experiments this benchmark is
// wall-clock: the virtual-time model does not span address spaces, and
// the quantity under test — frames on the wire — is real, counted by
// the conduit's per-handler counters rather than modeled.
package dhtbench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"upcxx/internal/agg"
	"upcxx/internal/bench/gups"
	"upcxx/internal/core"
	"upcxx/internal/dht"
	"upcxx/internal/spmd"
)

// Params configures a run.
type Params struct {
	Ranks          int
	InsertsPerRank int
	// Aggregate selects real coalescing (the default agg thresholds)
	// or the baseline (MaxOps = 1: every insert ships as its own
	// single-op frame pair).
	Aggregate bool
	// Adaptive additionally enables the aggregator's per-destination
	// AIMD controller (agg.Config.Adaptive) on the aggregated
	// configuration; under this bench's bulk load it grows the batch
	// budget past the static default, cutting frames per op further.
	Adaptive bool
	// Repeats runs the whole job this many times and reports the
	// fastest insert phase (default 3) — best-of-N suppresses the
	// scheduler-stall noise a single wall-clock measurement on a
	// shared CI runner is exposed to. Frame counts are normally
	// identical across repeats (the workload is deterministic), but a
	// stall longer than the aggregation MaxAge can age-flush a partial
	// batch and add a few frames to that repeat.
	Repeats int
}

// Result reports the run's metrics.
type Result struct {
	Ranks           int
	Inserts         int64   // total inserts across ranks
	Seconds         float64 // wall seconds of the insert phase (max over ranks)
	InsertsPerSec   float64
	WireFrames      float64 // total frames sent across ranks, whole run
	FramesPerInsert float64
	AllocsPerInsert float64 // process-wide heap allocations per insert (pool efficacy)
	OpsPerBatch     float64 // realized aggregation ratio (0 when off)
	Checksum        uint64  // verified table checksum (backend-independent)
}

// Counters reports the run's metrics as named counters for the
// harness.
func (r Result) Counters() map[string]float64 {
	return map[string]float64{
		"inserts":           float64(r.Inserts),
		"inserts_per_sec":   r.InsertsPerSec,
		"wire_tx_frames":    r.WireFrames,
		"frames_per_insert": r.FramesPerInsert,
		"allocs_per_insert": r.AllocsPerInsert,
		"agg_ops_per_batch": r.OpsPerBatch,
	}
}

// Run executes the benchmark: every rank inserts its share of keys,
// the barrier drains the aggregation layer, and the table checksum is
// verified against dht.ExpectedChecksum's reference fold over the same
// key -> value pairs — a run that drops, corrupts or duplicates an
// insert panics rather than reporting plausible throughput. The whole
// job runs Repeats times; the fastest insert phase is reported.
func Run(p Params) Result {
	repeats := p.Repeats
	if repeats <= 0 {
		repeats = 3
	}
	var best Result
	for rep := 0; rep < repeats; rep++ {
		r := runOnce(p)
		if rep == 0 || r.Seconds < best.Seconds {
			best = r
		}
	}
	return best
}

func runOnce(p Params) Result {
	cfg := core.Config{}
	if !p.Aggregate {
		cfg.Agg = agg.Config{MaxOps: 1}
	} else if p.Adaptive {
		cfg.Agg = agg.Config{Adaptive: true}
	}
	var (
		mu       sync.Mutex
		insertNs time.Duration
		sum      uint64
		mallocs  uint64
	)
	segBytes := dht.SegBytes(dht.DefaultCapacity(p.InsertsPerRank))
	stats, err := spmd.RunWireLocal(p.Ranks, segBytes, cfg, func(me *core.Rank) {
		tbl := dht.New(me, dht.DefaultCapacity(p.InsertsPerRank))
		me.Barrier()
		// Rank 0 brackets the insert phase with the process-global
		// malloc counter: every rank runs the same phase between the
		// same barriers, so the delta is the whole job's insert-phase
		// allocation count — the pooled-frames win made measurable.
		var ms runtime.MemStats
		if me.ID() == 0 {
			runtime.ReadMemStats(&ms)
			mu.Lock()
			mallocs = ms.Mallocs
			mu.Unlock()
		}
		t0 := time.Now()
		for i := 0; i < p.InsertsPerRank; i++ {
			k := key(me.ID(), i)
			tbl.Insert(me, k, gups.Mix64(k), nil)
		}
		me.Barrier() // drains every in-flight insert
		dt := time.Since(t0)
		if me.ID() == 0 {
			runtime.ReadMemStats(&ms)
			mu.Lock()
			mallocs = ms.Mallocs - mallocs
			mu.Unlock()
		}
		s := tbl.Checksum(me)
		mu.Lock()
		if dt > insertNs {
			insertNs = dt
		}
		if me.ID() == 0 {
			sum = s
		}
		mu.Unlock()
	})
	if err != nil {
		panic(fmt.Sprintf("dhtbench: %v", err))
	}

	// Verify against the reference fold over the exact pairs inserted.
	pairs := make(map[uint64]uint64, p.Ranks*p.InsertsPerRank)
	for rank := 0; rank < p.Ranks; rank++ {
		for i := 0; i < p.InsertsPerRank; i++ {
			k := key(rank, i)
			pairs[k] = gups.Mix64(k)
		}
	}
	if want := dht.ExpectedChecksum(pairs); sum != want {
		panic(fmt.Sprintf("dhtbench: table checksum %016x, reference %016x (aggregate=%v)",
			sum, want, p.Aggregate))
	}

	r := Result{
		Ranks:    p.Ranks,
		Inserts:  int64(p.Ranks) * int64(p.InsertsPerRank),
		Seconds:  insertNs.Seconds(),
		Checksum: sum,
	}
	var batches, ops float64
	for _, st := range stats {
		r.WireFrames += st.Counters["wire_tx_frames"]
		batches += st.Counters["agg_batches"]
		ops += st.Counters["agg_ops"]
	}
	if r.Seconds > 0 {
		r.InsertsPerSec = float64(r.Inserts) / r.Seconds
	}
	if r.Inserts > 0 {
		r.FramesPerInsert = r.WireFrames / float64(r.Inserts)
		r.AllocsPerInsert = float64(mallocs) / float64(r.Inserts)
	}
	if p.Aggregate && batches > 0 {
		r.OpsPerBatch = ops / batches
	}
	return r
}

// key derives rank r's i-th insert key (odd by construction, so even
// keys are guaranteed misses in tests).
func key(rank, i int) uint64 {
	return gups.Mix64(uint64(rank)<<32+uint64(i))<<1 | 1
}
