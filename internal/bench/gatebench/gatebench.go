// Package gatebench is the closed-loop load generator for the service
// plane: it assembles a full in-process gateway job — n compute ranks
// plus the gateway rank, each with its own transport endpoint, segment
// and wire conduit over localhost TCP — fronts it with a real HTTP
// server over the production mux, and drives it with N workers over M
// keep-alive connections. Workers issue PUT/GET traffic on zipfian or
// uniform keys, a warmup window lets the aggregation controller and the
// connection pool settle, and the measurement window samples end-to-end
// request latency at the client. The headline numbers are QPS and the
// p50/p99/p999 tail.
//
// The chaos variant aborts one compute rank's endpoint mid-measurement
// — an unannounced crash, exactly what the transport's failure detector
// is built to notice — while the workers keep writing. Every PUT the
// gateway acknowledged before, during and after the death is re-read at
// the end: with K=2 replication the job must not lose a single acked
// write, and the error budget the clients observe stays bounded (the
// store's failover retry re-routes around the corpse).
package gatebench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"upcxx/internal/core"
	"upcxx/internal/dht"
	"upcxx/internal/gasnet"
	"upcxx/internal/segment"
	"upcxx/internal/svc"
	"upcxx/internal/transport"
)

// Params configures one gatebench run.
type Params struct {
	// Ranks is the number of compute ranks; the gateway is one more.
	Ranks int
	// Scale is the distinct-key population (0 = svc default).
	Scale int
	// Workers is the closed-loop client concurrency.
	Workers int
	// Conns bounds the HTTP connection pool (0 = Workers).
	Conns int
	// Zipf draws keys zipfian (s=1.07) instead of uniform.
	Zipf bool
	// GetFrac is the fraction of single-op requests that are GETs.
	GetFrac float64
	// BatchSize > 1 routes traffic through the batch endpoints with
	// this many ops per request; 0/1 uses the single-op endpoints.
	BatchSize int
	// Warmup and Measure bound the two windows.
	Warmup, Measure time.Duration
	// Chaos hard-aborts compute rank KillRank's endpoint KillAfter
	// into the measurement window. Every acked write is verified
	// readable afterwards and Result.Lost counts the misses.
	Chaos     bool
	KillRank  int
	KillAfter time.Duration
}

// Result is one run's measurement.
type Result struct {
	Ops      int     // requests completed inside the measurement window
	QPS      float64 // key operations per second (batch ops count individually)
	P50Usec  float64 // end-to-end request latency percentiles
	P99Usec  float64
	P999Usec float64
	Acked    int // PUTs acknowledged over the whole run (chaos bookkeeping)
	Errs5xx  int // 5xx responses observed by the workers
	Lost     int // acked writes missing or wrong on post-run verification
}

// Counters reports the run as named counters for the harness.
func (r Result) Counters() map[string]float64 {
	return map[string]float64{
		"qps":       r.QPS,
		"p50_usec":  r.P50Usec,
		"p99_usec":  r.P99Usec,
		"p999_usec": r.P999Usec,
		"acked":     float64(r.Acked),
		"errs_5xx":  float64(r.Errs5xx),
		"lost":      float64(r.Lost),
	}
}

// Run executes one gatebench configuration end to end.
func Run(p Params) Result {
	if p.Ranks <= 0 {
		p.Ranks = 3
	}
	if p.Workers <= 0 {
		p.Workers = 32
	}
	if p.Conns <= 0 {
		p.Conns = p.Workers
	}
	if p.GetFrac < 0 || p.GetFrac >= 1 {
		p.GetFrac = 0.5
	}
	if p.Warmup <= 0 {
		p.Warmup = 200 * time.Millisecond
	}
	if p.Measure <= 0 {
		p.Measure = time.Second
	}
	scale := p.Scale
	if scale <= 0 {
		scale = svc.DefaultGateScale
	}
	total := p.Ranks + 1
	gateRank := p.Ranks
	if !p.Chaos {
		p.KillRank = -1
	} else if p.KillRank < 0 || p.KillRank >= gateRank {
		panic("gatebench: KillRank must be a compute rank")
	}

	st := svc.NewDHTStore(svc.StoreConfig{})
	app := svc.New(st, svc.Config{MaxInFlight: 4 * p.Workers, RequestTimeout: 30 * time.Second})

	// The mesh is assembled by hand (not spmd.RunWireLocal) so the chaos
	// variant can reach into the fabric and abort the victim's endpoint:
	// an unannounced TCP-level death, as a kill -9 would present.
	eps := make([]*transport.TCPEndpoint, total)
	addrs := make([]string, total)
	for i := range eps {
		tep, err := transport.ListenTCP(i, total, "127.0.0.1:0")
		if err != nil {
			panic(fmt.Sprintf("gatebench: listen rank %d: %v", i, err))
		}
		eps[i] = tep
		addrs[i] = tep.Addr()
	}
	killCh := make(chan struct{})
	segBytes := svc.GateSegBytes(total, scale)
	sums := make([]uint64, total)
	alive := make([]bool, total) // rank completed its body normally
	panics := make([]any, total)

	var mesh sync.WaitGroup
	for i := 0; i < total; i++ {
		mesh.Add(1)
		go func(i int) {
			defer mesh.Done()
			// The victim's teardown races its own abort; everything it
			// throws from under the axe is scripted, not a failure.
			defer func() { panics[i] = recover() }()
			if err := eps[i].Connect(addrs); err != nil {
				panic(fmt.Sprintf("rank %d connect: %v", i, err))
			}
			seg := segment.New(segBytes)
			cd := gasnet.NewWireConduit(eps[i], seg)
			defer cd.Close()
			core.RunWire(core.Config{Resilient: true}, cd, seg, func(me *core.Rank) {
				switch {
				case i == gateRank:
					sums[i] = svc.GatewayMain(me, st, scale)
				case i == p.KillRank:
					sums[i] = victimMain(me, scale, killCh, eps[i])
				default:
					sums[i] = svc.ServeMain(me, scale)
				}
				alive[i] = true
			})
			cd.Goodbye()
		}(i)
	}

	res := driveHTTP(p, scale, st, app, killCh)

	st.Stop()
	mesh.Wait()
	for i, pv := range panics {
		if pv != nil && i != p.KillRank {
			panic(fmt.Sprintf("gatebench: rank %d: %v", i, pv))
		}
	}
	// Every survivor left through the same collective: their checksums
	// must agree or the job's state diverged under load.
	ref := sums[gateRank]
	for i := 0; i < total; i++ {
		if alive[i] && sums[i] != ref {
			panic(fmt.Sprintf("gatebench: rank %d checksum %#x != gateway %#x", i, sums[i], ref))
		}
	}
	return res
}

// victimMain is the doomed compute rank's body: a full DHT member
// serving traffic like any other, until the driver's signal aborts its
// endpoint — no goodbye, no drain; its peers find out from the failure
// detector. It never reaches the closing collective.
func victimMain(me *core.Rank, scale int, killCh <-chan struct{}, ep *transport.TCPEndpoint) uint64 {
	stopped := false
	core.RegisterAMHandler(me, svc.CtlHandler, func(*core.Rank, int, []byte) { stopped = true })
	tbl := dht.NewWithConfig(me, svc.GateCapacity(me.Ranks(), scale),
		dht.Config{Replicas: svc.GateReplicas, ReadRepair: true})
	killed := false
	me.WaitUntil(func() bool {
		select {
		case <-killCh:
			killed = true
			return true
		default:
			return stopped
		}
	})
	if !killed {
		// The run ended before the kill time; leave like any other rank.
		return tbl.Checksum(me)
	}
	ep.Abort()
	// Unwind without marking the rank alive; the driver expects (and
	// discards) exactly this panic from the killed rank.
	panic("gatebench: scripted kill")
}

// worker is one closed-loop client's bookkeeping.
type worker struct {
	id    int
	seq   int // keys generated (chaos key uniqueness)
	rng   *rand.Rand
	zipf  *rand.Zipf
	acked map[string]uint64 // key -> last acked value (chaos verification)
	lats  []time.Duration   // in-window request latencies
	ops   int               // in-window key operations
	e5xx  int
}

func (w *worker) key(p Params, scale int) string {
	if p.Chaos {
		// Chaos mode writes each key once (unique per worker and op),
		// so verification needs no last-write-wins reasoning under
		// concurrency: the one acked value is the only right answer.
		w.seq++
		return fmt.Sprintf("c%d-%d", w.id, w.seq)
	}
	if w.zipf != nil {
		return "k" + strconv.FormatUint(w.zipf.Uint64(), 10)
	}
	return "k" + strconv.Itoa(w.rng.Intn(scale))
}

// driveHTTP runs the client side: HTTP server over the production mux,
// Workers closed loops, warmup then measurement, then (chaos) the
// acked-write verification read-back.
func driveHTTP(p Params, scale int, st *svc.DHTStore, app *svc.Service, killCh chan struct{}) Result {
	for !st.Ready() {
		time.Sleep(time.Millisecond)
	}
	srv := httptest.NewServer(svc.Handler(app))
	defer srv.Close()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        p.Conns,
		MaxIdleConnsPerHost: p.Conns,
		MaxConnsPerHost:     p.Conns,
	}}
	defer client.CloseIdleConnections()

	workers := make([]*worker, p.Workers)
	for i := range workers {
		rng := rand.New(rand.NewSource(int64(0x9E3779B9*(i+1)) ^ 42))
		w := &worker{id: i, rng: rng, acked: map[string]uint64{}}
		if p.Zipf {
			w.zipf = rand.NewZipf(rng, 1.07, 1, uint64(scale-1))
		}
		workers[i] = w
	}

	start := time.Now()
	measureFrom := start.Add(p.Warmup)
	end := measureFrom.Add(p.Measure)
	if p.Chaos {
		time.AfterFunc(p.Warmup+p.KillAfter, func() { close(killCh) })
	}

	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			for {
				t0 := time.Now()
				if t0.After(end) {
					return
				}
				ops, status, acked := w.request(p, scale, client, srv.URL)
				if t0.After(measureFrom) {
					w.ops += ops
					w.lats = append(w.lats, time.Since(t0))
					if status >= 500 {
						w.e5xx++
					}
				}
				for k, v := range acked {
					w.acked[k] = v
				}
			}
		}(w)
	}
	wg.Wait()

	var res Result
	var lats []time.Duration
	for _, w := range workers {
		res.Ops += w.ops
		res.Errs5xx += w.e5xx
		res.Acked += len(w.acked)
		lats = append(lats, w.lats...)
	}
	res.QPS = float64(res.Ops) / p.Measure.Seconds()
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	if n := len(lats); n > 0 {
		res.P50Usec = float64(lats[n/2]) / 1e3
		res.P99Usec = float64(lats[n*99/100]) / 1e3
		res.P999Usec = float64(lats[n*999/1000]) / 1e3
	}
	if p.Chaos {
		for _, w := range workers {
			res.Lost += verifyAcked(client, srv.URL, w.acked)
		}
	}
	return res
}

// request issues one client request (a single op, or one batch) and
// reports (key ops completed, HTTP status, acked puts).
func (w *worker) request(p Params, scale int, c *http.Client, base string) (int, int, map[string]uint64) {
	if p.BatchSize > 1 {
		return w.batchRequest(p, scale, c, base)
	}
	if !p.Chaos && w.rng.Float64() < p.GetFrac {
		resp, err := c.Get(base + "/kv/" + w.key(p, scale))
		if err != nil {
			return 0, 599, nil
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return 1, resp.StatusCode, nil
	}
	key := w.key(p, scale)
	val := w.rng.Uint64()
	req, _ := http.NewRequest(http.MethodPut, base+"/kv/"+key,
		strings.NewReader(strconv.FormatUint(val, 10)))
	resp, err := c.Do(req)
	if err != nil {
		return 0, 599, nil
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return 1, resp.StatusCode, map[string]uint64{key: val}
	}
	return 1, resp.StatusCode, nil
}

// batchRequest issues one batch-put of BatchSize pairs.
func (w *worker) batchRequest(p Params, scale int, c *http.Client, base string) (int, int, map[string]uint64) {
	type item struct {
		Key   string `json:"key"`
		Value uint64 `json:"value"`
	}
	var in struct {
		Items []item `json:"items"`
	}
	vals := make(map[string]uint64, p.BatchSize)
	for i := 0; i < p.BatchSize; i++ {
		k := w.key(p, scale)
		v := w.rng.Uint64()
		in.Items = append(in.Items, item{Key: k, Value: v})
		vals[k] = v
	}
	body, _ := json.Marshal(in)
	resp, err := c.Post(base+"/kv/batch/put", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 599, nil
	}
	var out struct {
		Results []struct {
			Key string `json:"key"`
			OK  bool   `json:"ok"`
		} `json:"results"`
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	acked := make(map[string]uint64, len(vals))
	if err == nil {
		for _, r := range out.Results {
			if r.OK {
				acked[r.Key] = vals[r.Key]
			}
		}
	}
	return len(in.Items), resp.StatusCode, acked
}

// verifyAcked re-reads every acked write through the batch-get endpoint
// and returns how many are missing or wrong — the chaos variant's loss
// count, which must be zero.
func verifyAcked(c *http.Client, base string, acked map[string]uint64) int {
	keys := make([]string, 0, len(acked))
	for k := range acked {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	lost := 0
	const chunk = 512
	for at := 0; at < len(keys); at += chunk {
		sub := keys[at:min(at+chunk, len(keys))]
		body, _ := json.Marshal(struct {
			Keys []string `json:"keys"`
		}{sub})
		resp, err := c.Post(base+"/kv/batch/get", "application/json", bytes.NewReader(body))
		if err != nil {
			return lost + len(keys) - at // can't verify: count the remainder lost
		}
		var out struct {
			Items []struct {
				Key   string `json:"key"`
				Value uint64 `json:"value"`
				Found bool   `json:"found"`
			} `json:"items"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil || len(out.Items) != len(sub) {
			return lost + len(keys) - at
		}
		for _, it := range out.Items {
			if !it.Found || it.Value != acked[it.Key] {
				lost++
			}
		}
	}
	return lost
}
