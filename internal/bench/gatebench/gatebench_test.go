package gatebench

import (
	"testing"
	"time"
)

// TestChaosZeroAckedLoss is the durability gate of the service plane:
// kill one K=2 replica holder mid-measurement under concurrent PUT
// load, then re-read every acknowledged write. The count of lost acked
// writes must be exactly zero, and the client-visible error budget
// stays bounded — the store's failover retry absorbs the death.
func TestChaosZeroAckedLoss(t *testing.T) {
	r := Run(Params{
		Ranks:     3,
		Scale:     1 << 12,
		Workers:   8,
		Warmup:    150 * time.Millisecond,
		Measure:   700 * time.Millisecond,
		Chaos:     true,
		KillRank:  1,
		KillAfter: 200 * time.Millisecond,
	})
	t.Logf("chaos: ops=%d qps=%.0f acked=%d 5xx=%d lost=%d p99=%.0fus",
		r.Ops, r.QPS, r.Acked, r.Errs5xx, r.Lost, r.P99Usec)
	if r.Lost != 0 {
		t.Fatalf("lost %d acked writes to a single rank death under K=2 replication", r.Lost)
	}
	if r.Acked == 0 {
		t.Fatal("no writes acked; the run measured nothing")
	}
	// Failover retries absorb the death; a handful of exhausted-budget
	// 5xx responses are tolerable, an error storm is not.
	if limit := r.Ops/10 + 5; r.Errs5xx > limit {
		t.Fatalf("5xx budget: %d errors over %d ops (limit %d)", r.Errs5xx, r.Ops, limit)
	}
}

// TestSmoke runs the fault-free single-op path at a tiny size so the
// plain bench loop (zipf keys, mixed PUT/GET) stays covered by tier-1.
func TestSmoke(t *testing.T) {
	r := Run(Params{
		Ranks:   2,
		Scale:   1 << 10,
		Workers: 4,
		Zipf:    true,
		Warmup:  100 * time.Millisecond,
		Measure: 300 * time.Millisecond,
	})
	t.Logf("smoke: ops=%d qps=%.0f 5xx=%d p50=%.0fus p99=%.0fus",
		r.Ops, r.QPS, r.Errs5xx, r.P50Usec, r.P99Usec)
	if r.Ops == 0 || r.QPS == 0 {
		t.Fatal("no measured throughput")
	}
	if r.Errs5xx != 0 {
		t.Fatalf("%d 5xx responses on a fault-free run", r.Errs5xx)
	}
}
