package raytrace

import (
	"upcxx/internal/core"
	"upcxx/internal/sim"
)

// FlopsPerBounce is the default modeled arithmetic per ray bounce against
// this package's small sphere scene. Embree-scale scenes (BVHs over
// thousands of triangles, many intersection tests per ray) cost orders of
// magnitude more per bounce; the harness raises Params.FlopsPerBounce to
// model them while still tracing the real (small) scene for image
// verification.
const FlopsPerBounce = 1800

// Params configures a render.
type Params struct {
	Ranks   int // one rank per node in the paper's configuration
	Width   int
	Height  int
	SPP     int // samples per pixel
	Depth   int // path depth
	Tile    int // tile edge (paper uses an image-plane tile decomposition)
	Workers int // node-local parallel ways ("OpenMP threads"); 0 = CoresPerNode
	Machine sim.Machine
	Virtual bool
	Steal   bool // enable distributed work stealing (paper's future work)

	// FlopsPerBounce overrides the modeled per-bounce cost (0 = the
	// package default); used to model Embree-scale scene complexity.
	FlopsPerBounce float64
}

// Result reports a render's metrics.
type Result struct {
	Ranks    int
	Seconds  float64
	Checksum float64 // image checksum, identical for every rank count
	Steals   int64   // successful remote steals (Steal mode)
	Image    []float64
}

// Counters reports the run's metrics as named counters for the benchmark
// harness.
func (r Result) Counters() map[string]float64 {
	c := map[string]float64{
		"checksum": r.Checksum,
	}
	if r.Seconds > 0 {
		c["pixels_per_sec"] = float64(len(r.Image)) / r.Seconds
	}
	if r.Steals > 0 {
		c["steals"] = float64(r.Steals)
	}
	return c
}

// Run renders the scene with a static cyclic tile distribution and a
// sum-reduction of partial images (paper §V-D). With p.Steal it uses the
// distributed work-stealing extension instead (see steal.go).
func Run(p Params) Result {
	if p.Tile <= 0 {
		p.Tile = 32
	}
	if p.Depth <= 0 {
		p.Depth = 6
	}
	if p.Workers <= 0 {
		p.Workers = p.Machine.CoresPerNode
	}
	if p.FlopsPerBounce <= 0 {
		p.FlopsPerBounce = FlopsPerBounce
	}
	if p.Steal {
		return runStealing(p)
	}
	cfg := core.Config{Ranks: p.Ranks, Machine: p.Machine, SW: sim.SWUPCXX, Virtual: p.Virtual}

	var checksum float64
	var image []float64
	st := core.Run(cfg, func(me *core.Rank) {
		sc := BuildScene()
		cam := NewCamera(float64(p.Width) / float64(p.Height))
		tilesX := (p.Width + p.Tile - 1) / p.Tile
		tilesY := (p.Height + p.Tile - 1) / p.Tile
		nTiles := tilesX * tilesY

		partial := make([]float64, p.Width*p.Height*3)
		totalBounces := 0
		// Static cyclic tile distribution among ranks; within the rank
		// the tiles are dynamically scheduled over node-local workers,
		// modeled by charging the bounce-proportional compute divided by
		// the worker count.
		for tile := me.ID(); tile < nTiles; tile += me.Ranks() {
			totalBounces += renderTile(sc, cam, partial, tile, tilesX, p)
		}
		me.WorkParallel(float64(totalBounces)*p.FlopsPerBounce, p.Workers)
		me.Barrier()

		// Final gather: a sum-reduction of the partial images (the
		// paper replaced gatherv with an image reduction).
		img := core.TeamReduceSlices(me.World(), partial, func(a, b float64) float64 { return a + b }, 0)
		if me.ID() == 0 {
			sum := 0.0
			for _, v := range img {
				sum += v
			}
			checksum = sum
			image = img
		}
		me.Barrier()
	})

	return Result{
		Ranks:    p.Ranks,
		Seconds:  st.Seconds(p.Virtual),
		Checksum: checksum,
		Image:    image,
	}
}

// renderTile renders one tile into the partial image and returns the
// bounce count.
func renderTile(sc *Scene, cam *Camera, partial []float64, tile, tilesX int, p Params) int {
	tx, ty := tile%tilesX, tile/tilesX
	bounces := 0
	for py := ty * p.Tile; py < min((ty+1)*p.Tile, p.Height); py++ {
		for px := tx * p.Tile; px < min((tx+1)*p.Tile, p.Width); px++ {
			col, b := RenderPixel(sc, cam, px, py, p.Width, p.Height, p.SPP, p.Depth)
			o := (py*p.Width + px) * 3
			partial[o] = col.X
			partial[o+1] = col.Y
			partial[o+2] = col.Z
			bounces += b
		}
	}
	return bounces
}
