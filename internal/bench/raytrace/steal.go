package raytrace

import (
	"sync/atomic"

	"upcxx/internal/core"
	"upcxx/internal/sim"
)

// runStealing implements the paper's stated future work for the renderer
// (§V-D): "global load balancing via distributed work queues and work
// stealing". Each rank owns a deque of tiles, initially the same cyclic
// assignment as the static version; when a rank runs dry it steals tiles
// from round-robin victims with async remote function invocations — the
// PGAS idiom the paper cites [Olivier & Prins].
//
// The rendered image is bit-identical to the static distribution: every
// tile is rendered exactly once by whoever dequeued it, and the partial
// images are sum-reduced.
func runStealing(p Params) Result {
	cfg := core.Config{Ranks: p.Ranks, Machine: p.Machine, SW: sim.SWUPCXX, Virtual: p.Virtual}

	var checksum float64
	var image []float64
	var steals atomic.Int64
	var remaining atomic.Int64

	tilesX := (p.Width + p.Tile - 1) / p.Tile
	tilesY := (p.Height + p.Tile - 1) / p.Tile
	nTiles := tilesX * tilesY
	remaining.Store(int64(nTiles))

	// Per-rank deques, owned by the rank's goroutine (steal requests are
	// async tasks executing there, so no locking is required).
	deques := make([][]int, p.Ranks)
	for r := range deques {
		for tile := r; tile < nTiles; tile += p.Ranks {
			deques[r] = append(deques[r], tile)
		}
	}

	st := core.Run(cfg, func(me *core.Rank) {
		sc := BuildScene()
		cam := NewCamera(float64(p.Width) / float64(p.Height))
		partial := make([]float64, p.Width*p.Height*3)
		totalBounces := 0

		render := func(tile int) {
			totalBounces += renderTile(sc, cam, partial, tile, tilesX, p)
			remaining.Add(-1)
		}

		victim := (me.ID() + 1) % me.Ranks()
		for remaining.Load() > 0 {
			// Drain the local deque (LIFO for locality).
			if q := deques[me.ID()]; len(q) > 0 {
				tile := q[len(q)-1]
				deques[me.ID()] = q[:len(q)-1]
				render(tile)
				continue
			}
			if me.Ranks() == 1 {
				break
			}
			// Steal: ask the victim's goroutine for the oldest half of
			// its deque (steal-half heuristic).
			v := victim
			victim = (victim + 1) % me.Ranks()
			if v == me.ID() {
				continue
			}
			f := core.AsyncFuture(me, v, func(vr *core.Rank) [2]int {
				q := deques[vr.ID()]
				if len(q) == 0 {
					return [2]int{-1, -1}
				}
				take := (len(q) + 1) / 2
				stolen := [2]int{q[0], take}
				return stolen
			})
			got := f.Get()
			if got[0] < 0 {
				continue
			}
			// Second round trip commits the steal (the two-phase shape
			// of distributed deque protocols, simplified).
			fc := core.AsyncFuture(me, v, func(vr *core.Rank) []int {
				q := deques[vr.ID()]
				if len(q) == 0 {
					return nil
				}
				take := (len(q) + 1) / 2
				stolen := append([]int(nil), q[:take]...)
				deques[vr.ID()] = q[take:]
				return stolen
			})
			stolen := fc.Get()
			if len(stolen) == 0 {
				continue
			}
			steals.Add(1)
			for _, tile := range stolen {
				render(tile)
			}
		}
		me.WorkParallel(float64(totalBounces)*p.FlopsPerBounce, p.Workers)
		me.Barrier()

		img := core.TeamReduceSlices(me.World(), partial, func(a, b float64) float64 { return a + b }, 0)
		if me.ID() == 0 {
			sum := 0.0
			for _, v := range img {
				sum += v
			}
			checksum = sum
			image = img
		}
		me.Barrier()
	})

	return Result{
		Ranks:    p.Ranks,
		Seconds:  st.Seconds(p.Virtual),
		Checksum: checksum,
		Steals:   steals.Load(),
		Image:    image,
	}
}
