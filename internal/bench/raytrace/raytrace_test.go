package raytrace

import (
	"math"
	"testing"

	"upcxx/internal/sim"
)

func small() Params {
	return Params{
		Ranks: 2, Width: 64, Height: 48, SPP: 2, Depth: 4, Tile: 16,
		Machine: sim.Local, Virtual: true,
	}
}

func TestRenderProducesImage(t *testing.T) {
	r := Run(small())
	if r.Checksum <= 0 {
		t.Fatal("black image")
	}
	if len(r.Image) != 64*48*3 {
		t.Fatalf("image length %d", len(r.Image))
	}
	// Pixels are gamma-compressed radiance: mostly within [0, ~2+] for
	// the emissive highlights.
	for i, v := range r.Image {
		if math.IsNaN(v) || v < 0 {
			t.Fatalf("pixel %d = %v", i, v)
		}
	}
}

func TestImageIndependentOfRankCount(t *testing.T) {
	// The per-pixel RNG makes the image identical for any distribution.
	p := small()
	p.Ranks = 1
	c1 := Run(p).Checksum
	p.Ranks = 3
	c3 := Run(p).Checksum
	p.Ranks = 6
	c6 := Run(p).Checksum
	if c1 != c3 || c3 != c6 {
		t.Fatalf("checksums differ across rank counts: %v %v %v", c1, c3, c6)
	}
}

func TestStrongScalingNearPerfect(t *testing.T) {
	// Fig 7: nearly perfect strong scaling ("of little surprise since
	// the application is mostly embarrassingly parallel").
	// Workers=1 weights modeled compute against the image reduction the
	// way the paper's full-size frames do (their compute:reduce ratio is
	// >> 1000; a 96x64 test frame needs the help).
	p := small()
	p.Machine = sim.Edison
	p.Width, p.Height, p.SPP, p.Workers = 96, 64, 4, 1
	p.Ranks = 1
	t1 := Run(p).Seconds
	p.Ranks = 4
	t4 := Run(p).Seconds
	speedup := t1 / t4
	if speedup < 3.2 {
		t.Errorf("4-rank speedup %v, want >= 3.2 (near-perfect)", speedup)
	}
}

func TestSphereHit(t *testing.T) {
	s := Sphere{Center: Vec{0, 0, -5}, Radius: 1}
	if tt, ok := s.hit(Ray{Vec{0, 0, 0}, Vec{0, 0, -1}}, 1e-3, math.Inf(1)); !ok || math.Abs(tt-4) > 1e-12 {
		t.Errorf("head-on hit t=%v ok=%v, want 4", tt, ok)
	}
	if _, ok := s.hit(Ray{Vec{0, 0, 0}, Vec{0, 1, 0}}, 1e-3, math.Inf(1)); ok {
		t.Error("miss reported as hit")
	}
	// Ray starting inside hits the far surface.
	if tt, ok := s.hit(Ray{Vec{0, 0, -5}, Vec{0, 0, -1}}, 1e-3, math.Inf(1)); !ok || math.Abs(tt-1) > 1e-12 {
		t.Errorf("inside hit t=%v ok=%v, want 1", tt, ok)
	}
}

func TestVecOps(t *testing.T) {
	a, b := Vec{1, 2, 3}, Vec{4, 5, 6}
	if a.Add(b) != (Vec{5, 7, 9}) || b.Sub(a) != (Vec{3, 3, 3}) {
		t.Error("Add/Sub")
	}
	if a.Dot(b) != 32 {
		t.Error("Dot")
	}
	if n := (Vec{3, 4, 0}).Norm(); math.Abs(n.Len()-1) > 1e-12 {
		t.Error("Norm")
	}
}

func TestDeterministicSceneAndPixels(t *testing.T) {
	sc1, sc2 := BuildScene(), BuildScene()
	if len(sc1.Spheres) != len(sc2.Spheres) {
		t.Fatal("scene not deterministic")
	}
	cam := NewCamera(1)
	p1, b1 := RenderPixel(sc1, cam, 10, 10, 32, 32, 4, 6)
	p2, b2 := RenderPixel(sc2, cam, 10, 10, 32, 32, 4, 6)
	if p1 != p2 || b1 != b2 {
		t.Error("pixel render not deterministic")
	}
}

func TestWorkStealingMatchesStatic(t *testing.T) {
	p := small()
	p.Ranks = 4
	static := Run(p)
	p.Steal = true
	stealing := Run(p)
	if static.Checksum != stealing.Checksum {
		t.Fatalf("stealing changed the image: %v vs %v", static.Checksum, stealing.Checksum)
	}
}

func TestStealingBalancesSkewedWork(t *testing.T) {
	// With many more tiles than ranks and stealing enabled, some steals
	// should actually occur once local queues drain unevenly.
	p := small()
	p.Ranks = 4
	p.Width, p.Height, p.Tile = 128, 128, 8 // 256 tiles
	p.Steal = true
	r := Run(p)
	if r.Steals == 0 {
		t.Log("no steals occurred (uniform drain); acceptable but unusual")
	}
	if r.Checksum <= 0 {
		t.Fatal("stealing run produced no image")
	}
}
