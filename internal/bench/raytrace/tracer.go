// Package raytrace implements the paper's §V-D study (Fig 7): a
// distributed Monte-Carlo renderer with a static cyclic tile distribution
// over ranks, node-local dynamic parallelism (the paper's OpenMP, modeled
// as per-node worker ways in the cost model), and a sum-reduction of
// partial images. Embree's vectorized kernels are replaced by a
// from-scratch path tracer — Fig 7 measures the strong scaling of the
// parallel structure, not SIMD throughput (see DESIGN.md §4).
//
// The renderer is a full, if small, path tracer: spheres, lambertian and
// metal materials, an emissive sky, gamma-corrected accumulation, and a
// deterministic per-pixel RNG so the image is bit-identical for every
// rank count (the reduction adds each pixel from exactly one rank).
package raytrace

import "math"

// Vec is a 3-vector.
type Vec struct{ X, Y, Z float64 }

// Arithmetic helpers.
func (a Vec) Add(b Vec) Vec       { return Vec{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }
func (a Vec) Sub(b Vec) Vec       { return Vec{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }
func (a Vec) Scale(k float64) Vec { return Vec{a.X * k, a.Y * k, a.Z * k} }
func (a Vec) Mul(b Vec) Vec       { return Vec{a.X * b.X, a.Y * b.Y, a.Z * b.Z} }
func (a Vec) Dot(b Vec) float64   { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }
func (a Vec) Len() float64        { return math.Sqrt(a.Dot(a)) }
func (a Vec) Norm() Vec           { return a.Scale(1 / a.Len()) }

// Ray is origin + direction.
type Ray struct{ O, D Vec }

// At returns the point at parameter t.
func (r Ray) At(t float64) Vec { return r.O.Add(r.D.Scale(t)) }

// Material kinds.
const (
	Lambertian = iota
	Metal
	Emissive
)

// Sphere is the scene primitive.
type Sphere struct {
	Center Vec
	Radius float64
	Albedo Vec
	Kind   int
	Fuzz   float64
}

// hit solves the ray/sphere intersection in (tmin, tmax).
func (s *Sphere) hit(r Ray, tmin, tmax float64) (float64, bool) {
	oc := r.O.Sub(s.Center)
	a := r.D.Dot(r.D)
	half := oc.Dot(r.D)
	c := oc.Dot(oc) - s.Radius*s.Radius
	disc := half*half - a*c
	if disc < 0 {
		return 0, false
	}
	sq := math.Sqrt(disc)
	t := (-half - sq) / a
	if t <= tmin || t >= tmax {
		t = (-half + sq) / a
		if t <= tmin || t >= tmax {
			return 0, false
		}
	}
	return t, true
}

// Scene is a list of spheres plus a sky.
type Scene struct {
	Spheres []Sphere
}

// BuildScene constructs the deterministic benchmark scene: a ground
// sphere, a grid of small spheres with varied materials, and two large
// feature spheres.
func BuildScene() *Scene {
	sc := &Scene{}
	sc.Spheres = append(sc.Spheres, Sphere{
		Center: Vec{0, -1000, 0}, Radius: 1000,
		Albedo: Vec{0.5, 0.5, 0.5}, Kind: Lambertian,
	})
	rng := rngState(12345)
	for a := -4; a < 4; a++ {
		for b := -4; b < 4; b++ {
			choose := rng.next()
			center := Vec{float64(a) + 0.7*rng.next(), 0.2, float64(b) + 0.7*rng.next()}
			switch {
			case choose < 0.7:
				sc.Spheres = append(sc.Spheres, Sphere{
					Center: center, Radius: 0.2,
					Albedo: Vec{rng.next() * rng.next(), rng.next() * rng.next(), rng.next() * rng.next()},
					Kind:   Lambertian,
				})
			case choose < 0.9:
				sc.Spheres = append(sc.Spheres, Sphere{
					Center: center, Radius: 0.2,
					Albedo: Vec{0.5 * (1 + rng.next()), 0.5 * (1 + rng.next()), 0.5 * (1 + rng.next())},
					Kind:   Metal, Fuzz: 0.3 * rng.next(),
				})
			default:
				sc.Spheres = append(sc.Spheres, Sphere{
					Center: center, Radius: 0.2,
					Albedo: Vec{4, 3.6, 3.2}, Kind: Emissive,
				})
			}
		}
	}
	sc.Spheres = append(sc.Spheres,
		Sphere{Center: Vec{0, 1, 0}, Radius: 1, Albedo: Vec{0.7, 0.6, 0.5}, Kind: Metal, Fuzz: 0.05},
		Sphere{Center: Vec{-3, 1, -1}, Radius: 1, Albedo: Vec{0.4, 0.2, 0.1}, Kind: Lambertian},
	)
	return sc
}

// rngState is a SplitMix64-based deterministic RNG; per-pixel seeding
// makes the image independent of tile ownership.
type rngState uint64

func (s *rngState) next() float64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / 9007199254740992.0
}

func (s *rngState) unitSphere() Vec {
	for {
		v := Vec{2*s.next() - 1, 2*s.next() - 1, 2*s.next() - 1}
		if v.Dot(v) < 1 {
			return v
		}
	}
}

// trace returns the radiance along r and the number of bounces consumed
// (the flop proxy for the cost model).
func (sc *Scene) trace(r Ray, depth int, rng *rngState) (Vec, int) {
	bounces := 0
	atten := Vec{1, 1, 1}
	for d := 0; d < depth; d++ {
		var best *Sphere
		bestT := math.Inf(1)
		for i := range sc.Spheres {
			if t, ok := sc.Spheres[i].hit(r, 1e-3, bestT); ok {
				bestT = t
				best = &sc.Spheres[i]
			}
		}
		bounces++
		if best == nil {
			// Sky: vertical gradient.
			t := 0.5 * (r.D.Norm().Y + 1)
			sky := Vec{1, 1, 1}.Scale(1 - t).Add(Vec{0.5, 0.7, 1.0}.Scale(t))
			return atten.Mul(sky), bounces
		}
		p := r.At(bestT)
		n := p.Sub(best.Center).Norm()
		switch best.Kind {
		case Emissive:
			return atten.Mul(best.Albedo), bounces
		case Metal:
			refl := r.D.Norm().Sub(n.Scale(2 * r.D.Norm().Dot(n)))
			refl = refl.Add(rng.unitSphere().Scale(best.Fuzz))
			if refl.Dot(n) <= 0 {
				return Vec{}, bounces
			}
			atten = atten.Mul(best.Albedo)
			r = Ray{p, refl}
		default: // Lambertian
			target := n.Add(rng.unitSphere())
			if target.Len() < 1e-8 {
				target = n
			}
			atten = atten.Mul(best.Albedo)
			r = Ray{p, target.Norm()}
		}
	}
	return Vec{}, bounces
}

// Camera generates primary rays.
type Camera struct {
	origin, llc, horiz, vert Vec
}

// NewCamera builds the fixed benchmark camera for the given aspect ratio.
func NewCamera(aspect float64) *Camera {
	lookFrom := Vec{6, 2.5, 5}
	lookAt := Vec{0, 0.6, 0}
	vup := Vec{0, 1, 0}
	fov := 35.0
	theta := fov * math.Pi / 180
	h := math.Tan(theta / 2)
	vh := 2 * h
	vw := aspect * vh
	w := lookFrom.Sub(lookAt).Norm()
	u := Vec{vup.Y*w.Z - vup.Z*w.Y, vup.Z*w.X - vup.X*w.Z, vup.X*w.Y - vup.Y*w.X}.Norm()
	v := Vec{w.Y*u.Z - w.Z*u.Y, w.Z*u.X - w.X*u.Z, w.X*u.Y - w.Y*u.X}
	return &Camera{
		origin: lookFrom,
		horiz:  u.Scale(vw),
		vert:   v.Scale(vh),
		llc:    lookFrom.Sub(u.Scale(vw / 2)).Sub(v.Scale(vh / 2)).Sub(w),
	}
}

// ray returns the primary ray through normalized screen coordinates.
func (c *Camera) ray(s, t float64) Ray {
	d := c.llc.Add(c.horiz.Scale(s)).Add(c.vert.Scale(t)).Sub(c.origin)
	return Ray{c.origin, d}
}

// RenderPixel integrates one pixel with spp samples, returning RGB and
// the bounce count consumed.
func RenderPixel(sc *Scene, cam *Camera, px, py, w, h, spp, depth int) (Vec, int) {
	var acc Vec
	bounces := 0
	rng := rngState(uint64(py)*1000003 + uint64(px)*7919 + 1)
	for s := 0; s < spp; s++ {
		u := (float64(px) + rng.next()) / float64(w)
		v := (float64(py) + rng.next()) / float64(h)
		col, b := sc.trace(cam.ray(u, v), depth, &rng)
		acc = acc.Add(col)
		bounces += b
	}
	acc = acc.Scale(1 / float64(spp))
	// Gamma 2.
	return Vec{math.Sqrt(acc.X), math.Sqrt(acc.Y), math.Sqrt(acc.Z)}, bounces
}
