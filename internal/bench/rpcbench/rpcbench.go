// Package rpcbench measures the registered-task invocation layer on a
// real wire: a remote-procedure-call storm over the TCP conduit
// (spmd.RunWireLocal — every rank its own endpoint, segment and
// conduit over localhost sockets), run with the aggregation plane
// coalescing requests and with it disabled. The quantities under test
// are RPC throughput under distributed-finish completion and the wire
// frames each RPC costs: requests, done-acks and their transport acks
// all ride the batch plane, so coalescing should collapse the ~4
// frames an isolated RPC pays into a fraction of a frame. Like
// dhtbench, this benchmark is wall-clock — the virtual-time model does
// not span address spaces — and the frame counts come from the
// conduit's per-handler counters rather than a model.
package rpcbench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"upcxx/internal/agg"
	"upcxx/internal/bench/gups"
	"upcxx/internal/core"
	"upcxx/internal/rpc"
	"upcxx/internal/spmd"
)

// pingTask xors a caller-chosen value into the executing rank's own
// accumulator cell: args [cellRank][cellOff][val]. The cell is local
// to the executor, so the mark is applied synchronously in the body
// and the RPC's done-ack certifies it.
var pingTask = core.RegisterTask("rpcbench.ping",
	func(me *core.Rank, from int, args []byte) []byte {
		cellRank, rest := rpc.U64(args)
		cellOff, rest := rpc.U64(rest)
		val, _ := rpc.U64(rest)
		core.AggXor64(me, core.PtrAt[uint64](int(cellRank), cellOff), val, nil)
		return nil
	})

// Params configures a run.
type Params struct {
	Ranks       int // >= 2 (every RPC must cross the wire)
	RPCsPerRank int
	// Aggregate selects real coalescing (the default agg thresholds)
	// or the baseline (MaxOps = 1: every request and done-ack ships as
	// its own single-op frame pair).
	Aggregate bool
	// Adaptive additionally enables the aggregator's per-destination
	// AIMD controller (agg.Config.Adaptive) on the aggregated
	// configuration; under this bench's bulk load it grows the batch
	// budget past the static default, cutting frames per op further.
	Adaptive bool
	// Repeats runs the whole job this many times and reports the
	// fastest RPC phase (default 3), suppressing scheduler-stall noise
	// on shared CI runners the way dhtbench does.
	Repeats int
}

// Result reports the run's metrics.
type Result struct {
	Ranks        int
	RPCs         int64   // total RPCs issued across ranks
	Seconds      float64 // wall seconds of the RPC phase (max over ranks)
	RPCsPerSec   float64
	WireFrames   float64 // total frames sent across ranks, whole run
	FramesPerRPC float64
	AllocsPerRPC float64 // process-wide heap allocations per RPC (pool efficacy)
	OpsPerBatch  float64 // realized aggregation ratio (0 when off)
	Checksum     uint64  // verified accumulator checksum
}

// Counters reports the run's metrics as named counters for the
// harness.
func (r Result) Counters() map[string]float64 {
	return map[string]float64{
		"rpcs":              float64(r.RPCs),
		"rpcs_per_sec":      r.RPCsPerSec,
		"wire_tx_frames":    r.WireFrames,
		"frames_per_rpc":    r.FramesPerRPC,
		"allocs_per_rpc":    r.AllocsPerRPC,
		"agg_ops_per_batch": r.OpsPerBatch,
	}
}

// val derives the mark rank r's i-th RPC deposits on its neighbor.
func val(rank, i int) uint64 {
	return gups.Mix64(uint64(rank)<<32 + uint64(i))
}

// Run executes the benchmark: every rank fires its RPCs at its right
// neighbor inside one Finish (so the phase ends only when every
// remote task — and the mark it applied — has been acknowledged), and
// every accumulator is verified against the reference fold before any
// throughput is reported. The whole job runs Repeats times; the
// fastest RPC phase wins.
func Run(p Params) Result {
	if p.Ranks < 2 {
		panic("rpcbench: need at least 2 ranks (RPCs must cross the wire)")
	}
	repeats := p.Repeats
	if repeats <= 0 {
		repeats = 3
	}
	var best Result
	for rep := 0; rep < repeats; rep++ {
		r := runOnce(p)
		if rep == 0 || r.Seconds < best.Seconds {
			best = r
		}
	}
	return best
}

func runOnce(p Params) Result {
	cfg := core.Config{}
	if !p.Aggregate {
		cfg.Agg = agg.Config{MaxOps: 1}
	} else if p.Adaptive {
		cfg.Agg = agg.Config{Adaptive: true}
	}
	n := p.Ranks
	var (
		mu      sync.Mutex
		rpcNs   time.Duration
		sum     uint64
		mallocs uint64
	)
	stats, err := spmd.RunWireLocal(n, 1<<17, cfg, func(me *core.Rank) {
		cell := core.Allocate[uint64](me, me.ID(), 1)
		core.Write(me, cell, 0)
		cells := core.TeamAllGather(me.World(), cell)
		me.Barrier()

		// Rank 0 brackets the RPC phase with the process-global malloc
		// counter: every rank runs the same phase between the same
		// barriers, so the delta is the whole job's RPC-phase
		// allocation count — the pooled-frames win made measurable.
		var ms runtime.MemStats
		if me.ID() == 0 {
			runtime.ReadMemStats(&ms)
			mu.Lock()
			mallocs = ms.Mallocs
			mu.Unlock()
		}
		t0 := time.Now()
		target := (me.ID() + 1) % n
		tc := cells[target]
		core.Finish(me, func() {
			for i := 0; i < p.RPCsPerRank; i++ {
				core.AsyncTask(me, core.On(target), pingTask,
					rpc.U64s(uint64(tc.Where()), tc.Offset(), val(me.ID(), i)))
			}
		})
		me.Barrier()
		dt := time.Since(t0)
		if me.ID() == 0 {
			runtime.ReadMemStats(&ms)
			mu.Lock()
			mallocs = ms.Mallocs - mallocs
			mu.Unlock()
		}

		// Our cell holds the left neighbor's marks; the Finish/Barrier
		// pair guarantees they have all landed.
		left := (me.ID() - 1 + n) % n
		var want uint64
		for i := 0; i < p.RPCsPerRank; i++ {
			want ^= val(left, i)
		}
		got := core.Read(me, cell)
		if got != want {
			panic(fmt.Sprintf("rpcbench: rank %d accumulator %#x, want %#x (aggregate=%v)",
				me.ID(), got, want, p.Aggregate))
		}
		s := core.TeamReduce(me.World(), got, xor64)
		mu.Lock()
		if dt > rpcNs {
			rpcNs = dt
		}
		if me.ID() == 0 {
			sum = s
		}
		mu.Unlock()
	})
	if err != nil {
		panic(fmt.Sprintf("rpcbench: %v", err))
	}

	r := Result{
		Ranks:    n,
		RPCs:     int64(n) * int64(p.RPCsPerRank),
		Seconds:  rpcNs.Seconds(),
		Checksum: sum,
	}
	var batches, ops float64
	for _, st := range stats {
		r.WireFrames += st.Counters["wire_tx_frames"]
		batches += st.Counters["agg_batches"]
		ops += st.Counters["agg_ops"]
	}
	if r.Seconds > 0 {
		r.RPCsPerSec = float64(r.RPCs) / r.Seconds
	}
	if r.RPCs > 0 {
		r.FramesPerRPC = r.WireFrames / float64(r.RPCs)
		r.AllocsPerRPC = float64(mallocs) / float64(r.RPCs)
	}
	if p.Aggregate && batches > 0 {
		r.OpsPerBatch = ops / batches
	}
	return r
}

func xor64(a, b uint64) uint64 { return a ^ b }
