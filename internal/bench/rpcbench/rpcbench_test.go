package rpcbench

import "testing"

// TestBatchingReducesFrames is the experiment's headline claim as a
// hard assertion: with the aggregation plane coalescing requests and
// done-acks, each RPC must cost strictly fewer wire frames than the
// unbatched baseline — by a wide margin, not a rounding error.
func TestBatchingReducesFrames(t *testing.T) {
	const ranks, rpcs = 2, 1024
	on := Run(Params{Ranks: ranks, RPCsPerRank: rpcs, Aggregate: true, Repeats: 1})
	off := Run(Params{Ranks: ranks, RPCsPerRank: rpcs, Aggregate: false, Repeats: 1})

	if on.Checksum != off.Checksum {
		t.Fatalf("checksums differ: agg-on %#x, agg-off %#x", on.Checksum, off.Checksum)
	}
	if on.RPCs != ranks*rpcs || off.RPCs != ranks*rpcs {
		t.Fatalf("RPC counts = %d / %d, want %d", on.RPCs, off.RPCs, ranks*rpcs)
	}
	if on.FramesPerRPC <= 0 || off.FramesPerRPC <= 0 {
		t.Fatalf("frame accounting missing: on=%v off=%v", on.FramesPerRPC, off.FramesPerRPC)
	}
	// An unbatched RPC pays a request frame, its transport ack, a
	// done-ack frame and its ack; batching amortizes all four. Require
	// at least a 2x reduction — the realized ratio is far larger, but
	// age-based flushes on a stalled runner can pad a few frames.
	if on.FramesPerRPC*2 > off.FramesPerRPC {
		t.Errorf("batched RPCs cost %.3f frames each vs %.3f unbatched; want >= 2x reduction",
			on.FramesPerRPC, off.FramesPerRPC)
	}
	if on.OpsPerBatch <= 1 {
		t.Errorf("agg-on ops/batch = %.2f, want > 1", on.OpsPerBatch)
	}
}

// TestSmallestJob pins the minimum configuration and the rank guard.
func TestSmallestJob(t *testing.T) {
	r := Run(Params{Ranks: 2, RPCsPerRank: 64, Aggregate: true, Repeats: 1})
	if r.RPCs != 128 {
		t.Fatalf("RPCs = %d, want 128", r.RPCs)
	}
	defer func() {
		if recover() == nil {
			t.Error("Ranks=1 should panic (RPCs must cross the wire)")
		}
	}()
	Run(Params{Ranks: 1, RPCsPerRank: 1})
}
