package gups

import (
	"testing"

	"upcxx/internal/sim"
)

func TestAtomicVerificationZeroErrors(t *testing.T) {
	r := Run(Params{
		Ranks: 4, LogTableSize: 10, UpdatesPerRank: 500,
		Flavor: "upcxx", Machine: sim.Local, Virtual: true, Atomic: true,
	})
	if r.Errors != 0 {
		t.Fatalf("atomic GUPS verification found %d errors", r.Errors)
	}
	if r.GUPS <= 0 || r.UsecPerUpdate <= 0 {
		t.Fatalf("metrics not computed: %+v", r)
	}
}

func TestLFSRPeriodicityAndSpread(t *testing.T) {
	// The HPCC LFSR must not cycle quickly and must hit many distinct
	// table slots.
	ran := seedFor(3)
	seen := map[uint64]bool{}
	const n = 10000
	for i := 0; i < n; i++ {
		ran = nextRan(ran)
		seen[ran&1023] = true
		if ran == 0 {
			t.Fatal("LFSR collapsed to zero")
		}
	}
	if len(seen) < 1000 {
		t.Errorf("only %d of 1024 slots touched in %d steps", len(seen), n)
	}
}

func TestSeedsDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for r := 0; r < 1024; r++ {
		s := seedFor(r)
		if seen[s] {
			t.Fatalf("duplicate seed for rank %d", r)
		}
		seen[s] = true
	}
}

func TestUPCFasterAtSmallScaleGapShrinks(t *testing.T) {
	// The Fig 4 / Table IV shape: UPC beats UPC++ at small scale; the
	// relative gap narrows as network latency dominates.
	run := func(flavor string, ranks int) float64 {
		return Run(Params{
			Ranks: ranks, LogTableSize: 12, UpdatesPerRank: 200,
			Flavor: flavor, Machine: sim.Vesta, Virtual: true,
		}).UsecPerUpdate
	}
	upcSmall, upcxxSmall := run("upc", 4), run("upcxx", 4)
	upcBig, upcxxBig := run("upc", 64), run("upcxx", 64)
	if upcxxSmall <= upcSmall {
		t.Errorf("UPC++ (%v us) should be slower than UPC (%v us) at small scale", upcxxSmall, upcSmall)
	}
	gapSmall := upcxxSmall / upcSmall
	gapBig := upcxxBig / upcBig
	if gapBig >= gapSmall {
		t.Errorf("relative gap should shrink with scale: small %v, big %v", gapSmall, gapBig)
	}
}

func TestLatencyGrowsWithScale(t *testing.T) {
	// Fig 4 x-axis behaviour: per-update time rises with core count on
	// the BG/Q torus.
	small := Run(Params{Ranks: 4, LogTableSize: 12, UpdatesPerRank: 200,
		Flavor: "upcxx", Machine: sim.Vesta, Virtual: true}).UsecPerUpdate
	big := Run(Params{Ranks: 128, LogTableSize: 12, UpdatesPerRank: 200,
		Flavor: "upcxx", Machine: sim.Vesta, Virtual: true}).UsecPerUpdate
	if big <= small {
		t.Errorf("per-update time should grow with scale: %v -> %v", small, big)
	}
}
