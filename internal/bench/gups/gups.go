// Package gups implements the Random Access (GUPS) benchmark of the
// paper's §V-A (Fig 4 and Table IV): random xor updates to a globally
// shared table, the classical PGAS worst case with no data locality. Two
// flavors run the identical update loop — "upc" under the Berkeley UPC
// software profile and "upcxx" under the UPC++ library profile — so the
// measured gap is exactly the shared-access software overhead the paper
// isolates.
package gups

import (
	"upcxx/internal/core"
	"upcxx/internal/sim"
	"upcxx/internal/upc"
)

// POLY is the HPCC Random Access LFSR polynomial.
const POLY = 0x0000000000000007

// Params configures a run.
type Params struct {
	Ranks          int
	LogTableSize   int // table size = 2^LogTableSize words, distributed cyclically
	UpdatesPerRank int
	Flavor         string // "upc" or "upcxx"
	Machine        sim.Machine
	Virtual        bool
	Atomic         bool // use RMW updates (conflict-free; for verification)
}

// Result reports the benchmark's metrics in the paper's units.
type Result struct {
	Ranks         int
	Updates       int64
	Seconds       float64
	GUPS          float64 // giga-updates per second, Table IV
	UsecPerUpdate float64 // latency per update, Fig 4
	Errors        int64   // verification mismatches (Atomic runs: must be 0)
}

// Counters reports the run's metrics as named counters for the benchmark
// harness (units in the names; "updates_per_sec" is GUPS*1e9).
func (r Result) Counters() map[string]float64 {
	c := map[string]float64{
		"updates":         float64(r.Updates),
		"updates_per_sec": r.GUPS * 1e9,
		"gups":            r.GUPS,
		"usec_per_update": r.UsecPerUpdate,
	}
	if r.Errors > 0 {
		c["errors"] = float64(r.Errors)
	}
	return c
}

// SPMD is the benchmark's conduit-portable body: the HPCC update loop
// with atomic xor updates, run on an already-running rank (either an
// in-process job or one OS process of a wire job), followed by the
// involution verification (replaying the updates must restore the
// table). It returns a table checksum folded in global index order —
// atomic xor updates commute, so for a given rank count and update
// budget the checksum is identical on every conduit backend — and the
// count of verification mismatches, which must be zero.
func SPMD(me *core.Rank, logTableSize, updatesPerRank int) (checksum uint64, errors int64) {
	tableSize := uint64(1) << logTableSize
	table := core.NewSharedArray[uint64](me, int(tableSize), 1)
	local := table.LocalSlice(me)
	for k := range local {
		local[k] = uint64(k*me.Ranks() + me.ID())
	}
	me.Barrier()

	mask := tableSize - 1
	ran := seedFor(me.ID())
	for i := 0; i < updatesPerRank; i++ {
		ran = nextRan(ran)
		core.AtomicXor(me, table.Ptr(int(ran&mask)), ran)
	}
	me.Barrier()

	// Checksum the updated table: mix each (global index, value) pair and
	// xor-fold, so the result is independent of rank count partitioning
	// only through the table contents themselves.
	var sum uint64
	for k, v := range table.LocalSlice(me) {
		idx := uint64(k*me.Ranks() + me.ID())
		sum ^= Mix64(idx*0x9E3779B97F4A7C15 + v)
	}
	checksum = core.TeamReduce(me.World(), sum, func(a, b uint64) uint64 { return a ^ b })

	// Replay: xor is an involution, so the table must return to its
	// initial state, conflict-free because the updates are atomic.
	ran = seedFor(me.ID())
	for i := 0; i < updatesPerRank; i++ {
		ran = nextRan(ran)
		core.AtomicXor(me, table.Ptr(int(ran&mask)), ran)
	}
	me.Barrier()
	var bad int64
	for k, v := range table.LocalSlice(me) {
		if v != uint64(k*me.Ranks()+me.ID()) {
			bad++
		}
	}
	errors = core.TeamReduce(me.World(), bad, func(a, b int64) int64 { return a + b })
	return checksum, errors
}

// Mix64 is the splitmix64 finalizer, used to hash checksum terms (and
// by internal/spmd to derive test patterns).
func Mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// nextRan advances the HPCC LFSR.
func nextRan(ran uint64) uint64 {
	if int64(ran) < 0 {
		return (ran << 1) ^ POLY
	}
	return ran << 1
}

// seedFor gives rank r a distinct nonzero starting value.
func seedFor(r int) uint64 {
	s := uint64(r)*0x9E3779B97F4A7C15 + 1
	for i := 0; i < 8; i++ {
		s = nextRan(s) ^ (s >> 7) ^ 0xA5A5A5A5A5A5A5A5
	}
	if s == 0 {
		s = 1
	}
	return s
}

// Run executes the benchmark and returns its metrics.
func Run(p Params) Result {
	cfg := core.Config{
		Ranks:   p.Ranks,
		Machine: p.Machine,
		SW:      sim.SWUPCXX,
		Virtual: p.Virtual,
	}
	if p.Flavor == "upc" {
		cfg = upc.Config(p.Ranks, p.Machine, p.Virtual)
	}
	tableSize := uint64(1) << p.LogTableSize
	// Size segments for the local share plus slack.
	perRank := int(tableSize)/p.Ranks + 1
	cfg.SegmentBytes = perRank*8 + (1 << 16)

	var errors int64
	st := core.Run(cfg, func(me *core.Rank) {
		// shared uint64_t Table[TableSize] — cyclic distribution as in
		// the paper's shared_array<uint64_t> Table(TableSize).
		table := core.NewSharedArray[uint64](me, int(tableSize), 1)

		// Initialize Table[i] = i over the local portion.
		local := table.LocalSlice(me)
		for k := range local {
			// Local element k of rank r is global index k*P + r (cyclic).
			local[k] = uint64(k*me.Ranks() + me.ID())
		}
		me.Barrier()

		mask := tableSize - 1
		ran := seedFor(me.ID())
		for i := 0; i < p.UpdatesPerRank; i++ {
			ran = nextRan(ran)
			idx := int(ran & mask)
			if p.Atomic {
				core.AtomicXor(me, table.Ptr(idx), ran)
				me.Lapse(me.Model().SharedAccessCost())
			} else {
				// The paper's Table[ran & (TableSize-1)] ^= ran: a
				// read-modify-write through the shared-array proxy
				// (one get + one put, each through index translation).
				v := table.Get(me, idx)
				table.Set(me, idx, v^ran)
			}
		}
		me.Barrier()

		// HPCC-style verification: replay the same updates (xor is an
		// involution) and count cells that fail to return to their
		// initial value. Racy non-atomic runs may show a small error
		// count; atomic runs must show zero.
		if p.Atomic {
			ran = seedFor(me.ID())
			for i := 0; i < p.UpdatesPerRank; i++ {
				ran = nextRan(ran)
				idx := int(ran & mask)
				core.AtomicXor(me, table.Ptr(idx), ran)
			}
			me.Barrier()
			bad := int64(0)
			for k, v := range table.LocalSlice(me) {
				if v != uint64(k*me.Ranks()+me.ID()) {
					bad++
				}
			}
			total := core.TeamReduce(me.World(), bad, func(a, b int64) int64 { return a + b })
			if me.ID() == 0 {
				errors = total
			}
			me.Barrier()
		}
	})

	updates := int64(p.UpdatesPerRank) * int64(p.Ranks)
	// The timed region is the update loop; in virtual mode the
	// initialization and verification phases are cheap relative to the
	// fine-grained update traffic, and the barrier structure isolates
	// them well enough for the paper's two significant digits.
	secs := st.Seconds(p.Virtual)
	r := Result{
		Ranks:   p.Ranks,
		Updates: updates,
		Seconds: secs,
		Errors:  errors,
	}
	if secs > 0 {
		if p.Atomic {
			// Two timed passes when verifying.
			secs /= 2
		}
		r.GUPS = float64(updates) / secs / 1e9
		r.UsecPerUpdate = secs * 1e6 / float64(p.UpdatesPerRank)
	}
	return r
}
