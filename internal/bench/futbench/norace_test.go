//go:build !race

package futbench

const raceEnabled = false
