package futbench

import "testing"

// TestFuturesOverlapBeatsBlocking runs both modes over the real TCP
// conduit and asserts the pipelined futures mode is faster than the
// round-trip-per-read baseline. The margin is deliberately loose
// (1.5x where the typical win is far larger) so shared-runner noise
// cannot flake it; correctness is asserted inside Run via the
// reference fold.
func TestFuturesOverlapBeatsBlocking(t *testing.T) {
	p := Params{Ranks: 2, ReadsPerRank: 2048}

	p.Futures = false
	blocking := Run(p)
	p.Futures = true
	futures := Run(p)

	if blocking.Checksum != futures.Checksum {
		t.Fatalf("modes disagree: blocking %016x, futures %016x",
			blocking.Checksum, futures.Checksum)
	}
	t.Logf("blocking: %.3gs (%.3g reads/s), futures: %.3gs (%.3g reads/s), win %.1fx",
		blocking.Seconds, blocking.ReadsPerSec, futures.Seconds, futures.ReadsPerSec,
		blocking.Seconds/futures.Seconds)
	// Race instrumentation inflates per-op CPU cost until it dominates
	// the latency the futures mode wins back; only the plain build
	// asserts the margin (typical win is 2.5-4x, asserted at 1.5x).
	if !raceEnabled && futures.Seconds*1.5 > blocking.Seconds {
		t.Errorf("futures mode (%.3gs) not at least 1.5x faster than blocking (%.3gs)",
			futures.Seconds, blocking.Seconds)
	}
	// Both modes move one get request/reply pair per read; the win is
	// pipelining, not message reduction. Guard the frame accounting so
	// a regression to eager blocking inside ReadAsync is visible.
	if futures.FramesPerOp > blocking.FramesPerOp+0.5 {
		t.Errorf("futures mode sends %.2f frames/op vs blocking %.2f",
			futures.FramesPerOp, blocking.FramesPerOp)
	}
}

func TestSingleRankDegenerate(t *testing.T) {
	r := Run(Params{Ranks: 1, ReadsPerRank: 256, Futures: true, Repeats: 1})
	if r.Reads != 256 {
		t.Fatalf("reads = %d, want 256", r.Reads)
	}
}
