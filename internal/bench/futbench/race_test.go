//go:build race

package futbench

// raceEnabled relaxes the wall-clock overlap assertion: race
// instrumentation inflates per-op CPU cost until it dominates the
// round-trip latency the futures mode wins back.
const raceEnabled = true
