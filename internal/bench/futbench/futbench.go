// Package futbench measures the futures-first completion model on a
// real wire: chained non-blocking reads (ReadAsync + Then) against
// blocking Reads over the TCP conduit (spmd.RunWireLocal — every rank
// its own endpoint, segment and conduit over localhost sockets).
// Ranks pair up as reader and server: even ranks fold their right
// neighbor's table, odd ranks serve — the one-sided-access shape where
// latency, not duplex throughput, dominates. The blocking loop pays
// one full round-trip stall per element; the futures loop issues every
// read up front and folds each value from progress dispatch as its
// reply lands, so the requests pipeline on the wire. Both modes fold
// the same accumulator and are verified against a pure reference, so
// the speedup cannot come from dropped work. Like dhtbench this
// benchmark is wall-clock, with frame counts from the conduit's
// per-handler counters.
package futbench

import (
	"fmt"
	"sync"
	"time"

	"upcxx/internal/bench/gups"
	"upcxx/internal/core"
	"upcxx/internal/spmd"
)

// Params configures a run.
type Params struct {
	Ranks        int
	ReadsPerRank int
	// Futures selects the ReadAsync+Then chains; false is the blocking-
	// Read baseline.
	Futures bool
	// Repeats runs the whole job this many times and reports the
	// fastest read phase (default 3), suppressing scheduler noise as in
	// dhtbench.
	Repeats int
}

// Result reports the run's metrics.
type Result struct {
	Ranks       int
	Reads       int64   // total reads across ranks
	Seconds     float64 // wall seconds of the read phase (max over ranks)
	ReadsPerSec float64
	WireFrames  float64 // total frames sent across ranks, whole run
	FramesPerOp float64
	Checksum    uint64 // folded accumulator, identical in both modes
}

// Counters reports the run's metrics as named counters for the harness.
func (r Result) Counters() map[string]float64 {
	return map[string]float64{
		"reads":          float64(r.Reads),
		"reads_per_sec":  r.ReadsPerSec,
		"wire_tx_frames": r.WireFrames,
		"frames_per_op":  r.FramesPerOp,
	}
}

// cellVal is the value rank r publishes in cell i.
func cellVal(rank, i int) uint64 { return gups.Mix64(uint64(rank)<<32 + uint64(i)) }

// expected folds rank `rank`'s accumulator over its neighbor's cells —
// the pure reference every reader must reproduce.
func expected(n, rank, reads int) uint64 {
	nbr := (rank + 1) % n
	var acc uint64
	for i := 0; i < reads; i++ {
		acc ^= gups.Mix64(cellVal(nbr, i) + uint64(i))
	}
	return acc
}

// isReader reports whether this rank folds (even ranks; a lone rank
// reads its own table through the local fast path).
func isReader(n, rank int) bool { return n == 1 || rank%2 == 0 }

// Run executes the benchmark: every rank publishes ReadsPerRank cells,
// then reads its right neighbor's cells — blocking or futures-chained —
// and folds them. Each rank's fold is verified against the reference;
// a dropped or reordered read panics rather than reporting plausible
// throughput.
func Run(p Params) Result {
	repeats := p.Repeats
	if repeats <= 0 {
		repeats = 3
	}
	var best Result
	for rep := 0; rep < repeats; rep++ {
		r := runOnce(p)
		if rep == 0 || r.Seconds < best.Seconds {
			best = r
		}
	}
	return best
}

func runOnce(p Params) Result {
	var (
		mu     sync.Mutex
		readNs time.Duration
		sum    uint64
	)
	segBytes := p.ReadsPerRank*8 + (1 << 17)
	stats, err := spmd.RunWireLocal(p.Ranks, segBytes, core.Config{}, func(me *core.Rank) {
		n := me.Ranks()
		tbl := core.Allocate[uint64](me, me.ID(), p.ReadsPerRank)
		for i := 0; i < p.ReadsPerRank; i++ {
			core.Write(me, tbl.Add(i), cellVal(me.ID(), i))
		}
		dir := core.TeamAllGather(me.World(), tbl)
		me.Barrier()

		nbr := dir[(me.ID()+1)%n]
		var acc uint64
		var dt time.Duration
		if isReader(n, me.ID()) {
			t0 := time.Now()
			if p.Futures {
				core.Finish(me, func() {
					for i := 0; i < p.ReadsPerRank; i++ {
						i := i
						f := core.ReadAsync(me, nbr.Add(i))
						core.Then(f, func(v uint64) struct{} {
							acc ^= gups.Mix64(v + uint64(i))
							return struct{}{}
						})
					}
				})
			} else {
				for i := 0; i < p.ReadsPerRank; i++ {
					acc ^= gups.Mix64(core.Read(me, nbr.Add(i)) + uint64(i))
				}
			}
			dt = time.Since(t0)
		}
		// Servers sit in the barrier, answering gets from their reader.
		me.Barrier()

		if isReader(n, me.ID()) {
			if want := expected(n, me.ID(), p.ReadsPerRank); acc != want {
				panic(fmt.Sprintf("futbench: rank %d fold %016x, reference %016x (futures=%v)",
					me.ID(), acc, want, p.Futures))
			}
		}
		mu.Lock()
		if dt > readNs {
			readNs = dt
		}
		if me.ID() == 0 {
			sum = acc
		}
		mu.Unlock()
	})
	if err != nil {
		panic(fmt.Sprintf("futbench: %v", err))
	}

	readers := (p.Ranks + 1) / 2
	if p.Ranks == 1 {
		readers = 1
	}
	r := Result{
		Ranks:    p.Ranks,
		Reads:    int64(readers) * int64(p.ReadsPerRank),
		Seconds:  readNs.Seconds(),
		Checksum: sum,
	}
	for _, st := range stats {
		r.WireFrames += st.Counters["wire_tx_frames"]
	}
	if r.Seconds > 0 {
		r.ReadsPerSec = float64(r.Reads) / r.Seconds
	}
	if r.Reads > 0 {
		r.FramesPerOp = r.WireFrames / float64(r.Reads)
	}
	return r
}
