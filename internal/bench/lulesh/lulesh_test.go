package lulesh

import (
	"math"
	"testing"

	"upcxx/internal/sim"
)

func TestDirs26(t *testing.T) {
	if len(dirs26) != 26 {
		t.Fatalf("got %d directions", len(dirs26))
	}
	for i, d := range dirs26 {
		o := dirs26[opposite(i)]
		if o.dx != -d.dx || o.dy != -d.dy || o.dz != -d.dz {
			t.Fatalf("opposite(%d): %v vs %v", i, d, o)
		}
	}
}

func TestBoundaryCounts(t *testing.T) {
	d := NewDomain(0, 0, 0, 2, 4) // N = 5
	faces, edges, corners := 0, 0, 0
	for _, dd := range dirs26 {
		switch c := d.boundaryCount(dd); c {
		case 25:
			faces++
		case 5:
			edges++
		case 1:
			corners++
		default:
			t.Fatalf("unexpected boundary count %d for %v", c, dd)
		}
	}
	if faces != 6 || edges != 12 || corners != 8 {
		t.Fatalf("faces %d edges %d corners %d", faces, edges, corners)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	a := NewDomain(0, 0, 0, 2, 3)
	for i := range a.fx {
		a.fx[i] = float64(i)
		a.fy[i] = float64(2 * i)
		a.fz[i] = float64(3 * i)
	}
	dd := dir{1, 0, 0}
	buf := a.pack(dd, a.forceFields(), nil)
	if len(buf) != a.boundaryCount(dd)*3 {
		t.Fatalf("pack length %d", len(buf))
	}
	before := append([]float64(nil), a.fx...)
	a.unpackAdd(dd, a.forceFields(), buf)
	// Boundary nodes doubled, others untouched.
	k := 0
	a.forBoundary(dd, func(ni int) {
		if a.fx[ni] != 2*before[ni] {
			t.Fatalf("node %d not doubled", ni)
		}
		k++
	})
}

func TestMassConservation(t *testing.T) {
	// After the mass exchange every rank's nodal masses sum to more than
	// its own elements' mass (shared nodes), but the global sum of
	// element masses is exact: rho0 * volume of the unit cube.
	r := Run(Params{Side: 2, E: 3, Iters: 1, Flavor: "upcxx",
		Machine: sim.Local, Virtual: true})
	_ = r
	// Direct check at domain level: one domain alone, all corners.
	d := NewDomain(0, 0, 0, 1, 4)
	sum := 0.0
	for _, m := range d.mass {
		sum += m
	}
	want := rho0 * 1.0 // whole cube
	if math.Abs(sum-want) > 1e-12 {
		t.Errorf("single-domain mass %v, want %v", sum, want)
	}
}

func TestShockActuallyPropagates(t *testing.T) {
	// The Sedov deposition must drive motion: kinetic energy appears and
	// energy spreads beyond the origin element.
	r := Run(Params{Side: 2, E: 4, Iters: 30, Flavor: "upcxx",
		Machine: sim.Local, Virtual: true})
	if r.Energy <= 0 {
		t.Fatal("no energy in the system")
	}
	// Energy roughly conserved. The explicit first-order integrator
	// gains some energy (LULESH proper uses a staggered leapfrog with
	// half-step pressures); what matters here is boundedness, not
	// shock-accuracy — the experiment measures communication.
	if r.Energy < 2.0 || r.Energy > 4.0 {
		t.Errorf("total energy %v drifted far from deposited 3.0", r.Energy)
	}
}

func TestMPIAndUPCXXBitIdentical(t *testing.T) {
	// Same arithmetic, same deterministic unpack order: the two flavors
	// must agree bit-for-bit (paper: the UPC++ port "retains much of its
	// original structure").
	a := Run(Params{Side: 2, E: 4, Iters: 10, Flavor: "upcxx",
		Machine: sim.Edison, Virtual: true})
	b := Run(Params{Side: 2, E: 4, Iters: 10, Flavor: "mpi",
		Machine: sim.Edison, Virtual: true})
	if a.Checksum != b.Checksum {
		t.Fatalf("checksums differ: upcxx %v mpi %v", a.Checksum, b.Checksum)
	}
	if a.Energy != b.Energy {
		t.Fatalf("energies differ: %v vs %v", a.Energy, b.Energy)
	}
}

func TestOneSidedBeatsTwoSided(t *testing.T) {
	// Fig 8 at scale: the UPC++ one-sided exchange outruns MPI's
	// two-sided matching. At 27 ranks the gap is small but must have
	// the right sign.
	a := Run(Params{Side: 3, E: 4, Iters: 8, Flavor: "upcxx",
		Machine: sim.Edison, Virtual: true})
	b := Run(Params{Side: 3, E: 4, Iters: 8, Flavor: "mpi",
		Machine: sim.Edison, Virtual: true})
	if a.FOM <= b.FOM {
		t.Errorf("UPC++ FOM %v should exceed MPI FOM %v", a.FOM, b.FOM)
	}
}

func TestSymmetryOfOctant(t *testing.T) {
	// The deposition sits at the origin corner of a symmetric octant:
	// after several steps the energy field must be invariant under
	// coordinate permutation (single domain; no rank decomposition).
	d := NewDomain(0, 0, 0, 1, 6)
	for iter := 0; iter < 20; iter++ {
		d.calcForces()
		d.advanceNodes()
		_, bound := d.updateElements()
		d.dt = math.Min(bound, d.dt*1.1)
	}
	for ex := 0; ex < d.E; ex++ {
		for ey := 0; ey < d.E; ey++ {
			for ez := 0; ez < d.E; ez++ {
				e1 := d.e[d.elemIdx(ex, ey, ez)]
				e2 := d.e[d.elemIdx(ey, ex, ez)]
				e3 := d.e[d.elemIdx(ez, ey, ex)]
				if math.Abs(e1-e2) > 1e-9*(math.Abs(e1)+1e-30) ||
					math.Abs(e1-e3) > 1e-9*(math.Abs(e1)+1e-30) {
					t.Fatalf("energy field asymmetric at (%d,%d,%d): %v %v %v",
						ex, ey, ez, e1, e2, e3)
				}
			}
		}
	}
}

func TestDecompositionInvariance(t *testing.T) {
	// The same global mesh cut 1-way and 8-ways must produce the same
	// physics (up to FP reassociation in the reduce; checksums compare
	// with tolerance).
	a := Run(Params{Side: 1, E: 8, Iters: 10, Flavor: "upcxx",
		Machine: sim.Local, Virtual: true})
	b := Run(Params{Side: 2, E: 4, Iters: 10, Flavor: "upcxx",
		Machine: sim.Local, Virtual: true})
	if math.Abs(a.Energy-b.Energy) > 1e-9*math.Abs(a.Energy) {
		t.Fatalf("decomposition changed energy: %v vs %v", a.Energy, b.Energy)
	}
}
