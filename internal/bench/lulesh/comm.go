package lulesh

import (
	"upcxx/internal/core"
	"upcxx/internal/mpi"
)

// dir is one of the 26 neighbor directions of a rank in the 3-D rank
// grid. LULESH's hallmark pattern: faces (N^2 shared nodes), edges (N)
// and corners (1) all participate, and the data is non-contiguous in two
// of the three dimensions, forcing pack/unpack (paper §V-E).
type dir struct{ dx, dy, dz int }

// dirs26 lists the neighbor directions in a fixed order; both the MPI
// and UPC++ flavors unpack in this order, so their floating-point
// accumulations are bit-identical.
var dirs26 = func() []dir {
	var ds []dir
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for dz := -1; dz <= 1; dz++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				ds = append(ds, dir{dx, dy, dz})
			}
		}
	}
	return ds
}()

// opposite returns the index of the mirrored direction.
func opposite(di int) int { return len(dirs26) - 1 - di }

// sel returns the node-index range along one axis for a direction
// component: the low plane, the high plane, or the full extent.
func sel(comp, n int) (lo, hi int) {
	switch {
	case comp < 0:
		return 0, 1
	case comp > 0:
		return n - 1, n
	default:
		return 0, n
	}
}

// boundaryCount returns the number of shared nodes with the neighbor in
// direction d.
func (d *Domain) boundaryCount(dd dir) int {
	lx, hx := sel(dd.dx, d.N)
	ly, hy := sel(dd.dy, d.N)
	lz, hz := sel(dd.dz, d.N)
	return (hx - lx) * (hy - ly) * (hz - lz)
}

// forBoundary visits the shared node set for direction dd in a fixed
// row-major order; the neighbor's mirrored set visits corresponding
// nodes in the same order.
func (d *Domain) forBoundary(dd dir, f func(ni int)) {
	lx, hx := sel(dd.dx, d.N)
	ly, hy := sel(dd.dy, d.N)
	lz, hz := sel(dd.dz, d.N)
	for ix := lx; ix < hx; ix++ {
		for iy := ly; iy < hy; iy++ {
			for iz := lz; iz < hz; iz++ {
				f(d.nodeIdx(ix, iy, iz))
			}
		}
	}
}

// neighborRank returns the linear rank of the neighbor in direction dd,
// or -1 at the domain boundary.
func (d *Domain) neighborRank(dd dir) int {
	nx, ny, nz := d.rx+dd.dx, d.ry+dd.dy, d.rz+dd.dz
	if nx < 0 || ny < 0 || nz < 0 || nx >= d.side || ny >= d.side || nz >= d.side {
		return -1
	}
	return (nx*d.side+ny)*d.side + nz
}

// fields selects which nodal arrays an exchange accumulates.
type fields struct {
	arrs []([]float64)
}

func (d *Domain) forceFields() fields { return fields{[][]float64{d.fx, d.fy, d.fz}} }
func (d *Domain) massFields() fields  { return fields{[][]float64{d.mass}} }

// pack gathers the boundary values of the given fields for direction dd.
func (d *Domain) pack(dd dir, fs fields, buf []float64) []float64 {
	buf = buf[:0]
	for _, a := range fs.arrs {
		d.forBoundary(dd, func(ni int) { buf = append(buf, a[ni]) })
	}
	return buf
}

// unpackAdd accumulates received boundary contributions.
func (d *Domain) unpackAdd(dd dir, fs fields, buf []float64) {
	k := 0
	for _, a := range fs.arrs {
		d.forBoundary(dd, func(ni int) { a[ni] += buf[k]; k++ })
	}
}

// exchangeMPI performs one 26-neighbor accumulate with two-sided
// messaging: post all receives, send all packs, wait, then unpack in
// direction order (the paper's MPI_Isend/MPI_Irecv structure).
func exchangeMPI(me *core.Rank, c *mpi.Comm, d *Domain, fs fields, tagBase int) {
	nf := len(fs.arrs)
	type slot struct {
		di  int
		buf []float64
	}
	var reqs []*mpi.Request
	var recvs []slot
	for di, dd := range dirs26 {
		if d.neighborRank(dd) < 0 {
			continue
		}
		buf := make([]float64, d.boundaryCount(dd)*nf)
		recvs = append(recvs, slot{di, buf})
		reqs = append(reqs, mpi.Irecv(c, d.neighborRank(dd), tagBase+opposite(di), buf))
	}
	sendBuf := make([]float64, 0, d.N*d.N*nf)
	for di, dd := range dirs26 {
		nb := d.neighborRank(dd)
		if nb < 0 {
			continue
		}
		sendBuf = d.pack(dd, fs, sendBuf)
		out := make([]float64, len(sendBuf))
		copy(out, sendBuf)
		me.MemWork(float64(len(out) * 8)) // pack cost
		reqs = append(reqs, mpi.Isend(c, nb, tagBase+di, out))
	}
	c.Wait(reqs...)
	for _, s := range recvs {
		d.unpackAdd(dirs26[s.di], fs, s.buf)
		me.MemWork(float64(len(s.buf) * 8)) // unpack cost
	}
	// No barrier: two-sided message semantics already order the data;
	// alternating tag bases keep adjacent iterations from matching each
	// other. The one-sided flavor pays a barrier here instead — that is
	// the protocol tradeoff Fig 8 measures.
}

// landing is the UPC++ flavor's pre-registered receive area: one segment
// buffer per direction, written by the corresponding neighbor with
// one-sided non-blocking puts.
type landing struct {
	bufs [26]core.GlobalPtr[float64]
	n    [26]int
}

// newLanding allocates this rank's landing buffers — double-buffered so
// that iteration k+1's puts cannot overwrite buffers iteration k has not
// yet unpacked (the standard trick that removes one barrier per
// exchange) — and gathers everyone's (the one-time setup one-sided
// communication needs).
func newLanding(me *core.Rank, d *Domain, maxFields int) ([2][]landing, [2]landing) {
	var mine [2]landing
	for set := 0; set < 2; set++ {
		for di, dd := range dirs26 {
			if d.neighborRank(dd) < 0 {
				continue
			}
			n := d.boundaryCount(dd) * maxFields
			mine[set].bufs[di] = core.Allocate[float64](me, me.ID(), n)
			mine[set].n[di] = n
		}
	}
	var all [2][]landing
	all[0] = core.TeamAllGather(me.World(), mine[0])
	me.Barrier()
	all[1] = core.TeamAllGather(me.World(), mine[1])
	me.Barrier()
	return all, mine
}

// exchangeUPCXX performs the same accumulate with one-sided puts into
// the neighbors' landing buffers (set chosen by iteration parity), a
// single handle-less fence, and one barrier (the paper's async_copy +
// async_copy_fence structure, §V-E).
//
// WriteSliceAsync moves the data eagerly under the hood, so reusing
// sendBuf across directions is safe here; a real UPC++ program would
// keep one buffer per direction until the fence.
func exchangeUPCXX(me *core.Rank, d *Domain, fs fields, all []landing, mine landing) {
	nf := len(fs.arrs)
	sendBuf := make([]float64, 0, d.N*d.N*nf)
	for di, dd := range dirs26 {
		nb := d.neighborRank(dd)
		if nb < 0 {
			continue
		}
		sendBuf = d.pack(dd, fs, sendBuf)
		me.MemWork(float64(len(sendBuf) * 8))
		// My direction di lands in the neighbor's opposite(di) buffer.
		core.WriteSliceAsync(me, all[nb].bufs[opposite(di)], sendBuf, nil)
	}
	core.AsyncCopyFence(me)
	me.Barrier() // all puts have landed everywhere
	for di, dd := range dirs26 {
		if d.neighborRank(dd) < 0 {
			continue
		}
		cnt := d.boundaryCount(dd) * nf
		buf := core.LocalSlice(me, mine.bufs[di], cnt)
		d.unpackAdd(dd, fs, buf)
		me.MemWork(float64(cnt * 8))
	}
}
