package lulesh

import (
	"math"

	"upcxx/internal/core"
	"upcxx/internal/mpi"
	"upcxx/internal/sim"
)

// Params configures a run. Ranks = Side^3, matching the application's
// perfect-cube requirement (Fig 8's x-axis values are all cubes).
type Params struct {
	Side    int // rank-grid edge; Ranks = Side^3
	E       int // elements per dimension per rank (weak scaling unit)
	Iters   int
	Flavor  string // "mpi" or "upcxx"
	Machine sim.Machine
	Virtual bool

	// ComputeScale multiplies the modeled compute charges (0 = 1). The
	// proxy's physics runs ~650 flops/zone/iter; production LULESH with
	// full hourglass control and material models runs several thousand.
	// The harness raises this to model production zone cost while the
	// proxy's real arithmetic still verifies the exchanged data.
	ComputeScale float64
}

// Result reports the metrics of Fig 8.
type Result struct {
	Ranks    int
	Seconds  float64
	FOM      float64 // zones/second, the paper's figure of merit
	Checksum float64 // bit-identical between flavors
	Energy   float64 // total internal + kinetic at the end
}

// Counters reports the run's metrics as named counters for the benchmark
// harness; "zones_per_sec" is the paper's FOM.
func (r Result) Counters() map[string]float64 {
	return map[string]float64{
		"zones_per_sec": r.FOM,
		"checksum":      r.Checksum,
		"energy":        r.Energy,
	}
}

// Run executes the proxy app.
func Run(p Params) Result {
	ranks := p.Side * p.Side * p.Side
	n := p.E + 1
	// Landing buffers: 3 fields x (6 faces N^2 + 12 edges N + 8 corners)
	// doubles, with slack; kept tight so 32K-rank jobs fit in memory.
	boundary := 6*n*n + 12*n + 8
	cfg := core.Config{
		Ranks:        ranks,
		Machine:      p.Machine,
		SW:           sim.SWUPCXX,
		Virtual:      p.Virtual,
		SegmentBytes: 3*8*boundary*2 + (1 << 14),
	}
	if p.Flavor == "mpi" {
		cfg.SW = sim.SWMPI
	}

	scale := p.ComputeScale
	if scale <= 0 {
		scale = 1
	}
	var checksum, energy float64
	st := core.Run(cfg, func(me *core.Rank) {
		id := me.ID()
		rx, ry, rz := id/(p.Side*p.Side), (id/p.Side)%p.Side, id%p.Side
		d := NewDomain(rx, ry, rz, p.Side, p.E)

		var comm *mpi.Comm
		var all [2][]landing
		var mine [2]landing
		if p.Flavor == "mpi" {
			comm = mpi.New(me)
		} else {
			all, mine = newLanding(me, d, 3)
		}
		me.Barrier()

		// One-time nodal mass accumulation across rank boundaries (as
		// in LULESH's SetupCommBuffers/initial exchange).
		if p.Flavor == "mpi" {
			exchangeMPI(me, comm, d, d.massFields(), 1000)
		} else {
			exchangeUPCXX(me, d, d.massFields(), all[0], mine[0])
			me.Barrier() // mass landing set 0 is reused by iteration 0
		}
		me.Barrier()

		// Memory traffic of one Lagrange step over the field arrays
		// (nodal: 10 fields touched ~2x; element: 5 fields ~2x).
		nodal := float64(d.N * d.N * d.N)
		elems := float64(d.E * d.E * d.E)
		memPerIter := (nodal*10 + elems*5) * 8 * 2

		for iter := 0; iter < p.Iters; iter++ {
			// Lagrange nodal phase: element stress -> nodal forces.
			me.Work(scale * d.calcForces())

			// The hallmark 26-neighbor force accumulation.
			if p.Flavor == "mpi" {
				exchangeMPI(me, comm, d, d.forceFields(), 2000+iter%2)
			} else {
				exchangeUPCXX(me, d, d.forceFields(), all[iter%2], mine[iter%2])
			}

			// Integrate nodes, update elements, reduce the timestep.
			me.Work(scale * d.advanceNodes())
			flops, dtBound := d.updateElements()
			me.Work(scale * flops)
			me.MemWork(scale * memPerIter)
			dtNew := core.TeamReduce(me.World(), dtBound, math.Min)
			d.dt = math.Min(dtNew, d.dt*1.1) // LULESH-style dt growth cap
		}
		me.Barrier()

		inner, kin := d.totalEnergy()
		eTot := core.TeamReduce(me.World(), inner+kin, func(a, b float64) float64 { return a + b })
		cs := core.TeamReduce(me.World(), d.checksum(), func(a, b float64) float64 { return a + b })
		if me.ID() == 0 {
			checksum = cs
			energy = eTot
		}
		me.Barrier()
	})

	secs := st.Seconds(p.Virtual)
	zones := float64(ranks) * float64(p.E*p.E*p.E)
	res := Result{Ranks: ranks, Seconds: secs, Checksum: checksum, Energy: energy}
	if secs > 0 {
		res.FOM = zones * float64(p.Iters) / secs
	}
	return res
}
