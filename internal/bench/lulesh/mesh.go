// Package lulesh implements the paper's §V-E application study (Fig 8):
// a Lagrange-leapfrog shock-hydrodynamics proxy in the mold of LULESH,
// weak-scaled over a perfect-cube number of ranks, whose distinguishing
// communication pattern is a 26-neighbor exchange of non-contiguous
// boundary data with explicit packing and unpacking.
//
// The physics is a simplified — but numerically live — staggered-mesh
// compressible hydro: a Sedov-like energy deposition at the global
// origin corner drives a shock outward through an ideal-gas EOS with
// artificial viscosity; pressure gradients scatter to nodal forces,
// nodes integrate velocity and position, elements update volume and
// energy, and the timestep obeys a global Courant reduction. What the
// experiment measures — message sizes, the 26-neighbor pattern, the
// pack/unpack work and the two-sided vs one-sided protocols — is
// preserved exactly; see DESIGN.md §4 for the substitution argument.
package lulesh

import "math"

const (
	gammaEOS = 1.4
	rho0     = 1.0
	eFloor   = 1e-12
	pFloor   = 0.0
	qCoef    = 1.5
	courant  = 0.25
	dtMax    = 1e-2
)

// Domain is one rank's mesh: E elements per dimension, N = E+1 nodes per
// dimension, plus this rank's coordinates in the rank cube.
type Domain struct {
	E, N       int
	rx, ry, rz int // rank coordinates in the n^3 rank grid
	side       int // rank grid edge n
	h          float64

	// Nodal fields, length N^3.
	x, y, z    []float64 // coordinates
	xd, yd, zd []float64 // velocities
	fx, fy, fz []float64 // forces
	mass       []float64

	// Element fields, length E^3.
	e, p, q, v, volo []float64

	dt float64
}

// NewDomain builds rank (rx,ry,rz) of an n^3 rank grid with E elements
// per dimension per rank.
func NewDomain(rx, ry, rz, side, E int) *Domain {
	N := E + 1
	d := &Domain{
		E: E, N: N, rx: rx, ry: ry, rz: rz, side: side,
		h:  1.0 / float64(side*E),
		dt: 1e-4,
	}
	nn := N * N * N
	ne := E * E * E
	d.x = make([]float64, nn)
	d.y = make([]float64, nn)
	d.z = make([]float64, nn)
	d.xd = make([]float64, nn)
	d.yd = make([]float64, nn)
	d.zd = make([]float64, nn)
	d.fx = make([]float64, nn)
	d.fy = make([]float64, nn)
	d.fz = make([]float64, nn)
	d.mass = make([]float64, nn)
	d.e = make([]float64, ne)
	d.p = make([]float64, ne)
	d.q = make([]float64, ne)
	d.v = make([]float64, ne)
	d.volo = make([]float64, ne)

	for ix := 0; ix < N; ix++ {
		for iy := 0; iy < N; iy++ {
			for iz := 0; iz < N; iz++ {
				i := d.nodeIdx(ix, iy, iz)
				d.x[i] = float64(rx*E+ix) * d.h
				d.y[i] = float64(ry*E+iy) * d.h
				d.z[i] = float64(rz*E+iz) * d.h
			}
		}
	}
	vol := d.h * d.h * d.h
	for ei := range d.e {
		d.v[ei] = 1
		d.volo[ei] = vol
	}
	// Lump element mass onto corner nodes (partial sums; boundary
	// contributions are accumulated across ranks by the mass exchange).
	corner := rho0 * vol / 8
	for ex := 0; ex < E; ex++ {
		for ey := 0; ey < E; ey++ {
			for ez := 0; ez < E; ez++ {
				d.forEachCorner(ex, ey, ez, func(ni int) {
					d.mass[ni] += corner
				})
			}
		}
	}
	// Sedov-like deposition: the global origin-corner element.
	if rx == 0 && ry == 0 && rz == 0 {
		d.e[0] = 3.0 // total deposited energy (arbitrary units)
		d.p[0] = (gammaEOS - 1) * rho0 * d.e[0] / vol
	}
	return d
}

func (d *Domain) nodeIdx(ix, iy, iz int) int { return (ix*d.N+iy)*d.N + iz }
func (d *Domain) elemIdx(ex, ey, ez int) int { return (ex*d.E+ey)*d.E + ez }

// forEachCorner visits the 8 corner node indices of an element.
func (d *Domain) forEachCorner(ex, ey, ez int, f func(ni int)) {
	for cx := 0; cx <= 1; cx++ {
		for cy := 0; cy <= 1; cy++ {
			for cz := 0; cz <= 1; cz++ {
				f(d.nodeIdx(ex+cx, ey+cy, ez+cz))
			}
		}
	}
}

// calcForces zeroes the force arrays and scatters element stress to the
// corner nodes (the CalcForceForNodes phase). The element is treated as a
// near-axis-aligned hex: stress sigma = -(p+q) acts across the three face
// pairs, whose areas come from averaged edge lengths.
func (d *Domain) calcForces() float64 {
	for i := range d.fx {
		d.fx[i], d.fy[i], d.fz[i] = 0, 0, 0
	}
	flops := 0.0
	for ex := 0; ex < d.E; ex++ {
		for ey := 0; ey < d.E; ey++ {
			for ez := 0; ez < d.E; ez++ {
				ei := d.elemIdx(ex, ey, ez)
				sigma := -(d.p[ei] + d.q[ei])
				if sigma == 0 {
					continue
				}
				dx, dy, dz := d.elemEdges(ex, ey, ez)
				// Face areas; each face's force splits over 4 nodes.
				fxc := sigma * dy * dz / 4
				fyc := sigma * dx * dz / 4
				fzc := sigma * dx * dy / 4
				for cx := 0; cx <= 1; cx++ {
					sx := float64(2*cx - 1)
					for cy := 0; cy <= 1; cy++ {
						sy := float64(2*cy - 1)
						for cz := 0; cz <= 1; cz++ {
							sz := float64(2*cz - 1)
							ni := d.nodeIdx(ex+cx, ey+cy, ez+cz)
							d.fx[ni] += sx * fxc
							d.fy[ni] += sy * fyc
							d.fz[ni] += sz * fzc
						}
					}
				}
				flops += 350 // hourglass control etc. in full LULESH
			}
		}
	}
	return flops
}

// elemEdges returns the averaged edge lengths of an element.
func (d *Domain) elemEdges(ex, ey, ez int) (dx, dy, dz float64) {
	n000 := d.nodeIdx(ex, ey, ez)
	n100 := d.nodeIdx(ex+1, ey, ez)
	n010 := d.nodeIdx(ex, ey+1, ez)
	n001 := d.nodeIdx(ex, ey, ez+1)
	n111 := d.nodeIdx(ex+1, ey+1, ez+1)
	n011 := d.nodeIdx(ex, ey+1, ez+1)
	n101 := d.nodeIdx(ex+1, ey, ez+1)
	n110 := d.nodeIdx(ex+1, ey+1, ez)
	dx = ((d.x[n100] - d.x[n000]) + (d.x[n111] - d.x[n011])) / 2
	dy = ((d.y[n010] - d.y[n000]) + (d.y[n111] - d.y[n101])) / 2
	dz = ((d.z[n001] - d.z[n000]) + (d.z[n111] - d.z[n110])) / 2
	return
}

// advanceNodes integrates acceleration -> velocity -> position, applying
// symmetry boundary conditions on the global low planes (Sedov octant).
func (d *Domain) advanceNodes() float64 {
	dt := d.dt
	N := d.N
	for ix := 0; ix < N; ix++ {
		for iy := 0; iy < N; iy++ {
			for iz := 0; iz < N; iz++ {
				i := d.nodeIdx(ix, iy, iz)
				m := d.mass[i]
				ax := d.fx[i] / m
				ay := d.fy[i] / m
				az := d.fz[i] / m
				d.xd[i] += ax * dt
				d.yd[i] += ay * dt
				d.zd[i] += az * dt
				// Symmetry planes: zero normal velocity at the global
				// low boundary.
				if d.rx == 0 && ix == 0 {
					d.xd[i] = 0
				}
				if d.ry == 0 && iy == 0 {
					d.yd[i] = 0
				}
				if d.rz == 0 && iz == 0 {
					d.zd[i] = 0
				}
				d.x[i] += d.xd[i] * dt
				d.y[i] += d.yd[i] * dt
				d.z[i] += d.zd[i] * dt
			}
		}
	}
	return float64(N*N*N) * 50
}

// updateElements recomputes volumes, applies the EOS with artificial
// viscosity, and returns (flops, local Courant dt bound).
func (d *Domain) updateElements() (float64, float64) {
	flops := 0.0
	dtBound := dtMax
	for ex := 0; ex < d.E; ex++ {
		for ey := 0; ey < d.E; ey++ {
			for ez := 0; ez < d.E; ez++ {
				ei := d.elemIdx(ex, ey, ez)
				dx, dy, dz := d.elemEdges(ex, ey, ez)
				vol := dx * dy * dz
				vnew := vol / d.volo[ei]
				if vnew < 0.05 {
					vnew = 0.05
				}
				delv := vnew - d.v[ei]
				rho := rho0 / vnew
				// Artificial viscosity on compression.
				if delv < 0 {
					cs := math.Sqrt(gammaEOS * (d.p[ei] + pFloor + 1e-12) / rho)
					d.q[ei] = qCoef * rho * (cs*math.Abs(delv) + math.Abs(delv)*math.Abs(delv))
				} else {
					d.q[ei] = 0
				}
				// Energy work term: de = -(p+q) dV.
				d.e[ei] -= (d.p[ei] + d.q[ei]) * delv * d.volo[ei] / (rho0 * d.volo[ei])
				if d.e[ei] < eFloor {
					d.e[ei] = eFloor
				}
				d.v[ei] = vnew
				// Ideal-gas EOS on specific internal energy.
				d.p[ei] = (gammaEOS - 1) * rho * d.e[ei] / d.volo[ei] * d.volo[ei]
				if d.p[ei] < pFloor {
					d.p[ei] = pFloor
				}
				// Courant bound.
				cs := math.Sqrt(gammaEOS*(d.p[ei]+1e-12)/rho) + 1e-12
				minEdge := math.Min(dx, math.Min(dy, dz))
				if b := courant * minEdge / cs; b < dtBound {
					dtBound = b
				}
				flops += 300 // EOS + constraints in full LULESH
			}
		}
	}
	return flops, dtBound
}

// totalEnergy returns the domain's internal plus kinetic energy (kinetic
// uses lumped nodal masses).
func (d *Domain) totalEnergy() (internal, kinetic float64) {
	for _, e := range d.e {
		internal += e
	}
	for i := range d.xd {
		v2 := d.xd[i]*d.xd[i] + d.yd[i]*d.yd[i] + d.zd[i]*d.zd[i]
		kinetic += 0.5 * d.mass[i] * v2
	}
	return
}

// checksum folds the element energies and nodal speeds into a
// deterministic signature for cross-flavor comparison.
func (d *Domain) checksum() float64 {
	s := 0.0
	for i, e := range d.e {
		s += e * float64(i%97+1)
	}
	for i := range d.xd {
		s += (d.xd[i] + 2*d.yd[i] + 3*d.zd[i]) * float64(i%89+1)
	}
	return s
}
