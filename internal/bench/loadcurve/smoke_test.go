package loadcurve

import "testing"

func TestCurveSmoke(t *testing.T) {
	for _, ad := range []bool{false, true} {
		for _, rate := range []int{1, 200} {
			r := Run(Params{OfferedKops: rate, Ops: 600, Adaptive: ad, Repeats: 1})
			t.Logf("adaptive=%v offered=%dk achieved=%.1fk p50=%.1fus p99=%.1fus opb=%.2f maxops=%.1f",
				ad, rate, r.AchievedKops, r.P50Usec, r.P99Usec, r.OpsPerBatch, r.MaxOpsAvg)
			if r.P99Usec <= 0 || r.AchievedKops <= 0 {
				t.Fatalf("degenerate point: %+v", r)
			}
		}
	}
}
