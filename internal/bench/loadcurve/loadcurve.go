// Package loadcurve measures the latency-vs-throughput curve of the
// aggregation layer on a real wire: rank 0 paces aggregated active
// messages at a fixed offered rate toward rank 1 over the TCP conduit
// (spmd.RunWireLocal), each op carrying its issue timestamp, and rank 1
// samples issue-to-apply latency in the AM handler — both ranks share
// one process clock, so the sample needs no clock sync and no ack round
// trip. Sweeping the offered rate traces the classic coalescing
// trade-off: at low rates a static aggregator parks every op until a
// later progress call ages the batch out, while the adaptive controller
// collapses the batch budget toward one op and ships near the raw wire
// latency; at high rates both fill batches and converge. Like dhtbench
// this is wall-clock — the quantity under test is the real flush
// policy, not a model.
//
// Measuring at the receiver matters on a single-CPU host: time.Sleep
// granularity (~1ms on stock Linux timers) quantizes the sender's
// pacing wakes, so a sender-side ack-latency sample would fold one
// extra wake period into every measurement and mask the adaptive win.
// The receiver parks in the conduit's blocking wait and wakes per
// arriving frame, so apply timestamps are sharp.
package loadcurve

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"upcxx/internal/agg"
	"upcxx/internal/bench/gups"
	"upcxx/internal/core"
	"upcxx/internal/spmd"
)

// words is the size of the accumulator array on rank 1; updates stripe
// across it so the verification fold covers every op.
const words = 64

// amLatency is the AM handler id carrying one timestamped update.
const amLatency uint16 = 0x40

// Params configures one point of the curve.
type Params struct {
	// OfferedKops is the offered load in thousand ops/second. The
	// pacing schedule is absolute (slot i at start + i/rate), so
	// sleep-granularity overshoot self-corrects into issue bursts that
	// preserve the average rate — exactly how bursty clients present
	// load — and the loop simply saturates when the runtime cannot
	// keep up (the right edge of the curve).
	OfferedKops int
	// Ops is how many operations the point samples.
	Ops int
	// Adaptive selects agg.Config{Adaptive: true} over the static
	// default thresholds.
	Adaptive bool
	// Repeats runs the whole job this many times and keeps the run
	// with the lowest p99 (default 3), suppressing scheduler-stall
	// noise on shared CI runners the way dhtbench does.
	Repeats int
}

// Result reports one point.
type Result struct {
	OfferedKops  int
	Ops          int
	AchievedKops float64 // realized issue rate over the sampling window
	P50Usec      float64 // issue-to-apply latency percentiles
	P99Usec      float64
	OpsPerBatch  float64 // realized aggregation ratio
	MaxOpsAvg    float64 // rank 0's realized op budget (adaptive only)
}

// Counters reports the point's metrics as named counters for the
// harness.
func (r Result) Counters() map[string]float64 {
	return map[string]float64{
		"offered_kops":      float64(r.OfferedKops),
		"achieved_kops":     r.AchievedKops,
		"p50_usec":          r.P50Usec,
		"p99_usec":          r.P99Usec,
		"agg_ops_per_batch": r.OpsPerBatch,
		"agg_maxops_avg":    r.MaxOpsAvg,
	}
}

// val derives the i-th update value (never zero, so the fold cannot be
// satisfied by a dropped op).
func val(i int) uint64 { return gups.Mix64(uint64(i)) | 1 }

// Run executes one point of the curve and verifies the accumulator
// fold before reporting any latency.
func Run(p Params) Result {
	repeats := p.Repeats
	if repeats <= 0 {
		repeats = 3
	}
	var best Result
	for rep := 0; rep < repeats; rep++ {
		r := runOnce(p)
		if rep == 0 || r.P99Usec < best.P99Usec {
			best = r
		}
	}
	return best
}

func runOnce(p Params) Result {
	cfg := core.Config{}
	if p.Adaptive {
		cfg.Agg = agg.Config{Adaptive: true}
	}
	interval := time.Second / time.Duration(p.OfferedKops*1000)
	var (
		mu  sync.Mutex
		res Result
	)
	stats, err := spmd.RunWireLocal(2, 1<<17, cfg, func(me *core.Rank) {
		// Rank 1 folds each op's value into a striped accumulator and
		// records its one-way latency; registration precedes the first
		// barrier on every rank, per the GASNet handler-table rule.
		acc := make([]uint64, words)
		lats := make([]time.Duration, 0, p.Ops)
		got := 0
		core.RegisterAMHandler(me, amLatency, func(_ *core.Rank, _ int, payload []byte) {
			t0 := int64(binary.LittleEndian.Uint64(payload))
			lats = append(lats, time.Duration(time.Now().UnixNano()-t0))
			acc[got%words] ^= binary.LittleEndian.Uint64(payload[8:])
			got++
		})
		me.Barrier()

		if me.ID() == 0 {
			var payload [16]byte
			start := time.Now()
			next := start
			for i := 0; i < p.Ops; i++ {
				// Park until the next issue slot: a hot wait loop here
				// would starve the peer rank and the reader goroutines
				// whenever GOMAXPROCS=1 (async preemption only breaks
				// in after ~10ms).
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				// Run progress before issuing: Tick ages out the batch
				// parked since the previous slot (the latency a static
				// config charges a trickle), and the poll notices
				// acknowledgements.
				me.Advance()
				binary.LittleEndian.PutUint64(payload[:], uint64(time.Now().UnixNano()))
				binary.LittleEndian.PutUint64(payload[8:], val(i))
				core.AggSend(me, 1, amLatency, payload[:], nil)
				next = next.Add(interval)
			}
			issued := time.Since(start)
			core.AggDrain(me)
			mu.Lock()
			res.AchievedKops = float64(p.Ops) / issued.Seconds() / 1e3
			mu.Unlock()
		}
		// Rank 1 parks here the whole run: the barrier drain services
		// incoming batches (waking per frame), and rank 0 only joins
		// after AggDrain confirms every op applied.
		me.Barrier()

		if me.ID() == 1 {
			if got != p.Ops {
				panic(fmt.Sprintf("loadcurve: received %d ops, want %d", got, p.Ops))
			}
			for w := 0; w < words; w++ {
				var want uint64
				for i := w; i < p.Ops; i += words {
					want ^= val(i)
				}
				if acc[w] != want {
					panic(fmt.Sprintf("loadcurve: word %d = %#x, want %#x (adaptive=%v)",
						w, acc[w], want, p.Adaptive))
				}
			}
			sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
			mu.Lock()
			res.P50Usec = float64(lats[len(lats)/2]) / 1e3
			res.P99Usec = float64(lats[len(lats)*99/100]) / 1e3
			mu.Unlock()
		}
	})
	if err != nil {
		panic(fmt.Sprintf("loadcurve: %v", err))
	}

	res.OfferedKops = p.OfferedKops
	res.Ops = p.Ops
	var batches, ops float64
	for _, st := range stats {
		batches += st.Counters["agg_batches"]
		ops += st.Counters["agg_ops"]
	}
	if batches > 0 {
		res.OpsPerBatch = ops / batches
	}
	if len(stats) > 0 {
		res.MaxOpsAvg = stats[0].Counters["agg_maxops_avg"]
	}
	return res
}
