package stencil

import (
	"math"
	"testing"

	"upcxx/internal/sim"
)

func TestFactor3(t *testing.T) {
	cases := map[int][3]int{
		1:  {1, 1, 1},
		8:  {2, 2, 2},
		24: {4, 3, 2}, // surface-minimizing over 24
		27: {3, 3, 3},
		64: {4, 4, 4},
		2:  {2, 1, 1},
		12: {3, 2, 2},
	}
	for p, want := range cases {
		x, y, z := Factor3(p)
		if x*y*z != p {
			t.Fatalf("Factor3(%d) = %d*%d*%d != %d", p, x, y, z, p)
		}
		if [3]int{x, y, z} != want {
			t.Errorf("Factor3(%d) = %v, want %v", p, [3]int{x, y, z}, want)
		}
	}
}

// reference computes the same stencil serially for one iteration on a
// g^3 grid with the same initial condition, returning the checksum.
func reference(g, iters int) float64 {
	cur := make([]float64, (g+2)*(g+2)*(g+2))
	next := make([]float64, len(cur))
	idx := func(x, y, z int) int { return ((x+1)*(g+2)+(y+1))*(g+2) + (z + 1) }
	for x := 0; x < g; x++ {
		for y := 0; y < g; y++ {
			for z := 0; z < g; z++ {
				cur[idx(x, y, z)] = float64((x*31+y*17+z*7)%100) * 0.01
			}
		}
	}
	const c = 0.4
	for it := 0; it < iters; it++ {
		for x := 0; x < g; x++ {
			for y := 0; y < g; y++ {
				for z := 0; z < g; z++ {
					o := idx(x, y, z)
					next[o] = c*cur[o] +
						cur[o+1] + cur[o-1] +
						cur[o+(g+2)] + cur[o-(g+2)] +
						cur[o+(g+2)*(g+2)] + cur[o-(g+2)*(g+2)]
				}
			}
		}
		cur, next = next, cur
	}
	sum := 0.0
	for x := 0; x < g; x++ {
		for y := 0; y < g; y++ {
			for z := 0; z < g; z++ {
				sum += cur[idx(x, y, z)]
			}
		}
	}
	return sum
}

func TestMatchesSerialReference(t *testing.T) {
	// 8 ranks x 4^3 boxes = one global 8^3 grid; 3 iterations.
	r := Run(Params{Ranks: 8, Box: 4, Iters: 3, Flavor: "upcxx",
		Machine: sim.Local, Virtual: true})
	want := reference(8, 3)
	if math.Abs(r.Checksum-want) > 1e-9*math.Abs(want) {
		t.Fatalf("checksum %v, serial reference %v", r.Checksum, want)
	}
}

func TestDecompositionInvariance(t *testing.T) {
	// The same global grid cut 1-way and 8-ways must agree.
	a := Run(Params{Ranks: 1, Box: 8, Iters: 2, Flavor: "upcxx",
		Machine: sim.Local, Virtual: true}).Checksum
	b := Run(Params{Ranks: 8, Box: 4, Iters: 2, Flavor: "upcxx",
		Machine: sim.Local, Virtual: true}).Checksum
	if math.Abs(a-b) > 1e-9*math.Abs(a) {
		t.Fatalf("1-rank checksum %v != 8-rank checksum %v", a, b)
	}
}

func TestTitaniumMatchesUPCXXValues(t *testing.T) {
	// Both flavors run identical arithmetic; only modeled time differs.
	a := Run(Params{Ranks: 8, Box: 4, Iters: 2, Flavor: "upcxx",
		Machine: sim.Edison, Virtual: true})
	b := Run(Params{Ranks: 8, Box: 4, Iters: 2, Flavor: "titanium",
		Machine: sim.Edison, Virtual: true})
	if a.Checksum != b.Checksum {
		t.Errorf("flavors computed different answers: %v vs %v", a.Checksum, b.Checksum)
	}
	// Fig 5: the two curves lie nearly on top of each other (within ~15%).
	ratio := a.GFLOPS / b.GFLOPS
	if ratio < 0.85 || ratio > 1.18 {
		t.Errorf("UPC++/Titanium GFLOPS ratio %v should be near 1", ratio)
	}
}

func TestWeakScalingShape(t *testing.T) {
	// Fig 5: GFLOPS grows close to linearly with rank count under weak
	// scaling (per-rank grid fixed).
	// Box 16 keeps a realistic surface-to-volume ratio at test scale.
	g1 := Run(Params{Ranks: 1, Box: 24, Iters: 5, Flavor: "upcxx",
		Machine: sim.Edison, Virtual: true}).GFLOPS
	g8 := Run(Params{Ranks: 8, Box: 24, Iters: 5, Flavor: "upcxx",
		Machine: sim.Edison, Virtual: true}).GFLOPS
	if g8 < 4*g1 {
		t.Errorf("8-rank GFLOPS %v should be at least 4x 1-rank %v", g8, g1)
	}
}
