// Package stencil implements the paper's §V-B benchmark (Fig 5): a 3-D
// 7-point Jacobi stencil over a grid distributed in all three dimensions,
// one fixed-size cube per rank (weak scaling), with ghost zones exchanged
// through the multidimensional array library's one-statement copy:
//
//	A.Constrict(ghost).CopyFrom(B)
//
// Two flavors run the identical code: "upcxx" under the UPC++ profile and
// "titanium" under the Titanium profile — the paper's point being that
// the library matches the compiled language (the two curves of Fig 5 lie
// on top of each other).
package stencil

import (
	"upcxx/internal/core"
	"upcxx/internal/ndarray"
	"upcxx/internal/sim"
)

// Params configures a run.
type Params struct {
	Ranks   int
	Box     int // per-rank cube edge (paper: 256)
	Iters   int
	Flavor  string // "upcxx" or "titanium"
	Machine sim.Machine
	Virtual bool
}

// Result reports the metrics of Fig 5.
type Result struct {
	Ranks    int
	Seconds  float64
	GFLOPS   float64
	Checksum float64 // deterministic across rank counts for a fixed global grid
}

// Counters reports the run's metrics as named counters for the benchmark
// harness.
func (r Result) Counters() map[string]float64 {
	return map[string]float64{
		"gflops":        r.GFLOPS,
		"flops_per_sec": r.GFLOPS * 1e9,
		"checksum":      r.Checksum,
	}
}

// Factor3 splits p into three near-equal factors px >= py >= pz with
// px*py*pz = p (the rank grid).
func Factor3(p int) (int, int, int) {
	best := [3]int{p, 1, 1}
	bestSur := surrogate(p, 1, 1)
	for a := 1; a*a*a <= p; a++ {
		if p%a != 0 {
			continue
		}
		q := p / a
		for b := a; b*b <= q; b++ {
			if q%b != 0 {
				continue
			}
			c := q / b
			if s := surrogate(c, b, a); s < bestSur {
				bestSur = s
				best = [3]int{c, b, a}
			}
		}
	}
	return best[0], best[1], best[2]
}

// surrogate scores a factorization by total surface area (lower is a
// better decomposition).
func surrogate(x, y, z int) int { return x*y + y*z + z*x }

const flopsPerPoint = 8 // 6 adds + 2 multiplies, the paper's count

// Run executes the benchmark.
func Run(p Params) Result {
	sw := sim.SWUPCXX
	if p.Flavor == "titanium" {
		sw = sim.SWTitanium
	}
	n := p.Box
	cfg := core.Config{
		Ranks:        p.Ranks,
		Machine:      p.Machine,
		SW:           sw,
		Virtual:      p.Virtual,
		SegmentBytes: 2*(n+2)*(n+2)*(n+2)*8 + (1 << 17),
	}
	px, py, pz := Factor3(p.Ranks)

	var checksum float64
	st := core.Run(cfg, func(me *core.Rank) {
		// My coordinates in the rank grid.
		id := me.ID()
		cx, cy, cz := id/(py*pz), (id/pz)%py, id%pz

		// Interior in global coordinates; allocation grown by one ghost
		// layer. Using global coordinates makes ghost exchange a pure
		// domain intersection.
		interior := ndarray.RD3(cx*n, cy*n, cz*n, (cx+1)*n, (cy+1)*n, (cz+1)*n)
		footprint := interior.Grow(1)
		A := ndarray.New[float64](me, footprint)
		B := ndarray.New[float64](me, footprint)

		// Deterministic initial condition on the global grid.
		{
			data := A.Local(me)
			interior.ForEach(func(q ndarray.Point) {
				gx, gy, gz := q.Get(0), q.Get(1), q.Get(2)
				data[A.Idx(q)] = float64((gx*31+gy*17+gz*7)%100) * 0.01
			})
		}
		me.Barrier()

		refsA := core.TeamAllGather(me.World(), A.Ref())
		refsB := core.TeamAllGather(me.World(), B.Ref())
		me.Barrier()

		rankAt := func(x, y, z int) int { return (x*py+y)*pz + z }
		type neighbor struct {
			rank int
			dim  int
			side int
		}
		var nbrs []neighbor
		if cx > 0 {
			nbrs = append(nbrs, neighbor{rankAt(cx-1, cy, cz), 0, -1})
		}
		if cx < px-1 {
			nbrs = append(nbrs, neighbor{rankAt(cx+1, cy, cz), 0, +1})
		}
		if cy > 0 {
			nbrs = append(nbrs, neighbor{rankAt(cx, cy-1, cz), 1, -1})
		}
		if cy < py-1 {
			nbrs = append(nbrs, neighbor{rankAt(cx, cy+1, cz), 1, +1})
		}
		if cz > 0 {
			nbrs = append(nbrs, neighbor{rankAt(cx, cy, cz-1), 2, -1})
		}
		if cz < pz-1 {
			nbrs = append(nbrs, neighbor{rankAt(cx, cy, cz+1), 2, +1})
		}

		const c = 0.4 // central coefficient
		src, dst := A, B
		srcRefs, dstRefs := refsA, refsB

		for iter := 0; iter < p.Iters; iter++ {
			// Ghost exchange: each ghost face intersected with the
			// neighbor's array recovers exactly the neighbor's boundary
			// plane; one statement per face, overlapped through an
			// event (paper §III-D).
			ev := core.NewEvent()
			for _, nb := range nbrs {
				ghost := footprint.Face(nb.dim, nb.side, 1)
				src.Constrict(ghost).CopyFromAsync(me, ndarray.FromRef(srcRefs[nb.rank]), ev)
			}
			ev.Wait(me)
			// No barrier here: the compute reads only this rank's arrays
			// (src stays immutable until the end-of-iteration barrier),
			// and a neighbor still pulling our face is serviced while we
			// wait at that barrier.

			// Local 7-point computation over the interior, one
			// dimension at a time (the paper's foreach3 + unstrided
			// specialization): real arithmetic, then a model charge for
			// the memory-bound kernel.
			sdata, ddata := src.Local(me), dst.Local(me)
			si := src.Idx3(1, 0, 0) - src.Idx3(0, 0, 0)
			sj := src.Idx3(0, 1, 0) - src.Idx3(0, 0, 0)
			for i := interior.Lo().Get(0); i < interior.Hi().Get(0); i++ {
				// Progress: service neighbors' ghost pulls while
				// computing (the paper's advance(), §IV — called by the
				// user program so active messages drain promptly).
				me.Advance()
				for j := interior.Lo().Get(1); j < interior.Hi().Get(1); j++ {
					base := src.Idx3(i, j, interior.Lo().Get(2))
					dbase := dst.Idx3(i, j, interior.Lo().Get(2))
					for k := 0; k < n; k++ {
						o := base + k
						ddata[dbase+k] = c*sdata[o] +
							sdata[o+1] + sdata[o-1] +
							sdata[o+sj] + sdata[o-sj] +
							sdata[o+si] + sdata[o-si]
					}
				}
			}
			points := float64(interior.Size())
			me.Work(flopsPerPoint * points)
			me.MemWork(16 * points) // read + write traffic per point
			me.Barrier()

			src, dst = dst, src
			srcRefs, dstRefs = dstRefs, srcRefs
		}
		_ = dstRefs

		// Deterministic checksum: sum of the final interior, reduced in
		// rank order.
		local := 0.0
		data := src.Local(me)
		interior.ForEach(func(q ndarray.Point) { local += data[src.Idx(q)] })
		total := core.TeamReduce(me.World(), local, func(a, b float64) float64 { return a + b })
		if me.ID() == 0 {
			checksum = total
		}
		me.Barrier()
	})

	secs := st.Seconds(p.Virtual)
	points := float64(p.Ranks) * float64(n) * float64(n) * float64(n)
	res := Result{Ranks: p.Ranks, Seconds: secs, Checksum: checksum}
	if secs > 0 {
		res.GFLOPS = flopsPerPoint * points * float64(p.Iters) / secs / 1e9
	}
	return res
}
