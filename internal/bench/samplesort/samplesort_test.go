package samplesort

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"upcxx/internal/sim"
)

func TestSortsCorrectly(t *testing.T) {
	r := Run(Params{Ranks: 8, KeysPerRank: 2000, Flavor: "upcxx",
		Machine: sim.Local, Virtual: true})
	if !r.Sorted {
		t.Fatal("global order verification failed")
	}
	if r.Keys != 16000 {
		t.Errorf("Keys = %d", r.Keys)
	}
	if r.TBPerMin <= 0 {
		t.Error("no throughput computed")
	}
}

func TestUPCFlavorSortsToo(t *testing.T) {
	r := Run(Params{Ranks: 4, KeysPerRank: 1000, Flavor: "upc",
		Machine: sim.Local, Virtual: true})
	if !r.Sorted {
		t.Fatal("UPC flavor failed to sort")
	}
}

func TestLoadBalanceReasonable(t *testing.T) {
	// Oversampled splitters should keep the heaviest rank within ~2x of
	// the mean for uniform keys.
	r := Run(Params{Ranks: 8, KeysPerRank: 4000, Oversample: 64,
		Flavor: "upcxx", Machine: sim.Local, Virtual: true})
	if !r.Sorted {
		t.Fatal("not sorted")
	}
	if r.Balance > 2 {
		t.Errorf("load balance %v exceeds 2x mean", r.Balance)
	}
}

func TestQuicksortMatchesStdlib(t *testing.T) {
	f := func(seed int64, ln uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(ln)
		a := make([]uint64, n)
		for i := range a {
			a[i] = rng.Uint64() % 64 // many duplicates
		}
		b := append([]uint64(nil), a...)
		quicksort(a)
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuicksortEdgeCases(t *testing.T) {
	cases := [][]uint64{
		nil,
		{5},
		{2, 1},
		{1, 1, 1, 1, 1},
		{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
	}
	for _, c := range cases {
		cp := append([]uint64(nil), c...)
		quicksort(cp)
		if !isSorted(cp) {
			t.Errorf("quicksort(%v) = %v", c, cp)
		}
	}
}

func TestUPCXXCloseToUPC(t *testing.T) {
	// Fig 6: "the performance of UPC++ is nearly identical to the UPC
	// version". Same machine, same workload, within ~20%.
	a := Run(Params{Ranks: 8, KeysPerRank: 4000, Flavor: "upcxx",
		Machine: sim.Edison, Virtual: true})
	b := Run(Params{Ranks: 8, KeysPerRank: 4000, Flavor: "upc",
		Machine: sim.Edison, Virtual: true})
	ratio := a.Seconds / b.Seconds
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("UPC++/UPC time ratio %v should be near 1", ratio)
	}
}

func TestThroughputScales(t *testing.T) {
	// Weak scaling: more ranks sort more data in comparable time. The
	// per-rank key count must be large enough that the serial sampling
	// phase does not dominate (the paper sorts millions of keys per
	// rank; 200k keeps the test fast while preserving the balance).
	t1 := Run(Params{Ranks: 2, KeysPerRank: 200000, Oversample: 8, Flavor: "upcxx",
		Machine: sim.Edison, Virtual: true}).TBPerMin
	t2 := Run(Params{Ranks: 16, KeysPerRank: 200000, Oversample: 8, Flavor: "upcxx",
		Machine: sim.Edison, Virtual: true}).TBPerMin
	if t2 <= t1 {
		t.Errorf("throughput should grow with ranks: %v -> %v", t1, t2)
	}
}
